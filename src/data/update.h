// The update record shared by the engine's batch API and the workload
// stream generators: one signed single-tuple delta δR = {tuple → mult}
// addressed to a relation symbol of the query.
#ifndef IVME_DATA_UPDATE_H_
#define IVME_DATA_UPDATE_H_

#include <string>
#include <vector>

#include "src/data/tuple.h"

namespace ivme {

/// A single-tuple update δR = {tuple → mult}: an insert when mult > 0, a
/// delete when mult < 0 (Section 3, "Modeling Updates Using
/// Multiplicities"). Batches of these are the unit of `Engine::ApplyBatch`;
/// within a batch, records addressing the same (relation, tuple) pair are
/// consolidated by summing their multiplicities before any view work.
struct Update {
  std::string relation;
  Tuple tuple;
  Mult mult = 1;
};

/// One ingestion batch: updates are applied as-if in sequence, but the
/// engine is free to consolidate and reorder per-relation net deltas.
using UpdateBatch = std::vector<Update>;

/// Outcome of applying one batch (Engine::ApplyBatch and the catalogs).
struct BatchResult {
  /// Consolidated net-delta entries that reached base storage and the view
  /// trees. Records that cancelled to a net multiplicity of 0 are never
  /// applied and are counted in neither field.
  size_t applied = 0;

  /// Net deletes that exceeded the stored multiplicity; those entries are
  /// skipped in full (the rest of the batch still applies).
  size_t rejected = 0;
};

}  // namespace ivme

#endif  // IVME_DATA_UPDATE_H_
