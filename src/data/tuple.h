// Tuples of data values, laid out in schema order.
//
// Layout notes (this is the single hottest data type in the system):
//  - Small-buffer optimization: up to kInlineCapacity values live inline in
//    the tuple object itself, so view keys, index keys, and most rows never
//    touch the heap. Longer tuples spill to a heap buffer.
//  - The 64-bit hash is computed lazily and cached; any mutation (PushBack,
//    Clear, mutable operator[], projections into the tuple) invalidates it.
//    TupleMap probes and heavy/light partition lookups therefore hash a key
//    once and reuse the value across every dictionary and index they touch.
#ifndef IVME_DATA_TUPLE_H_
#define IVME_DATA_TUPLE_H_

#include <cstring>
#include <initializer_list>
#include <string>
#include <vector>

#include "src/common/hash.h"
#include "src/data/value.h"

namespace ivme {

/// A tuple of values over some schema. The schema itself is tracked by the
/// containing relation/view; tuples only store values in schema order.
class Tuple {
 public:
  /// Values stored inline (no heap allocation) — covers essentially all
  /// view/index keys and most rows of the paper's workloads.
  static constexpr size_t kInlineCapacity = 4;

  Tuple() = default;

  explicit Tuple(const std::vector<Value>& values) {
    AssignSpan(values.data(), values.size());
  }

  Tuple(std::initializer_list<Value> values) { AssignSpan(values.begin(), values.size()); }

  Tuple(const Tuple& other) {
    AssignSpan(other.data(), other.size_);
    hash_ = other.hash_;
  }

  Tuple(Tuple&& other) noexcept
      : size_(other.size_), capacity_(other.capacity_), hash_(other.hash_) {
    if (other.IsInline()) {
      std::memcpy(inline_, other.inline_, other.size_ * sizeof(Value));
    } else {
      heap_ = other.heap_;
      other.capacity_ = kInlineCapacity;  // other forgets the heap buffer
    }
    other.size_ = 0;
    other.hash_ = kHashUnset;
  }

  Tuple& operator=(const Tuple& other) {
    if (this != &other) {
      size_ = 0;  // values need not survive a reallocation in AssignSpan
      AssignSpan(other.data(), other.size_);
      hash_ = other.hash_;
    }
    return *this;
  }

  Tuple& operator=(Tuple&& other) noexcept {
    if (this != &other) {
      if (!IsInline()) delete[] heap_;
      size_ = other.size_;
      capacity_ = other.capacity_;
      hash_ = other.hash_;
      if (other.IsInline()) {
        std::memcpy(inline_, other.inline_, other.size_ * sizeof(Value));
        capacity_ = kInlineCapacity;
      } else {
        heap_ = other.heap_;
        other.capacity_ = kInlineCapacity;
      }
      other.size_ = 0;
      other.hash_ = kHashUnset;
    }
    return *this;
  }

  ~Tuple() {
    if (!IsInline()) delete[] heap_;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  Value operator[](size_t i) const { return data()[i]; }
  /// Mutable access invalidates the cached hash (the caller may write).
  Value& operator[](size_t i) {
    hash_ = kHashUnset;
    return data()[i];
  }

  const Value* data() const { return IsInline() ? inline_ : heap_; }

  const Value* begin() const { return data(); }
  const Value* end() const { return data() + size_; }

  void PushBack(Value v) {
    if (size_ == capacity_) GrowTo(capacity_ * 2);
    data()[size_++] = v;
    hash_ = kHashUnset;
  }

  void Clear() {
    size_ = 0;
    hash_ = kHashUnset;
  }

  void Reserve(size_t n) {
    if (n > capacity_) GrowTo(n);
  }

  /// Replaces the contents with `positions.size()` values picked out of
  /// `src` — the restriction x[S] without allocating a fresh tuple. `src`
  /// must not alias this tuple.
  void AssignProjection(const Tuple& src, const std::vector<int>& positions) {
    const size_t n = positions.size();
    size_ = 0;
    if (n > capacity_) GrowTo(n);
    Value* out = data();
    const Value* in = src.data();
    for (size_t i = 0; i < n; ++i) out[i] = in[static_cast<size_t>(positions[i])];
    size_ = static_cast<uint32_t>(n);
    hash_ = kHashUnset;
  }

  /// The tuple's 64-bit hash, computed on first use and cached until the
  /// next mutation. Equal tuples hash equal regardless of representation.
  uint64_t Hash() const {
    if (hash_ == kHashUnset) {
      uint64_t h = HashSpan64(data(), size_);
      if (h == kHashUnset) h = 0x2545f4914f6cdd1dULL;  // remap the sentinel
      hash_ = h;
    }
    return hash_;
  }

  bool operator==(const Tuple& other) const {
    if (size_ != other.size_) return false;
    if (hash_ != kHashUnset && other.hash_ != kHashUnset && hash_ != other.hash_) return false;
    return std::memcmp(data(), other.data(), size_ * sizeof(Value)) == 0;
  }
  bool operator!=(const Tuple& other) const { return !(*this == other); }
  bool operator<(const Tuple& other) const {
    const size_t n = size_ < other.size_ ? size_ : other.size_;
    const Value* a = data();
    const Value* b = other.data();
    for (size_t i = 0; i < n; ++i) {
      if (a[i] != b[i]) return a[i] < b[i];
    }
    return size_ < other.size_;
  }

  std::string ToString() const;

 private:
  static constexpr uint64_t kHashUnset = 0xffffffffffffffffULL;

  bool IsInline() const { return capacity_ == kInlineCapacity; }
  Value* data() { return IsInline() ? inline_ : heap_; }

  void AssignSpan(const Value* values, size_t n) {
    if (n > capacity_) GrowTo(n);
    std::memcpy(data(), values, n * sizeof(Value));
    size_ = static_cast<uint32_t>(n);
    hash_ = kHashUnset;
  }

  void GrowTo(size_t n);

  union {
    Value inline_[kInlineCapacity];
    Value* heap_;
  };
  uint32_t size_ = 0;
  uint32_t capacity_ = kInlineCapacity;
  mutable uint64_t hash_ = kHashUnset;
};

/// Restriction x[S]: picks `positions` out of `tuple`, in order. Prefer
/// Tuple::AssignProjection onto a scratch tuple on hot paths.
Tuple ProjectTuple(const Tuple& tuple, const std::vector<int>& positions);

/// Appends `suffix` to a copy of `prefix` (tuple concatenation, the ◦
/// operator of the Product algorithm).
Tuple ConcatTuples(const Tuple& prefix, const Tuple& suffix);

/// std::hash adapter so tuples can key standard containers in tests.
struct TupleHash {
  size_t operator()(const Tuple& t) const { return static_cast<size_t>(t.Hash()); }
};

}  // namespace ivme

#endif  // IVME_DATA_TUPLE_H_
