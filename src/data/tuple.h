// Tuples of data values, laid out in schema order.
#ifndef IVME_DATA_TUPLE_H_
#define IVME_DATA_TUPLE_H_

#include <initializer_list>
#include <string>
#include <vector>

#include "src/common/hash.h"
#include "src/data/value.h"

namespace ivme {

/// A tuple of values over some schema. The schema itself is tracked by the
/// containing relation/view; tuples only store values in schema order.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}
  Tuple(std::initializer_list<Value> values) : values_(values) {}

  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  Value operator[](size_t i) const { return values_[i]; }
  Value& operator[](size_t i) { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }

  auto begin() const { return values_.begin(); }
  auto end() const { return values_.end(); }

  void PushBack(Value v) { values_.push_back(v); }
  void Clear() { values_.clear(); }
  void Reserve(size_t n) { values_.reserve(n); }

  uint64_t Hash() const { return HashSpan64(values_.data(), values_.size()); }

  bool operator==(const Tuple& other) const { return values_ == other.values_; }
  bool operator!=(const Tuple& other) const { return !(*this == other); }
  bool operator<(const Tuple& other) const { return values_ < other.values_; }

  std::string ToString() const;

 private:
  std::vector<Value> values_;
};

/// Restriction x[S]: picks `positions` out of `tuple`, in order.
Tuple ProjectTuple(const Tuple& tuple, const std::vector<int>& positions);

/// Appends `suffix` to a copy of `prefix` (tuple concatenation, the ◦
/// operator of the Product algorithm).
Tuple ConcatTuples(const Tuple& prefix, const Tuple& suffix);

/// std::hash adapter so tuples can key standard containers in tests.
struct TupleHash {
  size_t operator()(const Tuple& t) const { return static_cast<size_t>(t.Hash()); }
};

}  // namespace ivme

#endif  // IVME_DATA_TUPLE_H_
