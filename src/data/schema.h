// Variables and schemas. A schema is an ordered tuple of distinct variables
// (Section 3); sets of variables and schemas are used interchangeably by
// fixing the variable ordering.
#ifndef IVME_DATA_SCHEMA_H_
#define IVME_DATA_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ivme {

/// Identifier of a query variable. Ids are dense and assigned by the
/// ConjunctiveQuery that owns the variable names.
using VarId = int32_t;

inline constexpr VarId kInvalidVar = -1;

/// An ordered list of distinct variables.
///
/// Schemas support both positional access (tuples are laid out in schema
/// order) and set-style queries (containment, intersection, difference).
/// All operations preserve the order of the left-hand operand, matching the
/// paper's convention that a set of variables is read as a schema under a
/// fixed global ordering.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<VarId> vars);

  static Schema Empty() { return Schema(); }

  size_t size() const { return vars_.size(); }
  bool empty() const { return vars_.empty(); }
  VarId operator[](size_t i) const { return vars_[i]; }
  const std::vector<VarId>& vars() const { return vars_; }

  auto begin() const { return vars_.begin(); }
  auto end() const { return vars_.end(); }

  /// Position of `var` in this schema, or -1 when absent. O(arity).
  int PositionOf(VarId var) const;

  bool Contains(VarId var) const { return PositionOf(var) >= 0; }

  /// True when every variable of `other` occurs in this schema.
  bool ContainsAll(const Schema& other) const;

  /// True when both schemas contain exactly the same set of variables
  /// (order-insensitive).
  bool SameSet(const Schema& other) const;

  /// Variables of this schema that also occur in `other`, in this schema's
  /// order.
  Schema Intersect(const Schema& other) const;

  /// Variables of this schema that do not occur in `other`, in this schema's
  /// order.
  Schema Minus(const Schema& other) const;

  /// This schema followed by the variables of `other` not already present.
  Schema Union(const Schema& other) const;

  /// Appends a variable; must not already be present.
  void Append(VarId var);

  bool operator==(const Schema& other) const { return vars_ == other.vars_; }
  bool operator!=(const Schema& other) const { return !(*this == other); }

  /// Renders as e.g. "(A, B)" using the supplied variable namer.
  std::string ToString(const std::vector<std::string>& var_names) const;

 private:
  std::vector<VarId> vars_;
};

/// Positions of `sub`'s variables inside `super`; every variable of `sub`
/// must occur in `super`. Used to compile projections once.
std::vector<int> ProjectionPositions(const Schema& super, const Schema& sub);

}  // namespace ivme

#endif  // IVME_DATA_SCHEMA_H_
