// Domain values. The data model of Section 3 works over discrete domains;
// values are encoded as 64-bit integers. Strings are dictionary-encoded
// (src/data/dictionary.h): an interned string rides as a *tagged* 64-bit id
// so Value stays fixed-width on the hot path and a dictionary id can never
// silently compare equal (or hash-collide) with a raw integer that happens
// to share its bit pattern.
//
// Bit layout: the top two bits of a Value select its kind.
//   00 / 10 / 11  — raw integers (all negatives and positives < 2^62)
//   01            — interned string id (low 32 bits are the dense id)
// Raw integers in [2^62, 2^63) are therefore reserved; the catalog's write
// gates reject tuples carrying a reserved-range value that is not a live
// dictionary id, so the ambiguity is a loud structured error, never a
// silent collision.
#ifndef IVME_DATA_VALUE_H_
#define IVME_DATA_VALUE_H_

#include <cstdint>

namespace ivme {

/// A data value drawn from a variable's discrete domain.
using Value = int64_t;

/// Tuple multiplicity. Base relations keep strictly positive multiplicities;
/// deltas may carry negative ones (Section 3, "Modeling Updates Using
/// Multiplicities").
using Mult = int64_t;

/// Top-two-bit tag selecting interned string ids within the Value space.
constexpr uint64_t kDictTagMask = 3ULL << 62;
constexpr uint64_t kDictTag = 1ULL << 62;

/// True when `v` lies in the reserved dictionary-id range (tag bits 01).
/// Whether it names a *live* id is the dictionary's to answer.
inline bool IsDictValue(Value v) {
  return (static_cast<uint64_t>(v) & kDictTagMask) == kDictTag;
}

/// The tagged Value of dictionary id `id`.
inline Value MakeDictValue(uint32_t id) {
  return static_cast<Value>(kDictTag | static_cast<uint64_t>(id));
}

/// The dense id behind a tagged dictionary Value (IsDictValue(v) required).
inline uint32_t DictIdOf(Value v) {
  return static_cast<uint32_t>(static_cast<uint64_t>(v) & 0xffffffffULL);
}

}  // namespace ivme

#endif  // IVME_DATA_VALUE_H_
