// Domain values. The data model of Section 3 works over discrete domains;
// values are encoded as 64-bit integers (dictionary-encode strings upstream).
#ifndef IVME_DATA_VALUE_H_
#define IVME_DATA_VALUE_H_

#include <cstdint>

namespace ivme {

/// A data value drawn from a variable's discrete domain.
using Value = int64_t;

/// Tuple multiplicity. Base relations keep strictly positive multiplicities;
/// deltas may carry negative ones (Section 3, "Modeling Updates Using
/// Multiplicities").
using Mult = int64_t;

}  // namespace ivme

#endif  // IVME_DATA_VALUE_H_
