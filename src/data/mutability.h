// Per-relation mutability declarations. IVM^ε (the source paper) pays for
// full insert-delete generality on every relation; two follow-ups show the
// cost is avoidable when the workload is declared up front:
//
//  - kStatic ("Tractable Conjunctive Queries over Static and Dynamic
//    Relations", Kara et al. 2024): the relation never changes after
//    preprocessing. Its views are materialized once, its partitions are
//    frozen at the preprocessing threshold, and delta propagation,
//    indicator upkeep, and minor/major rebalancing skip its atoms.
//
//  - kInsertOnly ("Insert-Only versus Insert-Delete in Dynamic Query
//    Evaluation", Abo Khamis et al.): only positive deltas ever arrive.
//    Below-zero validation is unnecessary, multiplicity version chains
//    never cross the zero floor downward, and per-key light counts are
//    monotone between majors (the heavy→light minor check is dead).
//
// kDynamic is the default and keeps the full Theorem 2/4 machinery.
#ifndef IVME_DATA_MUTABILITY_H_
#define IVME_DATA_MUTABILITY_H_

#include <cstdint>

namespace ivme {

enum class Mutability : uint8_t {
  kDynamic = 0,     ///< arbitrary inserts and deletes (default)
  kInsertOnly = 1,  ///< only positive deltas after the initial load
  kStatic = 2,      ///< no changes after Preprocess; writes are rejected
};

inline const char* MutabilityName(Mutability m) {
  switch (m) {
    case Mutability::kDynamic: return "dynamic";
    case Mutability::kInsertOnly: return "insert_only";
    case Mutability::kStatic: return "static";
  }
  return "?";
}

}  // namespace ivme

#endif  // IVME_DATA_MUTABILITY_H_
