#include "src/data/tuple.h"

namespace ivme {

void Tuple::GrowTo(size_t n) {
  size_t cap = capacity_;
  while (cap < n) cap *= 2;
  Value* fresh = new Value[cap];
  std::memcpy(fresh, data(), size_ * sizeof(Value));
  if (!IsInline()) delete[] heap_;
  heap_ = fresh;
  capacity_ = static_cast<uint32_t>(cap);
}

std::string Tuple::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < size_; ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(data()[i]);
  }
  out += ")";
  return out;
}

Tuple ProjectTuple(const Tuple& tuple, const std::vector<int>& positions) {
  Tuple out;
  out.AssignProjection(tuple, positions);
  return out;
}

Tuple ConcatTuples(const Tuple& prefix, const Tuple& suffix) {
  Tuple out;
  out.Reserve(prefix.size() + suffix.size());
  for (Value v : prefix) out.PushBack(v);
  for (Value v : suffix) out.PushBack(v);
  return out;
}

}  // namespace ivme
