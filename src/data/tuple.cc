#include "src/data/tuple.h"

namespace ivme {

std::string Tuple::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(values_[i]);
  }
  out += ")";
  return out;
}

Tuple ProjectTuple(const Tuple& tuple, const std::vector<int>& positions) {
  std::vector<Value> values;
  values.reserve(positions.size());
  for (int pos : positions) values.push_back(tuple[static_cast<size_t>(pos)]);
  return Tuple(std::move(values));
}

Tuple ConcatTuples(const Tuple& prefix, const Tuple& suffix) {
  std::vector<Value> values;
  values.reserve(prefix.size() + suffix.size());
  values.insert(values.end(), prefix.begin(), prefix.end());
  values.insert(values.end(), suffix.begin(), suffix.end());
  return Tuple(std::move(values));
}

}  // namespace ivme
