// Net-delta consolidation of update batches, shared by the query catalog,
// the thin single-query Engine, and the sharded splitters: records
// addressing the same (relation, tuple) pair sum their multiplicities, so
// insert/delete pairs cancel and repeated inserts merge into one weighted
// entry before any storage or view work (step 1 of Engine::ApplyBatch's
// contract).
#ifndef IVME_DATA_CONSOLIDATE_H_
#define IVME_DATA_CONSOLIDATE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/data/update.h"
#include "src/storage/tuple_map.h"

namespace ivme {

/// Consolidates update streams into one net-delta TupleMap per relation.
///
/// Relations are registered up front (dense group ids, first-registration
/// order); each group's accumulator node pool persists across batches, so
/// steady-state consolidation allocates nothing. Not thread-safe; sharded
/// callers keep one consolidator per splitter.
class NetDeltaConsolidator {
 public:
  static constexpr size_t kUnknown = static_cast<size_t>(-1);

  NetDeltaConsolidator() = default;
  NetDeltaConsolidator(const NetDeltaConsolidator&) = delete;
  NetDeltaConsolidator& operator=(const NetDeltaConsolidator&) = delete;

  /// Registers `relation` (idempotent); returns its dense group id.
  size_t EnsureRelation(const std::string& relation);

  /// Group id of `relation`, or kUnknown.
  size_t FindRelation(const std::string& relation) const;

  size_t num_relations() const { return groups_.size(); }
  const std::string& relation(size_t group) const { return groups_[group].relation; }

  /// Starts a new consolidation round: clears the touched set (accumulators
  /// of touched groups are cleared lazily on first Add).
  void Begin();

  /// Adds one record to its relation's accumulator. The relation must be
  /// registered; records with mult == 0 count toward records() but add no
  /// delta entry. Returns the group id.
  size_t Add(const std::string& relation, const Tuple& tuple, Mult mult);
  size_t Add(const Update& update) { return Add(update.relation, update.tuple, update.mult); }

  /// Groups touched since Begin(), in first-touch order (application order
  /// stays deterministic).
  const std::vector<size_t>& touched() const { return touched_; }

  /// Net delta of a group (valid for touched groups until the next Begin).
  const TupleMap<Mult>& delta(size_t group) const { return *groups_[group].accum; }
  TupleMap<Mult>& delta(size_t group) { return *groups_[group].accum; }

  /// Number of input records added to `group` since Begin() (before
  /// cancellation; the per-relation share of the batch size).
  size_t records(size_t group) const { return groups_[group].records; }

 private:
  struct Group {
    std::string relation;
    std::unique_ptr<TupleMap<Mult>> accum;
    bool in_round = false;
    size_t records = 0;
  };

  std::vector<Group> groups_;
  std::vector<size_t> touched_;
};

}  // namespace ivme

#endif  // IVME_DATA_CONSOLIDATE_H_
