#include "src/data/schema.h"

#include <algorithm>

#include "src/common/check.h"

namespace ivme {

Schema::Schema(std::vector<VarId> vars) : vars_(std::move(vars)) {
  for (size_t i = 0; i < vars_.size(); ++i) {
    for (size_t j = i + 1; j < vars_.size(); ++j) {
      IVME_CHECK_MSG(vars_[i] != vars_[j], "schema has duplicate variable id " << vars_[i]);
    }
  }
}

int Schema::PositionOf(VarId var) const {
  for (size_t i = 0; i < vars_.size(); ++i) {
    if (vars_[i] == var) return static_cast<int>(i);
  }
  return -1;
}

bool Schema::ContainsAll(const Schema& other) const {
  for (VarId v : other.vars_) {
    if (!Contains(v)) return false;
  }
  return true;
}

bool Schema::SameSet(const Schema& other) const {
  return size() == other.size() && ContainsAll(other);
}

Schema Schema::Intersect(const Schema& other) const {
  std::vector<VarId> out;
  for (VarId v : vars_) {
    if (other.Contains(v)) out.push_back(v);
  }
  return Schema(std::move(out));
}

Schema Schema::Minus(const Schema& other) const {
  std::vector<VarId> out;
  for (VarId v : vars_) {
    if (!other.Contains(v)) out.push_back(v);
  }
  return Schema(std::move(out));
}

Schema Schema::Union(const Schema& other) const {
  std::vector<VarId> out = vars_;
  for (VarId v : other.vars_) {
    if (std::find(out.begin(), out.end(), v) == out.end()) out.push_back(v);
  }
  return Schema(std::move(out));
}

void Schema::Append(VarId var) {
  IVME_CHECK_MSG(!Contains(var), "appending duplicate variable id " << var);
  vars_.push_back(var);
}

std::string Schema::ToString(const std::vector<std::string>& var_names) const {
  std::string out = "(";
  for (size_t i = 0; i < vars_.size(); ++i) {
    if (i > 0) out += ", ";
    const auto v = static_cast<size_t>(vars_[i]);
    out += v < var_names.size() ? var_names[v] : ("?" + std::to_string(vars_[i]));
  }
  out += ")";
  return out;
}

std::vector<int> ProjectionPositions(const Schema& super, const Schema& sub) {
  std::vector<int> positions;
  positions.reserve(sub.size());
  for (VarId v : sub) {
    const int pos = super.PositionOf(v);
    IVME_CHECK_MSG(pos >= 0, "projection target variable " << v << " missing from source");
    positions.push_back(pos);
  }
  return positions;
}

}  // namespace ivme
