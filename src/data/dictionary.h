// Shared string dictionary: interns strings to dense 32-bit ids carried as
// tagged Values (value.h), so tuples stay fixed-width and string equality
// on the hot path is integer equality. One dictionary is shared by every
// shard slice of a catalog — ids must agree across shards because the
// router hashes them.
//
// Concurrency contract (ARCHITECTURE.md §9): the id space is append-only
// and ids are never reused, so readers never block. Lookup() walks a
// chunked, pointer-stable id → string table guarded only by acquire loads
// of the published size and the chunk pointers; a snapshot reader pinned at
// any epoch resolves every id reachable from its epoch's tuples (ids are
// interned before the tuples carrying them are published). Intern() takes
// a mutex — writes are the cold path — and publishes the string before the
// size, so a reader that observes the new size observes the string.
#ifndef IVME_DATA_DICTIONARY_H_
#define IVME_DATA_DICTIONARY_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "src/data/value.h"

namespace ivme {

class Tuple;

/// Append-only intern table: string ↔ dense id (as tagged Value).
class StringDictionary {
 public:
  /// Strings per chunk × chunk slots: 4096 × 4096 = 16M distinct strings.
  static constexpr size_t kChunkSize = 1 << 12;
  static constexpr size_t kMaxChunks = 1 << 12;

  StringDictionary();
  ~StringDictionary();

  StringDictionary(const StringDictionary&) = delete;
  StringDictionary& operator=(const StringDictionary&) = delete;

  /// Interns `s` (idempotent) and returns its tagged Value. Thread-safe;
  /// safe to call concurrently with Lookup from reader threads.
  Value Intern(const std::string& s);

  /// The tagged Value of `s` if already interned, or 0 (never a valid
  /// dictionary Value) when absent. Takes the intern mutex.
  Value Find(const std::string& s) const;

  /// The string behind a tagged Value, or nullptr when `v` is not a live
  /// dictionary id. Lock-free; safe from pinned reader threads concurrent
  /// with Intern. The pointee is immutable and lives as long as the
  /// dictionary (ids are never reclaimed).
  const std::string* Lookup(Value v) const;

  /// Number of interned strings (ids are exactly [0, size())). Acquire
  /// load: every id below the returned size resolves via Lookup.
  size_t size() const { return size_.load(std::memory_order_acquire); }

  /// The string of id `id` (< size()). Lock-free, like Lookup.
  const std::string& String(uint32_t id) const;

  /// Renders `v` for humans: the quoted string for live dictionary ids,
  /// the decimal integer otherwise.
  std::string FormatValue(Value v) const;

 private:
  struct Chunk {
    std::string items[kChunkSize];
  };

  std::atomic<Chunk*> chunks_[kMaxChunks] = {};
  std::atomic<size_t> size_{0};

  mutable std::mutex mu_;                          ///< guards index_ + growth
  std::unordered_map<std::string, uint32_t> index_;  ///< string → id
};

/// True when every reserved-range value of `tuple` is a live id of `dict`;
/// otherwise false with `*bad` set to the offending value. The catalog's
/// write gates call this so a raw integer forged into the reserved range is
/// rejected loudly instead of colliding with an interned string.
bool ValidateDictValues(const Tuple& tuple, const StringDictionary& dict, Value* bad);

}  // namespace ivme

#endif  // IVME_DATA_DICTIONARY_H_
