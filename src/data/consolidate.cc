#include "src/data/consolidate.h"

#include "src/common/check.h"

namespace ivme {

size_t NetDeltaConsolidator::EnsureRelation(const std::string& relation) {
  const size_t existing = FindRelation(relation);
  if (existing != kUnknown) return existing;
  groups_.push_back(Group{relation, std::make_unique<TupleMap<Mult>>(), false, 0});
  return groups_.size() - 1;
}

size_t NetDeltaConsolidator::FindRelation(const std::string& relation) const {
  for (size_t i = 0; i < groups_.size(); ++i) {
    if (groups_[i].relation == relation) return i;
  }
  return kUnknown;
}

void NetDeltaConsolidator::Begin() {
  for (const size_t group : touched_) groups_[group].in_round = false;
  touched_.clear();
}

size_t NetDeltaConsolidator::Add(const std::string& relation, const Tuple& tuple, Mult mult) {
  const size_t group_id = FindRelation(relation);
  IVME_CHECK_MSG(group_id != kUnknown, "unknown relation " << relation);
  Group& group = groups_[group_id];
  if (!group.in_round) {
    group.in_round = true;
    group.accum->Clear();
    group.records = 0;
    touched_.push_back(group_id);
  }
  ++group.records;
  if (mult != 0) group.accum->Emplace(tuple).first->value += mult;
  return group_id;
}

}  // namespace ivme
