#include "src/data/dictionary.h"

#include "src/common/check.h"
#include "src/data/tuple.h"

namespace ivme {

StringDictionary::StringDictionary() = default;

StringDictionary::~StringDictionary() {
  for (auto& slot : chunks_) {
    delete slot.load(std::memory_order_relaxed);
  }
}

Value StringDictionary::Intern(const std::string& s) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(s);
  if (it != index_.end()) return MakeDictValue(it->second);

  const size_t id = size_.load(std::memory_order_relaxed);
  IVME_CHECK_MSG(id < kChunkSize * kMaxChunks, "string dictionary is full");
  const size_t chunk_idx = id / kChunkSize;
  Chunk* chunk = chunks_[chunk_idx].load(std::memory_order_relaxed);
  if (chunk == nullptr) {
    chunk = new Chunk();
    // Release: a reader that sees this pointer sees the constructed chunk.
    chunks_[chunk_idx].store(chunk, std::memory_order_release);
  }
  // Publish the string before the size: a reader that observes size > id
  // (acquire) observes the fully written string.
  chunk->items[id % kChunkSize] = s;
  size_.store(id + 1, std::memory_order_release);
  index_.emplace(s, static_cast<uint32_t>(id));
  return MakeDictValue(static_cast<uint32_t>(id));
}

Value StringDictionary::Find(const std::string& s) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(s);
  return it != index_.end() ? MakeDictValue(it->second) : 0;
}

const std::string* StringDictionary::Lookup(Value v) const {
  if (!IsDictValue(v)) return nullptr;
  const size_t id = DictIdOf(v);
  // Bits 32..61 must be zero: a reserved-range value whose low 32 bits
  // happen to name a live id is still forged if it doesn't round-trip.
  if (v != MakeDictValue(static_cast<uint32_t>(id))) return nullptr;
  if (id >= size_.load(std::memory_order_acquire)) return nullptr;
  const Chunk* chunk = chunks_[id / kChunkSize].load(std::memory_order_acquire);
  return &chunk->items[id % kChunkSize];
}

const std::string& StringDictionary::String(uint32_t id) const {
  const std::string* s = Lookup(MakeDictValue(id));
  IVME_CHECK_MSG(s != nullptr, "dictionary id " << id << " out of range");
  return *s;
}

std::string StringDictionary::FormatValue(Value v) const {
  const std::string* s = Lookup(v);
  if (s == nullptr) return std::to_string(v);
  return "\"" + *s + "\"";
}

bool ValidateDictValues(const Tuple& tuple, const StringDictionary& dict, Value* bad) {
  for (const Value v : tuple) {
    if (!IsDictValue(v)) continue;
    if (dict.Lookup(v) == nullptr) {
      if (bad != nullptr) *bad = v;
      return false;
    }
  }
  return true;
}

}  // namespace ivme
