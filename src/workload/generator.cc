#include "src/workload/generator.h"

#include <cmath>
#include <functional>
#include <set>

#include "src/common/check.h"
#include "src/common/rng.h"

namespace ivme {
namespace workload {

namespace {

std::vector<Tuple> DistinctTuples(size_t count, Rng& rng,
                                  const std::function<Tuple()>& gen) {
  std::set<Tuple> seen;
  std::vector<Tuple> out;
  size_t attempts = 0;
  const size_t max_attempts = count * 64 + 4096;
  while (out.size() < count) {
    IVME_CHECK_MSG(++attempts <= max_attempts,
                   "generator domain too small for the requested tuple count");
    Tuple t = gen();
    if (seen.insert(t).second) out.push_back(std::move(t));
  }
  (void)rng;
  return out;
}

}  // namespace

std::vector<Tuple> UniformTuples(size_t count, size_t arity, Value domain, uint64_t seed) {
  Rng rng(seed);
  return DistinctTuples(count, rng, [&] {
    Tuple t;
    t.Reserve(arity);
    for (size_t i = 0; i < arity; ++i) t.PushBack(static_cast<Value>(rng.Below(static_cast<uint64_t>(domain))));
    return t;
  });
}

std::vector<Tuple> ZipfTuples(size_t count, size_t arity, int key_col, Value num_keys,
                              double skew, Value domain, uint64_t seed) {
  IVME_CHECK(key_col >= 0 && static_cast<size_t>(key_col) < arity);
  Rng rng(seed);
  // Precompute the Zipf CDF over [0, num_keys).
  std::vector<double> cdf(static_cast<size_t>(num_keys));
  double total = 0;
  for (size_t k = 0; k < cdf.size(); ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), skew);
    cdf[k] = total;
  }
  auto sample_key = [&]() -> Value {
    const double pick = rng.NextDouble() * total;
    // Binary search in the CDF.
    size_t lo = 0, hi = cdf.size() - 1;
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (cdf[mid] < pick) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return static_cast<Value>(lo);
  };
  return DistinctTuples(count, rng, [&] {
    Tuple t;
    t.Reserve(arity);
    for (size_t i = 0; i < arity; ++i) {
      if (static_cast<int>(i) == key_col) {
        t.PushBack(sample_key());
      } else {
        t.PushBack(static_cast<Value>(rng.Below(static_cast<uint64_t>(domain))));
      }
    }
    return t;
  });
}

std::vector<Tuple> MatrixTuples(Value n, double density, uint64_t seed) {
  Rng rng(seed);
  std::vector<Tuple> out;
  for (Value i = 0; i < n; ++i) {
    for (Value j = 0; j < n; ++j) {
      if (rng.Chance(density)) out.push_back(Tuple{i, j});
    }
  }
  return out;
}

std::vector<Tuple> HeavyLightPairs(size_t heavy_keys, size_t degree, size_t light_count,
                                   bool key_first, uint64_t seed) {
  (void)seed;
  std::vector<Tuple> out;
  Value partner = 0;
  for (size_t k = 0; k < heavy_keys; ++k) {
    for (size_t d = 0; d < degree; ++d) {
      const Value key = static_cast<Value>(k);
      const Value other = partner++;
      out.push_back(key_first ? Tuple{key, other} : Tuple{other, key});
    }
  }
  for (size_t k = 0; k < light_count; ++k) {
    const Value key = static_cast<Value>(heavy_keys + k);
    const Value other = partner++;
    out.push_back(key_first ? Tuple{key, other} : Tuple{other, key});
  }
  return out;
}

}  // namespace workload
}  // namespace ivme
