// Update-stream generation: valid sequences of single-tuple inserts and
// deletes (deletes always target live tuples).
#ifndef IVME_WORKLOAD_UPDATE_STREAM_H_
#define IVME_WORKLOAD_UPDATE_STREAM_H_

#include <functional>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/data/tuple.h"

namespace ivme {
namespace workload {

/// A single-tuple update δR = {tuple → mult}.
struct Update {
  std::string relation;
  Tuple tuple;
  Mult mult = 1;
};

/// Generates `count` updates against one relation: with probability
/// `delete_ratio` a delete of a uniformly chosen live tuple (skipped when
/// none are live), otherwise an insert of `fresh(rng)`. `initial` seeds the
/// live set (the tuples loaded before the stream starts).
std::vector<Update> MixedStream(const std::string& relation, const std::vector<Tuple>& initial,
                                size_t count, double delete_ratio,
                                const std::function<Tuple(Rng&)>& fresh, uint64_t seed);

/// Insert-then-delete round trips: inserts all of `tuples`, then deletes
/// them in a shuffled order. Exercises growth across both rebalancing
/// directions.
std::vector<Update> InsertDeleteRoundTrip(const std::string& relation,
                                          const std::vector<Tuple>& tuples, uint64_t seed);

}  // namespace workload
}  // namespace ivme

#endif  // IVME_WORKLOAD_UPDATE_STREAM_H_
