// Update-stream generation: valid sequences of single-tuple inserts and
// deletes (deletes always target live tuples), both as flat streams for
// Engine::ApplyUpdate and as batched streams for Engine::ApplyBatch.
#ifndef IVME_WORKLOAD_UPDATE_STREAM_H_
#define IVME_WORKLOAD_UPDATE_STREAM_H_

#include <functional>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/data/tuple.h"
#include "src/data/update.h"

namespace ivme {
namespace workload {

/// A single-tuple update δR = {tuple → mult}; shared with the engine's
/// batch API (src/data/update.h).
using Update = ::ivme::Update;

/// One ingestion batch, as consumed by Engine::ApplyBatch.
using Batch = ::ivme::UpdateBatch;

/// Generates `count` updates against one relation: with probability
/// `delete_ratio` a delete of a uniformly chosen live tuple (skipped when
/// none are live), otherwise an insert of `fresh(rng)`. `initial` seeds the
/// live set (the tuples loaded before the stream starts). Every delete
/// targets a live tuple, so the stream is valid: no single-tuple update is
/// ever rejected, and any chunking of it through ApplyBatch reaches the
/// same final state.
std::vector<Update> MixedStream(const std::string& relation, const std::vector<Tuple>& initial,
                                size_t count, double delete_ratio,
                                const std::function<Tuple(Rng&)>& fresh, uint64_t seed);

/// Insert-then-delete round trips: inserts all of `tuples`, then deletes
/// them in a shuffled order. Exercises growth across both rebalancing
/// directions.
std::vector<Update> InsertDeleteRoundTrip(const std::string& relation,
                                          const std::vector<Tuple>& tuples, uint64_t seed);

/// Shape of a batched update stream.
struct BatchStreamOptions {
  size_t batch_count = 16;
  size_t batch_size = 64;
  /// Insert/delete skew: probability that a step deletes a live tuple.
  /// 0 gives the insert-only mode of the related insert-only/insert-delete
  /// trade-off work (Abo Khamis et al.); values near 1 are delete-heavy
  /// (fresh inserts fill in whenever the live set drains empty).
  double delete_ratio = 0.0;
  uint64_t seed = 1;
};

/// Generates `batch_count` batches of `batch_size` updates with the given
/// insert/delete skew — a MixedStream cut into fixed-size batches. Skewed
/// `fresh` generators (hot keys) yield batches whose repeated tuples
/// consolidate into weighted net deltas under ApplyBatch.
std::vector<Batch> BatchedMixedStream(const std::string& relation,
                                      const std::vector<Tuple>& initial,
                                      const BatchStreamOptions& options,
                                      const std::function<Tuple(Rng&)>& fresh);

/// Cuts a flat stream into consecutive batches of at most `batch_size`
/// updates (the last batch may be shorter). Applying the chunks in order
/// through ApplyBatch is equivalent to applying the flat stream through
/// ApplyUpdate whenever the stream is valid.
std::vector<Batch> ChunkStream(const std::vector<Update>& stream, size_t batch_size);

}  // namespace workload
}  // namespace ivme

#endif  // IVME_WORKLOAD_UPDATE_STREAM_H_
