#include "src/workload/geo_join.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/common/check.h"
#include "src/common/rng.h"

namespace ivme {
namespace workload {

namespace {

std::string Label(const char* kind, size_t id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s-%06zu", kind, id);
  return buf;
}

}  // namespace

const char* GeoJoinQueryText() {
  return "Q(CI, CN, C, S, N, CU, UN) = geo(CI, C, S, N), city(CI, CN), "
         "customer(CI, CU, UN)";
}

GeoJoinData GenerateGeoJoin(const GeoJoinConfig& config, StringDictionary* dict) {
  IVME_CHECK_MSG(dict != nullptr, "geo-join generation needs a dictionary");
  IVME_CHECK_MSG(config.nations > 0 && config.states_per_nation > 0 &&
                     config.counties_per_state > 0 && config.cities_per_county > 0,
                 "geo-join hierarchy levels must be positive");
  Rng rng(config.seed);
  GeoJoinData data;

  // Walk the hierarchy top-down, interning each level's key once and
  // emitting one denormalized geo row plus one city-name row per city.
  std::vector<Value> cities;
  size_t city_id = 0;
  for (size_t n = 0; n < config.nations; ++n) {
    const Value nation = dict->Intern(Label("nation", n));
    for (size_t s = 0; s < config.states_per_nation; ++s) {
      const Value state = dict->Intern(Label("state", n * config.states_per_nation + s));
      for (size_t c = 0; c < config.counties_per_state; ++c) {
        const size_t county_id =
            (n * config.states_per_nation + s) * config.counties_per_state + c;
        const Value county = dict->Intern(Label("county", county_id));
        for (size_t t = 0; t < config.cities_per_county; ++t, ++city_id) {
          const Value city = dict->Intern(Label("city", city_id));
          data.geo.emplace_back(Tuple{city, county, state, nation}, 1);
          data.city.emplace_back(Tuple{city, dict->Intern(Label("cityname", city_id))}, 1);
          cities.push_back(city);
        }
      }
    }
  }
  data.num_cities = cities.size();

  // Customers-per-city degrees: Zipf(skew) over a shuffled city ranking, so
  // the hot cities land on arbitrary hash shards rather than always the
  // same ones. Each customer FK-references its city and carries its own
  // interned id and name.
  std::vector<size_t> ranking(cities.size());
  for (size_t i = 0; i < ranking.size(); ++i) ranking[i] = i;
  for (size_t i = ranking.size(); i > 1; --i) {
    std::swap(ranking[i - 1], ranking[rng.Below(i)]);
  }
  std::vector<double> cdf(cities.size());
  double total = 0;
  for (size_t k = 0; k < cdf.size(); ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), config.zipf_skew);
    cdf[k] = total;
  }
  std::vector<size_t> degree(cities.size(), 0);
  data.customer.reserve(config.customers);
  for (size_t u = 0; u < config.customers; ++u) {
    const double pick = rng.NextDouble() * total;
    const size_t rank = static_cast<size_t>(
        std::lower_bound(cdf.begin(), cdf.end(), pick) - cdf.begin());
    const size_t city_index = ranking[std::min(rank, cities.size() - 1)];
    ++degree[city_index];
    data.customer.emplace_back(Tuple{cities[city_index], dict->Intern(Label("cust", u)),
                                     dict->Intern(Label("custname", u % 1024))},
                               1);
  }
  size_t hottest = 0;
  for (size_t i = 1; i < degree.size(); ++i) {
    if (degree[i] > degree[hottest]) hottest = i;
  }
  data.hottest_city = cities[hottest];
  data.hottest_degree = degree[hottest];
  return data;
}

}  // namespace workload
}  // namespace ivme
