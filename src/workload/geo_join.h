// Geo-join FK workload: a denormalized geographic hierarchy keyed by
// dictionary-encoded string ids, used to exercise skew-aware routing. One
// star query joins three relations on the city root:
//
//   Q(CI, CN, C, S, N, CU, UN) = geo(CI, C, S, N), city(CI, CN),
//                                customer(CI, CU, UN)
//
//   geo(CI, C, S, N)      city → county → state → nation (one row per city)
//   city(CI, CN)          city id → display name
//   customer(CI, CU, UN)  customers, FK to their city
//
// Every key (CI, C, S, N, CU) and every name (CN, UN) is an interned
// string, so the whole pipeline — routing, join state, enumeration,
// durability — runs on tagged dictionary Values. Customer degrees per city
// follow Zipf(skew) over a shuffled city ranking: a handful of hot cities
// absorb most of the customer mass (~1% of cities carry the bulk at
// skew ≥ 1), which is exactly the load profile that overloads one hash
// shard and triggers hot-key promotion.
#ifndef IVME_WORKLOAD_GEO_JOIN_H_
#define IVME_WORKLOAD_GEO_JOIN_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/data/dictionary.h"
#include "src/data/tuple.h"

namespace ivme {
namespace workload {

struct GeoJoinConfig {
  size_t nations = 4;
  size_t states_per_nation = 5;
  size_t counties_per_state = 5;
  size_t cities_per_county = 4;  ///< total cities = product of the four
  size_t customers = 20000;
  /// Zipf exponent of the customers-per-city degree distribution
  /// (0 = uniform, 1+ = a few hot cities dominate).
  double zipf_skew = 1.0;
  uint64_t seed = 42;
};

/// The generated relation contents (insert multiplicities, all 1).
struct GeoJoinData {
  std::vector<std::pair<Tuple, Mult>> geo;       ///< geo(CI, C, S, N)
  std::vector<std::pair<Tuple, Mult>> city;      ///< city(CI, CN)
  std::vector<std::pair<Tuple, Mult>> customer;  ///< customer(CI, CU, UN)
  size_t num_cities = 0;
  Value hottest_city = 0;        ///< root value with the largest degree
  size_t hottest_degree = 0;     ///< its customer count
};

/// The star query text (ConjunctiveQuery::Parse syntax).
const char* GeoJoinQueryText();

/// Generates the hierarchy and customer set, interning every key and name
/// through `dict` (shared with the catalog the data will be loaded into).
GeoJoinData GenerateGeoJoin(const GeoJoinConfig& config, StringDictionary* dict);

}  // namespace workload
}  // namespace ivme

#endif  // IVME_WORKLOAD_GEO_JOIN_H_
