// Batch-stream drivers: feed a batched update stream to an engine and
// report wall-clock throughput and ingestion counts. The sharded overload
// is the parallel driver mode — ShardedEngine::ApplyBatch splits each batch
// per shard and applies the shard deltas concurrently on the engine's
// thread pool, so driving a single batched stream through it exercises
// parallel maintenance end to end. Shared by the benches and examples.
#ifndef IVME_WORKLOAD_DRIVER_H_
#define IVME_WORKLOAD_DRIVER_H_

#include <vector>

#include "src/core/catalog.h"
#include "src/core/engine.h"
#include "src/core/sharded_catalog.h"
#include "src/core/sharded_engine.h"
#include "src/workload/update_stream.h"

namespace ivme {
namespace workload {

/// Outcome of driving one batched stream.
struct DriveStats {
  size_t records = 0;   ///< update records ingested (sum of batch sizes)
  size_t applied = 0;   ///< consolidated net entries that reached the views
  size_t rejected = 0;  ///< net deletes below zero, skipped per entry
  size_t batches = 0;   ///< ApplyBatch calls issued
  double seconds = 0;   ///< wall clock over all ApplyBatch calls

  /// Records per second (0 when nothing ran).
  double Throughput() const { return seconds > 0 ? static_cast<double>(records) / seconds : 0; }
};

/// Applies the batches in order through Engine::ApplyBatch (single-shard
/// baseline driver).
DriveStats DriveBatches(Engine& engine, const std::vector<Batch>& batches);

/// Applies the batches in order through ShardedEngine::ApplyBatch — each
/// batch is routed per shard and the shard deltas apply concurrently.
DriveStats DriveBatches(ShardedEngine& engine, const std::vector<Batch>& batches);

/// Applies the batches through QueryCatalog::ApplyBatch: one consolidation
/// and one base-storage write per net entry, fanned out to every
/// registered query's maintenance.
DriveStats DriveBatches(QueryCatalog& catalog, const std::vector<Batch>& batches);

/// Applies the batches through ShardedCatalog::ApplyBatch — consolidated
/// once, routed per shard, applied concurrently.
DriveStats DriveBatches(ShardedCatalog& catalog, const std::vector<Batch>& batches);

}  // namespace workload
}  // namespace ivme

#endif  // IVME_WORKLOAD_DRIVER_H_
