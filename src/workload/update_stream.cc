#include "src/workload/update_stream.h"

#include <algorithm>

namespace ivme {
namespace workload {

std::vector<Update> MixedStream(const std::string& relation, const std::vector<Tuple>& initial,
                                size_t count, double delete_ratio,
                                const std::function<Tuple(Rng&)>& fresh, uint64_t seed) {
  Rng rng(seed);
  std::vector<Tuple> live = initial;
  std::vector<Update> out;
  out.reserve(count);
  while (out.size() < count) {
    if (!live.empty() && rng.Chance(delete_ratio)) {
      const size_t pick = static_cast<size_t>(rng.Below(live.size()));
      out.push_back(Update{relation, live[pick], -1});
      live[pick] = live.back();
      live.pop_back();
    } else {
      Tuple t = fresh(rng);
      live.push_back(t);
      out.push_back(Update{relation, std::move(t), 1});
    }
  }
  return out;
}

std::vector<Batch> BatchedMixedStream(const std::string& relation,
                                      const std::vector<Tuple>& initial,
                                      const BatchStreamOptions& options,
                                      const std::function<Tuple(Rng&)>& fresh) {
  const auto flat = MixedStream(relation, initial, options.batch_count * options.batch_size,
                                options.delete_ratio, fresh, options.seed);
  return ChunkStream(flat, options.batch_size);
}

std::vector<Batch> ChunkStream(const std::vector<Update>& stream, size_t batch_size) {
  std::vector<Batch> batches;
  if (batch_size == 0) batch_size = 1;
  batches.reserve((stream.size() + batch_size - 1) / batch_size);
  for (size_t start = 0; start < stream.size(); start += batch_size) {
    const size_t end = std::min(stream.size(), start + batch_size);
    batches.emplace_back(stream.begin() + static_cast<std::ptrdiff_t>(start),
                         stream.begin() + static_cast<std::ptrdiff_t>(end));
  }
  return batches;
}

std::vector<Update> InsertDeleteRoundTrip(const std::string& relation,
                                          const std::vector<Tuple>& tuples, uint64_t seed) {
  Rng rng(seed);
  std::vector<Update> out;
  out.reserve(tuples.size() * 2);
  for (const Tuple& t : tuples) out.push_back(Update{relation, t, 1});
  std::vector<size_t> order(tuples.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (size_t i = order.size(); i > 1; --i) {
    const size_t j = static_cast<size_t>(rng.Below(i));
    std::swap(order[i - 1], order[j]);
  }
  for (size_t i : order) out.push_back(Update{relation, tuples[i], -1});
  return out;
}

}  // namespace workload
}  // namespace ivme
