#include "src/workload/driver.h"

#include <chrono>

namespace ivme {
namespace workload {

namespace {

template <typename AnyEngine>
DriveStats Drive(AnyEngine& engine, const std::vector<Batch>& batches) {
  DriveStats stats;
  const auto start = std::chrono::steady_clock::now();
  for (const Batch& batch : batches) {
    const auto result = engine.ApplyBatch(batch);
    stats.records += batch.size();
    stats.applied += result.applied;
    stats.rejected += result.rejected;
    ++stats.batches;
  }
  stats.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return stats;
}

}  // namespace

DriveStats DriveBatches(Engine& engine, const std::vector<Batch>& batches) {
  return Drive(engine, batches);
}

DriveStats DriveBatches(ShardedEngine& engine, const std::vector<Batch>& batches) {
  return Drive(engine, batches);
}

DriveStats DriveBatches(QueryCatalog& catalog, const std::vector<Batch>& batches) {
  return Drive(catalog, batches);
}

DriveStats DriveBatches(ShardedCatalog& catalog, const std::vector<Batch>& batches) {
  return Drive(catalog, batches);
}

}  // namespace workload
}  // namespace ivme
