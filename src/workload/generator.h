// Synthetic data generators for tests, examples, and the benchmark harness:
// uniform relations, Zipf-skewed join-key degrees (to exercise heavy/light
// partitions), Boolean matrix encodings (Example 28), and heavy-hitter
// mixes.
#ifndef IVME_WORKLOAD_GENERATOR_H_
#define IVME_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "src/data/tuple.h"

namespace ivme {
namespace workload {

/// `count` distinct uniform tuples with `arity` columns over [0, domain).
/// The domain must be large enough (domain^arity ≥ ~2·count).
std::vector<Tuple> UniformTuples(size_t count, size_t arity, Value domain, uint64_t seed);

/// `count` distinct tuples where column `key_col` follows a Zipf(skew)
/// distribution over [0, num_keys) — a few heavy join keys, a long light
/// tail — and the other columns are uniform over [0, domain).
std::vector<Tuple> ZipfTuples(size_t count, size_t arity, int key_col, Value num_keys,
                              double skew, Value domain, uint64_t seed);

/// Pairs (i, j) of an n×n Boolean matrix where each cell is present with
/// probability `density` (Example 28 / OMv encodings).
std::vector<Tuple> MatrixTuples(Value n, double density, uint64_t seed);

/// Worst-case data for Q(A,C) = R(A,B), S(B,C): `heavy_keys` B-values each
/// paired with `degree` distinct partners (degree² output pairs per heavy
/// key), plus `light_count` degree-1 keys.
std::vector<Tuple> HeavyLightPairs(size_t heavy_keys, size_t degree, size_t light_count,
                                   bool key_first, uint64_t seed);

}  // namespace workload
}  // namespace ivme

#endif  // IVME_WORKLOAD_GENERATOR_H_
