// Hypergraph acyclicity via GYO reduction, plus the free-connex test
// (Section 3, "Queries"; [14]). These work for arbitrary conjunctive
// queries, not only hierarchical ones, and serve as the ground truth the
// hierarchical shortcuts are tested against.
#ifndef IVME_QUERY_HYPERGRAPH_H_
#define IVME_QUERY_HYPERGRAPH_H_

#include <vector>

#include "src/data/schema.h"
#include "src/query/query.h"

namespace ivme {

/// True when the hypergraph with the given hyperedges is α-acyclic
/// (GYO reduction succeeds). Empty edge sets are acyclic.
bool IsAlphaAcyclic(const std::vector<Schema>& edges);

/// α-acyclicity of a query's body.
bool IsAlphaAcyclic(const ConjunctiveQuery& q);

/// Free-connex test for α-acyclic queries: Q is free-connex iff Q is
/// α-acyclic and Q extended with a head atom over free(Q) is α-acyclic [14].
bool IsFreeConnex(const std::vector<Schema>& edges, const Schema& free);

bool IsFreeConnex(const ConjunctiveQuery& q);

/// Connected components of the hypergraph (atoms grouped by shared
/// variables); isolated atoms form their own components. Returns atom-index
/// groups in first-occurrence order.
std::vector<std::vector<int>> ConnectedComponents(const std::vector<Schema>& edges);

}  // namespace ivme

#endif  // IVME_QUERY_HYPERGRAPH_H_
