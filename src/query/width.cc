#include "src/query/width.h"

#include <algorithm>
#include <functional>

#include "src/common/check.h"
#include "src/query/classify.h"

namespace ivme {

namespace {

std::vector<Schema> AtomSchemas(const ConjunctiveQuery& q) {
  std::vector<Schema> atoms;
  for (const auto& atom : q.atoms()) atoms.push_back(atom.schema);
  return atoms;
}

}  // namespace

int StaticWidthOf(const ConjunctiveQuery& q, const VariableOrder& vo) {
  const auto atoms = AtomSchemas(q);
  int width = 0;
  std::function<void(const VONode*)> visit = [&](const VONode* node) {
    if (node->IsVariable()) {
      Schema targets = node->dep;
      targets = targets.Union(Schema({node->var}));
      width = std::max(width, MinAtomCover(atoms, targets));
    }
    for (const auto& child : node->children) visit(child.get());
  };
  for (const auto& root : vo.roots()) visit(root.get());
  return width;
}

int DynamicWidthOf(const ConjunctiveQuery& q, const VariableOrder& vo) {
  const auto atoms = AtomSchemas(q);
  int width = 0;
  std::function<void(const VONode*)> visit = [&](const VONode* node) {
    if (node->IsVariable()) {
      Schema base = node->dep;
      base = base.Union(Schema({node->var}));
      for (int a : node->subtree_atoms) {
        const Schema targets = base.Minus(q.atom(static_cast<size_t>(a)).schema);
        width = std::max(width, MinAtomCover(atoms, targets));
      }
    }
    for (const auto& child : node->children) visit(child.get());
  };
  for (const auto& root : vo.roots()) visit(root.get());
  return width;
}

int StaticWidth(const ConjunctiveQuery& q) {
  const VariableOrder vo = VariableOrder::FreeTopOfCanonical(q);
  return StaticWidthOf(q, vo);
}

int DynamicWidth(const ConjunctiveQuery& q) {
  const VariableOrder vo = VariableOrder::FreeTopOfCanonical(q);
  return DynamicWidthOf(q, vo);
}

}  // namespace ivme
