#include "src/query/hypergraph.h"

#include <algorithm>
#include <map>
#include <set>

namespace ivme {

namespace {

// One GYO (Graham/Yu–Özsoyoğlu) reduction pass over a working copy of the
// edges, as variable sets. The hypergraph is α-acyclic iff repeating
//   (a) remove variables that occur in at most one edge, and
//   (b) remove edges contained in another edge
// empties every edge.
bool GyoReduces(std::vector<std::set<VarId>> edges) {
  bool changed = true;
  while (changed) {
    changed = false;
    // (a) Remove variables occurring in exactly one edge.
    std::map<VarId, int> occurrence_count;
    for (const auto& e : edges) {
      for (VarId v : e) ++occurrence_count[v];
    }
    for (auto& e : edges) {
      for (auto it = e.begin(); it != e.end();) {
        if (occurrence_count[*it] <= 1) {
          it = e.erase(it);
          changed = true;
        } else {
          ++it;
        }
      }
    }
    // (b) Remove edges contained in another edge (including empty ones and
    // duplicates; keep one representative of duplicate pairs).
    for (size_t i = 0; i < edges.size();) {
      bool contained = false;
      for (size_t j = 0; j < edges.size(); ++j) {
        if (i == j) continue;
        const bool subset =
            std::includes(edges[j].begin(), edges[j].end(), edges[i].begin(), edges[i].end());
        if (subset && (edges[i] != edges[j] || i > j)) {
          contained = true;
          break;
        }
      }
      if (contained) {
        edges.erase(edges.begin() + static_cast<long>(i));
        changed = true;
      } else {
        ++i;
      }
    }
  }
  for (const auto& e : edges) {
    if (!e.empty()) return false;
  }
  return true;
}

std::vector<std::set<VarId>> ToSets(const std::vector<Schema>& edges) {
  std::vector<std::set<VarId>> out;
  out.reserve(edges.size());
  for (const auto& e : edges) out.emplace_back(e.begin(), e.end());
  return out;
}

}  // namespace

bool IsAlphaAcyclic(const std::vector<Schema>& edges) { return GyoReduces(ToSets(edges)); }

bool IsAlphaAcyclic(const ConjunctiveQuery& q) {
  std::vector<Schema> edges;
  for (const auto& atom : q.atoms()) edges.push_back(atom.schema);
  return IsAlphaAcyclic(edges);
}

bool IsFreeConnex(const std::vector<Schema>& edges, const Schema& free) {
  if (!IsAlphaAcyclic(edges)) return false;
  std::vector<Schema> extended = edges;
  extended.push_back(free);
  return IsAlphaAcyclic(extended);
}

bool IsFreeConnex(const ConjunctiveQuery& q) {
  std::vector<Schema> edges;
  for (const auto& atom : q.atoms()) edges.push_back(atom.schema);
  return IsFreeConnex(edges, q.free_vars());
}

std::vector<std::vector<int>> ConnectedComponents(const std::vector<Schema>& edges) {
  const int n = static_cast<int>(edges.size());
  std::vector<int> component(static_cast<size_t>(n), -1);
  std::vector<std::vector<int>> groups;
  for (int i = 0; i < n; ++i) {
    if (component[static_cast<size_t>(i)] >= 0) continue;
    const int id = static_cast<int>(groups.size());
    groups.push_back({});
    // BFS over atoms sharing variables.
    std::vector<int> queue = {i};
    component[static_cast<size_t>(i)] = id;
    while (!queue.empty()) {
      const int a = queue.back();
      queue.pop_back();
      groups[static_cast<size_t>(id)].push_back(a);
      for (int b = 0; b < n; ++b) {
        if (component[static_cast<size_t>(b)] >= 0) continue;
        if (!edges[static_cast<size_t>(a)].Intersect(edges[static_cast<size_t>(b)]).empty()) {
          component[static_cast<size_t>(b)] = id;
          queue.push_back(b);
        }
      }
    }
    std::sort(groups[static_cast<size_t>(id)].begin(), groups[static_cast<size_t>(id)].end());
  }
  return groups;
}

}  // namespace ivme
