// Conjunctive queries (Section 3): Q(F) = R1(X1), ..., Rn(Xn), with free
// variables F and one atom per relation occurrence. This is the engine's
// input language; classification (hierarchical, q-hierarchical, widths)
// lives in classify.h / width.h.
#ifndef IVME_QUERY_QUERY_H_
#define IVME_QUERY_QUERY_H_

#include <optional>
#include <string>
#include <vector>

#include "src/data/mutability.h"
#include "src/data/schema.h"

namespace ivme {

/// A query atom R(X): relation symbol plus schema. The same relation symbol
/// may appear in several atoms (repeating relation symbols / self-joins).
struct Atom {
  std::string relation;
  Schema schema;
};

/// A conjunctive query with a fixed set of named variables. Variable ids are
/// dense indexes into `var_names()`.
class ConjunctiveQuery {
 public:
  /// Parses "Q(A, C) = R(A, B), S(B, C)". Variables are single identifiers;
  /// the head may be empty ("Q() = ...") for Boolean queries. Body atoms may
  /// carry a mutability prefix, "static S(B, C)" or "insert_only R(A, B)";
  /// the declaration applies to the relation symbol (every occurrence).
  /// Returns std::nullopt on malformed input, including conflicting
  /// declarations for one relation. A relation literally named "static" or
  /// "insert_only" is still parseable: the word is a modifier only when not
  /// directly followed by '('.
  static std::optional<ConjunctiveQuery> Parse(const std::string& text);

  /// Programmatic construction; atom schemas and the head use variable
  /// names, resolved (and created) in order of first occurrence.
  static ConjunctiveQuery Make(
      const std::string& name, const std::vector<std::string>& head,
      const std::vector<std::pair<std::string, std::vector<std::string>>>& atoms);

  const std::string& name() const { return name_; }
  const std::vector<Atom>& atoms() const { return atoms_; }
  const Atom& atom(size_t i) const { return atoms_[i]; }
  size_t num_atoms() const { return atoms_.size(); }

  /// The free variables F (the head schema).
  const Schema& free_vars() const { return free_; }

  /// vars(Q), ordered by variable id.
  const Schema& all_vars() const { return all_vars_; }

  size_t num_vars() const { return var_names_.size(); }
  const std::vector<std::string>& var_names() const { return var_names_; }
  const std::string& var_name(VarId v) const { return var_names_[static_cast<size_t>(v)]; }

  /// Id of a variable name, or kInvalidVar.
  VarId FindVar(const std::string& name) const;

  bool IsFree(VarId v) const { return free_.Contains(v); }
  bool IsBound(VarId v) const { return !IsFree(v); }

  /// atoms(X): indices of atoms whose schema contains `v`.
  const std::vector<int>& AtomsOf(VarId v) const {
    return atoms_of_[static_cast<size_t>(v)];
  }

  /// free(Q) = vars(Q): no bound variables.
  bool IsFull() const { return free_.size() == all_vars_.size(); }

  /// Distinct relation symbols, in order of first occurrence.
  std::vector<std::string> RelationNames() const;

  /// True when `rel` names more than one atom.
  bool HasRepeatedSymbol(const std::string& rel) const;

  /// Declared mutability of atom `i` (kDynamic unless declared otherwise).
  Mutability atom_mutability(size_t i) const { return atom_mutability_[i]; }

  /// Declared mutability of relation `rel`; kDynamic when the relation is
  /// not part of the query.
  Mutability MutabilityOf(const std::string& rel) const;

  /// Declares the mutability of every atom of `rel`. No-op when the query
  /// has no such atom.
  void SetMutability(const std::string& rel, Mutability m);

  /// True when some atom is declared non-dynamic.
  bool HasNonDynamicAtoms() const;

  /// Round-trips through Parse: non-dynamic relations are emitted with
  /// their mutability prefix on their first occurrence.
  std::string ToString() const;

 private:
  ConjunctiveQuery() = default;
  void Finalize();

  std::string name_;
  std::vector<std::string> var_names_;
  Schema free_;
  Schema all_vars_;
  std::vector<Atom> atoms_;
  std::vector<Mutability> atom_mutability_;  ///< parallel to atoms_
  std::vector<std::vector<int>> atoms_of_;
};

}  // namespace ivme

#endif  // IVME_QUERY_QUERY_H_
