#include "src/query/edge_cover.h"

#include <cmath>
#include <limits>

#include "src/common/check.h"

namespace ivme {

namespace {

constexpr double kEps = 1e-9;

// Simplex over the tableau rows (basis maintained explicitly). Minimizes
// c·x for the current basic feasible solution; returns false on
// unboundedness (cannot happen for the bounded edge-cover LPs).
bool RunSimplex(std::vector<std::vector<double>>& a, std::vector<double>& b,
                std::vector<double>& c, std::vector<int>& basis, double& objective) {
  const size_t m = a.size();
  const size_t n = c.size();
  while (true) {
    // Reduced costs: c_j - c_B · B^{-1} A_j. The tableau is kept in
    // canonical form (basis columns are unit vectors), so the reduced cost
    // is just c[j] after eliminations.
    int enter = -1;
    for (size_t j = 0; j < n; ++j) {
      if (c[j] < -kEps) {
        enter = static_cast<int>(j);  // Bland: first improving column
        break;
      }
    }
    if (enter < 0) return true;  // optimal
    // Ratio test (Bland: smallest basis variable index on ties).
    int leave_row = -1;
    double best_ratio = 0;
    for (size_t i = 0; i < m; ++i) {
      if (a[i][static_cast<size_t>(enter)] > kEps) {
        const double ratio = b[i] / a[i][static_cast<size_t>(enter)];
        if (leave_row < 0 || ratio < best_ratio - kEps ||
            (std::fabs(ratio - best_ratio) <= kEps &&
             basis[i] < basis[static_cast<size_t>(leave_row)])) {
          leave_row = static_cast<int>(i);
          best_ratio = ratio;
        }
      }
    }
    if (leave_row < 0) return false;  // unbounded
    // Pivot.
    const size_t r = static_cast<size_t>(leave_row);
    const size_t e = static_cast<size_t>(enter);
    const double pivot = a[r][e];
    for (size_t j = 0; j < n; ++j) a[r][j] /= pivot;
    b[r] /= pivot;
    for (size_t i = 0; i < m; ++i) {
      if (i == r || std::fabs(a[i][e]) <= kEps) continue;
      const double factor = a[i][e];
      for (size_t j = 0; j < n; ++j) a[i][j] -= factor * a[r][j];
      b[i] -= factor * b[r];
    }
    const double cfactor = c[e];
    if (std::fabs(cfactor) > kEps) {
      for (size_t j = 0; j < n; ++j) c[j] -= cfactor * a[r][j];
      objective -= cfactor * b[r];
    }
    basis[r] = enter;
  }
}

}  // namespace

std::optional<double> SolveSimplexEq(std::vector<std::vector<double>> a, std::vector<double> b,
                                     std::vector<double> c) {
  const size_t m = a.size();
  const size_t n = c.size();
  for (size_t i = 0; i < m; ++i) {
    IVME_CHECK(a[i].size() == n);
    IVME_CHECK_MSG(b[i] >= 0, "SolveSimplexEq requires b >= 0");
  }

  // Phase 1: add one artificial variable per row; minimize their sum.
  std::vector<std::vector<double>> a1(m, std::vector<double>(n + m, 0.0));
  std::vector<double> c1(n + m, 0.0);
  std::vector<int> basis(m);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) a1[i][j] = a[i][j];
    a1[i][n + i] = 1.0;
    c1[n + i] = 1.0;
    basis[i] = static_cast<int>(n + i);
  }
  // Put phase-1 costs in canonical form (eliminate basis columns).
  double phase1_obj = 0;
  std::vector<double> b1 = b;
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n + m; ++j) c1[j] -= a1[i][j];
    phase1_obj -= b1[i];
  }
  if (!RunSimplex(a1, b1, c1, basis, phase1_obj)) return std::nullopt;
  if (phase1_obj < -kEps * 100) return std::nullopt;  // infeasible (residual > 0)

  // Drive artificial variables out of the basis where possible; rows whose
  // basis stays artificial are redundant (b must be ~0) and kept harmless.
  for (size_t i = 0; i < m; ++i) {
    if (basis[i] < static_cast<int>(n)) continue;
    int pivot_col = -1;
    for (size_t j = 0; j < n; ++j) {
      if (std::fabs(a1[i][j]) > kEps) {
        pivot_col = static_cast<int>(j);
        break;
      }
    }
    if (pivot_col < 0) continue;
    const size_t e = static_cast<size_t>(pivot_col);
    const double pivot = a1[i][e];
    for (size_t j = 0; j < n + m; ++j) a1[i][j] /= pivot;
    b1[i] /= pivot;
    for (size_t r = 0; r < m; ++r) {
      if (r == i || std::fabs(a1[r][e]) <= kEps) continue;
      const double factor = a1[r][e];
      for (size_t j = 0; j < n + m; ++j) a1[r][j] -= factor * a1[i][j];
      b1[r] -= factor * b1[i];
    }
    basis[i] = pivot_col;
  }

  // Phase 2 on the original costs, restricted to the structural columns.
  std::vector<std::vector<double>> a2(m, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) a2[i][j] = a1[i][j];
  }
  std::vector<double> c2 = c;
  double objective = 0;
  for (size_t i = 0; i < m; ++i) {
    if (basis[i] >= static_cast<int>(n)) continue;  // redundant row
    const size_t bj = static_cast<size_t>(basis[i]);
    const double factor = c2[bj];
    if (std::fabs(factor) <= kEps) continue;
    for (size_t j = 0; j < n; ++j) c2[j] -= factor * a2[i][j];
    objective -= factor * b1[i];
  }
  if (!RunSimplex(a2, b1, c2, basis, objective)) return std::nullopt;
  return -objective;
}

std::optional<double> FractionalEdgeCoverLP(const std::vector<Schema>& atoms,
                                            const Schema& targets) {
  if (targets.empty()) return 0.0;
  const size_t n = atoms.size();
  const size_t m = targets.size();
  // Variables: λ_1..λ_n, surplus s_1..s_m (coverage), slack t_1..t_n (λ ≤ 1).
  const size_t cols = n + m + n;
  std::vector<std::vector<double>> a;
  std::vector<double> b;
  std::vector<double> c(cols, 0.0);
  for (size_t j = 0; j < n; ++j) c[j] = 1.0;
  for (size_t i = 0; i < m; ++i) {
    std::vector<double> row(cols, 0.0);
    bool covered = false;
    for (size_t j = 0; j < n; ++j) {
      if (atoms[j].Contains(targets[i])) {
        row[j] = 1.0;
        covered = true;
      }
    }
    if (!covered) return std::nullopt;
    row[n + i] = -1.0;  // surplus
    a.push_back(std::move(row));
    b.push_back(1.0);
  }
  for (size_t j = 0; j < n; ++j) {
    std::vector<double> row(cols, 0.0);
    row[j] = 1.0;
    row[n + m + j] = 1.0;  // slack
    a.push_back(std::move(row));
    b.push_back(1.0);
  }
  return SolveSimplexEq(std::move(a), std::move(b), std::move(c));
}

}  // namespace ivme
