#include "src/query/variable_order.h"

#include <algorithm>
#include <functional>
#include <set>

#include "src/common/check.h"
#include "src/query/classify.h"

namespace ivme {

namespace {

// Connected components of `atom_indices` where two atoms are adjacent when
// they share an *active* (not yet placed) variable.
std::vector<std::vector<int>> ActiveComponents(const ConjunctiveQuery& q,
                                               const std::vector<int>& atom_indices,
                                               const std::set<VarId>& placed) {
  std::vector<std::vector<int>> groups;
  std::vector<bool> done(atom_indices.size(), false);
  auto shares_active = [&](int a, int b) {
    for (VarId v : q.atom(static_cast<size_t>(a)).schema) {
      if (placed.count(v) > 0) continue;
      if (q.atom(static_cast<size_t>(b)).schema.Contains(v)) return true;
    }
    return false;
  };
  for (size_t i = 0; i < atom_indices.size(); ++i) {
    if (done[i]) continue;
    std::vector<int> group = {atom_indices[i]};
    done[i] = true;
    // BFS by repeated scans (atom counts are tiny).
    bool grew = true;
    while (grew) {
      grew = false;
      for (size_t j = 0; j < atom_indices.size(); ++j) {
        if (done[j]) continue;
        for (int a : group) {
          if (shares_active(a, atom_indices[j])) {
            group.push_back(atom_indices[j]);
            done[j] = true;
            grew = true;
            break;
          }
        }
      }
    }
    std::sort(group.begin(), group.end());
    groups.push_back(std::move(group));
  }
  return groups;
}

// Recursively builds canonical subtrees for the given atoms; `placed` holds
// the variables already fixed on the path above.
std::vector<std::unique_ptr<VONode>> BuildCanonical(const ConjunctiveQuery& q,
                                                    const std::vector<int>& atom_indices,
                                                    std::set<VarId>* placed) {
  std::vector<std::unique_ptr<VONode>> result;
  for (const auto& component : ActiveComponents(q, atom_indices, *placed)) {
    // Active variables occurring in every atom of the component.
    std::vector<VarId> top;
    {
      const Schema& first = q.atom(static_cast<size_t>(component[0])).schema;
      for (VarId v : first) {
        if (placed->count(v) > 0) continue;
        bool in_all = true;
        for (int a : component) {
          if (!q.atom(static_cast<size_t>(a)).schema.Contains(v)) {
            in_all = false;
            break;
          }
        }
        if (in_all) top.push_back(v);
      }
      std::sort(top.begin(), top.end());
    }

    if (top.empty()) {
      // No shared active variable: only possible for a lone atom whose
      // variables are all placed (its leaf hangs directly here).
      IVME_CHECK_MSG(component.size() == 1,
                     "non-hierarchical query passed to canonical variable order");
      auto leaf = std::make_unique<VONode>();
      leaf->kind = VONode::Kind::kAtom;
      leaf->atom_index = component[0];
      result.push_back(std::move(leaf));
      continue;
    }

    // Chain of top variables.
    std::unique_ptr<VONode> chain_root;
    VONode* chain_tail = nullptr;
    for (VarId v : top) {
      auto node = std::make_unique<VONode>();
      node->kind = VONode::Kind::kVariable;
      node->var = v;
      VONode* raw = node.get();
      if (chain_tail == nullptr) {
        chain_root = std::move(node);
      } else {
        chain_tail->children.push_back(std::move(node));
      }
      chain_tail = raw;
      placed->insert(v);
    }

    // Atoms fully consumed by the chain become leaves of the chain tail;
    // the rest recurse with the top variables placed. Variable subtrees are
    // attached before atom leaves, matching the paper's figures.
    std::vector<int> remaining;
    std::vector<std::unique_ptr<VONode>> atom_leaves;
    for (int a : component) {
      bool consumed = true;
      for (VarId v : q.atom(static_cast<size_t>(a)).schema) {
        if (placed->count(v) == 0) {
          consumed = false;
          break;
        }
      }
      if (consumed) {
        auto leaf = std::make_unique<VONode>();
        leaf->kind = VONode::Kind::kAtom;
        leaf->atom_index = a;
        atom_leaves.push_back(std::move(leaf));
      } else {
        remaining.push_back(a);
      }
    }
    for (auto& subtree : BuildCanonical(q, remaining, placed)) {
      chain_tail->children.push_back(std::move(subtree));
    }
    for (auto& leaf : atom_leaves) chain_tail->children.push_back(std::move(leaf));
    // The placed top variables stay placed for ancestors' bookkeeping only
    // within this path; siblings in other components never see them since
    // components do not share variables. Unplace for safety.
    for (VarId v : top) placed->erase(v);
    result.push_back(std::move(chain_root));
  }
  return result;
}

void AnnotateNode(const ConjunctiveQuery& q, VONode* node, VONode* parent, const Schema& anc,
                  int depth) {
  node->parent = parent;
  node->anc = anc;
  node->depth = depth;
  node->subtree_vars = Schema();
  node->subtree_atoms.clear();
  if (node->IsVariable()) {
    node->subtree_vars.Append(node->var);
  } else {
    node->subtree_atoms.push_back(node->atom_index);
  }
  Schema child_anc = anc;
  if (node->IsVariable()) child_anc.Append(node->var);
  const int child_depth = node->IsVariable() ? depth + 1 : depth;
  for (auto& child : node->children) {
    AnnotateNode(q, child.get(), node, child_anc, child_depth);
    node->subtree_vars = node->subtree_vars.Union(child->subtree_vars);
    for (int a : child->subtree_atoms) node->subtree_atoms.push_back(a);
  }
  // dep(X) = ancestors on which the subtree's atoms depend.
  Schema atom_vars;
  for (int a : node->subtree_atoms) {
    atom_vars = atom_vars.Union(q.atom(static_cast<size_t>(a)).schema);
  }
  node->dep = node->anc.Intersect(atom_vars);
}

// Deep copy of a subtree (annotations are recomputed afterwards).
std::unique_ptr<VONode> CloneNode(const VONode* node) {
  auto copy = std::make_unique<VONode>();
  copy->kind = node->kind;
  copy->var = node->var;
  copy->atom_index = node->atom_index;
  for (const auto& child : node->children) {
    copy->children.push_back(CloneNode(child.get()));
  }
  return copy;
}

// Restriction ω|keep (Appendix B.1): removes variable nodes not in `keep`,
// hoisting their children; atoms are dropped entirely (they are re-attached
// under their lowest variable afterwards). Returns the resulting forest.
std::vector<std::unique_ptr<VONode>> RestrictVars(std::unique_ptr<VONode> node,
                                                  const std::set<VarId>& keep) {
  std::vector<std::unique_ptr<VONode>> hoisted;
  std::vector<std::unique_ptr<VONode>> children = std::move(node->children);
  node->children.clear();
  for (auto& child : children) {
    for (auto& sub : RestrictVars(std::move(child), keep)) {
      hoisted.push_back(std::move(sub));
    }
  }
  if (node->IsAtom()) {
    // Atoms re-attached later.
    return hoisted;
  }
  if (keep.count(node->var) == 0) {
    return hoisted;  // eliminate this variable; children float up
  }
  for (auto& sub : hoisted) node->children.push_back(std::move(sub));
  std::vector<std::unique_ptr<VONode>> result;
  result.push_back(std::move(node));
  return result;
}

// Collects variable nodes of a subtree in (depth, name)-order — a
// topological order of ω_X with lexicographic tie-breaks.
void CollectVars(const ConjunctiveQuery& q, const VONode* node,
                 std::vector<const VONode*>* out) {
  if (node->IsVariable()) out->push_back(node);
  for (const auto& child : node->children) CollectVars(q, child.get(), out);
}

}  // namespace

VariableOrder VariableOrder::Canonical(const ConjunctiveQuery& q) {
  IVME_CHECK_MSG(IsHierarchical(q),
                 "canonical variable orders exist only for hierarchical queries: "
                     << q.ToString());
  std::vector<int> all_atoms;
  for (size_t a = 0; a < q.num_atoms(); ++a) all_atoms.push_back(static_cast<int>(a));
  std::set<VarId> placed;
  VariableOrder vo;
  vo.roots_ = BuildCanonical(q, all_atoms, &placed);
  vo.Annotate(q);
  return vo;
}

VariableOrder VariableOrder::FreeTopOfCanonical(const ConjunctiveQuery& q) {
  VariableOrder vo = Canonical(q);

  // hBF: bound variables that have a free variable below and no bound
  // variable above.
  std::vector<VONode*> hbf;
  std::function<void(VONode*, bool)> scan = [&](VONode* node, bool bound_above) {
    if (node->IsVariable() && q.IsBound(node->var)) {
      bool free_below = false;
      for (VarId v : node->subtree_vars) {
        if (v != node->var && q.IsFree(v)) free_below = true;
      }
      if (!bound_above && free_below) {
        hbf.push_back(node);
        return;  // descendants have a bound ancestor now
      }
      bound_above = true;
    }
    for (auto& child : node->children) scan(child.get(), bound_above);
  };
  for (auto& root : vo.roots_) scan(root.get(), false);

  for (VONode* x : hbf) {
    // Free variables of ω_X in (depth, name) order.
    std::vector<const VONode*> vars;
    CollectVars(q, x, &vars);
    std::vector<const VONode*> free_nodes;
    for (const VONode* n : vars) {
      if (q.IsFree(n->var)) free_nodes.push_back(n);
    }
    std::sort(free_nodes.begin(), free_nodes.end(), [&](const VONode* a, const VONode* b) {
      if (a->depth != b->depth) return a->depth < b->depth;
      return q.var_name(a->var) < q.var_name(b->var);
    });
    if (free_nodes.empty()) continue;

    // Detach ω_X from its parent slot.
    std::unique_ptr<VONode> subtree;
    std::vector<std::unique_ptr<VONode>>* slot_owner;
    size_t slot_index = 0;
    if (x->parent != nullptr) {
      slot_owner = &x->parent->children;
    } else {
      slot_owner = &vo.roots_;
    }
    for (size_t i = 0; i < slot_owner->size(); ++i) {
      if ((*slot_owner)[i].get() == x) {
        subtree = std::move((*slot_owner)[i]);
        slot_index = i;
        break;
      }
    }
    IVME_CHECK(subtree != nullptr);

    // Remember the atoms of the subtree for re-attachment.
    const std::vector<int> atoms = subtree->subtree_atoms;

    // Build the free chain F1 → ... → Fn.
    std::set<VarId> bound_keep;
    for (VarId v : subtree->subtree_vars) {
      if (q.IsBound(v)) bound_keep.insert(v);
    }
    auto chain_root = std::make_unique<VONode>();
    chain_root->kind = VONode::Kind::kVariable;
    chain_root->var = free_nodes[0]->var;
    VONode* tail = chain_root.get();
    for (size_t i = 1; i < free_nodes.size(); ++i) {
      auto node = std::make_unique<VONode>();
      node->kind = VONode::Kind::kVariable;
      node->var = free_nodes[i]->var;
      VONode* raw = node.get();
      tail->children.push_back(std::move(node));
      tail = raw;
    }

    // Restriction of ω_X to its bound variables, hung below the chain.
    auto restricted = RestrictVars(std::move(subtree), bound_keep);
    IVME_CHECK_MSG(restricted.size() == 1, "restriction must keep the bound root connected");
    tail->children.push_back(std::move(restricted[0]));

    // Re-attach the atoms of ω_X under their lowest variable in the new
    // subtree. All schema variables above the chain stay ancestors, so the
    // lowest variable is within this subtree.
    (*slot_owner)[slot_index] = std::move(chain_root);
    VONode* new_subtree = (*slot_owner)[slot_index].get();
    // Depth of each variable within the new subtree.
    std::vector<std::pair<VONode*, int>> var_depth;
    std::function<void(VONode*, int)> collect = [&](VONode* node, int d) {
      if (node->IsVariable()) var_depth.push_back({node, d});
      for (auto& child : node->children) collect(child.get(), d + 1);
    };
    collect(new_subtree, 0);
    for (int a : atoms) {
      VONode* lowest = nullptr;
      int lowest_depth = -1;
      for (auto& [node, d] : var_depth) {
        if (q.atom(static_cast<size_t>(a)).schema.Contains(node->var) && d > lowest_depth) {
          lowest = node;
          lowest_depth = d;
        }
      }
      IVME_CHECK_MSG(lowest != nullptr, "atom has no variable inside its transformed subtree");
      auto leaf = std::make_unique<VONode>();
      leaf->kind = VONode::Kind::kAtom;
      leaf->atom_index = a;
      lowest->children.push_back(std::move(leaf));
    }
  }

  vo.Annotate(q);
  return vo;
}

VONode* VariableOrder::FindVar(VarId v) const {
  std::function<VONode*(VONode*)> find = [&](VONode* node) -> VONode* {
    if (node->IsVariable() && node->var == v) return node;
    for (auto& child : node->children) {
      if (VONode* hit = find(child.get())) return hit;
    }
    return nullptr;
  };
  for (const auto& root : roots_) {
    if (VONode* hit = find(root.get())) return hit;
  }
  return nullptr;
}

bool VariableOrder::IsFreeTop(const ConjunctiveQuery& q) const {
  std::function<bool(const VONode*, bool)> ok = [&](const VONode* node, bool bound_above) {
    if (node->IsVariable()) {
      if (q.IsFree(node->var) && bound_above) return false;
      if (q.IsBound(node->var)) bound_above = true;
    }
    for (const auto& child : node->children) {
      if (!ok(child.get(), bound_above)) return false;
    }
    return true;
  };
  for (const auto& root : roots_) {
    if (!ok(root.get(), false)) return false;
  }
  return true;
}

bool VariableOrder::IsValidFor(const ConjunctiveQuery& q) const {
  std::set<VarId> seen_vars;
  std::set<int> seen_atoms;
  bool ok = true;
  std::function<void(const VONode*)> visit = [&](const VONode* node) {
    if (node->IsVariable()) {
      if (!seen_vars.insert(node->var).second) ok = false;
    } else {
      if (!seen_atoms.insert(node->atom_index).second) ok = false;
      const Schema& schema = q.atom(static_cast<size_t>(node->atom_index)).schema;
      // Variables on the root path.
      if (!node->anc.ContainsAll(schema)) ok = false;
      // Atom is a child of its lowest variable: the parent is a variable in
      // the schema (nullary atoms are rejected upstream).
      if (node->parent == nullptr || !node->parent->IsVariable() ||
          !schema.Contains(node->parent->var)) {
        ok = false;
      }
      if (!node->children.empty()) ok = false;
    }
    for (const auto& child : node->children) visit(child.get());
  };
  for (const auto& root : roots_) visit(root.get());
  if (seen_vars.size() != q.num_vars()) ok = false;
  if (seen_atoms.size() != q.num_atoms()) ok = false;
  return ok;
}

bool VariableOrder::IsCanonicalFor(const ConjunctiveQuery& q) const {
  if (!IsValidFor(q)) return false;
  bool ok = true;
  std::function<void(const VONode*)> visit = [&](const VONode* node) {
    if (node->IsAtom()) {
      const Schema& schema = q.atom(static_cast<size_t>(node->atom_index)).schema;
      if (!schema.SameSet(node->anc)) ok = false;
    }
    for (const auto& child : node->children) visit(child.get());
  };
  for (const auto& root : roots_) visit(root.get());
  return ok;
}

void VariableOrder::Annotate(const ConjunctiveQuery& q) {
  for (auto& root : roots_) AnnotateNode(q, root.get(), nullptr, Schema(), 0);
}

std::string VariableOrder::ToString(const ConjunctiveQuery& q) const {
  std::function<std::string(const VONode*)> render = [&](const VONode* node) -> std::string {
    std::string out;
    if (node->IsVariable()) {
      out = q.var_name(node->var);
    } else {
      const auto& atom = q.atom(static_cast<size_t>(node->atom_index));
      out = atom.relation + atom.schema.ToString(q.var_names());
    }
    if (!node->children.empty()) {
      out += " - {";
      for (size_t i = 0; i < node->children.size(); ++i) {
        if (i > 0) out += "; ";
        out += render(node->children[i].get());
      }
      out += "}";
    }
    return out;
  };
  std::vector<std::string> parts;
  for (const auto& root : roots_) parts.push_back(render(root.get()));
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += " | ";
    out += parts[i];
  }
  return out;
}

}  // namespace ivme
