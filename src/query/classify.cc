#include "src/query/classify.h"

#include <algorithm>
#include <map>
#include <set>

#include "src/common/check.h"

namespace ivme {

namespace {

// atoms(X) for every variable occurring in `atoms`, as sorted index sets.
std::map<VarId, std::vector<int>> AtomsOfMap(const std::vector<Schema>& atoms) {
  std::map<VarId, std::vector<int>> atoms_of;
  for (size_t a = 0; a < atoms.size(); ++a) {
    for (VarId v : atoms[a]) atoms_of[v].push_back(static_cast<int>(a));
  }
  return atoms_of;
}

bool IsSubset(const std::vector<int>& a, const std::vector<int>& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

bool Intersects(const std::vector<int>& a, const std::vector<int>& b) {
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) return true;
    if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

}  // namespace

bool IsHierarchical(const std::vector<Schema>& atoms) {
  const auto atoms_of = AtomsOfMap(atoms);
  for (auto it1 = atoms_of.begin(); it1 != atoms_of.end(); ++it1) {
    for (auto it2 = std::next(it1); it2 != atoms_of.end(); ++it2) {
      const auto& a = it1->second;
      const auto& b = it2->second;
      if (!Intersects(a, b)) continue;
      if (!IsSubset(a, b) && !IsSubset(b, a)) return false;
    }
  }
  return true;
}

bool IsHierarchical(const ConjunctiveQuery& q) {
  std::vector<Schema> atoms;
  for (const auto& atom : q.atoms()) atoms.push_back(atom.schema);
  return IsHierarchical(atoms);
}

bool IsQHierarchical(const std::vector<Schema>& atoms, const Schema& free) {
  if (!IsHierarchical(atoms)) return false;
  const auto atoms_of = AtomsOfMap(atoms);
  for (const auto& [a_var, a_atoms] : atoms_of) {
    if (!free.Contains(a_var)) continue;
    for (const auto& [b_var, b_atoms] : atoms_of) {
      if (a_var == b_var) continue;
      const bool strict = IsSubset(a_atoms, b_atoms) && a_atoms.size() < b_atoms.size();
      if (strict && !free.Contains(b_var)) return false;
    }
  }
  return true;
}

bool IsQHierarchical(const ConjunctiveQuery& q) {
  std::vector<Schema> atoms;
  for (const auto& atom : q.atoms()) atoms.push_back(atom.schema);
  return IsQHierarchical(atoms, q.free_vars());
}

int MinAtomCover(const std::vector<Schema>& atoms, const Schema& targets) {
  if (targets.empty()) return 0;
  const auto atoms_of = AtomsOfMap(atoms);
  // Group target variables into atom-set equivalence classes, then count
  // the classes that have no strictly smaller class below them. For
  // hierarchical queries this equals ρ(targets) = ρ*(targets): one atom
  // below each minimal class covers the whole chain of classes above it,
  // and two minimal classes can never share an atom (their atom sets would
  // be comparable otherwise).
  std::vector<std::vector<int>> class_sets;
  for (VarId v : targets) {
    auto it = atoms_of.find(v);
    IVME_CHECK_MSG(it != atoms_of.end(), "cover target variable " << v << " occurs in no atom");
    bool found = false;
    for (const auto& cls : class_sets) {
      if (cls == it->second) {
        found = true;
        break;
      }
    }
    if (!found) class_sets.push_back(it->second);
  }
  int minimal = 0;
  for (size_t i = 0; i < class_sets.size(); ++i) {
    bool has_strict_subset = false;
    for (size_t j = 0; j < class_sets.size(); ++j) {
      if (i == j) continue;
      if (class_sets[j].size() < class_sets[i].size() &&
          IsSubset(class_sets[j], class_sets[i])) {
        has_strict_subset = true;
        break;
      }
    }
    if (!has_strict_subset) ++minimal;
  }
  return minimal;
}

Schema FreeVarsOfAtomsOf(const std::vector<Schema>& atoms, const Schema& free, VarId v) {
  Schema result;
  for (const auto& schema : atoms) {
    if (!schema.Contains(v)) continue;
    for (VarId u : schema) {
      if (free.Contains(u) && !result.Contains(u)) result.Append(u);
    }
  }
  return result;
}

int DeltaRank(const std::vector<Schema>& atoms, const Schema& free) {
  IVME_CHECK_MSG(IsHierarchical(atoms), "delta rank is defined for hierarchical queries");
  // Collect all variables.
  Schema all;
  for (const auto& schema : atoms) all = all.Union(schema);
  int rank = 0;
  for (VarId x : all) {
    if (free.Contains(x)) continue;  // only bound variables constrain the rank
    const Schema free_of_x = FreeVarsOfAtomsOf(atoms, free, x);
    for (const auto& schema : atoms) {
      if (!schema.Contains(x)) continue;
      const Schema residual = free_of_x.Minus(schema);
      rank = std::max(rank, MinAtomCover(atoms, residual));
    }
  }
  return rank;
}

int DeltaRank(const ConjunctiveQuery& q) {
  std::vector<Schema> atoms;
  for (const auto& atom : q.atoms()) atoms.push_back(atom.schema);
  return DeltaRank(atoms, q.free_vars());
}

}  // namespace ivme
