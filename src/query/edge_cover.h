// Fractional edge covers (Section 3, "Width Measures"). The engine itself
// only needs integral covers of hierarchical queries (classify.h's
// MinAtomCover); the exact LP here validates Lemma 30 (ρ* = ρ for
// hierarchical queries) in tests and supports arbitrary conjunctive queries.
#ifndef IVME_QUERY_EDGE_COVER_H_
#define IVME_QUERY_EDGE_COVER_H_

#include <optional>
#include <vector>

#include "src/data/schema.h"

namespace ivme {

/// Minimizes Σ λ_R subject to Σ_{R: X ∈ R} λ_R ≥ 1 for each X in `targets`
/// and λ_R ∈ [0, 1], via a dense two-phase simplex. Returns ρ*(targets), or
/// std::nullopt when some target occurs in no atom (infeasible). Exact up to
/// floating-point round-off; intended for the small LPs of query analysis.
std::optional<double> FractionalEdgeCoverLP(const std::vector<Schema>& atoms,
                                            const Schema& targets);

/// Generic two-phase simplex: min c·x s.t. A x = b, x ≥ 0 (b ≥ 0 required).
/// Returns the optimal objective value; std::nullopt when infeasible.
/// Uses Bland's rule, so it terminates on degenerate inputs.
std::optional<double> SolveSimplexEq(std::vector<std::vector<double>> a, std::vector<double> b,
                                     std::vector<double> c);

}  // namespace ivme

#endif  // IVME_QUERY_EDGE_COVER_H_
