// Static width w (Definition 15) and dynamic width δ (Definition 16) of
// hierarchical queries. Both are evaluated on free-top(canonical ω), which
// attains the minimum over all free-top variable orders (Lemmas 33, 36, 37
// and the proof of Proposition 3). Proposition 17: δ ∈ {w−1, w};
// Proposition 8: δ equals the delta rank of Definition 5.
#ifndef IVME_QUERY_WIDTH_H_
#define IVME_QUERY_WIDTH_H_

#include "src/query/query.h"
#include "src/query/variable_order.h"

namespace ivme {

/// w(ω) = max_X ρ*({X} ∪ dep_ω(X)).
int StaticWidthOf(const ConjunctiveQuery& q, const VariableOrder& vo);

/// δ(ω) = max_X max_{R(Y) ∈ atoms(ω_X)} ρ*(({X} ∪ dep_ω(X)) − Y).
int DynamicWidthOf(const ConjunctiveQuery& q, const VariableOrder& vo);

/// w(Q) for a hierarchical query.
int StaticWidth(const ConjunctiveQuery& q);

/// δ(Q) for a hierarchical query.
int DynamicWidth(const ConjunctiveQuery& q);

}  // namespace ivme

#endif  // IVME_QUERY_WIDTH_H_
