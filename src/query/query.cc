#include "src/query/query.h"

#include <cctype>
#include <map>

#include "src/common/check.h"

namespace ivme {

namespace {

// Minimal recursive-descent tokenizer for the textual query format.
struct Parser {
  const std::string& text;
  size_t pos = 0;

  explicit Parser(const std::string& t) : text(t) {}

  void SkipSpace() {
    while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos]))) ++pos;
  }

  bool Eat(char c) {
    SkipSpace();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool AtEnd() {
    SkipSpace();
    return pos >= text.size();
  }

  // Identifier: [A-Za-z_][A-Za-z0-9_']*
  std::optional<std::string> Ident() {
    SkipSpace();
    size_t start = pos;
    if (pos < text.size() &&
        (std::isalpha(static_cast<unsigned char>(text[pos])) || text[pos] == '_')) {
      ++pos;
      while (pos < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[pos])) || text[pos] == '_' ||
              text[pos] == '\'')) {
        ++pos;
      }
      return text.substr(start, pos - start);
    }
    return std::nullopt;
  }

  // Optional mutability modifier in front of a body atom. "static" /
  // "insert_only" is a modifier only when the next token is not '(' — a
  // relation literally named "static" stays parseable.
  Mutability Modifier() {
    size_t save = pos;
    auto word = Ident();
    if (word.has_value() && (*word == "static" || *word == "insert_only")) {
      SkipSpace();
      if (pos < text.size() && text[pos] != '(') {
        return *word == "static" ? Mutability::kStatic : Mutability::kInsertOnly;
      }
    }
    pos = save;
    return Mutability::kDynamic;
  }

  // Parses "Name ( v1, v2, ... )" with a possibly empty variable list.
  std::optional<std::pair<std::string, std::vector<std::string>>> AtomText() {
    auto name = Ident();
    if (!name.has_value()) return std::nullopt;
    if (!Eat('(')) return std::nullopt;
    std::vector<std::string> vars;
    if (!Eat(')')) {
      while (true) {
        auto v = Ident();
        if (!v.has_value()) return std::nullopt;
        vars.push_back(*v);
        if (Eat(')')) break;
        if (!Eat(',')) return std::nullopt;
      }
    }
    return std::make_pair(*name, std::move(vars));
  }
};

}  // namespace

std::optional<ConjunctiveQuery> ConjunctiveQuery::Parse(const std::string& text) {
  Parser p(text);
  auto head = p.AtomText();
  if (!head.has_value()) return std::nullopt;
  if (!p.Eat('=')) return std::nullopt;
  std::vector<std::pair<std::string, std::vector<std::string>>> atoms;
  std::vector<Mutability> declared;
  while (true) {
    Mutability m = p.Modifier();
    auto atom = p.AtomText();
    if (!atom.has_value()) return std::nullopt;
    atoms.push_back(std::move(*atom));
    declared.push_back(m);
    if (p.AtEnd()) break;
    if (!p.Eat(',')) return std::nullopt;
  }
  if (atoms.empty()) return std::nullopt;
  // A declaration applies to the relation symbol; two different non-default
  // declarations for one symbol conflict.
  for (size_t i = 0; i < atoms.size(); ++i) {
    for (size_t j = i + 1; j < atoms.size(); ++j) {
      if (atoms[i].first != atoms[j].first) continue;
      if (declared[i] != Mutability::kDynamic && declared[j] != Mutability::kDynamic &&
          declared[i] != declared[j]) {
        return std::nullopt;
      }
    }
  }
  // Head variables must occur in the body, and atoms must not be nullary
  // (footnote 1 of the paper: at least one atom has a non-empty schema; we
  // require it of every atom).
  for (const auto& [name, vars] : atoms) {
    if (vars.empty()) return std::nullopt;
    // Variables within an atom must be distinct.
    for (size_t i = 0; i < vars.size(); ++i) {
      for (size_t j = i + 1; j < vars.size(); ++j) {
        if (vars[i] == vars[j]) return std::nullopt;
      }
    }
  }
  for (const auto& hv : head->second) {
    bool found = false;
    for (const auto& [name, vars] : atoms) {
      for (const auto& v : vars) {
        if (v == hv) found = true;
      }
    }
    if (!found) return std::nullopt;
  }
  // Head variables must be distinct.
  for (size_t i = 0; i < head->second.size(); ++i) {
    for (size_t j = i + 1; j < head->second.size(); ++j) {
      if (head->second[i] == head->second[j]) return std::nullopt;
    }
  }
  ConjunctiveQuery q = Make(head->first, head->second, atoms);
  for (size_t i = 0; i < declared.size(); ++i) {
    if (declared[i] != Mutability::kDynamic) q.SetMutability(atoms[i].first, declared[i]);
  }
  return q;
}

ConjunctiveQuery ConjunctiveQuery::Make(
    const std::string& name, const std::vector<std::string>& head,
    const std::vector<std::pair<std::string, std::vector<std::string>>>& atoms) {
  ConjunctiveQuery q;
  q.name_ = name;
  auto var_id = [&q](const std::string& var_name) -> VarId {
    for (size_t i = 0; i < q.var_names_.size(); ++i) {
      if (q.var_names_[i] == var_name) return static_cast<VarId>(i);
    }
    q.var_names_.push_back(var_name);
    return static_cast<VarId>(q.var_names_.size() - 1);
  };
  // Assign ids to body variables in order of first occurrence, then build
  // the head (head vars are checked to exist by Parse; Make trusts callers).
  for (const auto& [rel, vars] : atoms) {
    std::vector<VarId> ids;
    ids.reserve(vars.size());
    for (const auto& v : vars) ids.push_back(var_id(v));
    q.atoms_.push_back(Atom{rel, Schema(std::move(ids))});
  }
  std::vector<VarId> head_ids;
  head_ids.reserve(head.size());
  for (const auto& v : head) head_ids.push_back(var_id(v));
  q.free_ = Schema(std::move(head_ids));
  q.atom_mutability_.assign(q.atoms_.size(), Mutability::kDynamic);
  q.Finalize();
  return q;
}

void ConjunctiveQuery::Finalize() {
  std::vector<VarId> all;
  for (size_t i = 0; i < var_names_.size(); ++i) all.push_back(static_cast<VarId>(i));
  all_vars_ = Schema(std::move(all));
  atoms_of_.assign(var_names_.size(), {});
  for (size_t a = 0; a < atoms_.size(); ++a) {
    for (VarId v : atoms_[a].schema) {
      atoms_of_[static_cast<size_t>(v)].push_back(static_cast<int>(a));
    }
  }
  for (VarId v : free_) {
    IVME_CHECK_MSG(!atoms_of_[static_cast<size_t>(v)].empty(),
                   "free variable " << var_name(v) << " does not occur in the body");
  }
}

VarId ConjunctiveQuery::FindVar(const std::string& name) const {
  for (size_t i = 0; i < var_names_.size(); ++i) {
    if (var_names_[i] == name) return static_cast<VarId>(i);
  }
  return kInvalidVar;
}

std::vector<std::string> ConjunctiveQuery::RelationNames() const {
  std::vector<std::string> names;
  for (const auto& atom : atoms_) {
    bool seen = false;
    for (const auto& n : names) {
      if (n == atom.relation) seen = true;
    }
    if (!seen) names.push_back(atom.relation);
  }
  return names;
}

bool ConjunctiveQuery::HasRepeatedSymbol(const std::string& rel) const {
  int count = 0;
  for (const auto& atom : atoms_) {
    if (atom.relation == rel) ++count;
  }
  return count > 1;
}

Mutability ConjunctiveQuery::MutabilityOf(const std::string& rel) const {
  for (size_t i = 0; i < atoms_.size(); ++i) {
    if (atoms_[i].relation == rel) return atom_mutability_[i];
  }
  return Mutability::kDynamic;
}

void ConjunctiveQuery::SetMutability(const std::string& rel, Mutability m) {
  for (size_t i = 0; i < atoms_.size(); ++i) {
    if (atoms_[i].relation == rel) atom_mutability_[i] = m;
  }
}

bool ConjunctiveQuery::HasNonDynamicAtoms() const {
  for (Mutability m : atom_mutability_) {
    if (m != Mutability::kDynamic) return true;
  }
  return false;
}

std::string ConjunctiveQuery::ToString() const {
  std::string out = name_ + free_.ToString(var_names_) + " = ";
  std::vector<std::string> prefixed;
  for (size_t i = 0; i < atoms_.size(); ++i) {
    if (i > 0) out += ", ";
    if (atom_mutability_[i] != Mutability::kDynamic) {
      bool first = true;
      for (const auto& p : prefixed) {
        if (p == atoms_[i].relation) first = false;
      }
      if (first) {
        out += std::string(MutabilityName(atom_mutability_[i])) + " ";
        prefixed.push_back(atoms_[i].relation);
      }
    }
    out += atoms_[i].relation + atoms_[i].schema.ToString(var_names_);
  }
  return out;
}

}  // namespace ivme
