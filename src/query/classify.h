// Syntactic classification of conjunctive queries:
//   * hierarchical (Definition 1),
//   * q-hierarchical ([10]; Section 3),
//   * δi-hierarchical (Definition 5) via the delta rank,
// plus the minimal atom cover used throughout (for hierarchical queries the
// integral and fractional edge cover numbers coincide, Lemma 30).
#ifndef IVME_QUERY_CLASSIFY_H_
#define IVME_QUERY_CLASSIFY_H_

#include <vector>

#include "src/data/schema.h"
#include "src/query/query.h"

namespace ivme {

/// Definition 1: for any two variables, their atom sets are disjoint or one
/// contains the other. Works on raw atom schemas (used for residual queries).
bool IsHierarchical(const std::vector<Schema>& atoms);

bool IsHierarchical(const ConjunctiveQuery& q);

/// q-hierarchical: hierarchical, and whenever atoms(A) ⊂ atoms(B) for a free
/// A, B is also free (Section 3). Equal to δ0-hierarchical (Proposition 6).
bool IsQHierarchical(const std::vector<Schema>& atoms, const Schema& free);

bool IsQHierarchical(const ConjunctiveQuery& q);

/// Minimal number of atoms covering `targets` (the integral edge cover
/// number ρ). Requires the atoms to form a hierarchical query; for those,
/// ρ = ρ* (Lemma 30) and the optimum equals the number of minimal
/// atom-set-equivalence classes among the target variables. Returns 0 for
/// empty targets. Every target must occur in at least one atom.
int MinAtomCover(const std::vector<Schema>& atoms, const Schema& targets);

/// Delta rank: the i for which the query is δi-hierarchical (Definition 5).
/// Requires a hierarchical query. By Proposition 8 this equals the dynamic
/// width; by Proposition 6 rank 0 characterizes q-hierarchical queries.
int DeltaRank(const std::vector<Schema>& atoms, const Schema& free);

int DeltaRank(const ConjunctiveQuery& q);

/// Free variables occurring in the atoms of variable `v` (free(atoms(X))).
Schema FreeVarsOfAtomsOf(const std::vector<Schema>& atoms, const Schema& free, VarId v);

}  // namespace ivme

#endif  // IVME_QUERY_CLASSIFY_H_
