// Variable orders (Definition 13): forests with one node per variable or
// atom, where every atom's variables lie on its root path and each atom
// hangs below its lowest variable. Provides the canonical variable order of
// a hierarchical query (Section 3) and the canonical → free-top
// transformation of Appendix B.1.
#ifndef IVME_QUERY_VARIABLE_ORDER_H_
#define IVME_QUERY_VARIABLE_ORDER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/data/schema.h"
#include "src/query/query.h"

namespace ivme {

/// A node of a variable order: either a query variable or an atom leaf.
struct VONode {
  enum class Kind { kVariable, kAtom };

  Kind kind = Kind::kVariable;
  VarId var = kInvalidVar;  // when kVariable
  int atom_index = -1;      // when kAtom
  VONode* parent = nullptr;
  std::vector<std::unique_ptr<VONode>> children;

  // Annotations (filled by VariableOrder::Annotate):
  Schema anc;                      ///< ancestor variables, root first
  Schema dep;                      ///< dep_ω(X) = anc(X) ∩ vars(atoms(ω_X))
  Schema subtree_vars;             ///< variables of ω_X including X
  std::vector<int> subtree_atoms;  ///< atom indices at the leaves of ω_X
  int depth = 0;                   ///< #variable ancestors

  bool IsVariable() const { return kind == Kind::kVariable; }
  bool IsAtom() const { return kind == Kind::kAtom; }
  bool HasSiblings() const { return parent != nullptr && parent->children.size() > 1; }
};

/// A variable order for a query: a forest of VONodes (one tree per
/// connected component of the query hypergraph).
class VariableOrder {
 public:
  VariableOrder() = default;
  VariableOrder(VariableOrder&&) = default;
  VariableOrder& operator=(VariableOrder&&) = default;

  /// The canonical variable order (unique up to orderings of variables with
  /// identical atom sets; ties broken by ascending variable id). The query
  /// must be hierarchical.
  static VariableOrder Canonical(const ConjunctiveQuery& q);

  /// free-top(canonical ω): moves free variables above bound ones in each
  /// subtree rooted at a highest bound ancestor-of-free variable
  /// (Appendix B.1). Valid and free-top by Lemma 33; achieves the optimal
  /// static and dynamic widths (Lemmas 36, 37 and Prop. 3).
  static VariableOrder FreeTopOfCanonical(const ConjunctiveQuery& q);

  const std::vector<std::unique_ptr<VONode>>& roots() const { return roots_; }

  /// The variable node for `v`, or nullptr.
  VONode* FindVar(VarId v) const;

  /// No bound variable has a free variable below it.
  bool IsFreeTop(const ConjunctiveQuery& q) const;

  /// Structural validity: every atom's variables on its root path, atoms
  /// below their lowest variable, every variable/atom exactly once.
  bool IsValidFor(const ConjunctiveQuery& q) const;

  /// Canonical shape: the variables of the leaf atom of each root-to-leaf
  /// path are exactly the inner nodes of the path.
  bool IsCanonicalFor(const ConjunctiveQuery& q) const;

  /// Recomputes all node annotations (anc/dep/subtree/depth/parent).
  void Annotate(const ConjunctiveQuery& q);

  /// Rendering such as "A - {B - {R(A,B)}; S(A)}" for tests and debugging.
  std::string ToString(const ConjunctiveQuery& q) const;

 private:
  std::vector<std::unique_ptr<VONode>> roots_;
};

}  // namespace ivme

#endif  // IVME_QUERY_VARIABLE_ORDER_H_
