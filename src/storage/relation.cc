#include "src/storage/relation.h"

#include "src/common/check.h"

namespace ivme {

// ---------------------------------------------------------------------------
// Index
// ---------------------------------------------------------------------------

Relation::Index::Index(const Schema& relation_schema, Schema key_schema)
    : positions_(ProjectionPositions(relation_schema, key_schema)) {}

Relation::Index::Index(std::vector<int> positions) : positions_(std::move(positions)) {}

Relation::Index::~Index() {
  IVME_CHECK_MSG(ctx_ == nullptr,
                 "index destroyed while in versioned mode; drain the "
                 "RetireLog and detach the epoch context first");
  ClearAll();
}

size_t Relation::Index::CountForKey(const Tuple& key) const {
  const BucketNode* node = buckets_.Find(key);
  return node != nullptr ? node->value.count : 0;
}

const Relation::IndexLink* Relation::Index::FirstForKeyView(const Tuple& key,
                                                            const ReadView& view) const {
  const BucketNode* node = buckets_.FindView(key, view);
  if (node == nullptr) return nullptr;
  const IndexLink* link = node->value.head.load(std::memory_order_acquire);
  while (link != nullptr && !TupleMap<EntryPayload>::Visible(link->entry, view)) {
    link = link->next.load(std::memory_order_acquire);
  }
  return link;
}

const Relation::IndexLink* Relation::Index::NextLinkView(const IndexLink* link,
                                                         const ReadView& view) {
  const IndexLink* n = link->next.load(std::memory_order_acquire);
  while (n != nullptr && !TupleMap<EntryPayload>::Visible(n->entry, view)) {
    n = n->next.load(std::memory_order_acquire);
  }
  return n;
}

Relation::IndexLink* Relation::Index::Add(Entry* entry) {
  const Tuple key = KeyOf(entry->key);
  auto [bucket_node, inserted] = buckets_.Emplace(key);
  (void)inserted;
  auto* link = new IndexLink();
  link->entry = entry;
  link->bucket_node = bucket_node;
  // Prepend to the bucket's doubly-linked list (O(1)). The release store
  // on head publishes the fully initialized link to concurrent readers.
  IndexLink* head = bucket_node->value.head.load(std::memory_order_relaxed);
  link->next.store(head, std::memory_order_relaxed);
  if (head != nullptr) head->prev = link;
  bucket_node->value.head.store(link, std::memory_order_release);
  ++bucket_node->value.count;
  return link;
}

void Relation::Index::Remove(IndexLink* link) {
  BucketNode* bucket_node = link->bucket_node;
  --bucket_node->value.count;
  if (ctx_ != nullptr) {
    // The link stays in the bucket list as a zombie (filtered by its
    // entry's death epoch) until phase 1 proves no pin can see it. An
    // empty bucket is likewise retired, not freed: a re-added key gets a
    // fresh bucket node while pinned readers keep the old one.
    ctx_->log->Retire(ctx_->working(), &UnlinkLinkThunk, &FreeLinkThunk, this,
                      link);
    if (bucket_node->value.count == 0) buckets_.Erase(bucket_node);
    return;
  }
  IndexLink* next = link->next.load(std::memory_order_relaxed);
  if (link->prev != nullptr) {
    link->prev->next.store(next, std::memory_order_relaxed);
  } else {
    bucket_node->value.head.store(next, std::memory_order_relaxed);
  }
  if (next != nullptr) next->prev = link->prev;
  if (bucket_node->value.count == 0) {
    IVME_CHECK(bucket_node->value.head.load(std::memory_order_relaxed) == nullptr);
    buckets_.Erase(bucket_node);
  }
  delete link;
}

void Relation::Index::UnlinkLinkThunk(void* /*owner*/, void* object) {
  // Phase 1: no pin can see the link's entry anymore. Splice it out; its
  // own next/prev stay valid for readers standing on it until phase 2.
  // The bucket node's memory is still valid even if the bucket is itself a
  // zombie: links are always retired before their bucket, so FIFO order
  // runs this before the bucket's phase 2.
  auto* link = static_cast<IndexLink*>(object);
  IndexLink* next = link->next.load(std::memory_order_relaxed);
  if (link->prev != nullptr) {
    link->prev->next.store(next, std::memory_order_release);
  } else {
    link->bucket_node->value.head.store(next, std::memory_order_release);
  }
  if (next != nullptr) next->prev = link->prev;
}

void Relation::Index::FreeLinkThunk(void* /*owner*/, void* object) {
  delete static_cast<IndexLink*>(object);
}

void Relation::Index::ClearAll() {
  if (ctx_ != nullptr) {
    const Epoch w = ctx_->working();
    BucketNode* node = buckets_.First();
    while (node != nullptr) {
      BucketNode* next_bucket = TupleMap<Bucket>::NextLive(node);
      for (IndexLink* link = node->value.head.load(std::memory_order_relaxed);
           link != nullptr; link = link->next.load(std::memory_order_relaxed)) {
        // Zombie links in the list were retired when they died; only the
        // still-live ones are retired now.
        if (link->entry->death.load(std::memory_order_relaxed) == kLiveEpoch) {
          ctx_->log->Retire(w, &UnlinkLinkThunk, &FreeLinkThunk, this, link);
        }
      }
      node->value.count = 0;
      buckets_.Erase(node);
      node = next_bucket;
    }
    return;
  }
  for (BucketNode* node = buckets_.First(); node != nullptr;
       node = TupleMap<Bucket>::NextLive(node)) {
    IndexLink* link = node->value.head.load(std::memory_order_relaxed);
    while (link != nullptr) {
      IndexLink* next = link->next.load(std::memory_order_relaxed);
      delete link;
      link = next;
    }
  }
  buckets_.Clear();
}

// ---------------------------------------------------------------------------
// Relation
// ---------------------------------------------------------------------------

Relation::Relation(Schema schema, std::string name)
    : schema_(std::move(schema)), name_(std::move(name)) {}

void Relation::SetEpochContext(const EpochContext* ctx) {
  IVME_CHECK_MSG(map_.zombie_count() == 0,
                 "epoch context change with zombies outstanding");
  ctx_ = ctx;
  map_.SetEpochContext(ctx);
  for (auto& index : indexes_) index->SetEpochContext(ctx);
}

Mult Relation::Multiplicity(const Tuple& tuple) const {
  const Entry* entry = map_.Find(tuple);
  return entry != nullptr ? EntryMult(entry) : 0;
}

Mult Relation::MultiplicityAt(const Tuple& tuple, Epoch epoch) const {
  const Entry* entry = map_.FindAt(tuple, epoch);
  return entry != nullptr ? EntryMultAt(entry, epoch) : 0;
}

Mult Relation::EntryMultAt(const Entry* entry, Epoch epoch) {
  if (epoch == kLiveEpoch) return EntryMult(entry);
  const EntryPayload& p = entry->value;
  // Fast path: seqlock on last_touch. If the entry was last first-touched
  // at or before our epoch, the current mult is ours — unless a racing
  // first-touch intervenes. The writer stores last_touch = w (release)
  // BEFORE the new mult (release), so an acquire load that observes the
  // working-epoch mult also observes last_touch == w on the re-read;
  // last_touch is monotone, so a stable re-read proves the mult we loaded
  // was stored at an epoch ≤ ours.
  const Epoch t1 = p.last_touch.load(std::memory_order_acquire);
  if (t1 <= epoch) {
    const Mult v = p.mult.load(std::memory_order_acquire);
    if (p.last_touch.load(std::memory_order_acquire) == t1) return v;
  }
  // Slow path: find the newest closed version whose window covers epoch.
  // Records pruned concurrently stay readable (freed only after a grace
  // period) and keep pointing at the surviving chain.
  for (const MultVersion* r = p.history.load(std::memory_order_acquire);
       r != nullptr; r = r->older.load(std::memory_order_acquire)) {
    if (r->from <= epoch) return r->value;
  }
  // Unreachable while the pin protocol holds (every pinned epoch keeps its
  // covering record); 0 is the safe answer for "no version".
  return 0;
}

void Relation::StoreMult(Entry* entry, Mult after, bool inserted) {
  EntryPayload& p = entry->value;
  if (ctx_ == nullptr) {
    p.mult.store(after, std::memory_order_relaxed);
    return;
  }
  const Epoch w = ctx_->working();
  if (inserted) {
    // Born this epoch: invisible to every pinned reader, no version to
    // close.
    p.last_touch.store(w, std::memory_order_relaxed);
    p.mult.store(after, std::memory_order_relaxed);
    return;
  }
  const Epoch t = p.last_touch.load(std::memory_order_relaxed);
  if (t != w) {
    auto* rec = new MultVersion();
    rec->from = t;
    rec->value = p.mult.load(std::memory_order_relaxed);
    rec->older.store(p.history.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    p.history.store(rec, std::memory_order_release);
    p.last_touch.store(w, std::memory_order_release);
    PruneHistory(&p, w);
    if (!p.flatten_queued) {
      // Schedule a re-prune for when the pin floor passes this epoch: the
      // records this write just made obsolete-for-future-pins then drop
      // without waiting for another write to the same entry, so quiescent
      // serving catalogs converge back to flat single-version entries.
      p.flatten_queued = true;
      ctx_->log->Retire(w, &FlattenHistoryThunk, &NoopThunk, this, entry);
    }
  }
  p.mult.store(after, std::memory_order_release);
}

void Relation::PruneHistory(EntryPayload* payload, Epoch upper) {
  // Keep, for every epoch k that a reader may resolve (pinned epochs plus
  // the published one, snapshotted at batch start), the newest record with
  // from ≤ k; unlink the rest into limbo. Walk newest→oldest with the
  // keep-set largest→smallest: the record covering [from, upper) is needed
  // iff some keep epoch falls in that window. The newest record's window
  // ends at `upper` = last_touch — keep epochs at or above it are served by
  // the entry's current mult, so with no pins below last_touch the chain
  // empties completely.
  const std::vector<Epoch>& keeps = ctx_->log->keep_epochs();
  const Epoch working = ctx_->working();
  auto it = keeps.rbegin();
  std::atomic<MultVersion*>* slot = &payload->history;
  MultVersion* rec = slot->load(std::memory_order_relaxed);
  while (rec != nullptr) {
    while (it != keeps.rend() && *it >= upper) ++it;
    if (it != keeps.rend() && *it >= rec->from) {
      upper = rec->from;
      slot = &rec->older;
      rec = slot->load(std::memory_order_relaxed);
      continue;
    }
    MultVersion* next = rec->older.load(std::memory_order_relaxed);
    // The unlinked record keeps its `older` pointer, so a reader walking
    // through it still reaches the surviving chain.
    slot->store(next, std::memory_order_release);
    ctx_->log->AddLimbo(working, &FreeMultVersionThunk, nullptr, rec);
    rec = next;
  }
}

void Relation::FreeMultVersionThunk(void* /*owner*/, void* object) {
  delete static_cast<MultVersion*>(object);
}

void Relation::FlattenHistoryThunk(void* owner, void* object) {
  // Phase 1 of the flatten retire: the pin floor has passed the epoch of
  // the first-touch that queued it, and the facade refreshed keep_epochs at
  // this batch boundary — prune against the *current* pin set. The entry's
  // memory is valid even if it became a zombie since (its own free is a
  // later log entry, FIFO), and any keep epoch at or above last_touch is
  // served by the entry's current mult.
  auto* self = static_cast<Relation*>(owner);
  auto* entry = static_cast<Entry*>(object);
  EntryPayload& p = entry->value;
  p.flatten_queued = false;
  self->PruneHistory(&p, p.last_touch.load(std::memory_order_relaxed));
}

void Relation::NoopThunk(void* /*owner*/, void* /*object*/) {}

size_t Relation::DebugVersionRecords() const {
  size_t records = 0;
  for (const Entry* entry = First(); entry != nullptr; entry = NextLive(entry)) {
    for (const MultVersion* r = entry->value.history.load(std::memory_order_relaxed);
         r != nullptr; r = r->older.load(std::memory_order_relaxed)) {
      ++records;
    }
  }
  return records;
}

Relation::ApplyResult Relation::Apply(const Tuple& tuple, Mult delta) {
  IVME_CHECK_MSG(tuple.size() == schema_.size(),
                 "tuple arity " << tuple.size() << " vs schema arity " << schema_.size()
                                << " in relation " << name_);
  if (delta == 0) {
    const Mult m = Multiplicity(tuple);
    return {m, m};
  }
  auto [entry, inserted] = map_.Emplace(tuple);
  const Mult before = inserted ? 0 : EntryMult(entry);
  const Mult after = before + delta;
  if (inserted) {
    entry->value.links.reserve(indexes_.size());
    for (auto& index : indexes_) {
      entry->value.links.push_back(index->Add(entry));
    }
  }
  if (after == 0) {
    for (size_t i = 0; i < indexes_.size(); ++i) {
      indexes_[i]->Remove(entry->value.links[i]);
    }
    // Versioned mode: the zombie keeps its final multiplicity and history
    // chain — pinned readers still resolve EntryMultAt against them.
    map_.Erase(entry);
  } else {
    StoreMult(entry, after, inserted);
  }
  return {before, after};
}

void Relation::Clear() {
  for (auto& index : indexes_) index->ClearAll();
  map_.Clear();
}

int Relation::EnsureIndex(const Schema& key_schema) {
  return EnsureIndexOnColumns(ProjectionPositions(schema_, key_schema));
}

int Relation::EnsureIndexOnColumns(std::vector<int> positions) {
  const int existing = FindIndexIdOnColumns(positions);
  if (existing >= 0) return existing;
  indexes_.push_back(std::make_unique<Index>(std::move(positions)));
  Index* index = indexes_.back().get();
  index->SetEpochContext(ctx_);
  // Backfill: register all current live entries (this is what makes late
  // index creation — a query registering against a live shared relation —
  // work). Registration is quiesced, so zombies are already unlinked and
  // correctly get no links in the new index.
  for (Entry* entry = map_.First(); entry != nullptr;
       entry = TupleMap<EntryPayload>::NextLive(entry)) {
    entry->value.links.push_back(index->Add(entry));
  }
  return static_cast<int>(indexes_.size()) - 1;
}

int Relation::FindIndexId(const Schema& key_schema) const {
  return FindIndexIdOnColumns(ProjectionPositions(schema_, key_schema));
}

int Relation::FindIndexIdOnColumns(const std::vector<int>& positions) const {
  for (size_t i = 0; i < indexes_.size(); ++i) {
    if (indexes_[i]->positions() == positions) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace ivme
