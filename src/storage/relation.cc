#include "src/storage/relation.h"

#include "src/common/check.h"

namespace ivme {

// ---------------------------------------------------------------------------
// Index
// ---------------------------------------------------------------------------

Relation::Index::Index(const Schema& relation_schema, Schema key_schema)
    : positions_(ProjectionPositions(relation_schema, key_schema)) {}

Relation::Index::Index(std::vector<int> positions) : positions_(std::move(positions)) {}

Relation::Index::~Index() { ClearAll(); }

size_t Relation::Index::CountForKey(const Tuple& key) const {
  const BucketNode* node = buckets_.Find(key);
  return node != nullptr ? node->value.count : 0;
}

const Relation::IndexLink* Relation::Index::FirstForKey(const Tuple& key) const {
  const BucketNode* node = buckets_.Find(key);
  return node != nullptr ? node->value.head : nullptr;
}

Relation::IndexLink* Relation::Index::Add(Entry* entry) {
  const Tuple key = KeyOf(entry->key);
  auto [bucket_node, inserted] = buckets_.Emplace(key);
  (void)inserted;
  auto* link = new IndexLink();
  link->entry = entry;
  link->bucket_node = bucket_node;
  // Prepend to the bucket's doubly-linked list (O(1)).
  link->next = bucket_node->value.head;
  if (link->next != nullptr) link->next->prev = link;
  bucket_node->value.head = link;
  ++bucket_node->value.count;
  return link;
}

void Relation::Index::Remove(IndexLink* link) {
  BucketNode* bucket_node = link->bucket_node;
  if (link->prev != nullptr) {
    link->prev->next = link->next;
  } else {
    bucket_node->value.head = link->next;
  }
  if (link->next != nullptr) link->next->prev = link->prev;
  --bucket_node->value.count;
  if (bucket_node->value.count == 0) {
    IVME_CHECK(bucket_node->value.head == nullptr);
    buckets_.Erase(bucket_node);
  }
  delete link;
}

void Relation::Index::ClearAll() {
  for (BucketNode* node = buckets_.First(); node != nullptr; node = node->next) {
    IndexLink* link = node->value.head;
    while (link != nullptr) {
      IndexLink* next = link->next;
      delete link;
      link = next;
    }
  }
  buckets_.Clear();
}

// ---------------------------------------------------------------------------
// Relation
// ---------------------------------------------------------------------------

Relation::Relation(Schema schema, std::string name)
    : schema_(std::move(schema)), name_(std::move(name)) {}

Mult Relation::Multiplicity(const Tuple& tuple) const {
  const Entry* entry = map_.Find(tuple);
  return entry != nullptr ? entry->value.mult : 0;
}

Relation::ApplyResult Relation::Apply(const Tuple& tuple, Mult delta) {
  IVME_CHECK_MSG(tuple.size() == schema_.size(),
                 "tuple arity " << tuple.size() << " vs schema arity " << schema_.size()
                                << " in relation " << name_);
  if (delta == 0) {
    const Mult m = Multiplicity(tuple);
    return {m, m};
  }
  auto [entry, inserted] = map_.Emplace(tuple);
  const Mult before = inserted ? 0 : entry->value.mult;
  const Mult after = before + delta;
  if (inserted) {
    entry->value.links.reserve(indexes_.size());
    for (auto& index : indexes_) {
      entry->value.links.push_back(index->Add(entry));
    }
  }
  if (after == 0) {
    for (size_t i = 0; i < indexes_.size(); ++i) {
      indexes_[i]->Remove(entry->value.links[i]);
    }
    map_.Erase(entry);
  } else {
    entry->value.mult = after;
  }
  return {before, after};
}

void Relation::Clear() {
  for (auto& index : indexes_) index->ClearAll();
  map_.Clear();
}

int Relation::EnsureIndex(const Schema& key_schema) {
  return EnsureIndexOnColumns(ProjectionPositions(schema_, key_schema));
}

int Relation::EnsureIndexOnColumns(std::vector<int> positions) {
  const int existing = FindIndexIdOnColumns(positions);
  if (existing >= 0) return existing;
  indexes_.push_back(std::make_unique<Index>(std::move(positions)));
  Index* index = indexes_.back().get();
  // Backfill: register all current entries (this is what makes late index
  // creation — a query registering against a live shared relation — work).
  for (Entry* entry = map_.First(); entry != nullptr; entry = entry->next) {
    entry->value.links.push_back(index->Add(entry));
  }
  return static_cast<int>(indexes_.size()) - 1;
}

int Relation::FindIndexId(const Schema& key_schema) const {
  return FindIndexIdOnColumns(ProjectionPositions(schema_, key_schema));
}

int Relation::FindIndexIdOnColumns(const std::vector<int>& positions) const {
  for (size_t i = 0; i < indexes_.size(); ++i) {
    if (indexes_[i]->positions() == positions) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace ivme
