#include "src/storage/serial.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace ivme {

namespace {

struct Crc32Table {
  uint32_t entries[256];
  Crc32Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      entries[i] = c;
    }
  }
};

}  // namespace

uint32_t Crc32(const void* data, size_t n, uint32_t seed) {
  static const Crc32Table table;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) c = table.entries[(c ^ p[i]) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

void ByteSink::PutU32(uint32_t v) {
  char raw[4];
  for (int i = 0; i < 4; ++i) raw[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  buffer_.append(raw, 4);
}

void ByteSink::PutU64(uint64_t v) {
  char raw[8];
  for (int i = 0; i < 8; ++i) raw[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  buffer_.append(raw, 8);
}

void ByteSink::PutDouble(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void ByteSink::PutString(const std::string& s) {
  PutU32(static_cast<uint32_t>(s.size()));
  buffer_.append(s);
}

void ByteSink::PutTuple(const Tuple& t) {
  PutU32(static_cast<uint32_t>(t.size()));
  for (const Value v : t) PutI64(v);
}

bool ByteSource::Take(size_t n, const char** out) {
  if (size_ - pos_ < n) return false;
  *out = data_ + pos_;
  pos_ += n;
  return true;
}

bool ByteSource::GetU8(uint8_t* v) {
  const char* p = nullptr;
  if (!Take(1, &p)) return false;
  *v = static_cast<uint8_t>(*p);
  return true;
}

bool ByteSource::GetU32(uint32_t* v) {
  const char* p = nullptr;
  if (!Take(4, &p)) return false;
  uint32_t value = 0;
  for (int i = 0; i < 4; ++i) value |= static_cast<uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  *v = value;
  return true;
}

bool ByteSource::GetU64(uint64_t* v) {
  const char* p = nullptr;
  if (!Take(8, &p)) return false;
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) value |= static_cast<uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  *v = value;
  return true;
}

bool ByteSource::GetI64(int64_t* v) {
  uint64_t raw = 0;
  if (!GetU64(&raw)) return false;
  *v = static_cast<int64_t>(raw);
  return true;
}

bool ByteSource::GetDouble(double* v) {
  uint64_t bits = 0;
  if (!GetU64(&bits)) return false;
  std::memcpy(v, &bits, sizeof(bits));
  return true;
}

bool ByteSource::GetString(std::string* s) {
  uint32_t length = 0;
  if (!GetU32(&length)) return false;
  const char* p = nullptr;
  if (!Take(length, &p)) return false;
  s->assign(p, length);
  return true;
}

bool ByteSource::GetTuple(Tuple* t) {
  uint32_t arity = 0;
  if (!GetU32(&arity)) return false;
  if (remaining() < static_cast<size_t>(arity) * 8) return false;  // reject bogus arities early
  t->Clear();
  t->Reserve(arity);
  for (uint32_t i = 0; i < arity; ++i) {
    int64_t v = 0;
    if (!GetI64(&v)) return false;
    t->PushBack(v);
  }
  return true;
}

Status WriteFileDurable(const std::string& path, const std::string& bytes) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Error("cannot create " + path + ": " + std::strerror(errno));
  }
  size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string why = std::strerror(errno);
      ::close(fd);
      return Status::Error("write to " + path + " failed: " + why);
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    return Status::Error("fsync of " + path + " failed: " + why);
  }
  ::close(fd);
  return Status::Ok();
}

Status ReadFileToString(const std::string& path, std::string* out) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::Error("cannot open " + path + ": " + std::strerror(errno));
  }
  out->clear();
  char chunk[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string why = std::strerror(errno);
      ::close(fd);
      return Status::Error("read of " + path + " failed: " + why);
    }
    if (n == 0) break;
    out->append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  return Status::Ok();
}

}  // namespace ivme
