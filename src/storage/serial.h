// Binary serialization primitives shared by the WAL and the snapshot
// checkpointer: a little-endian byte sink/source pair plus CRC32 (IEEE
// 802.3, software table). Every durable artifact is written through these,
// so the on-disk format is platform-independent and every read path reports
// corruption as a Status instead of trusting the bytes.
#ifndef IVME_STORAGE_SERIAL_H_
#define IVME_STORAGE_SERIAL_H_

#include <cstdint>
#include <string>

#include "src/common/status.h"
#include "src/data/tuple.h"

namespace ivme {

/// CRC32 (IEEE, reflected polynomial 0xEDB88320) of `n` bytes, chainable
/// through `seed` (pass a previous result to extend a running checksum).
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);

/// Append-only little-endian encoder over a std::string buffer.
class ByteSink {
 public:
  ByteSink() = default;

  void PutU8(uint8_t v) { buffer_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutDouble(double v);

  /// u32 length prefix + raw bytes.
  void PutString(const std::string& s);

  /// u32 arity prefix + the values (i64 each).
  void PutTuple(const Tuple& t);

  const std::string& bytes() const { return buffer_; }
  std::string&& TakeBytes() { return std::move(buffer_); }
  size_t size() const { return buffer_.size(); }
  void Clear() { buffer_.clear(); }

 private:
  std::string buffer_;
};

/// Bounds-checked little-endian decoder over a byte span. Every getter
/// returns false (leaving the output untouched) when the remaining bytes
/// cannot satisfy it; callers turn that into a corruption Status.
class ByteSource {
 public:
  ByteSource(const char* data, size_t size) : data_(data), size_(size) {}
  explicit ByteSource(const std::string& bytes) : ByteSource(bytes.data(), bytes.size()) {}

  bool GetU8(uint8_t* v);
  bool GetU32(uint32_t* v);
  bool GetU64(uint64_t* v);
  bool GetI64(int64_t* v);
  bool GetDouble(double* v);
  bool GetString(std::string* s);
  bool GetTuple(Tuple* t);

  size_t remaining() const { return size_ - pos_; }
  bool exhausted() const { return pos_ == size_; }

 private:
  bool Take(size_t n, const char** out);

  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// Writes `bytes` to `path` followed by fsync; used for snapshot temp files.
Status WriteFileDurable(const std::string& path, const std::string& bytes);

/// Reads the whole file into `out` (error when absent or unreadable).
Status ReadFileToString(const std::string& path, std::string* out);

}  // namespace ivme

#endif  // IVME_STORAGE_SERIAL_H_
