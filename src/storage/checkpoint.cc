#include "src/storage/checkpoint.h"

#include <dirent.h>
#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/storage/serial.h"

namespace ivme {

namespace {

constexpr uint32_t kSnapshotMagic = 0x49564D45;  // "IVME"
// Version 2 adds the string-dictionary section between the header and the
// query specs; version-1 files (no dictionary) are still readable.
constexpr uint32_t kSnapshotVersion = 2;

Status SyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::Error("cannot open directory " + dir + ": " + std::strerror(errno));
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::Error("fsync of directory " + dir + " failed: " + std::strerror(errno));
  }
  return Status::Ok();
}

std::string Serialize(const SnapshotData& data) {
  ByteSink sink;
  sink.PutU32(kSnapshotMagic);
  sink.PutU32(kSnapshotVersion);
  sink.PutU64(data.lsn);
  sink.PutU64(data.num_shards);
  sink.PutU8(data.live ? 1 : 0);
  sink.PutU32(static_cast<uint32_t>(data.dictionary.size()));
  for (const std::string& s : data.dictionary) sink.PutString(s);
  sink.PutU32(static_cast<uint32_t>(data.queries.size()));
  for (const SnapshotQuerySpec& query : data.queries) {
    sink.PutString(query.name);
    sink.PutString(query.text);
    sink.PutDouble(query.epsilon);
    sink.PutU8(query.mode);
    sink.PutU8(query.enable_rebalancing);
    sink.PutU8(query.rebalance_mode);
    sink.PutDouble(query.rebalance_budget);
  }
  sink.PutU32(static_cast<uint32_t>(data.relations.size()));
  for (const SnapshotRelation& relation : data.relations) {
    sink.PutString(relation.name);
    sink.PutU32(relation.arity);
    sink.PutU64(relation.tuples.size());
    for (const auto& [tuple, mult] : relation.tuples) {
      sink.PutTuple(tuple);
      sink.PutI64(mult);
    }
  }
  const uint32_t crc = Crc32(sink.bytes().data(), sink.size());
  sink.PutU32(crc);
  return sink.TakeBytes();
}

}  // namespace

std::string SnapshotFileName(uint64_t lsn) {
  char name[48];
  std::snprintf(name, sizeof(name), "snapshot-%020llu.ivme",
                static_cast<unsigned long long>(lsn));
  return name;
}

Status WriteSnapshotFile(const std::string& dir, const SnapshotData& data,
                         FaultInjector* injector) {
  const std::string bytes = Serialize(data);
  const std::string final_path = dir + "/" + SnapshotFileName(data.lsn);
  const std::string tmp_path = final_path + ".tmp";

  if (injector != nullptr && injector->ShouldCrash("checkpoint:before_tmp_write")) {
    return Status::Error("fault injected: checkpoint:before_tmp_write");
  }
  if (injector != nullptr && injector->ShouldCrash("checkpoint:tmp_torn")) {
    // A crash mid-write leaves a half-written tmp; recovery must ignore it.
    (void)WriteFileDurable(tmp_path, bytes.substr(0, bytes.size() / 2));
    return Status::Error("fault injected: checkpoint:tmp_torn");
  }
  Status written = WriteFileDurable(tmp_path, bytes);
  if (!written.ok()) return written;

  if (injector != nullptr && injector->ShouldCrash("checkpoint:before_rename")) {
    return Status::Error("fault injected: checkpoint:before_rename");
  }
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    return Status::Error("cannot rename " + tmp_path + ": " + std::strerror(errno));
  }
  Status synced = SyncDir(dir);
  if (!synced.ok()) return synced;
  if (injector != nullptr && injector->ShouldCrash("checkpoint:after_rename")) {
    return Status::Error("fault injected: checkpoint:after_rename");
  }
  return Status::Ok();
}

Status ReadSnapshotFile(const std::string& path, SnapshotData* out) {
  std::string bytes;
  Status read = ReadFileToString(path, &bytes);
  if (!read.ok()) return read;
  if (bytes.size() < 4 + 4 + 4) return Status::Error(path + ": truncated snapshot");
  ByteSource tail(bytes.data() + bytes.size() - 4, 4);
  uint32_t expected_crc = 0;
  tail.GetU32(&expected_crc);
  if (Crc32(bytes.data(), bytes.size() - 4) != expected_crc) {
    return Status::Error(path + ": snapshot checksum mismatch");
  }

  ByteSource source(bytes.data(), bytes.size() - 4);
  uint32_t magic = 0;
  uint32_t version = 0;
  if (!source.GetU32(&magic) || magic != kSnapshotMagic) {
    return Status::Error(path + ": bad snapshot magic");
  }
  if (!source.GetU32(&version) || version < 1 || version > kSnapshotVersion) {
    return Status::Error(path + ": unsupported snapshot version");
  }
  SnapshotData data;
  uint8_t live = 0;
  if (!source.GetU64(&data.lsn) || !source.GetU64(&data.num_shards) || !source.GetU8(&live)) {
    return Status::Error(path + ": truncated snapshot header");
  }
  data.live = live != 0;
  if (version >= 2) {
    uint32_t num_strings = 0;
    if (!source.GetU32(&num_strings)) {
      return Status::Error(path + ": truncated dictionary count");
    }
    data.dictionary.reserve(num_strings);
    for (uint32_t i = 0; i < num_strings; ++i) {
      std::string s;
      if (!source.GetString(&s)) {
        return Status::Error(path + ": truncated dictionary string");
      }
      data.dictionary.push_back(std::move(s));
    }
  }
  uint32_t num_queries = 0;
  if (!source.GetU32(&num_queries)) {
    return Status::Error(path + ": truncated query count");
  }
  for (uint32_t i = 0; i < num_queries; ++i) {
    SnapshotQuerySpec query;
    if (!source.GetString(&query.name) || !source.GetString(&query.text) ||
        !source.GetDouble(&query.epsilon) || !source.GetU8(&query.mode) ||
        !source.GetU8(&query.enable_rebalancing) || !source.GetU8(&query.rebalance_mode) ||
        !source.GetDouble(&query.rebalance_budget)) {
      return Status::Error(path + ": truncated query spec");
    }
    data.queries.push_back(std::move(query));
  }
  uint32_t num_relations = 0;
  if (!source.GetU32(&num_relations)) {
    return Status::Error(path + ": truncated relation count");
  }
  for (uint32_t i = 0; i < num_relations; ++i) {
    SnapshotRelation relation;
    uint64_t count = 0;
    if (!source.GetString(&relation.name) || !source.GetU32(&relation.arity) ||
        !source.GetU64(&count)) {
      return Status::Error(path + ": truncated relation header");
    }
    relation.tuples.reserve(count);
    for (uint64_t t = 0; t < count; ++t) {
      Tuple tuple;
      int64_t mult = 0;
      if (!source.GetTuple(&tuple) || !source.GetI64(&mult)) {
        return Status::Error(path + ": truncated tuple data in " + relation.name);
      }
      if (tuple.size() != relation.arity) {
        return Status::Error(path + ": arity mismatch in " + relation.name);
      }
      if (mult <= 0) {
        return Status::Error(path + ": non-positive multiplicity in " + relation.name);
      }
      relation.tuples.emplace_back(std::move(tuple), mult);
    }
    data.relations.push_back(std::move(relation));
  }
  if (!source.exhausted()) {
    return Status::Error(path + ": trailing bytes after snapshot body");
  }
  *out = std::move(data);
  return Status::Ok();
}

Status ListSnapshots(const std::string& dir, std::vector<uint64_t>* out) {
  out->clear();
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return Status::Error("cannot list " + dir + ": " + std::strerror(errno));
  }
  while (struct dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name.size() != 34 || name.compare(0, 9, "snapshot-") != 0 ||
        name.compare(29, 5, ".ivme") != 0) {
      continue;
    }
    char* end = nullptr;
    const unsigned long long lsn = std::strtoull(name.c_str() + 9, &end, 10);
    if (end != name.c_str() + 29) continue;
    out->push_back(static_cast<uint64_t>(lsn));
  }
  ::closedir(d);
  std::sort(out->begin(), out->end());
  return Status::Ok();
}

Status RetainSnapshots(const std::string& dir, size_t keep, FaultInjector* injector) {
  std::vector<uint64_t> snapshots;
  Status listed = ListSnapshots(dir, &snapshots);
  if (!listed.ok()) return listed;
  bool first_unlink = true;
  const size_t drop = snapshots.size() > keep ? snapshots.size() - keep : 0;
  for (size_t i = 0; i < drop; ++i) {
    const std::string path = dir + "/" + SnapshotFileName(snapshots[i]);
    (void)::unlink(path.c_str());
    if (first_unlink && injector != nullptr && injector->ShouldCrash("checkpoint:mid_retain")) {
      return Status::Error("fault injected: checkpoint:mid_retain");
    }
    first_unlink = false;
  }
  // Stale .tmp files (crashed checkpoints) are garbage from any epoch.
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return Status::Error("cannot list " + dir + ": " + std::strerror(errno));
  }
  std::vector<std::string> stale;
  while (struct dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      stale.push_back(name);
    }
  }
  ::closedir(d);
  for (const std::string& name : stale) (void)::unlink((dir + "/" + name).c_str());
  return Status::Ok();
}

}  // namespace ivme
