#include "src/storage/wal.h"

#include <dirent.h>
#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/storage/serial.h"

namespace ivme {

namespace {

constexpr size_t kFrameHeaderBytes = 8;  // u32 length + u32 crc32

bool KnownType(uint8_t type) {
  return type >= static_cast<uint8_t>(WalRecordType::kBatch) &&
         type <= static_cast<uint8_t>(WalRecordType::kDictionary);
}

}  // namespace

const char* FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kOff:
      return "off";
    case FsyncPolicy::kBatch:
      return "batch";
    case FsyncPolicy::kAlways:
      return "always";
  }
  return "?";
}

WalWriter::~WalWriter() { Close(); }

Status WalWriter::Open(const std::string& path, FsyncPolicy policy, size_t fsync_interval,
                       FaultInjector* injector) {
  Close();
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) {
    return Status::Error("cannot open WAL segment " + path + ": " + std::strerror(errno));
  }
  path_ = path;
  policy_ = policy;
  fsync_interval_ = fsync_interval == 0 ? 1 : fsync_interval;
  unsynced_records_ = 0;
  injector_ = injector;
  // Per-segment counters: callers accumulating totals across rotations
  // (DurableCatalog's rotated_*) add up the stats of each segment.
  stats_ = WalWriterStats();
  return Status::Ok();
}

Status WalWriter::WriteAll(const char* data, size_t n) {
  size_t written = 0;
  while (written < n) {
    const ssize_t w = ::write(fd_, data + written, n - written);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::Error("WAL write to " + path_ + " failed: " + std::strerror(errno));
    }
    written += static_cast<size_t>(w);
  }
  return Status::Ok();
}

Status WalWriter::Append(const WalRecord& record) {
  if (fd_ < 0) return Status::Error("WAL writer is closed");
  if (injector_ != nullptr && injector_->ShouldCrash("wal:before_append")) {
    return Status::Error("fault injected: wal:before_append");
  }

  // Frame: [length][crc][lsn type payload]; crc covers the length bytes.
  ByteSink body;
  body.PutU64(record.lsn);
  body.PutU8(static_cast<uint8_t>(record.type));
  // The payload is appended raw (it is already a serialized byte string).
  ByteSink frame;
  frame.PutU32(static_cast<uint32_t>(body.size() + record.payload.size()));
  frame.PutU32(Crc32(record.payload.data(), record.payload.size(),
                     Crc32(body.bytes().data(), body.size())));
  std::string bytes = frame.TakeBytes();
  bytes += body.bytes();
  bytes += record.payload;

  if (injector_ != nullptr && injector_->ShouldCrash("wal:append_torn")) {
    // A real crash mid-write leaves a prefix of the frame; write one that
    // always cuts inside the record so the reader must detect the tear.
    const size_t partial = bytes.size() > 2 ? bytes.size() / 2 + 1 : 1;
    (void)WriteAll(bytes.data(), partial);
    return Status::Error("fault injected: wal:append_torn");
  }

  Status written = WriteAll(bytes.data(), bytes.size());
  if (!written.ok()) return written;
  ++stats_.records_appended;
  stats_.bytes_appended += bytes.size();
  stats_.last_lsn = record.lsn;
  ++unsynced_records_;

  if (policy_ == FsyncPolicy::kAlways ||
      (policy_ == FsyncPolicy::kBatch && unsynced_records_ >= fsync_interval_)) {
    return Sync();
  }
  return Status::Ok();
}

Status WalWriter::Sync() {
  if (fd_ < 0) return Status::Error("WAL writer is closed");
  if (unsynced_records_ == 0) return Status::Ok();
  if (injector_ != nullptr && injector_->ShouldCrash("wal:before_sync")) {
    return Status::Error("fault injected: wal:before_sync");
  }
  if (::fsync(fd_) != 0) {
    return Status::Error("WAL fsync of " + path_ + " failed: " + std::strerror(errno));
  }
  ++stats_.syncs;
  unsynced_records_ = 0;
  return Status::Ok();
}

void WalWriter::Close() {
  if (fd_ < 0) return;
  ::close(fd_);
  fd_ = -1;
}

Status ScanWalSegment(const std::string& path, WalScanResult* out) {
  out->records.clear();
  out->valid_bytes = 0;
  out->torn = false;
  std::string bytes;
  Status read = ReadFileToString(path, &bytes);
  if (!read.ok()) return read;

  uint64_t last_lsn = 0;
  size_t pos = 0;
  while (pos < bytes.size()) {
    ByteSource header(bytes.data() + pos, bytes.size() - pos);
    uint32_t length = 0;
    uint32_t crc = 0;
    if (!header.GetU32(&length) || !header.GetU32(&crc) ||
        header.remaining() < length || length < 9) {
      out->torn = true;  // partial frame header or body: the torn tail
      break;
    }
    const char* body = bytes.data() + pos + kFrameHeaderBytes;
    if (Crc32(body, length) != crc) {
      out->torn = true;
      break;
    }
    ByteSource record_source(body, length);
    WalRecord record;
    uint8_t type = 0;
    if (!record_source.GetU64(&record.lsn) || !record_source.GetU8(&type) ||
        !KnownType(type) || (!out->records.empty() && record.lsn <= last_lsn)) {
      out->torn = true;  // CRC passed but the content is nonsense
      break;
    }
    record.type = static_cast<WalRecordType>(type);
    record.payload.assign(body + 9, length - 9);
    last_lsn = record.lsn;
    out->records.push_back(std::move(record));
    pos += kFrameHeaderBytes + length;
    out->valid_bytes = pos;
  }
  return Status::Ok();
}

Status TruncateWalSegment(const std::string& path, uint64_t size) {
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    return Status::Error("cannot truncate WAL segment " + path + ": " + std::strerror(errno));
  }
  return Status::Ok();
}

std::string WalSegmentFileName(uint64_t start_lsn) {
  char name[40];
  std::snprintf(name, sizeof(name), "wal-%020llu.log",
                static_cast<unsigned long long>(start_lsn));
  return name;
}

Status ListWalSegments(const std::string& dir,
                       std::vector<std::pair<uint64_t, std::string>>* out) {
  out->clear();
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return Status::Error("cannot list " + dir + ": " + std::strerror(errno));
  }
  while (struct dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name.size() != 28 || name.compare(0, 4, "wal-") != 0 ||
        name.compare(24, 4, ".log") != 0) {
      continue;
    }
    char* end = nullptr;
    const unsigned long long lsn = std::strtoull(name.c_str() + 4, &end, 10);
    if (end != name.c_str() + 24) continue;
    out->emplace_back(static_cast<uint64_t>(lsn), name);
  }
  ::closedir(d);
  std::sort(out->begin(), out->end());
  return Status::Ok();
}

}  // namespace ivme
