// Heavy/light partitioning of base relations (Definition 11). Only the
// light part R^S is materialized as its own relation; the heavy part is
// R − R^S and is never stored separately (views over heavy values read the
// full relation, gated by heavy indicators).
#ifndef IVME_STORAGE_PARTITION_H_
#define IVME_STORAGE_PARTITION_H_

#include <string>

#include "src/storage/relation.h"

namespace ivme {

/// The light part R^S of a base relation R partitioned on key schema S,
/// together with the bookkeeping needed to classify keys in O(1):
/// an index on S over both R and R^S.
class RelationPartition {
 public:
  /// Partitions `base` on `keys`, both expressed in the variable-id space of
  /// base->schema(). Only valid for privately owned relations whose schema
  /// matches the caller's variables.
  RelationPartition(Relation* base, Schema keys, std::string light_name);

  /// Partitions a possibly store-shared `base` on `keys`, resolving key
  /// variables against `atom_schema` — the caller's per-query view of the
  /// relation's column layout. The light part (per-query maintenance state)
  /// is created with `atom_schema`, and the base index is requested by
  /// column positions so that queries with disjoint variable-id spaces
  /// share one physical index per distinct column projection.
  RelationPartition(Relation* base, const Schema& atom_schema, Schema keys,
                    std::string light_name);

  RelationPartition(const RelationPartition&) = delete;
  RelationPartition& operator=(const RelationPartition&) = delete;

  Relation* base() const { return base_; }
  Relation* light() { return &light_; }
  const Relation* light() const { return &light_; }
  const Schema& keys() const { return keys_; }

  /// Projects a full tuple of R onto the partition key schema.
  Tuple KeyOf(const Tuple& tuple) const;

  /// |σ_{S=key} R| in O(1).
  size_t BaseCountForKey(const Tuple& key) const;

  /// |σ_{S=key} R^S| in O(1).
  size_t LightCountForKey(const Tuple& key) const;

  /// key ∈ π_S R^S in O(1).
  bool KeyInLight(const Tuple& key) const;

  /// Rebuilds R^S as the strict partition with threshold `theta`:
  /// key is light iff |σ_{S=key} R| < theta (Definition 11, strict
  /// conditions). Used by major rebalancing; callers must recompute any
  /// views over the light part afterwards.
  void StrictRepartition(size_t theta);

  int base_index_id() const { return base_index_id_; }
  int light_index_id() const { return light_index_id_; }

 private:
  Relation* base_;
  Schema keys_;
  Relation light_;
  int base_index_id_;
  int light_index_id_;
};

}  // namespace ivme

#endif  // IVME_STORAGE_PARTITION_H_
