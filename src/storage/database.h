// A database: named relations plus the total size |D| = Σ |R|.
#ifndef IVME_STORAGE_DATABASE_H_
#define IVME_STORAGE_DATABASE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/storage/relation.h"

namespace ivme {

/// Owns a set of named relations. Names are unique.
class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Creates a relation; the name must be fresh.
  Relation* AddRelation(const std::string& name, Schema schema);

  /// Looks up by name; nullptr when absent.
  Relation* Find(const std::string& name) const;

  /// Total number of distinct tuples across all relations.
  size_t TotalSize() const;

  const std::vector<std::unique_ptr<Relation>>& relations() const { return relations_; }

 private:
  std::vector<std::unique_ptr<Relation>> relations_;
};

}  // namespace ivme

#endif  // IVME_STORAGE_DATABASE_H_
