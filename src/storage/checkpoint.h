// Snapshot checkpoints of the durable catalog: the full logical state —
// shard count, registered query set (by query text plus engine options),
// and every store relation's contents — serialized to one versioned,
// CRC-protected file. Snapshots are written to "snapshot-<lsn>.tmp" and
// atomically renamed to "snapshot-<lsn>.ivme", so a crash mid-write leaves
// at worst a stale .tmp that recovery ignores; the recorded LSN is the WAL
// position the snapshot captures, and recovery replays only records beyond
// it. This layer is core-agnostic (plain field mirrors of EngineOptions);
// DurableCatalog converts to and from the live catalog.
#ifndef IVME_STORAGE_CHECKPOINT_H_
#define IVME_STORAGE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/common/fault_injector.h"
#include "src/common/status.h"
#include "src/data/tuple.h"

namespace ivme {

/// One registered query as the snapshot stores it. The query itself rides
/// as its ToString() text (reparsed on recovery); the engine options are
/// mirrored field by field to keep storage below core.
struct SnapshotQuerySpec {
  std::string name;
  std::string text;
  double epsilon = 0.5;
  uint8_t mode = 1;  ///< EvalMode: 0 static, 1 dynamic
  uint8_t enable_rebalancing = 1;
  uint8_t rebalance_mode = 0;  ///< RebalanceMode: 0 amortized, 1 incremental
  double rebalance_budget = 8.0;
};

/// One relation's full contents (merged across shards).
struct SnapshotRelation {
  std::string name;
  uint32_t arity = 0;
  std::vector<std::pair<Tuple, Mult>> tuples;
};

/// The complete logical state a snapshot captures.
struct SnapshotData {
  uint64_t lsn = 0;         ///< WAL position; recovery replays records > lsn
  uint64_t num_shards = 1;  ///< shard count to rebuild with
  bool live = false;        ///< whether Preprocess had run
  /// String dictionary in id order (id i = dictionary[i]): re-interned
  /// before any relation loads, so tagged tuple values resolve. Empty for
  /// version-1 snapshots (written before dictionary encoding existed).
  std::vector<std::string> dictionary;
  std::vector<SnapshotQuerySpec> queries;
  std::vector<SnapshotRelation> relations;
};

/// "snapshot-<lsn, zero-padded>.ivme" (lexicographic order = LSN order).
std::string SnapshotFileName(uint64_t lsn);

/// Serializes `data` and writes it into `dir` via the tmp-then-rename
/// protocol, fsyncing the file and the directory. Crash points:
/// "checkpoint:before_tmp_write", "checkpoint:tmp_torn" (a half-written
/// tmp file is left behind), "checkpoint:before_rename",
/// "checkpoint:after_rename".
Status WriteSnapshotFile(const std::string& dir, const SnapshotData& data,
                         FaultInjector* injector);

/// Reads and validates one snapshot file (magic, version, CRC, structure).
/// Any mismatch is a Status error naming the defect; `out` is only filled
/// on success.
Status ReadSnapshotFile(const std::string& path, SnapshotData* out);

/// LSNs of every complete snapshot in `dir`, ascending. Stale .tmp files
/// are ignored (and not deleted; Retain handles cleanup).
Status ListSnapshots(const std::string& dir, std::vector<uint64_t>* out);

/// Deletes all but the `keep` newest snapshots plus every stale .tmp.
/// Crash point: "checkpoint:mid_retain" (after the first unlink).
Status RetainSnapshots(const std::string& dir, size_t keep, FaultInjector* injector);

}  // namespace ivme

#endif  // IVME_STORAGE_CHECKPOINT_H_
