// The shared base-relation store: one canonical Relation per relation
// symbol, owned independently of any query. Queries (MaintainedQuery)
// attach to relations by name and borrow their storage; per-query
// maintenance state (light parts, views, indicator triples, self-join
// mirror occurrences) stays outside the store. A catalog over the store
// applies each update's base-storage write exactly once, no matter how many
// queries are registered — the write is counted in
// CostCounters::base_writes.
#ifndef IVME_STORAGE_RELATION_STORE_H_
#define IVME_STORAGE_RELATION_STORE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/data/dictionary.h"
#include "src/data/mutability.h"
#include "src/data/update.h"
#include "src/storage/relation.h"

namespace ivme {

/// Owns the canonical tuple storage of named base relations.
///
/// Stored relations use a canonical column schema (variable id i = column
/// i), so queries whose schemas live in disjoint variable-id spaces can
/// share one relation; they must request indexes by column position
/// (Relation::EnsureIndexOnColumns). Relations are reference-counted by the
/// queries attached to them; the data itself outlives its readers (dropping
/// the last query keeps the relation, so a re-registered query preprocesses
/// from the live contents).
class RelationStore {
 public:
  /// Outcome of applying one consolidated per-relation net delta.
  struct DeltaResult {
    /// The entries actually written (net multiplicity != 0), in
    /// consolidation order. Shared by every query's maintenance pass.
    std::vector<std::pair<Tuple, Mult>> applied;

    /// Per applied entry: the distinct-tuple support change (+1 appeared,
    /// -1 vanished, 0 multiplicity-only), aligned with `applied`.
    std::vector<int> support;

    /// Sum of `support` — the relation's |R| change.
    long long net_support = 0;
  };

  RelationStore();
  RelationStore(const RelationStore&) = delete;
  RelationStore& operator=(const RelationStore&) = delete;

  /// The store's string dictionary: interned ids ride inside stored tuples
  /// as tagged Values (value.h). Owned jointly — the shard slices of one
  /// sharded catalog share a single dictionary (ids must agree across
  /// shards because the router hashes them; see ShareDictionary).
  const std::shared_ptr<StringDictionary>& dictionary() const { return dictionary_; }

  /// Replaces this store's dictionary with a shared one. The current
  /// dictionary must still be empty (no interned id may be stranded) —
  /// catalogs share at construction / rebuild time, before any data moves.
  void ShareDictionary(std::shared_ptr<StringDictionary> dict);

  /// Creates the relation (canonical column schema) or attaches to the
  /// existing one; either way the reference count grows by one. An arity or
  /// mutability mismatch with an existing relation is a hard error —
  /// catalogs validate both before attaching and report structured errors;
  /// the CHECK here is the backstop for direct store users. Mutability is a
  /// property of the stored data and stays sticky for the relation's
  /// lifetime (like arity), even across refcount zero.
  Relation* Attach(const std::string& name, size_t arity,
                   Mutability mutability = Mutability::kDynamic);

  /// Drops one reference. The relation and its contents are kept even at
  /// zero references — the store is the database, queries only borrow it.
  void Release(const std::string& name);

  /// Looks up by name; nullptr when absent.
  Relation* Find(const std::string& name) const;

  /// Number of queries currently attached to `name` (0 when absent).
  size_t RefCount(const std::string& name) const;

  /// Declared mutability of `name` (kDynamic when absent).
  Mutability MutabilityOf(const std::string& name) const;

  /// Applies one single-tuple write to `name` (which must exist) and counts
  /// it as a base-storage write.
  Relation::ApplyResult Apply(const std::string& name, const Tuple& tuple, Mult mult);

  /// Applies a consolidated net delta to `name`: every entry with a nonzero
  /// net multiplicity is written once (and counted once). Fills `result`
  /// with the applied entries and their support changes, in a caller-owned
  /// scratch whose capacity persists across batches.
  void ApplyDelta(const std::string& name, const TupleMap<Mult>& delta, DeltaResult* result);

  /// Contents of a relation as (tuple, multiplicity) pairs in storage
  /// order. O(relation).
  std::vector<std::pair<Tuple, Mult>> Dump(const std::string& name) const;

  /// Total number of distinct tuples across all relations (the |D| of the
  /// store, counting each relation once regardless of attached queries).
  size_t TotalSize() const;

  /// Relation names in creation order.
  std::vector<std::string> RelationNames() const;

  /// Enters (ctx != nullptr) or leaves versioned mode on every currently
  /// stored relation (the owning catalog re-applies after new attachments).
  /// Static relations are skipped: their contents are constant after
  /// preprocessing, and an unversioned relation answers epoch reads with
  /// its current contents (plain-mode nodes are born live at every epoch) —
  /// so they never grow version chains at all. Quiesced points only (see
  /// Relation::SetEpochContext).
  void SetEpochContext(const EpochContext* ctx);

 private:
  struct Entry {
    std::string name;
    size_t refcount = 0;
    Mutability mutability = Mutability::kDynamic;
    std::unique_ptr<Relation> relation;
  };

  Entry* FindEntry(const std::string& name);
  const Entry* FindEntry(const std::string& name) const;

  std::vector<Entry> entries_;
  std::shared_ptr<StringDictionary> dictionary_;
};

}  // namespace ivme

#endif  // IVME_STORAGE_RELATION_STORE_H_
