#include "src/storage/partition.h"

#include "src/common/check.h"

namespace ivme {

RelationPartition::RelationPartition(Relation* base, Schema keys, std::string light_name)
    : RelationPartition(base, base->schema(), std::move(keys), std::move(light_name)) {}

RelationPartition::RelationPartition(Relation* base, const Schema& atom_schema, Schema keys,
                                     std::string light_name)
    : base_(base),
      keys_(std::move(keys)),
      light_(atom_schema, std::move(light_name)),
      base_index_id_(base->EnsureIndexOnColumns(ProjectionPositions(atom_schema, keys_))),
      light_index_id_(light_.EnsureIndex(keys_)) {
  IVME_CHECK_MSG(atom_schema.ContainsAll(keys_),
                 "partition keys must be a subset of the relation schema");
  IVME_CHECK_MSG(atom_schema.size() == base->schema().size(),
                 "atom schema arity differs from the base relation in " << light_.name());
}

Tuple RelationPartition::KeyOf(const Tuple& tuple) const {
  return base_->index(base_index_id_).KeyOf(tuple);
}

size_t RelationPartition::BaseCountForKey(const Tuple& key) const {
  return base_->index(base_index_id_).CountForKey(key);
}

size_t RelationPartition::LightCountForKey(const Tuple& key) const {
  return light_.index(light_index_id_).CountForKey(key);
}

bool RelationPartition::KeyInLight(const Tuple& key) const {
  return light_.index(light_index_id_).ContainsKey(key);
}

void RelationPartition::StrictRepartition(size_t theta) {
  light_.Clear();
  const auto& base_index = base_->index(base_index_id_);
  for (const Relation::Entry* entry = base_->First(); entry != nullptr;
       entry = Relation::NextLive(entry)) {
    const Tuple key = base_index.KeyOf(entry->key);
    if (base_index.CountForKey(key) < theta) {
      light_.Apply(entry->key, Relation::EntryMult(entry));
    }
  }
}

}  // namespace ivme
