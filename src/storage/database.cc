#include "src/storage/database.h"

#include "src/common/check.h"

namespace ivme {

Relation* Database::AddRelation(const std::string& name, Schema schema) {
  IVME_CHECK_MSG(Find(name) == nullptr, "duplicate relation name " << name);
  relations_.push_back(std::make_unique<Relation>(std::move(schema), name));
  return relations_.back().get();
}

Relation* Database::Find(const std::string& name) const {
  for (const auto& rel : relations_) {
    if (rel->name() == name) return rel.get();
  }
  return nullptr;
}

size_t Database::TotalSize() const {
  size_t total = 0;
  for (const auto& rel : relations_) total += rel->size();
  return total;
}

}  // namespace ivme
