// Write-ahead log of the durable catalog. Each record carries one logical
// operation — a batch's consolidated net deltas (the NetDeltaConsolidator
// output, exactly what ApplyBatch re-applies on recovery), a bulk load, a
// DDL step (register/drop/reshard), or the preprocess marker — framed as
//
//   [u32 length][u32 crc32][u64 lsn][u8 type][payload...]
//                \________ length bytes, crc32 covers them ________/
//
// with a monotone LSN. Appends go through one writer per open catalog with
// an fsync policy (always / batch / off); readers validate every frame and
// stop at the first torn or corrupt record, reporting the byte offset of
// the last durable prefix so Open() can truncate the tail. Segment files
// are rotated by the checkpointer (DurableCatalog names them by start LSN);
// this layer only reads and appends single files.
#ifndef IVME_STORAGE_WAL_H_
#define IVME_STORAGE_WAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/fault_injector.h"
#include "src/common/status.h"

namespace ivme {

/// When appended WAL records reach stable storage.
enum class FsyncPolicy {
  kOff,     ///< never fsync; the OS flushes when it pleases
  kBatch,   ///< fsync every fsync_interval records and at checkpoints
  kAlways,  ///< fsync after every record (a record is durable when acked)
};

const char* FsyncPolicyName(FsyncPolicy policy);

/// Logical operation types carried by WAL records.
enum class WalRecordType : uint8_t {
  kBatch = 1,          ///< consolidated net deltas of one ApplyBatch/ApplyUpdate
  kLoad = 2,           ///< pre-preprocess bulk load of one relation
  kPreprocess = 3,     ///< the catalog went live
  kRegisterQuery = 4,  ///< query registration (name, text, engine options)
  kDropQuery = 5,      ///< query removal (name)
  kReshard = 6,        ///< shard-count change (new K)
  kDictionary = 7,     ///< string-dictionary delta (first id + strings)
};

/// One decoded WAL record.
struct WalRecord {
  uint64_t lsn = 0;
  WalRecordType type = WalRecordType::kBatch;
  std::string payload;
};

/// Append counters of one writer (folded into DurabilityStats).
struct WalWriterStats {
  uint64_t records_appended = 0;
  uint64_t bytes_appended = 0;
  uint64_t syncs = 0;
  uint64_t last_lsn = 0;  ///< highest LSN fully appended
};

/// Appends framed records to one segment file.
class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Opens `path` for appending (creating it when absent). `injector` may
  /// be null (no fault injection).
  Status Open(const std::string& path, FsyncPolicy policy, size_t fsync_interval,
              FaultInjector* injector);

  bool is_open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }

  /// Appends one record and applies the fsync policy. On an injected crash
  /// the writer is dead from that instant: the record may be fully written,
  /// partially written ("wal:append_torn"), or not written at all
  /// ("wal:before_append"), exactly like a real crash, and every later
  /// append fails. Returns the error (injected or real I/O) on failure.
  Status Append(const WalRecord& record);

  /// Forces an fsync now (checkpoint boundaries under kBatch).
  Status Sync();

  void Close();

  const WalWriterStats& stats() const { return stats_; }

 private:
  Status WriteAll(const char* data, size_t n);

  int fd_ = -1;
  std::string path_;
  FsyncPolicy policy_ = FsyncPolicy::kBatch;
  size_t fsync_interval_ = 64;
  size_t unsynced_records_ = 0;
  FaultInjector* injector_ = nullptr;
  WalWriterStats stats_;
};

/// Outcome of scanning one segment file.
struct WalScanResult {
  std::vector<WalRecord> records;  ///< every valid record, in file order
  uint64_t valid_bytes = 0;        ///< offset just past the last valid record
  bool torn = false;               ///< trailing bytes after valid_bytes were dropped
};

/// Reads every valid record of `path`, stopping at the first torn or
/// corrupt frame (length running past EOF, CRC mismatch, non-monotone LSN,
/// unknown type). A partially written tail is normal after a crash and is
/// reported via `torn`, not as an error; only an unreadable file errors.
Status ScanWalSegment(const std::string& path, WalScanResult* out);

/// Truncates `path` to `size` bytes — drops a torn tail found by the scan.
Status TruncateWalSegment(const std::string& path, uint64_t size);

/// Segment file name for the segment whose first record has `start_lsn`:
/// "wal-<start_lsn, zero-padded>.log" (lexicographic order = LSN order).
std::string WalSegmentFileName(uint64_t start_lsn);

/// Lists `dir`'s WAL segments as (start_lsn, filename), ascending by LSN.
Status ListWalSegments(const std::string& dir,
                       std::vector<std::pair<uint64_t, std::string>>* out);

}  // namespace ivme

#endif  // IVME_STORAGE_WAL_H_
