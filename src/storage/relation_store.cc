#include "src/storage/relation_store.h"

#include "src/common/check.h"
#include "src/common/counters.h"

namespace ivme {

namespace {

// Distinct-tuple support change of one write (same rule as
// core/delta.h SupportChange; duplicated to keep storage below core).
int Support(Mult before, Mult after) {
  if (before == 0 && after != 0) return 1;
  if (before != 0 && after == 0) return -1;
  return 0;
}

}  // namespace

RelationStore::RelationStore() : dictionary_(std::make_shared<StringDictionary>()) {}

void RelationStore::ShareDictionary(std::shared_ptr<StringDictionary> dict) {
  IVME_CHECK_MSG(dict != nullptr, "cannot share a null dictionary");
  IVME_CHECK_MSG(dictionary_ == dict || dictionary_->size() == 0,
                 "cannot replace a non-empty dictionary: interned ids would dangle");
  dictionary_ = std::move(dict);
}

RelationStore::Entry* RelationStore::FindEntry(const std::string& name) {
  for (auto& entry : entries_) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

const RelationStore::Entry* RelationStore::FindEntry(const std::string& name) const {
  for (const auto& entry : entries_) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

Relation* RelationStore::Attach(const std::string& name, size_t arity, Mutability mutability) {
  Entry* entry = FindEntry(name);
  if (entry == nullptr) {
    // Canonical column schema: variable id i is column i. Queries resolve
    // their own schemas to column positions when indexing.
    Schema columns;
    for (size_t i = 0; i < arity; ++i) columns.Append(static_cast<VarId>(i));
    entries_.push_back(
        Entry{name, 0, mutability, std::make_unique<Relation>(std::move(columns), name)});
    entry = &entries_.back();
  }
  IVME_CHECK_MSG(entry->relation->schema().size() == arity,
                 "relation " << name << " already exists with arity "
                             << entry->relation->schema().size() << ", requested " << arity);
  IVME_CHECK_MSG(entry->mutability == mutability,
                 "relation " << name << " already declared "
                             << MutabilityName(entry->mutability) << ", requested "
                             << MutabilityName(mutability));
  ++entry->refcount;
  return entry->relation.get();
}

void RelationStore::Release(const std::string& name) {
  Entry* entry = FindEntry(name);
  IVME_CHECK_MSG(entry != nullptr, "release of unknown relation " << name);
  IVME_CHECK_MSG(entry->refcount > 0, "release of unreferenced relation " << name);
  --entry->refcount;
}

Relation* RelationStore::Find(const std::string& name) const {
  const Entry* entry = FindEntry(name);
  return entry != nullptr ? entry->relation.get() : nullptr;
}

size_t RelationStore::RefCount(const std::string& name) const {
  const Entry* entry = FindEntry(name);
  return entry != nullptr ? entry->refcount : 0;
}

Mutability RelationStore::MutabilityOf(const std::string& name) const {
  const Entry* entry = FindEntry(name);
  return entry != nullptr ? entry->mutability : Mutability::kDynamic;
}

Relation::ApplyResult RelationStore::Apply(const std::string& name, const Tuple& tuple,
                                           Mult mult) {
  Relation* relation = Find(name);
  IVME_CHECK_MSG(relation != nullptr, "unknown relation " << name);
  ++LocalCounters().base_writes;
  return relation->Apply(tuple, mult);
}

void RelationStore::ApplyDelta(const std::string& name, const TupleMap<Mult>& delta,
                               DeltaResult* result) {
  Relation* relation = Find(name);
  IVME_CHECK_MSG(relation != nullptr, "unknown relation " << name);
  result->applied.clear();
  result->support.clear();
  result->net_support = 0;
  for (const auto* node = delta.First(); node != nullptr; node = node->next) {
    if (node->value == 0) continue;
    ++LocalCounters().base_writes;
    const auto res = relation->Apply(node->key, node->value);
    const int change = Support(res.before, res.after);
    result->applied.emplace_back(node->key, node->value);
    result->support.push_back(change);
    result->net_support += change;
  }
}

std::vector<std::pair<Tuple, Mult>> RelationStore::Dump(const std::string& name) const {
  const Relation* relation = Find(name);
  IVME_CHECK_MSG(relation != nullptr, "unknown relation " << name);
  std::vector<std::pair<Tuple, Mult>> out;
  out.reserve(relation->size());
  for (const Relation::Entry* e = relation->First(); e != nullptr;
       e = Relation::NextLive(e)) {
    out.emplace_back(e->key, Relation::EntryMult(e));
  }
  return out;
}

size_t RelationStore::TotalSize() const {
  size_t total = 0;
  for (const auto& entry : entries_) total += entry.relation->size();
  return total;
}

std::vector<std::string> RelationStore::RelationNames() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& entry : entries_) names.push_back(entry.name);
  return names;
}

void RelationStore::SetEpochContext(const EpochContext* ctx) {
  for (auto& entry : entries_) {
    // Static relations stay unversioned: plain-mode nodes are live at every
    // epoch, so constant contents answer any snapshot correctly without
    // version chains.
    if (entry.mutability == Mutability::kStatic) continue;
    entry.relation->SetEpochContext(ctx);
  }
}

}  // namespace ivme
