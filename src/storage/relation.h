// Relations with ℤ multiplicities plus secondary indexes, implementing the
// full computational model of Section 3:
//   on the primary dictionary —
//     (1) O(1) expected lookup/insert/delete, (2) constant-delay enumeration,
//     (3) O(1) |R|;
//   per index on a schema S ⊂ X —
//     (4) constant-delay enumeration of σ_{S=t}R, (5) O(1) t ∈ π_S R,
//     (6) O(1) |σ_{S=t}R|, (7) O(1) index entry insert/delete (via
//     back-pointers stored in the primary entries).
//
// VERSIONED MODE (SetEpochContext, see src/common/epoch.h and
// docs/ARCHITECTURE.md §9): the relation answers point-in-time reads —
// MultiplicityAt / FirstAt / NextAt / FirstForKeyAt — for any epoch that a
// reader holds pinned, while the single writer keeps mutating:
//   - erased entries, index links, and index buckets become epoch-stamped
//     zombies on the writer's RetireLog instead of being freed;
//   - each entry keeps a small chain of closed multiplicity versions
//     (MultVersion records), pushed on the first touch per epoch and pruned
//     against the set of pinned epochs, so a stalled reader bounds — not
//     grows — per-entry memory;
//   - reads at kLiveEpoch see exactly the current (working) state and are
//     writer-thread-only.
// Without a context everything behaves as before: immediate frees, no
// version records, no atomics beyond the (free on x86) relaxed accesses.
#ifndef IVME_STORAGE_RELATION_H_
#define IVME_STORAGE_RELATION_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "src/common/epoch.h"
#include "src/data/schema.h"
#include "src/data/tuple.h"
#include "src/storage/tuple_map.h"

namespace ivme {

/// A materialized relation (base relation or view) over a fixed schema.
class Relation {
 public:
  struct IndexLink;

  /// One closed multiplicity version: `value` was current during
  /// [from, <from of the next-newer record>).
  struct MultVersion {
    Epoch from = 0;
    Mult value = 0;
    std::atomic<MultVersion*> older{nullptr};
  };

  /// Payload of a primary dictionary entry: the multiplicity plus one index
  /// link (back-pointer) per registered index. In versioned mode `mult` is
  /// the working-epoch value, `last_touch` the epoch of the writer's most
  /// recent first-touch, and `history` the chain of closed versions
  /// (newest first). Readers resolve an epoch via Relation::EntryMultAt.
  struct EntryPayload {
    std::atomic<Mult> mult{0};
    std::vector<IndexLink*> links;
    std::atomic<Epoch> last_touch{0};
    std::atomic<MultVersion*> history{nullptr};
    /// Writer-only: a FlattenHistoryThunk is queued on the RetireLog and
    /// has not run yet. Keeps at most one flatten outstanding per entry, so
    /// long-lived serving relations converge back to single-version nodes
    /// once the pin floor catches up (ARCHITECTURE.md §11).
    bool flatten_queued = false;

    ~EntryPayload() {
      // Pruned records were unlinked into the RetireLog's limbo list and
      // are freed there; this chain holds only the still-linked ones.
      MultVersion* r = history.load(std::memory_order_relaxed);
      while (r != nullptr) {
        MultVersion* older = r->older.load(std::memory_order_relaxed);
        delete r;
        r = older;
      }
    }
  };

  using Entry = TupleMap<EntryPayload>::Node;

  /// Per-key index bucket: count and head of the doubly-linked entry list.
  /// `head` is atomic so readers can traverse while the writer prepends;
  /// `count` is writer-only bookkeeping (never read on the reader path).
  struct Bucket {
    std::atomic<IndexLink*> head{nullptr};
    size_t count = 0;
  };

  using BucketNode = TupleMap<Bucket>::Node;

  /// Doubly-linked list node connecting an index bucket to a primary entry.
  /// `next` is atomic (reader-traversed); `prev` is writer-only.
  struct IndexLink {
    Entry* entry = nullptr;
    IndexLink* prev = nullptr;
    std::atomic<IndexLink*> next{nullptr};
    BucketNode* bucket_node = nullptr;
  };

  /// Secondary index on a strict subset (or any subset) of the schema.
  ///
  /// An index is identified by the column positions it projects on, not by
  /// the variable names of those columns: a relation shared between several
  /// queries (RelationStore) is indexed by queries whose schemas use
  /// disjoint variable-id spaces, and two requests that project the same
  /// columns in the same order must share one physical index.
  class Index {
   public:
    Index(const Schema& relation_schema, Schema key_schema);
    explicit Index(std::vector<int> positions);

    Index(const Index&) = delete;
    Index& operator=(const Index&) = delete;
    ~Index();

    /// The column positions of the relation this index projects on.
    const std::vector<int>& positions() const { return positions_; }

    /// Projects a full relation tuple onto the index key schema.
    Tuple KeyOf(const Tuple& tuple) const { return ProjectTuple(tuple, positions_); }

    /// |σ_{S=key}R| in O(1). Writer-side.
    size_t CountForKey(const Tuple& key) const;

    /// key ∈ π_S R in O(1). Writer-side.
    bool ContainsKey(const Tuple& key) const { return buckets_.Find(key) != nullptr; }

    /// Number of distinct keys |π_S R| in O(1). Writer-side.
    size_t DistinctKeys() const { return buckets_.size(); }

    /// Head of the live entry list for `key` (nullptr if the key is
    /// absent); iterate with NextLink for constant-delay σ_{S=key}R
    /// enumeration. Writer-side (filters zombies).
    const IndexLink* FirstForKey(const Tuple& key) const {
      return FirstForKeyAt(key, kLiveEpoch);
    }

    /// Reader-side: the entry list for `key` as of `epoch`.
    const IndexLink* FirstForKeyAt(const Tuple& key, Epoch epoch) const {
      return FirstForKeyView(key, ReadView{epoch, ReadMode::kVersioned});
    }

    /// Successor of `link` among entries alive at `epoch`.
    static const IndexLink* NextLinkAt(const IndexLink* link, Epoch epoch) {
      return NextLinkView(link, ReadView{epoch, ReadMode::kVersioned});
    }

    /// Reader-side entry list under a resolved session view (fast lanes
    /// skip the per-link death check, see TupleMap::Visible).
    const IndexLink* FirstForKeyView(const Tuple& key, const ReadView& view) const;

    static const IndexLink* NextLinkView(const IndexLink* link, const ReadView& view);

    /// Writer-side successor (filters zombies).
    static const IndexLink* NextLink(const IndexLink* link) {
      return NextLinkAt(link, kLiveEpoch);
    }

    /// First live bucket in key-enumeration order.
    const BucketNode* FirstKey() const { return buckets_.First(); }

   private:
    friend class Relation;

    void SetEpochContext(const EpochContext* ctx) {
      ctx_ = ctx;
      buckets_.SetEpochContext(ctx);
    }

    /// Registers `entry` under its key; returns the link to store in the
    /// entry's payload. O(1) expected.
    IndexLink* Add(Entry* entry);

    /// Unregisters via the back-pointer. O(1). Versioned mode retires the
    /// link (and the bucket once empty) instead of freeing.
    void Remove(IndexLink* link);

    void ClearAll();

    static void UnlinkLinkThunk(void* owner, void* object);
    static void FreeLinkThunk(void* owner, void* object);

    std::vector<int> positions_;
    TupleMap<Bucket> buckets_;
    const EpochContext* ctx_ = nullptr;
  };

  explicit Relation(Schema schema, std::string name = "");

  Relation(const Relation&) = delete;
  Relation& operator=(const Relation&) = delete;

  const Schema& schema() const { return schema_; }
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Enters (ctx != nullptr) or leaves versioned mode, including all
  /// current and future indexes. Only valid while the relation holds no
  /// zombies: freshly built, or quiesced with the RetireLog drained.
  void SetEpochContext(const EpochContext* ctx);
  const EpochContext* epoch_context() const { return ctx_; }

  /// Number of distinct live tuples |R|, O(1).
  size_t size() const { return map_.size(); }

  /// Multiplicity of `tuple` (0 when absent), O(1) expected. Writer-side.
  Mult Multiplicity(const Tuple& tuple) const;

  /// Multiplicity of `tuple` as of `epoch`. Reader-side, safe concurrently
  /// with the writer while `epoch` is pinned.
  Mult MultiplicityAt(const Tuple& tuple, Epoch epoch) const;

  /// Resolves an entry's multiplicity as of `epoch` (kLiveEpoch = current).
  static Mult EntryMultAt(const Entry* entry, Epoch epoch);

  /// Current multiplicity of a live entry (writer-side fast path).
  static Mult EntryMult(const Entry* entry) {
    return entry->value.mult.load(std::memory_order_relaxed);
  }

  /// Session-view multiplicity. kDirect skips the seqlock entirely (plain
  /// load); kFastPin keeps the seqlock + history fallback — a concurrent
  /// writer's first touch at P+1 closes our value into the history chain,
  /// and the seqlock re-check diverts exactly those reads there.
  static Mult EntryMultView(const Entry* entry, const ReadView& view) {
    if (view.mode == ReadMode::kDirect) return EntryMult(entry);
    return EntryMultAt(entry, view.epoch);
  }

  /// Session-view lookup + multiplicity (0 when absent).
  Mult MultiplicityView(const Tuple& tuple, const ReadView& view) const {
    const Entry* entry = map_.FindView(tuple, view);
    return entry != nullptr ? EntryMultView(entry, view) : 0;
  }

  struct ApplyResult {
    Mult before = 0;
    Mult after = 0;
  };

  /// Adds `delta` to the multiplicity of `tuple`; erases the entry when the
  /// multiplicity reaches 0. All indexes are maintained. O(#indexes)
  /// expected.
  ApplyResult Apply(const Tuple& tuple, Mult delta);

  /// Removes every live tuple (indexes stay registered but become empty).
  void Clear();

  /// Creates (or finds) an index on `key_schema`, which is resolved against
  /// this relation's own schema. Only valid when the caller's variable ids
  /// live in the same space as schema() — true for views and privately
  /// owned relations, not for store-shared base relations (use
  /// EnsureIndexOnColumns there, resolving against the atom schema).
  int EnsureIndex(const Schema& key_schema);

  /// Creates (or finds) the index projecting the given column positions, in
  /// order; returns its id. Indexes are deduplicated by position list, so
  /// queries attached to a shared relation reuse each other's indexes.
  int EnsureIndexOnColumns(std::vector<int> positions);

  /// Id of the index on `key_schema` (resolved against schema()), or -1.
  int FindIndexId(const Schema& key_schema) const;

  /// Id of the index projecting exactly `positions`, or -1.
  int FindIndexIdOnColumns(const std::vector<int>& positions) const;

  const Index& index(int id) const { return *indexes_[static_cast<size_t>(id)]; }

  size_t num_indexes() const { return indexes_.size(); }

  /// First live entry in enumeration order; iterate with NextLive.
  /// Writer-side.
  const Entry* First() const { return map_.First(); }

  /// Writer-side successor (filters zombies).
  static const Entry* NextLive(const Entry* entry) {
    return TupleMap<EntryPayload>::NextLive(entry);
  }

  /// Reader-side enumeration as of `epoch`.
  const Entry* FirstAt(Epoch epoch) const { return map_.FirstAt(epoch); }
  static const Entry* NextAt(const Entry* entry, Epoch epoch) {
    return TupleMap<EntryPayload>::NextAt(entry, epoch);
  }

  /// Reader-side enumeration under a resolved session view.
  const Entry* FirstView(const ReadView& view) const { return map_.FirstView(view); }
  static const Entry* NextView(const Entry* entry, const ReadView& view) {
    return TupleMap<EntryPayload>::NextView(entry, view);
  }

  /// Live entry lookup (nullptr when absent). Writer-side.
  const Entry* Find(const Tuple& tuple) const { return map_.Find(tuple); }

  /// Reader-side lookup as of `epoch`.
  const Entry* FindAt(const Tuple& tuple, Epoch epoch) const {
    return map_.FindAt(tuple, epoch);
  }

  /// Reader-side lookup under a resolved session view.
  const Entry* FindView(const Tuple& tuple, const ReadView& view) const {
    return map_.FindView(tuple, view);
  }

  /// Total MultVersion records linked on live entries (tests/introspection;
  /// writer-side). Flattening drives this back to 0 once no pin needs any
  /// closed version.
  size_t DebugVersionRecords() const;

 private:
  /// Sets a live entry's multiplicity at the working epoch, maintaining
  /// the version chain (first touch per epoch closes the previous version)
  /// and pruning records no pinned epoch needs.
  void StoreMult(Entry* entry, Mult after, bool inserted);

  /// Unlinks every history record no keep-epoch needs, given that the
  /// newest closed record's window ends at `upper` (the entry's last_touch:
  /// the current mult covers [last_touch, ∞) for readers at or above it).
  /// Unlinked records go to limbo stamped with the current working epoch.
  void PruneHistory(EntryPayload* payload, Epoch upper);

  static void FreeMultVersionThunk(void* owner, void* object);

  /// RetireLog phase-1 thunk queued by StoreMult's first-touch: re-prunes
  /// the entry's history once the pin floor has passed the touch epoch, so
  /// chains shed records as soon as no pin needs them (instead of waiting
  /// for the next write to the same entry).
  static void FlattenHistoryThunk(void* owner, void* object);
  static void NoopThunk(void* owner, void* object);

  Schema schema_;
  std::string name_;
  TupleMap<EntryPayload> map_;
  std::vector<std::unique_ptr<Index>> indexes_;
  const EpochContext* ctx_ = nullptr;
};

}  // namespace ivme

#endif  // IVME_STORAGE_RELATION_H_
