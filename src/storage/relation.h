// Relations with ℤ multiplicities plus secondary indexes, implementing the
// full computational model of Section 3:
//   on the primary dictionary —
//     (1) O(1) expected lookup/insert/delete, (2) constant-delay enumeration,
//     (3) O(1) |R|;
//   per index on a schema S ⊂ X —
//     (4) constant-delay enumeration of σ_{S=t}R, (5) O(1) t ∈ π_S R,
//     (6) O(1) |σ_{S=t}R|, (7) O(1) index entry insert/delete (via
//     back-pointers stored in the primary entries).
#ifndef IVME_STORAGE_RELATION_H_
#define IVME_STORAGE_RELATION_H_

#include <memory>
#include <string>
#include <vector>

#include "src/data/schema.h"
#include "src/data/tuple.h"
#include "src/storage/tuple_map.h"

namespace ivme {

/// A materialized relation (base relation or view) over a fixed schema.
class Relation {
 public:
  struct IndexLink;

  /// Payload of a primary dictionary entry: the multiplicity plus one index
  /// link (back-pointer) per registered index.
  struct EntryPayload {
    Mult mult = 0;
    std::vector<IndexLink*> links;
  };

  using Entry = TupleMap<EntryPayload>::Node;

  /// Per-key index bucket: count and head of the doubly-linked entry list.
  struct Bucket {
    IndexLink* head = nullptr;
    size_t count = 0;
  };

  using BucketNode = TupleMap<Bucket>::Node;

  /// Doubly-linked list node connecting an index bucket to a primary entry.
  struct IndexLink {
    Entry* entry = nullptr;
    IndexLink* prev = nullptr;
    IndexLink* next = nullptr;
    BucketNode* bucket_node = nullptr;
  };

  /// Secondary index on a strict subset (or any subset) of the schema.
  ///
  /// An index is identified by the column positions it projects on, not by
  /// the variable names of those columns: a relation shared between several
  /// queries (RelationStore) is indexed by queries whose schemas use
  /// disjoint variable-id spaces, and two requests that project the same
  /// columns in the same order must share one physical index.
  class Index {
   public:
    Index(const Schema& relation_schema, Schema key_schema);
    explicit Index(std::vector<int> positions);

    Index(const Index&) = delete;
    Index& operator=(const Index&) = delete;
    ~Index();

    /// The column positions of the relation this index projects on.
    const std::vector<int>& positions() const { return positions_; }

    /// Projects a full relation tuple onto the index key schema.
    Tuple KeyOf(const Tuple& tuple) const { return ProjectTuple(tuple, positions_); }

    /// |σ_{S=key}R| in O(1).
    size_t CountForKey(const Tuple& key) const;

    /// key ∈ π_S R in O(1).
    bool ContainsKey(const Tuple& key) const { return buckets_.Find(key) != nullptr; }

    /// Number of distinct keys |π_S R| in O(1).
    size_t DistinctKeys() const { return buckets_.size(); }

    /// Head of the entry list for `key` (nullptr if the key is absent);
    /// iterate with link->next for constant-delay σ_{S=key}R enumeration.
    const IndexLink* FirstForKey(const Tuple& key) const;

    /// First bucket in key-enumeration order; iterate with node->next.
    const BucketNode* FirstKey() const { return buckets_.First(); }

   private:
    friend class Relation;

    /// Registers `entry` under its key; returns the link to store in the
    /// entry's payload. O(1) expected.
    IndexLink* Add(Entry* entry);

    /// Unregisters via the back-pointer. O(1).
    void Remove(IndexLink* link);

    void ClearAll();

    std::vector<int> positions_;
    TupleMap<Bucket> buckets_;
  };

  explicit Relation(Schema schema, std::string name = "");

  Relation(const Relation&) = delete;
  Relation& operator=(const Relation&) = delete;

  const Schema& schema() const { return schema_; }
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Number of distinct tuples |R|, O(1).
  size_t size() const { return map_.size(); }

  /// Multiplicity of `tuple` (0 when absent), O(1) expected.
  Mult Multiplicity(const Tuple& tuple) const;

  struct ApplyResult {
    Mult before = 0;
    Mult after = 0;
  };

  /// Adds `delta` to the multiplicity of `tuple`; erases the entry when the
  /// multiplicity reaches 0. All indexes are maintained. O(#indexes)
  /// expected.
  ApplyResult Apply(const Tuple& tuple, Mult delta);

  /// Removes every tuple (indexes stay registered but become empty).
  void Clear();

  /// Creates (or finds) an index on `key_schema`, which is resolved against
  /// this relation's own schema. Only valid when the caller's variable ids
  /// live in the same space as schema() — true for views and privately
  /// owned relations, not for store-shared base relations (use
  /// EnsureIndexOnColumns there, resolving against the atom schema).
  int EnsureIndex(const Schema& key_schema);

  /// Creates (or finds) the index projecting the given column positions, in
  /// order; returns its id. Indexes are deduplicated by position list, so
  /// queries attached to a shared relation reuse each other's indexes.
  int EnsureIndexOnColumns(std::vector<int> positions);

  /// Id of the index on `key_schema` (resolved against schema()), or -1.
  int FindIndexId(const Schema& key_schema) const;

  /// Id of the index projecting exactly `positions`, or -1.
  int FindIndexIdOnColumns(const std::vector<int>& positions) const;

  const Index& index(int id) const { return *indexes_[static_cast<size_t>(id)]; }

  size_t num_indexes() const { return indexes_.size(); }

  /// First entry in enumeration order; iterate with entry->next.
  const Entry* First() const { return map_.First(); }

  /// Entry lookup (nullptr when absent).
  const Entry* Find(const Tuple& tuple) const { return map_.Find(tuple); }

 private:
  Schema schema_;
  std::string name_;
  TupleMap<EntryPayload> map_;
  std::vector<std::unique_ptr<Index>> indexes_;
};

}  // namespace ivme

#endif  // IVME_STORAGE_RELATION_H_
