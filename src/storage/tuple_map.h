// Chained hash map from Tuple keys to arbitrary payloads with
//  (1) O(1) expected lookup / insert / delete,
//  (2) constant-delay enumeration of entries via an intrusive doubly-linked
//      list, and
//  (3) O(1) size reporting,
// i.e., operations (1)-(3) of the computational model in Section 3 of the
// paper. Chaining (rather than open addressing) keeps node addresses stable,
// which the secondary-index structures rely on for their back-pointers.
//
// Nodes come out of a per-map pool: chunked slabs plus a free list, so
// insert/erase churn on the update hot path costs a pointer pop/push instead
// of a malloc/free per entry. Slabs are only returned to the OS when the map
// itself is destroyed; node addresses stay stable for the node's lifetime.
#ifndef IVME_STORAGE_TUPLE_MAP_H_
#define IVME_STORAGE_TUPLE_MAP_H_

#include <cstddef>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/data/tuple.h"

namespace ivme {

template <typename T>
class TupleMap {
 public:
  struct Node {
    Tuple key;
    T value{};
    uint64_t hash = 0;
    Node* chain = nullptr;  // next node in the same hash bucket
    Node* prev = nullptr;   // intrusive enumeration list
    Node* next = nullptr;
  };

  TupleMap() : buckets_(kInitialBuckets, nullptr) {}

  TupleMap(const TupleMap&) = delete;
  TupleMap& operator=(const TupleMap&) = delete;

  ~TupleMap() {
    for (Node* n = head_; n != nullptr;) {
      Node* next = n->next;
      n->~Node();
      n = next;
    }
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// First node in enumeration order (insertion order), or nullptr.
  Node* First() const { return head_; }

  /// O(1) expected lookup; nullptr when absent. Reuses the key's cached
  /// hash when it is already known.
  Node* Find(const Tuple& key) const {
    const uint64_t h = key.Hash();
    for (Node* n = buckets_[IndexFor(h)]; n != nullptr; n = n->chain) {
      if (n->hash == h && n->key == key) return n;
    }
    return nullptr;
  }

  /// Finds or default-constructs the entry for `key`. Returns the node and
  /// whether it was newly inserted.
  std::pair<Node*, bool> Emplace(const Tuple& key) {
    const uint64_t h = key.Hash();
    const size_t b = IndexFor(h);
    for (Node* n = buckets_[b]; n != nullptr; n = n->chain) {
      if (n->hash == h && n->key == key) return {n, false};
    }
    if (size_ + 1 > buckets_.size() * 3 / 4) {
      Grow();
    }
    Node* n = AllocNode();
    n->key = key;
    n->hash = h;
    const size_t b2 = IndexFor(h);
    n->chain = buckets_[b2];
    buckets_[b2] = n;
    LinkBack(n);
    ++size_;
    return {n, true};
  }

  /// Unlinks and frees a node previously returned by Find/Emplace. O(1)
  /// expected (walks only the node's hash chain).
  void Erase(Node* node) {
    const size_t b = IndexFor(node->hash);
    Node** slot = &buckets_[b];
    while (*slot != node) {
      IVME_CHECK_MSG(*slot != nullptr, "node not present in its hash chain");
      slot = &(*slot)->chain;
    }
    *slot = node->chain;
    Unlink(node);
    --size_;
    FreeNode(node);
  }

  /// Removes all entries. Node storage is recycled, not released.
  void Clear() {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next;
      FreeNode(n);
      n = next;
    }
    head_ = tail_ = nullptr;
    size_ = 0;
    buckets_.assign(kInitialBuckets, nullptr);
  }

 private:
  static constexpr size_t kInitialBuckets = 16;  // power of two
  static constexpr size_t kFirstSlabNodes = 16;

  /// Raw storage for one Node; doubles as a free-list link while vacant.
  union Slot {
    Slot* next_free;
    alignas(Node) unsigned char storage[sizeof(Node)];
  };

  Node* AllocNode() {
    Slot* slot = free_head_;
    if (slot != nullptr) {
      free_head_ = slot->next_free;
    } else {
      if (slab_used_ == slab_cap_) {
        // Geometric slab growth keeps pool overhead amortized O(1)/node.
        // Default-init (not make_unique) so the slab is not zeroed up front.
        slab_cap_ = slabs_.empty() ? kFirstSlabNodes : slab_cap_ * 2;
        slabs_.emplace_back(new Slot[slab_cap_]);
        slab_used_ = 0;
      }
      slot = &slabs_.back()[slab_used_++];
    }
    return new (slot->storage) Node();
  }

  void FreeNode(Node* node) {
    node->~Node();
    Slot* slot = reinterpret_cast<Slot*>(node);
    slot->next_free = free_head_;
    free_head_ = slot;
  }

  size_t IndexFor(uint64_t hash) const { return hash & (buckets_.size() - 1); }

  void LinkBack(Node* n) {
    n->prev = tail_;
    n->next = nullptr;
    if (tail_ != nullptr) {
      tail_->next = n;
    } else {
      head_ = n;
    }
    tail_ = n;
  }

  void Unlink(Node* n) {
    if (n->prev != nullptr) {
      n->prev->next = n->next;
    } else {
      head_ = n->next;
    }
    if (n->next != nullptr) {
      n->next->prev = n->prev;
    } else {
      tail_ = n->prev;
    }
  }

  void Grow() {
    std::vector<Node*> old = std::move(buckets_);
    buckets_.assign(old.size() * 2, nullptr);
    for (Node* n = head_; n != nullptr; n = n->next) {
      const size_t b = IndexFor(n->hash);
      n->chain = buckets_[b];
      buckets_[b] = n;
    }
  }

  std::vector<Node*> buckets_;
  size_t size_ = 0;
  Node* head_ = nullptr;
  Node* tail_ = nullptr;

  std::vector<std::unique_ptr<Slot[]>> slabs_;
  size_t slab_cap_ = 0;   // nodes in the newest slab
  size_t slab_used_ = 0;  // nodes handed out from the newest slab
  Slot* free_head_ = nullptr;
};

}  // namespace ivme

#endif  // IVME_STORAGE_TUPLE_MAP_H_
