// Chained hash map from Tuple keys to arbitrary payloads with
//  (1) O(1) expected lookup / insert / delete,
//  (2) constant-delay enumeration of entries via an intrusive doubly-linked
//      list, and
//  (3) O(1) size reporting,
// i.e., operations (1)-(3) of the computational model in Section 3 of the
// paper. Chaining (rather than open addressing) keeps node addresses stable,
// which the secondary-index structures rely on for their back-pointers.
//
// Nodes come out of a per-map pool: chunked slabs plus a free list, so
// insert/erase churn on the update hot path costs a pointer pop/push instead
// of a malloc/free per entry. Slabs are only returned to the OS when the map
// itself is destroyed; node addresses stay stable for the node's lifetime.
//
// Growth is DEAMORTIZED: instead of a stop-the-world rehash (an O(size)
// latency spike on whichever insert crosses the load factor — views reach
// O(N^{1+(w−1)ε}) entries, so a single rehash can dwarf every other
// per-update cost), the table keeps the old bucket array alongside the new
// one and every subsequent insert/erase migrates a constant number of old
// buckets. Lookups probe the new table first, then the shrinking old one.
// The migration always finishes long before the next growth trigger
// (doubling capacity at load factor 3/4 leaves ≥ old_capacity/2 inserts of
// headroom while migration needs old_capacity/kMigrateChunk of them), so at
// most two tables ever exist. The residual per-growth spike is the bucket
// array allocation itself — O(capacity) pointer zeroing, a small constant
// per entry — not the O(size) node relink.
#ifndef IVME_STORAGE_TUPLE_MAP_H_
#define IVME_STORAGE_TUPLE_MAP_H_

#include <cstddef>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/data/tuple.h"

namespace ivme {

template <typename T>
class TupleMap {
 public:
  struct Node {
    Tuple key;
    T value{};
    uint64_t hash = 0;
    Node* chain = nullptr;  // next node in the same hash bucket
    Node* prev = nullptr;   // intrusive enumeration list
    Node* next = nullptr;
  };

  TupleMap() : buckets_(kInitialBuckets, nullptr) {}

  TupleMap(const TupleMap&) = delete;
  TupleMap& operator=(const TupleMap&) = delete;

  ~TupleMap() {
    for (Node* n = head_; n != nullptr;) {
      Node* next = n->next;
      n->~Node();
      n = next;
    }
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// First node in enumeration order (insertion order), or nullptr.
  Node* First() const { return head_; }

  /// O(1) expected lookup; nullptr when absent. Reuses the key's cached
  /// hash when it is already known. During an in-flight growth the
  /// not-yet-migrated part of the old table is probed as well.
  Node* Find(const Tuple& key) const {
    const uint64_t h = key.Hash();
    for (Node* n = buckets_[IndexFor(h)]; n != nullptr; n = n->chain) {
      if (n->hash == h && n->key == key) return n;
    }
    if (!old_buckets_.empty()) {
      for (Node* n = old_buckets_[h & (old_buckets_.size() - 1)]; n != nullptr;
           n = n->chain) {
        if (n->hash == h && n->key == key) return n;
      }
    }
    return nullptr;
  }

  /// Finds or default-constructs the entry for `key`. Returns the node and
  /// whether it was newly inserted. New entries always land in the newest
  /// bucket array; each insert also migrates a constant number of old
  /// buckets, so growth never causes an O(size) rehash on one insert.
  std::pair<Node*, bool> Emplace(const Tuple& key) {
    const uint64_t h = key.Hash();
    for (Node* n = buckets_[IndexFor(h)]; n != nullptr; n = n->chain) {
      if (n->hash == h && n->key == key) {
        // Hits advance the migration too: a multiplicity-bump-heavy phase
        // (mostly re-touching existing keys) must still drain the old
        // array instead of paying the two-table probe indefinitely.
        if (!old_buckets_.empty()) MigrateStep();
        return {n, false};
      }
    }
    if (!old_buckets_.empty()) {
      for (Node* n = old_buckets_[h & (old_buckets_.size() - 1)]; n != nullptr;
           n = n->chain) {
        if (n->hash == h && n->key == key) {
          MigrateStep();
          return {n, false};
        }
      }
      MigrateStep();
    } else if (size_ + 1 > buckets_.size() * 3 / 4) {
      BeginGrow();
      MigrateStep();
    }
    Node* n = AllocNode();
    n->key = key;
    n->hash = h;
    const size_t b2 = IndexFor(h);
    n->chain = buckets_[b2];
    buckets_[b2] = n;
    LinkBack(n);
    ++size_;
    return {n, true};
  }

  /// Unlinks and frees a node previously returned by Find/Emplace. O(1)
  /// expected (walks the node's hash chain in whichever table holds it).
  void Erase(Node* node) {
    Node** slot = &buckets_[IndexFor(node->hash)];
    while (*slot != node && *slot != nullptr) {
      slot = &(*slot)->chain;
    }
    if (*slot != node) {
      // Not yet migrated: the node still chains in the old table.
      IVME_CHECK_MSG(!old_buckets_.empty(), "node not present in its hash chain");
      slot = &old_buckets_[node->hash & (old_buckets_.size() - 1)];
      while (*slot != node) {
        IVME_CHECK_MSG(*slot != nullptr, "node not present in its hash chain");
        slot = &(*slot)->chain;
      }
    }
    *slot = node->chain;
    Unlink(node);
    --size_;
    FreeNode(node);
    if (!old_buckets_.empty()) MigrateStep();
  }

  /// Removes all entries. Node storage is recycled, not released.
  void Clear() {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next;
      FreeNode(n);
      n = next;
    }
    head_ = tail_ = nullptr;
    size_ = 0;
    buckets_.assign(kInitialBuckets, nullptr);
    old_buckets_.clear();
    old_buckets_.shrink_to_fit();
    migrate_pos_ = 0;
  }

  /// True while a growth migration is in flight (tests/introspection).
  bool rehash_in_progress() const { return !old_buckets_.empty(); }

 private:
  static constexpr size_t kInitialBuckets = 16;  // power of two
  static constexpr size_t kFirstSlabNodes = 16;

  /// Raw storage for one Node; doubles as a free-list link while vacant.
  union Slot {
    Slot* next_free;
    alignas(Node) unsigned char storage[sizeof(Node)];
  };

  Node* AllocNode() {
    Slot* slot = free_head_;
    if (slot != nullptr) {
      free_head_ = slot->next_free;
    } else {
      if (slab_used_ == slab_cap_) {
        // Geometric slab growth keeps pool overhead amortized O(1)/node.
        // Default-init (not make_unique) so the slab is not zeroed up front.
        slab_cap_ = slabs_.empty() ? kFirstSlabNodes : slab_cap_ * 2;
        slabs_.emplace_back(new Slot[slab_cap_]);
        slab_used_ = 0;
      }
      slot = &slabs_.back()[slab_used_++];
    }
    return new (slot->storage) Node();
  }

  void FreeNode(Node* node) {
    node->~Node();
    Slot* slot = reinterpret_cast<Slot*>(node);
    slot->next_free = free_head_;
    free_head_ = slot;
  }

  size_t IndexFor(uint64_t hash) const { return hash & (buckets_.size() - 1); }

  void LinkBack(Node* n) {
    n->prev = tail_;
    n->next = nullptr;
    if (tail_ != nullptr) {
      tail_->next = n;
    } else {
      head_ = n;
    }
    tail_ = n;
  }

  void Unlink(Node* n) {
    if (n->prev != nullptr) {
      n->prev->next = n->next;
    } else {
      head_ = n->next;
    }
    if (n->next != nullptr) {
      n->next->prev = n->prev;
    } else {
      tail_ = n->prev;
    }
  }

  /// Buckets migrated per insert/erase while a growth is in flight. The
  /// load-factor headroom after a doubling (≥ capacity/2 inserts before the
  /// next trigger) divided by capacity/kMigrateChunk migration steps leaves
  /// a 2× safety margin, so at most two bucket arrays ever coexist (the
  /// IVME_CHECK in BeginGrow enforces it).
  static constexpr size_t kMigrateChunk = 4;

  /// Retires the current bucket array and installs one twice its size. The
  /// nodes stay chained in the old array until MigrateStep moves them —
  /// this call is O(new capacity) for the pointer-array allocation only,
  /// never O(size) node relinking.
  void BeginGrow() {
    IVME_CHECK_MSG(old_buckets_.empty(), "growth triggered before migration finished");
    old_buckets_ = std::move(buckets_);
    buckets_.assign(old_buckets_.size() * 2, nullptr);
    migrate_pos_ = 0;
  }

  /// Moves up to kMigrateChunk old buckets' chains into the new array;
  /// releases the old array when the last bucket is drained.
  void MigrateStep() {
    size_t moved = 0;
    while (moved < kMigrateChunk && migrate_pos_ < old_buckets_.size()) {
      Node* n = old_buckets_[migrate_pos_];
      old_buckets_[migrate_pos_] = nullptr;
      while (n != nullptr) {
        Node* next = n->chain;
        const size_t b = IndexFor(n->hash);
        n->chain = buckets_[b];
        buckets_[b] = n;
        n = next;
      }
      ++migrate_pos_;
      ++moved;
    }
    if (migrate_pos_ >= old_buckets_.size()) {
      old_buckets_.clear();
      old_buckets_.shrink_to_fit();
      migrate_pos_ = 0;
    }
  }

  std::vector<Node*> buckets_;
  std::vector<Node*> old_buckets_;  ///< retired array, drains via MigrateStep
  size_t migrate_pos_ = 0;          ///< first not-yet-migrated old bucket
  size_t size_ = 0;
  Node* head_ = nullptr;
  Node* tail_ = nullptr;

  std::vector<std::unique_ptr<Slot[]>> slabs_;
  size_t slab_cap_ = 0;   // nodes in the newest slab
  size_t slab_used_ = 0;  // nodes handed out from the newest slab
  Slot* free_head_ = nullptr;
};

}  // namespace ivme

#endif  // IVME_STORAGE_TUPLE_MAP_H_
