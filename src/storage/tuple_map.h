// Hash map from Tuple keys to arbitrary payloads with
//  (1) O(1) expected lookup / insert / delete,
//  (2) constant-delay enumeration of entries via an intrusive doubly-linked
//      list, and
//  (3) O(1) size reporting,
// i.e., operations (1)-(3) of the computational model in Section 3 of the
// paper.
//
// Nodes come out of a per-map pool: chunked slabs plus a free list, so
// insert/erase churn on the update hot path costs a pointer pop/push instead
// of a malloc/free per entry. Slabs are only returned to the OS when the map
// itself is destroyed; node addresses stay stable for the node's lifetime.
//
// The table is OPEN-ADDRESSING (linear probing over Node* slots) rather
// than chained. This is what makes single-writer / multi-reader operation
// possible: a probe sequence only ever reads per-slot atomic pointers that
// the writer publishes with release stores — there are no per-node chain
// links to splice, so a concurrent reader can never be detached from a
// chain mid-walk. Slot states: nullptr = never used (probe stops),
// kTombstone = erased (probe continues), else a node. Tombstones are only
// recycled by the writer (which re-checks under no concurrency constraints)
// and never revert to nullptr except via a table rebuild.
//
// Growth is DEAMORTIZED: instead of a stop-the-world rehash (an O(size)
// latency spike on whichever insert crosses the load factor — views reach
// O(N^{1+(w−1)ε}) entries, so a single rehash can dwarf every other
// per-update cost), the map keeps the old slot array alongside the new one
// and every subsequent mutation migrates a constant number of old slots.
// Lookups probe the new table first, then the shrinking old one. Migration
// copies node POINTERS into the new table and leaves the old slot intact
// (a reader that probes new-then-old must find the node in at least one of
// them at every interleaving); the old array is retired wholesale when
// drained. The migration always finishes long before the next growth
// trigger (see kMigrateChunk), so at most two tables ever coexist. The
// residual per-growth spike is the slot-array allocation itself —
// O(capacity) pointer zeroing — never an O(size) node relink.
//
// VERSIONED MODE (SetEpochContext): nodes carry birth/death epochs.
// Erase() then only marks the node dead at the working epoch and pushes it
// onto the domain's RetireLog; the node stays in the table and the
// enumeration list (a "zombie") until phase 1 of reclamation proves no
// reader pins an epoch that can see it. Readers use FindAt/FirstAt/NextAt
// with their pinned epoch; writers use Find/First-with-NextLive, which
// filter zombies via the kLiveEpoch sentinel. Without a context the map
// behaves exactly as before (immediate free on erase).
//
// Thread-safety contract: one writer thread (mutations + reclamation),
// any number of reader threads restricted to the *At APIs and node
// key/value reads, valid only between RetireLog reclaim points covering
// their pinned epoch.
#ifndef IVME_STORAGE_TUPLE_MAP_H_
#define IVME_STORAGE_TUPLE_MAP_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/common/epoch.h"
#include "src/data/tuple.h"

namespace ivme {

template <typename T>
class TupleMap {
 public:
  struct Node {
    Tuple key;
    T value{};
    uint64_t hash = 0;
    /// Intrusive enumeration list (insertion order). `next` is atomic so
    /// readers can walk the list while the writer appends; `prev` is
    /// writer-only.
    std::atomic<Node*> next{nullptr};
    Node* prev = nullptr;
    /// Versioned mode only: the node exists at epoch e iff
    /// birth ≤ e < death. `birth` is frozen before the node is published;
    /// `death` flips exactly once, from kLiveEpoch to the working epoch.
    Epoch birth = 0;
    std::atomic<Epoch> death{kLiveEpoch};
  };

  TupleMap() : table_(NewTable(kInitialSlots)) {}

  TupleMap(const TupleMap&) = delete;
  TupleMap& operator=(const TupleMap&) = delete;

  ~TupleMap() {
    // Zombies still on a RetireLog must have been drained (or the log
    // dropped) by the owner before the map dies; the list walk below
    // destroys every node including zombies.
    for (Node* n = head_.load(std::memory_order_relaxed); n != nullptr;) {
      Node* next = n->next.load(std::memory_order_relaxed);
      n->~Node();
      n = next;
    }
    delete table_.load(std::memory_order_relaxed);
    delete old_table_.load(std::memory_order_relaxed);
  }

  /// Versioned mode switch. Must be set before the first insert and never
  /// changed afterwards (nodes allocated in one mode must die in it).
  void SetEpochContext(const EpochContext* ctx) { ctx_ = ctx; }
  const EpochContext* epoch_context() const { return ctx_; }

  /// Live entries (excludes zombies), O(1).
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// Zombies awaiting reclamation (tests/introspection).
  size_t zombie_count() const { return zombies_; }

  static bool LiveAt(const Node* n, Epoch epoch) {
    const Epoch death = n->death.load(std::memory_order_acquire);
    if (epoch == kLiveEpoch) return death == kLiveEpoch;
    return n->birth <= epoch && epoch < death;
  }

  /// Per-session visibility filter (see ReadMode). kDirect skips every
  /// check; kFastPin keeps only the plain birth compare — sound because a
  /// fast-pin session is pinned at the quiescent published epoch, where no
  /// zombie or version chain exists at or below the pin, and any node a
  /// concurrent writer creates has birth > pin; kVersioned is the full
  /// [birth, death) window check.
  static bool Visible(const Node* n, const ReadView& view) {
    switch (view.mode) {
      case ReadMode::kDirect:
        return true;
      case ReadMode::kFastPin:
        return n->birth <= view.epoch;
      case ReadMode::kVersioned:
        return LiveAt(n, view.epoch);
    }
    return false;  // unreachable
  }

  /// First live node in enumeration order (insertion order), or nullptr.
  /// Writer-side view: skips zombies.
  Node* First() const { return FirstAt(kLiveEpoch); }

  /// Writer-side successor: skips zombies.
  static Node* NextLive(const Node* n) { return NextAt(n, kLiveEpoch); }

  /// Reader-side enumeration as of `epoch` (kLiveEpoch = current state).
  Node* FirstAt(Epoch epoch) const {
    return FirstView(ReadView{epoch, ReadMode::kVersioned});
  }

  static Node* NextAt(const Node* node, Epoch epoch) {
    return NextView(node, ReadView{epoch, ReadMode::kVersioned});
  }

  /// Reader-side enumeration under a resolved session view.
  Node* FirstView(const ReadView& view) const {
    Node* n = head_.load(std::memory_order_acquire);
    while (n != nullptr && !Visible(n, view)) {
      n = n->next.load(std::memory_order_acquire);
    }
    return n;
  }

  static Node* NextView(const Node* node, const ReadView& view) {
    Node* n = node->next.load(std::memory_order_acquire);
    while (n != nullptr && !Visible(n, view)) {
      n = n->next.load(std::memory_order_acquire);
    }
    return n;
  }

  /// O(1) expected lookup of the live entry; nullptr when absent.
  /// Writer-side (filters zombies).
  Node* Find(const Tuple& key) const { return FindAt(key, kLiveEpoch); }

  /// Reader-side lookup as of `epoch`. Safe concurrently with the writer.
  Node* FindAt(const Tuple& key, Epoch epoch) const {
    return FindView(key, ReadView{epoch, ReadMode::kVersioned});
  }

  /// Reader-side lookup under a resolved session view.
  Node* FindView(const Tuple& key, const ReadView& view) const {
    const uint64_t h = key.Hash();
    // Snapshot BOTH table pointers before probing, table_ first: if a node
    // migrates into the new table after our new-table probe misses it, the
    // old snapshot still holds it (old slots are never cleared); and
    // acquiring table_ before old_table_ means a post-growth table_ comes
    // with its old_table_ visible. A stale snapshot stays both safe (freed
    // only after a grace period covering our pin) and complete for our
    // epoch (migration copies pointers, nodes never leave a table).
    const Table* t = table_.load(std::memory_order_acquire);
    const Table* old = old_table_.load(std::memory_order_acquire);
    if (Node* n = Probe(t, h, key, view)) return n;
    if (old != nullptr && old != t) {
      if (Node* n = Probe(old, h, key, view)) return n;
    }
    return nullptr;
  }

  /// Finds or default-constructs the live entry for `key`. Returns the node
  /// and whether it was newly inserted. Writer-only. New entries always
  /// land in the newest slot array; each insert also migrates a constant
  /// number of old slots, so growth never causes an O(size) rehash on one
  /// insert. In versioned mode a re-inserted key gets a FRESH node even if
  /// a zombie with the same key is still visible to pinned readers — the
  /// two are disambiguated by their disjoint [birth, death) windows.
  std::pair<Node*, bool> Emplace(const Tuple& key) {
    const uint64_t h = key.Hash();
    const ReadView live{kLiveEpoch, ReadMode::kVersioned};
    Table* t = table_.load(std::memory_order_relaxed);
    Table* old = old_table_.load(std::memory_order_relaxed);
    if (Node* n = Probe(t, h, key, live)) {
      // Hits advance the migration too: a multiplicity-bump-heavy phase
      // (mostly re-touching existing keys) must still drain the old array
      // instead of paying the two-table probe indefinitely.
      if (old != nullptr) MigrateStep();
      return {n, false};
    }
    if (old != nullptr) {
      if (Node* n = Probe(old, h, key, live)) {
        MigrateStep();
        return {n, false};
      }
      MigrateStep();
      t = table_.load(std::memory_order_relaxed);  // MigrateStep may finish
    } else if ((t->used + 1) * 4 > t->capacity * 3) {
      BeginGrow();
      MigrateStep();
      t = table_.load(std::memory_order_relaxed);
    }
    Node* n = AllocNode();
    n->key = key;
    n->hash = h;
    n->birth = ctx_ != nullptr ? ctx_->working() : 0;
    InsertIntoTable(t, n);
    LinkBack(n);
    ++size_;
    return {n, true};
  }

  /// Erases a live node previously returned by Find/Emplace. Legacy mode:
  /// unlink + free immediately. Versioned mode: mark dead at the working
  /// epoch and hand the node to the RetireLog (unlink at phase 1, free at
  /// phase 2).
  void Erase(Node* node) {
    --size_;
    if (ctx_ == nullptr) {
      RemoveFromTables(node);
      UnlinkList(node);
      FreeNode(node);
      if (old_table_.load(std::memory_order_relaxed) != nullptr) MigrateStep();
      return;
    }
    IVME_CHECK_MSG(node->death.load(std::memory_order_relaxed) == kLiveEpoch,
                   "double erase of a versioned node");
    ++zombies_;
    node->death.store(ctx_->working(), std::memory_order_release);
    ctx_->log->Retire(ctx_->working(), &UnlinkRetiredThunk, &FreeRetiredThunk,
                      this, node);
    if (old_table_.load(std::memory_order_relaxed) != nullptr) MigrateStep();
  }

  /// Removes all live entries. Legacy mode recycles every node and resets
  /// the table; versioned mode retires each live node individually (the
  /// table and zombie set must stay intact for pinned readers).
  void Clear() {
    if (ctx_ != nullptr) {
      Node* n = First();
      while (n != nullptr) {
        Node* next = NextLive(n);
        Erase(n);
        n = next;
      }
      return;
    }
    Node* n = head_.load(std::memory_order_relaxed);
    while (n != nullptr) {
      Node* next = n->next.load(std::memory_order_relaxed);
      FreeNode(n);
      n = next;
    }
    head_.store(nullptr, std::memory_order_relaxed);
    tail_ = nullptr;
    size_ = 0;
    delete table_.load(std::memory_order_relaxed);
    table_.store(NewTable(kInitialSlots), std::memory_order_relaxed);
    delete old_table_.load(std::memory_order_relaxed);
    old_table_.store(nullptr, std::memory_order_relaxed);
    migrate_pos_ = 0;
  }

  /// True while a growth migration is in flight (tests/introspection).
  bool rehash_in_progress() const {
    return old_table_.load(std::memory_order_relaxed) != nullptr;
  }

 private:
  static constexpr size_t kInitialSlots = 16;  // power of two
  static constexpr size_t kFirstSlabNodes = 16;

  /// Erased-slot sentinel: probes continue past it, writer inserts reuse it.
  static Node* Tombstone() { return reinterpret_cast<Node*>(uintptr_t{1}); }

  struct Table {
    explicit Table(size_t cap) : capacity(cap), slots(new std::atomic<Node*>[cap]) {
      for (size_t i = 0; i < cap; ++i) {
        slots[i].store(nullptr, std::memory_order_relaxed);
      }
    }
    const size_t capacity;
    std::unique_ptr<std::atomic<Node*>[]> slots;
    /// Occupied slots including tombstones (writer-only bookkeeping; the
    /// growth trigger compacts tombstone-heavy tables).
    size_t used = 0;
  };

  static Table* NewTable(size_t cap) { return new Table(cap); }

  /// Raw storage for one Node; doubles as a free-list link while vacant.
  union Slot {
    Slot* next_free;
    alignas(Node) unsigned char storage[sizeof(Node)];
  };

  Node* AllocNode() {
    Slot* slot = free_head_;
    if (slot != nullptr) {
      free_head_ = slot->next_free;
    } else {
      if (slab_used_ == slab_cap_) {
        // Geometric slab growth keeps pool overhead amortized O(1)/node.
        // Default-init (not make_unique) so the slab is not zeroed up front.
        slab_cap_ = slabs_.empty() ? kFirstSlabNodes : slab_cap_ * 2;
        slabs_.emplace_back(new Slot[slab_cap_]);
        slab_used_ = 0;
      }
      slot = &slabs_.back()[slab_used_++];
    }
    return new (slot->storage) Node();
  }

  void FreeNode(Node* node) {
    node->~Node();
    Slot* slot = reinterpret_cast<Slot*>(node);
    slot->next_free = free_head_;
    free_head_ = slot;
  }

  /// Linear probe for a key match visible under `view`. Reader-safe: slots
  /// are acquire-loaded, and matching nodes were fully initialized before
  /// their slot store (release).
  static Node* Probe(const Table* t, uint64_t h, const Tuple& key,
                     const ReadView& view) {
    const size_t mask = t->capacity - 1;
    for (size_t i = h & mask;; i = (i + 1) & mask) {
      Node* n = t->slots[i].load(std::memory_order_acquire);
      if (n == nullptr) return nullptr;
      if (n == Tombstone()) continue;
      if (n->hash == h && Visible(n, view) && n->key == key) return n;
    }
  }

  /// Writer-only: places `n` in table `t`, reusing the first tombstone on
  /// its probe path if any. The release store publishes the fully
  /// constructed node to concurrent readers.
  void InsertIntoTable(Table* t, Node* n) {
    const size_t mask = t->capacity - 1;
    std::atomic<Node*>* target = nullptr;
    for (size_t i = n->hash & mask;; i = (i + 1) & mask) {
      Node* cur = t->slots[i].load(std::memory_order_relaxed);
      if (cur == Tombstone()) {
        if (target == nullptr) target = &t->slots[i];
        continue;
      }
      if (cur == nullptr) {
        if (target == nullptr) {
          target = &t->slots[i];
          ++t->used;
        }
        break;
      }
    }
    target->store(n, std::memory_order_release);
  }

  /// Writer-only: tombstones every slot holding `node` (it may sit in both
  /// tables mid-migration). Used by legacy Erase and by phase 1.
  void RemoveFromTables(Node* node) {
    const bool found = TombstoneIn(table_.load(std::memory_order_relaxed), node);
    Table* old = old_table_.load(std::memory_order_relaxed);
    bool found_old = false;
    if (old != nullptr) found_old = TombstoneIn(old, node);
    IVME_CHECK_MSG(found || found_old, "node not present in any table");
  }

  bool TombstoneIn(Table* t, Node* node) {
    const size_t mask = t->capacity - 1;
    for (size_t i = node->hash & mask;; i = (i + 1) & mask) {
      Node* cur = t->slots[i].load(std::memory_order_relaxed);
      if (cur == nullptr) return false;
      if (cur == node) {
        t->slots[i].store(Tombstone(), std::memory_order_release);
        return true;
      }
    }
  }

  void LinkBack(Node* n) {
    n->prev = tail_;
    n->next.store(nullptr, std::memory_order_relaxed);
    if (tail_ != nullptr) {
      tail_->next.store(n, std::memory_order_release);
    } else {
      head_.store(n, std::memory_order_release);
    }
    tail_ = n;
  }

  /// Splices `n` out of the enumeration list. `n`'s own next/prev stay
  /// valid so a reader standing on it mid-walk can still advance.
  void UnlinkList(Node* n) {
    Node* next = n->next.load(std::memory_order_relaxed);
    if (n->prev != nullptr) {
      n->prev->next.store(next, std::memory_order_release);
    } else {
      head_.store(next, std::memory_order_release);
    }
    if (next != nullptr) {
      next->prev = n->prev;
    } else {
      tail_ = n->prev;
    }
  }

  /// Phase 1: no reader pin can see the node anymore — drop it from the
  /// tables and the enumeration list. Memory stays valid until phase 2.
  static void UnlinkRetiredThunk(void* owner, void* object) {
    auto* self = static_cast<TupleMap*>(owner);
    auto* node = static_cast<Node*>(object);
    self->RemoveFromTables(node);
    self->UnlinkList(node);
    --self->zombies_;
  }

  /// Phase 2: no reader can be physically standing on the node.
  static void FreeRetiredThunk(void* owner, void* object) {
    static_cast<TupleMap*>(owner)->FreeNode(static_cast<Node*>(object));
  }

  /// Slots migrated per mutation while a growth is in flight. The
  /// load-factor headroom after a growth (≥ 3/8 of the new capacity in
  /// fresh inserts before the next trigger, with new_capacity ≥
  /// old_capacity/2) divided by old_capacity/kMigrateChunk migration steps
  /// leaves a ≥ 1.5× safety margin, so at most two slot arrays ever
  /// coexist (the IVME_CHECK in BeginGrow enforces it).
  static constexpr size_t kMigrateChunk = 8;

  /// Retires the current slot array and installs a fresh one sized so the
  /// fully migrated load factor is ≤ 3/8. Usually a doubling; after heavy
  /// tombstone churn it may keep (or halve) the capacity — a compaction.
  /// O(new capacity) pointer zeroing, never O(size) node relinking.
  void BeginGrow() {
    Table* t = table_.load(std::memory_order_relaxed);
    IVME_CHECK_MSG(old_table_.load(std::memory_order_relaxed) == nullptr,
                   "growth triggered before migration finished");
    const size_t entries = size_ + zombies_ + 1;
    size_t cap = kInitialSlots;
    while (entries * 8 > cap * 3) cap *= 2;
    // Migration pace bound: the old table drains within capacity/kChunk
    // mutations, which must fit in the new table's insert headroom.
    if (cap < t->capacity / 2) cap = t->capacity / 2;
    Table* fresh = NewTable(cap);
    // Order matters for lock-free readers: expose the outgoing table as
    // `old` BEFORE swinging `table_`, so a reader that acquires the new
    // table_ also sees old_table_ set (release/acquire pairing on table_).
    old_table_.store(t, std::memory_order_release);
    table_.store(fresh, std::memory_order_release);
    migrate_pos_ = 0;
  }

  /// Copies up to kMigrateChunk old slots' node pointers into the new
  /// array. Old slots are left untouched (readers probing new-then-old
  /// must never see the key vanish from both); the whole array is retired
  /// when the scan completes. Zombies migrate too — pinned readers still
  /// need to find them.
  void MigrateStep() {
    Table* old = old_table_.load(std::memory_order_relaxed);
    Table* t = table_.load(std::memory_order_relaxed);
    size_t scanned = 0;
    while (scanned < kMigrateChunk && migrate_pos_ < old->capacity) {
      Node* n = old->slots[migrate_pos_].load(std::memory_order_relaxed);
      if (n != nullptr && n != Tombstone()) InsertIntoTable(t, n);
      ++migrate_pos_;
      ++scanned;
    }
    if (migrate_pos_ >= old->capacity) {
      old_table_.store(nullptr, std::memory_order_release);
      migrate_pos_ = 0;
      if (ctx_ != nullptr) {
        // Readers pinned before the store above may still be probing the
        // old array: free it only after a grace period.
        ctx_->log->AddLimbo(ctx_->working(), &FreeTableThunk, nullptr, old);
      } else {
        delete old;
      }
    }
  }

  static void FreeTableThunk(void* /*owner*/, void* object) {
    delete static_cast<Table*>(object);
  }

  std::atomic<Table*> table_;
  std::atomic<Table*> old_table_{nullptr};  ///< drains via MigrateStep
  size_t migrate_pos_ = 0;  ///< first not-yet-scanned old slot
  size_t size_ = 0;         ///< live entries
  size_t zombies_ = 0;      ///< erased-but-not-yet-unlinked entries
  std::atomic<Node*> head_{nullptr};
  Node* tail_ = nullptr;
  const EpochContext* ctx_ = nullptr;

  std::vector<std::unique_ptr<Slot[]>> slabs_;
  size_t slab_cap_ = 0;   // nodes in the newest slab
  size_t slab_used_ = 0;  // nodes handed out from the newest slab
  Slot* free_head_ = nullptr;
};

}  // namespace ivme

#endif  // IVME_STORAGE_TUPLE_MAP_H_
