// Enumeration cursors over view trees: the open/next iterator model of
// Figures 13–14, with the Union algorithm (Figure 15) for heavy-indicator
// groundings and the Product algorithm (Figure 16) for sibling subtrees.
//
// A cursor enumerates the distinct tuples (with multiplicities) that its
// subtree contributes over the node's emit schema, within a context tuple
// fixed by the parent. Lookup* are the stateless membership/multiplicity
// probes the Union algorithm needs for deduplication.
//
// Every entry point takes a snapshot epoch (default kLiveEpoch = the
// current state, writer-thread-only). With a pinned epoch the cursor reads
// the relations' as-of state and is safe to run concurrently with the
// maintenance writer (ARCHITECTURE.md §9).
#ifndef IVME_ENUMERATE_CURSOR_H_
#define IVME_ENUMERATE_CURSOR_H_

#include <memory>
#include <vector>

#include "src/common/epoch.h"
#include "src/core/view_node.h"

namespace ivme {

/// Abstract iterator over the emit tuples of a view (sub)tree.
class Cursor {
 public:
  virtual ~Cursor() = default;

  /// (Re)positions the cursor to the first tuple within `ctx`, a tuple over
  /// the node's ctx_schema.
  virtual void Open(const Tuple& ctx) = 0;

  /// Produces the next distinct tuple over the node's emit_schema together
  /// with its multiplicity; false at the end.
  virtual bool Next(Tuple* emit, Mult* mult) = 0;
};

/// Creates the cursor matching the node's compiled EnumMode, reading the
/// snapshot at `epoch`.
std::unique_ptr<Cursor> MakeCursor(const ViewNode* node,
                                   Epoch epoch = kLiveEpoch);

/// Multiplicity of emit tuple `t` in the subtree of `node` under context
/// `ctx` — full tree semantics (sums over heavy groundings at union nodes).
/// O(1) per materialized-view probe; O(#heavy keys) at union nodes.
Mult LookupTree(const ViewNode* node, const Tuple& ctx, const Tuple& t,
                Epoch epoch = kLiveEpoch);

/// Multiplicity of `t` in one heavy grounding of a union node: the bucket
/// whose root row is `row` (a tuple over the node's schema = keys).
Mult LookupGrounded(const ViewNode* node, const Tuple& row, const Tuple& t,
                    Epoch epoch = kLiveEpoch);

}  // namespace ivme

#endif  // IVME_ENUMERATE_CURSOR_H_
