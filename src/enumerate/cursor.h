// Enumeration cursors over view trees: the open/next iterator model of
// Figures 13–14, with the Union algorithm (Figure 15) for heavy-indicator
// groundings and the Product algorithm (Figure 16) for sibling subtrees.
//
// A cursor enumerates the distinct tuples (with multiplicities) that its
// subtree contributes over the node's emit schema, within a context tuple
// fixed by the parent. Lookup* are the stateless membership/multiplicity
// probes the Union algorithm needs for deduplication.
//
// Every entry point takes either a snapshot epoch (default kLiveEpoch =
// the current state, writer-thread-only) or a fully resolved ReadView.
// The ReadView decides ONCE, at cursor construction, how node visibility
// and multiplicities are filtered (ARCHITECTURE.md §11): kDirect and
// kFastPin sessions skip the version-chain and zombie machinery in the
// inner loops. With a pinned epoch the cursor reads the relations' as-of
// state and is safe to run concurrently with the maintenance writer
// (ARCHITECTURE.md §9).
#ifndef IVME_ENUMERATE_CURSOR_H_
#define IVME_ENUMERATE_CURSOR_H_

#include <memory>
#include <vector>

#include "src/common/epoch.h"
#include "src/core/view_node.h"

namespace ivme {

/// A batch of enumerated rows: parallel tuple/multiplicity arrays whose
/// slots (and their Tuples' heap spill, for arity > 4) are reused across
/// Clear() calls, so steady-state batched enumeration allocates nothing.
class RowBuffer {
 public:
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const Tuple& tuple(size_t i) const { return tuples_[i]; }
  Mult mult(size_t i) const { return mults_[i]; }

  /// Forgets the rows but keeps every slot's capacity.
  void Clear() { size_ = 0; }

  /// Exposes the next free slot for the producer to fill; the row becomes
  /// part of the buffer only after Commit().
  void Slot(Tuple** tuple, Mult** mult) {
    if (size_ == tuples_.size()) {
      tuples_.emplace_back();
      mults_.push_back(0);
    }
    *tuple = &tuples_[size_];
    *mult = &mults_[size_];
  }
  void Commit() { ++size_; }

  /// Copy-append (convenience for non-slot producers).
  void Append(const Tuple& tuple, Mult mult) {
    Tuple* t = nullptr;
    Mult* m = nullptr;
    Slot(&t, &m);
    *t = tuple;
    *m = mult;
    Commit();
  }

 private:
  std::vector<Tuple> tuples_;
  std::vector<Mult> mults_;
  size_t size_ = 0;
};

/// Abstract iterator over the emit tuples of a view (sub)tree.
class Cursor {
 public:
  virtual ~Cursor() = default;

  /// (Re)positions the cursor to the first tuple within `ctx`, a tuple over
  /// the node's ctx_schema.
  virtual void Open(const Tuple& ctx) = 0;

  /// Produces the next distinct tuple over the node's emit_schema together
  /// with its multiplicity; false at the end.
  virtual bool Next(Tuple* emit, Mult* mult) = 0;

  /// Appends up to `limit` rows to `out` (which is NOT cleared) and returns
  /// how many were produced; fewer than `limit` means the stream ended.
  /// Amortizes the virtual dispatch and per-row epoch checks of Next over a
  /// whole batch; scan-shaped cursors override it with a tight loop.
  virtual size_t FillBatch(RowBuffer* out, size_t limit);
};

/// Creates the cursor matching the node's compiled EnumMode under a
/// resolved session view.
std::unique_ptr<Cursor> MakeCursor(const ViewNode* node, const ReadView& view);

/// Epoch convenience: full version filtering at `epoch` (the PR 7 path).
std::unique_ptr<Cursor> MakeCursor(const ViewNode* node,
                                   Epoch epoch = kLiveEpoch);

/// Multiplicity of emit tuple `t` in the subtree of `node` under context
/// `ctx` — full tree semantics (sums over heavy groundings at union nodes).
/// O(1) per materialized-view probe; O(#heavy keys) at union nodes.
Mult LookupTree(const ViewNode* node, const Tuple& ctx, const Tuple& t,
                const ReadView& view);
Mult LookupTree(const ViewNode* node, const Tuple& ctx, const Tuple& t,
                Epoch epoch = kLiveEpoch);

/// Multiplicity of `t` in one heavy grounding of a union node: the bucket
/// whose root row is `row` (a tuple over the node's schema = keys).
Mult LookupGrounded(const ViewNode* node, const Tuple& row, const Tuple& t,
                    const ReadView& view);
Mult LookupGrounded(const ViewNode* node, const Tuple& row, const Tuple& t,
                    Epoch epoch = kLiveEpoch);

}  // namespace ivme

#endif  // IVME_ENUMERATE_CURSOR_H_
