// Result enumeration across shard engines. Shards partition the database
// by the hash of the component-root value, so every join result is produced
// entirely within one shard. When the root variable is free, the output
// tuples of different shards are disjoint (they differ in the root column)
// and the merged stream is a plain concatenation of the shard streams — no
// dedup pass, constant-delay properties carry over. When the root variable
// is bound (projected away), the same output tuple can arise in several
// shards with its multiplicity split between them; the enumerator then
// eagerly drains all shards into one multiplicity-summing map and streams
// that (O(result) space, like any dedup over a projection).
//
// DrainMode::kParallel fans the per-shard drains onto a ThreadPool: each
// task batches its own shard's stream into a private RowBuffer, and the
// buffers are streamed (disjoint) or merge-summed (bound root) in shard
// order afterwards, so the output is byte-identical to the serial stream.
#ifndef IVME_ENUMERATE_MERGED_ENUMERATOR_H_
#define IVME_ENUMERATE_MERGED_ENUMERATOR_H_

#include <memory>
#include <vector>

#include "src/enumerate/enumerator.h"
#include "src/storage/tuple_map.h"

namespace ivme {

class ThreadPool;

/// How a MergedEnumerator consumes its shard streams.
enum class DrainMode {
  kLazy,      ///< pull shard-by-shard on demand (serial; no pool use)
  kParallel,  ///< drain all shards up front on the pool, then stream buffers
};

/// Merge rule for one overflow (hot) root value under skew-aware routing:
/// its tuples no longer live in a single shard, so the per-shard output
/// streams are not disjoint for this root value even when the root is free.
struct OverflowMergeKey {
  Value root = 0;
  /// True when the enumerated query reads the overflow value's *spread*
  /// relation: every shard then contributes a partial result slice for this
  /// root and the slices merge by multiplicity sum. False when the query
  /// reads only replicated relations: every shard computes an identical
  /// copy and only the primary shard's stream is kept.
  bool sum = true;
  size_t primary = 0;  ///< hash shard of the root value (kept when !sum)
};

/// Output positions + keys a MergedEnumerator needs to repair disjointness
/// for overflow root values. Built per query by the sharded catalog.
struct OverflowMergeSpec {
  int root_pos = 0;  ///< position of the root variable in output tuples
  std::vector<OverflowMergeKey> keys;

  const OverflowMergeKey* FindKey(Value v) const {
    for (const OverflowMergeKey& key : keys) {
      if (key.root == v) return &key;
    }
    return nullptr;
  }
};

/// Concatenates (disjoint shards) or merges (overlapping projections) the
/// result streams of a sharded engine's per-shard enumerators. Same
/// contract as ResultEnumerator: distinct tuples over the query's free
/// variables in head order, with their full multiplicities.
class MergedEnumerator {
 public:
  /// `disjoint` asserts that no output tuple occurs in more than one shard
  /// stream (root variable free). With `disjoint` false the constructor
  /// drains every shard up front. DrainMode::kParallel additionally runs
  /// the per-shard drains as pool tasks (inline when `pool` is null or has
  /// no workers); the merged stream order is unchanged.
  ///
  /// `overflow` (may be null / empty) lists the overflow root values whose
  /// shard streams are NOT disjoint despite a free root (skew-aware
  /// routing): rows carrying an overflow root value are merged per the
  /// key's rule (multiplicity sum across shards, or primary-shard-only for
  /// replicated copies) while all other rows stream as the plain disjoint
  /// concatenation. A non-empty spec forces an eager drain even under
  /// DrainMode::kLazy. Ignored when `disjoint` is false (the summing merge
  /// already handles arbitrary overlap).
  MergedEnumerator(std::vector<std::unique_ptr<ResultEnumerator>> shards,
                   bool disjoint, DrainMode mode = DrainMode::kLazy,
                   ThreadPool* pool = nullptr,
                   std::shared_ptr<const OverflowMergeSpec> overflow = nullptr);

  /// Next distinct result tuple and its multiplicity; false at the end.
  bool Next(Tuple* out, Mult* mult);

  /// Appends up to `limit` rows to `out` (not cleared); fewer than `limit`
  /// means the stream ended.
  size_t FillBatch(RowBuffer* out, size_t limit);

 private:
  /// Overflow repair pass: drains every shard (if not already drained) and
  /// rebuilds buffers_ as one combined stream with overflow-key rows merged
  /// per their rule. Called from the constructor only.
  void ApplyOverflowMerge(const OverflowMergeSpec& spec);

  std::vector<std::unique_ptr<ResultEnumerator>> shards_;
  size_t current_ = 0;  ///< shard being drained (disjoint lazy mode)

  bool disjoint_ = true;
  /// Parallel-drain results, one buffer per shard, streamed in shard order.
  std::vector<RowBuffer> buffers_;
  bool buffered_ = false;
  size_t buf_shard_ = 0;  ///< stream position over buffers_
  size_t buf_row_ = 0;

  TupleMap<Mult> merged_;                       ///< merge mode: summed result
  const TupleMap<Mult>::Node* next_ = nullptr;  ///< merge mode: stream position
};

}  // namespace ivme

#endif  // IVME_ENUMERATE_MERGED_ENUMERATOR_H_
