// Result enumeration across shard engines. Shards partition the database
// by the hash of the component-root value, so every join result is produced
// entirely within one shard. When the root variable is free, the output
// tuples of different shards are disjoint (they differ in the root column)
// and the merged stream is a plain concatenation of the shard streams — no
// dedup pass, constant-delay properties carry over. When the root variable
// is bound (projected away), the same output tuple can arise in several
// shards with its multiplicity split between them; the enumerator then
// eagerly drains all shards into one multiplicity-summing map and streams
// that (O(result) space, like any dedup over a projection).
#ifndef IVME_ENUMERATE_MERGED_ENUMERATOR_H_
#define IVME_ENUMERATE_MERGED_ENUMERATOR_H_

#include <memory>
#include <vector>

#include "src/enumerate/enumerator.h"
#include "src/storage/tuple_map.h"

namespace ivme {

/// Concatenates (disjoint shards) or merges (overlapping projections) the
/// result streams of a sharded engine's per-shard enumerators. Same
/// contract as ResultEnumerator: distinct tuples over the query's free
/// variables in head order, with their full multiplicities.
class MergedEnumerator {
 public:
  /// `disjoint` asserts that no output tuple occurs in more than one shard
  /// stream (root variable free). With `disjoint` false the constructor
  /// drains every shard up front.
  MergedEnumerator(std::vector<std::unique_ptr<ResultEnumerator>> shards, bool disjoint);

  /// Next distinct result tuple and its multiplicity; false at the end.
  bool Next(Tuple* out, Mult* mult);

 private:
  std::vector<std::unique_ptr<ResultEnumerator>> shards_;
  size_t current_ = 0;  ///< shard being drained (disjoint mode)

  bool disjoint_ = true;
  TupleMap<Mult> merged_;                       ///< merge mode: summed result
  const TupleMap<Mult>::Node* next_ = nullptr;  ///< merge mode: stream position
};

}  // namespace ivme

#endif  // IVME_ENUMERATE_MERGED_ENUMERATOR_H_
