// Top-level result enumeration: per connected component, the Union
// algorithm deduplicates across the component's view trees (Proposition 20:
// the query is the union of the trees' joins); across components, the
// Product algorithm combines the per-component streams. Output tuples are
// over the query's free variables in head order; multiplicities sum over
// trees within a component and multiply across components.
#ifndef IVME_ENUMERATE_ENUMERATOR_H_
#define IVME_ENUMERATE_ENUMERATOR_H_

#include <map>
#include <memory>
#include <vector>

#include "src/common/check.h"
#include "src/core/builder.h"
#include "src/enumerate/cursor.h"
#include "src/query/query.h"

namespace ivme {

/// Drains any enumerator with `Next(Tuple*, Mult*)` + `FillBatch` —
/// ResultEnumerator, MergedEnumerator — into a tuple → multiplicity map,
/// checking the distinct-tuple contract. Batched: one virtual-ish call per
/// kDrainChunk rows instead of per row. Shared by the EvaluateToMap
/// conveniences of MaintainedQuery, ShardedEngine, and the catalogs.
template <typename Enumerator>
std::map<Tuple, Mult> DrainEnumeration(Enumerator& it) {
  constexpr size_t kDrainChunk = 256;
  std::map<Tuple, Mult> result;
  RowBuffer batch;
  for (;;) {
    batch.Clear();
    const size_t n = it.FillBatch(&batch, kDrainChunk);
    for (size_t i = 0; i < n; ++i) {
      const auto [pos, inserted] = result.emplace(batch.tuple(i), batch.mult(i));
      IVME_CHECK_MSG(inserted,
                     "enumerator produced duplicate tuple " << batch.tuple(i).ToString());
      (void)pos;
    }
    if (n < kDrainChunk) break;
  }
  return result;
}

/// Streams the distinct tuples of the query result. Create one per
/// enumeration session (cheap relative to a full pass). At kLiveEpoch,
/// concurrent updates invalidate open enumerators; with a pinned snapshot
/// epoch the stream reads the published as-of state and may run
/// concurrently with maintenance (ARCHITECTURE.md §9).
///
/// Construction resolves the session's ReadView once and charges the
/// read-side cost counters (reads + read_fast_lane/read_versioned).
class ResultEnumerator {
 public:
  /// Full version filtering at `epoch` — for storage without a resolvable
  /// context (plain engines) and writer-side live reads.
  ResultEnumerator(const ConjunctiveQuery& q, const CompiledPlan& plan,
                   Epoch epoch = kLiveEpoch);

  /// Resolved-session constructor (MaintainedQuery::EnumerateAt resolves
  /// the view against its epoch context once per session).
  ResultEnumerator(const ConjunctiveQuery& q, const CompiledPlan& plan,
                   const ReadView& view);

  /// Next distinct result tuple (over free_vars() in head order) and its
  /// multiplicity; false at the end of the result.
  bool Next(Tuple* out, Mult* mult);

  /// Appends up to `limit` rows to `out` (not cleared); fewer than `limit`
  /// means the stream ended. When the plan is a single covering root whose
  /// emit order already matches the head (the ε = 1 / materialized-result
  /// shape), this forwards straight to the root cursor's batched scan.
  size_t FillBatch(RowBuffer* out, size_t limit);

 private:
  /// Union across the view trees of one connected component.
  class ComponentUnion {
   public:
    ComponentUnion(const std::vector<const ViewNode*>& roots, const ReadView& view);
    void Open();
    bool Next(Tuple* out, Mult* mult);  // over the component emit schema
    const Schema& emit_schema() const { return emit_; }

    /// The lone tree's cursor (single-tree components only; used for the
    /// direct-root FillBatch forwarding).
    Cursor* sole_cursor() const {
      return roots_.size() == 1 ? cursors_[0].get() : nullptr;
    }
    bool tree_emit_matches_component(size_t i) const;

   private:
    Mult LookupInTree(size_t i, const Tuple& comp_tuple) const;

    std::vector<const ViewNode*> roots_;
    ReadView view_;
    std::vector<std::unique_ptr<Cursor>> cursors_;
    std::vector<std::vector<int>> comp_to_tree_;  // reorder comp → tree emit
    std::vector<std::vector<int>> tree_to_comp_;  // reorder tree → comp emit
    Schema emit_;
  };

  bool AdvanceComponent(size_t i);
  /// True when the whole result is the single root cursor's stream with
  /// identity projections end to end.
  bool ResolveDirectRoot();

  const ConjunctiveQuery& query_;
  std::vector<std::unique_ptr<ComponentUnion>> components_;
  std::vector<Tuple> current_;
  std::vector<Mult> mults_;
  // For each free variable: which component and which emit position.
  std::vector<std::pair<size_t, size_t>> out_sources_;
  Cursor* direct_root_ = nullptr;  ///< non-null: FillBatch forwards here
  bool direct_opened_ = false;
  bool primed_ = false;
  bool done_ = false;
};

}  // namespace ivme

#endif  // IVME_ENUMERATE_ENUMERATOR_H_
