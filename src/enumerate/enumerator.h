// Top-level result enumeration: per connected component, the Union
// algorithm deduplicates across the component's view trees (Proposition 20:
// the query is the union of the trees' joins); across components, the
// Product algorithm combines the per-component streams. Output tuples are
// over the query's free variables in head order; multiplicities sum over
// trees within a component and multiply across components.
#ifndef IVME_ENUMERATE_ENUMERATOR_H_
#define IVME_ENUMERATE_ENUMERATOR_H_

#include <map>
#include <memory>
#include <vector>

#include "src/common/check.h"
#include "src/core/builder.h"
#include "src/enumerate/cursor.h"
#include "src/query/query.h"

namespace ivme {

/// Drains any enumerator with a `bool Next(Tuple*, Mult*)` interface
/// (ResultEnumerator, MergedEnumerator) into a tuple → multiplicity map,
/// checking the distinct-tuple contract. Shared by the EvaluateToMap
/// conveniences of MaintainedQuery, ShardedEngine, and the catalogs.
template <typename Enumerator>
std::map<Tuple, Mult> DrainEnumeration(Enumerator& it) {
  std::map<Tuple, Mult> result;
  Tuple t;
  Mult m = 0;
  while (it.Next(&t, &m)) {
    IVME_CHECK_MSG(result.find(t) == result.end(),
                   "enumerator produced duplicate tuple " << t.ToString());
    result[t] = m;
  }
  return result;
}

/// Streams the distinct tuples of the query result. Create one per
/// enumeration session (cheap relative to a full pass). At kLiveEpoch,
/// concurrent updates invalidate open enumerators; with a pinned snapshot
/// epoch the stream reads the published as-of state and may run
/// concurrently with maintenance (ARCHITECTURE.md §9).
class ResultEnumerator {
 public:
  ResultEnumerator(const ConjunctiveQuery& q, const CompiledPlan& plan,
                   Epoch epoch = kLiveEpoch);

  /// Next distinct result tuple (over free_vars() in head order) and its
  /// multiplicity; false at the end of the result.
  bool Next(Tuple* out, Mult* mult);

 private:
  /// Union across the view trees of one connected component.
  class ComponentUnion {
   public:
    ComponentUnion(const std::vector<const ViewNode*>& roots, Epoch epoch);
    void Open();
    bool Next(Tuple* out, Mult* mult);  // over the component emit schema
    const Schema& emit_schema() const { return emit_; }

   private:
    Mult LookupInTree(size_t i, const Tuple& comp_tuple) const;

    std::vector<const ViewNode*> roots_;
    Epoch epoch_;
    std::vector<std::unique_ptr<Cursor>> cursors_;
    std::vector<std::vector<int>> comp_to_tree_;  // reorder comp → tree emit
    std::vector<std::vector<int>> tree_to_comp_;  // reorder tree → comp emit
    Schema emit_;
  };

  bool AdvanceComponent(size_t i);

  const ConjunctiveQuery& query_;
  std::vector<std::unique_ptr<ComponentUnion>> components_;
  std::vector<Tuple> current_;
  std::vector<Mult> mults_;
  // For each free variable: which component and which emit position.
  std::vector<std::pair<size_t, size_t>> out_sources_;
  bool primed_ = false;
  bool done_ = false;
};

}  // namespace ivme

#endif  // IVME_ENUMERATE_ENUMERATOR_H_
