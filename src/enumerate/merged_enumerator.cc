#include "src/enumerate/merged_enumerator.h"

namespace ivme {

MergedEnumerator::MergedEnumerator(std::vector<std::unique_ptr<ResultEnumerator>> shards,
                                   bool disjoint)
    : shards_(std::move(shards)), disjoint_(disjoint) {
  if (disjoint_) return;
  // Overlap possible: sum every shard's stream into one map, then stream
  // the map. Entries keep first-appearance order across shards.
  Tuple t;
  Mult m = 0;
  for (auto& shard : shards_) {
    while (shard->Next(&t, &m)) merged_.Emplace(t).first->value += m;
  }
  shards_.clear();
  next_ = merged_.First();
}

bool MergedEnumerator::Next(Tuple* out, Mult* mult) {
  if (disjoint_) {
    while (current_ < shards_.size()) {
      if (shards_[current_]->Next(out, mult)) return true;
      ++current_;
    }
    return false;
  }
  if (next_ == nullptr) return false;
  *out = next_->key;
  *mult = next_->value;
  next_ = next_->next;
  return true;
}

}  // namespace ivme
