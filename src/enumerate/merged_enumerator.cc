#include "src/enumerate/merged_enumerator.h"

#include <functional>

#include "src/common/thread_pool.h"

namespace ivme {

namespace {

// Per-task drain granularity. Large enough that the FillBatch call overhead
// vanishes; the buffer grows geometrically underneath regardless.
constexpr size_t kShardDrainChunk = 1024;

void DrainShard(ResultEnumerator* shard, RowBuffer* out) {
  for (;;) {
    const size_t n = shard->FillBatch(out, kShardDrainChunk);
    if (n < kShardDrainChunk) break;
  }
}

}  // namespace

MergedEnumerator::MergedEnumerator(std::vector<std::unique_ptr<ResultEnumerator>> shards,
                                   bool disjoint, DrainMode mode, ThreadPool* pool,
                                   std::shared_ptr<const OverflowMergeSpec> overflow)
    : shards_(std::move(shards)), disjoint_(disjoint) {
  const bool need_overflow_merge = disjoint_ && shards_.size() > 1 &&
                                   overflow != nullptr && !overflow->keys.empty();
  if ((mode == DrainMode::kParallel || need_overflow_merge) && shards_.size() > 1) {
    // Fan the shard drains out; each task owns its shard's enumerator and
    // its own RowBuffer, so tasks share nothing. Run() is the barrier that
    // publishes the buffers (and the tasks' thread-local cost counters).
    buffers_.resize(shards_.size());
    std::vector<std::function<void()>> tasks;
    tasks.reserve(shards_.size());
    for (size_t i = 0; i < shards_.size(); ++i) {
      tasks.push_back([this, i] { DrainShard(shards_[i].get(), &buffers_[i]); });
    }
    if (mode == DrainMode::kParallel && pool != nullptr) {
      pool->Run(tasks);
    } else {
      for (const auto& task : tasks) task();
    }
    shards_.clear();
    buffered_ = true;
  }
  if (need_overflow_merge) ApplyOverflowMerge(*overflow);
  if (disjoint_) return;
  // Overlap possible: sum every shard's stream into one map, then stream
  // the map. Entries keep first-appearance order across shards — the merge
  // pass walks the (possibly parallel-drained) shards in shard order, so
  // the stream is identical to the serial drain.
  if (buffered_) {
    for (auto& buf : buffers_) {
      for (size_t i = 0; i < buf.size(); ++i) {
        merged_.Emplace(buf.tuple(i)).first->value += buf.mult(i);
      }
    }
    buffers_.clear();
    buffered_ = false;
  } else {
    Tuple t;
    Mult m = 0;
    for (auto& shard : shards_) {
      while (shard->Next(&t, &m)) merged_.Emplace(t).first->value += m;
    }
    shards_.clear();
  }
  next_ = merged_.First();
}

void MergedEnumerator::ApplyOverflowMerge(const OverflowMergeSpec& spec) {
  // The shard streams agree on all non-overflow root values (disjoint) and
  // disagree only on the listed keys: `sum` keys carry partial slices in
  // every shard (the query reads the spread relation), `!sum` keys carry
  // identical full copies (replicated relations only), of which exactly the
  // primary shard's survives. Rebuild one combined buffer in shard order —
  // pass-through rows first, then the summed rows of the `sum` keys in
  // first-appearance order — so the stream stays deterministic and keeps
  // the distinct-tuple contract.
  const size_t pos = static_cast<size_t>(spec.root_pos);
  std::vector<RowBuffer> merged(1);
  RowBuffer& out = merged[0];
  TupleMap<Mult> summed;
  for (size_t s = 0; s < buffers_.size(); ++s) {
    const RowBuffer& buf = buffers_[s];
    for (size_t i = 0; i < buf.size(); ++i) {
      const Tuple& t = buf.tuple(i);
      const OverflowMergeKey* key = spec.FindKey(t[pos]);
      if (key == nullptr) {
        out.Append(t, buf.mult(i));
      } else if (key->sum) {
        summed.Emplace(t).first->value += buf.mult(i);
      } else if (s == key->primary) {
        out.Append(t, buf.mult(i));
      }
    }
  }
  for (const auto* node = summed.First(); node != nullptr; node = node->next) {
    if (node->value != 0) out.Append(node->key, node->value);
  }
  buffers_ = std::move(merged);
}

bool MergedEnumerator::Next(Tuple* out, Mult* mult) {
  if (disjoint_) {
    if (buffered_) {
      while (buf_shard_ < buffers_.size()) {
        const RowBuffer& buf = buffers_[buf_shard_];
        if (buf_row_ < buf.size()) {
          *out = buf.tuple(buf_row_);
          *mult = buf.mult(buf_row_);
          ++buf_row_;
          return true;
        }
        ++buf_shard_;
        buf_row_ = 0;
      }
      return false;
    }
    while (current_ < shards_.size()) {
      if (shards_[current_]->Next(out, mult)) return true;
      ++current_;
    }
    return false;
  }
  if (next_ == nullptr) return false;
  *out = next_->key;
  *mult = next_->value;
  next_ = next_->next;
  return true;
}

size_t MergedEnumerator::FillBatch(RowBuffer* out, size_t limit) {
  if (disjoint_ && !buffered_) {
    // Lazy concatenation: forward the batched pulls shard by shard.
    size_t n = 0;
    while (n < limit && current_ < shards_.size()) {
      n += shards_[current_]->FillBatch(out, limit - n);
      if (n < limit) ++current_;
    }
    return n;
  }
  size_t n = 0;
  Tuple* t = nullptr;
  Mult* m = nullptr;
  while (n < limit) {
    out->Slot(&t, &m);
    if (!Next(t, m)) break;
    out->Commit();
    ++n;
  }
  return n;
}

}  // namespace ivme
