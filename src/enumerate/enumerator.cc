#include "src/enumerate/enumerator.h"

#include "src/common/check.h"

namespace ivme {

// ---------------------------------------------------------------------------
// ComponentUnion
// ---------------------------------------------------------------------------

ResultEnumerator::ComponentUnion::ComponentUnion(
    const std::vector<const ViewNode*>& roots, Epoch epoch)
    : roots_(roots), epoch_(epoch) {
  IVME_CHECK(!roots_.empty());
  emit_ = roots_[0]->emit_schema;
  for (const ViewNode* root : roots_) {
    IVME_CHECK_MSG(root->emit_schema.SameSet(emit_),
                   "trees of one component must emit the same variables");
    comp_to_tree_.push_back(ProjectionPositions(emit_, root->emit_schema));
    tree_to_comp_.push_back(ProjectionPositions(root->emit_schema, emit_));
    cursors_.push_back(MakeCursor(root, epoch));
  }
}

void ResultEnumerator::ComponentUnion::Open() {
  for (auto& cursor : cursors_) cursor->Open(Tuple{});
}

Mult ResultEnumerator::ComponentUnion::LookupInTree(size_t i, const Tuple& comp_tuple) const {
  return LookupTree(roots_[i], Tuple{}, ProjectTuple(comp_tuple, comp_to_tree_[i]),
                    epoch_);
}

bool ResultEnumerator::ComponentUnion::Next(Tuple* out, Mult* mult) {
  // The Union algorithm (Figure 15) across trees, exactly as at heavy
  // groundings: level i consumes the deduplicated union of levels < i.
  bool have = false;
  Tuple t;  // in component order
  Tuple raw;
  Mult ignored = 0;
  for (size_t i = 0; i < cursors_.size(); ++i) {
    if (!have) {
      if (cursors_[i]->Next(&raw, &ignored)) {
        t.AssignProjection(raw, tree_to_comp_[i]);
        have = true;
      }
    } else if (LookupInTree(i, t) != 0) {
      const bool ok = cursors_[i]->Next(&raw, &ignored);
      IVME_CHECK_MSG(ok, "tree stream exhausted during union replacement");
      t.AssignProjection(raw, tree_to_comp_[i]);
    }
  }
  if (!have) return false;
  Mult m = 0;
  for (size_t i = 0; i < cursors_.size(); ++i) m += LookupInTree(i, t);
  *out = t;
  *mult = m;
  return true;
}

// ---------------------------------------------------------------------------
// ResultEnumerator
// ---------------------------------------------------------------------------

ResultEnumerator::ResultEnumerator(const ConjunctiveQuery& q,
                                   const CompiledPlan& plan, Epoch epoch)
    : query_(q) {
  std::vector<std::vector<const ViewNode*>> roots(static_cast<size_t>(plan.num_components));
  for (const auto& tree : plan.trees) {
    roots[static_cast<size_t>(tree->component)].push_back(tree->root.get());
  }
  for (auto& group : roots) {
    components_.push_back(std::make_unique<ComponentUnion>(group, epoch));
  }
  current_.resize(components_.size());
  mults_.assign(components_.size(), 0);

  for (VarId v : q.free_vars()) {
    bool found = false;
    for (size_t c = 0; c < components_.size() && !found; ++c) {
      const int pos = components_[c]->emit_schema().PositionOf(v);
      if (pos >= 0) {
        out_sources_.emplace_back(c, static_cast<size_t>(pos));
        found = true;
      }
    }
    IVME_CHECK_MSG(found, "free variable not produced by any component");
  }
}

bool ResultEnumerator::AdvanceComponent(size_t i) {
  return components_[i]->Next(&current_[i], &mults_[i]);
}

bool ResultEnumerator::Next(Tuple* out, Mult* mult) {
  if (done_) return false;
  if (!primed_) {
    // Prime the odometer: every component must produce a first tuple.
    for (size_t i = 0; i < components_.size(); ++i) {
      components_[i]->Open();
      if (!AdvanceComponent(i)) {
        done_ = true;
        return false;
      }
    }
    primed_ = true;
  } else {
    // Advance the odometer from the last component; reset the ones behind.
    bool advanced = false;
    size_t i = components_.size();
    while (i-- > 0) {
      if (AdvanceComponent(i)) {
        for (size_t j = i + 1; j < components_.size(); ++j) {
          components_[j]->Open();
          const bool ok = AdvanceComponent(j);
          IVME_CHECK_MSG(ok, "component stream became empty during enumeration");
        }
        advanced = true;
        break;
      }
    }
    if (!advanced) {
      done_ = true;
      return false;
    }
  }
  out->Clear();
  out->Reserve(out_sources_.size());
  Mult m = 1;
  for (size_t c = 0; c < components_.size(); ++c) m *= mults_[c];
  for (const auto& [c, pos] : out_sources_) {
    out->PushBack(current_[c][pos]);
  }
  *mult = m;
  return true;
}

}  // namespace ivme
