#include "src/enumerate/enumerator.h"

#include "src/common/check.h"
#include "src/common/counters.h"

namespace ivme {

namespace {

bool IsIdentity(const std::vector<int>& positions) {
  for (size_t i = 0; i < positions.size(); ++i) {
    if (positions[i] != static_cast<int>(i)) return false;
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// ComponentUnion
// ---------------------------------------------------------------------------

ResultEnumerator::ComponentUnion::ComponentUnion(
    const std::vector<const ViewNode*>& roots, const ReadView& view)
    : roots_(roots), view_(view) {
  IVME_CHECK(!roots_.empty());
  emit_ = roots_[0]->emit_schema;
  for (const ViewNode* root : roots_) {
    IVME_CHECK_MSG(root->emit_schema.SameSet(emit_),
                   "trees of one component must emit the same variables");
    comp_to_tree_.push_back(ProjectionPositions(emit_, root->emit_schema));
    tree_to_comp_.push_back(ProjectionPositions(root->emit_schema, emit_));
    cursors_.push_back(MakeCursor(root, view));
  }
}

void ResultEnumerator::ComponentUnion::Open() {
  for (auto& cursor : cursors_) cursor->Open(Tuple{});
}

bool ResultEnumerator::ComponentUnion::tree_emit_matches_component(size_t i) const {
  return IsIdentity(tree_to_comp_[i]);
}

Mult ResultEnumerator::ComponentUnion::LookupInTree(size_t i, const Tuple& comp_tuple) const {
  return LookupTree(roots_[i], Tuple{}, ProjectTuple(comp_tuple, comp_to_tree_[i]),
                    view_);
}

bool ResultEnumerator::ComponentUnion::Next(Tuple* out, Mult* mult) {
  // Single-tree fast path: no cross-tree dedup, and the cursor already
  // reports the tree's multiplicity for its emitted tuple — skip the
  // redundant LookupInTree hash probe per row.
  if (cursors_.size() == 1) {
    Tuple raw;
    Mult m = 0;
    if (!cursors_[0]->Next(&raw, &m)) return false;
    out->AssignProjection(raw, tree_to_comp_[0]);
    *mult = m;
    return true;
  }
  // The Union algorithm (Figure 15) across trees, exactly as at heavy
  // groundings: level i consumes the deduplicated union of levels < i.
  bool have = false;
  Tuple t;  // in component order
  Tuple raw;
  Mult ignored = 0;
  for (size_t i = 0; i < cursors_.size(); ++i) {
    if (!have) {
      if (cursors_[i]->Next(&raw, &ignored)) {
        t.AssignProjection(raw, tree_to_comp_[i]);
        have = true;
      }
    } else if (LookupInTree(i, t) != 0) {
      const bool ok = cursors_[i]->Next(&raw, &ignored);
      IVME_CHECK_MSG(ok, "tree stream exhausted during union replacement");
      t.AssignProjection(raw, tree_to_comp_[i]);
    }
  }
  if (!have) return false;
  Mult m = 0;
  for (size_t i = 0; i < cursors_.size(); ++i) m += LookupInTree(i, t);
  *out = t;
  *mult = m;
  return true;
}

// ---------------------------------------------------------------------------
// ResultEnumerator
// ---------------------------------------------------------------------------

ResultEnumerator::ResultEnumerator(const ConjunctiveQuery& q,
                                   const CompiledPlan& plan, Epoch epoch)
    : ResultEnumerator(q, plan, ReadView{epoch, ReadMode::kVersioned}) {}

ResultEnumerator::ResultEnumerator(const ConjunctiveQuery& q,
                                   const CompiledPlan& plan, const ReadView& view)
    : query_(q) {
  CostCounters& counters = LocalCounters();
  ++counters.reads;
  if (view.mode == ReadMode::kVersioned) {
    ++counters.read_versioned;
  } else {
    ++counters.read_fast_lane;
  }
  std::vector<std::vector<const ViewNode*>> roots(static_cast<size_t>(plan.num_components));
  for (const auto& tree : plan.trees) {
    roots[static_cast<size_t>(tree->component)].push_back(tree->root.get());
  }
  for (auto& group : roots) {
    components_.push_back(std::make_unique<ComponentUnion>(group, view));
  }
  current_.resize(components_.size());
  mults_.assign(components_.size(), 0);

  for (VarId v : q.free_vars()) {
    bool found = false;
    for (size_t c = 0; c < components_.size() && !found; ++c) {
      const int pos = components_[c]->emit_schema().PositionOf(v);
      if (pos >= 0) {
        out_sources_.emplace_back(c, static_cast<size_t>(pos));
        found = true;
      }
    }
    IVME_CHECK_MSG(found, "free variable not produced by any component");
  }
  if (ResolveDirectRoot()) direct_root_ = components_[0]->sole_cursor();
}

bool ResultEnumerator::ResolveDirectRoot() {
  // The whole result is one tree's stream exactly when there is a single
  // component holding a single tree whose emit order is the component
  // order, and the head projection is the identity over that component.
  if (components_.size() != 1) return false;
  if (components_[0]->sole_cursor() == nullptr) return false;
  if (!components_[0]->tree_emit_matches_component(0)) return false;
  if (out_sources_.size() != components_[0]->emit_schema().size()) return false;
  for (size_t i = 0; i < out_sources_.size(); ++i) {
    if (out_sources_[i].first != 0 || out_sources_[i].second != i) return false;
  }
  return true;
}

bool ResultEnumerator::AdvanceComponent(size_t i) {
  return components_[i]->Next(&current_[i], &mults_[i]);
}

bool ResultEnumerator::Next(Tuple* out, Mult* mult) {
  if (done_) return false;
  if (direct_root_ != nullptr) {
    if (!direct_opened_) {
      direct_root_->Open(Tuple{});
      direct_opened_ = true;
    }
    if (direct_root_->Next(out, mult)) return true;
    done_ = true;
    return false;
  }
  if (!primed_) {
    // Prime the odometer: every component must produce a first tuple.
    for (size_t i = 0; i < components_.size(); ++i) {
      components_[i]->Open();
      if (!AdvanceComponent(i)) {
        done_ = true;
        return false;
      }
    }
    primed_ = true;
  } else {
    // Advance the odometer from the last component; reset the ones behind.
    bool advanced = false;
    size_t i = components_.size();
    while (i-- > 0) {
      if (AdvanceComponent(i)) {
        for (size_t j = i + 1; j < components_.size(); ++j) {
          components_[j]->Open();
          const bool ok = AdvanceComponent(j);
          IVME_CHECK_MSG(ok, "component stream became empty during enumeration");
        }
        advanced = true;
        break;
      }
    }
    if (!advanced) {
      done_ = true;
      return false;
    }
  }
  out->Clear();
  out->Reserve(out_sources_.size());
  Mult m = 1;
  for (size_t c = 0; c < components_.size(); ++c) m *= mults_[c];
  for (const auto& [c, pos] : out_sources_) {
    out->PushBack(current_[c][pos]);
  }
  *mult = m;
  return true;
}

size_t ResultEnumerator::FillBatch(RowBuffer* out, size_t limit) {
  if (direct_root_ != nullptr) {
    if (done_) return 0;
    if (!direct_opened_) {
      direct_root_->Open(Tuple{});
      direct_opened_ = true;
    }
    const size_t n = direct_root_->FillBatch(out, limit);
    if (n < limit) done_ = true;
    return n;
  }
  size_t n = 0;
  Tuple* t = nullptr;
  Mult* m = nullptr;
  while (n < limit) {
    out->Slot(&t, &m);
    if (!Next(t, m)) break;
    out->Commit();
    ++n;
  }
  return n;
}

}  // namespace ivme
