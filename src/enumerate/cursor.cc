#include "src/enumerate/cursor.h"

#include "src/common/check.h"
#include "src/common/counters.h"

namespace ivme {

size_t Cursor::FillBatch(RowBuffer* out, size_t limit) {
  size_t n = 0;
  Tuple* t = nullptr;
  Mult* m = nullptr;
  while (n < limit) {
    out->Slot(&t, &m);
    if (!Next(t, m)) break;
    out->Commit();
    ++n;
  }
  return n;
}

namespace {

// ---------------------------------------------------------------------------
// RowScanner: iterates the rows of σ_{ctx}(V) using the compiled scan mode
// (full scan / index scan / point lookup). The ReadView is resolved once at
// construction: fast-lane sessions run the whole scan without touching
// death epochs or version chains.
// ---------------------------------------------------------------------------

class RowScanner {
 public:
  RowScanner(const ViewNode* node, const ReadView& view) : node_(node), view_(view) {}

  void Open(const Tuple& ctx) {
    const size_t bound = node_->bound_schema.size();
    if (bound == 0) {
      mode_ = Mode::kFull;
      entry_ = node_->storage->FirstView(view_);
    } else if (bound == node_->schema.size()) {
      mode_ = Mode::kPoint;
      point_row_.AssignProjection(ctx, node_->ctx_to_bound);
      point_mult_ = node_->storage->MultiplicityView(point_row_, view_);
      point_done_ = point_mult_ == 0;
    } else {
      mode_ = Mode::kIndex;
      IVME_CHECK(node_->scan_index_id >= 0);
      point_row_.AssignProjection(ctx, node_->ctx_to_bound);  // scratch: index key
      link_ = node_->storage->index(node_->scan_index_id)
                  .FirstForKeyView(point_row_, view_);
    }
  }

  /// Returns the next row (pointer valid until the next call) or nullptr.
  const Tuple* Next(Mult* mult) {
    ++LocalCounters().enum_steps;
    return NextRaw(mult);
  }

  /// Next() without the per-row cost-counter bump — batched callers account
  /// a whole batch at once (CoveringCursor::FillBatch).
  const Tuple* NextRaw(Mult* mult) {
    switch (mode_) {
      case Mode::kFull: {
        if (entry_ == nullptr) return nullptr;
        const Tuple* row = &entry_->key;
        *mult = Relation::EntryMultView(entry_, view_);
        entry_ = Relation::NextView(entry_, view_);
        return row;
      }
      case Mode::kIndex: {
        if (link_ == nullptr) return nullptr;
        const Tuple* row = &link_->entry->key;
        *mult = Relation::EntryMultView(link_->entry, view_);
        link_ = Relation::Index::NextLinkView(link_, view_);
        return row;
      }
      case Mode::kPoint: {
        if (point_done_) return nullptr;
        point_done_ = true;
        *mult = point_mult_;
        return &point_row_;
      }
    }
    return nullptr;
  }

 private:
  enum class Mode { kFull, kIndex, kPoint };

  const ViewNode* node_;
  ReadView view_;
  Mode mode_ = Mode::kFull;
  const Relation::Entry* entry_ = nullptr;
  const Relation::IndexLink* link_ = nullptr;
  Tuple point_row_;  // the point row (kPoint) or the index key (kIndex)
  Mult point_mult_ = 0;
  bool point_done_ = true;
};

// Scans the heavy-indicator keys σ_{ctx}(∃H) of a union node.
class IndicatorScanner {
 public:
  IndicatorScanner(const ViewNode* node, const ReadView& view)
      : node_(node),
        indicator_(node->children[static_cast<size_t>(node->indicator_child)].get()),
        view_(view) {}

  void Open(const Tuple& ctx) {
    const Relation* h = indicator_->storage;
    const size_t bound = node_->ctx_to_indicator_bound.size();
    if (bound == 0) {
      mode_ = Mode::kFull;
      entry_ = h->FirstView(view_);
    } else if (bound == indicator_->schema.size()) {
      mode_ = Mode::kPoint;
      point_row_.AssignProjection(ctx, node_->ctx_to_indicator_bound);
      point_done_ = h->MultiplicityView(point_row_, view_) == 0;
    } else {
      mode_ = Mode::kIndex;
      IVME_CHECK(node_->indicator_scan_index_id >= 0);
      point_row_.AssignProjection(ctx, node_->ctx_to_indicator_bound);  // scratch: index key
      link_ = h->index(node_->indicator_scan_index_id)
                  .FirstForKeyView(point_row_, view_);
    }
  }

  const Tuple* Next() {
    switch (mode_) {
      case Mode::kFull: {
        if (entry_ == nullptr) return nullptr;
        const Tuple* row = &entry_->key;
        entry_ = Relation::NextView(entry_, view_);
        return row;
      }
      case Mode::kIndex: {
        if (link_ == nullptr) return nullptr;
        const Tuple* row = &link_->entry->key;
        link_ = Relation::Index::NextLinkView(link_, view_);
        return row;
      }
      case Mode::kPoint: {
        if (point_done_) return nullptr;
        point_done_ = true;
        return &point_row_;
      }
    }
    return nullptr;
  }

 private:
  enum class Mode { kFull, kIndex, kPoint };

  const ViewNode* node_;
  const ViewNode* indicator_;
  ReadView view_;
  Mode mode_ = Mode::kFull;
  const Relation::Entry* entry_ = nullptr;
  const Relation::IndexLink* link_ = nullptr;
  Tuple point_row_;  // the point row (kPoint) or the index key (kIndex)
  bool point_done_ = true;
};

// ---------------------------------------------------------------------------
// RowProductIter: the Product algorithm (Figure 16) for one fixed row of a
// product/union node: odometer over the non-indicator children within the
// context given by the row.
// ---------------------------------------------------------------------------

class RowProductIter {
 public:
  RowProductIter(const ViewNode* node, const ReadView& view) : node_(node) {
    for (const auto& child : node->children) {
      if (child->IsIndicator()) continue;
      kids_.push_back(MakeCursor(child.get(), view));
    }
    kid_emits_.resize(kids_.size());
    kid_mults_.assign(kids_.size(), 0);
  }

  void Open(const Tuple& row) {
    row_ = row;
    row_part_.AssignProjection(row, node_->row_emit_positions);
    primed_ = false;
    dead_ = false;
  }

  bool Next(Tuple* emit, Mult* mult) {
    if (dead_) return false;
    if (!primed_) {
      for (size_t i = 0; i < kids_.size(); ++i) {
        kids_[i]->Open(row_);
        if (!kids_[i]->Next(&kid_emits_[i], &kid_mults_[i])) {
          dead_ = true;
          return false;
        }
      }
      primed_ = true;
      Combine(emit, mult);
      return true;
    }
    // Advance the odometer from the last child.
    for (size_t i = kids_.size(); i-- > 0;) {
      if (kids_[i]->Next(&kid_emits_[i], &kid_mults_[i])) {
        for (size_t j = i + 1; j < kids_.size(); ++j) {
          kids_[j]->Open(row_);
          const bool ok = kids_[j]->Next(&kid_emits_[j], &kid_mults_[j]);
          IVME_CHECK_MSG(ok, "child became empty during enumeration");
        }
        Combine(emit, mult);
        return true;
      }
    }
    dead_ = true;
    return false;
  }

 private:
  void Combine(Tuple* emit, Mult* mult) {
    *emit = row_part_;
    Mult m = 1;
    for (size_t i = 0; i < kids_.size(); ++i) {
      for (Value v : kid_emits_[i]) emit->PushBack(v);
      m *= kid_mults_[i];
    }
    *mult = m;
  }

  const ViewNode* node_;
  std::vector<std::unique_ptr<Cursor>> kids_;
  std::vector<Tuple> kid_emits_;
  std::vector<Mult> kid_mults_;
  Tuple row_;
  Tuple row_part_;
  bool primed_ = false;
  bool dead_ = true;
};

// ---------------------------------------------------------------------------
// Cursors
// ---------------------------------------------------------------------------

class CoveringCursor : public Cursor {
 public:
  CoveringCursor(const ViewNode* node, const ReadView& view)
      : node_(node), scanner_(node, view) {}

  void Open(const Tuple& ctx) override { scanner_.Open(ctx); }

  bool Next(Tuple* emit, Mult* mult) override {
    const Tuple* row = scanner_.Next(mult);
    if (row == nullptr) return false;
    emit->AssignProjection(*row, node_->row_emit_positions);
    return true;
  }

  size_t FillBatch(RowBuffer* out, size_t limit) override {
    // The scan-shaped hot loop: no virtual dispatch per row, one counter
    // update per batch (n emitted rows plus the terminal miss, matching
    // the per-row accounting of Next).
    size_t n = 0;
    Tuple* t = nullptr;
    Mult* m = nullptr;
    while (n < limit) {
      out->Slot(&t, &m);
      const Tuple* row = scanner_.NextRaw(m);
      if (row == nullptr) break;
      t->AssignProjection(*row, node_->row_emit_positions);
      out->Commit();
      ++n;
    }
    LocalCounters().enum_steps += n + (n < limit ? 1 : 0);
    return n;
  }

 private:
  const ViewNode* node_;
  RowScanner scanner_;
};

class ProductCursor : public Cursor {
 public:
  ProductCursor(const ViewNode* node, const ReadView& view)
      : node_(node), scanner_(node, view), prod_(node, view) {}

  void Open(const Tuple& ctx) override {
    scanner_.Open(ctx);
    row_valid_ = false;
  }

  bool Next(Tuple* emit, Mult* mult) override {
    while (true) {
      if (!row_valid_) {
        Mult row_mult = 0;
        const Tuple* row = scanner_.Next(&row_mult);
        if (row == nullptr) return false;
        prod_.Open(*row);
        row_valid_ = true;
      }
      if (prod_.Next(emit, mult)) return true;
      row_valid_ = false;  // row exhausted; move to the next one
    }
  }

 private:
  const ViewNode* node_;
  RowScanner scanner_;
  RowProductIter prod_;
  bool row_valid_ = false;
};

// The Union algorithm (Figure 15) over the heavy groundings of a union
// node, implemented iteratively (level j consumes the union of levels < j).
class UnionCursor : public Cursor {
 public:
  UnionCursor(const ViewNode* node, const ReadView& view)
      : node_(node), view_(view) {}

  void Open(const Tuple& ctx) override {
    buckets_.clear();
    IndicatorScanner heavies(node_, view_);
    heavies.Open(ctx);
    while (const Tuple* h = heavies.Next()) {
      // The grounding contributes only when the gated join view has the
      // key: V(h) ≠ 0 guarantees every child has matching tuples.
      if (node_->storage->MultiplicityView(*h, view_) == 0) continue;
      buckets_.push_back(std::make_unique<BucketState>(node_, *h, view_));
    }
  }

  bool Next(Tuple* emit, Mult* mult) override {
    bool have = false;
    Tuple t;
    Mult ignored = 0;
    for (auto& bucket : buckets_) {
      if (!have) {
        have = bucket->iter.Next(&t, &ignored);  // drain this level
      } else if (LookupGrounded(node_, bucket->row, t, view_) != 0) {
        // The prefix tuple also occurs in this bucket: emit this bucket's
        // next tuple instead. It always exists (Durand–Strozecki: the
        // number of such replacements is bounded by the bucket size).
        const bool ok = bucket->iter.Next(&t, &ignored);
        IVME_CHECK_MSG(ok, "union bucket exhausted during replacement");
      }
    }
    if (!have) return false;
    Mult m = 0;
    for (auto& bucket : buckets_) {
      m += LookupGrounded(node_, bucket->row, t, view_);
    }
    *emit = t;
    *mult = m;
    return true;
  }

 private:
  struct BucketState {
    Tuple row;
    RowProductIter iter;

    BucketState(const ViewNode* node, const Tuple& h, const ReadView& view)
        : row(h), iter(node, view) {
      iter.Open(row);
    }
  };

  const ViewNode* node_;
  ReadView view_;
  std::vector<std::unique_ptr<BucketState>> buckets_;
};

}  // namespace

std::unique_ptr<Cursor> MakeCursor(const ViewNode* node, const ReadView& view) {
  switch (node->enum_mode) {
    case EnumMode::kCovering:
      return std::make_unique<CoveringCursor>(node, view);
    case EnumMode::kProduct:
      return std::make_unique<ProductCursor>(node, view);
    case EnumMode::kUnion:
      return std::make_unique<UnionCursor>(node, view);
  }
  IVME_UNREACHABLE("unknown enum mode");
}

std::unique_ptr<Cursor> MakeCursor(const ViewNode* node, Epoch epoch) {
  return MakeCursor(node, ReadView{epoch, ReadMode::kVersioned});
}

Mult LookupGrounded(const ViewNode* node, const Tuple& row, const Tuple& t,
                    const ReadView& view) {
  ++LocalCounters().enum_steps;
  if (node->storage->MultiplicityView(row, view) == 0) return 0;
  Mult m = 1;
  for (size_t i = 0; i < node->children.size(); ++i) {
    const ViewNode* child = node->children[i].get();
    if (child->IsIndicator()) continue;
    const Tuple slice = ProjectTuple(t, node->child_emit_slices[i]);
    const Mult cm = LookupTree(child, row, slice, view);
    if (cm == 0) return 0;
    m *= cm;
  }
  return m;
}

Mult LookupGrounded(const ViewNode* node, const Tuple& row, const Tuple& t,
                    Epoch epoch) {
  return LookupGrounded(node, row, t, ReadView{epoch, ReadMode::kVersioned});
}

Mult LookupTree(const ViewNode* node, const Tuple& ctx, const Tuple& t,
                const ReadView& view) {
  switch (node->enum_mode) {
    case EnumMode::kCovering: {
      Tuple row;
      row.Reserve(node->schema.size());
      for (const auto& src : node->lookup_row_sources) {
        row.PushBack(src.child == -1 ? ctx[static_cast<size_t>(src.pos)]
                                     : t[static_cast<size_t>(src.pos)]);
      }
      return node->storage->MultiplicityView(row, view);
    }
    case EnumMode::kProduct: {
      Tuple row;
      row.Reserve(node->schema.size());
      for (const auto& src : node->lookup_row_sources) {
        row.PushBack(src.child == -1 ? ctx[static_cast<size_t>(src.pos)]
                                     : t[static_cast<size_t>(src.pos)]);
      }
      return LookupGrounded(node, row, t, view);
    }
    case EnumMode::kUnion: {
      IndicatorScanner heavies(node, view);
      heavies.Open(ctx);
      Mult m = 0;
      while (const Tuple* h = heavies.Next()) {
        m += LookupGrounded(node, *h, t, view);
      }
      return m;
    }
  }
  IVME_UNREACHABLE("unknown enum mode");
}

Mult LookupTree(const ViewNode* node, const Tuple& ctx, const Tuple& t,
                Epoch epoch) {
  return LookupTree(node, ctx, t, ReadView{epoch, ReadMode::kVersioned});
}

}  // namespace ivme
