// A small fixed-size worker pool for shard-parallel maintenance. The only
// entry point is a barrier: Run() executes a set of independent tasks and
// returns when all of them have finished, so callers never observe a
// half-applied fan-out. The completion handshake (mutex + condition
// variable) orders everything the workers wrote — shard state, thread-local
// cost counters — before Run() returns on the caller. A task that throws
// does not take the process down: the exception is captured on the worker
// and the first one rethrown from Run() after the barrier.
#ifndef IVME_COMMON_THREAD_POOL_H_
#define IVME_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ivme {

class ThreadPool {
 public:
  /// A pool with `num_threads` persistent workers. 0 or 1 creates no worker
  /// threads at all: Run() then executes tasks inline on the calling thread,
  /// which keeps single-core machines and single-shard engines free of
  /// wakeup latency and context switches.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Executes every task and blocks until the last one finishes. Tasks must
  /// be independent (they run concurrently in unspecified order) and must
  /// not call Run() on the same pool. Empty tasks are skipped.
  ///
  /// Exceptions: a throwing task never escapes its worker thread (which
  /// would std::terminate the process). Every task still runs to the
  /// barrier; the FIRST captured exception is rethrown here on the calling
  /// thread, later ones are dropped. The pool stays usable afterwards. In
  /// inline mode an exception propagates directly (nothing after the
  /// throwing task runs) — the caller sees a throw from Run() either way.
  void Run(const std::vector<std::function<void()>>& tasks);

  /// Worker threads backing the pool (0 = inline execution).
  size_t num_threads() const { return workers_.size(); }

  /// Default worker count for `num_shards` shards on this machine:
  /// min(num_shards, hardware_concurrency), and 0 (inline) when that is 1.
  static size_t DefaultThreads(size_t num_shards);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable batch_done_;
  std::vector<const std::function<void()>*> queue_;  ///< tasks of the active Run
  size_t next_task_ = 0;     ///< queue_ index handed out next
  size_t in_flight_ = 0;     ///< queued + executing tasks of the active Run
  std::exception_ptr first_error_;  ///< first exception of the active Run
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace ivme

#endif  // IVME_COMMON_THREAD_POOL_H_
