// A small fixed-size worker pool for shard-parallel maintenance and
// shard-parallel enumeration. The only entry point is a barrier: Run()
// executes a set of independent tasks and returns when all of them have
// finished, so callers never observe a half-applied fan-out. The completion
// handshake (mutex + condition variable) orders everything the workers
// wrote — shard state, thread-local cost counters, per-shard row buffers —
// before Run() returns on the caller. A task that throws does not take the
// process down: the exception is captured and the first one rethrown from
// Run() after the barrier.
//
// Run() is safe to call from MULTIPLE threads at once and re-entrantly
// from inside a task: each call owns a private batch descriptor on its own
// stack, tasks carry a pointer to their batch, and the calling thread
// participates in executing its own queued tasks instead of blocking. That
// participation is the progress guarantee — even if every worker is busy
// with other batches (or this call *is* running on a worker), the caller
// drains its own batch itself, so no Run() can deadlock waiting for pool
// capacity.
#ifndef IVME_COMMON_THREAD_POOL_H_
#define IVME_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace ivme {

class ThreadPool {
 public:
  /// A pool with `num_threads` persistent workers. 0 or 1 creates no worker
  /// threads at all: Run() then executes tasks inline on the calling thread,
  /// which keeps single-core machines and single-shard engines free of
  /// wakeup latency and context switches.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Executes every task and blocks until the last one finishes. Tasks of
  /// one call must be independent (they run concurrently in unspecified
  /// order). Empty tasks are skipped. Concurrent Run() calls from different
  /// threads — e.g. parallel readers enumerating while the writer fans out
  /// a batch — interleave safely; their tasks share the workers.
  ///
  /// Exceptions: a throwing task never escapes its worker thread (which
  /// would std::terminate the process). Every task still runs to the
  /// barrier; the FIRST captured exception of this batch is rethrown here
  /// on the calling thread, later ones are dropped. The pool stays usable
  /// afterwards. In inline mode an exception propagates directly (nothing
  /// after the throwing task runs) — the caller sees a throw from Run()
  /// either way.
  void Run(const std::vector<std::function<void()>>& tasks);

  /// Worker threads backing the pool (0 = inline execution).
  size_t num_threads() const { return workers_.size(); }

  /// Default worker count for `num_shards` shards on this machine:
  /// min(num_shards, hardware_concurrency), and 0 (inline) when that is 1.
  static size_t DefaultThreads(size_t num_shards);

 private:
  /// One Run() call's barrier state, allocated on the caller's stack —
  /// guarded by mu_ like everything else here.
  struct Batch {
    size_t remaining = 0;  ///< tasks queued or executing
    std::exception_ptr first_error;
  };

  void WorkerLoop();
  /// Runs `task` outside the lock, then records completion into `batch`.
  /// Returns with the lock re-held.
  void RunOne(std::unique_lock<std::mutex>& lock, const std::function<void()>& task,
              Batch* batch);

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable batch_done_;
  /// Pending tasks across all active Run() calls, each tagged with its
  /// batch. FIFO across batches; callers prefer their own entries.
  std::deque<std::pair<const std::function<void()>*, Batch*>> queue_;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace ivme

#endif  // IVME_COMMON_THREAD_POOL_H_
