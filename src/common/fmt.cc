#include "src/common/fmt.h"

#include <cstdio>

namespace ivme {

std::string JoinStrings(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string WithThousands(long long value) {
  std::string digits = std::to_string(value < 0 ? -value : value);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (value < 0) out.push_back('-');
  return std::string(out.rbegin(), out.rend());
}

std::string DoubleToString(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

}  // namespace ivme
