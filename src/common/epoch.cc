#include "src/common/epoch.h"

#include <algorithm>

#include "src/common/check.h"

namespace ivme {

Epoch EpochManager::Pin() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return !exclusive_ && !disabled_; });
  // Read published under the lock so BeginExclusive's drain-wait cannot
  // miss a pin that raced with it.
  const Epoch e = published_.load(std::memory_order_acquire);
  ++pins_[e];
  return e;
}

void EpochManager::Unpin(Epoch epoch) {
  bool drained = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = pins_.find(epoch);
    IVME_CHECK_MSG(it != pins_.end(), "unpin of an epoch with no active pin");
    if (--it->second == 0) {
      pins_.erase(it);
      drained = pins_.empty();
    }
  }
  if (drained) cv_.notify_all();
}

Epoch EpochManager::PinFloor() const {
  const Epoch p = published_.load(std::memory_order_acquire);
  std::lock_guard<std::mutex> lock(mu_);
  if (pins_.empty()) return p;
  return std::min(p, pins_.begin()->first);
}

size_t EpochManager::ActivePins() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [epoch, count] : pins_) n += count;
  return n;
}

std::vector<Epoch> EpochManager::KeepEpochs() const {
  const Epoch p = published_.load(std::memory_order_acquire);
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Epoch> keeps;
  keeps.reserve(pins_.size() + 1);
  for (const auto& [epoch, count] : pins_) keeps.push_back(epoch);
  if (keeps.empty() || keeps.back() < p) keeps.push_back(p);
  return keeps;  // pins_ is an ordered map, so keeps is sorted + distinct
}

void EpochManager::BeginExclusive() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return !exclusive_; });
  exclusive_ = true;
  cv_.wait(lock, [this] { return pins_.empty(); });
}

void EpochManager::EndExclusive() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    exclusive_ = false;
  }
  cv_.notify_all();
}

void EpochManager::Disable() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return !exclusive_; });
  disabled_ = true;
  cv_.wait(lock, [this] { return pins_.empty(); });
}

void EpochManager::Enable() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    disabled_ = false;
  }
  cv_.notify_all();
}

bool EpochManager::disabled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return disabled_;
}

bool EpochManager::TryPin(Epoch* epoch) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return !exclusive_; });
  if (disabled_) return false;
  const Epoch e = published_.load(std::memory_order_acquire);
  ++pins_[e];
  *epoch = e;
  return true;
}

void RetireLog::Retire(Epoch death, Action unlink, Action free_fn, void* owner,
                       void* object) {
  IVME_CHECK_MSG(pending_.empty() || pending_.back().epoch <= death,
                 "retire epochs must be non-decreasing");
  pending_.push_back(Item{death, unlink, free_fn, owner, object});
}

void RetireLog::AddLimbo(Epoch working, Action free_fn, void* owner,
                         void* object) {
  IVME_CHECK_MSG(limbo_.empty() || limbo_.back().epoch <= working,
                 "limbo stamps must be non-decreasing");
  limbo_.push_back(Item{working, nullptr, free_fn, owner, object});
}

void RetireLog::Reclaim(Epoch floor, Epoch working) {
  // Phase 2 first: limbo items were unlinked in a *previous* Reclaim (or
  // pruned mid-batch), so processing them before appending this round's
  // phase-1 output keeps each item's two grace periods distinct.
  while (!limbo_.empty() && limbo_.front().epoch <= floor &&
         limbo_.front().epoch < working) {
    Item item = limbo_.front();
    limbo_.pop_front();
    item.free_fn(item.owner, item.object);
  }
  while (!pending_.empty() && pending_.front().epoch <= floor) {
    Item item = pending_.front();
    pending_.pop_front();
    if (item.unlink != nullptr) item.unlink(item.owner, item.object);
    limbo_.push_back(Item{working, nullptr, item.free_fn, item.owner,
                          item.object});
  }
}

void RetireLog::Drain() {
  while (!pending_.empty()) {
    Item item = pending_.front();
    pending_.pop_front();
    if (item.unlink != nullptr) item.unlink(item.owner, item.object);
    limbo_.push_back(item);
  }
  while (!limbo_.empty()) {
    Item item = limbo_.front();
    limbo_.pop_front();
    item.free_fn(item.owner, item.object);
  }
}

}  // namespace ivme
