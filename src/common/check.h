// Fatal assertion macros, used for internal invariants (the library does not
// use exceptions, following the Google C++ style guide).
#ifndef IVME_COMMON_CHECK_H_
#define IVME_COMMON_CHECK_H_

#include <sstream>
#include <string>

namespace ivme {
namespace internal {

// Prints the failure message to stderr and aborts. Marked noreturn so that
// CHECK macros can be used on paths the compiler must treat as terminating.
[[noreturn]] void CheckFailed(const char* file, int line, const std::string& message);

}  // namespace internal
}  // namespace ivme

/// Aborts with a diagnostic when `cond` does not hold. Always enabled; the
/// checks guard data-structure invariants whose violation would silently
/// corrupt query results.
#define IVME_CHECK(cond)                                                        \
  do {                                                                          \
    if (!(cond)) {                                                              \
      ::ivme::internal::CheckFailed(__FILE__, __LINE__,                         \
                                    "IVME_CHECK failed: " #cond);               \
    }                                                                           \
  } while (0)

/// Like IVME_CHECK but appends a formatted message built with stream syntax:
/// IVME_CHECK_MSG(x > 0, "x was " << x).
#define IVME_CHECK_MSG(cond, msg)                                               \
  do {                                                                          \
    if (!(cond)) {                                                              \
      std::ostringstream ivme_check_stream_;                                    \
      ivme_check_stream_ << "IVME_CHECK failed: " #cond << " — " << msg;        \
      ::ivme::internal::CheckFailed(__FILE__, __LINE__,                         \
                                    ivme_check_stream_.str());                  \
    }                                                                           \
  } while (0)

/// Marks unreachable code paths.
#define IVME_UNREACHABLE(msg)                                                   \
  ::ivme::internal::CheckFailed(__FILE__, __LINE__,                             \
                                std::string("unreachable: ") + (msg))

#endif  // IVME_COMMON_CHECK_H_
