#include "src/common/rng.h"

#include "src/common/check.h"
#include "src/common/hash.h"

namespace ivme {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  // Seed the four lanes through splitmix64 as recommended by the xoshiro
  // authors; guarantees a non-zero state.
  uint64_t x = seed;
  for (auto& lane : s_) {
    x += 0x9e3779b97f4a7c15ULL;
    lane = HashMix64(x);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Below(uint64_t bound) {
  IVME_CHECK(bound >= 1);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  while (true) {
    const uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::Range(int64_t lo, int64_t hi) {
  IVME_CHECK(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(Below(span));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Chance(double p) { return NextDouble() < p; }

size_t Rng::Weighted(const std::vector<double>& weights) {
  IVME_CHECK(!weights.empty());
  double total = 0;
  for (double w : weights) total += w;
  double pick = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    pick -= weights[i];
    if (pick <= 0) return i;
  }
  return weights.size() - 1;
}

}  // namespace ivme
