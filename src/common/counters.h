// Global operation counters for machine-independent cost accounting. The
// benches fit the paper's complexity exponents on these counters (wall
// clock is reported alongside but suffers cache-regime drift: the per
// -operation cost of a hash probe grows with the working set, which skews
// log-log slopes on small ladders).
#ifndef IVME_COMMON_COUNTERS_H_
#define IVME_COMMON_COUNTERS_H_

#include <cstdint>

namespace ivme {

struct CostCounters {
  /// Materialization work: child tuples aggregated/scanned plus output rows
  /// accumulated (the InsideOut + join steps of Proposition 21).
  uint64_t materialize_steps = 0;

  /// Maintenance work: delta rows emitted and sibling index links visited
  /// (the Figure 17/19 propagation).
  uint64_t delta_steps = 0;

  /// Enumeration work: row-scan advances, grounding lookups, and union
  /// bucket probes (the Figures 13-16 machinery).
  uint64_t enum_steps = 0;
};

/// The process-wide counters (single-threaded engine).
CostCounters& GlobalCounters();

/// Zeroes all counters.
void ResetCounters();

}  // namespace ivme

#endif  // IVME_COMMON_COUNTERS_H_
