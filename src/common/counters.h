// Operation counters for machine-independent cost accounting. The benches
// fit the paper's complexity exponents on these counters (wall clock is
// reported alongside but suffers cache-regime drift: the per-operation cost
// of a hash probe grows with the working set, which skews log-log slopes on
// small ladders).
//
// Threading model: every thread increments its own thread-local counters
// (LocalCounters()), so the hot maintenance/enumeration paths stay free of
// atomics and shared cache lines even when shard engines propagate deltas
// concurrently. AggregateCounters() sums every thread's counters (plus the
// totals of threads that have exited) under a registry lock. Aggregation
// and reset are meant for quiescent points — after a ThreadPool::Run or
// ApplyBatch has returned — where the pool's completion handshake orders
// the workers' increments before the reader.
#ifndef IVME_COMMON_COUNTERS_H_
#define IVME_COMMON_COUNTERS_H_

#include <cstdint>

namespace ivme {

struct CostCounters {
  /// Materialization work: child tuples aggregated/scanned plus output rows
  /// accumulated (the InsideOut + join steps of Proposition 21).
  uint64_t materialize_steps = 0;

  /// Maintenance work: delta rows emitted and sibling index links visited
  /// (the Figure 17/19 propagation).
  uint64_t delta_steps = 0;

  /// Enumeration work: row-scan advances, grounding lookups, and union
  /// bucket probes (the Figures 13-16 machinery).
  uint64_t enum_steps = 0;

  /// Canonical base-storage writes: net-delta entries applied to a shared
  /// RelationStore relation. A catalog with Q registered queries performs
  /// each batch's base writes exactly once, so this counter is independent
  /// of Q (per-query maintenance state — light parts, views, self-join
  /// mirror occurrences — is not counted here).
  uint64_t base_writes = 0;

  /// Read sessions opened (one per ResultEnumerator / grounded lookup
  /// session). Every read lands in exactly one of the two lane counters
  /// below, so reads == read_fast_lane + read_versioned.
  uint64_t reads = 0;

  /// Read sessions that resolved a fast lane (ReadMode::kDirect or
  /// kFastPin): version-chain walks and zombie filters skipped.
  uint64_t read_fast_lane = 0;

  /// Read sessions that ran the full snapshot filtering path
  /// (ReadMode::kVersioned).
  uint64_t read_versioned = 0;

  CostCounters& operator+=(const CostCounters& other) {
    materialize_steps += other.materialize_steps;
    delta_steps += other.delta_steps;
    enum_steps += other.enum_steps;
    base_writes += other.base_writes;
    reads += other.reads;
    read_fast_lane += other.read_fast_lane;
    read_versioned += other.read_versioned;
    return *this;
  }
};

/// The calling thread's counters (registered with the aggregate on first
/// use). Hot paths increment these without synchronization.
CostCounters& LocalCounters();

/// Sums the counters of every thread, live or exited, under the registry
/// lock. Call at a quiescent point: concurrent increments on other threads
/// are not ordered against the read.
CostCounters AggregateCounters();

/// Zeroes the counters of every thread. Same quiescence requirement as
/// AggregateCounters().
void ResetCounters();

}  // namespace ivme

#endif  // IVME_COMMON_COUNTERS_H_
