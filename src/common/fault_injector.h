// Crash-point fault injection for the durability stack. The WAL, checkpoint
// writer, and durable catalog call ShouldCrash(point) at every interesting
// moment (after a WAL append but before the apply, mid-checkpoint, mid
// truncate, ...); an armed injector fires at the configured traversal and
// the caller then behaves as if the process died at that instant — all
// later file writes are suppressed, so the on-disk state is exactly what a
// real crash would leave behind. The recovery fuzz test arms a random point
// per run and differential-tests Open() against a never-crashed reference;
// IVME_FAULT_POINT / IVME_FAULT_KILL make the same points drivable from the
// environment (with kill mode the process genuinely _exits at the point).
#ifndef IVME_COMMON_FAULT_INJECTOR_H_
#define IVME_COMMON_FAULT_INJECTOR_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace ivme {

/// Registry of named crash points with one armed trigger.
///
/// Thread-safe: the background checkpoint thread traverses points
/// concurrently with the foreground WAL appends.
class FaultInjector {
 public:
  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Process-wide instance used when no injector is passed explicitly.
  static FaultInjector& Global();

  /// Disarms and clears the crashed flag and all hit counts.
  void Reset();

  /// Arms `point` to fire on its `hit_number`-th traversal (1-based).
  void Arm(const std::string& point, uint64_t hit_number = 1);

  /// Arms from IVME_FAULT_POINT="point[:hit]"; IVME_FAULT_KILL=1 upgrades a
  /// firing point to a real _exit(42) (for out-of-process crash testing).
  void ArmFromEnv();

  /// Called by durability code at a crash point. Returns true when the
  /// armed point fires now, or already fired (a dead process stays dead —
  /// every later point "crashes" too, so file writes stay suppressed).
  bool ShouldCrash(const std::string& point);

  /// True once any armed point fired.
  bool crashed() const;

  /// The point that fired ("" when none did).
  std::string crash_point() const;

  /// Total traversals of `point` so far (fired or not).
  uint64_t HitCount(const std::string& point) const;

  /// Every point name traversed since the last Reset, in first-seen order
  /// (lets the fuzzer enumerate the crash surface of a workload).
  std::vector<std::string> SeenPoints() const;

 private:
  struct Count {
    std::string point;
    uint64_t hits = 0;
  };

  Count* FindCount(const std::string& point);  // requires mu_ held

  mutable std::mutex mu_;
  std::vector<Count> counts_;
  std::string armed_point_;
  uint64_t armed_hit_ = 0;  ///< 0 = disarmed
  bool kill_ = false;
  bool crashed_ = false;
  std::string crash_point_;
};

}  // namespace ivme

#endif  // IVME_COMMON_FAULT_INJECTOR_H_
