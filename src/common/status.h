// Structured error reporting for the durability layer and other paths that
// must surface failures (corrupt files, bad user input) instead of aborting
// the process via IVME_CHECK. The library does not use exceptions; fallible
// operations return a Status and leave outputs untouched on error.
#ifndef IVME_COMMON_STATUS_H_
#define IVME_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace ivme {

/// Outcome of a fallible operation: OK, or an error with a message. Recovery
/// and shell code branch on ok() and report message(); internal invariants
/// whose violation means memory corruption keep using IVME_CHECK.
class Status {
 public:
  Status() = default;  ///< OK

  static Status Ok() { return Status(); }
  static Status Error(std::string message) { return Status(std::move(message)); }

  bool ok() const { return ok_; }
  const std::string& message() const { return message_; }

 private:
  explicit Status(std::string message) : ok_(false), message_(std::move(message)) {}

  bool ok_ = true;
  std::string message_;
};

}  // namespace ivme

#endif  // IVME_COMMON_STATUS_H_
