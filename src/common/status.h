// Structured error reporting for the durability layer and other paths that
// must surface failures (corrupt files, bad user input) instead of aborting
// the process via IVME_CHECK. The library does not use exceptions; fallible
// operations return a Status and leave outputs untouched on error.
#ifndef IVME_COMMON_STATUS_H_
#define IVME_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace ivme {

/// Outcome of a fallible operation: OK, or an error with a message. Recovery
/// and shell code branch on ok() and report message(); internal invariants
/// whose violation means memory corruption keep using IVME_CHECK.
///
/// Errors come in two kinds. Error() marks structural misuse (unknown
/// relation, wrong arity, catalog not live) — the caller broke the API
/// contract. Rejected() marks data-plane refusals that are part of normal
/// operation (write to a static relation, delete from an insert-only one,
/// below-zero multiplicity): the request was well-formed but the declared
/// integrity rules forbid it, and the store is unchanged. Both are !ok().
class Status {
 public:
  Status() = default;  ///< OK

  static Status Ok() { return Status(); }
  static Status Error(std::string message) {
    return Status(std::move(message), /*rejected=*/false);
  }
  static Status Rejected(std::string message) {
    return Status(std::move(message), /*rejected=*/true);
  }

  bool ok() const { return ok_; }
  bool rejected() const { return rejected_; }
  const std::string& message() const { return message_; }

 private:
  Status(std::string message, bool rejected)
      : ok_(false), rejected_(rejected), message_(std::move(message)) {}

  bool ok_ = true;
  bool rejected_ = false;
  std::string message_;
};

}  // namespace ivme

#endif  // IVME_COMMON_STATUS_H_
