// Deterministic pseudo-random number generation for workload generators and
// property tests. A thin wrapper over xoshiro256** so that results do not
// depend on the standard library's distribution implementations.
#ifndef IVME_COMMON_RNG_H_
#define IVME_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ivme {

/// Deterministic 64-bit PRNG (xoshiro256**), seedable and portable.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed5eed5eed5eedULL);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound) for bound >= 1.
  uint64_t Below(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli trial with success probability p.
  bool Chance(double p);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  size_t Weighted(const std::vector<double>& weights);

 private:
  uint64_t s_[4];
};

}  // namespace ivme

#endif  // IVME_COMMON_RNG_H_
