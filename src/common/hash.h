// 64-bit hashing utilities used by the storage layer. The mixers are
// variants of splitmix64/murmur finalizers: cheap, well distributed, and
// deterministic across runs (useful for reproducible benchmarks).
#ifndef IVME_COMMON_HASH_H_
#define IVME_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>

namespace ivme {

/// Mixes a 64-bit value (splitmix64 finalizer).
inline uint64_t HashMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combines an accumulated hash with the hash of the next component.
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  // boost::hash_combine-style with a 64-bit golden-ratio constant.
  seed ^= HashMix64(value) + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4);
  return seed;
}

/// Hashes a span of 64-bit values.
inline uint64_t HashSpan64(const int64_t* data, size_t n) {
  uint64_t h = 0x51ed2701a8e3c2f4ULL ^ (static_cast<uint64_t>(n) << 1);
  for (size_t i = 0; i < n; ++i) {
    h = HashCombine(h, static_cast<uint64_t>(data[i]));
  }
  return h;
}

}  // namespace ivme

#endif  // IVME_COMMON_HASH_H_
