#include "src/common/counters.h"

namespace ivme {

namespace {
CostCounters g_counters;
}  // namespace

CostCounters& GlobalCounters() { return g_counters; }

void ResetCounters() { g_counters = CostCounters(); }

}  // namespace ivme
