#include "src/common/counters.h"

#include <algorithm>
#include <mutex>
#include <vector>

namespace ivme {

namespace {

// Registry of every live thread's counters plus the folded totals of exited
// threads (a pool worker's steps must survive the worker). Meyers singleton:
// the registry outlives the thread-local slots of threads that exit before
// static destruction, and the main thread destroys its slot before statics.
struct Registry {
  std::mutex mu;
  std::vector<CostCounters*> live;
  CostCounters retired;
};

Registry& GetRegistry() {
  static Registry registry;
  return registry;
}

struct ThreadSlot {
  CostCounters counters;

  ThreadSlot() {
    Registry& registry = GetRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    registry.live.push_back(&counters);
  }

  ~ThreadSlot() {
    Registry& registry = GetRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    registry.retired += counters;
    registry.live.erase(std::find(registry.live.begin(), registry.live.end(), &counters));
  }
};

thread_local ThreadSlot t_slot;

}  // namespace

CostCounters& LocalCounters() { return t_slot.counters; }

CostCounters AggregateCounters() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  CostCounters total = registry.retired;
  for (const CostCounters* counters : registry.live) total += *counters;
  return total;
}

void ResetCounters() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.retired = CostCounters();
  for (CostCounters* counters : registry.live) {
    *counters = CostCounters();
  }
}

}  // namespace ivme
