#include "src/common/latency_histogram.h"

#include <cmath>
#include <cstdio>

namespace ivme {

namespace {

/// Bucket index of a duration: floor(log2(nanos)), i.e. the position of the
/// highest set bit; 0ns shares bucket 0 with 1ns.
size_t BucketOf(uint64_t nanos) {
  size_t bucket = 0;
  while (nanos > 1) {
    nanos >>= 1;
    ++bucket;
  }
  return bucket;
}

std::string FormatDuration(double seconds) {
  char buf[32];
  if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1fus", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2fms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", seconds);
  }
  return buf;
}

}  // namespace

void LatencyHistogram::RecordNanos(uint64_t nanos) {
  ++buckets_[BucketOf(nanos)];
  ++count_;
  sum_nanos_ += nanos;
  if (nanos < min_nanos_) min_nanos_ = nanos;
  if (nanos > max_nanos_) max_nanos_ = nanos;
}

void LatencyHistogram::RecordSeconds(double seconds) {
  if (seconds < 0) seconds = 0;
  RecordNanos(static_cast<uint64_t>(seconds * 1e9));
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (size_t i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_nanos_ += other.sum_nanos_;
  if (other.min_nanos_ < min_nanos_) min_nanos_ = other.min_nanos_;
  if (other.max_nanos_ > max_nanos_) max_nanos_ = other.max_nanos_;
}

void LatencyHistogram::Reset() { *this = LatencyHistogram(); }

double LatencyHistogram::MaxSeconds() const { return count_ == 0 ? 0 : max_nanos_ * 1e-9; }

double LatencyHistogram::MinSeconds() const { return count_ == 0 ? 0 : min_nanos_ * 1e-9; }

double LatencyHistogram::MeanSeconds() const {
  return count_ == 0 ? 0 : sum_nanos_ * 1e-9 / static_cast<double>(count_);
}

double LatencyHistogram::TotalSeconds() const { return sum_nanos_ * 1e-9; }

double LatencyHistogram::PercentileSeconds(double q) const {
  if (count_ == 0) return 0;
  if (q <= 0) return min_nanos_ * 1e-9;
  if (q >= 1) return max_nanos_ * 1e-9;  // the endpoints are tracked exactly
  // Rank of the q-th recording (1-based), then the bucket holding it.
  const double rank = q * static_cast<double>(count_ - 1) + 1.0;
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    const double first = static_cast<double>(seen) + 1.0;
    seen += buckets_[i];
    if (rank > static_cast<double>(seen)) continue;
    // Linear interpolation inside [2^i, 2^{i+1}) by intra-bucket position.
    const double lo = i == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(i));
    const double hi = std::ldexp(1.0, static_cast<int>(i) + 1);
    const double frac =
        buckets_[i] > 1 ? (rank - first) / static_cast<double>(buckets_[i] - 1) : 0.0;
    double nanos = lo + (hi - lo) * frac;
    // Exact extrema bound the estimate (so q=1 reports the true max).
    if (nanos > static_cast<double>(max_nanos_)) nanos = static_cast<double>(max_nanos_);
    if (nanos < static_cast<double>(min_nanos_)) nanos = static_cast<double>(min_nanos_);
    return nanos * 1e-9;
  }
  return max_nanos_ * 1e-9;
}

std::string LatencyHistogram::Summary() const {
  if (count_ == 0) return "count=0";
  return "count=" + std::to_string(count_) + " p50=" + FormatDuration(PercentileSeconds(0.5)) +
         " p99=" + FormatDuration(PercentileSeconds(0.99)) +
         " max=" + FormatDuration(MaxSeconds());
}

}  // namespace ivme
