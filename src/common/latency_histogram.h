// Fixed-bucket log-scale latency histogram for tail-latency accounting on
// the maintenance hot paths. Bucket i covers durations in [2^i, 2^{i+1})
// nanoseconds, so the whole range from <1ns to ~18s fits in 64 counters
// with a constant-time Record and no allocation — cheap enough to time
// every ApplyUpdate/ApplyBatch. Histograms merge bucketwise (like
// CostCounters aggregate across threads), which is how the sharded layers
// combine per-shard recordings after a ThreadPool barrier.
//
// Threading: a histogram is NOT internally synchronized. Each owner (a
// QueryCatalog, a sharded facade) records on the thread that drives it;
// cross-thread merges must happen at quiescent points — after a
// ThreadPool::Run has returned, the completion handshake orders the
// workers' recordings before the reader.
#ifndef IVME_COMMON_LATENCY_HISTOGRAM_H_
#define IVME_COMMON_LATENCY_HISTOGRAM_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>

namespace ivme {

class LatencyHistogram {
 public:
  static constexpr size_t kNumBuckets = 64;

  /// Records one duration. Sub-nanosecond (and zero) durations land in
  /// bucket 0.
  void RecordNanos(uint64_t nanos);

  /// Convenience for callers timing with double seconds (bench::Timer).
  void RecordSeconds(double seconds);

  /// Adds `other`'s buckets, count, and extrema into this histogram.
  void Merge(const LatencyHistogram& other);

  void Reset();

  uint64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// Exact extrema and mean over everything recorded (not bucket-quantized).
  double MaxSeconds() const;
  double MinSeconds() const;
  double MeanSeconds() const;
  double TotalSeconds() const;

  /// The q-quantile (q in [0, 1]) estimated from the buckets: finds the
  /// bucket holding the q-th recording and interpolates linearly inside it.
  /// Exact extrema clamp the estimate, so Percentile(1) == MaxSeconds().
  /// Returns 0 on an empty histogram.
  double PercentileSeconds(double q) const;

  /// "count=N p50=… p99=… max=…" with µs/ms/s units picked per value;
  /// "count=0" when nothing was recorded. For shell/bench display.
  std::string Summary() const;

 private:
  uint64_t buckets_[kNumBuckets] = {};
  uint64_t count_ = 0;
  uint64_t sum_nanos_ = 0;
  uint64_t min_nanos_ = UINT64_MAX;
  uint64_t max_nanos_ = 0;
};

/// RAII: records the scope's wall-clock duration into a histogram on exit
/// (the idiom used around ApplyUpdate/ApplyBatch on every serving layer).
class ScopedLatencyTimer {
 public:
  explicit ScopedLatencyTimer(LatencyHistogram* hist)
      : hist_(hist), start_(std::chrono::steady_clock::now()) {}

  ScopedLatencyTimer(const ScopedLatencyTimer&) = delete;
  ScopedLatencyTimer& operator=(const ScopedLatencyTimer&) = delete;

  ~ScopedLatencyTimer() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    hist_->RecordNanos(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()));
  }

 private:
  LatencyHistogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace ivme

#endif  // IVME_COMMON_LATENCY_HISTOGRAM_H_
