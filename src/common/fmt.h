// Small string-formatting helpers shared by diagnostics, benches, and tests.
#ifndef IVME_COMMON_FMT_H_
#define IVME_COMMON_FMT_H_

#include <string>
#include <vector>

namespace ivme {

/// Joins the string forms of a container's elements with a separator.
std::string JoinStrings(const std::vector<std::string>& parts, const std::string& sep);

/// Human-friendly number with thousands separators, e.g. 1234567 -> "1,234,567".
std::string WithThousands(long long value);

/// Fixed-precision double rendering (printf "%.*f").
std::string DoubleToString(double value, int precision);

}  // namespace ivme

#endif  // IVME_COMMON_FMT_H_
