#include "src/common/thread_pool.h"

#include <algorithm>

#include "src/common/check.h"

namespace ivme {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads <= 1) return;  // inline mode
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

size_t ThreadPool::DefaultThreads(size_t num_shards) {
  const size_t hw = std::thread::hardware_concurrency();
  const size_t threads = num_shards < hw ? num_shards : hw;
  return threads <= 1 ? 0 : threads;
}

void ThreadPool::RunOne(std::unique_lock<std::mutex>& lock,
                        const std::function<void()>& task, Batch* batch) {
  lock.unlock();
  std::exception_ptr error;
  try {
    task();
  } catch (...) {
    error = std::current_exception();
  }
  lock.lock();
  if (error != nullptr && batch->first_error == nullptr) {
    batch->first_error = std::move(error);
  }
  if (--batch->remaining == 0) batch_done_.notify_all();
}

void ThreadPool::Run(const std::vector<std::function<void()>>& tasks) {
  if (workers_.empty()) {
    for (const auto& task : tasks) {
      if (task) task();
    }
    return;
  }
  Batch batch;  // this call's barrier, alive on this stack until it drains
  std::unique_lock<std::mutex> lock(mu_);
  for (const auto& task : tasks) {
    if (!task) continue;
    queue_.emplace_back(&task, &batch);
    ++batch.remaining;
  }
  if (batch.remaining == 0) return;
  work_available_.notify_all();
  // Participate: run our own queued tasks instead of blocking, so this
  // batch makes progress even when every worker is busy elsewhere (or this
  // very call is executing on a worker thread). Once the workers have
  // claimed the rest, wait for them at the barrier.
  while (batch.remaining > 0) {
    auto it = std::find_if(queue_.begin(), queue_.end(),
                           [&batch](const auto& entry) { return entry.second == &batch; });
    if (it != queue_.end()) {
      const std::function<void()>* task = it->first;
      queue_.erase(it);
      RunOne(lock, *task, &batch);
    } else {
      batch_done_.wait(lock, [&batch] { return batch.remaining == 0; });
    }
  }
  // Rethrow the first task failure at the barrier, on the calling thread —
  // an exception escaping a worker would std::terminate the process.
  if (batch.first_error != nullptr) {
    std::rethrow_exception(batch.first_error);
  }
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_available_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
    if (shutdown_) return;
    auto [task, batch] = queue_.front();
    queue_.pop_front();
    RunOne(lock, *task, batch);
  }
}

}  // namespace ivme
