#include "src/common/thread_pool.h"

#include "src/common/check.h"

namespace ivme {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads <= 1) return;  // inline mode
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

size_t ThreadPool::DefaultThreads(size_t num_shards) {
  const size_t hw = std::thread::hardware_concurrency();
  const size_t threads = num_shards < hw ? num_shards : hw;
  return threads <= 1 ? 0 : threads;
}

void ThreadPool::Run(const std::vector<std::function<void()>>& tasks) {
  if (workers_.empty()) {
    for (const auto& task : tasks) {
      if (task) task();
    }
    return;
  }
  std::unique_lock<std::mutex> lock(mu_);
  IVME_CHECK_MSG(in_flight_ == 0, "ThreadPool::Run is not reentrant");
  queue_.clear();
  for (const auto& task : tasks) {
    if (task) queue_.push_back(&task);
  }
  if (queue_.empty()) return;
  next_task_ = 0;
  in_flight_ = queue_.size();
  first_error_ = nullptr;
  work_available_.notify_all();
  batch_done_.wait(lock, [this] { return in_flight_ == 0; });
  // Rethrow the first task failure at the barrier, on the calling thread —
  // an exception escaping a worker would std::terminate the process.
  if (first_error_ != nullptr) {
    std::exception_ptr error = std::move(first_error_);
    first_error_ = nullptr;
    std::rethrow_exception(error);
  }
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_available_.wait(lock, [this] { return shutdown_ || next_task_ < queue_.size(); });
    if (shutdown_) return;
    const std::function<void()>* task = queue_[next_task_++];
    lock.unlock();
    std::exception_ptr error;
    try {
      (*task)();
    } catch (...) {
      error = std::current_exception();
    }
    lock.lock();
    if (error != nullptr && first_error_ == nullptr) first_error_ = std::move(error);
    if (--in_flight_ == 0) batch_done_.notify_one();
  }
}

}  // namespace ivme
