#include "src/common/fault_injector.h"

#include <cstdlib>
#include <unistd.h>

namespace ivme {

FaultInjector& FaultInjector::Global() {
  // Armed from IVME_FAULT_POINT once, on first use: any binary running the
  // durability stack through the default injector is crash-drivable from
  // the environment without code changes.
  static FaultInjector* injector = [] {
    auto* created = new FaultInjector();
    created->ArmFromEnv();
    return created;
  }();
  return *injector;
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counts_.clear();
  armed_point_.clear();
  armed_hit_ = 0;
  kill_ = false;
  crashed_ = false;
  crash_point_.clear();
}

void FaultInjector::Arm(const std::string& point, uint64_t hit_number) {
  std::lock_guard<std::mutex> lock(mu_);
  armed_point_ = point;
  armed_hit_ = hit_number == 0 ? 1 : hit_number;
  crashed_ = false;
  crash_point_.clear();
}

void FaultInjector::ArmFromEnv() {
  const char* spec = std::getenv("IVME_FAULT_POINT");
  if (spec == nullptr || *spec == '\0') return;
  std::string point(spec);
  uint64_t hit = 1;
  const size_t colon = point.rfind(':');
  if (colon != std::string::npos) {
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(point.c_str() + colon + 1, &end, 10);
    if (end != point.c_str() + colon + 1 && *end == '\0' && parsed > 0) {
      hit = parsed;
      point.erase(colon);
    }
  }
  Arm(point, hit);
  const char* kill = std::getenv("IVME_FAULT_KILL");
  std::lock_guard<std::mutex> lock(mu_);
  kill_ = kill != nullptr && *kill != '\0' && *kill != '0';
}

FaultInjector::Count* FaultInjector::FindCount(const std::string& point) {
  for (auto& count : counts_) {
    if (count.point == point) return &count;
  }
  counts_.push_back(Count{point, 0});
  return &counts_.back();
}

bool FaultInjector::ShouldCrash(const std::string& point) {
  std::lock_guard<std::mutex> lock(mu_);
  ++FindCount(point)->hits;
  if (crashed_) return true;  // a dead process stays dead
  if (armed_hit_ == 0 || point != armed_point_) return false;
  if (FindCount(point)->hits != armed_hit_) return false;
  if (kill_) _exit(42);
  crashed_ = true;
  crash_point_ = point;
  return true;
}

bool FaultInjector::crashed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crashed_;
}

std::string FaultInjector::crash_point() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crash_point_;
}

uint64_t FaultInjector::HitCount(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& count : counts_) {
    if (count.point == point) return count.hits;
  }
  return 0;
}

std::vector<std::string> FaultInjector::SeenPoints() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> points;
  points.reserve(counts_.size());
  for (const auto& count : counts_) points.push_back(count.point);
  return points;
}

}  // namespace ivme
