// Epoch-based snapshot versioning and two-phase memory reclamation.
//
// The serving contract (ARCHITECTURE.md §9): a single writer domain (one
// shard's maintenance thread) mutates versioned structures while any number
// of reader threads enumerate a *published* snapshot. Epochs advance at
// batch boundaries:
//
//   - `published` P is the newest consistent snapshot; the writer mutates
//     the working epoch w = P + 1 and calls Publish() once the batch is
//     fully applied (all views consistent).
//   - A reader calls Pin() to fix a snapshot epoch e ≤ P and Unpin() when
//     its enumeration finishes. While pinned, every versioned structure can
//     answer "state as of e" exactly.
//   - Objects that become unreachable at epoch d (dead nodes, index links,
//     retired hash-table arrays, pruned multiplicity-version records) are
//     not freed; they are pushed onto the writer domain's RetireLog with
//     death epoch d.
//   - Between batches the writer calls RetireLog::Reclaim(floor, now) with
//     floor = min(active pins ∪ {P}). Reclamation is TWO-PHASE:
//       phase 1 (unlink): once floor ≥ d no reader can *start* observing
//         the object, so it is physically unlinked from probe/enumeration
//         structures and moved to the limbo list stamped with the current
//         working epoch;
//       phase 2 (free): a reader pinned at e' ≥ d may still be physically
//         *walking through* the object (liveness filters hide it logically
//         but not physically), so memory is only freed after a second
//         grace period — when floor has advanced past the unlink stamp.
//
// One EpochManager serves a whole catalog (all shards publish in lockstep
// at the facade's batch boundary); each shard owns a private RetireLog so
// retire/reclaim stays single-threaded per writer domain.
#ifndef IVME_COMMON_EPOCH_H_
#define IVME_COMMON_EPOCH_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <vector>

namespace ivme {

using Epoch = uint64_t;

/// Sentinel passed to as-of read APIs meaning "the live, unversioned
/// state" (writer-side reads; also the only mode when no EpochContext is
/// attached). Doubles as "not dead yet" for death-epoch fields.
inline constexpr Epoch kLiveEpoch = ~static_cast<Epoch>(0);

/// Tracks the published epoch and the set of reader pins.
///
/// Thread-safety: Publish is writer-only; Pin/Unpin may be called from any
/// thread; published() is wait-free. Pin/Unpin take a mutex — acceptable
/// because a pin brackets a whole enumeration, not a single probe.
class EpochManager {
 public:
  /// Newest consistent snapshot. Acquire-loads so a reader that pins e
  /// sees every store the writer made before publishing e.
  Epoch published() const { return published_.load(std::memory_order_acquire); }

  const std::atomic<Epoch>* published_ptr() const { return &published_; }

  /// Makes the working epoch visible as the new published snapshot.
  /// Caller must have finished every mutation of that epoch first.
  void Publish() { published_.fetch_add(1, std::memory_order_release); }

  /// Registers a reader at the current published epoch and returns it.
  /// Blocks while an exclusive (quiesce) section is active.
  Epoch Pin();

  /// Drops a pin previously returned by Pin().
  void Unpin(Epoch epoch);

  /// min(active pins ∪ {published}): no reader observes anything older.
  Epoch PinFloor() const;

  size_t ActivePins() const;

  /// Sorted distinct epochs that must stay answerable: every pinned epoch
  /// plus the published one. Used to prune multiplicity-version chains.
  std::vector<Epoch> KeepEpochs() const;

  /// Quiesce gate for structural operations (register/drop query, store
  /// teardown): blocks new pins and waits until every active pin drains.
  void BeginExclusive();
  void EndExclusive();

  /// Serving shutdown gate (DisableServing). Disable() refuses all future
  /// pins and waits for the active ones to drain; Enable() re-admits them.
  /// Unlike BeginExclusive, the disabled state is permanent until Enable():
  /// readers switch to TryPin and take the unversioned path when refused.
  void Disable();
  void Enable();
  bool disabled() const;

  /// Pin unless serving is disabled. Returns false (no pin taken) when
  /// disabled; the check happens under the pin mutex, so a successful
  /// TryPin is always observed by a subsequent Disable()'s drain-wait.
  bool TryPin(Epoch* epoch);

 private:
  std::atomic<Epoch> published_{0};
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<Epoch, size_t> pins_;  // epoch -> pin count
  bool exclusive_ = false;
  bool disabled_ = false;
};

/// RAII reader pin. Default-constructed = unpinned live access.
class ReadSnapshot {
 public:
  ReadSnapshot() = default;
  explicit ReadSnapshot(EpochManager* manager)
      : manager_(manager), epoch_(manager->Pin()) {}
  ~ReadSnapshot() { Release(); }

  ReadSnapshot(ReadSnapshot&& other) noexcept
      : manager_(other.manager_), epoch_(other.epoch_) {
    other.manager_ = nullptr;
    other.epoch_ = kLiveEpoch;
  }
  ReadSnapshot& operator=(ReadSnapshot&& other) noexcept {
    if (this != &other) {
      Release();
      manager_ = other.manager_;
      epoch_ = other.epoch_;
      other.manager_ = nullptr;
      other.epoch_ = kLiveEpoch;
    }
    return *this;
  }
  ReadSnapshot(const ReadSnapshot&) = delete;
  ReadSnapshot& operator=(const ReadSnapshot&) = delete;

  /// Pins unless serving is disabled (EpochManager::TryPin); returns an
  /// unpinned snapshot (pinned() == false, epoch() == kLiveEpoch) when
  /// refused. The caller may then read the live state directly ONLY if it
  /// knows no writer can run concurrently (it is the writer, or the
  /// application quiesced) — a refused pin carries no protection.
  static ReadSnapshot TryAcquire(EpochManager* manager) {
    ReadSnapshot snapshot;
    Epoch epoch = kLiveEpoch;
    if (manager->TryPin(&epoch)) {
      snapshot.manager_ = manager;
      snapshot.epoch_ = epoch;
    }
    return snapshot;
  }

  /// The pinned epoch, or kLiveEpoch when default-constructed.
  Epoch epoch() const { return epoch_; }
  bool pinned() const { return manager_ != nullptr; }

  void Release() {
    if (manager_ != nullptr) {
      manager_->Unpin(epoch_);
      manager_ = nullptr;
      epoch_ = kLiveEpoch;
    }
  }

 private:
  EpochManager* manager_ = nullptr;
  Epoch epoch_ = kLiveEpoch;
};

/// Per-writer-domain log of retired objects, reclaimed in two phases (see
/// file comment). Single-threaded: only the owning writer touches it.
class RetireLog {
 public:
  /// Callbacks are plain function pointers so the log stays type-erased
  /// without per-item allocation.
  using Action = void (*)(void* owner, void* object);

  /// Queues `object` (dead as of `death`, typically the working epoch) for
  /// two-phase reclamation. `unlink` runs at phase 1 (may be null),
  /// `free_fn` at phase 2.
  void Retire(Epoch death, Action unlink, Action free_fn, void* owner,
              void* object);

  /// Queues an object that is already unlinked (never reachable by future
  /// probes) but may still be referenced by in-flight readers: skips
  /// phase 1, frees once floor passes `working` (the epoch being built when
  /// the object was unlinked).
  void AddLimbo(Epoch working, Action free_fn, void* owner, void* object);

  /// Runs phase 1 for every item with death ≤ floor and phase 2 for every
  /// limbo item with stamp ≤ floor. `working` is the epoch currently being
  /// built (stamps freshly unlinked items). Caller must guarantee no pin
  /// below floor can appear concurrently.
  void Reclaim(Epoch floor, Epoch working);

  /// Teardown: unlink + free everything regardless of pins. Only valid
  /// when no reader can be in flight (quiesced or single-threaded).
  void Drain();

  bool empty() const { return pending_.empty() && limbo_.empty(); }
  size_t pending_size() const { return pending_.size(); }
  size_t limbo_size() const { return limbo_.size(); }

  /// Snapshot of EpochManager::KeepEpochs(), refreshed by the serving
  /// facade at each batch boundary. Versioned structures consult it when
  /// pruning per-entry multiplicity-version chains mid-batch; it is
  /// read-only for the duration of a batch.
  const std::vector<Epoch>& keep_epochs() const { return keep_epochs_; }
  void set_keep_epochs(std::vector<Epoch> keeps) {
    keep_epochs_ = std::move(keeps);
  }

 private:
  struct Item {
    Epoch epoch;  // death epoch (pending_) or unlink stamp (limbo_)
    Action unlink;
    Action free_fn;
    void* owner;
    void* object;
  };

  // Both deques are FIFO with non-decreasing epochs (retires happen in
  // working-epoch order), so Reclaim pops prefixes. FIFO order also
  // guarantees an index link's phase 1 runs no later than its bucket
  // node's (links are always retired before the bucket that holds them).
  std::deque<Item> pending_;
  std::deque<Item> limbo_;
  std::vector<Epoch> keep_epochs_;
};

/// Everything a versioned structure needs from its epoch domain: where to
/// retire objects and how to learn the working epoch. Structures without a
/// context (the default) run in legacy mode — immediate frees, no version
/// history, no snapshot reads — with zero behavior change.
struct EpochContext {
  RetireLog* log = nullptr;
  const std::atomic<Epoch>* published = nullptr;

  /// Quiescence signal maintained by the serving facade: equals the
  /// published epoch P when, at the last batch boundary, no reader pinned
  /// below P and every retire log was empty (so no zombie node, dead index
  /// link, or multiplicity-version chain is reachable anywhere); kLiveEpoch
  /// otherwise. Readers pinned at exactly this epoch may skip version
  /// filtering (ReadMode::kFastPin). Null when the facade predates fast
  /// lanes or never serves.
  const std::atomic<Epoch>* fast_epoch = nullptr;

  /// The epoch currently being built by the writer. Relaxed: only the
  /// writer itself calls this.
  Epoch working() const {
    return published->load(std::memory_order_relaxed) + 1;
  }
};

/// How a cursor/lookup session filters node visibility. Resolved ONCE per
/// enumerator/cursor acquisition, not per node — the whole point of the
/// fast lanes is to hoist the versioning branches out of the inner loop.
enum class ReadMode : uint8_t {
  /// Unversioned storage (no EpochContext): every node present is live,
  /// multiplicities are plain loads. Zero filtering.
  kDirect,
  /// Versioned storage, reader pinned at the quiescent published epoch
  /// (EpochContext::fast_epoch == pin): no zombies or version chains exist
  /// at or below the pin, so visibility is a single plain `birth <= e`
  /// compare and multiplicities take the seqlock fast path unconditionally.
  kFastPin,
  /// Full snapshot filtering: birth/death window checks plus multiplicity
  /// version-chain walks (the PR 7 path).
  kVersioned,
};

/// A resolved read session: the snapshot epoch plus the filtering mode
/// every probe under this session uses. Copied by value into cursors.
struct ReadView {
  Epoch epoch = kLiveEpoch;
  ReadMode mode = ReadMode::kDirect;
};

/// Resolves the cheapest sound ReadView for a read at `epoch` against
/// storage attached to `ctx` (null = unversioned storage).
///
/// Soundness of kFastPin under a concurrent writer building P+1: the
/// fast_epoch value was set to P at the last batch boundary, when no
/// version history or zombie existed at any epoch ≤ P. A concurrent batch
/// only creates nodes with birth = P+1 > e (hidden by the birth check) and
/// zombies with death = P+1 > e (still visible — correct, they were live at
/// P). Multiplicity writes for P+1 push a closed version first and bump
/// last_touch to P+1, so the seqlock re-check diverts epoch-P readers to
/// the history walk exactly when needed — EntryMultView keeps that
/// fallback. Hence kFastPin never skips a check whose outcome could differ.
inline ReadView ResolveReadView(const EpochContext* ctx, Epoch epoch) {
  if (ctx == nullptr) return ReadView{kLiveEpoch, ReadMode::kDirect};
  if (epoch == kLiveEpoch) {
    // Live read of versioned storage: zombies are physically linked until
    // reclaimed, so the full filter must run (at e = kLiveEpoch the window
    // check degenerates to "death not yet set").
    return ReadView{kLiveEpoch, ReadMode::kVersioned};
  }
  if (ctx->fast_epoch != nullptr &&
      ctx->fast_epoch->load(std::memory_order_acquire) == epoch) {
    return ReadView{epoch, ReadMode::kFastPin};
  }
  return ReadView{epoch, ReadMode::kVersioned};
}

}  // namespace ivme

#endif  // IVME_COMMON_EPOCH_H_
