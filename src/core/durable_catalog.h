// Durability wrapper around the sharded multi-query catalog: every write —
// batches (as their consolidated net deltas), bulk loads, and DDL
// (register/drop/reshard, the preprocess marker) — is appended to a
// write-ahead log before or as it applies, and background snapshot
// checkpoints bound the log's replay tail. Open(dir) recovers by loading
// the newest valid snapshot, replaying the WAL tail through the normal
// ApplyBatch path, and verifying invariants, so a recovered catalog is
// differential-testable against a never-crashed engine: the replayed net
// deltas take exactly the code path the live ones took.
//
// Crash consistency contract (exercised point by point by the recovery
// fuzzer via FaultInjector):
//  - data records (update/batch/preprocess) are logged WAL-first: a crash
//    after the append recovers WITH the operation, a crash before or mid
//    append (torn tail) recovers to the state just before it;
//  - DDL and loads apply first and log on success: a crash in the window
//    loses that operation but nothing after it (nothing after it exists);
//  - checkpoints are tmp-write → fsync → rename → fsync(dir): a crash at
//    any point leaves either the old snapshot set or the new one, never a
//    half-snapshot that recovery would trust; the WAL segments behind a
//    renamed snapshot are deleted last, and replay skips their records by
//    LSN if the deletion never ran.
#ifndef IVME_CORE_DURABLE_CATALOG_H_
#define IVME_CORE_DURABLE_CATALOG_H_

#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/fault_injector.h"
#include "src/common/status.h"
#include "src/core/sharded_catalog.h"
#include "src/storage/checkpoint.h"
#include "src/storage/wal.h"

namespace ivme {

/// Configuration of the durability layer.
struct DurabilityOptions {
  FsyncPolicy fsync = FsyncPolicy::kBatch;

  /// kBatch: fsync after this many appended records (and at checkpoints).
  size_t fsync_interval = 64;

  /// Snapshots kept after a successful checkpoint (≥ 1).
  size_t retain_snapshots = 2;

  /// Run the checkpoint's file work (serialize is foreground, write/rename/
  /// WAL-truncate are not) on a background thread. The state capture always
  /// happens synchronously, so the snapshot is a consistent cut.
  bool background_checkpoint = true;

  /// Crash-point injector; null uses FaultInjector::Global() (disarmed by
  /// default, so production pays one branch per point).
  FaultInjector* injector = nullptr;
};

/// Durability counters (shell `stats`, bench JSON).
struct DurabilityStats {
  bool durable = false;             ///< attached to a directory
  uint64_t last_lsn = 0;            ///< highest LSN assigned
  uint64_t wal_records = 0;         ///< records appended since open/attach
  uint64_t wal_bytes = 0;
  uint64_t wal_syncs = 0;
  size_t wal_segments = 0;          ///< live segment files
  size_t checkpoints_taken = 0;     ///< completed in this process
  uint64_t checkpoint_lsn = 0;      ///< LSN of the newest durable snapshot
  size_t replayed_records = 0;      ///< WAL records replayed by Open
  bool recovered_torn_tail = false; ///< Open truncated a torn/corrupt tail
};

/// A ShardedCatalog whose writes survive restarts.
///
/// Lifecycle: either construct ephemeral (no directory, nothing logged) and
/// AttachDir() later — the shell's `save <dir>` — or Open(dir) to recover a
/// previous incarnation. The write surface mirrors ShardedCatalog; reads
/// (Enumerate, stats, store access) go through catalog().
class DurableCatalog {
 public:
  /// Ephemeral catalog; durability starts at AttachDir.
  explicit DurableCatalog(ShardedCatalogOptions catalog_options,
                          DurabilityOptions durability = DurabilityOptions());
  ~DurableCatalog();

  DurableCatalog(const DurableCatalog&) = delete;
  DurableCatalog& operator=(const DurableCatalog&) = delete;

  /// Recovers from `dir` (created when absent): newest valid snapshot
  /// (older ones are fallbacks when the newest is corrupt), WAL tail
  /// replayed through the normal apply path, torn tail truncated, and
  /// invariants verified. An empty dir yields a fresh catalog with
  /// `catalog_options`; a snapshot's shard count takes precedence.
  /// Returns null (with `*status` naming the defect) when the directory is
  /// unusable or the recovered state is corrupt.
  static std::unique_ptr<DurableCatalog> Open(const std::string& dir,
                                              ShardedCatalogOptions catalog_options,
                                              DurabilityOptions durability, Status* status);

  /// Makes an ephemeral catalog durable: creates `dir` (which must not
  /// already hold a catalog), writes a full snapshot of the current state,
  /// and starts logging. No-op error on an already-durable catalog.
  Status AttachDir(const std::string& dir);

  bool durable() const { return !dir_.empty(); }
  const std::string& dir() const { return dir_; }

  // --- control plane (mirrors ShardedCatalog, logged when durable) ---
  bool RegisterQuery(const std::string& name, const ConjunctiveQuery& q, EngineOptions options,
                     std::string* why = nullptr);
  bool DropQuery(const std::string& name);

  /// Rebuilds the catalog over `num_shards` hash-partitioned shards,
  /// re-registering every query and re-loading every relation that still
  /// has a reader (names of reader-less dropped relations are appended to
  /// `dropped` when non-null). Logged; the shard count survives restart.
  Status Reshard(size_t num_shards, std::vector<std::string>* dropped = nullptr);

  // --- data plane ---
  Status TryLoad(const std::string& relation, const std::vector<std::pair<Tuple, Mult>>& tuples);
  Status TryLoadTuple(const std::string& relation, const Tuple& tuple, Mult mult);
  void Preprocess();
  bool ApplyUpdate(const std::string& relation, const Tuple& tuple, Mult mult);
  BatchResult ApplyBatch(const Update* updates, size_t count);
  BatchResult ApplyBatch(const UpdateBatch& updates);

  /// Validating variants (see ShardedCatalog::TryApplyUpdate/TryApplyBatch).
  /// The write gate runs BEFORE the WAL append: a structural error or a
  /// mutability rejection (write to a static relation, insert-only delete)
  /// is never logged, so replay only sees appliable records. Per-entry
  /// below-zero deletes stay post-log — replay re-derives the same
  /// rejections deterministically against the replayed state.
  Status TryApplyUpdate(const std::string& relation, const Tuple& tuple, Mult mult);
  Status TryApplyBatch(const Update* updates, size_t count, BatchResult* result);
  Status TryApplyBatch(const UpdateBatch& updates, BatchResult* result);

  /// Takes a snapshot checkpoint at the current LSN: captures the state
  /// synchronously, rotates the WAL to a fresh segment, then (on the
  /// background thread when configured) writes + renames the snapshot,
  /// deletes the WAL segments behind it, and prunes old snapshots.
  Status Checkpoint();

  /// Joins the in-flight background checkpoint (if any) and returns its
  /// status. Called automatically before the next Checkpoint/Reshard/
  /// AttachDir and at destruction.
  Status WaitForCheckpoint();

  DurabilityStats durability_stats() const;

  // --- read surface ---
  ShardedCatalog& catalog() { return *catalog_; }
  const ShardedCatalog& catalog() const { return *catalog_; }

 private:
  /// True when an injected crash killed this instance: the on-disk state is
  /// frozen at the crash instant and further durable work is suppressed.
  bool dead() const;

  /// Assigns the next LSN and appends one record (WAL side only).
  Status AppendRecord(WalRecordType type, const std::string& payload);

  /// Logs every dictionary id interned since the last sync as one
  /// kDictionary delta record. Must run BEFORE the data record whose tuples
  /// carry the new ids, so replay re-interns them first. The synced
  /// watermark only advances here — never at checkpoints — so a crashed
  /// checkpoint can always fall back to snapshot + WAL without id holes.
  Status SyncDictionary();

  /// Captures the full logical state at the current LSN.
  SnapshotData CaptureSnapshot() const;

  /// Rebuilds the inner catalog over `num_shards` (shared by Reshard live,
  /// kReshard replay, and snapshot loading).
  Status RebuildAt(size_t num_shards, std::vector<std::string>* dropped);

  /// Replays one WAL record through the normal apply path.
  Status ApplyWalRecord(const WalRecord& record);

  /// Builds the inner catalog from a snapshot (queries, data, liveness).
  Status LoadSnapshot(const SnapshotData& snapshot);

  /// Open()'s body: snapshot selection, WAL replay, tail truncation.
  Status Recover(const std::string& dir);

  /// The checkpoint's file work (background-thread body).
  static Status CheckpointFiles(const std::string& dir, const SnapshotData& snapshot,
                                std::vector<std::string> obsolete_segments, size_t retain,
                                FaultInjector* injector);

  ShardedCatalogOptions catalog_options_;
  DurabilityOptions durability_;
  FaultInjector* injector_ = nullptr;  ///< resolved (never null)
  std::string dir_;
  std::unique_ptr<ShardedCatalog> catalog_;

  WalWriter wal_;
  uint64_t next_lsn_ = 1;
  uint64_t synced_dict_size_ = 0;  ///< dictionary ids already in the WAL
  uint64_t checkpoint_lsn_ = 0;
  uint64_t rotated_records_ = 0;  ///< WAL stats accumulated over closed segments
  uint64_t rotated_bytes_ = 0;
  uint64_t rotated_syncs_ = 0;
  size_t checkpoints_taken_ = 0;
  size_t replayed_records_ = 0;
  bool recovered_torn_tail_ = false;

  std::thread checkpoint_thread_;
  std::mutex checkpoint_mu_;  ///< guards checkpoint_status_
  Status checkpoint_status_;
  uint64_t pending_checkpoint_lsn_ = 0;  ///< LSN of the in-flight checkpoint

  // Serialization scratch (capacity persists across batches).
  NetDeltaConsolidator consolidator_;
  UpdateBatch net_scratch_;
};

}  // namespace ivme

#endif  // IVME_CORE_DURABLE_CATALOG_H_
