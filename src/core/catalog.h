// The multi-query serving facade: one shared RelationStore, many
// registered MaintainedQuery instances. A catalog ingests one update
// stream, consolidates each batch once (NetDeltaConsolidator), applies
// each net entry's base-storage write exactly once, and fans the net delta
// out to the maintenance state of every registered query that reads the
// touched relation — the multi-query serving setting of
// Berkholz–Keppeler–Schweikardt, with per-query ε/θ/M state and
// rebalancing. Late registrations preprocess from the live store.
#ifndef IVME_CORE_CATALOG_H_
#define IVME_CORE_CATALOG_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/latency_histogram.h"
#include "src/common/status.h"
#include "src/core/maintained_query.h"
#include "src/data/consolidate.h"
#include "src/data/update.h"
#include "src/storage/relation_store.h"

namespace ivme {

/// Registry of maintained queries over one shared relation store.
///
/// Lifecycle: construct → RegisterQuery (any number) → Load base tuples →
/// Preprocess() → interleave ApplyUpdate / ApplyBatch, Enumerate(name),
/// RegisterQuery (late, preprocesses immediately from the live store), and
/// DropQuery. Engine is the single-query compatibility wrapper around this
/// class; ShardedCatalog shards it.
class QueryCatalog {
 public:
  /// Uses `store` (shared with other catalogs or engines) or creates a
  /// fresh private store when null.
  explicit QueryCatalog(std::shared_ptr<RelationStore> store = nullptr);

  QueryCatalog(const QueryCatalog&) = delete;
  QueryCatalog& operator=(const QueryCatalog&) = delete;

  // --- control plane ---

  /// Registers a hierarchical query under a fresh name, attaching its
  /// relations to the shared store (arity conflicts with live relations are
  /// hard errors). After Preprocess() has run, the new query preprocesses
  /// immediately from the live store contents; updates keep flowing to
  /// every query.
  MaintainedQuery* RegisterQuery(const std::string& name, ConjunctiveQuery q,
                                 EngineOptions options);

  /// Unregisters and destroys a query, releasing its store references; the
  /// base relations and their contents stay in the store. Returns false
  /// when the name is unknown.
  bool DropQuery(const std::string& name);

  /// Looks up a registered query by name; nullptr when absent.
  MaintainedQuery* FindQuery(const std::string& name) const;

  /// Registered query names, in registration order.
  std::vector<std::string> QueryNames() const;

  size_t num_queries() const { return queries_.size(); }

  // --- data plane ---

  /// Bulk-loads base tuples before preprocessing. Multiplicities
  /// accumulate; the relation must be attached by some registered query.
  void Load(const std::string& relation, const std::vector<std::pair<Tuple, Mult>>& tuples);
  void LoadTuple(const std::string& relation, const Tuple& tuple, Mult mult);

  /// Validating variants of Load/LoadTuple: a live catalog, an unknown
  /// relation, an arity mismatch, or a non-positive multiplicity is
  /// reported as a structured error with nothing loaded (TryLoad stops at
  /// the first bad pair) — recovery and the shell surface these instead of
  /// aborting the process on corrupt input.
  Status TryLoad(const std::string& relation, const std::vector<std::pair<Tuple, Mult>>& tuples);
  Status TryLoadTuple(const std::string& relation, const Tuple& tuple, Mult mult);

  /// Preprocesses every registered query from the store (Theorem 2/4) and
  /// marks the catalog live. Call exactly once; queries registered later
  /// preprocess at registration.
  void Preprocess();
  bool preprocessed() const { return live_; }

  /// Applies a single-tuple insert (m > 0) or delete (m < 0): validates
  /// against the store, writes base storage once, then maintains every
  /// query reading the relation. Returns false (and changes nothing) when
  /// the write is rejected by the data-plane rules (delete below zero,
  /// write to a static relation, delete from an insert-only relation);
  /// structural misuse (catalog not live, static-evaluation query, unknown
  /// relation, wrong arity) is a hard error. TryApplyUpdate reports both as
  /// a structured Status instead.
  bool ApplyUpdate(const std::string& relation, const Tuple& tuple, Mult mult);

  /// Validating variant of ApplyUpdate: structural misuse is
  /// Status::Error, data-plane refusals are Status::Rejected (see
  /// common/status.h); the store is unchanged on either. Never aborts.
  Status TryApplyUpdate(const std::string& relation, const Tuple& tuple, Mult mult);

  /// The write-path gate shared by every catalog layer: catalog live, all
  /// queries dynamic-evaluation, `relation` known (Error cases); relation
  /// not declared static, and not a delete into an insert-only relation
  /// (Rejected cases). Does not inspect tuples — per-tuple arity and
  /// below-zero checks stay with the appliers. The durable layer runs this
  /// before logging, so invalid writes never reach the WAL.
  Status CheckWritable(const std::string& relation, Mult mult) const;

  /// CheckWritable over a whole batch: first violation wins, with
  /// per-relation memoization so runs of records into one relation cost one
  /// lookup. Rejections here are atomic — the whole batch is refused before
  /// any base write (unlike per-entry below-zero skips, which apply the
  /// rest of the batch).
  Status CheckBatchWritable(const Update* updates, size_t count) const;

  /// Applies `count` updates as one batch: consolidates per relation
  /// (insert/delete cancellation, multiplicity merging, per-entry
  /// below-zero rejection against the store), performs each surviving net
  /// entry's base-storage write exactly once, and fans each relation's
  /// delta out to the registered queries (one maintenance pass per query
  /// per relation, deferred rebalancing per query at batch end). Every
  /// record must address a relation attached to the store.
  BatchResult ApplyBatch(const Update* updates, size_t count);
  BatchResult ApplyBatch(const UpdateBatch& updates);

  /// Validating variant of ApplyBatch. Structural misuse (not live, a
  /// static-evaluation query, an unknown relation anywhere in the batch) is
  /// Status::Error with nothing applied — including the former mid-batch
  /// unknown-relation abort, which now fails atomically before any base
  /// write. A batch touching a static relation, or deleting from an
  /// insert-only one, is Status::Rejected with nothing applied. Per-entry
  /// below-zero deletes keep the historical semantics: the entry is skipped
  /// and counted in result->rejected while the rest of the batch applies.
  Status TryApplyBatch(const Update* updates, size_t count, BatchResult* result);
  Status TryApplyBatch(const UpdateBatch& updates, BatchResult* result);

  /// Opens an enumeration session over `name`'s current result.
  std::unique_ptr<ResultEnumerator> Enumerate(const std::string& name) const;

  /// Drains a full enumeration of `name` into a map.
  QueryResult EvaluateToMap(const std::string& name) const;

  /// As-of variants over a published snapshot epoch (versioned mode; driven
  /// by the serving facade — see ShardedCatalog::EnableServing).
  std::unique_ptr<ResultEnumerator> EnumerateAt(const std::string& name, Epoch epoch) const;
  QueryResult EvaluateToMapAt(const std::string& name, Epoch epoch) const;

  /// Enters (ctx != nullptr) or leaves versioned mode on the store's
  /// relations and every registered query's private state. The store must
  /// be privately owned by this catalog (one writer domain per RetireLog).
  /// Quiesced points only, with the log drained.
  void SetEpochContext(const EpochContext* ctx);

  /// Contents of a store relation as (tuple, multiplicity) pairs.
  std::vector<std::pair<Tuple, Mult>> DumpRelation(const std::string& relation) const;

  /// Like DumpRelation, but an unknown relation is a structured error
  /// instead of a fatal check (`out` is cleared but otherwise untouched).
  Status TryDumpRelation(const std::string& relation,
                         std::vector<std::pair<Tuple, Mult>>* out) const;

  /// Verifies every registered query's invariants; `error` is prefixed with
  /// the failing query's name.
  bool CheckInvariants(std::string* error);

  // --- introspection ---
  RelationStore& store() { return *store_; }
  const RelationStore& store() const { return *store_; }
  const std::shared_ptr<RelationStore>& store_ptr() const { return store_; }

  /// Wall-clock latency distributions of every ApplyUpdate call
  /// (update_latency) and every ApplyBatch call (batch_latency) served by
  /// this catalog — the tail-latency ledger the deamortized rebalancing
  /// mode is judged by. Recorded on the driving thread; the sharded layers
  /// merge the per-shard histograms at barrier points.
  const LatencyHistogram& update_latency() const { return update_latency_; }
  const LatencyHistogram& batch_latency() const { return batch_latency_; }
  void ResetLatency() {
    update_latency_.Reset();
    batch_latency_.Reset();
  }

  /// Queries in registration order (for iteration in shells/benches).
  const std::vector<std::unique_ptr<MaintainedQuery>>& queries() const { return queries_; }

 private:
  /// Per-batch per-query accounting (records and net entries routed to the
  /// query), indexed like queries_.
  struct QueryBatchShare {
    size_t records = 0;
    size_t net_entries = 0;
    bool touched = false;
  };

  std::shared_ptr<RelationStore> store_;
  std::vector<std::unique_ptr<MaintainedQuery>> queries_;
  NetDeltaConsolidator consolidator_;
  bool live_ = false;
  LatencyHistogram update_latency_;
  LatencyHistogram batch_latency_;

  // Batch scratch (capacity persists across batches).
  RelationStore::DeltaResult delta_scratch_;
  std::vector<QueryBatchShare> share_scratch_;
};

}  // namespace ivme

#endif  // IVME_CORE_CATALOG_H_
