// Per-query IVM^ε maintenance state over a shared RelationStore: the
// skew-aware view trees, heavy/light partitions, indicator triples, and the
// θ/M/ε rebalancing machinery of one hierarchical query. A MaintainedQuery
// *borrows* its base relations from the store — the canonical tuple storage
// is written once per update by the owning catalog, no matter how many
// queries are registered — and owns everything query-specific: light parts,
// views, H relations, and private mirror storage for self-join occurrences
// beyond the first (footnote 2 sequencing needs the pre-update state of
// later occurrences while earlier ones propagate).
#ifndef IVME_CORE_MAINTAINED_QUERY_H_
#define IVME_CORE_MAINTAINED_QUERY_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "src/baselines/brute_force.h"  // QueryResult
#include "src/core/builder.h"
#include "src/core/rebalance_task.h"
#include "src/core/view_node.h"
#include "src/data/update.h"
#include "src/enumerate/enumerator.h"
#include "src/query/query.h"
#include "src/storage/relation_store.h"
#include "src/storage/tuple_map.h"

namespace ivme {

/// How a violated size invariant ⌊M/4⌋ ≤ N < M is repaired.
enum class RebalanceMode {
  /// The paper's protocol: the violating update synchronously strict-
  /// repartitions every slot and recomputes all threshold-dependent views —
  /// amortized O(N^ε) per update, but an O(N)-latency spike on that update.
  kAmortized,

  /// Deamortized: M/θ retarget immediately, then the repartition spreads
  /// over the following updates in bounded-work slices (see RebalanceTask).
  /// Same results and same loose partition invariants at every quiescent
  /// point. The triggering update still pays an O(#partition keys) key
  /// snapshot (a flat value copy — far below the full rebuild it replaces,
  /// but not O(N^ε)); every later update is bounded by its slice budget
  /// plus at most one atomic key move.
  kIncremental,
};

/// Programmatic per-relation mutability declaration (equivalent to the
/// "static R(...)" / "insert_only R(...)" query-text prefixes; see
/// data/mutability.h). Applied to the query before the plan is built.
struct MutabilityOverride {
  std::string relation;
  Mutability mutability = Mutability::kDynamic;
};

/// Engine configuration (shared by MaintainedQuery, Engine, and the
/// catalogs; one instance per registered query).
struct EngineOptions {
  /// The ε knob of Theorems 2 and 4: heavy/light threshold θ = M^ε.
  double epsilon = 0.5;

  /// Static evaluation (no updates accepted) or dynamic (IVM^ε).
  EvalMode mode = EvalMode::kDynamic;

  /// Disables minor/major rebalancing (ablation only — partitions then
  /// drift from their thresholds, which voids the amortized guarantees but
  /// keeps results correct).
  bool enable_rebalancing = true;

  /// Major-rebalance strategy (ignored when rebalancing is disabled).
  RebalanceMode rebalance_mode = RebalanceMode::kAmortized;

  /// Incremental mode only: basic-step budget per ingested record, in units
  /// of θ, that each update/batch donates to an in-flight migration
  /// (RebalanceTask::SliceBudget). Higher drains migrations faster at the
  /// cost of a higher worst-case update latency.
  double rebalance_budget = 8.0;

  /// Per-relation mutability declarations, merged into the query (wins over
  /// any query-text prefix) before the plan is built. Overrides naming
  /// relations the query does not read are ignored.
  std::vector<MutabilityOverride> mutability;
};

/// Per-query maintenance statistics.
struct QueryStats {
  size_t updates = 0;  ///< single-tuple updates + records ingested via batches
  size_t batches = 0;  ///< batches that touched this query
  size_t batch_net_entries = 0;  ///< consolidated entries applied by batches
  size_t minor_rebalances = 0;
  size_t major_rebalances = 0;  ///< size-invariant repairs (either mode)
  // Incremental-mode migration accounting (all zero in amortized mode).
  size_t rebalance_slices = 0;    ///< bounded-work slices executed
  size_t rebalance_restarts = 0;  ///< retargets while a migration was active
  size_t migrated_keys = 0;       ///< keys strictly reclassified by migrations
  size_t rebalance_pending = 0;   ///< keys still queued (0 when quiescent)
  size_t num_trees = 0;
  size_t num_triples = 0;
  size_t view_tuples = 0;  ///< total tuples stored across all views
};

/// Maintenance and enumeration state of one registered hierarchical query.
///
/// Lifecycle: construct (attaches the query's relations to the store and
/// builds the compiled plan) → Preprocess() from the live store contents →
/// the owning catalog drives the maintenance protocol below for every
/// update. The catalog owns the base-storage write; this class never writes
/// the shared relations.
class MaintainedQuery : public StorageProvider {
 public:
  /// `q` must be hierarchical (checked). Attaches every relation symbol of
  /// `q` to `store` (which must outlive this object).
  MaintainedQuery(std::string name, ConjunctiveQuery q, EngineOptions options,
                  RelationStore* store);
  ~MaintainedQuery() override;

  MaintainedQuery(const MaintainedQuery&) = delete;
  MaintainedQuery& operator=(const MaintainedQuery&) = delete;

  // --- StorageProvider (used by the builder) ---
  Relation* AtomStorage(int atom_index) override;
  RelationPartition* AtomPartition(int atom_index, const Schema& keys) override;

  /// Builds this query's state from the live store: fills self-join
  /// mirrors, partitions the relations (θ = M^ε with M = 2N+1), and
  /// materializes all views. Call exactly once.
  void Preprocess();
  bool preprocessed() const { return preprocessed_.load(std::memory_order_acquire); }

  /// True when `relation` names an atom of this query.
  bool UsesRelation(const std::string& relation) const;

  // --- maintenance protocol (driven by the owning catalog) ---
  // The catalog has already validated the update against the store and
  // applied the shared base-storage write; `support_change` / the
  // DeltaResult's support vector carry the |R| changes of that write so
  // pre-update partition counts can be reconstructed for the Figure 19
  // snapshots.

  /// Figure 19 + per-update rebalancing (Figure 22) for one accepted
  /// single-tuple update.
  void ApplySingle(const std::string& relation, const Tuple& tuple, Mult mult,
                   int support_change);

  /// One consolidated relation delta of a batch: one DeltaVec pass per
  /// view-tree leaf, per-key indicator maintenance from pre-batch
  /// snapshots, and a deferred minor-rebalance sweep over the touched
  /// partition keys. Rebalancing across the batch is finished by
  /// FinishBatch.
  void ApplyGroupDelta(const std::string& relation, const RelationStore::DeltaResult& delta);

  /// Ends one batch for this query: runs the once-per-batch major-rebalance
  /// decision and folds `records` ingested records / `net_entries` applied
  /// net entries into the stats.
  void FinishBatch(size_t records, size_t net_entries);

  /// Opens an enumeration session over the current result. Outside
  /// versioned mode (no epoch context) this is a kDirect fast-lane session:
  /// the cursors skip the version-chain and zombie filters entirely.
  std::unique_ptr<ResultEnumerator> Enumerate() const;

  /// Drains a full enumeration into a map (convenience for tests/examples).
  QueryResult EvaluateToMap() const;

  /// As-of variants: enumerate / drain the published snapshot `epoch`.
  /// Requires versioned mode (SetEpochContext) and a pinned epoch; safe to
  /// run concurrently with the maintenance writer (ARCHITECTURE.md §9).
  /// The session's ReadView is resolved here, once: when the context's
  /// fast_epoch equals `epoch` (catalog fully reclaimed at the published
  /// epoch) the session takes the kFastPin lane (ARCHITECTURE.md §11).
  std::unique_ptr<ResultEnumerator> EnumerateAt(Epoch epoch) const;
  QueryResult EvaluateToMapAt(Epoch epoch) const;

  /// Enters (ctx != nullptr) or leaves versioned mode on every query-owned
  /// relation: self-join mirrors, light parts, view storages, and indicator
  /// H relations. The store-shared base relations are covered separately by
  /// RelationStore::SetEpochContext. Quiesced points only, with the
  /// RetireLog drained (see Relation::SetEpochContext). The context is also
  /// kept here as the session-resolution anchor for Enumerate/EnumerateAt —
  /// storage-level contexts cannot serve that role because fully_static
  /// subtrees legitimately keep a null context in versioned mode.
  void SetEpochContext(const EpochContext* ctx);

  // --- introspection ---
  const std::string& name() const { return name_; }
  const ConjunctiveQuery& query() const { return query_; }
  double epsilon() const { return options_.epsilon; }
  EvalMode mode() const { return options_.mode; }
  /// The full per-query configuration (checkpoints re-register with it).
  const EngineOptions& options() const { return options_; }

  /// Current database size N as this query sees it (sum of distinct tuples
  /// over its atom occurrences; self-joins count the relation once per
  /// occurrence, as in the paper).
  size_t database_size() const { return n_; }

  /// Threshold base M with invariant ⌊M/4⌋ ≤ N < M (Definition 51).
  size_t threshold_base() const { return m_; }

  /// Current heavy/light threshold θ = M^ε.
  double theta() const;

  QueryStats GetStats() const;

  const CompiledPlan& plan() const { return plan_; }

  /// Renders every view tree and indicator tree (tests, debugging).
  std::string DebugString() const;

  /// True while an incremental major rebalance is migrating keys.
  bool rebalance_in_progress() const { return rebalance_task_.active(); }

  /// Verifies all internal invariants: partition bands (Definition 11), the
  /// size invariant, view-equals-join-of-children for every view, H = All ∧
  /// ¬L for every triple, and mirror-equals-shared for self-join
  /// occurrences. While an incremental migration is in flight, the band
  /// checks relax to the migration's θ envelope (each key must sit in the
  /// bands of SOME threshold the migration has targeted — the in-migration
  /// double-structure condition) and the pending queue itself is validated.
  /// Returns false and fills `error` on the first violation. O(database) —
  /// test use only.
  bool CheckInvariants(std::string* error);

 private:
  struct SlotPartition {
    RelationPartition* partition = nullptr;
    IndicatorTriple* triple = nullptr;
    ViewNode* all_leaf = nullptr;  ///< this slot's leaf in triple->all_tree
    ViewNode* light_leaf = nullptr;  ///< this slot's leaf in triple->light_tree
    std::vector<ViewNode*> main_light_leaves;
    Mutability mutability = Mutability::kDynamic;  ///< the owning slot's
  };

  /// One atom occurrence. The first occurrence of a relation symbol reads
  /// the store-shared relation; repeated occurrences own a private mirror
  /// with identical contents (footnote 2).
  struct Slot {
    int atom_index = -1;
    std::string relation;
    Mutability mutability = Mutability::kDynamic;
    Relation* storage = nullptr;  ///< shared relation or mirror.get()
    std::unique_ptr<Relation> mirror;  ///< null for the first occurrence
    std::vector<std::unique_ptr<RelationPartition>> partitions;
    std::vector<SlotPartition> infos;
    std::vector<ViewNode*> main_full_leaves;

    bool shared() const { return mirror == nullptr; }
    bool is_static() const { return mutability == Mutability::kStatic; }
  };

  /// Slots sharing one relation symbol, in occurrence order.
  struct RelationGroup {
    std::string relation;
    std::vector<size_t> slot_indices;
  };

  /// Pre-update per-partition snapshot (Figure 19 reads these on the
  /// pre-update database).
  struct KeySnapshot {
    Tuple key;
    bool in_light = false;
    size_t base_before = 0;
    Mult all_before = 0;
  };

  /// Per-partition-key snapshot for one batch: taken logically on the
  /// pre-batch database. For shared slots the base count is reconstructed
  /// from the store's support changes (the shared write precedes every
  /// query's maintenance).
  struct BatchKeySnap {
    /// Every delta tuple of this key belongs to the light part: the key was
    /// light, or absent (new keys start light). Matches the per-tuple rule
    /// of Figure 19 applied to the whole consolidated delta.
    bool light_classified = false;
    bool in_light = false;  ///< pre-batch light classification
    Mult all_before = 0;    ///< All-tree multiplicity of the key
    Mult l_before = 0;      ///< L-tree multiplicity of the key
    int support_sum = 0;    ///< Σ base support changes of the key's delta tuples
  };

  void RegisterLeaves();
  /// Annotates the plan with the Kara 2024 static-specialization flags:
  /// IndicatorTriple::is_static (fixpoint over nested indicator references)
  /// and the per-node threshold_static / fully_static flags. Run once after
  /// RegisterLeaves.
  void ComputeStaticFlags();
  /// MaterializeTree restricted to subtrees some threshold-dependent input
  /// of which belongs to a dynamic relation; threshold_static subtrees are
  /// provably unchanged by a repartition and are skipped whole.
  void MaterializeThresholdViews(ViewNode* node);
  RelationGroup* FindGroup(const std::string& relation);
  void ApplyUpdateToSlot(Slot& slot, const Tuple& tuple, Mult mult, int support_change);
  /// Figure 19 for one tuple: main trees, indicators, light parts, and the
  /// mirror write for non-shared slots — everything except rebalancing.
  void ApplyDeltaToSlot(Slot& slot, const Tuple& tuple, Mult mult, int support_change);
  void ApplyLightDelta(SlotPartition& info, const Tuple& tuple, Mult mult);
  void ApplyAllChangeToH(IndicatorTriple* triple, const Tuple& key, Mult all_change);
  void ApplyNotLChangeToH(IndicatorTriple* triple, const Tuple& key, int not_l_change);
  void PropagateIndicatorChange(IndicatorTriple* triple, const Tuple& key, int change);
  /// Figure 19 for a whole consolidated relation delta against one slot.
  void ApplyBatchDeltaToSlot(Slot& slot, const RelationStore::DeltaResult& delta);
  void Rebalance(Slot& slot, const Tuple& tuple);
  void MinorCheckKey(SlotPartition& info, const Tuple& key, double th);
  /// The M the size invariant demands for the current N (doubling/halving
  /// as often as needed); returns m_ unchanged when the invariant holds.
  size_t TargetM() const;
  /// Restores ⌊M/4⌋ ≤ N < M, doubling/halving M as often as needed, with at
  /// most one repartition+recompute. Returns true when M changed.
  bool MajorRebalanceIfNeeded();
  /// Incremental mode: retargets M/θ and (re)snapshots the partition keys
  /// into rebalance_task_ when the size invariant broke. No view work.
  void StartIncrementalRebalanceIfNeeded();
  /// Runs one bounded-work migration slice (budget scaled by `records`).
  void ProgressIncrementalRebalance(size_t records);
  /// Strictly reclassifies one snapshot key against the current θ; returns
  /// the basic steps charged.
  uint64_t MigrateKey(const RebalanceTask::WorkItem& item);
  void MinorRebalancing(SlotPartition& info, const Tuple& key, bool insert);
  /// Moves every base tuple of `key` into (`to_light`) or out of the light
  /// part, propagating through light trees, H, and main trees.
  void MoveKeyAcrossThreshold(SlotPartition& info, const Tuple& key, bool to_light);
  void MajorRebalancing();
  void RecomputeThresholdViews();

  std::string name_;
  ConjunctiveQuery query_;
  EngineOptions options_;
  RelationStore* store_;
  std::vector<Slot> slots_;
  std::vector<RelationGroup> groups_;
  CompiledPlan plan_;
  // Atomic because reader threads (EnumerateAt via a pinned snapshot) check
  // it while the one-time Preprocess may still be running on the writer; the
  // built state itself is published by the catalog's quiesce gate, this flag
  // only needs to be race-free.
  std::atomic<bool> preprocessed_{false};
  size_t n_ = 0;
  size_t m_ = 1;
  /// θ at Preprocess time. Static relations' partitions are strictly
  /// partitioned once against this threshold and frozen: their contents
  /// never change, so the Definition 11 bands keep holding against it no
  /// matter how far the live θ drifts (Kara et al. 2024).
  double frozen_theta_ = 0.0;
  /// No atom is kDynamic: N is monotone non-decreasing after Preprocess, so
  /// the size invariant can only break upward (TargetM skips the halving
  /// scan).
  bool monotone_n_ = false;
  QueryStats stats_;
  /// Versioned-mode context (null outside), anchor for ReadView resolution.
  const EpochContext* epoch_ctx_ = nullptr;
  RebalanceTask rebalance_task_;  ///< in-flight incremental migration state
  std::vector<std::pair<Tuple, Mult>> move_scratch_;  ///< reused by key moves
  std::vector<KeySnapshot> snap_scratch_;  ///< reused by ApplyDeltaToSlot
  /// Batch scratch, reused across batches (pools and capacity persist):
  /// per-partition key snapshots plus the materialized light delta.
  std::vector<std::unique_ptr<TupleMap<BatchKeySnap>>> key_scratch_;
  std::vector<std::pair<Tuple, Mult>> batch_light_scratch_;
};

}  // namespace ivme

#endif  // IVME_CORE_MAINTAINED_QUERY_H_
