// Bottom-up materialization of view trees (preprocessing stage, Section 4 /
// Proposition 21). Inner views are computed by first aggregating each child
// onto the output-plus-join-key variables (the InsideOut step of the
// paper's proofs), then joining the aggregates with index probes on the
// join keys, driver first.
#ifndef IVME_CORE_MATERIALIZE_H_
#define IVME_CORE_MATERIALIZE_H_

#include "src/core/view_node.h"

namespace ivme {

/// Recomputes the storage of a single view node from its (already
/// materialized) children. Leaves and indicator references are left alone.
void MaterializeNode(ViewNode* node);

/// Postorder materialization of a whole tree.
void MaterializeTree(ViewNode* root);

/// Number of tuples summed over all views of the tree (diagnostics).
size_t TreeStorageSize(const ViewNode* root);

/// Ablation switch (benchmarks only): disables the InsideOut
/// pre-aggregation step of MaterializeNode, falling back to plain
/// nested-loop joins over the raw children. Correct but loses the
/// Proposition 21 complexity guarantees. Default: enabled.
void SetMaterializeInsideOut(bool enabled);
bool MaterializeInsideOutEnabled();

}  // namespace ivme

#endif  // IVME_CORE_MATERIALIZE_H_
