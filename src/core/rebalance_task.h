// Deamortized major rebalancing: the migration state machine behind
// EngineOptions::rebalance_mode == kIncremental.
//
// The paper's O(N^ε) single-update guarantee (Theorem 4) is amortized: the
// update that breaks the size invariant ⌊M/4⌋ ≤ N < M pays for a
// stop-the-world StrictRepartition of every slot plus a full recompute of
// the threshold-dependent views — an O(N^{1+(w−1)ε})-latency spike. The
// standard deamortization spreads that rebuild over the following Θ(M)
// updates in bounded-work slices. The residual trigger-time cost is the
// key SNAPSHOT below — an O(#partition keys) flat value copy (no joins, no
// hashing, no view work; ~30× cheaper than the rebuild it replaces in the
// micro_latency_tail measurements) — so the worst single update drops from
// the full rebuild to snapshot + one slice + one atomic key move, not to a
// strict O(N^ε); a retarget mid-migration re-pays the snapshot.
//
// The trick that makes slicing safe here: the maintenance protocol (Figure
// 19) is correct for ANY heavy/light classification of the partition keys —
// it reads "light" as "present in the light part", and every structure
// (light parts, light trees, H = All ∧ ∄L, main trees) is maintained by
// delta propagation from whatever classification currently holds. Strict
// θ-classification is only needed for the complexity bounds, not for
// correctness. So instead of rebuilding a shadow copy of every
// θ-dependent view, a major rebalance in incremental mode
//   1. retargets M (and hence θ = M^ε) immediately — the size invariant is
//      restored at once, and all subsequent per-update decisions use the
//      new θ;
//   2. snapshots the partition keys of every slot into this task's queue
//      (a flat value copy, no joins, no view work);
//   3. on every subsequent update/batch, pops keys and STRICTLY
//      reclassifies them against the new θ, moving each flipped key
//      through the same delta machinery minor rebalancing uses — until a
//      CostCounters budget of O(θ · records) basic steps is spent.
// Between slices the engine is fully consistent: enumeration and
// maintenance read the one true set of structures, and an in-flight delta
// that touches a not-yet-migrated key is handled by the per-update minor
// check under the new θ (the "forward to the under-construction structure"
// rule — old and new structure share their physical representation, split
// by the migration frontier). A second invariant violation mid-migration
// (e.g. deletes shrinking N back across the M/4 floor) retargets M again
// and restarts the scan over the then-current keys.
//
// During a migration each key satisfies the Definition 11 bands for SOME
// threshold in the envelope [low_theta, high_theta] of every θ the
// migration has targeted; MaintainedQuery::CheckInvariants validates
// exactly that relaxed condition while a task is active.
#ifndef IVME_CORE_REBALANCE_TASK_H_
#define IVME_CORE_REBALANCE_TASK_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/data/tuple.h"

namespace ivme {

/// Cumulative migration statistics (survive across migrations).
struct RebalanceTaskStats {
  size_t slices = 0;         ///< bounded-work slices executed
  size_t restarts = 0;       ///< retargets while a migration was active
  size_t migrated_keys = 0;  ///< keys whose classification was flipped
  size_t scanned_keys = 0;   ///< keys popped and checked (incl. unflipped)
  uint64_t max_slice_steps = 0;  ///< worst basic-step cost of one slice
};

/// The pending work and budget policy of one in-flight incremental major
/// rebalance. Pure bookkeeping: MaintainedQuery owns the partitions and
/// executes the actual key moves; the task owns the key queue, the θ
/// envelope for invariant checking, and the per-slice budget arithmetic.
class RebalanceTask {
 public:
  /// One queued reclassification: the key of partition `info` of slot
  /// `slot` (indices into MaintainedQuery's slot/info vectors, stable for
  /// the lifetime of the query).
  struct WorkItem {
    uint32_t slot = 0;
    uint32_t info = 0;
    Tuple key;
  };

  bool active() const { return active_; }
  size_t pending() const { return queue_.size() - next_; }

  /// The i-th still-pending item (0 ≤ i < pending()); for invariant checks.
  const WorkItem& pending_item(size_t i) const { return queue_[next_ + i]; }

  /// θ envelope of the active migration (meaningful only while active):
  /// every partition key satisfies the loose Definition 11 bands for some
  /// threshold in [low_theta, high_theta].
  double low_theta() const { return low_theta_; }
  double high_theta() const { return high_theta_; }

  /// Opens a migration from `old_theta` to `new_theta` (or retargets the
  /// active one — the stale queue is dropped and the caller re-snapshots;
  /// the θ envelope keeps absorbing every threshold seen since the first
  /// trigger, because unmigrated keys may still sit in bands of any of
  /// them).
  void Begin(double old_theta, double new_theta);

  /// Queues one key for strict reclassification. Only between Begin and the
  /// first Next of the migration.
  void Enqueue(uint32_t slot, uint32_t info, const Tuple& key);

  /// Pops the next pending key; nullptr when the queue is drained (the
  /// caller then calls Finish). The pointer stays valid until the next
  /// Next/Begin/Finish call.
  const WorkItem* Next();

  /// Closes the migration: clears the queue and collapses the θ envelope.
  void Finish();

  /// Basic-step budget of one slice: `per_record_theta_budget · θ` per
  /// ingested record, with a small floor so progress is made even at θ ≈ 1.
  static uint64_t SliceBudget(double theta, size_t records, double per_record_theta_budget);

  /// Slice accounting (stats().slices / max_slice_steps).
  void NoteSlice(uint64_t steps);
  void NoteScannedKey(bool flipped);

  const RebalanceTaskStats& stats() const { return stats_; }

 private:
  bool active_ = false;
  double low_theta_ = 0;
  double high_theta_ = 0;
  std::vector<WorkItem> queue_;
  size_t next_ = 0;
  RebalanceTaskStats stats_;
};

}  // namespace ivme

#endif  // IVME_CORE_REBALANCE_TASK_H_
