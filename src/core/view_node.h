// View trees: the materialized data structure produced by the preprocessing
// stage (Section 4). A view tree is a tree of views; each inner view is
// defined as the join of its children projected onto the view schema, and
// leaves are base relations or light parts. Heavy indicators ∃H appear as
// set-semantics gate children (Section 4.2).
#ifndef IVME_CORE_VIEW_NODE_H_
#define IVME_CORE_VIEW_NODE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/data/schema.h"
#include "src/storage/partition.h"
#include "src/storage/relation.h"

namespace ivme {

struct IndicatorTriple;

enum class NodeKind {
  kLeaf,       ///< base relation or light part; storage owned by the engine
  kView,       ///< inner view: V(S) = join of children; storage owned here
  kIndicator,  ///< ∃H gate: set-semantics reference to a triple's H relation
};

/// How a node is enumerated (compiled from schemas; Figures 13–14).
enum class EnumMode {
  kCovering,  ///< schema covers all free vars below: scan σ_ctx V directly
  kProduct,   ///< iterate rows of σ_ctx V, Product over children (Fig. 16)
  kUnion,     ///< ground the heavy indicator, Union over buckets (Fig. 15)
};

/// Where a value of the output row comes from when assembling a delta row:
/// child == -1 refers to the delta tuple, otherwise to the probe tuple of
/// children[child].
struct SourceRef {
  int child = -1;
  int pos = 0;
};

/// Compiled plan for propagating a delta arriving from children[child].
struct DeltaPlan {
  std::vector<int> key_from_delta;   ///< positions of K in the delta schema
  std::vector<int> probe_children;   ///< sibling indices joined by index probe
  std::vector<int> probe_index_ids;  ///< per probe child: index on K
  std::vector<int> gate_children;    ///< indicator siblings (0/1 factors)
  std::vector<SourceRef> row_sources;  ///< one per variable of the view schema
};

/// A node of a view tree.
struct ViewNode {
  NodeKind kind = NodeKind::kView;
  std::string name;
  Schema schema;  ///< S — the view/relation/indicator schema

  /// Materialized contents. For kView this points at owned_storage; for
  /// kLeaf at an engine-owned relation (full relation or light part); for
  /// kIndicator at the owning triple's H relation.
  Relation* storage = nullptr;
  std::unique_ptr<Relation> owned_storage;

  ViewNode* parent = nullptr;
  std::vector<std::unique_ptr<ViewNode>> children;
  int indicator_child = -1;  ///< index of the ∃H child, or -1

  // Provenance.
  int atom_index = -1;                        ///< leaf: atom occurrence index
  RelationPartition* partition = nullptr;     ///< leaf: set when a light part
  IndicatorTriple* triple = nullptr;          ///< indicator: owning triple

  // --- compiled metadata (Compile() in builder.cc) ---
  Schema key_schema;   ///< K: pairwise intersection of children schemas
  Schema ctx_schema;   ///< schema of enumeration contexts from the parent
  Schema bound_schema; ///< S ∩ ctx: the part of S fixed by the context
  Schema emit_schema;  ///< free variables emitted by this subtree
  Schema subtree_free; ///< free variables among the subtree's leaf atoms
  EnumMode enum_mode = EnumMode::kCovering;

  // Enumeration plumbing.
  int scan_index_id = -1;             ///< index on bound_schema (when proper)
  std::vector<int> ctx_to_bound;      ///< positions in ctx of bound_schema vars
  std::vector<int> row_emit_positions;  ///< positions in S of row-emitted vars
  Schema row_emit_schema;               ///< the row-emitted vars, in S order
  std::vector<std::vector<int>> child_emit_slices;  ///< emit positions per child
  std::vector<SourceRef> lookup_row_sources;  ///< build S row from (ctx, emit)
  int indicator_scan_index_id = -1;   ///< on H: index on (H.schema ∩ ctx)
  std::vector<int> ctx_to_indicator_bound;  ///< ctx positions for that index

  // Maintenance plumbing.
  std::vector<DeltaPlan> delta_plans;  ///< one per child position

  // Mutability specialization (computed once by MaintainedQuery after the
  // plan is built; Kara et al. 2024). threshold_static: no input of this
  // subtree depends on the heavy/light threshold of a dynamic relation
  // (every light-part leaf belongs to a static relation and every indicator
  // reference is to a static triple) — major rebalancing skips recomputing
  // the subtree. fully_static: additionally no full-relation leaf of a
  // dynamic relation — the subtree's storages never change after
  // Preprocess, so they are never versioned.
  bool threshold_static = false;
  bool fully_static = false;

  bool IsLeaf() const { return kind == NodeKind::kLeaf; }
  bool IsIndicator() const { return kind == NodeKind::kIndicator; }

  /// Position of `child` among this node's children.
  int ChildIndex(const ViewNode* child) const {
    for (size_t i = 0; i < children.size(); ++i) {
      if (children[i].get() == child) return static_cast<int>(i);
    }
    return -1;
  }

  /// Pretty-prints the subtree, e.g. "VA(A) <- {∃HA(A), VB(A)}".
  std::string ToString(const std::vector<std::string>& var_names, int indent = 0) const;
};

/// The triple of indicator structures built at a violating bound variable X
/// (Figure 10): the All view tree over the full relations, the L view tree
/// over light parts, and H(keys) with multiplicity All(t)·[L(t) = 0]. ∃H is
/// H with set semantics; the engine maintains H incrementally from changes
/// to All and L (Figure 18).
struct IndicatorTriple {
  Schema keys;
  std::unique_ptr<ViewNode> all_tree;
  std::unique_ptr<ViewNode> light_tree;
  std::unique_ptr<Relation> h;
  std::vector<ViewNode*> h_refs;  ///< ∃H gate nodes in the main trees
  std::string name;               ///< e.g. "H_B"

  /// Every atom under the triple belongs to a static relation (and every
  /// nested indicator reference is to a static triple): All, L, and H are
  /// constant after Preprocess. Major rebalancing skips the triple and its
  /// storages are never versioned. Computed by MaintainedQuery.
  bool is_static = false;

  /// Recomputes H from the current All and L roots (used by preprocessing
  /// and major rebalancing).
  void RecomputeH();
};

/// A complete view tree (one strategy of the union; Proposition 20).
struct ViewTree {
  std::unique_ptr<ViewNode> root;
  int component = 0;  ///< connected component of the query this tree covers
};

}  // namespace ivme

#endif  // IVME_CORE_VIEW_NODE_H_
