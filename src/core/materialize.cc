#include "src/core/materialize.h"

#include <memory>
#include <vector>

#include "src/common/check.h"
#include "src/common/counters.h"
#include "src/storage/tuple_map.h"

namespace ivme {

namespace {

bool g_inside_out_enabled = true;

// A materialization input: either a child's storage directly or a transient
// aggregate of it onto (S ∪ K) ∩ S_i.
struct MatInput {
  const Relation* relation = nullptr;     // the relation to read
  std::unique_ptr<Relation> temp;         // owns the aggregate, when created
  Schema schema;
  std::vector<int> key_positions;         // K positions in `schema`
  int key_index_id = -1;                  // index on K (probe inputs only)
  // When the input schema is exactly K but permuted (repeated relation
  // symbols, e.g. R(A, B) ⋈ R(B, A)): scatter positions turning a K-ordered
  // key into a tuple in the input's own layout. Empty when the orders agree.
  std::vector<int> key_scatter;
};

MatInput PrepareInput(ViewNode* child, const Schema& out_schema, const Schema& keys) {
  MatInput input;
  const Schema& child_schema = child->schema;
  Schema keep = child_schema.Intersect(out_schema.Union(keys));
  if (keep.size() == child_schema.size() || !g_inside_out_enabled) {
    input.relation = child->storage;
    input.schema = child_schema;
  } else {
    // Aggregate away the variables that neither the output nor the join
    // needs — the InsideOut step; keeps the join inputs degree-bounded.
    input.temp = std::make_unique<Relation>(keep, child->name + "~agg");
    const auto positions = ProjectionPositions(child_schema, keep);
    Tuple scratch;
    for (const Relation::Entry* e = child->storage->First(); e != nullptr;
         e = Relation::NextLive(e)) {
      ++LocalCounters().materialize_steps;
      scratch.AssignProjection(e->key, positions);
      input.temp->Apply(scratch, Relation::EntryMult(e));
    }
    input.relation = input.temp.get();
    input.schema = keep;
  }
  input.key_positions = ProjectionPositions(input.schema, keys.Intersect(input.schema));
  if (input.key_positions.size() == input.schema.size()) {
    bool identity = true;
    for (size_t j = 0; j < input.key_positions.size(); ++j) {
      if (input.key_positions[j] != static_cast<int>(j)) identity = false;
    }
    if (!identity) {
      // Inverse permutation: lookup[i] = key[key_scatter[i]] lands the key
      // value of schema position i at position i.
      input.key_scatter.assign(input.key_positions.size(), 0);
      for (size_t j = 0; j < input.key_positions.size(); ++j) {
        input.key_scatter[static_cast<size_t>(input.key_positions[j])] = static_cast<int>(j);
      }
    }
  }
  return input;
}

// Row assembly source: for each output variable, the first input providing
// it.
struct OutSource {
  size_t input;
  int pos;
};

// Nested-loop join prober: driver input 0, probes on K for the others.
// Plain recursive member calls (no std::function allocation per node) with
// scratch tuples reused across rows.
struct JoinProber {
  ViewNode* node;
  const std::vector<MatInput>& inputs;
  const std::vector<OutSource>& out_sources;
  std::vector<const Tuple*> current;
  Tuple key;      // scratch: the driver row restricted to K, fixed per row
  Tuple out_row;  // scratch: assembled output row
  std::vector<Tuple> lookup;  // scratch per level: key in the input's layout

  JoinProber(ViewNode* n, const std::vector<MatInput>& in, const std::vector<OutSource>& out)
      : node(n), inputs(in), out_sources(out), current(in.size(), nullptr), lookup(in.size()) {
    out_row.Reserve(n->schema.size());
  }

  void Probe(size_t i, Mult mult) {
    if (i == inputs.size()) {
      ++LocalCounters().materialize_steps;
      out_row.Clear();
      for (const auto& src : out_sources) {
        out_row.PushBack((*current[src.input])[static_cast<size_t>(src.pos)]);
      }
      node->storage->Apply(out_row, mult);
      return;
    }
    const MatInput& input = inputs[i];
    if (input.key_index_id >= 0) {
      for (const auto* link = input.relation->index(input.key_index_id).FirstForKey(key);
           link != nullptr; link = Relation::Index::NextLink(link)) {
        current[i] = &link->entry->key;
        Probe(i + 1, mult * Relation::EntryMult(link->entry));
      }
    } else if (input.key_positions.size() == input.schema.size()) {
      // The input is exactly the key set: point lookup. When the input's
      // layout permutes the key order, the lookup tuple (and the row handed
      // to out_sources) must be in the input's layout, not key order.
      const Tuple* probe = &key;
      if (!input.key_scatter.empty()) {
        lookup[i].AssignProjection(key, input.key_scatter);
        probe = &lookup[i];
      }
      const Mult m = input.relation->Multiplicity(*probe);
      if (m != 0) {
        current[i] = probe;
        Probe(i + 1, mult * m);
      }
    } else {
      // No shared key (Cartesian-ish, only for empty K): full scan.
      for (const Relation::Entry* e = input.relation->First(); e != nullptr;
           e = Relation::NextLive(e)) {
        current[i] = &e->key;
        Probe(i + 1, mult * Relation::EntryMult(e));
      }
    }
  }
};

}  // namespace

void MaterializeNode(ViewNode* node) {
  if (node->kind != NodeKind::kView) return;
  node->storage->Clear();

  // Split children into gates (∃H) and join inputs.
  std::vector<ViewNode*> join_children;
  std::vector<const Relation*> gates;
  for (auto& child : node->children) {
    if (child->IsIndicator()) {
      gates.push_back(child->storage);
    } else {
      join_children.push_back(child.get());
    }
  }
  IVME_CHECK_MSG(!join_children.empty(), "view " << node->name << " has no join children");

  const Schema& keys = node->key_schema;
  std::vector<MatInput> inputs;
  inputs.reserve(join_children.size());
  for (ViewNode* child : join_children) {
    inputs.push_back(PrepareInput(child, node->schema, keys));
  }
  // Probe inputs get an index on their key part.
  for (size_t i = 1; i < inputs.size(); ++i) {
    Schema key_part;
    for (int pos : inputs[i].key_positions) key_part.Append(inputs[i].schema[static_cast<size_t>(pos)]);
    // Index only useful when the key is a proper subset of the input schema.
    // Requested by column position (key_positions is already relative to the
    // input schema): leaf inputs may be store-shared base relations whose
    // canonical schema lives in a different variable-id space.
    if (!key_part.empty() && key_part.size() < inputs[i].schema.size()) {
      inputs[i].key_index_id = const_cast<Relation*>(inputs[i].relation)
                                   ->EnsureIndexOnColumns(inputs[i].key_positions);
    }
  }

  std::vector<OutSource> out_sources;
  for (VarId v : node->schema) {
    bool found = false;
    for (size_t i = 0; i < inputs.size() && !found; ++i) {
      const int pos = inputs[i].schema.PositionOf(v);
      if (pos >= 0) {
        out_sources.push_back(OutSource{i, pos});
        found = true;
      }
    }
    IVME_CHECK_MSG(found, "output variable unreachable while materializing " << node->name);
  }

  JoinProber prober(node, inputs, out_sources);
  for (const Relation::Entry* e = inputs[0].relation->First(); e != nullptr;
       e = Relation::NextLive(e)) {
    ++LocalCounters().materialize_steps;
    // The driver row's K restriction: projected once per row, its cached
    // hash shared by every gate lookup and probe below.
    prober.key.AssignProjection(e->key, inputs[0].key_positions);
    // Gates: all ∃H children must hold for this row's key.
    bool gated_out = false;
    for (const Relation* gate : gates) {
      if (gate->Multiplicity(prober.key) == 0) {
        gated_out = true;
        break;
      }
    }
    if (gated_out) continue;
    prober.current[0] = &e->key;
    prober.Probe(1, Relation::EntryMult(e));
  }
}

void MaterializeTree(ViewNode* root) {
  for (auto& child : root->children) MaterializeTree(child.get());
  MaterializeNode(root);
}

void SetMaterializeInsideOut(bool enabled) { g_inside_out_enabled = enabled; }

bool MaterializeInsideOutEnabled() { return g_inside_out_enabled; }

size_t TreeStorageSize(const ViewNode* root) {
  size_t total = root->kind == NodeKind::kView ? root->storage->size() : 0;
  for (const auto& child : root->children) total += TreeStorageSize(child.get());
  return total;
}

}  // namespace ivme
