// Delta propagation through view trees (Figure 17) and indicator
// maintenance (Figure 18). Engine-level orchestration (Figure 19/22) lives
// in engine.cc.
#ifndef IVME_CORE_DELTA_H_
#define IVME_CORE_DELTA_H_

#include <utility>
#include <vector>

#include "src/core/view_node.h"

namespace ivme {

/// A set of changed tuples with signed multiplicities, over one schema.
using DeltaVec = std::vector<std::pair<Tuple, Mult>>;

/// Computes δV at `node` for `delta` arriving from children[child_idx]
/// (standard delta rule: δV = π_S(δC_j ⋈ ⨝_{i≠j} C_i), with indicator
/// siblings as 0/1 gates), applies it to the node's storage, and returns it.
/// Sibling views must not have been updated for this logical change yet.
DeltaVec ApplyDeltaAtNode(ViewNode* node, int child_idx, const DeltaVec& delta);

/// Propagates a delta that already hit `child`'s storage up through all
/// ancestor views (stops early when a delta becomes empty). `child` may be
/// a leaf, an indicator reference (support change ±1), or an inner view.
void PropagateUp(ViewNode* child, DeltaVec delta);

/// Support change of an indicator view: +1 (appeared), -1 (vanished), or 0.
inline int SupportChange(Mult before, Mult after) {
  if (before == 0 && after != 0) return 1;
  if (before != 0 && after == 0) return -1;
  return 0;
}

}  // namespace ivme

#endif  // IVME_CORE_DELTA_H_
