// Construction of the skew-aware view trees (Section 4): BuildVT (Fig. 6),
// NewVT (Fig. 7), AuxView (Fig. 8), IndicatorVTs (Fig. 10), and τ (Fig. 11),
// followed by a compile pass that precomputes enumeration and maintenance
// plans (index declarations, projection maps, delta plans).
#ifndef IVME_CORE_BUILDER_H_
#define IVME_CORE_BUILDER_H_

#include <memory>
#include <optional>
#include <vector>

#include "src/core/view_node.h"
#include "src/query/query.h"
#include "src/query/variable_order.h"

namespace ivme {

/// Evaluation mode (the `mode` global of Figure 11).
enum class EvalMode { kStatic, kDynamic };

/// Supplies the engine-owned storage for leaves: the full relation of each
/// atom occurrence and its light parts per partition schema.
class StorageProvider {
 public:
  virtual ~StorageProvider() = default;

  /// Full-relation storage backing atom occurrence `atom_index`.
  virtual Relation* AtomStorage(int atom_index) = 0;

  /// Light part of occurrence `atom_index` partitioned on `keys`
  /// (created on first request).
  virtual RelationPartition* AtomPartition(int atom_index, const Schema& keys) = 0;
};

/// Everything the preprocessing stage constructs for one query.
struct CompiledPlan {
  /// Skew-aware view trees (τ output), grouped by connected component via
  /// ViewTree::component. Proposition 20: the query is the union of the
  /// joins of each tree's leaves.
  std::vector<std::unique_ptr<ViewTree>> trees;

  /// Indicator triples, one per violating bound variable.
  std::vector<std::unique_ptr<IndicatorTriple>> triples;

  /// Number of connected components of the query.
  int num_components = 0;

  // --- component-root routing metadata (sharding) ---
  // The canonical variable order has one tree per connected component, and
  // in a canonical order every atom's variables are exactly the inner nodes
  // of its root-to-leaf path — so the component's root variable occurs in
  // every atom of the component. Hash-partitioning all relations on that
  // root value therefore splits the database into slices whose view trees,
  // indicator triples, and heavy/light thresholds are fully independent
  // (ShardedEngine builds on this).

  /// Root variable of each component's canonical tree, indexed by component
  /// id; kInvalidVar when the component root is a variable-free atom.
  std::vector<VarId> component_roots;

  /// Per atom: position of its component's root variable in the atom
  /// schema, or -1 when the component has no root variable.
  std::vector<int> atom_root_pos;
};

/// Runs τ over the canonical variable order of `q` and compiles the result.
/// `q` must be hierarchical. Registers ∃H references in their triples.
CompiledPlan BuildPlan(const ConjunctiveQuery& q, EvalMode mode, StorageProvider* storage);

/// BuildVT alone over (a subtree of) the canonical variable order — exposed
/// for tests reproducing Figures 9, 23, 24. `free` plays the role of F;
/// `light_keys`, when set, replaces each atom with its light part on those
/// keys (the ω^keys of the paper).
std::unique_ptr<ViewNode> BuildVTForTest(const ConjunctiveQuery& q, const VONode* node,
                                         const Schema& free,
                                         const std::optional<Schema>& light_keys, EvalMode mode,
                                         StorageProvider* storage);

/// Compiles enumeration/maintenance metadata for a tree rooted at `root`
/// whose output variables are `free`. Creates all indexes the plans need.
void CompileTree(const ConjunctiveQuery& q, ViewNode* root, const Schema& free);

}  // namespace ivme

#endif  // IVME_CORE_BUILDER_H_
