// The public engine: builds the skew-aware view trees for a hierarchical
// query, materializes them (preprocessing, Theorem 2/4), maintains them
// under single-tuple updates with minor/major rebalancing (Section 6), and
// enumerates the distinct result tuples (Section 5).
#ifndef IVME_CORE_ENGINE_H_
#define IVME_CORE_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/baselines/brute_force.h"
#include "src/core/builder.h"
#include "src/core/view_node.h"
#include "src/enumerate/enumerator.h"
#include "src/query/query.h"

namespace ivme {

/// Engine configuration.
struct EngineOptions {
  /// The ε knob of Theorems 2 and 4: heavy/light threshold θ = M^ε.
  double epsilon = 0.5;

  /// Static evaluation (no updates accepted) or dynamic (IVM^ε).
  EvalMode mode = EvalMode::kDynamic;

  /// Disables minor/major rebalancing (ablation only — partitions then
  /// drift from their thresholds, which voids the amortized guarantees but
  /// keeps results correct).
  bool enable_rebalancing = true;
};

/// Evaluation/maintenance engine for one hierarchical query.
///
/// Lifecycle: construct → Load base tuples → Preprocess() → interleave
/// ApplyUpdate (dynamic mode) and Enumerate().
class Engine : public StorageProvider {
 public:
  /// `q` must be hierarchical (checked).
  Engine(ConjunctiveQuery q, EngineOptions options);
  ~Engine() override;

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // --- StorageProvider (used by the builder) ---
  Relation* AtomStorage(int atom_index) override;
  RelationPartition* AtomPartition(int atom_index, const Schema& keys) override;

  /// Bulk-loads base tuples before preprocessing. Tuples accumulate
  /// multiplicities; every relation symbol of the query is addressable.
  void Load(const std::string& relation, const std::vector<std::pair<Tuple, Mult>>& tuples);
  void LoadTuple(const std::string& relation, const Tuple& tuple, Mult mult);

  /// Partitions the relations (θ = M^ε with M = 2N+1) and materializes all
  /// views. Call exactly once, after loading.
  void Preprocess();

  /// Applies a single-tuple insert (m > 0) or delete (m < 0), maintaining
  /// all views and rebalancing partitions. Returns false (and changes
  /// nothing) when a delete exceeds the current multiplicity. Requires
  /// dynamic mode and a preprocessed engine.
  bool ApplyUpdate(const std::string& relation, const Tuple& tuple, Mult mult);

  /// Opens an enumeration session over the current result.
  std::unique_ptr<ResultEnumerator> Enumerate() const;

  /// Drains a full enumeration into a map (convenience for tests/examples).
  QueryResult EvaluateToMap() const;

  // --- introspection ---
  const ConjunctiveQuery& query() const { return query_; }
  double epsilon() const { return options_.epsilon; }
  EvalMode mode() const { return options_.mode; }

  /// Current database size N (sum of distinct tuples over atom storages).
  size_t database_size() const { return n_; }

  /// Threshold base M with invariant ⌊M/4⌋ ≤ N < M (Definition 51).
  size_t threshold_base() const { return m_; }

  /// Current heavy/light threshold θ = M^ε.
  double theta() const;

  struct Stats {
    size_t updates = 0;
    size_t minor_rebalances = 0;
    size_t major_rebalances = 0;
    size_t num_trees = 0;
    size_t num_triples = 0;
    size_t view_tuples = 0;  ///< total tuples stored across all views
  };
  Stats GetStats() const;

  const CompiledPlan& plan() const { return plan_; }

  /// Renders every view tree and indicator tree (tests, debugging).
  std::string DebugString() const;

  /// Verifies all internal invariants: partition bands (Definition 11), the
  /// size invariant, view-equals-join-of-children for every view, and
  /// H = All ∧ ¬L for every triple. Returns false and fills `error` on the
  /// first violation. O(database) — test use only.
  bool CheckInvariants(std::string* error);

 private:
  struct SlotPartition {
    RelationPartition* partition = nullptr;
    IndicatorTriple* triple = nullptr;
    ViewNode* all_leaf = nullptr;  ///< this slot's leaf in triple->all_tree
    ViewNode* light_leaf = nullptr;  ///< this slot's leaf in triple->light_tree
    std::vector<ViewNode*> main_light_leaves;
  };

  /// One atom occurrence with its own storage (repeated relation symbols
  /// become independent occurrences, updated in sequence — footnote 2).
  struct Slot {
    int atom_index = -1;
    std::string relation;
    std::unique_ptr<Relation> storage;
    std::vector<std::unique_ptr<RelationPartition>> partitions;
    std::vector<SlotPartition> infos;
    std::vector<ViewNode*> main_full_leaves;
  };

  void RegisterLeaves();
  void ApplyUpdateToSlot(Slot& slot, const Tuple& tuple, Mult mult);
  void ApplyLightDelta(SlotPartition& info, const Tuple& tuple, Mult mult);
  void ApplyAllChangeToH(IndicatorTriple* triple, const Tuple& key, Mult all_change);
  void ApplyNotLChangeToH(IndicatorTriple* triple, const Tuple& key, int not_l_change);
  void PropagateIndicatorChange(IndicatorTriple* triple, const Tuple& key, int change);
  void Rebalance(Slot& slot, const Tuple& tuple);
  void MinorRebalancing(SlotPartition& info, const Tuple& key, bool insert);
  void MajorRebalancing();
  void RecomputeThresholdViews();

  ConjunctiveQuery query_;
  EngineOptions options_;
  std::vector<Slot> slots_;
  CompiledPlan plan_;
  bool preprocessed_ = false;
  size_t n_ = 0;
  size_t m_ = 1;
  Stats stats_;
};

}  // namespace ivme

#endif  // IVME_CORE_ENGINE_H_
