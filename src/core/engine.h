// The single-query engine facade: a QueryCatalog with exactly one
// registered MaintainedQuery, preserving the original Engine surface
// (Load → Preprocess → ApplyUpdate/ApplyBatch → Enumerate). The actual
// machinery — shared base storage, per-query view trees/partitions/
// indicator triples, θ/M/ε rebalancing — lives in RelationStore,
// MaintainedQuery, and QueryCatalog; multi-query serving uses QueryCatalog
// directly.
#ifndef IVME_CORE_ENGINE_H_
#define IVME_CORE_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/catalog.h"
#include "src/core/maintained_query.h"

namespace ivme {

/// Evaluation/maintenance engine for one hierarchical query.
///
/// Lifecycle: construct → Load base tuples → Preprocess() → interleave
/// ApplyUpdate / ApplyBatch (dynamic mode) and Enumerate(). Thin wrapper
/// over a private QueryCatalog holding one MaintainedQuery; the
/// StorageProvider surface is forwarded for tests that build view trees
/// against an engine's storage.
class Engine : public StorageProvider {
 public:
  /// Per-query statistics (see QueryStats).
  using Stats = QueryStats;

  /// Outcome of one ApplyBatch call (see ivme::BatchResult).
  using BatchResult = ivme::BatchResult;

  /// `q` must be hierarchical (checked).
  Engine(ConjunctiveQuery q, EngineOptions options);
  ~Engine() override;

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // --- StorageProvider (used by the builder; forwarded to the query) ---
  Relation* AtomStorage(int atom_index) override;
  RelationPartition* AtomPartition(int atom_index, const Schema& keys) override;

  /// Bulk-loads base tuples before preprocessing. Tuples accumulate
  /// multiplicities; every relation symbol of the query is addressable.
  void Load(const std::string& relation, const std::vector<std::pair<Tuple, Mult>>& tuples);
  void LoadTuple(const std::string& relation, const Tuple& tuple, Mult mult);

  /// Partitions the relations (θ = M^ε with M = 2N+1) and materializes all
  /// views. Call exactly once, after loading.
  void Preprocess();

  /// Applies a single-tuple insert (m > 0) or delete (m < 0), maintaining
  /// all views and rebalancing partitions. Returns false (and changes
  /// nothing) when a delete exceeds the current multiplicity. Requires
  /// dynamic mode and a preprocessed engine.
  bool ApplyUpdate(const std::string& relation, const Tuple& tuple, Mult mult);

  /// Validating variant (see QueryCatalog::TryApplyUpdate): structural
  /// misuse is Status::Error, data-plane refusals — delete below zero,
  /// write to a static relation, delete from an insert-only relation — are
  /// Status::Rejected; the store is unchanged on either.
  Status TryApplyUpdate(const std::string& relation, const Tuple& tuple, Mult mult);

  /// Applies `count` updates as one batch: net-delta consolidation, one
  /// maintenance pass per relation, deferred rebalancing (see
  /// QueryCatalog::ApplyBatch for the full contract). A net delete larger
  /// than the stored multiplicity rejects that entry only.
  BatchResult ApplyBatch(const Update* updates, size_t count);
  BatchResult ApplyBatch(const UpdateBatch& updates);

  /// Validating variant (see QueryCatalog::TryApplyBatch): a batch touching
  /// a static relation or deleting from an insert-only one is refused whole
  /// with Status::Rejected and nothing applied.
  Status TryApplyBatch(const Update* updates, size_t count, BatchResult* result);
  Status TryApplyBatch(const UpdateBatch& updates, BatchResult* result);

  /// Opens an enumeration session over the current result.
  std::unique_ptr<ResultEnumerator> Enumerate() const;

  /// Contents of a relation's base storage as (tuple, multiplicity) pairs,
  /// in storage order. Used to rebuild an engine under a different
  /// configuration (e.g. resharding in the shell). O(relation).
  std::vector<std::pair<Tuple, Mult>> DumpRelation(const std::string& relation) const;

  /// Drains a full enumeration into a map (convenience for tests/examples).
  QueryResult EvaluateToMap() const;

  // --- introspection (forwarded to the maintained query) ---
  const ConjunctiveQuery& query() const { return query_->query(); }
  double epsilon() const { return query_->epsilon(); }
  EvalMode mode() const { return query_->mode(); }

  /// Current database size N (sum of distinct tuples over atom storages).
  size_t database_size() const { return query_->database_size(); }

  /// Threshold base M with invariant ⌊M/4⌋ ≤ N < M (Definition 51).
  size_t threshold_base() const { return query_->threshold_base(); }

  /// Current heavy/light threshold θ = M^ε.
  double theta() const { return query_->theta(); }

  Stats GetStats() const { return query_->GetStats(); }

  /// Latency distributions of this engine's ApplyUpdate / ApplyBatch calls
  /// (recorded by the underlying catalog on the driving thread).
  const LatencyHistogram& update_latency() const { return catalog_.update_latency(); }
  const LatencyHistogram& batch_latency() const { return catalog_.batch_latency(); }
  void ResetLatency() { catalog_.ResetLatency(); }

  const CompiledPlan& plan() const { return query_->plan(); }

  /// Renders every view tree and indicator tree (tests, debugging).
  std::string DebugString() const { return query_->DebugString(); }

  /// Verifies all internal invariants (see MaintainedQuery::CheckInvariants).
  bool CheckInvariants(std::string* error) { return query_->CheckInvariants(error); }

  /// The underlying single-query catalog and its shared store (exposed so
  /// callers can graduate from an Engine to multi-query serving without
  /// rebuilding).
  QueryCatalog& catalog() { return catalog_; }
  const QueryCatalog& catalog() const { return catalog_; }

 private:
  QueryCatalog catalog_;
  MaintainedQuery* query_ = nullptr;  ///< owned by catalog_
};

}  // namespace ivme

#endif  // IVME_CORE_ENGINE_H_
