// The public engine: builds the skew-aware view trees for a hierarchical
// query, materializes them (preprocessing, Theorem 2/4), maintains them
// under single-tuple and batched updates with minor/major rebalancing
// (Section 6), and enumerates the distinct result tuples (Section 5).
#ifndef IVME_CORE_ENGINE_H_
#define IVME_CORE_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/baselines/brute_force.h"
#include "src/core/builder.h"
#include "src/core/view_node.h"
#include "src/data/update.h"
#include "src/enumerate/enumerator.h"
#include "src/query/query.h"
#include "src/storage/tuple_map.h"

namespace ivme {

/// Engine configuration.
struct EngineOptions {
  /// The ε knob of Theorems 2 and 4: heavy/light threshold θ = M^ε.
  double epsilon = 0.5;

  /// Static evaluation (no updates accepted) or dynamic (IVM^ε).
  EvalMode mode = EvalMode::kDynamic;

  /// Disables minor/major rebalancing (ablation only — partitions then
  /// drift from their thresholds, which voids the amortized guarantees but
  /// keeps results correct).
  bool enable_rebalancing = true;
};

/// Evaluation/maintenance engine for one hierarchical query.
///
/// Lifecycle: construct → Load base tuples → Preprocess() → interleave
/// ApplyUpdate / ApplyBatch (dynamic mode) and Enumerate().
class Engine : public StorageProvider {
 public:
  /// `q` must be hierarchical (checked).
  Engine(ConjunctiveQuery q, EngineOptions options);
  ~Engine() override;

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // --- StorageProvider (used by the builder) ---
  Relation* AtomStorage(int atom_index) override;
  RelationPartition* AtomPartition(int atom_index, const Schema& keys) override;

  /// Bulk-loads base tuples before preprocessing. Tuples accumulate
  /// multiplicities; every relation symbol of the query is addressable.
  void Load(const std::string& relation, const std::vector<std::pair<Tuple, Mult>>& tuples);
  void LoadTuple(const std::string& relation, const Tuple& tuple, Mult mult);

  /// Partitions the relations (θ = M^ε with M = 2N+1) and materializes all
  /// views. Call exactly once, after loading.
  void Preprocess();

  /// Applies a single-tuple insert (m > 0) or delete (m < 0), maintaining
  /// all views and rebalancing partitions. Returns false (and changes
  /// nothing) when a delete exceeds the current multiplicity. Requires
  /// dynamic mode and a preprocessed engine.
  bool ApplyUpdate(const std::string& relation, const Tuple& tuple, Mult mult);

  /// Outcome of one ApplyBatch call.
  struct BatchResult {
    /// Consolidated net-delta entries that reached the view trees. Records
    /// that cancelled to a net multiplicity of 0 are never applied and are
    /// counted in neither field.
    size_t applied = 0;
    /// Net deletes that exceeded the stored multiplicity; those entries are
    /// skipped in full (the rest of the batch still applies).
    size_t rejected = 0;
  };

  /// Applies `count` updates as one batch. Semantics and cost model:
  ///
  ///  1. **Net-delta consolidation.** The batch is first consolidated per
  ///     relation: multiplicities of records addressing the same
  ///     (relation, tuple) pair are summed, so insert/delete pairs cancel
  ///     and repeated inserts merge into one weighted delta. Only the
  ///     surviving net entries touch storage or views. For streams in which
  ///     every single-tuple update would have been accepted, the final
  ///     state is identical to applying the records one at a time with
  ///     ApplyUpdate, in any order or chunking of the stream.
  ///  2. **One maintenance pass per relation.** Each relation's net delta
  ///     runs through the base storage, partitions, indicator triples, and
  ///     view trees in a single pass (Figure 19 per net entry), instead of
  ///     one full walk per input record.
  ///  3. **Deferred rebalancing.** Minor-rebalancing threshold checks
  ///     (Figure 22) run once per relation per batch over the touched
  ///     partition keys, and the major-rebalance trigger on the size
  ///     invariant ⌊M/4⌋ ≤ N < M is evaluated once at batch end (doubling /
  ///     halving M as often as needed), so a batch cannot thrash
  ///     partitions. Mid-batch the loose partition bands of Definition 11
  ///     may drift — results stay exact; the amortized-cost bands are
  ///     restored before ApplyBatch returns.
  ///
  /// A net delete larger than the stored multiplicity rejects that entry
  /// only (counted in BatchResult::rejected); this is the batch analogue of
  /// ApplyUpdate returning false. Requires dynamic mode and a preprocessed
  /// engine; every record must address a relation symbol of the query.
  BatchResult ApplyBatch(const Update* updates, size_t count);
  BatchResult ApplyBatch(const UpdateBatch& updates);

  /// Opens an enumeration session over the current result.
  std::unique_ptr<ResultEnumerator> Enumerate() const;

  /// Contents of a relation's base storage as (tuple, multiplicity) pairs,
  /// in storage order. Used to rebuild an engine under a different
  /// configuration (e.g. resharding in the shell). O(relation).
  std::vector<std::pair<Tuple, Mult>> DumpRelation(const std::string& relation) const;

  /// Drains a full enumeration into a map (convenience for tests/examples).
  QueryResult EvaluateToMap() const;

  // --- introspection ---
  const ConjunctiveQuery& query() const { return query_; }
  double epsilon() const { return options_.epsilon; }
  EvalMode mode() const { return options_.mode; }

  /// Current database size N (sum of distinct tuples over atom storages).
  size_t database_size() const { return n_; }

  /// Threshold base M with invariant ⌊M/4⌋ ≤ N < M (Definition 51).
  size_t threshold_base() const { return m_; }

  /// Current heavy/light threshold θ = M^ε.
  double theta() const;

  struct Stats {
    size_t updates = 0;  ///< single-tuple updates + records ingested via batches
    size_t batches = 0;  ///< ApplyBatch calls
    size_t batch_net_entries = 0;  ///< consolidated entries applied by batches
    size_t minor_rebalances = 0;
    size_t major_rebalances = 0;
    size_t num_trees = 0;
    size_t num_triples = 0;
    size_t view_tuples = 0;  ///< total tuples stored across all views
  };
  Stats GetStats() const;

  const CompiledPlan& plan() const { return plan_; }

  /// Renders every view tree and indicator tree (tests, debugging).
  std::string DebugString() const;

  /// Verifies all internal invariants: partition bands (Definition 11), the
  /// size invariant, view-equals-join-of-children for every view, and
  /// H = All ∧ ¬L for every triple. Returns false and fills `error` on the
  /// first violation. O(database) — test use only.
  bool CheckInvariants(std::string* error);

 private:
  struct SlotPartition {
    RelationPartition* partition = nullptr;
    IndicatorTriple* triple = nullptr;
    ViewNode* all_leaf = nullptr;  ///< this slot's leaf in triple->all_tree
    ViewNode* light_leaf = nullptr;  ///< this slot's leaf in triple->light_tree
    std::vector<ViewNode*> main_light_leaves;
  };

  /// One atom occurrence with its own storage (repeated relation symbols
  /// become independent occurrences, updated in sequence — footnote 2).
  struct Slot {
    int atom_index = -1;
    std::string relation;
    std::unique_ptr<Relation> storage;
    std::vector<std::unique_ptr<RelationPartition>> partitions;
    std::vector<SlotPartition> infos;
    std::vector<ViewNode*> main_full_leaves;
  };

  /// Slots sharing one relation symbol, plus the batch-consolidation
  /// accumulator for that symbol. The accumulator's node pool persists
  /// across batches, so steady-state consolidation allocates nothing.
  struct RelationGroup {
    std::string relation;
    std::vector<size_t> slot_indices;
    std::unique_ptr<TupleMap<Mult>> accum;
    bool in_batch = false;  ///< touched by the batch currently consolidating
  };

  /// Pre-update per-partition snapshot (Figure 19 reads these on the
  /// pre-update database).
  struct KeySnapshot {
    Tuple key;
    bool in_light = false;
    size_t base_before = 0;
    Mult all_before = 0;
  };

  /// Per-partition-key snapshot for one batch: taken on the pre-batch
  /// database, before any of the relation's net delta applies.
  struct BatchKeySnap {
    /// Every delta tuple of this key belongs to the light part: the key was
    /// light, or absent (new keys start light). Matches the per-tuple rule
    /// of Figure 19 applied to the whole consolidated delta.
    bool light_classified = false;
    Mult all_before = 0;  ///< All-tree multiplicity of the key
    Mult l_before = 0;    ///< L-tree multiplicity of the key
  };

  void RegisterLeaves();
  RelationGroup* FindGroup(const std::string& relation);
  void ApplyUpdateToSlot(Slot& slot, const Tuple& tuple, Mult mult);
  /// Figure 19 for one tuple: storage, main trees, indicators, light parts —
  /// everything except rebalancing (shared by the single and batch paths).
  void ApplyDeltaToSlot(Slot& slot, const Tuple& tuple, Mult mult);
  void ApplyLightDelta(SlotPartition& info, const Tuple& tuple, Mult mult);
  void ApplyAllChangeToH(IndicatorTriple* triple, const Tuple& key, Mult all_change);
  void ApplyNotLChangeToH(IndicatorTriple* triple, const Tuple& key, int not_l_change);
  void PropagateIndicatorChange(IndicatorTriple* triple, const Tuple& key, int change);
  /// Figure 19 for a whole consolidated relation delta: one storage pass,
  /// one DeltaVec propagation per view-tree leaf (deltas merge per view on
  /// the way up), per-key indicator maintenance from pre-batch snapshots,
  /// and — when rebalancing is on — one deferred minor-rebalance threshold
  /// check per touched partition key.
  void ApplyBatchDeltaToSlot(Slot& slot, const TupleMap<Mult>& delta);
  void Rebalance(Slot& slot, const Tuple& tuple);
  void MinorCheckKey(SlotPartition& info, const Tuple& key, double th);
  /// Restores ⌊M/4⌋ ≤ N < M, doubling/halving M as often as needed, with at
  /// most one repartition+recompute. Returns true when M changed.
  bool MajorRebalanceIfNeeded();
  void MinorRebalancing(SlotPartition& info, const Tuple& key, bool insert);
  void MajorRebalancing();
  void RecomputeThresholdViews();

  ConjunctiveQuery query_;
  EngineOptions options_;
  std::vector<Slot> slots_;
  std::vector<RelationGroup> groups_;
  CompiledPlan plan_;
  bool preprocessed_ = false;
  size_t n_ = 0;
  size_t m_ = 1;
  Stats stats_;
  std::vector<KeySnapshot> snap_scratch_;  ///< reused by ApplyDeltaToSlot
  /// Batch scratch, reused across batches (pools and capacity persist):
  /// per-partition key snapshots plus the materialized delta vectors.
  std::vector<std::unique_ptr<TupleMap<BatchKeySnap>>> key_scratch_;
  std::vector<std::pair<Tuple, Mult>> batch_delta_scratch_;
  std::vector<std::pair<Tuple, Mult>> batch_light_scratch_;
};

}  // namespace ivme

#endif  // IVME_CORE_ENGINE_H_
