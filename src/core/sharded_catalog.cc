#include "src/core/sharded_catalog.h"

#include "src/common/check.h"
#include "src/core/sharded_engine.h"
#include "src/query/variable_order.h"

namespace ivme {

ShardedCatalog::ShardedCatalog(ShardedCatalogOptions options) : options_(options) {
  IVME_CHECK_MSG(options_.num_shards >= 1, "need at least one shard");
  shards_.reserve(options_.num_shards);
  for (size_t s = 0; s < options_.num_shards; ++s) {
    shards_.push_back(std::make_unique<QueryCatalog>());
  }
  if (options_.num_shards > 1) {
    const size_t threads = options_.num_threads != 0
                               ? options_.num_threads
                               : ThreadPool::DefaultThreads(options_.num_shards);
    if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads);
    split_scratch_.resize(options_.num_shards);
    result_scratch_.resize(options_.num_shards);
  }
}

const ShardedCatalog::Route* ShardedCatalog::FindRoute(const std::string& relation) const {
  for (const auto& route : routes_) {
    if (route.relation == relation) return &route;
  }
  return nullptr;
}

bool ShardedCatalog::RegisterQuery(const std::string& name, const ConjunctiveQuery& q,
                                   EngineOptions options, std::string* why) {
  auto fail = [&](const std::string& reason) {
    if (why != nullptr) *why = reason;
    return false;
  };
  if (shards_[0]->FindQuery(name) != nullptr) {
    return fail("query " + name + " is already registered");
  }
  // Arity agreement with live store relations (and within the query) is
  // part of validation: committing would trip RelationStore::Attach's hard
  // error mid-registration, violating the unchanged-on-false contract.
  for (const Atom& atom : q.atoms()) {
    const Relation* stored = shards_[0]->store().Find(atom.relation);
    const size_t arity = stored != nullptr ? stored->schema().size() : 0;
    if (stored != nullptr && arity != atom.schema.size()) {
      return fail("relation " + atom.relation + " already exists with arity " +
                  std::to_string(arity) + "; " + name + " uses arity " +
                  std::to_string(atom.schema.size()));
    }
    for (const Atom& other : q.atoms()) {
      if (other.relation == atom.relation && other.schema.size() != atom.schema.size()) {
        return fail("query " + name + " uses relation " + atom.relation +
                    " with inconsistent arities");
      }
    }
  }

  bool root_is_free = true;
  std::vector<Route> new_routes;
  if (shards_.size() > 1) {
    if (!ShardedEngine::CanShard(q, why)) return false;
    // CanShard guarantees one connected component with a variable root that
    // every relation symbol reads from one fixed column.
    const VariableOrder vo = VariableOrder::Canonical(q);
    const VarId root_var = vo.roots()[0]->var;
    root_is_free = q.IsFree(root_var);
    for (const std::string& relation : q.RelationNames()) {
      int pos = -1;
      for (const Atom& atom : q.atoms()) {
        if (atom.relation == relation) {
          pos = atom.schema.PositionOf(root_var);
          break;
        }
      }
      const Route* existing = FindRoute(relation);
      if (existing == nullptr) {
        new_routes.push_back(Route{relation, pos});
      } else if (existing->root_pos != pos) {
        return fail("routing conflict on " + relation + ": stored data is sharded on column " +
                    std::to_string(existing->root_pos) + " but " + name +
                    " reads its root from column " + std::to_string(pos));
      }
    }
  }

  // Commit: the query registers in every shard (late registrations
  // preprocess from each shard's live store inside RegisterQuery).
  for (auto& shard : shards_) shard->RegisterQuery(name, q, options);
  for (auto& route : new_routes) {
    consolidator_.EnsureRelation(route.relation);
    routes_.push_back(std::move(route));
  }
  if (shards_.size() == 1) {
    // No routing needed, but the consolidator still tracks the relations.
    for (const std::string& relation : q.RelationNames()) {
      consolidator_.EnsureRelation(relation);
    }
  }
  root_free_names_.push_back(name);
  root_free_.push_back(root_is_free);
  return true;
}

bool ShardedCatalog::DropQuery(const std::string& name) {
  bool dropped = false;
  for (auto& shard : shards_) dropped = shard->DropQuery(name) || dropped;
  for (size_t i = 0; i < root_free_names_.size(); ++i) {
    if (root_free_names_[i] != name) continue;
    root_free_names_.erase(root_free_names_.begin() + static_cast<long>(i));
    root_free_.erase(root_free_.begin() + static_cast<long>(i));
    break;
  }
  // routes_ stays: the stored data remains sharded by it.
  return dropped;
}

MaintainedQuery* ShardedCatalog::FindQuery(const std::string& name, size_t s) const {
  return shards_[s]->FindQuery(name);
}

size_t ShardedCatalog::ShardOf(const std::string& relation, const Tuple& tuple) const {
  if (shards_.size() == 1) return 0;
  const Route* route = FindRoute(relation);
  IVME_CHECK_MSG(route != nullptr, "no routing established for relation " << relation);
  const size_t pos = static_cast<size_t>(route->root_pos);
  if (tuple.size() == 1 && pos == 0) {
    // Unary relation: the tuple is the root key; reuse its cached hash.
    return static_cast<size_t>(tuple.Hash() % static_cast<uint64_t>(shards_.size()));
  }
  return ShardOfRootValue(tuple[pos], shards_.size());
}

void ShardedCatalog::Load(const std::string& relation,
                          const std::vector<std::pair<Tuple, Mult>>& tuples) {
  for (const auto& [tuple, mult] : tuples) LoadTuple(relation, tuple, mult);
}

void ShardedCatalog::LoadTuple(const std::string& relation, const Tuple& tuple, Mult mult) {
  const Status status = TryLoadTuple(relation, tuple, mult);
  IVME_CHECK_MSG(status.ok(), status.message());
}

Status ShardedCatalog::TryLoad(const std::string& relation,
                               const std::vector<std::pair<Tuple, Mult>>& tuples) {
  for (const auto& [tuple, mult] : tuples) {
    Status status = TryLoadTuple(relation, tuple, mult);
    if (!status.ok()) return status;
  }
  return Status::Ok();
}

Status ShardedCatalog::TryLoadTuple(const std::string& relation, const Tuple& tuple,
                                    Mult mult) {
  // Validate against shard 0's store before routing: every shard attaches
  // the same relations with the same arity, and ShardOf reads the root
  // column, which only exists on a well-formed tuple.
  const Relation* stored = shards_[0]->store().Find(relation);
  if (stored == nullptr) {
    return Status::Error("unknown relation " + relation + " (no registered query reads it)");
  }
  if (tuple.size() != stored->schema().size()) {
    return Status::Error("relation " + relation + " has arity " +
                         std::to_string(stored->schema().size()) + "; got a tuple of arity " +
                         std::to_string(tuple.size()));
  }
  if (mult <= 0) {
    return Status::Error("loaded tuples need positive multiplicities; " + relation + " got " +
                         std::to_string(mult) + " for " + tuple.ToString());
  }
  return shards_[ShardOf(relation, tuple)]->TryLoadTuple(relation, tuple, mult);
}

void ShardedCatalog::Preprocess() {
  if (pool_ == nullptr) {
    for (auto& shard : shards_) shard->Preprocess();
    return;
  }
  task_scratch_.clear();
  for (auto& shard : shards_) {
    QueryCatalog* catalog = shard.get();
    task_scratch_.push_back([catalog] { catalog->Preprocess(); });
  }
  pool_->Run(task_scratch_);
}

bool ShardedCatalog::ApplyUpdate(const std::string& relation, const Tuple& tuple, Mult mult) {
  const ScopedLatencyTimer timer(&update_latency_);
  return shards_[ShardOf(relation, tuple)]->ApplyUpdate(relation, tuple, mult);
}

BatchResult ShardedCatalog::ApplyBatch(const UpdateBatch& updates) {
  return ApplyBatch(updates.data(), updates.size());
}

BatchResult ShardedCatalog::ApplyBatch(const Update* updates, size_t count) {
  const ScopedLatencyTimer timer(&batch_latency_);
  if (shards_.size() == 1) return shards_[0]->ApplyBatch(updates, count);

  // Consolidate ONCE at the splitter (shared NetDeltaConsolidator), then
  // route the surviving net entries: equal tuples hash to one shard, so
  // per-shard validation and result counts match the unsharded catalog.
  // Each shard's own consolidation pass over the already-net sub-batch is
  // an identity map. (Per-shard `updates` stats consequently count net
  // entries, not raw records.)
  consolidator_.Begin();
  for (size_t i = 0; i < count; ++i) consolidator_.Add(updates[i]);

  for (auto& sub : split_scratch_) sub.clear();
  for (const size_t group : consolidator_.touched()) {
    const std::string& relation = consolidator_.relation(group);
    for (const auto* node = consolidator_.delta(group).First(); node != nullptr;
         node = node->next) {
      if (node->value == 0) continue;  // cancelled in full
      split_scratch_[ShardOf(relation, node->key)].push_back(
          Update{relation, node->key, node->value});
    }
  }

  // Shard deltas are independent (shared-nothing); apply them concurrently.
  task_scratch_.clear();
  for (size_t s = 0; s < shards_.size(); ++s) {
    result_scratch_[s] = BatchResult();
    if (split_scratch_[s].empty()) continue;
    QueryCatalog* catalog = shards_[s].get();
    const UpdateBatch* sub = &split_scratch_[s];
    BatchResult* result = &result_scratch_[s];
    task_scratch_.push_back([catalog, sub, result] { *result = catalog->ApplyBatch(*sub); });
  }
  if (pool_ != nullptr) {
    pool_->Run(task_scratch_);
  } else {
    for (const auto& task : task_scratch_) task();
  }

  BatchResult total;
  for (const BatchResult& result : result_scratch_) {
    total.applied += result.applied;
    total.rejected += result.rejected;
  }
  return total;
}

std::unique_ptr<MergedEnumerator> ShardedCatalog::Enumerate(const std::string& name) const {
  bool disjoint = true;
  for (size_t i = 0; i < root_free_names_.size(); ++i) {
    if (root_free_names_[i] == name) disjoint = root_free_[i];
  }
  std::vector<std::unique_ptr<ResultEnumerator>> streams;
  streams.reserve(shards_.size());
  for (const auto& shard : shards_) streams.push_back(shard->Enumerate(name));
  return std::make_unique<MergedEnumerator>(std::move(streams),
                                            disjoint || shards_.size() == 1);
}

QueryResult ShardedCatalog::EvaluateToMap(const std::string& name) const {
  auto it = Enumerate(name);
  return DrainEnumeration(*it);
}

std::vector<std::pair<Tuple, Mult>> ShardedCatalog::DumpRelation(
    const std::string& relation) const {
  std::vector<std::pair<Tuple, Mult>> out;
  const Status status = TryDumpRelation(relation, &out);
  IVME_CHECK_MSG(status.ok(), status.message());
  return out;
}

Status ShardedCatalog::TryDumpRelation(const std::string& relation,
                                       std::vector<std::pair<Tuple, Mult>>* out) const {
  out->clear();
  if (shards_[0]->store().Find(relation) == nullptr) {
    return Status::Error("unknown relation " + relation);
  }
  for (const auto& shard : shards_) {
    std::vector<std::pair<Tuple, Mult>> part;
    Status status = shard->TryDumpRelation(relation, &part);
    if (!status.ok()) return status;
    out->insert(out->end(), std::make_move_iterator(part.begin()),
                std::make_move_iterator(part.end()));
  }
  return Status::Ok();
}

size_t ShardedCatalog::store_size() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->store().TotalSize();
  return total;
}

LatencyHistogram ShardedCatalog::AggregateUpdateLatency() const {
  LatencyHistogram merged;
  for (const auto& shard : shards_) merged.Merge(shard->update_latency());
  return merged;
}

LatencyHistogram ShardedCatalog::AggregateBatchLatency() const {
  LatencyHistogram merged;
  for (const auto& shard : shards_) merged.Merge(shard->batch_latency());
  return merged;
}

void ShardedCatalog::ResetLatency() {
  update_latency_.Reset();
  batch_latency_.Reset();
  for (auto& shard : shards_) shard->ResetLatency();
}

bool ShardedCatalog::CheckInvariants(std::string* error) {
  for (size_t s = 0; s < shards_.size(); ++s) {
    std::string shard_error;
    if (!shards_[s]->CheckInvariants(&shard_error)) {
      if (error != nullptr) *error = "shard " + std::to_string(s) + ": " + shard_error;
      return false;
    }
  }
  if (shards_.size() > 1) {
    // Routing invariant: every stored tuple lives in the shard its root
    // value hashes to.
    for (const auto& route : routes_) {
      for (size_t s = 0; s < shards_.size(); ++s) {
        if (shards_[s]->store().Find(route.relation) == nullptr) continue;
        for (const auto& [tuple, mult] : shards_[s]->DumpRelation(route.relation)) {
          (void)mult;
          if (ShardOf(route.relation, tuple) != s) {
            if (error != nullptr) {
              *error = "tuple " + tuple.ToString() + " of " + route.relation +
                       " stored in shard " + std::to_string(s) + " but routed to shard " +
                       std::to_string(ShardOf(route.relation, tuple));
            }
            return false;
          }
        }
      }
    }
  }
  return true;
}

}  // namespace ivme
