#include "src/core/sharded_catalog.h"

#include <chrono>

#include "src/common/check.h"
#include "src/core/sharded_engine.h"
#include "src/query/variable_order.h"

namespace ivme {

ShardedCatalog::ShardedCatalog(ShardedCatalogOptions options) : options_(options) {
  IVME_CHECK_MSG(options_.num_shards >= 1, "need at least one shard");
  shards_.reserve(options_.num_shards);
  for (size_t s = 0; s < options_.num_shards; ++s) {
    shards_.push_back(std::make_unique<QueryCatalog>());
  }
  // One dictionary for the whole catalog: interned ids ride inside routed
  // tuples, so every shard slice must resolve them identically.
  dictionary_ = shards_[0]->store().dictionary();
  for (size_t s = 1; s < options_.num_shards; ++s) {
    shards_[s]->store().ShareDictionary(dictionary_);
  }
  loads_ = std::make_unique<ShardLoadCell[]>(options_.num_shards);
  if (options_.num_shards > 1) {
    const size_t threads = options_.num_threads != 0
                               ? options_.num_threads
                               : ThreadPool::DefaultThreads(options_.num_shards);
    if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads);
    split_scratch_.resize(options_.num_shards);
    replica_scratch_.resize(options_.num_shards);
    result_scratch_.resize(options_.num_shards);
    if (options_.skew.enabled) {
      sketch_ = std::make_unique<SpaceSavingSketch>(options_.skew.sketch_capacity);
    }
  }
}

void ShardedCatalog::AdoptDictionary(std::shared_ptr<StringDictionary> dict) {
  IVME_CHECK_MSG(dict != nullptr, "cannot adopt a null dictionary");
  for (auto& shard : shards_) shard->store().ShareDictionary(dict);
  dictionary_ = std::move(dict);
}

ShardedCatalog::~ShardedCatalog() {
  if (!serving_) return;
  // No readers may outlive the catalog (their pins would deadlock here,
  // which is the bug surfacing early). Drain every log so zombies are freed
  // and the relations can leave versioned mode before the shards destruct.
  epochs_->BeginExclusive();
  for (auto& log : retire_logs_) log->Drain();
  for (auto& shard : shards_) shard->SetEpochContext(nullptr);
}

void ShardedCatalog::EnableServing() {
  if (serving_) return;
  if (epochs_ == nullptr) {
    epochs_ = std::make_unique<EpochManager>();
    retire_logs_.reserve(shards_.size());
    contexts_.resize(shards_.size());
    for (size_t s = 0; s < shards_.size(); ++s) {
      retire_logs_.push_back(std::make_unique<RetireLog>());
      contexts_[s] =
          EpochContext{retire_logs_[s].get(), epochs_->published_ptr(), &fast_epoch_};
    }
  }
  for (size_t s = 0; s < shards_.size(); ++s) shards_[s]->SetEpochContext(&contexts_[s]);
  // Quiescent by construction: the logs are empty and no pin exists, so the
  // published epoch is fast from the first snapshot on.
  fast_epoch_.store(epochs_->published(), std::memory_order_release);
  serving_ = true;
  epochs_->Enable();  // no-op on the first call; re-admits pins after a flip
}

void ShardedCatalog::DisableServing() {
  if (!serving_) return;
  // Refuse all future pins and wait out the active readers; from here no
  // reader can be in flight until EnableServing re-admits them.
  epochs_->Disable();
  // Free every retired object and leave versioned mode: with the version
  // machinery detached, reads take the branch-light kDirect lane and the
  // existing version chains converge to plain single-version nodes.
  for (auto& log : retire_logs_) log->Drain();
  for (auto& shard : shards_) shard->SetEpochContext(nullptr);
  fast_epoch_.store(kLiveEpoch, std::memory_order_release);
  serving_ = false;
}

ReadSnapshot ShardedCatalog::AcquireSnapshot() const {
  IVME_CHECK_MSG(epochs_ != nullptr, "EnableServing before AcquireSnapshot");
  return ReadSnapshot(epochs_.get());
}

ReadSnapshot ShardedCatalog::TryAcquireSnapshot() const {
  IVME_CHECK_MSG(epochs_ != nullptr, "EnableServing before TryAcquireSnapshot");
  return ReadSnapshot::TryAcquire(epochs_.get());
}

size_t ShardedCatalog::RetiredObjects() const {
  size_t total = 0;
  for (const auto& log : retire_logs_) total += log->pending_size() + log->limbo_size();
  return total;
}

void ShardedCatalog::BeginMutation() {
  if (!serving_) return;
  std::vector<Epoch> keeps = epochs_->KeepEpochs();
  for (auto& log : retire_logs_) log->set_keep_epochs(keeps);
}

void ShardedCatalog::PublishAndReclaim() {
  if (!serving_) return;
  epochs_->Publish();
  const Epoch p = epochs_->published();
  const Epoch floor = epochs_->PinFloor();
  const Epoch working = p + 1;
  // The published epoch is "fast" when this boundary reaches full
  // quiescence: no reader pinned below P (floor == P) and — after this
  // reclaim pass — no retired object left anywhere. Then no zombie, dead
  // index link, or multiplicity-version chain is reachable at any epoch
  // ≤ P, and a reader pinned exactly at P can skip version filtering.
  bool clean = floor == p;
  for (auto& log : retire_logs_) {
    log->Reclaim(floor, working);
    clean = clean && log->empty();
  }
  fast_epoch_.store(clean ? p : kLiveEpoch, std::memory_order_release);
}

void ShardedCatalog::QuiescedStructuralChange(const std::function<void()>& fn) {
  if (!serving_) {
    fn();
    return;
  }
  // Structural changes mutate reader-shared layout (queries_ vectors, index
  // vectors, relation teardown), which versioning does not protect — so no
  // reader may be in flight. With the logs drained and the contexts
  // detached, fn() runs in plain legacy mode; re-attaching also covers any
  // relations fn() created.
  epochs_->BeginExclusive();
  for (auto& log : retire_logs_) log->Drain();
  for (auto& shard : shards_) shard->SetEpochContext(nullptr);
  fn();
  for (size_t s = 0; s < shards_.size(); ++s) shards_[s]->SetEpochContext(&contexts_[s]);
  // Quiescent again: logs drained above, no pin can exist while exclusive.
  fast_epoch_.store(epochs_->published(), std::memory_order_release);
  epochs_->EndExclusive();
}

const ShardedCatalog::Route* ShardedCatalog::FindRoute(const std::string& relation) const {
  for (const auto& route : routes_) {
    if (route.relation == relation) return &route;
  }
  return nullptr;
}

bool ShardedCatalog::RegisterQuery(const std::string& name, const ConjunctiveQuery& q,
                                   EngineOptions options, std::string* why) {
  auto fail = [&](const std::string& reason) {
    if (why != nullptr) *why = reason;
    return false;
  };
  if (shards_[0]->FindQuery(name) != nullptr) {
    return fail("query " + name + " is already registered");
  }
  // Arity agreement with live store relations (and within the query) is
  // part of validation: committing would trip RelationStore::Attach's hard
  // error mid-registration, violating the unchanged-on-false contract.
  for (const Atom& atom : q.atoms()) {
    const Relation* stored = shards_[0]->store().Find(atom.relation);
    const size_t arity = stored != nullptr ? stored->schema().size() : 0;
    if (stored != nullptr && arity != atom.schema.size()) {
      return fail("relation " + atom.relation + " already exists with arity " +
                  std::to_string(arity) + "; " + name + " uses arity " +
                  std::to_string(atom.schema.size()));
    }
    for (const Atom& other : q.atoms()) {
      if (other.relation == atom.relation && other.schema.size() != atom.schema.size()) {
        return fail("query " + name + " uses relation " + atom.relation +
                    " with inconsistent arities");
      }
    }
  }
  // Mutability agreement: a relation's declaration is as sticky as its
  // arity (RelationStore records it at first Attach and hard-errors on a
  // conflicting re-attach), so validate the effective declaration —
  // query-text prefix merged with options.mutability overrides, overrides
  // winning in order — against the live store before committing.
  for (const std::string& relation : q.RelationNames()) {
    Mutability declared = q.MutabilityOf(relation);
    for (const MutabilityOverride& o : options.mutability) {
      if (o.relation == relation) declared = o.mutability;
    }
    const Relation* stored = shards_[0]->store().Find(relation);
    if (stored == nullptr) continue;
    const Mutability live = shards_[0]->store().MutabilityOf(relation);
    if (live != declared) {
      return fail("relation " + relation + " is already attached as " + MutabilityName(live) +
                  "; " + name + " declares it " + MutabilityName(declared));
    }
  }

  bool root_is_free = true;
  int root_out = -1;
  std::vector<Route> new_routes;
  if (shards_.size() > 1) {
    if (!ShardedEngine::CanShard(q, why)) return false;
    // CanShard guarantees one connected component with a variable root that
    // every relation symbol reads from one fixed column.
    const VariableOrder vo = VariableOrder::Canonical(q);
    const VarId root_var = vo.roots()[0]->var;
    root_is_free = q.IsFree(root_var);
    if (root_is_free) root_out = q.free_vars().PositionOf(root_var);
    if (skew_routing()) {
      // Hot-key promotion migrates stored tuples and repairs the merged
      // stream per root value; both are only unconditionally sound when the
      // root is visible in the output, no relation symbol repeats (a
      // self-join could read one symbol from two routing columns), and
      // every relation accepts the migration deltas.
      if (!root_is_free) {
        return fail("skew-aware routing requires a free root variable; " + name +
                    " projects its root away");
      }
      for (const std::string& relation : q.RelationNames()) {
        if (q.HasRepeatedSymbol(relation)) {
          return fail("skew-aware routing cannot handle the self-join on " + relation +
                      " in " + name);
        }
        Mutability declared = q.MutabilityOf(relation);
        for (const MutabilityOverride& o : options.mutability) {
          if (o.relation == relation) declared = o.mutability;
        }
        if (declared != Mutability::kDynamic) {
          return fail("skew-aware routing migrates stored tuples and needs dynamic "
                      "relations; " +
                      name + " declares " + relation + " " + MutabilityName(declared));
        }
      }
    }
    for (const std::string& relation : q.RelationNames()) {
      int pos = -1;
      for (const Atom& atom : q.atoms()) {
        if (atom.relation == relation) {
          pos = atom.schema.PositionOf(root_var);
          break;
        }
      }
      const Route* existing = FindRoute(relation);
      if (existing == nullptr) {
        new_routes.push_back(Route{relation, pos});
      } else if (existing->root_pos != pos) {
        return fail("routing conflict on " + relation + ": stored data is sharded on column " +
                    std::to_string(existing->root_pos) + " but " + name +
                    " reads its root from column " + std::to_string(pos));
      }
    }
  }

  // Commit: the query registers in every shard (late registrations
  // preprocess from each shard's live store inside RegisterQuery).
  QuiescedStructuralChange([&] {
    for (auto& shard : shards_) shard->RegisterQuery(name, q, options);
    for (auto& route : new_routes) {
      consolidator_.EnsureRelation(route.relation);
      routes_.push_back(std::move(route));
    }
    if (shards_.size() == 1) {
      // No routing needed, but the consolidator still tracks the relations.
      for (const std::string& relation : q.RelationNames()) {
        consolidator_.EnsureRelation(relation);
      }
    }
    root_free_names_.push_back(name);
    root_free_.push_back(root_is_free);
    root_out_pos_.push_back(root_out);
  });
  return true;
}

bool ShardedCatalog::DropQuery(const std::string& name) {
  bool dropped = false;
  QuiescedStructuralChange([&] {
    for (auto& shard : shards_) dropped = shard->DropQuery(name) || dropped;
    for (size_t i = 0; i < root_free_names_.size(); ++i) {
      if (root_free_names_[i] != name) continue;
      root_free_names_.erase(root_free_names_.begin() + static_cast<long>(i));
      root_free_.erase(root_free_.begin() + static_cast<long>(i));
      root_out_pos_.erase(root_out_pos_.begin() + static_cast<long>(i));
      break;
    }
    // routes_ stays: the stored data remains sharded by it.
  });
  return dropped;
}

MaintainedQuery* ShardedCatalog::FindQuery(const std::string& name, size_t s) const {
  return shards_[s]->FindQuery(name);
}

std::shared_ptr<const OverflowTable> ShardedCatalog::overflow() const {
  return std::atomic_load(&overflow_);
}

size_t ShardedCatalog::NonRootShard(const Tuple& tuple, size_t root_pos) const {
  // Spread placement: hash of everything BUT the root column, so one hot
  // root value's tuples scatter across all shards deterministically.
  Tuple rest;
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (i != root_pos) rest.PushBack(tuple[i]);
  }
  return static_cast<size_t>(rest.Hash() % static_cast<uint64_t>(shards_.size()));
}

ShardedCatalog::RouteDecision ShardedCatalog::Decide(const Route& route, const Tuple& tuple,
                                                     const OverflowTable* table) const {
  const size_t pos = static_cast<size_t>(route.root_pos);
  if (table != nullptr) {
    const OverflowEntry* entry = table->Find(tuple[pos]);
    if (entry != nullptr) {
      if (entry->spread_relation == route.relation) {
        return RouteDecision{false, NonRootShard(tuple, pos)};
      }
      // Replicated relation: one copy per shard keeps every shard's join
      // for this root value local. `shard` reports the primary home.
      return RouteDecision{true, entry->primary};
    }
  }
  if (tuple.size() == 1 && pos == 0) {
    // Unary relation: the tuple is the root key; reuse its cached hash
    // (identical to ShardOfRootValue, which hashes the unary key tuple).
    return RouteDecision{
        false, static_cast<size_t>(tuple.Hash() % static_cast<uint64_t>(shards_.size()))};
  }
  return RouteDecision{false, ShardOfRootValue(tuple[pos], shards_.size())};
}

size_t ShardedCatalog::ShardOf(const std::string& relation, const Tuple& tuple) const {
  if (shards_.size() == 1) return 0;
  const Route* route = FindRoute(relation);
  IVME_CHECK_MSG(route != nullptr, "no routing established for relation " << relation);
  const auto table = overflow();
  return Decide(*route, tuple, table.get()).shard;
}

Status ShardedCatalog::CheckDictValues(const std::string& relation, const Tuple& tuple) const {
  Value bad = 0;
  if (ValidateDictValues(tuple, *dictionary_, &bad)) return Status::Ok();
  return Status::Error("relation " + relation + ": value " + std::to_string(bad) +
                       " lies in the reserved dictionary-id range but is not an " +
                       "interned string (raw integers must stay below 2^62)");
}

ShardLoadStats ShardedCatalog::ShardLoad(size_t s) const {
  ShardLoadStats stats;
  stats.routed_tuples = loads_[s].routed_tuples.load(std::memory_order_relaxed);
  stats.net_entries = loads_[s].net_entries.load(std::memory_order_relaxed);
  stats.apply_nanos = loads_[s].apply_nanos.load(std::memory_order_relaxed);
  return stats;
}

LoadImbalance ShardedCatalog::ComputeImbalance() const {
  LoadImbalance imbalance;
  uint64_t total = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    const uint64_t routed = loads_[s].routed_tuples.load(std::memory_order_relaxed);
    total += routed;
    if (routed > imbalance.max_tuples) imbalance.max_tuples = routed;
  }
  imbalance.mean_tuples = static_cast<double>(total) / static_cast<double>(shards_.size());
  imbalance.max_mean = total == 0 ? 1.0
                                  : static_cast<double>(imbalance.max_tuples) /
                                        imbalance.mean_tuples;
  return imbalance;
}

void ShardedCatalog::ResetLoadStats() {
  for (size_t s = 0; s < shards_.size(); ++s) {
    loads_[s].routed_tuples.store(0, std::memory_order_relaxed);
    loads_[s].net_entries.store(0, std::memory_order_relaxed);
    loads_[s].apply_nanos.store(0, std::memory_order_relaxed);
  }
}

std::vector<OverflowEntry> ShardedCatalog::OverflowEntries() const {
  const auto table = overflow();
  return table != nullptr ? table->entries : std::vector<OverflowEntry>{};
}

Status ShardedCatalog::PromoteHotKey(Value root, const std::string& spread_relation) {
  BeginMutation();
  const Status status = PromoteLocked(root, spread_relation);
  PublishAndReclaim();
  return status;
}

Status ShardedCatalog::PromoteLocked(Value root, const std::string& spread_relation) {
  if (!skew_routing()) return Status::Error("skew routing is not enabled");
  if (!shards_[0]->preprocessed()) {
    return Status::Error("hot-key promotion requires a preprocessed catalog");
  }
  const Route* spread = FindRoute(spread_relation);
  if (spread == nullptr) {
    return Status::Error("no routing established for relation " + spread_relation);
  }
  const Relation* stored = shards_[0]->store().Find(spread_relation);
  if (stored == nullptr || stored->schema().size() < 2) {
    return Status::Error("spread relation " + spread_relation +
                         " must have arity >= 2 (spreading hashes the non-root columns)");
  }
  // The RegisterQuery gate enforces all-dynamic under skew routing; this is
  // the backstop for catalogs whose gate predates a route.
  for (const Route& route : routes_) {
    if (shards_[0]->store().MutabilityOf(route.relation) != Mutability::kDynamic) {
      return Status::Error("hot-key migration needs dynamic relations; " + route.relation +
                           " is " + MutabilityName(shards_[0]->store().MutabilityOf(route.relation)));
    }
  }
  const auto current = overflow();
  if (current != nullptr) {
    if (current->Find(root) != nullptr) {
      return Status::Error("root value " + std::to_string(root) + " is already promoted");
    }
    if (current->entries.size() >= options_.skew.max_overflow) {
      return Status::Error("overflow table is full");
    }
  }
  const size_t primary = ShardOfRootValue(root, shards_.size());

  // Collect the migration before touching anything: pre-promotion, every
  // stored tuple of this root value lives in the primary shard. The spread
  // relation's tuples move to their non-root-hash shard; every other
  // relation's tuples gain one replica per remaining shard.
  std::vector<UpdateBatch> moves(shards_.size());
  for (const Route& route : routes_) {
    const Relation* relation = shards_[primary]->store().Find(route.relation);
    if (relation == nullptr) continue;
    const size_t pos = static_cast<size_t>(route.root_pos);
    for (const Relation::Entry* e = relation->First(); e != nullptr;
         e = Relation::NextLive(e)) {
      if (e->key[pos] != root) continue;
      const Mult mult = Relation::EntryMult(e);
      if (route.relation == spread_relation) {
        const size_t target = NonRootShard(e->key, pos);
        if (target == primary) continue;
        moves[primary].push_back(Update{route.relation, e->key, -mult});
        moves[target].push_back(Update{route.relation, e->key, mult});
      } else {
        for (size_t s = 0; s < shards_.size(); ++s) {
          if (s != primary) moves[s].push_back(Update{route.relation, e->key, mult});
        }
      }
    }
  }
  // Apply through the normal per-shard maintenance path so every query's
  // views follow the data. All relations are dynamic and the multiplicities
  // are exact, so nothing can reject.
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (moves[s].empty()) continue;
    const BatchResult result = shards_[s]->ApplyBatch(moves[s]);
    IVME_CHECK_MSG(result.rejected == 0,
                   "hot-key migration rejected updates in shard " << s);
  }
  auto next = std::make_shared<OverflowTable>();
  if (current != nullptr) next->entries = current->entries;
  next->entries.push_back(OverflowEntry{root, spread_relation, primary});
  std::atomic_store(&overflow_, std::shared_ptr<const OverflowTable>(std::move(next)));
  return Status::Ok();
}

void ShardedCatalog::MaybePromote() {
  if (sketch_ == nullptr || !shards_[0]->preprocessed()) return;
  if (sketch_->total() < options_.skew.min_total) return;
  const auto current = overflow();
  if (current != nullptr && current->entries.size() >= options_.skew.max_overflow) return;
  const double fair =
      static_cast<double>(sketch_->total()) / static_cast<double>(shards_.size());
  const double threshold = options_.skew.promote_ratio * fair;
  for (const SpaceSavingSketch::Entry& hot : sketch_->entries()) {
    const uint64_t guaranteed = hot.count - hot.error;
    if (static_cast<double>(guaranteed) < threshold) continue;
    if (current != nullptr && current->Find(hot.value) != nullptr) continue;
    // Spread the relation holding the most tuples of this root value (its
    // degree is what overloads the primary shard). Unary relations never
    // spread — their tuple IS the root key. Promotion is rare, so the scan
    // over the primary shard is acceptable.
    const size_t primary = ShardOfRootValue(hot.value, shards_.size());
    const Route* best = nullptr;
    size_t best_count = 0;
    for (const Route& route : routes_) {
      const Relation* relation = shards_[primary]->store().Find(route.relation);
      if (relation == nullptr || relation->schema().size() < 2) continue;
      const size_t pos = static_cast<size_t>(route.root_pos);
      size_t count = 0;
      for (const Relation::Entry* e = relation->First(); e != nullptr;
           e = Relation::NextLive(e)) {
        if (e->key[pos] == hot.value) ++count;
      }
      if (count > best_count) {
        best = &route;
        best_count = count;
      }
    }
    if (best == nullptr) continue;
    const Status status = PromoteLocked(hot.value, best->relation);
    IVME_CHECK_MSG(status.ok(), status.message());
    // At most one promotion per boundary; the next batch re-evaluates.
    return;
  }
}

void ShardedCatalog::Load(const std::string& relation,
                          const std::vector<std::pair<Tuple, Mult>>& tuples) {
  for (const auto& [tuple, mult] : tuples) LoadTuple(relation, tuple, mult);
}

void ShardedCatalog::LoadTuple(const std::string& relation, const Tuple& tuple, Mult mult) {
  const Status status = TryLoadTuple(relation, tuple, mult);
  IVME_CHECK_MSG(status.ok(), status.message());
}

Status ShardedCatalog::TryLoad(const std::string& relation,
                               const std::vector<std::pair<Tuple, Mult>>& tuples) {
  BeginMutation();
  Status status = Status::Ok();
  for (const auto& [tuple, mult] : tuples) {
    status = TryLoadTupleImpl(relation, tuple, mult);
    if (!status.ok()) break;
  }
  PublishAndReclaim();
  return status;
}

Status ShardedCatalog::TryLoadTuple(const std::string& relation, const Tuple& tuple,
                                    Mult mult) {
  BeginMutation();
  const Status status = TryLoadTupleImpl(relation, tuple, mult);
  PublishAndReclaim();
  return status;
}

Status ShardedCatalog::TryLoadTupleImpl(const std::string& relation, const Tuple& tuple,
                                        Mult mult) {
  // Validate against shard 0's store before routing: every shard attaches
  // the same relations with the same arity, and ShardOf reads the root
  // column, which only exists on a well-formed tuple.
  const Relation* stored = shards_[0]->store().Find(relation);
  if (stored == nullptr) {
    return Status::Error("unknown relation " + relation + " (no registered query reads it)");
  }
  if (tuple.size() != stored->schema().size()) {
    return Status::Error("relation " + relation + " has arity " +
                         std::to_string(stored->schema().size()) + "; got a tuple of arity " +
                         std::to_string(tuple.size()));
  }
  if (mult <= 0) {
    return Status::Error("loaded tuples need positive multiplicities; " + relation + " got " +
                         std::to_string(mult) + " for " + tuple.ToString());
  }
  const Status dict = CheckDictValues(relation, tuple);
  if (!dict.ok()) return dict;
  if (shards_.size() == 1) {
    loads_[0].routed_tuples.fetch_add(1, std::memory_order_relaxed);
    return shards_[0]->TryLoadTuple(relation, tuple, mult);
  }
  const Route* route = FindRoute(relation);
  IVME_CHECK_MSG(route != nullptr, "no routing established for relation " << relation);
  const auto table = overflow();
  const RouteDecision decision = Decide(*route, tuple, table.get());
  if (!decision.replicate) {
    loads_[decision.shard].routed_tuples.fetch_add(1, std::memory_order_relaxed);
    return shards_[decision.shard]->TryLoadTuple(relation, tuple, mult);
  }
  // Replicated overflow tuple: one copy per shard. Shard stores are
  // identical for this relation+root, so any failure is shard-uniform and
  // the first shard's status speaks for all.
  for (size_t s = 0; s < shards_.size(); ++s) {
    loads_[s].routed_tuples.fetch_add(1, std::memory_order_relaxed);
    const Status status = shards_[s]->TryLoadTuple(relation, tuple, mult);
    if (!status.ok()) return status;
  }
  return Status::Ok();
}

void ShardedCatalog::Preprocess() {
  BeginMutation();
  if (pool_ == nullptr) {
    for (auto& shard : shards_) shard->Preprocess();
  } else {
    task_scratch_.clear();
    for (auto& shard : shards_) {
      QueryCatalog* catalog = shard.get();
      task_scratch_.push_back([catalog] { catalog->Preprocess(); });
    }
    pool_->Run(task_scratch_);
  }
  PublishAndReclaim();
}

bool ShardedCatalog::ApplyUpdate(const std::string& relation, const Tuple& tuple, Mult mult) {
  const ScopedLatencyTimer timer(&update_latency_);
  BeginMutation();
  bool applied = false;
  if (shards_.size() == 1) {
    loads_[0].routed_tuples.fetch_add(1, std::memory_order_relaxed);
    applied = shards_[0]->ApplyUpdate(relation, tuple, mult);
  } else {
    const Route* route = FindRoute(relation);
    IVME_CHECK_MSG(route != nullptr, "no routing established for relation " << relation);
    if (sketch_ != nullptr) sketch_->Add(tuple[static_cast<size_t>(route->root_pos)]);
    const auto table = overflow();
    const RouteDecision decision = Decide(*route, tuple, table.get());
    if (!decision.replicate) {
      loads_[decision.shard].routed_tuples.fetch_add(1, std::memory_order_relaxed);
      applied = shards_[decision.shard]->ApplyUpdate(relation, tuple, mult);
    } else {
      // Replicas are identical, so every shard accepts or rejects alike;
      // the primary's answer speaks for all.
      for (size_t s = 0; s < shards_.size(); ++s) {
        loads_[s].routed_tuples.fetch_add(1, std::memory_order_relaxed);
        const bool shard_applied = shards_[s]->ApplyUpdate(relation, tuple, mult);
        if (s == decision.shard) applied = shard_applied;
      }
    }
    MaybePromote();
  }
  PublishAndReclaim();
  return applied;
}

Status ShardedCatalog::CheckWritable(const std::string& relation, const Tuple& tuple,
                                     Mult mult) const {
  const Status status = shards_[0]->CheckWritable(relation, mult);
  if (!status.ok()) return status;
  const Relation* stored = shards_[0]->store().Find(relation);
  if (tuple.size() != stored->schema().size()) {
    return Status::Error("relation " + relation + " has arity " +
                         std::to_string(stored->schema().size()) + "; got a tuple of arity " +
                         std::to_string(tuple.size()));
  }
  return CheckDictValues(relation, tuple);
}

Status ShardedCatalog::CheckBatchWritable(const Update* updates, size_t count) const {
  const Status status = shards_[0]->CheckBatchWritable(updates, count);
  if (!status.ok()) return status;
  for (size_t i = 0; i < count; ++i) {
    const Status dict = CheckDictValues(updates[i].relation, updates[i].tuple);
    if (!dict.ok()) return dict;
  }
  return Status::Ok();
}

Status ShardedCatalog::TryApplyUpdate(const std::string& relation, const Tuple& tuple,
                                      Mult mult) {
  const ScopedLatencyTimer timer(&update_latency_);
  // Validate against shard 0 before routing, like TryLoadTupleImpl: a
  // wrong-arity tuple or unknown relation must not reach ShardOf.
  Status status = CheckWritable(relation, tuple, mult);
  if (!status.ok()) return status;
  BeginMutation();
  if (shards_.size() == 1) {
    loads_[0].routed_tuples.fetch_add(1, std::memory_order_relaxed);
    status = shards_[0]->TryApplyUpdate(relation, tuple, mult);
  } else {
    const Route* route = FindRoute(relation);
    IVME_CHECK_MSG(route != nullptr, "no routing established for relation " << relation);
    if (sketch_ != nullptr) sketch_->Add(tuple[static_cast<size_t>(route->root_pos)]);
    const auto table = overflow();
    const RouteDecision decision = Decide(*route, tuple, table.get());
    if (!decision.replicate) {
      loads_[decision.shard].routed_tuples.fetch_add(1, std::memory_order_relaxed);
      status = shards_[decision.shard]->TryApplyUpdate(relation, tuple, mult);
    } else {
      for (size_t s = 0; s < shards_.size(); ++s) {
        loads_[s].routed_tuples.fetch_add(1, std::memory_order_relaxed);
        const Status shard_status = shards_[s]->TryApplyUpdate(relation, tuple, mult);
        if (s == decision.shard) status = shard_status;
      }
    }
    MaybePromote();
  }
  PublishAndReclaim();
  return status;
}

BatchResult ShardedCatalog::ApplyBatch(const UpdateBatch& updates) {
  return ApplyBatch(updates.data(), updates.size());
}

BatchResult ShardedCatalog::ApplyBatch(const Update* updates, size_t count) {
  BatchResult result;
  const Status status = TryApplyBatch(updates, count, &result);
  if (status.ok()) return result;
  IVME_CHECK_MSG(status.rejected(), status.message());
  result.applied = 0;
  result.rejected = count;
  return result;
}

Status ShardedCatalog::TryApplyBatch(const UpdateBatch& updates, BatchResult* result) {
  return TryApplyBatch(updates.data(), updates.size(), result);
}

Status ShardedCatalog::TryApplyBatch(const Update* updates, size_t count, BatchResult* result) {
  const ScopedLatencyTimer timer(&batch_latency_);
  *result = BatchResult{};
  BeginMutation();
  if (shards_.size() == 1) {
    loads_[0].routed_tuples.fetch_add(count, std::memory_order_relaxed);
    loads_[0].net_entries.fetch_add(count, std::memory_order_relaxed);
    const Status status = shards_[0]->TryApplyBatch(updates, count, result);
    PublishAndReclaim();
    return status;
  }
  // Whole-batch gate at the facade, against shard 0's store (every shard
  // attaches the same relations with the same arities and declarations):
  // a structural error or mutability rejection is atomic across shards,
  // and a wrong-arity tuple never reaches ShardOf below. What remains for
  // the shards is per-entry below-zero rejection, which they count.
  const Status writable = CheckBatchWritable(updates, count);
  if (!writable.ok()) {
    PublishAndReclaim();
    return writable;
  }

  // Consolidate ONCE at the splitter (shared NetDeltaConsolidator), then
  // route the surviving net entries: equal tuples hash to one shard, so
  // per-shard validation and result counts match the unsharded catalog.
  // Each shard's own consolidation pass over the already-net sub-batch is
  // an identity map. (Per-shard `updates` stats consequently count net
  // entries, not raw records.) Under skew routing the consolidation pass
  // doubles as the sketch feed, and overflow root values fan out: spread
  // tuples go to their non-root-hash shard, replicated tuples to every
  // shard. Replica copies apply to shard state but only the primary copy
  // counts toward `applied`/`rejected` — the replicas hold the same
  // multiplicities, so their per-entry outcomes mirror the primary's and
  // the logical counts match the unsharded catalog.
  consolidator_.Begin();
  for (size_t i = 0; i < count; ++i) consolidator_.Add(updates[i]);

  const auto table = overflow();
  for (auto& sub : split_scratch_) sub.clear();
  for (auto& sub : replica_scratch_) sub.clear();
  for (const size_t group : consolidator_.touched()) {
    const std::string& relation = consolidator_.relation(group);
    const Route* route = FindRoute(relation);
    IVME_CHECK_MSG(route != nullptr, "no routing established for relation " << relation);
    for (const auto* node = consolidator_.delta(group).First(); node != nullptr;
         node = node->next) {
      if (node->value == 0) continue;  // cancelled in full
      if (sketch_ != nullptr) {
        sketch_->Add(node->key[static_cast<size_t>(route->root_pos)]);
      }
      const RouteDecision decision = Decide(*route, node->key, table.get());
      if (!decision.replicate) {
        split_scratch_[decision.shard].push_back(Update{relation, node->key, node->value});
        loads_[decision.shard].routed_tuples.fetch_add(1, std::memory_order_relaxed);
        loads_[decision.shard].net_entries.fetch_add(1, std::memory_order_relaxed);
      } else {
        for (size_t s = 0; s < shards_.size(); ++s) {
          auto& sub = s == decision.shard ? split_scratch_[s] : replica_scratch_[s];
          sub.push_back(Update{relation, node->key, node->value});
          loads_[s].routed_tuples.fetch_add(1, std::memory_order_relaxed);
          loads_[s].net_entries.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  }

  // Shard deltas are independent (shared-nothing); apply them concurrently.
  task_scratch_.clear();
  for (size_t s = 0; s < shards_.size(); ++s) {
    result_scratch_[s] = BatchResult();
    if (split_scratch_[s].empty() && replica_scratch_[s].empty()) continue;
    QueryCatalog* catalog = shards_[s].get();
    const UpdateBatch* sub = &split_scratch_[s];
    const UpdateBatch* replicas = &replica_scratch_[s];
    BatchResult* out = &result_scratch_[s];
    ShardLoadCell* cell = &loads_[s];
    task_scratch_.push_back([catalog, sub, replicas, out, cell] {
      const auto start = std::chrono::steady_clock::now();
      if (!sub->empty()) *out = catalog->ApplyBatch(*sub);
      // Replica copies: applied for state, counts discarded (the primary
      // shard already counted this entry's outcome).
      if (!replicas->empty()) catalog->ApplyBatch(*replicas);
      const auto elapsed = std::chrono::steady_clock::now() - start;
      cell->apply_nanos.fetch_add(
          static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()),
          std::memory_order_relaxed);
    });
  }
  if (pool_ != nullptr) {
    pool_->Run(task_scratch_);
  } else {
    for (const auto& task : task_scratch_) task();
  }

  for (const BatchResult& shard_result : result_scratch_) {
    result->applied += shard_result.applied;
    result->rejected += shard_result.rejected;
  }
  // Hot-key check at the batch boundary, inside the mutation bracket: a
  // promotion migrates the stored tuples (including this batch's) and
  // publishes the grown overflow table before the epoch publishes.
  MaybePromote();
  // The pool barrier above orders every worker's stores before the Publish
  // inside PublishAndReclaim, so a reader pinning the new epoch sees the
  // fully applied batch on every shard.
  PublishAndReclaim();
  return Status::Ok();
}

std::shared_ptr<const OverflowMergeSpec> ShardedCatalog::BuildOverflowSpec(
    const std::string& name, bool disjoint) const {
  if (!disjoint || shards_.size() == 1) return nullptr;
  const auto table = overflow();
  if (table == nullptr || table->entries.empty()) return nullptr;
  int root_pos = -1;
  for (size_t i = 0; i < root_free_names_.size(); ++i) {
    if (root_free_names_[i] == name) root_pos = root_out_pos_[i];
  }
  if (root_pos < 0) return nullptr;
  const MaintainedQuery* query = shards_[0]->FindQuery(name);
  if (query == nullptr) return nullptr;
  auto spec = std::make_shared<OverflowMergeSpec>();
  spec->root_pos = root_pos;
  spec->keys.reserve(table->entries.size());
  for (const OverflowEntry& entry : table->entries) {
    // Queries reading the spread relation see partial per-shard slices for
    // this root value (sum them); queries over replicated relations only
    // see one identical copy per shard (keep the primary's).
    spec->keys.push_back(OverflowMergeKey{entry.root, query->UsesRelation(entry.spread_relation),
                                          entry.primary});
  }
  return spec;
}

std::unique_ptr<MergedEnumerator> ShardedCatalog::Enumerate(const std::string& name,
                                                            DrainMode mode) const {
  bool disjoint = true;
  for (size_t i = 0; i < root_free_names_.size(); ++i) {
    if (root_free_names_[i] == name) disjoint = root_free_[i];
  }
  disjoint = disjoint || shards_.size() == 1;
  std::vector<std::unique_ptr<ResultEnumerator>> streams;
  streams.reserve(shards_.size());
  for (const auto& shard : shards_) streams.push_back(shard->Enumerate(name));
  return std::make_unique<MergedEnumerator>(std::move(streams), disjoint, mode, pool_.get(),
                                            BuildOverflowSpec(name, disjoint));
}

QueryResult ShardedCatalog::EvaluateToMap(const std::string& name) const {
  auto it = Enumerate(name, pool_ != nullptr ? DrainMode::kParallel : DrainMode::kLazy);
  return DrainEnumeration(*it);
}

std::unique_ptr<MergedEnumerator> ShardedCatalog::EnumerateAt(const std::string& name,
                                                              Epoch epoch,
                                                              DrainMode mode) const {
  // root_free_* and the shard query registries only change inside the
  // quiesce gate, so reading them from a pinned reader thread is safe.
  bool disjoint = true;
  for (size_t i = 0; i < root_free_names_.size(); ++i) {
    if (root_free_names_[i] == name) disjoint = root_free_[i];
  }
  disjoint = disjoint || shards_.size() == 1;
  std::vector<std::unique_ptr<ResultEnumerator>> streams;
  streams.reserve(shards_.size());
  for (const auto& shard : shards_) streams.push_back(shard->EnumerateAt(name, epoch));
  // The overflow table only grows and a promotion replays the full join
  // state of its root value into the new placement before publishing, so
  // the newest table merges any pinned epoch correctly: pre-promotion
  // epochs hold all of a root's rows in its primary shard, where both the
  // sum and the keep-primary rule reproduce the unpromoted stream.
  return std::make_unique<MergedEnumerator>(std::move(streams), disjoint, mode, pool_.get(),
                                            BuildOverflowSpec(name, disjoint));
}

QueryResult ShardedCatalog::EvaluateToMapAt(const std::string& name, Epoch epoch) const {
  auto it =
      EnumerateAt(name, epoch, pool_ != nullptr ? DrainMode::kParallel : DrainMode::kLazy);
  return DrainEnumeration(*it);
}

std::vector<std::pair<Tuple, Mult>> ShardedCatalog::DumpRelation(
    const std::string& relation) const {
  std::vector<std::pair<Tuple, Mult>> out;
  const Status status = TryDumpRelation(relation, &out);
  IVME_CHECK_MSG(status.ok(), status.message());
  return out;
}

Status ShardedCatalog::TryDumpRelation(const std::string& relation,
                                       std::vector<std::pair<Tuple, Mult>>* out) const {
  out->clear();
  if (shards_[0]->store().Find(relation) == nullptr) {
    return Status::Error("unknown relation " + relation);
  }
  // Replicated overflow copies are a physical routing artifact: the logical
  // relation holds each tuple once, so the dump keeps only the primary
  // shard's copy. (Snapshots and resharding rebuild from this dump, which
  // is what lets a rebuilt catalog start from an empty overflow table.)
  const auto table = shards_.size() > 1 ? overflow() : nullptr;
  const Route* route = table != nullptr ? FindRoute(relation) : nullptr;
  for (size_t s = 0; s < shards_.size(); ++s) {
    std::vector<std::pair<Tuple, Mult>> part;
    Status status = shards_[s]->TryDumpRelation(relation, &part);
    if (!status.ok()) return status;
    for (auto& entry : part) {
      if (route != nullptr) {
        const OverflowEntry* hot =
            table->Find(entry.first[static_cast<size_t>(route->root_pos)]);
        if (hot != nullptr && hot->spread_relation != relation && s != hot->primary) {
          continue;  // replica copy; the primary shard's survives
        }
      }
      out->push_back(std::move(entry));
    }
  }
  return Status::Ok();
}

size_t ShardedCatalog::store_size() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->store().TotalSize();
  return total;
}

LatencyHistogram ShardedCatalog::AggregateUpdateLatency() const {
  LatencyHistogram merged;
  for (const auto& shard : shards_) merged.Merge(shard->update_latency());
  return merged;
}

LatencyHistogram ShardedCatalog::AggregateBatchLatency() const {
  LatencyHistogram merged;
  for (const auto& shard : shards_) merged.Merge(shard->batch_latency());
  return merged;
}

void ShardedCatalog::ResetLatency() {
  update_latency_.Reset();
  batch_latency_.Reset();
  for (auto& shard : shards_) shard->ResetLatency();
}

bool ShardedCatalog::CheckInvariants(std::string* error) {
  for (size_t s = 0; s < shards_.size(); ++s) {
    std::string shard_error;
    if (!shards_[s]->CheckInvariants(&shard_error)) {
      if (error != nullptr) *error = "shard " + std::to_string(s) + ": " + shard_error;
      return false;
    }
  }
  if (shards_.size() > 1) {
    // Routing invariant: every stored tuple lives in the shard the current
    // overflow table routes it to; tuples of replicated (overflow,
    // non-spread) relation slices must exist identically in EVERY shard.
    const auto table = overflow();
    for (const auto& route : routes_) {
      for (size_t s = 0; s < shards_.size(); ++s) {
        if (shards_[s]->store().Find(route.relation) == nullptr) continue;
        for (const auto& [tuple, mult] : shards_[s]->DumpRelation(route.relation)) {
          const RouteDecision decision = Decide(route, tuple, table.get());
          if (!decision.replicate) {
            if (decision.shard != s) {
              if (error != nullptr) {
                *error = "tuple " + tuple.ToString() + " of " + route.relation +
                         " stored in shard " + std::to_string(s) + " but routed to shard " +
                         std::to_string(decision.shard);
              }
              return false;
            }
            continue;
          }
          for (size_t other = 0; other < shards_.size(); ++other) {
            if (other == s) continue;
            const Relation* slice = shards_[other]->store().Find(route.relation);
            if (slice != nullptr && slice->Multiplicity(tuple) == mult) continue;
            if (error != nullptr) {
              *error = "replicated tuple " + tuple.ToString() + " of " + route.relation +
                       " has multiplicity " + std::to_string(mult) + " in shard " +
                       std::to_string(s) + " but not in shard " + std::to_string(other);
            }
            return false;
          }
        }
      }
    }
  }
  return true;
}

}  // namespace ivme
