#include "src/core/sharded_catalog.h"

#include "src/common/check.h"
#include "src/core/sharded_engine.h"
#include "src/query/variable_order.h"

namespace ivme {

ShardedCatalog::ShardedCatalog(ShardedCatalogOptions options) : options_(options) {
  IVME_CHECK_MSG(options_.num_shards >= 1, "need at least one shard");
  shards_.reserve(options_.num_shards);
  for (size_t s = 0; s < options_.num_shards; ++s) {
    shards_.push_back(std::make_unique<QueryCatalog>());
  }
  if (options_.num_shards > 1) {
    const size_t threads = options_.num_threads != 0
                               ? options_.num_threads
                               : ThreadPool::DefaultThreads(options_.num_shards);
    if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads);
    split_scratch_.resize(options_.num_shards);
    result_scratch_.resize(options_.num_shards);
  }
}

ShardedCatalog::~ShardedCatalog() {
  if (!serving_) return;
  // No readers may outlive the catalog (their pins would deadlock here,
  // which is the bug surfacing early). Drain every log so zombies are freed
  // and the relations can leave versioned mode before the shards destruct.
  epochs_->BeginExclusive();
  for (auto& log : retire_logs_) log->Drain();
  for (auto& shard : shards_) shard->SetEpochContext(nullptr);
}

void ShardedCatalog::EnableServing() {
  if (serving_) return;
  if (epochs_ == nullptr) {
    epochs_ = std::make_unique<EpochManager>();
    retire_logs_.reserve(shards_.size());
    contexts_.resize(shards_.size());
    for (size_t s = 0; s < shards_.size(); ++s) {
      retire_logs_.push_back(std::make_unique<RetireLog>());
      contexts_[s] =
          EpochContext{retire_logs_[s].get(), epochs_->published_ptr(), &fast_epoch_};
    }
  }
  for (size_t s = 0; s < shards_.size(); ++s) shards_[s]->SetEpochContext(&contexts_[s]);
  // Quiescent by construction: the logs are empty and no pin exists, so the
  // published epoch is fast from the first snapshot on.
  fast_epoch_.store(epochs_->published(), std::memory_order_release);
  serving_ = true;
  epochs_->Enable();  // no-op on the first call; re-admits pins after a flip
}

void ShardedCatalog::DisableServing() {
  if (!serving_) return;
  // Refuse all future pins and wait out the active readers; from here no
  // reader can be in flight until EnableServing re-admits them.
  epochs_->Disable();
  // Free every retired object and leave versioned mode: with the version
  // machinery detached, reads take the branch-light kDirect lane and the
  // existing version chains converge to plain single-version nodes.
  for (auto& log : retire_logs_) log->Drain();
  for (auto& shard : shards_) shard->SetEpochContext(nullptr);
  fast_epoch_.store(kLiveEpoch, std::memory_order_release);
  serving_ = false;
}

ReadSnapshot ShardedCatalog::AcquireSnapshot() const {
  IVME_CHECK_MSG(epochs_ != nullptr, "EnableServing before AcquireSnapshot");
  return ReadSnapshot(epochs_.get());
}

ReadSnapshot ShardedCatalog::TryAcquireSnapshot() const {
  IVME_CHECK_MSG(epochs_ != nullptr, "EnableServing before TryAcquireSnapshot");
  return ReadSnapshot::TryAcquire(epochs_.get());
}

size_t ShardedCatalog::RetiredObjects() const {
  size_t total = 0;
  for (const auto& log : retire_logs_) total += log->pending_size() + log->limbo_size();
  return total;
}

void ShardedCatalog::BeginMutation() {
  if (!serving_) return;
  std::vector<Epoch> keeps = epochs_->KeepEpochs();
  for (auto& log : retire_logs_) log->set_keep_epochs(keeps);
}

void ShardedCatalog::PublishAndReclaim() {
  if (!serving_) return;
  epochs_->Publish();
  const Epoch p = epochs_->published();
  const Epoch floor = epochs_->PinFloor();
  const Epoch working = p + 1;
  // The published epoch is "fast" when this boundary reaches full
  // quiescence: no reader pinned below P (floor == P) and — after this
  // reclaim pass — no retired object left anywhere. Then no zombie, dead
  // index link, or multiplicity-version chain is reachable at any epoch
  // ≤ P, and a reader pinned exactly at P can skip version filtering.
  bool clean = floor == p;
  for (auto& log : retire_logs_) {
    log->Reclaim(floor, working);
    clean = clean && log->empty();
  }
  fast_epoch_.store(clean ? p : kLiveEpoch, std::memory_order_release);
}

void ShardedCatalog::QuiescedStructuralChange(const std::function<void()>& fn) {
  if (!serving_) {
    fn();
    return;
  }
  // Structural changes mutate reader-shared layout (queries_ vectors, index
  // vectors, relation teardown), which versioning does not protect — so no
  // reader may be in flight. With the logs drained and the contexts
  // detached, fn() runs in plain legacy mode; re-attaching also covers any
  // relations fn() created.
  epochs_->BeginExclusive();
  for (auto& log : retire_logs_) log->Drain();
  for (auto& shard : shards_) shard->SetEpochContext(nullptr);
  fn();
  for (size_t s = 0; s < shards_.size(); ++s) shards_[s]->SetEpochContext(&contexts_[s]);
  // Quiescent again: logs drained above, no pin can exist while exclusive.
  fast_epoch_.store(epochs_->published(), std::memory_order_release);
  epochs_->EndExclusive();
}

const ShardedCatalog::Route* ShardedCatalog::FindRoute(const std::string& relation) const {
  for (const auto& route : routes_) {
    if (route.relation == relation) return &route;
  }
  return nullptr;
}

bool ShardedCatalog::RegisterQuery(const std::string& name, const ConjunctiveQuery& q,
                                   EngineOptions options, std::string* why) {
  auto fail = [&](const std::string& reason) {
    if (why != nullptr) *why = reason;
    return false;
  };
  if (shards_[0]->FindQuery(name) != nullptr) {
    return fail("query " + name + " is already registered");
  }
  // Arity agreement with live store relations (and within the query) is
  // part of validation: committing would trip RelationStore::Attach's hard
  // error mid-registration, violating the unchanged-on-false contract.
  for (const Atom& atom : q.atoms()) {
    const Relation* stored = shards_[0]->store().Find(atom.relation);
    const size_t arity = stored != nullptr ? stored->schema().size() : 0;
    if (stored != nullptr && arity != atom.schema.size()) {
      return fail("relation " + atom.relation + " already exists with arity " +
                  std::to_string(arity) + "; " + name + " uses arity " +
                  std::to_string(atom.schema.size()));
    }
    for (const Atom& other : q.atoms()) {
      if (other.relation == atom.relation && other.schema.size() != atom.schema.size()) {
        return fail("query " + name + " uses relation " + atom.relation +
                    " with inconsistent arities");
      }
    }
  }
  // Mutability agreement: a relation's declaration is as sticky as its
  // arity (RelationStore records it at first Attach and hard-errors on a
  // conflicting re-attach), so validate the effective declaration —
  // query-text prefix merged with options.mutability overrides, overrides
  // winning in order — against the live store before committing.
  for (const std::string& relation : q.RelationNames()) {
    Mutability declared = q.MutabilityOf(relation);
    for (const MutabilityOverride& o : options.mutability) {
      if (o.relation == relation) declared = o.mutability;
    }
    const Relation* stored = shards_[0]->store().Find(relation);
    if (stored == nullptr) continue;
    const Mutability live = shards_[0]->store().MutabilityOf(relation);
    if (live != declared) {
      return fail("relation " + relation + " is already attached as " + MutabilityName(live) +
                  "; " + name + " declares it " + MutabilityName(declared));
    }
  }

  bool root_is_free = true;
  std::vector<Route> new_routes;
  if (shards_.size() > 1) {
    if (!ShardedEngine::CanShard(q, why)) return false;
    // CanShard guarantees one connected component with a variable root that
    // every relation symbol reads from one fixed column.
    const VariableOrder vo = VariableOrder::Canonical(q);
    const VarId root_var = vo.roots()[0]->var;
    root_is_free = q.IsFree(root_var);
    for (const std::string& relation : q.RelationNames()) {
      int pos = -1;
      for (const Atom& atom : q.atoms()) {
        if (atom.relation == relation) {
          pos = atom.schema.PositionOf(root_var);
          break;
        }
      }
      const Route* existing = FindRoute(relation);
      if (existing == nullptr) {
        new_routes.push_back(Route{relation, pos});
      } else if (existing->root_pos != pos) {
        return fail("routing conflict on " + relation + ": stored data is sharded on column " +
                    std::to_string(existing->root_pos) + " but " + name +
                    " reads its root from column " + std::to_string(pos));
      }
    }
  }

  // Commit: the query registers in every shard (late registrations
  // preprocess from each shard's live store inside RegisterQuery).
  QuiescedStructuralChange([&] {
    for (auto& shard : shards_) shard->RegisterQuery(name, q, options);
    for (auto& route : new_routes) {
      consolidator_.EnsureRelation(route.relation);
      routes_.push_back(std::move(route));
    }
    if (shards_.size() == 1) {
      // No routing needed, but the consolidator still tracks the relations.
      for (const std::string& relation : q.RelationNames()) {
        consolidator_.EnsureRelation(relation);
      }
    }
    root_free_names_.push_back(name);
    root_free_.push_back(root_is_free);
  });
  return true;
}

bool ShardedCatalog::DropQuery(const std::string& name) {
  bool dropped = false;
  QuiescedStructuralChange([&] {
    for (auto& shard : shards_) dropped = shard->DropQuery(name) || dropped;
    for (size_t i = 0; i < root_free_names_.size(); ++i) {
      if (root_free_names_[i] != name) continue;
      root_free_names_.erase(root_free_names_.begin() + static_cast<long>(i));
      root_free_.erase(root_free_.begin() + static_cast<long>(i));
      break;
    }
    // routes_ stays: the stored data remains sharded by it.
  });
  return dropped;
}

MaintainedQuery* ShardedCatalog::FindQuery(const std::string& name, size_t s) const {
  return shards_[s]->FindQuery(name);
}

size_t ShardedCatalog::ShardOf(const std::string& relation, const Tuple& tuple) const {
  if (shards_.size() == 1) return 0;
  const Route* route = FindRoute(relation);
  IVME_CHECK_MSG(route != nullptr, "no routing established for relation " << relation);
  const size_t pos = static_cast<size_t>(route->root_pos);
  if (tuple.size() == 1 && pos == 0) {
    // Unary relation: the tuple is the root key; reuse its cached hash.
    return static_cast<size_t>(tuple.Hash() % static_cast<uint64_t>(shards_.size()));
  }
  return ShardOfRootValue(tuple[pos], shards_.size());
}

void ShardedCatalog::Load(const std::string& relation,
                          const std::vector<std::pair<Tuple, Mult>>& tuples) {
  for (const auto& [tuple, mult] : tuples) LoadTuple(relation, tuple, mult);
}

void ShardedCatalog::LoadTuple(const std::string& relation, const Tuple& tuple, Mult mult) {
  const Status status = TryLoadTuple(relation, tuple, mult);
  IVME_CHECK_MSG(status.ok(), status.message());
}

Status ShardedCatalog::TryLoad(const std::string& relation,
                               const std::vector<std::pair<Tuple, Mult>>& tuples) {
  BeginMutation();
  Status status = Status::Ok();
  for (const auto& [tuple, mult] : tuples) {
    status = TryLoadTupleImpl(relation, tuple, mult);
    if (!status.ok()) break;
  }
  PublishAndReclaim();
  return status;
}

Status ShardedCatalog::TryLoadTuple(const std::string& relation, const Tuple& tuple,
                                    Mult mult) {
  BeginMutation();
  const Status status = TryLoadTupleImpl(relation, tuple, mult);
  PublishAndReclaim();
  return status;
}

Status ShardedCatalog::TryLoadTupleImpl(const std::string& relation, const Tuple& tuple,
                                        Mult mult) {
  // Validate against shard 0's store before routing: every shard attaches
  // the same relations with the same arity, and ShardOf reads the root
  // column, which only exists on a well-formed tuple.
  const Relation* stored = shards_[0]->store().Find(relation);
  if (stored == nullptr) {
    return Status::Error("unknown relation " + relation + " (no registered query reads it)");
  }
  if (tuple.size() != stored->schema().size()) {
    return Status::Error("relation " + relation + " has arity " +
                         std::to_string(stored->schema().size()) + "; got a tuple of arity " +
                         std::to_string(tuple.size()));
  }
  if (mult <= 0) {
    return Status::Error("loaded tuples need positive multiplicities; " + relation + " got " +
                         std::to_string(mult) + " for " + tuple.ToString());
  }
  return shards_[ShardOf(relation, tuple)]->TryLoadTuple(relation, tuple, mult);
}

void ShardedCatalog::Preprocess() {
  BeginMutation();
  if (pool_ == nullptr) {
    for (auto& shard : shards_) shard->Preprocess();
  } else {
    task_scratch_.clear();
    for (auto& shard : shards_) {
      QueryCatalog* catalog = shard.get();
      task_scratch_.push_back([catalog] { catalog->Preprocess(); });
    }
    pool_->Run(task_scratch_);
  }
  PublishAndReclaim();
}

bool ShardedCatalog::ApplyUpdate(const std::string& relation, const Tuple& tuple, Mult mult) {
  const ScopedLatencyTimer timer(&update_latency_);
  BeginMutation();
  const bool applied = shards_[ShardOf(relation, tuple)]->ApplyUpdate(relation, tuple, mult);
  PublishAndReclaim();
  return applied;
}

Status ShardedCatalog::CheckWritable(const std::string& relation, const Tuple& tuple,
                                     Mult mult) const {
  const Status status = shards_[0]->CheckWritable(relation, mult);
  if (!status.ok()) return status;
  const Relation* stored = shards_[0]->store().Find(relation);
  if (tuple.size() != stored->schema().size()) {
    return Status::Error("relation " + relation + " has arity " +
                         std::to_string(stored->schema().size()) + "; got a tuple of arity " +
                         std::to_string(tuple.size()));
  }
  return Status::Ok();
}

Status ShardedCatalog::CheckBatchWritable(const Update* updates, size_t count) const {
  return shards_[0]->CheckBatchWritable(updates, count);
}

Status ShardedCatalog::TryApplyUpdate(const std::string& relation, const Tuple& tuple,
                                      Mult mult) {
  const ScopedLatencyTimer timer(&update_latency_);
  // Validate against shard 0 before routing, like TryLoadTupleImpl: a
  // wrong-arity tuple or unknown relation must not reach ShardOf.
  Status status = CheckWritable(relation, tuple, mult);
  if (!status.ok()) return status;
  BeginMutation();
  status = shards_[ShardOf(relation, tuple)]->TryApplyUpdate(relation, tuple, mult);
  PublishAndReclaim();
  return status;
}

BatchResult ShardedCatalog::ApplyBatch(const UpdateBatch& updates) {
  return ApplyBatch(updates.data(), updates.size());
}

BatchResult ShardedCatalog::ApplyBatch(const Update* updates, size_t count) {
  BatchResult result;
  const Status status = TryApplyBatch(updates, count, &result);
  if (status.ok()) return result;
  IVME_CHECK_MSG(status.rejected(), status.message());
  result.applied = 0;
  result.rejected = count;
  return result;
}

Status ShardedCatalog::TryApplyBatch(const UpdateBatch& updates, BatchResult* result) {
  return TryApplyBatch(updates.data(), updates.size(), result);
}

Status ShardedCatalog::TryApplyBatch(const Update* updates, size_t count, BatchResult* result) {
  const ScopedLatencyTimer timer(&batch_latency_);
  *result = BatchResult{};
  BeginMutation();
  if (shards_.size() == 1) {
    const Status status = shards_[0]->TryApplyBatch(updates, count, result);
    PublishAndReclaim();
    return status;
  }
  // Whole-batch gate at the facade, against shard 0's store (every shard
  // attaches the same relations with the same arities and declarations):
  // a structural error or mutability rejection is atomic across shards,
  // and a wrong-arity tuple never reaches ShardOf below. What remains for
  // the shards is per-entry below-zero rejection, which they count.
  const Status writable = shards_[0]->CheckBatchWritable(updates, count);
  if (!writable.ok()) {
    PublishAndReclaim();
    return writable;
  }

  // Consolidate ONCE at the splitter (shared NetDeltaConsolidator), then
  // route the surviving net entries: equal tuples hash to one shard, so
  // per-shard validation and result counts match the unsharded catalog.
  // Each shard's own consolidation pass over the already-net sub-batch is
  // an identity map. (Per-shard `updates` stats consequently count net
  // entries, not raw records.)
  consolidator_.Begin();
  for (size_t i = 0; i < count; ++i) consolidator_.Add(updates[i]);

  for (auto& sub : split_scratch_) sub.clear();
  for (const size_t group : consolidator_.touched()) {
    const std::string& relation = consolidator_.relation(group);
    for (const auto* node = consolidator_.delta(group).First(); node != nullptr;
         node = node->next) {
      if (node->value == 0) continue;  // cancelled in full
      split_scratch_[ShardOf(relation, node->key)].push_back(
          Update{relation, node->key, node->value});
    }
  }

  // Shard deltas are independent (shared-nothing); apply them concurrently.
  task_scratch_.clear();
  for (size_t s = 0; s < shards_.size(); ++s) {
    result_scratch_[s] = BatchResult();
    if (split_scratch_[s].empty()) continue;
    QueryCatalog* catalog = shards_[s].get();
    const UpdateBatch* sub = &split_scratch_[s];
    BatchResult* out = &result_scratch_[s];
    task_scratch_.push_back([catalog, sub, out] { *out = catalog->ApplyBatch(*sub); });
  }
  if (pool_ != nullptr) {
    pool_->Run(task_scratch_);
  } else {
    for (const auto& task : task_scratch_) task();
  }

  for (const BatchResult& shard_result : result_scratch_) {
    result->applied += shard_result.applied;
    result->rejected += shard_result.rejected;
  }
  // The pool barrier above orders every worker's stores before the Publish
  // inside PublishAndReclaim, so a reader pinning the new epoch sees the
  // fully applied batch on every shard.
  PublishAndReclaim();
  return Status::Ok();
}

std::unique_ptr<MergedEnumerator> ShardedCatalog::Enumerate(const std::string& name,
                                                            DrainMode mode) const {
  bool disjoint = true;
  for (size_t i = 0; i < root_free_names_.size(); ++i) {
    if (root_free_names_[i] == name) disjoint = root_free_[i];
  }
  std::vector<std::unique_ptr<ResultEnumerator>> streams;
  streams.reserve(shards_.size());
  for (const auto& shard : shards_) streams.push_back(shard->Enumerate(name));
  return std::make_unique<MergedEnumerator>(
      std::move(streams), disjoint || shards_.size() == 1, mode, pool_.get());
}

QueryResult ShardedCatalog::EvaluateToMap(const std::string& name) const {
  auto it = Enumerate(name, pool_ != nullptr ? DrainMode::kParallel : DrainMode::kLazy);
  return DrainEnumeration(*it);
}

std::unique_ptr<MergedEnumerator> ShardedCatalog::EnumerateAt(const std::string& name,
                                                              Epoch epoch,
                                                              DrainMode mode) const {
  // root_free_* and the shard query registries only change inside the
  // quiesce gate, so reading them from a pinned reader thread is safe.
  bool disjoint = true;
  for (size_t i = 0; i < root_free_names_.size(); ++i) {
    if (root_free_names_[i] == name) disjoint = root_free_[i];
  }
  std::vector<std::unique_ptr<ResultEnumerator>> streams;
  streams.reserve(shards_.size());
  for (const auto& shard : shards_) streams.push_back(shard->EnumerateAt(name, epoch));
  return std::make_unique<MergedEnumerator>(
      std::move(streams), disjoint || shards_.size() == 1, mode, pool_.get());
}

QueryResult ShardedCatalog::EvaluateToMapAt(const std::string& name, Epoch epoch) const {
  auto it =
      EnumerateAt(name, epoch, pool_ != nullptr ? DrainMode::kParallel : DrainMode::kLazy);
  return DrainEnumeration(*it);
}

std::vector<std::pair<Tuple, Mult>> ShardedCatalog::DumpRelation(
    const std::string& relation) const {
  std::vector<std::pair<Tuple, Mult>> out;
  const Status status = TryDumpRelation(relation, &out);
  IVME_CHECK_MSG(status.ok(), status.message());
  return out;
}

Status ShardedCatalog::TryDumpRelation(const std::string& relation,
                                       std::vector<std::pair<Tuple, Mult>>* out) const {
  out->clear();
  if (shards_[0]->store().Find(relation) == nullptr) {
    return Status::Error("unknown relation " + relation);
  }
  for (const auto& shard : shards_) {
    std::vector<std::pair<Tuple, Mult>> part;
    Status status = shard->TryDumpRelation(relation, &part);
    if (!status.ok()) return status;
    out->insert(out->end(), std::make_move_iterator(part.begin()),
                std::make_move_iterator(part.end()));
  }
  return Status::Ok();
}

size_t ShardedCatalog::store_size() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->store().TotalSize();
  return total;
}

LatencyHistogram ShardedCatalog::AggregateUpdateLatency() const {
  LatencyHistogram merged;
  for (const auto& shard : shards_) merged.Merge(shard->update_latency());
  return merged;
}

LatencyHistogram ShardedCatalog::AggregateBatchLatency() const {
  LatencyHistogram merged;
  for (const auto& shard : shards_) merged.Merge(shard->batch_latency());
  return merged;
}

void ShardedCatalog::ResetLatency() {
  update_latency_.Reset();
  batch_latency_.Reset();
  for (auto& shard : shards_) shard->ResetLatency();
}

bool ShardedCatalog::CheckInvariants(std::string* error) {
  for (size_t s = 0; s < shards_.size(); ++s) {
    std::string shard_error;
    if (!shards_[s]->CheckInvariants(&shard_error)) {
      if (error != nullptr) *error = "shard " + std::to_string(s) + ": " + shard_error;
      return false;
    }
  }
  if (shards_.size() > 1) {
    // Routing invariant: every stored tuple lives in the shard its root
    // value hashes to.
    for (const auto& route : routes_) {
      for (size_t s = 0; s < shards_.size(); ++s) {
        if (shards_[s]->store().Find(route.relation) == nullptr) continue;
        for (const auto& [tuple, mult] : shards_[s]->DumpRelation(route.relation)) {
          (void)mult;
          if (ShardOf(route.relation, tuple) != s) {
            if (error != nullptr) {
              *error = "tuple " + tuple.ToString() + " of " + route.relation +
                       " stored in shard " + std::to_string(s) + " but routed to shard " +
                       std::to_string(ShardOf(route.relation, tuple));
            }
            return false;
          }
        }
      }
    }
  }
  return true;
}

}  // namespace ivme
