#include "src/core/engine.h"

#include "src/common/check.h"

namespace ivme {

Engine::Engine(ConjunctiveQuery q, EngineOptions options) {
  query_ = catalog_.RegisterQuery("main", std::move(q), options);
}

Engine::~Engine() = default;

Relation* Engine::AtomStorage(int atom_index) { return query_->AtomStorage(atom_index); }

RelationPartition* Engine::AtomPartition(int atom_index, const Schema& keys) {
  return query_->AtomPartition(atom_index, keys);
}

void Engine::Load(const std::string& relation,
                  const std::vector<std::pair<Tuple, Mult>>& tuples) {
  catalog_.Load(relation, tuples);
}

void Engine::LoadTuple(const std::string& relation, const Tuple& tuple, Mult mult) {
  catalog_.LoadTuple(relation, tuple, mult);
}

void Engine::Preprocess() { catalog_.Preprocess(); }

bool Engine::ApplyUpdate(const std::string& relation, const Tuple& tuple, Mult mult) {
  return catalog_.ApplyUpdate(relation, tuple, mult);
}

Status Engine::TryApplyUpdate(const std::string& relation, const Tuple& tuple, Mult mult) {
  return catalog_.TryApplyUpdate(relation, tuple, mult);
}

Engine::BatchResult Engine::ApplyBatch(const Update* updates, size_t count) {
  return catalog_.ApplyBatch(updates, count);
}

Engine::BatchResult Engine::ApplyBatch(const UpdateBatch& updates) {
  return catalog_.ApplyBatch(updates);
}

Status Engine::TryApplyBatch(const Update* updates, size_t count, BatchResult* result) {
  return catalog_.TryApplyBatch(updates, count, result);
}

Status Engine::TryApplyBatch(const UpdateBatch& updates, BatchResult* result) {
  return catalog_.TryApplyBatch(updates, result);
}

std::unique_ptr<ResultEnumerator> Engine::Enumerate() const { return query_->Enumerate(); }

QueryResult Engine::EvaluateToMap() const { return query_->EvaluateToMap(); }

std::vector<std::pair<Tuple, Mult>> Engine::DumpRelation(const std::string& relation) const {
  return catalog_.DumpRelation(relation);
}

}  // namespace ivme
