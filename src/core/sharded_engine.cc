#include "src/core/sharded_engine.h"

#include "src/common/check.h"
#include "src/query/classify.h"
#include "src/query/variable_order.h"

namespace ivme {

size_t ShardOfRootValue(Value v, size_t num_shards) {
  const Tuple key{v};
  return static_cast<size_t>(key.Hash() % static_cast<uint64_t>(num_shards));
}

bool ShardedEngine::CanShard(const ConjunctiveQuery& q, std::string* why) {
  auto fail = [&](const std::string& reason) {
    if (why != nullptr) *why = reason;
    return false;
  };
  if (!IsHierarchical(q)) return fail("query is not hierarchical");
  const VariableOrder vo = VariableOrder::Canonical(q);
  if (vo.roots().size() != 1) {
    return fail("query is disconnected: per-component slices do not partition the "
                "cross product across components");
  }
  const VONode* root = vo.roots()[0].get();
  if (!root->IsVariable()) return fail("component root is an atom, not a variable");
  const VarId root_var = root->var;
  // Every atom of a connected canonical order contains the root variable;
  // routing additionally needs every occurrence of a relation symbol to
  // read the root from the same column, or a stored tuple would belong to
  // two shards at once.
  for (const std::string& name : q.RelationNames()) {
    int pos = -1;
    for (const Atom& atom : q.atoms()) {
      if (atom.relation != name) continue;
      const int p = atom.schema.PositionOf(root_var);
      if (p < 0) {
        return fail("atom " + name + " does not contain the root variable " +
                    q.var_name(root_var));
      }
      if (pos >= 0 && p != pos) {
        return fail("self-join reads the root variable " + q.var_name(root_var) +
                    " from different columns of " + name);
      }
      pos = p;
    }
  }
  return true;
}

ShardedEngine::ShardedEngine(ConjunctiveQuery q, ShardedEngineOptions options)
    : query_(std::move(q)), options_(options) {
  IVME_CHECK_MSG(options_.num_shards >= 1, "need at least one shard");
  if (options_.num_shards > 1) {
    std::string why;
    IVME_CHECK_MSG(CanShard(query_, &why), "query cannot be sharded: " << why);
  }
  shards_.reserve(options_.num_shards);
  for (size_t i = 0; i < options_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Engine>(query_, options_.engine));
  }
  if (options_.num_shards > 1) {
    // Router from the compiled plan of shard 0 (all shards compile the same
    // plan): one root column per relation symbol.
    const CompiledPlan& plan = shard0().plan();
    const VarId root_var = plan.component_roots[0];
    root_is_free_ = query_.IsFree(root_var);
    for (const std::string& name : query_.RelationNames()) {
      for (size_t a = 0; a < query_.num_atoms(); ++a) {
        if (query_.atom(a).relation != name) continue;
        router_relations_.push_back(name);
        router_root_pos_.push_back(plan.atom_root_pos[a]);
        break;
      }
    }
    const size_t threads = options_.num_threads != 0
                               ? options_.num_threads
                               : ThreadPool::DefaultThreads(options_.num_shards);
    if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads);
    split_scratch_.resize(options_.num_shards);
    result_scratch_.resize(options_.num_shards);
  }
}

size_t ShardedEngine::ShardOf(const std::string& relation, const Tuple& tuple) const {
  if (shards_.size() == 1) return 0;
  for (size_t r = 0; r < router_relations_.size(); ++r) {
    if (router_relations_[r] != relation) continue;
    const size_t pos = static_cast<size_t>(router_root_pos_[r]);
    if (tuple.size() == 1 && pos == 0) {
      // Unary relation: the tuple is the root key; reuse its cached hash.
      return static_cast<size_t>(tuple.Hash() % static_cast<uint64_t>(shards_.size()));
    }
    return ShardOfRootValue(tuple[pos], shards_.size());
  }
  IVME_CHECK_MSG(false, "unknown relation " << relation);
  return 0;
}

void ShardedEngine::Load(const std::string& relation,
                         const std::vector<std::pair<Tuple, Mult>>& tuples) {
  for (const auto& [tuple, mult] : tuples) LoadTuple(relation, tuple, mult);
}

void ShardedEngine::LoadTuple(const std::string& relation, const Tuple& tuple, Mult mult) {
  shards_[ShardOf(relation, tuple)]->LoadTuple(relation, tuple, mult);
}

void ShardedEngine::Preprocess() {
  if (pool_ == nullptr) {
    for (auto& shard : shards_) shard->Preprocess();
    return;
  }
  task_scratch_.clear();
  for (auto& shard : shards_) {
    Engine* engine = shard.get();
    task_scratch_.push_back([engine] { engine->Preprocess(); });
  }
  pool_->Run(task_scratch_);
}

bool ShardedEngine::ApplyUpdate(const std::string& relation, const Tuple& tuple, Mult mult) {
  const ScopedLatencyTimer timer(&update_latency_);
  return shards_[ShardOf(relation, tuple)]->ApplyUpdate(relation, tuple, mult);
}

Engine::BatchResult ShardedEngine::ApplyBatch(const UpdateBatch& updates) {
  return ApplyBatch(updates.data(), updates.size());
}

Engine::BatchResult ShardedEngine::ApplyBatch(const Update* updates, size_t count) {
  const ScopedLatencyTimer timer(&batch_latency_);
  if (shards_.size() == 1) return shards_[0]->ApplyBatch(updates, count);

  // Split by root-value hash. Equal tuples land in the same sub-batch, so
  // per-shard net-delta consolidation matches the unsharded consolidation.
  for (auto& sub : split_scratch_) sub.clear();
  for (size_t i = 0; i < count; ++i) {
    split_scratch_[ShardOf(updates[i].relation, updates[i].tuple)].push_back(updates[i]);
  }

  // Shard deltas are independent (shared-nothing); apply them concurrently.
  task_scratch_.clear();
  for (size_t s = 0; s < shards_.size(); ++s) {
    result_scratch_[s] = Engine::BatchResult();
    if (split_scratch_[s].empty()) continue;
    Engine* engine = shards_[s].get();
    const UpdateBatch* sub = &split_scratch_[s];
    Engine::BatchResult* result = &result_scratch_[s];
    task_scratch_.push_back([engine, sub, result] { *result = engine->ApplyBatch(*sub); });
  }
  if (pool_ != nullptr) {
    pool_->Run(task_scratch_);
  } else {
    for (const auto& task : task_scratch_) task();
  }

  Engine::BatchResult total;
  for (const Engine::BatchResult& result : result_scratch_) {
    total.applied += result.applied;
    total.rejected += result.rejected;
  }
  return total;
}

std::unique_ptr<MergedEnumerator> ShardedEngine::Enumerate() const {
  std::vector<std::unique_ptr<ResultEnumerator>> streams;
  streams.reserve(shards_.size());
  for (const auto& shard : shards_) streams.push_back(shard->Enumerate());
  return std::make_unique<MergedEnumerator>(std::move(streams),
                                            /*disjoint=*/root_is_free_ || shards_.size() == 1);
}

QueryResult ShardedEngine::EvaluateToMap() const {
  auto it = Enumerate();
  return DrainEnumeration(*it);
}

std::vector<std::pair<Tuple, Mult>> ShardedEngine::DumpRelation(
    const std::string& relation) const {
  std::vector<std::pair<Tuple, Mult>> out;
  for (const auto& shard : shards_) {
    auto part = shard->DumpRelation(relation);
    out.insert(out.end(), std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()));
  }
  return out;
}

Engine::Stats ShardedEngine::GetStats() const {
  Engine::Stats total;
  for (const auto& shard : shards_) {
    const Engine::Stats stats = shard->GetStats();
    total.updates += stats.updates;
    total.batches += stats.batches;
    total.batch_net_entries += stats.batch_net_entries;
    total.minor_rebalances += stats.minor_rebalances;
    total.major_rebalances += stats.major_rebalances;
    total.rebalance_slices += stats.rebalance_slices;
    total.rebalance_restarts += stats.rebalance_restarts;
    total.migrated_keys += stats.migrated_keys;
    total.rebalance_pending += stats.rebalance_pending;
    total.num_trees += stats.num_trees;
    total.num_triples += stats.num_triples;
    total.view_tuples += stats.view_tuples;
  }
  return total;
}

LatencyHistogram ShardedEngine::AggregateUpdateLatency() const {
  LatencyHistogram merged;
  for (const auto& shard : shards_) merged.Merge(shard->update_latency());
  return merged;
}

LatencyHistogram ShardedEngine::AggregateBatchLatency() const {
  LatencyHistogram merged;
  for (const auto& shard : shards_) merged.Merge(shard->batch_latency());
  return merged;
}

void ShardedEngine::ResetLatency() {
  update_latency_.Reset();
  batch_latency_.Reset();
  for (auto& shard : shards_) shard->ResetLatency();
}

size_t ShardedEngine::database_size() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->database_size();
  return total;
}

bool ShardedEngine::CheckInvariants(std::string* error) {
  for (size_t s = 0; s < shards_.size(); ++s) {
    std::string shard_error;
    if (!shards_[s]->CheckInvariants(&shard_error)) {
      if (error != nullptr) *error = "shard " + std::to_string(s) + ": " + shard_error;
      return false;
    }
  }
  if (shards_.size() > 1) {
    // Routing invariant: every stored tuple lives in the shard its root
    // value hashes to.
    for (const std::string& name : query_.RelationNames()) {
      for (size_t s = 0; s < shards_.size(); ++s) {
        for (const auto& [tuple, mult] : shards_[s]->DumpRelation(name)) {
          (void)mult;
          if (ShardOf(name, tuple) != s) {
            if (error != nullptr) {
              *error = "tuple " + tuple.ToString() + " of " + name + " stored in shard " +
                       std::to_string(s) + " but routed to shard " +
                       std::to_string(ShardOf(name, tuple));
            }
            return false;
          }
        }
      }
    }
  }
  return true;
}

}  // namespace ivme
