// Shared-nothing sharded engine (the scaling layer over Engine).
//
// For a connected hierarchical query, the canonical variable order's root
// variable occurs in every atom, so hash-partitioning every relation on its
// root value splits the database into K independent slices: each shard runs
// a full Engine over its slice — own N, M, θ = M^ε, partitions, indicator
// triples, and minor/major rebalancing — and the query result is the union
// of the per-shard results (every join result joins on the root variable,
// so it is produced entirely within one shard). ShardedEngine is the facade
// that routes tuples, drives the shards (concurrently for batches, on a
// small thread pool), and merges enumeration, stats, and invariant checks.
//
// Per-shard thresholds are a real trade-off shift, not just bookkeeping:
// each shard sizes θ from its own M ≈ M_total/K, so at ε > 0 maintenance
// touches smaller light parts (faster updates) while enumeration unions
// over relatively more heavy keys — the Theorem 2/4 trade-offs applied per
// instance slice.
#ifndef IVME_CORE_SHARDED_ENGINE_H_
#define IVME_CORE_SHARDED_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/latency_histogram.h"
#include "src/common/thread_pool.h"
#include "src/core/engine.h"
#include "src/enumerate/merged_enumerator.h"

namespace ivme {

/// Shard of a component-root value, computed through Tuple::Hash on a
/// 1-ary key tuple (stack-only: it fits the SBO buffer). Raw HashSpan64
/// would almost work, but Tuple::Hash remaps one sentinel hash value —
/// routing through it keeps every route, including the unary cached-hash
/// fast path of the routers, consistent by construction. Shared by
/// ShardedEngine and ShardedCatalog so both layers agree on placement.
size_t ShardOfRootValue(Value v, size_t num_shards);

/// Configuration of a sharded engine.
struct ShardedEngineOptions {
  /// Per-shard engine configuration (ε, mode, rebalancing).
  EngineOptions engine;

  /// Number of shards K. 1 is always valid (no routing, any hierarchical
  /// query); K > 1 requires ShardedEngine::CanShard.
  size_t num_shards = 1;

  /// Worker threads for batch application and preprocessing. 0 picks
  /// ThreadPool::DefaultThreads(num_shards): min(K, hardware cores), and
  /// inline execution on single-core machines.
  size_t num_threads = 0;
};

/// Facade with the Engine surface over K shard engines.
///
/// Lifecycle mirrors Engine: construct → Load → Preprocess() → interleave
/// ApplyUpdate / ApplyBatch and Enumerate(). ApplyBatch splits the batch by
/// root-value hash and applies the per-shard sub-batches concurrently; all
/// other entry points are driven from the calling thread.
class ShardedEngine {
 public:
  ShardedEngine(ConjunctiveQuery q, ShardedEngineOptions options);

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  /// True when `q` supports K > 1 shards: connected, the canonical root is
  /// a variable, and every relation symbol reads its root value from one
  /// fixed column (self-joins that permute the root column cannot route a
  /// stored tuple to a single shard). Fills `why` on failure.
  static bool CanShard(const ConjunctiveQuery& q, std::string* why = nullptr);

  // --- Engine surface ---
  void Load(const std::string& relation, const std::vector<std::pair<Tuple, Mult>>& tuples);
  void LoadTuple(const std::string& relation, const Tuple& tuple, Mult mult);

  /// Preprocesses every shard (Theorem 2/4 per slice), in parallel when the
  /// pool has workers.
  void Preprocess();

  /// Routes the update to its shard and applies it there. Same contract as
  /// Engine::ApplyUpdate (false on delete below zero).
  bool ApplyUpdate(const std::string& relation, const Tuple& tuple, Mult mult);

  /// Splits the batch per shard and applies the shard sub-batches
  /// concurrently. Consolidation is per shard, which loses nothing: equal
  /// tuples hash to the same shard, so the net deltas are identical to the
  /// unsharded ones. Counts aggregate across shards.
  Engine::BatchResult ApplyBatch(const Update* updates, size_t count);
  Engine::BatchResult ApplyBatch(const UpdateBatch& updates);

  /// Opens a merged enumeration session: concatenation when the root
  /// variable is free (shards emit disjoint tuples), multiplicity-summing
  /// merge when it is bound (see MergedEnumerator).
  std::unique_ptr<MergedEnumerator> Enumerate() const;

  /// Drains a full enumeration into a map (convenience for tests/examples).
  QueryResult EvaluateToMap() const;

  /// Union of every shard's base storage for `relation` (shards are
  /// disjoint, so this is the unsharded relation contents).
  std::vector<std::pair<Tuple, Mult>> DumpRelation(const std::string& relation) const;

  /// Sums the per-shard stats (num_trees/num_triples/view_tuples included,
  /// so totals grow with K; per-shard values via shard(i).GetStats()).
  Engine::Stats GetStats() const;

  /// Latency distributions of the facade's own ApplyUpdate / ApplyBatch
  /// calls — what a caller of this layer experiences, routing and the
  /// ThreadPool barrier included.
  const LatencyHistogram& update_latency() const { return update_latency_; }
  const LatencyHistogram& batch_latency() const { return batch_latency_; }

  /// Per-shard apply latencies merged bucketwise across all K shards (like
  /// AggregateCounters). Call at a quiescent point — after ApplyBatch has
  /// returned, the pool barrier orders the workers' recordings.
  LatencyHistogram AggregateUpdateLatency() const;
  LatencyHistogram AggregateBatchLatency() const;

  /// Clears the facade-level and every shard's histograms (e.g. to exclude
  /// a bulk-load phase from tail numbers). Quiescent points only.
  void ResetLatency();

  /// Checks every shard's internal invariants plus the routing invariant
  /// (each shard only stores tuples that hash to it). O(database).
  bool CheckInvariants(std::string* error);

  // --- introspection ---
  const ConjunctiveQuery& query() const { return query_; }
  size_t num_shards() const { return shards_.size(); }
  const Engine& shard(size_t i) const { return *shards_[i]; }
  size_t num_threads() const { return pool_ == nullptr ? 0 : pool_->num_threads(); }

  /// Total database size N (sum over shards).
  size_t database_size() const;

  /// The shard index a tuple of `relation` routes to (exposed for tests and
  /// the routing invariant).
  size_t ShardOf(const std::string& relation, const Tuple& tuple) const;

 private:
  const Engine& shard0() const { return *shards_[0]; }

  ConjunctiveQuery query_;
  ShardedEngineOptions options_;
  std::vector<std::unique_ptr<Engine>> shards_;
  std::unique_ptr<ThreadPool> pool_;  ///< null for single-shard engines

  /// Router: per relation symbol (first-occurrence order, matching
  /// query().RelationNames()), the column holding the component-root value.
  std::vector<std::string> router_relations_;
  std::vector<int> router_root_pos_;
  bool root_is_free_ = true;  ///< free root ⇒ disjoint shard results

  LatencyHistogram update_latency_;  ///< facade-level ApplyUpdate timings
  LatencyHistogram batch_latency_;   ///< facade-level ApplyBatch timings

  // ApplyBatch scratch (capacity persists across batches).
  std::vector<UpdateBatch> split_scratch_;
  std::vector<Engine::BatchResult> result_scratch_;
  std::vector<std::function<void()>> task_scratch_;
};

}  // namespace ivme

#endif  // IVME_CORE_SHARDED_ENGINE_H_
