// Shared-nothing sharding of the multi-query catalog: K QueryCatalogs,
// each with its own RelationStore slice, every registered query present in
// every shard. Tuples route by the hash of their query-root value exactly
// as in ShardedEngine, but with many queries the routing column of each
// relation must be agreed on by every query that reads it — RegisterQuery
// gates on CanShard per query and on cross-query routing consistency, and
// a relation's routing stays sticky for the catalog's lifetime (its data
// is already sharded by it).
#ifndef IVME_CORE_SHARDED_CATALOG_H_
#define IVME_CORE_SHARDED_CATALOG_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/epoch.h"
#include "src/common/latency_histogram.h"
#include "src/common/status.h"
#include "src/common/thread_pool.h"
#include "src/core/catalog.h"
#include "src/data/consolidate.h"
#include "src/enumerate/merged_enumerator.h"

namespace ivme {

/// Configuration of a sharded catalog.
struct ShardedCatalogOptions {
  /// Number of shards K. 1 is always valid (no routing, any hierarchical
  /// queries); K > 1 gates every registration on shardability.
  size_t num_shards = 1;

  /// Worker threads for batch application and preprocessing. 0 picks
  /// ThreadPool::DefaultThreads(num_shards).
  size_t num_threads = 0;
};

/// A QueryCatalog surface over K shard catalogs.
///
/// Lifecycle mirrors QueryCatalog: RegisterQuery → Load → Preprocess() →
/// interleave updates, Enumerate(name), late RegisterQuery, DropQuery.
/// ApplyBatch consolidates once, splits the net entries by root-value hash,
/// and applies the per-shard sub-batches concurrently.
class ShardedCatalog {
 public:
  explicit ShardedCatalog(ShardedCatalogOptions options);
  ~ShardedCatalog();

  ShardedCatalog(const ShardedCatalog&) = delete;
  ShardedCatalog& operator=(const ShardedCatalog&) = delete;

  // --- concurrent serving (ARCHITECTURE.md §9) ---

  /// Switches the catalog into serving mode: one EpochManager for the whole
  /// catalog, one RetireLog per shard (writer domain), every relation
  /// versioned. From then on each ApplyUpdate / ApplyBatch / Preprocess
  /// publishes a new snapshot epoch at its boundary and reclaims retired
  /// memory once no pinned reader needs it; RegisterQuery / DropQuery
  /// quiesce readers. Call at a quiescent point; idempotent. Re-enabling
  /// after DisableServing reuses the same EpochManager (readers may hold a
  /// pointer to it across the flip) and re-enters versioned mode.
  void EnableServing();

  /// Leaves serving mode: refuses all future pins, waits out the active
  /// readers, frees every retired object, and detaches the epoch contexts —
  /// subsequent reads take the branch-light kDirect lane. Writer thread
  /// only; idempotent. Readers must use TryAcquireSnapshot across a
  /// disable/enable flip (AcquireSnapshot asserts serving mode was entered
  /// at least once and blocks, but a refused TryPin is the only race-free
  /// signal that the catalog left serving mode).
  void DisableServing();
  bool serving() const { return serving_; }

  /// Pins the newest published snapshot for a reader thread (RAII; released
  /// on destruction). Enumerate the snapshot with EnumerateAt /
  /// EvaluateToMapAt at snapshot.epoch(). Thread-safe; blocks while a
  /// structural change (register/drop) holds the quiesce gate. The one-time
  /// Preprocess() must have completed (happened-before the reader thread's
  /// start) before the first call — a snapshot pinned mid-Preprocess has no
  /// consistent state to enumerate.
  ReadSnapshot AcquireSnapshot() const;

  /// Like AcquireSnapshot, but a disabled manager (DisableServing) refuses
  /// the pin instead of blocking: the returned snapshot is unpinned and the
  /// caller must either retry later or — only when it knows no writer runs
  /// concurrently — read the live state (which then takes the kDirect
  /// lane). EnableServing must have been called at least once.
  ReadSnapshot TryAcquireSnapshot() const;

  /// Merged enumeration / drain of `name` as of a pinned snapshot epoch.
  /// Safe to run from any reader thread concurrently with ApplyBatch.
  /// DrainMode::kParallel fans the per-shard drains onto the catalog's
  /// ThreadPool (shared with the writer's batch fan-out; Run() is
  /// concurrency-safe), identical output order.
  std::unique_ptr<MergedEnumerator> EnumerateAt(const std::string& name, Epoch epoch,
                                                DrainMode mode = DrainMode::kLazy) const;
  QueryResult EvaluateToMapAt(const std::string& name, Epoch epoch) const;

  /// Serving-mode epoch state. Valid only when serving().
  const EpochManager& epoch_manager() const { return *epochs_; }

  /// Retired-but-unreclaimed objects summed over all shard logs (tests /
  /// introspection; call at quiescent points only).
  size_t RetiredObjects() const;

  /// Registers `q` in every shard. The query's relation arities and
  /// mutability declarations (query-text prefixes merged with
  /// `options.mutability` overrides) must agree with the live store; with
  /// K > 1 it must additionally be shardable
  /// (connected, variable root, consistent root column per relation — see
  /// ShardedEngine::CanShard) and its root columns must agree with the
  /// routing already established by earlier queries on shared relations.
  /// Returns false and fills `why` when the query cannot be accepted; the
  /// catalog is unchanged in that case.
  bool RegisterQuery(const std::string& name, const ConjunctiveQuery& q, EngineOptions options,
                     std::string* why = nullptr);

  /// Drops the query from every shard. Routing entries stay sticky: the
  /// relation data is already hash-partitioned by them, so a future
  /// re-registration must still agree. Returns false when unknown.
  bool DropQuery(const std::string& name);

  /// Per-shard handle of a registered query (shard `s`), or nullptr.
  MaintainedQuery* FindQuery(const std::string& name, size_t s = 0) const;

  std::vector<std::string> QueryNames() const { return shards_[0]->QueryNames(); }
  size_t num_queries() const { return shards_[0]->num_queries(); }

  // --- data plane (QueryCatalog surface) ---
  void Load(const std::string& relation, const std::vector<std::pair<Tuple, Mult>>& tuples);
  void LoadTuple(const std::string& relation, const Tuple& tuple, Mult mult);

  /// Validating variants (see QueryCatalog::TryLoadTuple): bad input is a
  /// structured error, checked against shard 0's store before any routing —
  /// a wrong-arity tuple must not reach ShardOf, whose root-column read
  /// would index out of bounds.
  Status TryLoad(const std::string& relation, const std::vector<std::pair<Tuple, Mult>>& tuples);
  Status TryLoadTuple(const std::string& relation, const Tuple& tuple, Mult mult);

  /// Preprocesses every shard, in parallel when the pool has workers.
  void Preprocess();

  /// Routes the update to its shard and applies it there. Returns false
  /// (nothing changed) on a data-plane refusal — delete below zero, write to
  /// a static relation, delete from an insert-only relation; structural
  /// misuse is a hard error (TryApplyUpdate reports both as a Status).
  bool ApplyUpdate(const std::string& relation, const Tuple& tuple, Mult mult);

  /// Validating variant of ApplyUpdate (see QueryCatalog::TryApplyUpdate).
  /// Validates against shard 0 before routing — a wrong-arity tuple must not
  /// reach ShardOf — then applies in the owning shard. Never aborts.
  Status TryApplyUpdate(const std::string& relation, const Tuple& tuple, Mult mult);

  /// The pre-routing write gates (see QueryCatalog::CheckWritable /
  /// CheckBatchWritable), evaluated against shard 0's store — every shard
  /// attaches the same relations with the same arities and declarations.
  /// CheckWritable additionally validates the tuple's arity, which ShardOf's
  /// root-column read depends on. The durable layer runs these before
  /// logging, so invalid writes never reach the WAL.
  Status CheckWritable(const std::string& relation, const Tuple& tuple, Mult mult) const;
  Status CheckBatchWritable(const Update* updates, size_t count) const;

  /// Consolidates the batch once (shared NetDeltaConsolidator), splits the
  /// surviving net entries per shard by root-value hash, and applies the
  /// shard sub-batches concurrently. Equal tuples land in one shard, so
  /// per-shard validation and counts match the unsharded catalog.
  BatchResult ApplyBatch(const Update* updates, size_t count);
  BatchResult ApplyBatch(const UpdateBatch& updates);

  /// Validating variant of ApplyBatch (see QueryCatalog::TryApplyBatch):
  /// the whole batch is gated at the facade — against shard 0's store —
  /// before any consolidation or routing, so a structural error or a
  /// mutability rejection (static relation touched, insert-only delete)
  /// refuses the batch atomically across all shards. Per-entry below-zero
  /// deletes keep the historical skip-and-count semantics per shard.
  Status TryApplyBatch(const Update* updates, size_t count, BatchResult* result);
  Status TryApplyBatch(const UpdateBatch& updates, BatchResult* result);

  /// Merged enumeration of `name`: concatenation when the query's root is
  /// free (disjoint shard results), multiplicity-summing merge otherwise.
  /// DrainMode::kParallel drains the shard streams on the pool up front.
  std::unique_ptr<MergedEnumerator> Enumerate(const std::string& name,
                                              DrainMode mode = DrainMode::kLazy) const;
  QueryResult EvaluateToMap(const std::string& name) const;

  /// Union of every shard's contents for `relation`.
  std::vector<std::pair<Tuple, Mult>> DumpRelation(const std::string& relation) const;

  /// Like DumpRelation with an unknown relation reported as an error.
  Status TryDumpRelation(const std::string& relation,
                         std::vector<std::pair<Tuple, Mult>>* out) const;

  /// Every shard's query invariants plus the routing invariant (each shard
  /// only stores tuples that hash to it). O(database).
  bool CheckInvariants(std::string* error);

  // --- introspection ---
  size_t num_shards() const { return shards_.size(); }
  const QueryCatalog& shard(size_t s) const { return *shards_[s]; }
  QueryCatalog& shard(size_t s) { return *shards_[s]; }
  size_t num_threads() const { return pool_ == nullptr ? 0 : pool_->num_threads(); }

  /// Latency distributions of the facade's own ApplyUpdate / ApplyBatch
  /// calls — what a caller of this layer experiences: consolidation,
  /// routing, and the ThreadPool barrier included.
  const LatencyHistogram& update_latency() const { return update_latency_; }
  const LatencyHistogram& batch_latency() const { return batch_latency_; }

  /// Per-shard apply latencies merged bucketwise across all K shards (like
  /// AggregateCounters). Call at a quiescent point — after ApplyBatch has
  /// returned, the pool barrier orders the workers' recordings.
  LatencyHistogram AggregateUpdateLatency() const;
  LatencyHistogram AggregateBatchLatency() const;

  /// Clears the facade-level and every shard's histograms (e.g. to exclude
  /// a bulk-load phase from tail numbers). Quiescent points only.
  void ResetLatency();

  /// Total store size across shards (each relation counted once per shard
  /// slice, i.e. the unsharded |D|).
  size_t store_size() const;

  /// The shard index a tuple of `relation` routes to. Requires established
  /// routing (some registered query reads `relation`) when K > 1.
  size_t ShardOf(const std::string& relation, const Tuple& tuple) const;

 private:
  struct Route {
    std::string relation;
    int root_pos = 0;
  };

  const Route* FindRoute(const std::string& relation) const;
  Status TryLoadTupleImpl(const std::string& relation, const Tuple& tuple, Mult mult);

  /// Serving mode: refreshes each shard log's keep-epoch snapshot before a
  /// mutation starts (no-op otherwise).
  void BeginMutation();
  /// Serving mode: publishes the just-built epoch and reclaims everything
  /// no pinned reader can still observe (no-op otherwise).
  void PublishAndReclaim();
  /// Runs `fn` with serving suspended: quiesces readers, drains every
  /// retire log, detaches the epoch contexts, runs, re-attaches. Plain call
  /// when not serving.
  void QuiescedStructuralChange(const std::function<void()>& fn);

  ShardedCatalogOptions options_;
  std::vector<std::unique_ptr<QueryCatalog>> shards_;
  std::unique_ptr<ThreadPool> pool_;  ///< null for single-shard catalogs

  // Serving mode (null / empty until EnableServing). contexts_ is sized
  // once and never resized: relations hold pointers into it. epochs_ is
  // created once and never destroyed — readers racing a DisableServing
  // still dereference it inside TryPin. serving_ tracks the enable/disable
  // flips (writer/structural thread only; readers learn the state from
  // TryPin's mutex-guarded answer, never from this flag).
  std::unique_ptr<EpochManager> epochs_;
  bool serving_ = false;
  std::vector<std::unique_ptr<RetireLog>> retire_logs_;
  std::vector<EpochContext> contexts_;

  /// The quiescence signal behind EpochContext::fast_epoch (see epoch.h):
  /// the published epoch P when the last batch boundary left no pin below P
  /// and every retire log empty; kLiveEpoch otherwise.
  std::atomic<Epoch> fast_epoch_{kLiveEpoch};

  /// Sticky per-relation routing (root column), established by the first
  /// registering query that reads the relation.
  std::vector<Route> routes_;

  /// Per registered query: whether its root variable is free (drives the
  /// merged-enumeration mode). Parallel to QueryNames() order.
  std::vector<std::string> root_free_names_;
  std::vector<bool> root_free_;

  LatencyHistogram update_latency_;  ///< facade-level ApplyUpdate timings
  LatencyHistogram batch_latency_;   ///< facade-level ApplyBatch timings

  // ApplyBatch scratch (capacity persists across batches).
  NetDeltaConsolidator consolidator_;
  std::vector<UpdateBatch> split_scratch_;
  std::vector<BatchResult> result_scratch_;
  std::vector<std::function<void()>> task_scratch_;
};

}  // namespace ivme

#endif  // IVME_CORE_SHARDED_CATALOG_H_
