// Shared-nothing sharding of the multi-query catalog: K QueryCatalogs,
// each with its own RelationStore slice, every registered query present in
// every shard. Tuples route by the hash of their query-root value exactly
// as in ShardedEngine, but with many queries the routing column of each
// relation must be agreed on by every query that reads it — RegisterQuery
// gates on CanShard per query and on cross-query routing consistency, and
// a relation's routing stays sticky for the catalog's lifetime (its data
// is already sharded by it).
#ifndef IVME_CORE_SHARDED_CATALOG_H_
#define IVME_CORE_SHARDED_CATALOG_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "src/common/epoch.h"
#include "src/common/latency_histogram.h"
#include "src/common/status.h"
#include "src/common/thread_pool.h"
#include "src/core/catalog.h"
#include "src/core/heavy_hitters.h"
#include "src/data/consolidate.h"
#include "src/data/dictionary.h"
#include "src/enumerate/merged_enumerator.h"

namespace ivme {

/// Skew-aware routing knobs (two-level router; see ARCHITECTURE.md §12).
struct SkewRoutingOptions {
  /// Off by default: pure hash routing, no sketch, no overflow table.
  bool enabled = false;

  /// Counters of the SpaceSaving sketch over root values.
  size_t sketch_capacity = 32;

  /// A root value is hot when its guaranteed frequency reaches
  /// `promote_ratio` × (total routed entries / K) — i.e. a multiple of one
  /// shard's fair share of the stream.
  double promote_ratio = 0.25;

  /// No promotion before this many routed net entries were observed.
  uint64_t min_total = 1024;

  /// Maximum overflow-table entries (promotions are sticky).
  size_t max_overflow = 16;
};

/// Configuration of a sharded catalog.
struct ShardedCatalogOptions {
  /// Number of shards K. 1 is always valid (no routing, any hierarchical
  /// queries); K > 1 gates every registration on shardability.
  size_t num_shards = 1;

  /// Worker threads for batch application and preprocessing. 0 picks
  /// ThreadPool::DefaultThreads(num_shards).
  size_t num_threads = 0;

  /// Hot-key overflow routing. Enabling it tightens RegisterQuery's gate
  /// (free root, no repeated relation symbols, all relations dynamic) so
  /// every later promotion is unconditionally sound.
  SkewRoutingOptions skew;
};

/// Per-shard write-load accounting (shell `stats`, serve reports, router).
struct ShardLoadStats {
  uint64_t routed_tuples = 0;  ///< entries handed to the shard (all writes)
  uint64_t net_entries = 0;    ///< consolidated batch net entries routed
  uint64_t apply_nanos = 0;    ///< wall time of the shard's batch applies
};

/// Shard-load imbalance summary over routed tuples.
struct LoadImbalance {
  double max_mean = 1.0;  ///< max shard load / mean shard load (1 = balanced)
  uint64_t max_tuples = 0;
  double mean_tuples = 0.0;
};

/// One promoted hot root value of the two-level router.
struct OverflowEntry {
  Value root = 0;
  /// The single relation whose `root`-tuples spread across shards by their
  /// non-root hash; every other relation's `root`-tuples are replicated to
  /// all shards, so each shard still joins locally.
  std::string spread_relation;
  size_t primary = 0;  ///< hash shard of `root` (pre-promotion home)
};

/// Immutable overflow-table snapshot (copy-on-write across promotions).
struct OverflowTable {
  std::vector<OverflowEntry> entries;

  const OverflowEntry* Find(Value root) const {
    for (const OverflowEntry& e : entries) {
      if (e.root == root) return &e;
    }
    return nullptr;
  }
};

/// A QueryCatalog surface over K shard catalogs.
///
/// Lifecycle mirrors QueryCatalog: RegisterQuery → Load → Preprocess() →
/// interleave updates, Enumerate(name), late RegisterQuery, DropQuery.
/// ApplyBatch consolidates once, splits the net entries by root-value hash,
/// and applies the per-shard sub-batches concurrently.
class ShardedCatalog {
 public:
  explicit ShardedCatalog(ShardedCatalogOptions options);
  ~ShardedCatalog();

  ShardedCatalog(const ShardedCatalog&) = delete;
  ShardedCatalog& operator=(const ShardedCatalog&) = delete;

  // --- concurrent serving (ARCHITECTURE.md §9) ---

  /// Switches the catalog into serving mode: one EpochManager for the whole
  /// catalog, one RetireLog per shard (writer domain), every relation
  /// versioned. From then on each ApplyUpdate / ApplyBatch / Preprocess
  /// publishes a new snapshot epoch at its boundary and reclaims retired
  /// memory once no pinned reader needs it; RegisterQuery / DropQuery
  /// quiesce readers. Call at a quiescent point; idempotent. Re-enabling
  /// after DisableServing reuses the same EpochManager (readers may hold a
  /// pointer to it across the flip) and re-enters versioned mode.
  void EnableServing();

  /// Leaves serving mode: refuses all future pins, waits out the active
  /// readers, frees every retired object, and detaches the epoch contexts —
  /// subsequent reads take the branch-light kDirect lane. Writer thread
  /// only; idempotent. Readers must use TryAcquireSnapshot across a
  /// disable/enable flip (AcquireSnapshot asserts serving mode was entered
  /// at least once and blocks, but a refused TryPin is the only race-free
  /// signal that the catalog left serving mode).
  void DisableServing();
  bool serving() const { return serving_; }

  /// Pins the newest published snapshot for a reader thread (RAII; released
  /// on destruction). Enumerate the snapshot with EnumerateAt /
  /// EvaluateToMapAt at snapshot.epoch(). Thread-safe; blocks while a
  /// structural change (register/drop) holds the quiesce gate. The one-time
  /// Preprocess() must have completed (happened-before the reader thread's
  /// start) before the first call — a snapshot pinned mid-Preprocess has no
  /// consistent state to enumerate.
  ReadSnapshot AcquireSnapshot() const;

  /// Like AcquireSnapshot, but a disabled manager (DisableServing) refuses
  /// the pin instead of blocking: the returned snapshot is unpinned and the
  /// caller must either retry later or — only when it knows no writer runs
  /// concurrently — read the live state (which then takes the kDirect
  /// lane). EnableServing must have been called at least once.
  ReadSnapshot TryAcquireSnapshot() const;

  /// Merged enumeration / drain of `name` as of a pinned snapshot epoch.
  /// Safe to run from any reader thread concurrently with ApplyBatch.
  /// DrainMode::kParallel fans the per-shard drains onto the catalog's
  /// ThreadPool (shared with the writer's batch fan-out; Run() is
  /// concurrency-safe), identical output order.
  std::unique_ptr<MergedEnumerator> EnumerateAt(const std::string& name, Epoch epoch,
                                                DrainMode mode = DrainMode::kLazy) const;
  QueryResult EvaluateToMapAt(const std::string& name, Epoch epoch) const;

  /// Serving-mode epoch state. Valid only when serving().
  const EpochManager& epoch_manager() const { return *epochs_; }

  /// Retired-but-unreclaimed objects summed over all shard logs (tests /
  /// introspection; call at quiescent points only).
  size_t RetiredObjects() const;

  /// Registers `q` in every shard. The query's relation arities and
  /// mutability declarations (query-text prefixes merged with
  /// `options.mutability` overrides) must agree with the live store; with
  /// K > 1 it must additionally be shardable
  /// (connected, variable root, consistent root column per relation — see
  /// ShardedEngine::CanShard) and its root columns must agree with the
  /// routing already established by earlier queries on shared relations.
  /// Returns false and fills `why` when the query cannot be accepted; the
  /// catalog is unchanged in that case.
  bool RegisterQuery(const std::string& name, const ConjunctiveQuery& q, EngineOptions options,
                     std::string* why = nullptr);

  /// Drops the query from every shard. Routing entries stay sticky: the
  /// relation data is already hash-partitioned by them, so a future
  /// re-registration must still agree. Returns false when unknown.
  bool DropQuery(const std::string& name);

  /// Per-shard handle of a registered query (shard `s`), or nullptr.
  MaintainedQuery* FindQuery(const std::string& name, size_t s = 0) const;

  std::vector<std::string> QueryNames() const { return shards_[0]->QueryNames(); }
  size_t num_queries() const { return shards_[0]->num_queries(); }

  // --- data plane (QueryCatalog surface) ---
  void Load(const std::string& relation, const std::vector<std::pair<Tuple, Mult>>& tuples);
  void LoadTuple(const std::string& relation, const Tuple& tuple, Mult mult);

  /// Validating variants (see QueryCatalog::TryLoadTuple): bad input is a
  /// structured error, checked against shard 0's store before any routing —
  /// a wrong-arity tuple must not reach ShardOf, whose root-column read
  /// would index out of bounds.
  Status TryLoad(const std::string& relation, const std::vector<std::pair<Tuple, Mult>>& tuples);
  Status TryLoadTuple(const std::string& relation, const Tuple& tuple, Mult mult);

  /// Preprocesses every shard, in parallel when the pool has workers.
  void Preprocess();

  /// Routes the update to its shard and applies it there. Returns false
  /// (nothing changed) on a data-plane refusal — delete below zero, write to
  /// a static relation, delete from an insert-only relation; structural
  /// misuse is a hard error (TryApplyUpdate reports both as a Status).
  bool ApplyUpdate(const std::string& relation, const Tuple& tuple, Mult mult);

  /// Validating variant of ApplyUpdate (see QueryCatalog::TryApplyUpdate).
  /// Validates against shard 0 before routing — a wrong-arity tuple must not
  /// reach ShardOf — then applies in the owning shard. Never aborts.
  Status TryApplyUpdate(const std::string& relation, const Tuple& tuple, Mult mult);

  /// The pre-routing write gates (see QueryCatalog::CheckWritable /
  /// CheckBatchWritable), evaluated against shard 0's store — every shard
  /// attaches the same relations with the same arities and declarations.
  /// CheckWritable additionally validates the tuple's arity, which ShardOf's
  /// root-column read depends on. The durable layer runs these before
  /// logging, so invalid writes never reach the WAL.
  Status CheckWritable(const std::string& relation, const Tuple& tuple, Mult mult) const;
  Status CheckBatchWritable(const Update* updates, size_t count) const;

  /// Consolidates the batch once (shared NetDeltaConsolidator), splits the
  /// surviving net entries per shard by root-value hash, and applies the
  /// shard sub-batches concurrently. Equal tuples land in one shard, so
  /// per-shard validation and counts match the unsharded catalog.
  BatchResult ApplyBatch(const Update* updates, size_t count);
  BatchResult ApplyBatch(const UpdateBatch& updates);

  /// Validating variant of ApplyBatch (see QueryCatalog::TryApplyBatch):
  /// the whole batch is gated at the facade — against shard 0's store —
  /// before any consolidation or routing, so a structural error or a
  /// mutability rejection (static relation touched, insert-only delete)
  /// refuses the batch atomically across all shards. Per-entry below-zero
  /// deletes keep the historical skip-and-count semantics per shard.
  Status TryApplyBatch(const Update* updates, size_t count, BatchResult* result);
  Status TryApplyBatch(const UpdateBatch& updates, BatchResult* result);

  /// Merged enumeration of `name`: concatenation when the query's root is
  /// free (disjoint shard results), multiplicity-summing merge otherwise.
  /// DrainMode::kParallel drains the shard streams on the pool up front.
  std::unique_ptr<MergedEnumerator> Enumerate(const std::string& name,
                                              DrainMode mode = DrainMode::kLazy) const;
  QueryResult EvaluateToMap(const std::string& name) const;

  /// Union of every shard's contents for `relation`.
  std::vector<std::pair<Tuple, Mult>> DumpRelation(const std::string& relation) const;

  /// Like DumpRelation with an unknown relation reported as an error.
  Status TryDumpRelation(const std::string& relation,
                         std::vector<std::pair<Tuple, Mult>>* out) const;

  /// Every shard's query invariants plus the routing invariant (each shard
  /// only stores tuples that hash to it). O(database).
  bool CheckInvariants(std::string* error);

  // --- introspection ---
  size_t num_shards() const { return shards_.size(); }
  const QueryCatalog& shard(size_t s) const { return *shards_[s]; }
  QueryCatalog& shard(size_t s) { return *shards_[s]; }
  size_t num_threads() const { return pool_ == nullptr ? 0 : pool_->num_threads(); }

  /// Latency distributions of the facade's own ApplyUpdate / ApplyBatch
  /// calls — what a caller of this layer experiences: consolidation,
  /// routing, and the ThreadPool barrier included.
  const LatencyHistogram& update_latency() const { return update_latency_; }
  const LatencyHistogram& batch_latency() const { return batch_latency_; }

  /// Per-shard apply latencies merged bucketwise across all K shards (like
  /// AggregateCounters). Call at a quiescent point — after ApplyBatch has
  /// returned, the pool barrier orders the workers' recordings.
  LatencyHistogram AggregateUpdateLatency() const;
  LatencyHistogram AggregateBatchLatency() const;

  /// Clears the facade-level and every shard's histograms (e.g. to exclude
  /// a bulk-load phase from tail numbers). Quiescent points only.
  void ResetLatency();

  /// Total store size across shards (each relation counted once per shard
  /// slice, i.e. the unsharded |D|).
  size_t store_size() const;

  /// The shard index a tuple of `relation` routes to. Requires established
  /// routing (some registered query reads `relation`) when K > 1. Tuples of
  /// replicated relations under an overflow root value report their primary
  /// shard (one copy lives in every shard).
  size_t ShardOf(const std::string& relation, const Tuple& tuple) const;

  // --- dictionary ---

  /// The catalog-wide string dictionary, shared by every shard slice (the
  /// router hashes interned ids, so ids must agree across shards).
  const std::shared_ptr<StringDictionary>& dictionary() const { return dictionary_; }

  /// Shares an existing dictionary into every shard (rebuild/reshard paths:
  /// dumped tuples carry ids of the old catalog's dictionary). The current
  /// dictionary must still be empty.
  void AdoptDictionary(std::shared_ptr<StringDictionary> dict);

  // --- skew-aware routing (ARCHITECTURE.md §12) ---

  bool skew_routing() const { return options_.skew.enabled && shards_.size() > 1; }

  /// Write-load counters of shard `s` since construction / ResetLoadStats.
  ShardLoadStats ShardLoad(size_t s) const;

  /// Max/mean routed-tuple imbalance across shards.
  LoadImbalance ComputeImbalance() const;

  /// Clears every shard's load counters (e.g. to exclude a load phase).
  void ResetLoadStats();

  /// Current overflow entries (copy; the table itself is immutable).
  std::vector<OverflowEntry> OverflowEntries() const;

  /// Test hook / manual override: promotes `root` with `spread_relation`
  /// as the spreading relation, migrating its stored tuples. Requires skew
  /// routing, a preprocessed catalog, and a routed, non-unary, dynamic
  /// spread relation; rejects duplicates and a full table. Writer thread.
  Status PromoteHotKey(Value root, const std::string& spread_relation);

 private:
  struct Route {
    std::string relation;
    int root_pos = 0;
  };

  /// Routing decision for one tuple: one target shard, or replicate-to-all
  /// (overflow root value, non-spread relation).
  struct RouteDecision {
    bool replicate = false;
    size_t shard = 0;  ///< target; the primary shard when replicating
  };

  const Route* FindRoute(const std::string& relation) const;
  Status TryLoadTupleImpl(const std::string& relation, const Tuple& tuple, Mult mult);

  /// The live overflow table (atomic shared_ptr load; may be null).
  std::shared_ptr<const OverflowTable> overflow() const;

  /// Routes one tuple under `table` (which may be null).
  RouteDecision Decide(const Route& route, const Tuple& tuple,
                       const OverflowTable* table) const;

  /// Shard of the tuple's non-root hash (spread placement).
  size_t NonRootShard(const Tuple& tuple, size_t root_pos) const;

  /// Reserved-range (dictionary id) validation of one tuple.
  Status CheckDictValues(const std::string& relation, const Tuple& tuple) const;

  /// Sketch-driven promotion check; no-op unless thresholds trip. Must run
  /// inside a mutation bracket on the writer thread.
  void MaybePromote();

  /// PromoteHotKey's body, inside the caller's mutation bracket.
  Status PromoteLocked(Value root, const std::string& spread_relation);

  /// Serving mode: refreshes each shard log's keep-epoch snapshot before a
  /// mutation starts (no-op otherwise).
  void BeginMutation();
  /// Serving mode: publishes the just-built epoch and reclaims everything
  /// no pinned reader can still observe (no-op otherwise).
  void PublishAndReclaim();
  /// Runs `fn` with serving suspended: quiesces readers, drains every
  /// retire log, detaches the epoch contexts, runs, re-attaches. Plain call
  /// when not serving.
  void QuiescedStructuralChange(const std::function<void()>& fn);

  ShardedCatalogOptions options_;
  std::vector<std::unique_ptr<QueryCatalog>> shards_;
  std::unique_ptr<ThreadPool> pool_;  ///< null for single-shard catalogs

  // Serving mode (null / empty until EnableServing). contexts_ is sized
  // once and never resized: relations hold pointers into it. epochs_ is
  // created once and never destroyed — readers racing a DisableServing
  // still dereference it inside TryPin. serving_ tracks the enable/disable
  // flips (writer/structural thread only; readers learn the state from
  // TryPin's mutex-guarded answer, never from this flag).
  std::unique_ptr<EpochManager> epochs_;
  bool serving_ = false;
  std::vector<std::unique_ptr<RetireLog>> retire_logs_;
  std::vector<EpochContext> contexts_;

  /// The quiescence signal behind EpochContext::fast_epoch (see epoch.h):
  /// the published epoch P when the last batch boundary left no pin below P
  /// and every retire log empty; kLiveEpoch otherwise.
  std::atomic<Epoch> fast_epoch_{kLiveEpoch};

  /// Sticky per-relation routing (root column), established by the first
  /// registering query that reads the relation.
  std::vector<Route> routes_;

  /// Per registered query: whether its root variable is free (drives the
  /// merged-enumeration mode) and, when free, the root's position in the
  /// output schema (drives the overflow merge). Parallel vectors.
  std::vector<std::string> root_free_names_;
  std::vector<bool> root_free_;
  std::vector<int> root_out_pos_;

  /// Builds the per-query overflow merge spec (null when the table is
  /// empty, K == 1, or the root is bound).
  std::shared_ptr<const OverflowMergeSpec> BuildOverflowSpec(const std::string& name,
                                                             bool disjoint) const;

  /// Catalog-wide string dictionary (shared into every shard's store).
  std::shared_ptr<StringDictionary> dictionary_;

  /// Per-shard write-load counters. Atomics: batch-apply tasks record their
  /// own shard's apply time from worker threads, and serve-mode reporters
  /// read mid-batch.
  struct ShardLoadCell {
    std::atomic<uint64_t> routed_tuples{0};
    std::atomic<uint64_t> net_entries{0};
    std::atomic<uint64_t> apply_nanos{0};
  };
  std::unique_ptr<ShardLoadCell[]> loads_;

  /// SpaceSaving sketch over root values, fed at consolidation time on the
  /// writer thread (null unless skew routing is active).
  std::unique_ptr<SpaceSavingSketch> sketch_;

  /// Copy-on-write overflow table: readers load it via std::atomic_load at
  /// enumerator construction; promotions (writer thread, inside a mutation
  /// bracket) publish a fresh copy. Entries are sticky — the table only
  /// grows, so any pinned epoch is answered correctly by the newest table.
  std::shared_ptr<const OverflowTable> overflow_;

  LatencyHistogram update_latency_;  ///< facade-level ApplyUpdate timings
  LatencyHistogram batch_latency_;   ///< facade-level ApplyBatch timings

  // ApplyBatch scratch (capacity persists across batches).
  NetDeltaConsolidator consolidator_;
  std::vector<UpdateBatch> split_scratch_;
  std::vector<UpdateBatch> replica_scratch_;  ///< overflow copies, uncounted
  std::vector<BatchResult> result_scratch_;
  std::vector<std::function<void()>> task_scratch_;
};

}  // namespace ivme

#endif  // IVME_CORE_SHARDED_CATALOG_H_
