#include "src/core/view_node.h"

#include "src/common/check.h"

namespace ivme {

std::string ViewNode::ToString(const std::vector<std::string>& var_names, int indent) const {
  std::string out(static_cast<size_t>(indent) * 2, ' ');
  switch (kind) {
    case NodeKind::kLeaf:
      out += name + schema.ToString(var_names);
      break;
    case NodeKind::kView:
      out += name.substr(0, name.find('#')) + schema.ToString(var_names);
      break;
    case NodeKind::kIndicator:
      out += name.substr(0, name.find('#')) + schema.ToString(var_names);
      break;
  }
  out += "\n";
  for (const auto& child : children) {
    out += child->ToString(var_names, indent + 1);
  }
  return out;
}

void IndicatorTriple::RecomputeH() {
  h->Clear();
  const Relation* all = all_tree->storage;
  const Relation* light = light_tree->storage;
  for (const Relation::Entry* e = all->First(); e != nullptr;
       e = Relation::NextLive(e)) {
    if (light->Multiplicity(e->key) == 0) {
      h->Apply(e->key, Relation::EntryMult(e));
    }
  }
}

}  // namespace ivme
