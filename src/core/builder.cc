#include "src/core/builder.h"

#include <functional>

#include "src/common/check.h"
#include "src/query/classify.h"
#include "src/query/hypergraph.h"

namespace ivme {

namespace {

using NodePtr = std::unique_ptr<ViewNode>;

/// Shared construction state: query, mode, storage, and a name counter so
/// every view gets a unique diagnostic name.
struct Builder {
  const ConjunctiveQuery& q;
  EvalMode mode;
  StorageProvider* storage;
  int name_counter = 0;

  std::vector<std::unique_ptr<IndicatorTriple>> triples;

  std::string FreshName(const std::string& base) {
    return base + "#" + std::to_string(name_counter++);
  }

  // -------------------------------------------------------------------------
  // Leaves
  // -------------------------------------------------------------------------

  NodePtr MakeLeaf(int atom_index, const std::optional<Schema>& light_keys) {
    auto node = std::make_unique<ViewNode>();
    node->kind = NodeKind::kLeaf;
    node->atom_index = atom_index;
    node->schema = q.atom(static_cast<size_t>(atom_index)).schema;
    if (light_keys.has_value()) {
      RelationPartition* part = storage->AtomPartition(atom_index, *light_keys);
      node->partition = part;
      node->storage = part->light();
      node->name = part->light()->name();
    } else {
      node->storage = storage->AtomStorage(atom_index);
      node->name = node->storage->name();
    }
    return node;
  }

  // -------------------------------------------------------------------------
  // NewVT (Figure 7)
  // -------------------------------------------------------------------------

  NodePtr NewVT(const std::string& base_name, const Schema& schema, const Schema& keys,
                std::vector<NodePtr> children) {
    IVME_CHECK(!children.empty());
    if (children.size() == 1 && children[0]->schema.SameSet(schema)) {
      return std::move(children[0]);  // the view would replicate its child
    }
    auto node = std::make_unique<ViewNode>();
    node->kind = NodeKind::kView;
    node->name = FreshName(base_name);
    node->schema = schema;
    node->key_schema = keys;
    node->owned_storage = std::make_unique<Relation>(schema, node->name);
    node->storage = node->owned_storage.get();
    for (auto& child : children) {
      IVME_CHECK_MSG(child->schema.ContainsAll(keys.Intersect(child->schema)), "internal");
      if (child->IsIndicator()) {
        IVME_CHECK(node->indicator_child < 0);
        node->indicator_child = static_cast<int>(node->children.size());
      }
      node->children.push_back(std::move(child));
    }
    return node;
  }

  // -------------------------------------------------------------------------
  // AuxView (Figure 8)
  // -------------------------------------------------------------------------

  NodePtr AuxView(const VONode* z, NodePtr tree) {
    const Schema& anc = z->anc;
    if (mode == EvalMode::kDynamic && z->HasSiblings() && anc.size() < tree->schema.size() &&
        tree->schema.ContainsAll(anc)) {
      std::vector<NodePtr> kids;
      const std::string base = tree->name.substr(0, tree->name.find('#')) + "'";
      kids.push_back(std::move(tree));
      return NewVT(base, anc, anc, std::move(kids));
    }
    return tree;
  }

  // -------------------------------------------------------------------------
  // BuildVT (Figure 6)
  // -------------------------------------------------------------------------

  NodePtr BuildVT(const std::string& prefix, const VONode* node, const Schema& free,
                  const std::optional<Schema>& light_keys) {
    if (node->IsAtom()) return MakeLeaf(node->atom_index, light_keys);

    std::vector<NodePtr> child_trees;
    child_trees.reserve(node->children.size());
    for (const auto& child : node->children) {
      child_trees.push_back(BuildVT(prefix, child.get(), free, light_keys));
    }
    const Schema keys = node->anc.Union(Schema({node->var}));
    const std::string base = prefix + "_" + q.var_name(node->var);

    if (free.ContainsAll(keys)) {
      // anc(X) ∪ {X} ⊆ F: aggregate each child to the keys where useful.
      std::vector<NodePtr> subtrees;
      for (size_t i = 0; i < node->children.size(); ++i) {
        subtrees.push_back(AuxView(node->children[i].get(), std::move(child_trees[i])));
      }
      return NewVT(base, keys, keys, std::move(subtrees));
    }
    const Schema fx = node->anc.Union(free.Intersect(node->subtree_vars));
    return NewVT(base, fx, keys, std::move(child_trees));
  }

  // -------------------------------------------------------------------------
  // IndicatorVTs (Figure 10)
  // -------------------------------------------------------------------------

  IndicatorTriple* BuildIndicatorTriple(const VONode* node) {
    const Schema keys = node->anc.Union(Schema({node->var}));
    auto triple = std::make_unique<IndicatorTriple>();
    triple->keys = keys;
    triple->name = FreshName("H_" + q.var_name(node->var));
    triple->all_tree = BuildVT("All", node, keys, std::nullopt);
    triple->light_tree = BuildVT("L", node, keys, keys);
    triple->h = std::make_unique<Relation>(keys, triple->name);
    IVME_CHECK(triple->all_tree->schema.SameSet(keys));
    IVME_CHECK(triple->light_tree->schema.SameSet(keys));
    triples.push_back(std::move(triple));
    return triples.back().get();
  }

  NodePtr MakeIndicatorRef(IndicatorTriple* triple) {
    auto node = std::make_unique<ViewNode>();
    node->kind = NodeKind::kIndicator;
    node->name = "∃" + triple->name;
    node->schema = triple->keys;
    node->storage = triple->h.get();
    node->triple = triple;
    return node;
  }

  // -------------------------------------------------------------------------
  // Deep copy (combinations in τ share child prototypes)
  // -------------------------------------------------------------------------

  NodePtr CloneTree(const ViewNode* node) {
    auto copy = std::make_unique<ViewNode>();
    copy->kind = node->kind;
    copy->name = node->kind == NodeKind::kView ? FreshName(node->name.substr(0, node->name.find('#')))
                                               : node->name;
    copy->schema = node->schema;
    copy->key_schema = node->key_schema;
    copy->atom_index = node->atom_index;
    copy->partition = node->partition;
    copy->triple = node->triple;
    copy->indicator_child = node->indicator_child;
    if (node->kind == NodeKind::kView) {
      copy->owned_storage = std::make_unique<Relation>(node->schema, copy->name);
      copy->storage = copy->owned_storage.get();
    } else {
      copy->storage = node->storage;
    }
    for (const auto& child : node->children) {
      copy->children.push_back(CloneTree(child.get()));
    }
    return copy;
  }

  // -------------------------------------------------------------------------
  // τ (Figure 11)
  // -------------------------------------------------------------------------

  std::vector<NodePtr> Tau(const VONode* node, const Schema& free) {
    if (node->IsAtom()) {
      std::vector<NodePtr> out;
      out.push_back(MakeLeaf(node->atom_index, std::nullopt));
      return out;
    }

    const Schema keys = node->anc.Union(Schema({node->var}));
    const Schema fx = node->anc.Union(free.Intersect(node->subtree_vars));
    std::vector<Schema> residual_atoms;
    for (int a : node->subtree_atoms) {
      residual_atoms.push_back(q.atom(static_cast<size_t>(a)).schema);
    }

    const bool residual_easy = (mode == EvalMode::kStatic && IsFreeConnex(residual_atoms, fx)) ||
                               (mode == EvalMode::kDynamic && IsQHierarchical(residual_atoms, fx));
    if (residual_easy) {
      std::vector<NodePtr> out;
      out.push_back(BuildVT("V", node, fx, std::nullopt));
      return out;
    }

    // Prototype tree sets per child of X; combinations are cloned.
    std::vector<std::vector<NodePtr>> child_sets;
    for (const auto& child : node->children) {
      child_sets.push_back(Tau(child.get(), free));
    }

    const std::string base = "V_" + q.var_name(node->var);
    std::vector<NodePtr> result;

    // Enumerate the Cartesian product of child prototype choices.
    std::vector<size_t> choice(child_sets.size(), 0);
    const bool is_free = q.IsFree(node->var);
    IndicatorTriple* triple = is_free ? nullptr : BuildIndicatorTriple(node);
    while (true) {
      std::vector<NodePtr> kids;
      if (triple != nullptr) kids.push_back(MakeIndicatorRef(triple));
      for (size_t i = 0; i < child_sets.size(); ++i) {
        NodePtr child_copy = CloneTree(child_sets[i][choice[i]].get());
        kids.push_back(AuxView(node->children[i].get(), std::move(child_copy)));
      }
      result.push_back(NewVT(base, keys, keys, std::move(kids)));
      // Advance the odometer.
      size_t pos = 0;
      while (pos < choice.size()) {
        if (++choice[pos] < child_sets[pos].size()) break;
        choice[pos] = 0;
        ++pos;
      }
      if (pos == choice.size()) break;
    }

    if (!is_free) {
      // The all-light strategy (Line 16 of Figure 11).
      result.push_back(BuildVT("V", node, fx, keys));
    }
    return result;
  }
};

void SetParents(ViewNode* node) {
  for (auto& child : node->children) {
    child->parent = node;
    SetParents(child.get());
  }
}

void RegisterIndicatorRefs(ViewNode* node) {
  if (node->IsIndicator()) node->triple->h_refs.push_back(node);
  for (auto& child : node->children) RegisterIndicatorRefs(child.get());
}

// ---------------------------------------------------------------------------
// Compile pass
// ---------------------------------------------------------------------------

Schema ComputeSubtreeFree(const ConjunctiveQuery& q, ViewNode* node, const Schema& free) {
  Schema out;
  if (node->IsLeaf()) {
    out = node->schema.Intersect(free);
  }
  for (auto& child : node->children) {
    if (child->IsIndicator()) continue;
    out = out.Union(ComputeSubtreeFree(q, child.get(), free));
  }
  node->subtree_free = out;
  return out;
}

void CompileNode(const ConjunctiveQuery& q, ViewNode* node, const Schema& ctx,
                 const Schema& free, bool enumerable) {
  node->ctx_schema = ctx;
  node->bound_schema = node->schema.Intersect(ctx);
  node->ctx_to_bound = ProjectionPositions(ctx, node->bound_schema);

  // Enumeration mode and emitted variables. A node with a heavy-indicator
  // gate can never cover all free variables below it: the gate exists only
  // when the residual query at its (bound) variable was neither free-connex
  // nor δ0-hierarchical, which requires uncovered free variables underneath.
  const bool covering = node->schema.ContainsAll(node->subtree_free);
  if (covering) {
    node->enum_mode = EnumMode::kCovering;
  } else if (node->indicator_child >= 0) {
    node->enum_mode = EnumMode::kUnion;
  } else {
    node->enum_mode = EnumMode::kProduct;
  }
  if (enumerable) {
    IVME_CHECK_MSG(!covering || node->indicator_child < 0,
                   "covering view with heavy indicator: " << node->name);
    // Scan index on the bound part (only when it is a proper, non-empty
    // subset of the schema; empty → full scan, full → point lookup).
    if (!node->bound_schema.empty() && node->bound_schema.size() < node->schema.size()) {
      // Resolve against the node's schema, not the storage schema: a leaf's
      // base relation may be store-shared with a canonical column schema.
      node->scan_index_id = node->storage->EnsureIndexOnColumns(
          ProjectionPositions(node->schema, node->bound_schema));
    }
  }

  // Row-emitted variables: free vars of the subtree present in S, not fixed
  // by the context.
  {
    std::vector<VarId> row_emit;
    for (VarId v : node->schema) {
      if (node->subtree_free.Contains(v) && !ctx.Contains(v)) row_emit.push_back(v);
    }
    node->row_emit_schema = Schema(std::move(row_emit));
    node->row_emit_positions = ProjectionPositions(node->schema, node->row_emit_schema);
  }

  if (enumerable && node->enum_mode == EnumMode::kProduct) {
    // Product rows may only vary over free variables (bound ones are either
    // in the context or aggregated away below; for union nodes the heavy
    // grounding pins them instead).
    for (VarId v : node->schema.Minus(ctx)) {
      IVME_CHECK_MSG(node->subtree_free.Contains(v),
                     "bound variable in enumerable rows of " << node->name);
    }
  }

  // emit_schema: covering → subtree_free ∩ S − ctx; otherwise row part then
  // children in order (completed after children are compiled).
  node->emit_schema = node->row_emit_schema;

  // Indicator grounding scan.
  if (enumerable && node->indicator_child >= 0) {
    ViewNode* ind = node->children[static_cast<size_t>(node->indicator_child)].get();
    IVME_CHECK_MSG(ind->schema == node->schema,
                   "indicator keys must equal the union view schema in " << node->name);
    const Schema ind_bound = ind->schema.Intersect(ctx);
    node->ctx_to_indicator_bound = ProjectionPositions(ctx, ind_bound);
    if (!ind_bound.empty() && ind_bound.size() < ind->schema.size()) {
      node->indicator_scan_index_id = ind->storage->EnsureIndex(ind_bound);
    } else {
      node->indicator_scan_index_id = -1;
    }
  }

  // Children (context for them is this node's row schema). Children of
  // covering nodes are never visited by enumeration or lookups, so their
  // enumeration metadata is skipped (their delta plans still compile).
  const bool children_enumerable = enumerable && node->enum_mode != EnumMode::kCovering;
  for (auto& child : node->children) {
    CompileNode(q, child.get(), node->schema, free,
                children_enumerable && !child->IsIndicator());
  }

  // Complete emit schema and child slices for non-covering nodes.
  if (node->enum_mode != EnumMode::kCovering) {
    Schema emit = node->row_emit_schema;
    for (auto& child : node->children) {
      if (child->IsIndicator()) continue;
      emit = emit.Union(child->emit_schema);
    }
    node->emit_schema = emit;
  }
  node->child_emit_slices.clear();
  for (auto& child : node->children) {
    if (child->IsIndicator()) {
      node->child_emit_slices.push_back({});
    } else {
      node->child_emit_slices.push_back(
          ProjectionPositions(node->emit_schema, child->emit_schema));
    }
  }

  // Lookup row sources: build an S-row from (ctx, emit). Union nodes take
  // their rows from the heavy groundings instead.
  node->lookup_row_sources.clear();
  if (enumerable && node->enum_mode != EnumMode::kUnion) {
    for (VarId v : node->schema) {
      const int ctx_pos = ctx.PositionOf(v);
      if (ctx_pos >= 0) {
        node->lookup_row_sources.push_back(SourceRef{-1, ctx_pos});
      } else {
        const int emit_pos = node->emit_schema.PositionOf(v);
        IVME_CHECK_MSG(emit_pos >= 0, "variable of " << node->name
                                                     << " not derivable from context or output");
        node->lookup_row_sources.push_back(SourceRef{-2, emit_pos});
      }
    }
  }

  // Delta plans: one per child position.
  node->delta_plans.clear();
  if (node->kind == NodeKind::kView) {
    const Schema& keys = node->key_schema;
    for (size_t j = 0; j < node->children.size(); ++j) {
      DeltaPlan plan;
      const ViewNode* dchild = node->children[j].get();
      plan.key_from_delta = ProjectionPositions(dchild->schema, keys.Intersect(dchild->schema));
      IVME_CHECK_MSG(keys.Intersect(dchild->schema).SameSet(keys) || node->children.size() == 1,
                     "join keys must be contained in every child of " << node->name);
      for (size_t i = 0; i < node->children.size(); ++i) {
        if (i == j) continue;
        ViewNode* sib = node->children[i].get();
        if (sib->IsIndicator()) {
          plan.gate_children.push_back(static_cast<int>(i));
        } else {
          plan.probe_children.push_back(static_cast<int>(i));
          plan.probe_index_ids.push_back(sib->storage->EnsureIndexOnColumns(
              ProjectionPositions(sib->schema, keys.Intersect(sib->schema))));
        }
      }
      // Row assembly: prefer the delta tuple, then probe children in order.
      for (VarId v : node->schema) {
        int pos = dchild->schema.PositionOf(v);
        if (pos >= 0) {
          plan.row_sources.push_back(SourceRef{-1, pos});
          continue;
        }
        bool found = false;
        for (size_t pi = 0; pi < plan.probe_children.size() && !found; ++pi) {
          const ViewNode* sib = node->children[static_cast<size_t>(plan.probe_children[pi])].get();
          pos = sib->schema.PositionOf(v);
          if (pos >= 0) {
            plan.row_sources.push_back(SourceRef{static_cast<int>(pi), pos});
            found = true;
          }
        }
        IVME_CHECK_MSG(found, "view variable unreachable in delta plan of " << node->name);
      }
      node->delta_plans.push_back(std::move(plan));
    }
  }
}

}  // namespace

void CompileTree(const ConjunctiveQuery& q, ViewNode* root, const Schema& free) {
  SetParents(root);
  ComputeSubtreeFree(q, root, free);
  CompileNode(q, root, Schema(), free, /*enumerable=*/true);
}

CompiledPlan BuildPlan(const ConjunctiveQuery& q, EvalMode mode, StorageProvider* storage) {
  IVME_CHECK_MSG(IsHierarchical(q), "the engine supports hierarchical queries only: "
                                        << q.ToString());
  Builder builder{q, mode, storage, 0, {}};
  const VariableOrder vo = VariableOrder::Canonical(q);

  CompiledPlan plan;
  plan.num_components = static_cast<int>(vo.roots().size());
  // Component-root routing metadata: the root variable of each canonical
  // tree and its position in every atom of the component (canonical orders
  // put the root variable in every atom — see CompiledPlan).
  plan.atom_root_pos.assign(q.num_atoms(), -1);
  for (size_t c = 0; c < vo.roots().size(); ++c) {
    const VONode* root = vo.roots()[c].get();
    const VarId root_var = root->IsVariable() ? root->var : kInvalidVar;
    plan.component_roots.push_back(root_var);
    if (root_var == kInvalidVar) continue;
    std::function<void(const VONode*)> record = [&](const VONode* node) {
      if (node->IsAtom()) {
        plan.atom_root_pos[static_cast<size_t>(node->atom_index)] =
            q.atom(static_cast<size_t>(node->atom_index)).schema.PositionOf(root_var);
      }
      for (const auto& child : node->children) record(child.get());
    };
    record(root);
  }
  for (size_t c = 0; c < vo.roots().size(); ++c) {
    auto trees = builder.Tau(vo.roots()[c].get(), q.free_vars());
    for (auto& root : trees) {
      auto tree = std::make_unique<ViewTree>();
      tree->root = std::move(root);
      tree->component = static_cast<int>(c);
      plan.trees.push_back(std::move(tree));
    }
  }
  plan.triples = std::move(builder.triples);

  // Compile: main trees with the query's free variables; indicator trees
  // with their keys as outputs (they are maintained, not enumerated, but
  // the same metadata drives delta plans).
  for (auto& tree : plan.trees) {
    CompileTree(q, tree->root.get(), q.free_vars());
    RegisterIndicatorRefs(tree->root.get());
  }
  for (auto& triple : plan.triples) {
    CompileTree(q, triple->all_tree.get(), triple->keys);
    CompileTree(q, triple->light_tree.get(), triple->keys);
  }
  return plan;
}

std::unique_ptr<ViewNode> BuildVTForTest(const ConjunctiveQuery& q, const VONode* node,
                                         const Schema& free,
                                         const std::optional<Schema>& light_keys, EvalMode mode,
                                         StorageProvider* storage) {
  Builder builder{q, mode, storage, 0, {}};
  auto tree = builder.BuildVT("V", node, free, light_keys);
  SetParents(tree.get());
  return tree;
}

}  // namespace ivme
