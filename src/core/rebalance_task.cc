#include "src/core/rebalance_task.h"

#include "src/common/check.h"

namespace ivme {

void RebalanceTask::Begin(double old_theta, double new_theta) {
  if (active_) {
    // Retarget: the envelope keeps every threshold seen since the first
    // trigger (keys not yet rescanned may still sit in any of their bands).
    ++stats_.restarts;
  } else {
    low_theta_ = old_theta;
    high_theta_ = old_theta;
  }
  active_ = true;
  if (new_theta < low_theta_) low_theta_ = new_theta;
  if (new_theta > high_theta_) high_theta_ = new_theta;
  if (old_theta < low_theta_) low_theta_ = old_theta;
  if (old_theta > high_theta_) high_theta_ = old_theta;
  queue_.clear();
  next_ = 0;
}

void RebalanceTask::Enqueue(uint32_t slot, uint32_t info, const Tuple& key) {
  IVME_CHECK_MSG(active_, "Enqueue outside an active migration");
  queue_.push_back(WorkItem{slot, info, key});
}

const RebalanceTask::WorkItem* RebalanceTask::Next() {
  if (next_ >= queue_.size()) return nullptr;
  return &queue_[next_++];
}

void RebalanceTask::Finish() {
  active_ = false;
  low_theta_ = 0;
  high_theta_ = 0;
  queue_.clear();
  next_ = 0;
}

uint64_t RebalanceTask::SliceBudget(double theta, size_t records,
                                    double per_record_theta_budget) {
  if (records == 0) records = 1;
  double budget = per_record_theta_budget * theta * static_cast<double>(records);
  // Floor: at θ ≈ 1 (ε = 0) a fractional budget would starve the queue; one
  // key's strict check costs O(1) plus its (small) move, so a few dozen
  // steps per record always drains the queue within O(M) updates.
  const double floor = 32.0 * static_cast<double>(records);
  if (budget < floor) budget = floor;
  return static_cast<uint64_t>(budget);
}

void RebalanceTask::NoteSlice(uint64_t steps) {
  ++stats_.slices;
  if (steps > stats_.max_slice_steps) stats_.max_slice_steps = steps;
}

void RebalanceTask::NoteScannedKey(bool flipped) {
  ++stats_.scanned_keys;
  if (flipped) ++stats_.migrated_keys;
}

}  // namespace ivme
