// Group-by aggregate maintenance over hierarchical queries — the extension
// sketched in the paper's conclusion. The ℤ multiplicities the engine
// maintains form a ring, so COUNT(*) per group is the multiplicity itself,
// and SUM(w) of a positive measure attached to one relation's tuples is the
// multiplicity of an engine whose loads/updates scale that relation's
// multiplicities by w (the F-IVM-style lifting). This wrapper maintains
// both under one update stream.
//
// Limitations inherited from the paper's data model (Section 3): base
// multiplicities stay strictly positive, so measures must be positive and
// a tuple's measure is changed by delete+reinsert (or a signed delta that
// keeps the running measure positive).
#ifndef IVME_CORE_AGGREGATE_VIEW_H_
#define IVME_CORE_AGGREGATE_VIEW_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/engine.h"

namespace ivme {

/// Maintains, for a hierarchical query Q(F), both
///   COUNT(*)  GROUP BY F        and
///   SUM(w)    GROUP BY F
/// where `w` is a positive integer measure carried by the tuples of one
/// designated relation (the "measure relation").
class GroupedAggregateEngine {
 public:
  /// `measure_relation` must name a relation of `q`.
  GroupedAggregateEngine(ConjunctiveQuery q, std::string measure_relation,
                         EngineOptions options);

  /// Loads a tuple of `relation` before preprocessing; tuples of the
  /// measure relation carry `measure` (ignored for the others).
  void LoadTuple(const std::string& relation, const Tuple& tuple, Mult count, Mult measure);

  void Preprocess();

  /// Inserts/deletes `count` copies of `tuple`. For the measure relation,
  /// `measure` is the signed total measure change (e.g. inserting one order
  /// line of quantity 5 is count=+1, measure=+5). Returns false if either
  /// maintained engine would go below zero (nothing is applied then).
  bool ApplyUpdate(const std::string& relation, const Tuple& tuple, Mult count, Mult measure);

  /// One aggregate row: the group's COUNT(*) and SUM(measure).
  struct Aggregates {
    Mult count = 0;
    Mult sum = 0;
  };

  /// Streams distinct groups with their aggregates (delay bounds as in
  /// Theorem 2/4; the sum is looked up from the second engine per group).
  class Iterator {
   public:
    Iterator(std::unique_ptr<ResultEnumerator> counts, const Engine* sum_engine);
    bool Next(Tuple* group, Aggregates* aggregates);

   private:
    std::unique_ptr<ResultEnumerator> counts_;
    const Engine* sum_engine_;
    // Per-tree projection positions free → emit_schema, hoisted out of
    // Next(); parallel to sum_engine_->plan().trees.
    std::vector<std::vector<int>> tree_positions_;
    Tuple scratch_;  // group restricted to one tree's emit schema
  };

  Iterator Enumerate() const;

  const Engine& count_engine() const { return *count_engine_; }
  const Engine& sum_engine() const { return *sum_engine_; }

 private:
  ConjunctiveQuery query_;
  std::string measure_relation_;
  std::unique_ptr<Engine> count_engine_;
  std::unique_ptr<Engine> sum_engine_;
};

}  // namespace ivme

#endif  // IVME_CORE_AGGREGATE_VIEW_H_
