#include "src/core/maintained_query.h"

#include <cmath>
#include <functional>

#include "src/common/check.h"
#include "src/common/counters.h"
#include "src/core/delta.h"
#include "src/core/materialize.h"

namespace ivme {

namespace {

void ForEachLeaf(ViewNode* node, const std::function<void(ViewNode*)>& fn) {
  if (node->IsLeaf()) fn(node);
  for (auto& child : node->children) ForEachLeaf(child.get(), fn);
}

}  // namespace

MaintainedQuery::MaintainedQuery(std::string name, ConjunctiveQuery q, EngineOptions options,
                                 RelationStore* store)
    : name_(std::move(name)), query_(std::move(q)), options_(options), store_(store) {
  IVME_CHECK_MSG(options_.epsilon >= 0.0 && options_.epsilon <= 1.0,
                 "epsilon must lie in [0, 1]");
  // Effective mutability: programmatic overrides win over query-text
  // prefixes, merged before anything reads the declarations (slots, the
  // store attachment, and ToString — checkpoints persist the merged form).
  for (const auto& o : options_.mutability) query_.SetMutability(o.relation, o.mutability);
  monotone_n_ = true;
  for (size_t a = 0; a < query_.num_atoms(); ++a) {
    if (query_.atom_mutability(a) == Mutability::kDynamic) monotone_n_ = false;
  }
  // One slot per atom occurrence. The first occurrence of each relation
  // symbol borrows the store's shared relation; repeated occurrences get a
  // private mirror (their deltas must apply in sequence — footnote 2 — so a
  // later occurrence must still read pre-update contents while an earlier
  // one propagates).
  for (size_t a = 0; a < query_.num_atoms(); ++a) {
    Slot slot;
    slot.atom_index = static_cast<int>(a);
    slot.relation = query_.atom(a).relation;
    slot.mutability = query_.atom_mutability(a);
    RelationGroup* group = FindGroup(slot.relation);
    if (group == nullptr) {
      groups_.push_back(RelationGroup{slot.relation, {}});
      group = &groups_.back();
      slot.storage =
          store_->Attach(slot.relation, query_.atom(a).schema.size(), slot.mutability);
    } else {
      slot.mirror = std::make_unique<Relation>(
          query_.atom(a).schema, slot.relation + "#" + std::to_string(a) + "@" + name_);
      slot.storage = slot.mirror.get();
    }
    group->slot_indices.push_back(slots_.size());
    slots_.push_back(std::move(slot));
  }
  plan_ = BuildPlan(query_, options_.mode, this);
  RegisterLeaves();
  ComputeStaticFlags();
}

MaintainedQuery::~MaintainedQuery() {
  for (const auto& group : groups_) store_->Release(group.relation);
}

MaintainedQuery::RelationGroup* MaintainedQuery::FindGroup(const std::string& relation) {
  for (auto& group : groups_) {
    if (group.relation == relation) return &group;
  }
  return nullptr;
}

bool MaintainedQuery::UsesRelation(const std::string& relation) const {
  for (const auto& group : groups_) {
    if (group.relation == relation) return true;
  }
  return false;
}

Relation* MaintainedQuery::AtomStorage(int atom_index) {
  return slots_[static_cast<size_t>(atom_index)].storage;
}

RelationPartition* MaintainedQuery::AtomPartition(int atom_index, const Schema& keys) {
  Slot& slot = slots_[static_cast<size_t>(atom_index)];
  for (auto& part : slot.partitions) {
    if (part->keys() == keys) return part.get();
  }
  std::string light_name = slot.storage->name() + "^" + std::to_string(slot.partitions.size());
  if (slot.shared()) light_name += "@" + name_;
  // Resolve the partition keys against the atom schema: the shared base
  // relation's canonical schema lives in a different variable-id space.
  slot.partitions.push_back(std::make_unique<RelationPartition>(
      slot.storage, query_.atom(static_cast<size_t>(atom_index)).schema, keys,
      std::move(light_name)));
  return slot.partitions.back().get();
}

void MaintainedQuery::RegisterLeaves() {
  // Slot partitions ↔ triples, via the triples' light trees (each atom
  // occurrence appears exactly once per triple covering it).
  for (auto& triple : plan_.triples) {
    ForEachLeaf(triple->light_tree.get(), [&](ViewNode* leaf) {
      IVME_CHECK(leaf->partition != nullptr);
      Slot& slot = slots_[static_cast<size_t>(leaf->atom_index)];
      SlotPartition info;
      info.partition = leaf->partition;
      info.triple = triple.get();
      info.light_leaf = leaf;
      info.mutability = slot.mutability;
      slot.infos.push_back(info);
    });
    ForEachLeaf(triple->all_tree.get(), [&](ViewNode* leaf) {
      Slot& slot = slots_[static_cast<size_t>(leaf->atom_index)];
      for (auto& info : slot.infos) {
        if (info.triple == triple.get()) info.all_leaf = leaf;
      }
    });
  }
  // Main-tree leaves.
  for (auto& tree : plan_.trees) {
    ForEachLeaf(tree->root.get(), [&](ViewNode* leaf) {
      Slot& slot = slots_[static_cast<size_t>(leaf->atom_index)];
      if (leaf->partition == nullptr) {
        slot.main_full_leaves.push_back(leaf);
      } else {
        bool found = false;
        for (auto& info : slot.infos) {
          if (info.partition == leaf->partition) {
            info.main_light_leaves.push_back(leaf);
            found = true;
          }
        }
        IVME_CHECK_MSG(found, "light-part leaf without owning triple");
      }
    });
  }
  for (auto& slot : slots_) {
    for (auto& info : slot.infos) {
      IVME_CHECK_MSG(info.all_leaf != nullptr, "missing All-tree leaf for slot");
    }
  }
}

void MaintainedQuery::ComputeStaticFlags() {
  // Per-node rules: a light-part leaf is static iff its relation is
  // declared static (then the partition is frozen at the preprocessing θ);
  // a full-relation leaf never depends on the threshold but is fully static
  // only for a static relation; an indicator reference inherits from its
  // triple; a view ANDs its children. Triples may nest (an indicator tree
  // can reference another triple's H), so the triple flags settle by
  // fixpoint — starting optimistic and relaxing only ever flips flags to
  // false, which terminates.
  std::function<void(ViewNode*)> annotate = [&](ViewNode* node) {
    bool threshold = true;
    bool fully = true;
    if (node->IsLeaf()) {
      const bool st = slots_[static_cast<size_t>(node->atom_index)].is_static();
      fully = st;
      if (node->partition != nullptr) threshold = st;
    } else if (node->IsIndicator()) {
      threshold = fully = node->triple != nullptr && node->triple->is_static;
    }
    for (auto& child : node->children) {
      annotate(child.get());
      threshold = threshold && child->threshold_static;
      fully = fully && child->fully_static;
    }
    node->threshold_static = threshold;
    node->fully_static = fully;
  };
  for (auto& triple : plan_.triples) triple->is_static = true;
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto& triple : plan_.triples) {
      if (!triple->is_static) continue;
      annotate(triple->all_tree.get());
      annotate(triple->light_tree.get());
      if (!triple->all_tree->fully_static || !triple->light_tree->fully_static) {
        triple->is_static = false;
        changed = true;
      }
    }
  }
  // Final annotation against the settled triple flags.
  for (auto& triple : plan_.triples) {
    annotate(triple->all_tree.get());
    annotate(triple->light_tree.get());
  }
  for (auto& tree : plan_.trees) annotate(tree->root.get());
}

void MaintainedQuery::MaterializeThresholdViews(ViewNode* node) {
  // A threshold_static subtree reads no repartitioned light part and no
  // rebalance-affected indicator: its views still equal the join of their
  // children, so the whole subtree is skipped (Kara et al. 2024).
  if (node->threshold_static) return;
  for (auto& child : node->children) MaterializeThresholdViews(child.get());
  if (node->kind == NodeKind::kView) MaterializeNode(node);
}

double MaintainedQuery::theta() const {
  return std::pow(static_cast<double>(m_), options_.epsilon);
}

void MaintainedQuery::Preprocess() {
  IVME_CHECK_MSG(!preprocessed_.load(std::memory_order_relaxed),
                 "Preprocess called twice for query " << name_);
  preprocessed_.store(true, std::memory_order_release);
  // Fill self-join mirrors from the live shared relation (late registration
  // starts from whatever the store already holds).
  for (auto& slot : slots_) {
    if (slot.shared()) continue;
    const Relation* shared = store_->Find(slot.relation);
    slot.mirror->Clear();
    for (const Relation::Entry* e = shared->First(); e != nullptr;
         e = Relation::NextLive(e)) {
      slot.mirror->Apply(e->key, Relation::EntryMult(e));
    }
  }
  n_ = 0;
  for (auto& slot : slots_) n_ += slot.storage->size();
  m_ = 2 * n_ + 1;
  const double th = theta();
  // Static relations are partitioned once against this θ and frozen; the
  // Definition 11 bands keep holding against it because their contents
  // never change (CheckInvariants checks them against frozen_theta_).
  frozen_theta_ = th;
  for (auto& slot : slots_) {
    for (auto& part : slot.partitions) part->StrictRepartition(th);
  }
  for (auto& triple : plan_.triples) {
    MaterializeTree(triple->all_tree.get());
    MaterializeTree(triple->light_tree.get());
    triple->RecomputeH();
  }
  for (auto& tree : plan_.trees) MaterializeTree(tree->root.get());
}

std::unique_ptr<ResultEnumerator> MaintainedQuery::Enumerate() const {
  IVME_CHECK_MSG(preprocessed_.load(std::memory_order_acquire),
                 "Preprocess before enumerating");
  return std::make_unique<ResultEnumerator>(query_, plan_,
                                            ResolveReadView(epoch_ctx_, kLiveEpoch));
}

QueryResult MaintainedQuery::EvaluateToMap() const {
  auto it = Enumerate();
  return DrainEnumeration(*it);
}

std::unique_ptr<ResultEnumerator> MaintainedQuery::EnumerateAt(Epoch epoch) const {
  IVME_CHECK_MSG(preprocessed_.load(std::memory_order_acquire),
                 "Preprocess before enumerating");
  return std::make_unique<ResultEnumerator>(query_, plan_,
                                            ResolveReadView(epoch_ctx_, epoch));
}

QueryResult MaintainedQuery::EvaluateToMapAt(Epoch epoch) const {
  auto it = EnumerateAt(epoch);
  return DrainEnumeration(*it);
}

namespace {

void SetTreeEpochContext(ViewNode* node, const EpochContext* ctx) {
  // fully_static subtrees are never written after Preprocess; unversioned
  // storage answers every epoch with its (constant) current contents, so
  // they never grow version chains.
  if (node->fully_static) return;
  if (node->owned_storage != nullptr) node->owned_storage->SetEpochContext(ctx);
  for (auto& child : node->children) SetTreeEpochContext(child.get(), ctx);
}

}  // namespace

void MaintainedQuery::SetEpochContext(const EpochContext* ctx) {
  for (auto& slot : slots_) {
    // Static relations' mirrors and light parts are frozen at Preprocess —
    // same reasoning as RelationStore::SetEpochContext for the base
    // relation: no version chains needed.
    if (slot.is_static()) continue;
    if (slot.mirror != nullptr) slot.mirror->SetEpochContext(ctx);
    for (auto& partition : slot.partitions) partition->light()->SetEpochContext(ctx);
  }
  for (auto& tree : plan_.trees) SetTreeEpochContext(tree->root.get(), ctx);
  for (auto& triple : plan_.triples) {
    if (triple->is_static) continue;
    SetTreeEpochContext(triple->all_tree.get(), ctx);
    SetTreeEpochContext(triple->light_tree.get(), ctx);
    triple->h->SetEpochContext(ctx);
  }
  epoch_ctx_ = ctx;
}

void MaintainedQuery::ApplySingle(const std::string& relation, const Tuple& tuple, Mult mult,
                                  int support_change) {
  RelationGroup* group = FindGroup(relation);
  IVME_CHECK_MSG(group != nullptr, "unknown relation " << relation);
  // Backstop only: the owning catalog rejects writes to static relations
  // with a structured Status before the shared base write.
  IVME_CHECK_MSG(query_.MutabilityOf(relation) != Mutability::kStatic,
                 "delta propagated to static relation " << relation);
  for (size_t si : group->slot_indices) {
    ApplyUpdateToSlot(slots_[si], tuple, mult, support_change);
  }
  // Incremental mode: donate this update's migration budget once, after
  // every slot of the relation group has applied (footnote-2 sequencing
  // must not interleave with migration moves).
  if (options_.enable_rebalancing && options_.rebalance_mode == RebalanceMode::kIncremental) {
    ProgressIncrementalRebalance(1);
  }
  ++stats_.updates;
}

void MaintainedQuery::ApplyUpdateToSlot(Slot& slot, const Tuple& tuple, Mult mult,
                                        int support_change) {
  ApplyDeltaToSlot(slot, tuple, mult, support_change);
  // Rebalancing (Figure 22) runs per update here; the batch path defers it.
  if (options_.enable_rebalancing) Rebalance(slot, tuple);
}

void MaintainedQuery::ApplyDeltaToSlot(Slot& slot, const Tuple& tuple, Mult mult,
                                       int support_change) {
  // Pre-update snapshots per partition, in the reused scratch (Figure 19
  // reads these on the pre-update database). The shared base write already
  // happened, so for shared slots the pre-update base count is the current
  // count minus this tuple's support change; a mirror slot's storage is
  // still untouched at this point.
  if (snap_scratch_.size() < slot.infos.size()) snap_scratch_.resize(slot.infos.size());
  for (size_t i = 0; i < slot.infos.size(); ++i) {
    const SlotPartition& info = slot.infos[i];
    KeySnapshot& snap = snap_scratch_[i];
    snap.key = info.partition->KeyOf(tuple);
    snap.in_light = info.partition->KeyInLight(snap.key);
    const size_t base_now = info.partition->BaseCountForKey(snap.key);
    snap.base_before =
        slot.shared()
            ? static_cast<size_t>(static_cast<long long>(base_now) - support_change)
            : base_now;
    snap.all_before = info.triple->all_tree->storage->Multiplicity(snap.key);
  }

  // 1. Base storage. Shared slots were written by the store (once for every
  // registered query); mirror occurrences apply their private copy now, so
  // earlier occurrences' propagation above saw this occurrence pre-update.
  if (!slot.shared()) slot.mirror->Apply(tuple, mult);
  n_ = static_cast<size_t>(static_cast<long long>(n_) + support_change);

  // 2. Full-relation leaves in the main trees (Figure 19, line 1).
  for (ViewNode* leaf : slot.main_full_leaves) {
    PropagateUp(leaf, {{tuple, mult}});
  }

  // 3. Indicator maintenance per partition (Figure 19, lines 2–9).
  for (size_t i = 0; i < slot.infos.size(); ++i) {
    SlotPartition& info = slot.infos[i];
    PropagateUp(info.all_leaf, {{tuple, mult}});
    const Mult all_after = info.triple->all_tree->storage->Multiplicity(snap_scratch_[i].key);
    ApplyAllChangeToH(info.triple, snap_scratch_[i].key, all_after - snap_scratch_[i].all_before);
  }

  // 4. Light parts (Figure 19, lines 10–14): the tuple belongs to the light
  // part when its key is new or already classified light.
  for (size_t i = 0; i < slot.infos.size(); ++i) {
    if (snap_scratch_[i].base_before == 0 || snap_scratch_[i].in_light) {
      ApplyLightDelta(slot.infos[i], tuple, mult);
    }
  }
}

void MaintainedQuery::ApplyLightDelta(SlotPartition& info, const Tuple& tuple, Mult mult) {
  info.partition->light()->Apply(tuple, mult);
  for (ViewNode* leaf : info.main_light_leaves) {
    PropagateUp(leaf, {{tuple, mult}});
  }
  const Tuple key = info.partition->KeyOf(tuple);
  const Mult l_before = info.triple->light_tree->storage->Multiplicity(key);
  PropagateUp(info.light_leaf, {{tuple, mult}});
  // Monotone indicator form (Abo Khamis et al.): a positive delta into an
  // insert-only slot can only grow L(key), so when ∃L already held it
  // cannot flip — skip re-reading the L root. (Key moves pass negative
  // deltas even for insert-only slots and take the general path.)
  if (info.mutability == Mutability::kInsertOnly && mult > 0 && l_before != 0) return;
  const Mult l_after = info.triple->light_tree->storage->Multiplicity(key);
  const int l_change = SupportChange(l_before, l_after);
  if (l_change != 0) {
    // δ(∄L) = −δ(∃L) feeds the heavy indicator (Figure 19, lines 13–14).
    ApplyNotLChangeToH(info.triple, key, -l_change);
  }
}

void MaintainedQuery::ApplyAllChangeToH(IndicatorTriple* triple, const Tuple& key,
                                        Mult all_change) {
  if (all_change == 0) return;
  if (triple->light_tree->storage->Multiplicity(key) != 0) return;  // ∄L gate
  const Mult before = triple->h->Multiplicity(key);
  triple->h->Apply(key, all_change);
  const int flip = SupportChange(before, before + all_change);
  if (flip != 0) PropagateIndicatorChange(triple, key, flip);
}

void MaintainedQuery::ApplyNotLChangeToH(IndicatorTriple* triple, const Tuple& key,
                                         int not_l_change) {
  const Mult all = triple->all_tree->storage->Multiplicity(key);
  if (all == 0) return;
  const Mult before = triple->h->Multiplicity(key);
  triple->h->Apply(key, not_l_change * all);
  const int flip = SupportChange(before, before + not_l_change * all);
  if (flip != 0) PropagateIndicatorChange(triple, key, flip);
}

void MaintainedQuery::PropagateIndicatorChange(IndicatorTriple* triple, const Tuple& key,
                                               int change) {
  for (ViewNode* ref : triple->h_refs) {
    PropagateUp(ref, {{key, change}});
  }
}

void MaintainedQuery::Rebalance(Slot& slot, const Tuple& tuple) {
  if (options_.rebalance_mode == RebalanceMode::kIncremental) {
    // Deamortized: retarget M/θ and snapshot the migration queue only; the
    // bounded-work slice runs after the whole update has applied
    // (ApplySingle / FinishBatch). The minor checks below use the possibly
    // just-retargeted θ, so the in-flight delta lands on the correct side
    // of the new threshold without waiting for its key's migration turn.
    StartIncrementalRebalanceIfNeeded();
    const double th = theta();
    for (auto& info : slot.infos) {
      MinorCheckKey(info, info.partition->KeyOf(tuple), th);
    }
    return;
  }
  if (MajorRebalanceIfNeeded()) return;
  const double th = theta();
  for (auto& info : slot.infos) {
    MinorCheckKey(info, info.partition->KeyOf(tuple), th);
  }
}

size_t MaintainedQuery::TargetM() const {
  // After a single-tuple update at most one doubling/halving applies; a
  // batch can move N past several powers of two, hence the loops.
  size_t target = m_;
  while (n_ >= target) target *= 2;
  // With no dynamic atom N is monotone (insert-only relations only grow,
  // static ones never change), so the floor ⌊M/4⌋ ≤ N can only have been
  // broken by a doubling that already restored it — the halving scan is
  // dead (Abo Khamis et al.).
  if (!monotone_n_) {
    while (n_ < target / 4) target = target / 2 >= 2 ? target / 2 - 1 : 1;
  }
  return target;
}

bool MaintainedQuery::MajorRebalanceIfNeeded() {
  const size_t target = TargetM();
  if (target == m_) return false;
  // The expensive repartition+recompute runs once however far N moved.
  m_ = target;
  MajorRebalancing();
  return true;
}

void MaintainedQuery::StartIncrementalRebalanceIfNeeded() {
  const size_t target = TargetM();
  if (target == m_) return;
  ++stats_.major_rebalances;
  const double old_theta = theta();
  m_ = target;
  rebalance_task_.Begin(old_theta, theta());
  // Snapshot every partition key into the migration queue — a flat value
  // copy (no joins, no view work); the strict reclassification against the
  // new θ happens in later bounded-work slices against live counts. A key
  // deleted before its turn is skipped at migration time; keys created
  // after the snapshot start light and are policed by the per-update minor
  // checks, which already run under the new θ.
  for (size_t si = 0; si < slots_.size(); ++si) {
    Slot& slot = slots_[si];
    // Static slots' partitions are frozen at the preprocessing θ — their
    // keys never enter the migration queue (Kara et al. 2024).
    if (slot.is_static()) continue;
    for (size_t ii = 0; ii < slot.infos.size(); ++ii) {
      const SlotPartition& info = slot.infos[ii];
      const auto& index = info.partition->base()->index(info.partition->base_index_id());
      for (const Relation::BucketNode* b = index.FirstKey(); b != nullptr;
           b = TupleMap<Relation::Bucket>::NextLive(b)) {
        rebalance_task_.Enqueue(static_cast<uint32_t>(si), static_cast<uint32_t>(ii), b->key);
      }
    }
  }
}

void MaintainedQuery::ProgressIncrementalRebalance(size_t records) {
  if (!rebalance_task_.active()) return;
  const uint64_t budget =
      RebalanceTask::SliceBudget(theta(), records, options_.rebalance_budget);
  uint64_t spent = 0;
  while (spent < budget) {
    const RebalanceTask::WorkItem* item = rebalance_task_.Next();
    if (item == nullptr) {
      rebalance_task_.Finish();
      break;
    }
    spent += MigrateKey(*item);
  }
  if (spent > 0) rebalance_task_.NoteSlice(spent);
}

uint64_t MaintainedQuery::MigrateKey(const RebalanceTask::WorkItem& item) {
  Slot& slot = slots_[item.slot];
  SlotPartition& info = slot.infos[item.info];
  const uint64_t steps_before = LocalCounters().delta_steps;
  const size_t base_count = info.partition->BaseCountForKey(item.key);
  bool flipped = false;
  if (base_count > 0) {
    const bool in_light = info.partition->KeyInLight(item.key);
    const bool want_light = static_cast<double>(base_count) < theta();
    if (in_light != want_light) {
      MoveKeyAcrossThreshold(info, item.key, want_light);
      flipped = true;
    }
  }
  rebalance_task_.NoteScannedKey(flipped);
  // +1: even an unflipped scan charges a basic step, so a slice over a
  // mostly-clean queue still terminates against its budget.
  return LocalCounters().delta_steps - steps_before + 1;
}

void MaintainedQuery::MinorCheckKey(SlotPartition& info, const Tuple& key, double th) {
  const size_t light_count = info.partition->LightCountForKey(key);
  if (info.mutability == Mutability::kInsertOnly) {
    // Key degrees are monotone: a heavy key can never fall under θ/2
    // between strict reclassifications (majors in amortized mode, MigrateKey
    // in incremental mode), so the heavy→light check — and its base-count
    // lookup — is dead. Only light→heavy promotion remains.
    if (static_cast<double>(light_count) >= 1.5 * th) {
      MinorRebalancing(info, key, /*insert=*/false);
    }
    return;
  }
  const size_t base_count = info.partition->BaseCountForKey(key);
  if (light_count == 0 && static_cast<double>(base_count) < 0.5 * th && base_count > 0) {
    MinorRebalancing(info, key, /*insert=*/true);
  } else if (static_cast<double>(light_count) >= 1.5 * th) {
    MinorRebalancing(info, key, /*insert=*/false);
  }
}

void MaintainedQuery::ApplyGroupDelta(const std::string& relation,
                                      const RelationStore::DeltaResult& delta) {
  if (delta.applied.empty()) return;
  RelationGroup* group = FindGroup(relation);
  IVME_CHECK_MSG(group != nullptr, "unknown relation " << relation);
  // Backstop only: the owning catalog rejects static-relation groups with a
  // structured Status before any base write.
  IVME_CHECK_MSG(query_.MutabilityOf(relation) != Mutability::kStatic,
                 "delta propagated to static relation " << relation);
  // Slots of a repeated relation symbol update in sequence (footnote 2).
  for (size_t si : group->slot_indices) {
    ApplyBatchDeltaToSlot(slots_[si], delta);
  }
}

void MaintainedQuery::ApplyBatchDeltaToSlot(Slot& slot,
                                            const RelationStore::DeltaResult& delta) {
  // Per-partition pre-batch snapshots, keyed by partition key: light/heavy
  // classification, All-tree and L-tree multiplicities (Figure 19 reads
  // these on the pre-update database). View storages are untouched until
  // this slot propagates, so they can be read directly; the shared base
  // relation was already written once by the store, so its pre-batch key
  // counts are reconstructed from the recorded support changes.
  while (key_scratch_.size() < slot.infos.size()) {
    key_scratch_.push_back(std::make_unique<TupleMap<BatchKeySnap>>());
  }
  for (size_t i = 0; i < slot.infos.size(); ++i) {
    const SlotPartition& info = slot.infos[i];
    TupleMap<BatchKeySnap>& keys = *key_scratch_[i];
    keys.Clear();
    for (size_t j = 0; j < delta.applied.size(); ++j) {
      const auto [snap, inserted] = keys.Emplace(info.partition->KeyOf(delta.applied[j].first));
      if (inserted) {
        snap->value.in_light = info.partition->KeyInLight(snap->key);
        snap->value.all_before = info.triple->all_tree->storage->Multiplicity(snap->key);
        snap->value.l_before = info.triple->light_tree->storage->Multiplicity(snap->key);
      }
      snap->value.support_sum += delta.support[j];
    }
    for (auto* snap = keys.First(); snap != nullptr; snap = snap->next) {
      const size_t base_now = info.partition->BaseCountForKey(snap->key);
      const size_t base_before =
          slot.shared()
              ? static_cast<size_t>(static_cast<long long>(base_now) - snap->value.support_sum)
              : base_now;
      snap->value.light_classified = snap->value.in_light || base_before == 0;
    }
  }

  // 1. Base storage: shared slots were written once by the store; mirror
  // occurrences catch up now (earlier occurrences propagated against this
  // occurrence's pre-batch contents, per footnote 2).
  if (!slot.shared()) {
    for (const auto& [tuple, mult] : delta.applied) slot.mirror->Apply(tuple, mult);
  }
  n_ = static_cast<size_t>(static_cast<long long>(n_) + delta.net_support);

  // 2. Full-relation leaves in the main trees (Figure 19, line 1): the
  // whole delta as one DeltaVec — every view on the way up merges the
  // per-tuple deltas, so each tree is walked once.
  for (ViewNode* leaf : slot.main_full_leaves) {
    PropagateUp(leaf, delta.applied);
  }

  // 3. Indicator maintenance (Figure 19, lines 2–9): one All-tree pass,
  // then the per-key H changes against the pre-batch snapshots. H stays
  // All ∧ ∄L throughout because L is untouched until step 4.
  for (size_t i = 0; i < slot.infos.size(); ++i) {
    SlotPartition& info = slot.infos[i];
    PropagateUp(info.all_leaf, delta.applied);
    for (const auto* snap = key_scratch_[i]->First(); snap != nullptr; snap = snap->next) {
      const Mult all_after = info.triple->all_tree->storage->Multiplicity(snap->key);
      ApplyAllChangeToH(info.triple, snap->key, all_after - snap->value.all_before);
    }
  }

  // 4. Light parts (Figure 19, lines 10–14). A key's classification is
  // constant across the batch (rebalancing is deferred): every delta tuple
  // of a light or new key belongs to the light part, exactly as when the
  // tuples apply one at a time. L-support changes feed H per key, netted
  // over the batch.
  for (size_t i = 0; i < slot.infos.size(); ++i) {
    SlotPartition& info = slot.infos[i];
    const TupleMap<BatchKeySnap>& keys = *key_scratch_[i];
    batch_light_scratch_.clear();
    for (const auto& [tuple, mult] : delta.applied) {
      const auto* snap = keys.Find(info.partition->KeyOf(tuple));
      IVME_CHECK(snap != nullptr);
      if (!snap->value.light_classified) continue;
      info.partition->light()->Apply(tuple, mult);
      batch_light_scratch_.emplace_back(tuple, mult);
    }
    if (batch_light_scratch_.empty()) continue;
    for (ViewNode* leaf : info.main_light_leaves) {
      PropagateUp(leaf, batch_light_scratch_);
    }
    PropagateUp(info.light_leaf, batch_light_scratch_);
    for (const auto* snap = keys.First(); snap != nullptr; snap = snap->next) {
      // Monotone indicator form: an insert-only slot's consolidated delta
      // is all-positive, so ∃L(key) cannot flip once set — skip the per-key
      // L-root lookup (Abo Khamis et al.).
      if (info.mutability == Mutability::kInsertOnly && snap->value.l_before != 0) continue;
      const Mult l_after = info.triple->light_tree->storage->Multiplicity(snap->key);
      const int l_change = SupportChange(snap->value.l_before, l_after);
      if (l_change != 0) ApplyNotLChangeToH(info.triple, snap->key, -l_change);
    }
  }

  // 5. Deferred minor rebalancing: a single heavy/light threshold check per
  // touched partition key (Figure 22, amortized over the whole batch). In
  // amortized mode it is skipped when the batch already broke the size
  // invariant — the major rebalance at batch end strictly repartitions
  // everything, so minor moves done now (against a θ about to change)
  // would be thrown away. In incremental mode the sweep always runs: no
  // wholesale repartition follows, and the sweep is what keeps every
  // batch-touched key inside the bands of the current θ (part of the
  // migration's θ-envelope invariant).
  if (options_.enable_rebalancing &&
      (options_.rebalance_mode == RebalanceMode::kIncremental ||
       (m_ / 4 <= n_ && n_ < m_))) {
    const double th = theta();
    for (size_t i = 0; i < slot.infos.size(); ++i) {
      for (const auto* snap = key_scratch_[i]->First(); snap != nullptr; snap = snap->next) {
        MinorCheckKey(slot.infos[i], snap->key, th);
      }
    }
  }
}

void MaintainedQuery::FinishBatch(size_t records, size_t net_entries) {
  // The major-rebalance trigger runs once per batch, so a batch cannot
  // thrash partitions across the size-invariant boundary. A batch donates
  // its record count to the migration budget — a b-record batch advances
  // an in-flight migration as far as b single-tuple updates would.
  if (options_.enable_rebalancing) {
    if (options_.rebalance_mode == RebalanceMode::kIncremental) {
      StartIncrementalRebalanceIfNeeded();
      ProgressIncrementalRebalance(records);
    } else {
      MajorRebalanceIfNeeded();
    }
  }
  stats_.updates += records;
  ++stats_.batches;
  stats_.batch_net_entries += net_entries;
}

void MaintainedQuery::MinorRebalancing(SlotPartition& info, const Tuple& key, bool insert) {
  ++stats_.minor_rebalances;
  MoveKeyAcrossThreshold(info, key, insert);
}

void MaintainedQuery::MoveKeyAcrossThreshold(SlotPartition& info, const Tuple& key,
                                             bool to_light) {
  // Snapshot σ_{keys=key} R into the reused scratch; the loop mutates only
  // the light part (and the views over it).
  const Relation* base = info.partition->base();
  move_scratch_.clear();
  const auto& index = base->index(info.partition->base_index_id());
  for (const auto* link = index.FirstForKey(key); link != nullptr;
       link = Relation::Index::NextLink(link)) {
    move_scratch_.emplace_back(link->entry->key, Relation::EntryMult(link->entry));
  }
  for (const auto& [tuple, mult] : move_scratch_) {
    ApplyLightDelta(info, tuple, to_light ? mult : -mult);
  }
}

void MaintainedQuery::MajorRebalancing() {
  ++stats_.major_rebalances;
  const double th = theta();
  for (auto& slot : slots_) {
    // Static slots keep their preprocessing-time partition: the contents
    // never changed, so reclassifying against the new θ buys nothing and
    // the frozen bands stay valid (Kara et al. 2024).
    if (slot.is_static()) continue;
    for (auto& part : slot.partitions) part->StrictRepartition(th);
  }
  RecomputeThresholdViews();
}

void MaintainedQuery::RecomputeThresholdViews() {
  // All-trees do not depend on the threshold; everything else does —
  // except static triples (nothing under them moved) and threshold_static
  // subtrees inside the dynamic trees (no repartitioned light part, no
  // rebalance-affected indicator below).
  for (auto& triple : plan_.triples) {
    if (triple->is_static) continue;
    MaterializeThresholdViews(triple->light_tree.get());
    triple->RecomputeH();
  }
  for (auto& tree : plan_.trees) MaterializeThresholdViews(tree->root.get());
}

QueryStats MaintainedQuery::GetStats() const {
  QueryStats stats = stats_;
  stats.rebalance_slices = rebalance_task_.stats().slices;
  stats.rebalance_restarts = rebalance_task_.stats().restarts;
  stats.migrated_keys = rebalance_task_.stats().migrated_keys;
  stats.rebalance_pending = rebalance_task_.pending();
  stats.num_trees = plan_.trees.size();
  stats.num_triples = plan_.triples.size();
  stats.view_tuples = 0;
  for (const auto& tree : plan_.trees) stats.view_tuples += TreeStorageSize(tree->root.get());
  for (const auto& triple : plan_.triples) {
    stats.view_tuples += TreeStorageSize(triple->all_tree.get());
    stats.view_tuples += TreeStorageSize(triple->light_tree.get());
    stats.view_tuples += triple->h->size();
  }
  return stats;
}

std::string MaintainedQuery::DebugString() const {
  std::string out;
  for (const auto& tree : plan_.trees) {
    out += "tree (component " + std::to_string(tree->component) + "):\n";
    out += tree->root->ToString(query_.var_names(), 1);
  }
  for (const auto& triple : plan_.triples) {
    out += "indicator " + triple->name + " on " + triple->keys.ToString(query_.var_names()) +
           ":\n all:\n";
    out += triple->all_tree->ToString(query_.var_names(), 2);
    out += " light:\n";
    out += triple->light_tree->ToString(query_.var_names(), 2);
  }
  return out;
}

bool MaintainedQuery::CheckInvariants(std::string* error) {
  auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };

  // Database size and the size invariant.
  size_t total = 0;
  for (auto& slot : slots_) total += slot.storage->size();
  if (total != n_) return fail("tracked N does not match storage sizes");
  if (options_.enable_rebalancing && preprocessed_.load(std::memory_order_relaxed)) {
    if (!(m_ / 4 <= n_ && n_ < m_)) {
      return fail("size invariant floor(M/4) <= N < M violated: N=" + std::to_string(n_) +
                  " M=" + std::to_string(m_));
    }
  }

  // Self-join mirrors hold exactly the shared relation's contents.
  for (auto& slot : slots_) {
    if (slot.shared()) continue;
    const Relation* shared = store_->Find(slot.relation);
    if (shared->size() != slot.mirror->size()) {
      return fail("mirror " + slot.mirror->name() + " size differs from the shared relation");
    }
    for (const Relation::Entry* e = shared->First(); e != nullptr;
         e = Relation::NextLive(e)) {
      if (slot.mirror->Multiplicity(e->key) != Relation::EntryMult(e)) {
        return fail("mirror " + slot.mirror->name() + " diverged at " + e->key.ToString());
      }
    }
  }

  // Partition bands (Definition 11, loose conditions) and the union /
  // domain-partition conditions. While an incremental migration is in
  // flight the bands relax to its θ envelope: a not-yet-migrated key still
  // sits in the bands of an earlier target, a migrated or minor-checked key
  // in the bands of the current one — so every key must satisfy the light
  // band under SOME θ ≤ high_theta and the heavy band under SOME
  // θ ≥ low_theta. The classification-independent conditions (light part
  // mirrors base multiplicities and misses no tuple of a light key) stay
  // exact throughout.
  const double th = theta();
  const bool migrating = rebalance_task_.active();
  const double th_light = migrating ? rebalance_task_.high_theta() : th;
  const double th_heavy = migrating ? rebalance_task_.low_theta() : th;
  if (migrating) {
    if (options_.rebalance_mode != RebalanceMode::kIncremental) {
      return fail("migration task active outside incremental mode");
    }
    if (!(rebalance_task_.low_theta() <= th && th <= rebalance_task_.high_theta())) {
      return fail("current θ outside the migration's θ envelope");
    }
    // The queue itself: every pending item addresses a live slot/partition
    // and carries a key of that partition's key arity. (A pending key may
    // have been deleted since the snapshot — MigrateKey skips those — so
    // only structural validity is checked.)
    for (size_t p = 0; p < rebalance_task_.pending(); ++p) {
      const RebalanceTask::WorkItem& item = rebalance_task_.pending_item(p);
      if (item.slot >= slots_.size() ||
          item.info >= slots_[item.slot].infos.size()) {
        return fail("migration queue item addresses an unknown slot partition");
      }
      const SlotPartition& info = slots_[item.slot].infos[item.info];
      if (item.key.size() != info.partition->keys().size()) {
        return fail("migration queue key arity differs from the partition keys");
      }
    }
  }
  for (auto& slot : slots_) {
    // Static slots were strictly partitioned once at frozen_theta_ and
    // never touched again: their bands hold against that θ, not the live
    // one (which may have drifted arbitrarily far).
    const double slot_th_light = slot.is_static() ? frozen_theta_ : th_light;
    const double slot_th_heavy = slot.is_static() ? frozen_theta_ : th_heavy;
    for (auto& part : slot.partitions) {
      const Relation* light = part->light();
      for (const Relation::Entry* e = light->First(); e != nullptr;
           e = Relation::NextLive(e)) {
        if (slot.storage->Multiplicity(e->key) != Relation::EntryMult(e)) {
          return fail("light tuple multiplicity differs from base in " + light->name());
        }
      }
      const auto& light_index = light->index(part->light_index_id());
      for (const Relation::BucketNode* b = light_index.FirstKey(); b != nullptr;
           b = TupleMap<Relation::Bucket>::NextLive(b)) {
        if (static_cast<double>(b->value.count) >= 1.5 * slot_th_light) {
          return fail("light part degree >= 3/2·θ in " + light->name() +
                      (migrating ? " (θ envelope high)" : ""));
        }
        if (b->value.count != part->BaseCountForKey(b->key)) {
          return fail("light part misses tuples of a light key in " + light->name());
        }
      }
      // Heavy keys: at least θ/2 tuples.
      const auto& base_index = slot.storage->index(part->base_index_id());
      for (const Relation::BucketNode* b = base_index.FirstKey(); b != nullptr;
           b = TupleMap<Relation::Bucket>::NextLive(b)) {
        if (!part->KeyInLight(b->key) &&
            static_cast<double>(b->value.count) < 0.5 * slot_th_heavy) {
          return fail("heavy key with degree < θ/2 in " + slot.storage->name() +
                      (migrating ? " (θ envelope low)" : ""));
        }
      }
    }
  }

  // Views equal the join of their children; H = All ∧ ∄L.
  bool ok = true;
  std::string view_error;
  auto check_views = [&](ViewNode* root) {
    std::function<void(ViewNode*)> visit = [&](ViewNode* node) {
      for (auto& child : node->children) visit(child.get());
      if (!ok || node->kind != NodeKind::kView) return;
      // Save, recompute, compare.
      std::vector<std::pair<Tuple, Mult>> saved;
      for (const Relation::Entry* e = node->storage->First(); e != nullptr;
           e = Relation::NextLive(e)) {
        saved.emplace_back(e->key, Relation::EntryMult(e));
      }
      MaterializeNode(node);
      bool same = node->storage->size() == saved.size();
      for (const auto& [tuple, mult] : saved) {
        if (node->storage->Multiplicity(tuple) != mult) same = false;
      }
      if (!same) {
        ok = false;
        view_error = "view " + node->name + " diverged from the join of its children";
      }
    };
    visit(root);
  };
  for (auto& tree : plan_.trees) check_views(tree->root.get());
  for (auto& triple : plan_.triples) {
    check_views(triple->all_tree.get());
    check_views(triple->light_tree.get());
    if (!ok) break;
    // H check, both directions: every All key has the right H multiplicity,
    // and every H key is backed by All.
    const Relation* all = triple->all_tree->storage;
    const Relation* light = triple->light_tree->storage;
    for (const Relation::Entry* e = all->First(); e != nullptr;
         e = Relation::NextLive(e)) {
      const Mult expected =
          light->Multiplicity(e->key) == 0 ? Relation::EntryMult(e) : 0;
      if (triple->h->Multiplicity(e->key) != expected) {
        return fail("H(" + e->key.ToString() + ") inconsistent in " + triple->name);
      }
    }
    for (const Relation::Entry* e = triple->h->First(); e != nullptr;
         e = Relation::NextLive(e)) {
      if (all->Multiplicity(e->key) == 0) {
        return fail("H key " + e->key.ToString() + " outside All in " + triple->name);
      }
    }
  }
  if (!ok) return fail(view_error);
  return true;
}

}  // namespace ivme
