#include "src/core/aggregate_view.h"

#include <vector>

#include "src/common/check.h"
#include "src/enumerate/cursor.h"

namespace ivme {

GroupedAggregateEngine::GroupedAggregateEngine(ConjunctiveQuery q,
                                               std::string measure_relation,
                                               EngineOptions options)
    : query_(std::move(q)), measure_relation_(std::move(measure_relation)) {
  bool found = false;
  for (const auto& atom : query_.atoms()) {
    if (atom.relation == measure_relation_) found = true;
  }
  IVME_CHECK_MSG(found, "measure relation " << measure_relation_ << " not in the query");
  count_engine_ = std::make_unique<Engine>(query_, options);
  sum_engine_ = std::make_unique<Engine>(query_, options);
}

void GroupedAggregateEngine::LoadTuple(const std::string& relation, const Tuple& tuple,
                                       Mult count, Mult measure) {
  count_engine_->LoadTuple(relation, tuple, count);
  sum_engine_->LoadTuple(relation, tuple, relation == measure_relation_ ? measure : count);
}

void GroupedAggregateEngine::Preprocess() {
  count_engine_->Preprocess();
  sum_engine_->Preprocess();
}

bool GroupedAggregateEngine::ApplyUpdate(const std::string& relation, const Tuple& tuple,
                                         Mult count, Mult measure) {
  const Mult sum_delta = relation == measure_relation_ ? measure : count;
  // All-or-nothing: the engines validate deletes themselves; on a sum-side
  // rejection the count-side update is rolled back.
  if (!count_engine_->ApplyUpdate(relation, tuple, count)) return false;
  if (!sum_engine_->ApplyUpdate(relation, tuple, sum_delta)) {
    const bool rolled_back = count_engine_->ApplyUpdate(relation, tuple, -count);
    IVME_CHECK_MSG(rolled_back, "rollback of a just-applied update cannot fail");
    return false;
  }
  return true;
}

GroupedAggregateEngine::Iterator::Iterator(std::unique_ptr<ResultEnumerator> counts,
                                           const Engine* sum_engine)
    : counts_(std::move(counts)), sum_engine_(sum_engine) {
  const Schema& free = sum_engine_->query().free_vars();
  for (const auto& tree : sum_engine_->plan().trees) {
    tree_positions_.push_back(ProjectionPositions(free, tree->root->emit_schema));
  }
}

bool GroupedAggregateEngine::Iterator::Next(Tuple* group, Aggregates* aggregates) {
  Mult count = 0;
  if (!counts_->Next(group, &count)) return false;
  aggregates->count = count;
  // Per-group sum from the sum engine via stateless tree lookups: within a
  // connected component the trees' contributions add (Proposition 20);
  // across components they multiply (Cartesian product).
  const auto& plan = sum_engine_->plan();
  Mult sum = 1;
  for (int c = 0; c < plan.num_components; ++c) {
    Mult component_sum = 0;
    for (size_t i = 0; i < plan.trees.size(); ++i) {
      const auto& tree = plan.trees[i];
      if (tree->component != c) continue;
      scratch_.AssignProjection(*group, tree_positions_[i]);
      component_sum += LookupTree(tree->root.get(), Tuple{}, scratch_);
    }
    sum *= component_sum;
  }
  aggregates->sum = sum;
  return true;
}

GroupedAggregateEngine::Iterator GroupedAggregateEngine::Enumerate() const {
  return Iterator(count_engine_->Enumerate(), sum_engine_.get());
}

}  // namespace ivme
