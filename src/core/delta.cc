#include "src/core/delta.h"

#include "src/common/check.h"
#include "src/common/counters.h"
#include "src/storage/tuple_map.h"

namespace ivme {

DeltaVec ApplyDeltaAtNode(ViewNode* node, int child_idx, const DeltaVec& delta) {
  IVME_CHECK(node->kind == NodeKind::kView);
  const DeltaPlan& plan = node->delta_plans[static_cast<size_t>(child_idx)];
  const size_t num_probes = plan.probe_children.size();

  // Hash-based accumulator (insertion-ordered); one pooled node per distinct
  // output tuple instead of a red-black tree node + comparison chain.
  TupleMap<Mult> acc;
  std::vector<const Tuple*> probe_rows(num_probes, nullptr);
  Tuple row;   // scratch: assembled output tuple
  Tuple key;   // scratch: delta tuple restricted to the join key K
  row.Reserve(node->schema.size());

  // Per-level cursor state for the iterative nested-loop probe.
  std::vector<const Relation::Index*> probe_indexes(num_probes, nullptr);
  for (size_t pi = 0; pi < num_probes; ++pi) {
    const ViewNode* sib = node->children[static_cast<size_t>(plan.probe_children[pi])].get();
    probe_indexes[pi] = &sib->storage->index(plan.probe_index_ids[pi]);
  }
  std::vector<const Relation::IndexLink*> links(num_probes, nullptr);
  std::vector<Mult> mults(num_probes + 1, 0);

  auto emit_row = [&](const Tuple& dtuple, Mult mult) {
    ++LocalCounters().delta_steps;
    row.Clear();
    for (const auto& src : plan.row_sources) {
      if (src.child < 0) {
        row.PushBack(dtuple[static_cast<size_t>(src.pos)]);
      } else {
        row.PushBack((*probe_rows[static_cast<size_t>(src.child)])[static_cast<size_t>(src.pos)]);
      }
    }
    acc.Emplace(row).first->value += mult;
  };

  for (const auto& [dtuple, dmult] : delta) {
    if (dmult == 0) continue;
    key.AssignProjection(dtuple, plan.key_from_delta);
    // Indicator gates. The key's hash is computed once and reused across
    // every gate lookup and probe below.
    bool gated_out = false;
    for (int gi : plan.gate_children) {
      const ViewNode* gate = node->children[static_cast<size_t>(gi)].get();
      if (gate->storage->Multiplicity(key) == 0) {
        gated_out = true;
        break;
      }
    }
    if (gated_out) continue;
    if (num_probes == 0) {
      emit_row(dtuple, dmult);
      continue;
    }
    // Nested index probes over the non-indicator siblings, as an explicit
    // odometer: level pi scans σ_{K=key} of sibling pi; mults[pi] carries
    // the multiplicity product of the levels above it.
    mults[0] = dmult;
    size_t pi = 0;
    links[0] = probe_indexes[0]->FirstForKey(key);
    while (true) {
      const Relation::IndexLink* link = links[pi];
      if (link == nullptr) {
        if (pi == 0) break;
        --pi;
        links[pi] = Relation::Index::NextLink(links[pi]);
        continue;
      }
      ++LocalCounters().delta_steps;
      probe_rows[pi] = &link->entry->key;
      mults[pi + 1] = mults[pi] * Relation::EntryMult(link->entry);
      if (pi + 1 == num_probes) {
        emit_row(dtuple, mults[pi + 1]);
        links[pi] = Relation::Index::NextLink(link);
      } else {
        ++pi;
        links[pi] = probe_indexes[pi]->FirstForKey(key);
      }
    }
  }

  DeltaVec result;
  result.reserve(acc.size());
  for (const auto* n = acc.First(); n != nullptr; n = n->next) {
    if (n->value == 0) continue;
    node->storage->Apply(n->key, n->value);
    result.emplace_back(n->key, n->value);
  }
  return result;
}

void PropagateUp(ViewNode* child, DeltaVec delta) {
  ViewNode* node = child->parent;
  while (node != nullptr && !delta.empty()) {
    const int idx = node->ChildIndex(child);
    IVME_CHECK(idx >= 0);
    delta = ApplyDeltaAtNode(node, idx, delta);
    child = node;
    node = node->parent;
  }
}

}  // namespace ivme
