#include "src/core/delta.h"

#include <functional>
#include <map>

#include "src/common/check.h"
#include "src/common/counters.h"

namespace ivme {

DeltaVec ApplyDeltaAtNode(ViewNode* node, int child_idx, const DeltaVec& delta) {
  IVME_CHECK(node->kind == NodeKind::kView);
  const DeltaPlan& plan = node->delta_plans[static_cast<size_t>(child_idx)];

  std::map<Tuple, Mult> acc;
  std::vector<const Tuple*> probe_rows(plan.probe_children.size(), nullptr);
  Tuple row;
  row.Reserve(node->schema.size());

  auto emit_row = [&](const Tuple& dtuple, Mult mult) {
    ++GlobalCounters().delta_steps;
    row.Clear();
    for (const auto& src : plan.row_sources) {
      if (src.child < 0) {
        row.PushBack(dtuple[static_cast<size_t>(src.pos)]);
      } else {
        row.PushBack((*probe_rows[static_cast<size_t>(src.child)])[static_cast<size_t>(src.pos)]);
      }
    }
    acc[row] += mult;
  };

  for (const auto& [dtuple, dmult] : delta) {
    if (dmult == 0) continue;
    const Tuple key = ProjectTuple(dtuple, plan.key_from_delta);
    // Indicator gates.
    bool gated_out = false;
    for (int gi : plan.gate_children) {
      const ViewNode* gate = node->children[static_cast<size_t>(gi)].get();
      if (gate->storage->Multiplicity(key) == 0) {
        gated_out = true;
        break;
      }
    }
    if (gated_out) continue;
    // Nested index probes over the non-indicator siblings.
    std::function<void(size_t, Mult)> probe = [&](size_t pi, Mult mult) {
      if (pi == plan.probe_children.size()) {
        emit_row(dtuple, mult);
        return;
      }
      const ViewNode* sib = node->children[static_cast<size_t>(plan.probe_children[pi])].get();
      const auto& index = sib->storage->index(plan.probe_index_ids[pi]);
      for (const auto* link = index.FirstForKey(key); link != nullptr; link = link->next) {
        ++GlobalCounters().delta_steps;
        probe_rows[pi] = &link->entry->key;
        probe(pi + 1, mult * link->entry->value.mult);
      }
    };
    probe(0, dmult);
  }

  DeltaVec result;
  result.reserve(acc.size());
  for (auto& [tuple, mult] : acc) {
    if (mult == 0) continue;
    node->storage->Apply(tuple, mult);
    result.emplace_back(tuple, mult);
  }
  return result;
}

void PropagateUp(ViewNode* child, DeltaVec delta) {
  ViewNode* node = child->parent;
  while (node != nullptr && !delta.empty()) {
    const int idx = node->ChildIndex(child);
    IVME_CHECK(idx >= 0);
    delta = ApplyDeltaAtNode(node, idx, delta);
    child = node;
    node = node->parent;
  }
}

}  // namespace ivme
