// SpaceSaving heavy-hitter sketch (Metwally et al.) over root values: a
// fixed number of counters tracking the approximately most frequent keys of
// a stream. An item with true frequency f is reported with a count in
// [f, f + error], and any item whose frequency exceeds total/capacity is
// guaranteed to be tracked — exactly the guarantee the skew router needs to
// find root values hot enough to overflow (their degree dwarfs total/K, far
// above total/capacity for capacity > K).
//
// The sketch is maintained at consolidation time on the writer thread; no
// concurrency. Capacity is small (tens), so the min search is a linear scan
// over a dense array — no heap, no allocation after construction.
#ifndef IVME_CORE_HEAVY_HITTERS_H_
#define IVME_CORE_HEAVY_HITTERS_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/data/value.h"

namespace ivme {

class SpaceSavingSketch {
 public:
  struct Entry {
    Value value = 0;
    uint64_t count = 0;  ///< upper bound on the true frequency
    uint64_t error = 0;  ///< count - error lower-bounds the true frequency
  };

  explicit SpaceSavingSketch(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {
    entries_.reserve(capacity_);
    index_.reserve(capacity_ * 2);
  }

  /// Observes `v` with weight `w`.
  void Add(Value v, uint64_t w = 1) {
    total_ += w;
    const auto it = index_.find(v);
    if (it != index_.end()) {
      entries_[it->second].count += w;
      return;
    }
    if (entries_.size() < capacity_) {
      index_.emplace(v, entries_.size());
      entries_.push_back(Entry{v, w, 0});
      return;
    }
    // Evict the minimum counter: the newcomer inherits its count as error.
    size_t min_i = 0;
    for (size_t i = 1; i < entries_.size(); ++i) {
      if (entries_[i].count < entries_[min_i].count) min_i = i;
    }
    Entry& slot = entries_[min_i];
    index_.erase(slot.value);
    index_.emplace(v, min_i);
    slot.error = slot.count;
    slot.count += w;
    slot.value = v;
  }

  /// Tracked entries, unordered. Counts upper-bound true frequencies.
  const std::vector<Entry>& entries() const { return entries_; }

  /// Total weight observed.
  uint64_t total() const { return total_; }

  /// Lower bound on the true frequency of `v` (0 when untracked).
  uint64_t GuaranteedCount(Value v) const {
    const auto it = index_.find(v);
    if (it == index_.end()) return 0;
    const Entry& e = entries_[it->second];
    return e.count - e.error;
  }

  void Clear() {
    entries_.clear();
    index_.clear();
    total_ = 0;
  }

 private:
  size_t capacity_;
  uint64_t total_ = 0;
  std::vector<Entry> entries_;
  std::unordered_map<Value, size_t> index_;
};

}  // namespace ivme

#endif  // IVME_CORE_HEAVY_HITTERS_H_
