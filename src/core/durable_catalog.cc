#include "src/core/durable_catalog.h"

#include <errno.h>
#include <string.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

#include "src/common/check.h"
#include "src/storage/serial.h"

namespace ivme {
namespace {

Status EnsureDir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) return Status::Ok();
  return Status::Error("cannot create directory " + dir + ": " + ::strerror(errno));
}

// --- WAL payload codecs. Every payload is versionless: the frame type and
// the snapshot format version gate compatibility, and a decode failure on a
// CRC-valid record is corruption, not a torn tail.

std::string EncodeBatchPayload(const UpdateBatch& net) {
  ByteSink sink;
  sink.PutU32(static_cast<uint32_t>(net.size()));
  for (const Update& u : net) {
    sink.PutString(u.relation);
    sink.PutTuple(u.tuple);
    sink.PutI64(u.mult);
  }
  return sink.TakeBytes();
}

Status DecodeBatchPayload(const std::string& payload, UpdateBatch* out) {
  out->clear();
  ByteSource src(payload.data(), payload.size());
  uint32_t count = 0;
  if (!src.GetU32(&count)) return Status::Error("batch record: bad header");
  out->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    Update u;
    int64_t mult = 0;
    if (!src.GetString(&u.relation) || !src.GetTuple(&u.tuple) || !src.GetI64(&mult)) {
      return Status::Error("batch record: truncated entry " + std::to_string(i));
    }
    u.mult = mult;
    out->push_back(std::move(u));
  }
  if (src.remaining() != 0) return Status::Error("batch record: trailing bytes");
  return Status::Ok();
}

std::string EncodeLoadPayload(const std::string& relation,
                              const std::vector<std::pair<Tuple, Mult>>& tuples) {
  ByteSink sink;
  sink.PutString(relation);
  sink.PutU64(tuples.size());
  for (const auto& [tuple, mult] : tuples) {
    sink.PutTuple(tuple);
    sink.PutI64(mult);
  }
  return sink.TakeBytes();
}

Status DecodeLoadPayload(const std::string& payload, std::string* relation,
                         std::vector<std::pair<Tuple, Mult>>* tuples) {
  tuples->clear();
  ByteSource src(payload.data(), payload.size());
  uint64_t count = 0;
  if (!src.GetString(relation) || !src.GetU64(&count)) {
    return Status::Error("load record: bad header");
  }
  for (uint64_t i = 0; i < count; ++i) {
    Tuple tuple;
    int64_t mult = 0;
    if (!src.GetTuple(&tuple) || !src.GetI64(&mult)) {
      return Status::Error("load record: truncated entry " + std::to_string(i));
    }
    tuples->emplace_back(std::move(tuple), mult);
  }
  if (src.remaining() != 0) return Status::Error("load record: trailing bytes");
  return Status::Ok();
}

std::string EncodeQuerySpecPayload(const SnapshotQuerySpec& spec) {
  ByteSink sink;
  sink.PutString(spec.name);
  sink.PutString(spec.text);
  sink.PutDouble(spec.epsilon);
  sink.PutU8(spec.mode);
  sink.PutU8(spec.enable_rebalancing);
  sink.PutU8(spec.rebalance_mode);
  sink.PutDouble(spec.rebalance_budget);
  return sink.TakeBytes();
}

Status DecodeQuerySpecPayload(const std::string& payload, SnapshotQuerySpec* spec) {
  ByteSource src(payload.data(), payload.size());
  if (!src.GetString(&spec->name) || !src.GetString(&spec->text) ||
      !src.GetDouble(&spec->epsilon) || !src.GetU8(&spec->mode) ||
      !src.GetU8(&spec->enable_rebalancing) || !src.GetU8(&spec->rebalance_mode) ||
      !src.GetDouble(&spec->rebalance_budget) || src.remaining() != 0) {
    return Status::Error("register record: malformed query spec");
  }
  return Status::Ok();
}

SnapshotQuerySpec SpecFromQuery(const MaintainedQuery& query) {
  const EngineOptions& options = query.options();
  SnapshotQuerySpec spec;
  spec.name = query.name();
  spec.text = query.query().ToString();
  spec.epsilon = options.epsilon;
  spec.mode = options.mode == EvalMode::kStatic ? 0 : 1;
  spec.enable_rebalancing = options.enable_rebalancing ? 1 : 0;
  spec.rebalance_mode = options.rebalance_mode == RebalanceMode::kIncremental ? 1 : 0;
  spec.rebalance_budget = options.rebalance_budget;
  return spec;
}

std::string EncodeDictionaryPayload(const StringDictionary& dict, uint64_t first_id,
                                    uint64_t end_id) {
  ByteSink sink;
  sink.PutU32(static_cast<uint32_t>(first_id));
  sink.PutU32(static_cast<uint32_t>(end_id - first_id));
  for (uint64_t id = first_id; id < end_id; ++id) {
    sink.PutString(dict.String(static_cast<uint32_t>(id)));
  }
  return sink.TakeBytes();
}

Status DecodeDictionaryPayload(const std::string& payload, uint32_t* first_id,
                               std::vector<std::string>* strings) {
  strings->clear();
  ByteSource src(payload.data(), payload.size());
  uint32_t count = 0;
  if (!src.GetU32(first_id) || !src.GetU32(&count)) {
    return Status::Error("dictionary record: bad header");
  }
  strings->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    std::string s;
    if (!src.GetString(&s)) {
      return Status::Error("dictionary record: truncated string " + std::to_string(i));
    }
    strings->push_back(std::move(s));
  }
  if (src.remaining() != 0) return Status::Error("dictionary record: trailing bytes");
  return Status::Ok();
}

// Re-interns `strings` as ids [first_id, first_id + n). Ids are assigned
// densely in intern order, so replaying the deltas in LSN order onto a
// snapshot's full dictionary reproduces the exact id assignment; any
// mismatch means the dictionary history diverged from the data it tags.
Status ReinternStrings(StringDictionary* dict, uint32_t first_id,
                       const std::vector<std::string>& strings) {
  for (size_t i = 0; i < strings.size(); ++i) {
    const Value v = dict->Intern(strings[i]);
    const uint32_t expected = first_id + static_cast<uint32_t>(i);
    if (DictIdOf(v) != expected) {
      return Status::Error("dictionary id mismatch: \"" + strings[i] + "\" interned as id " +
                           std::to_string(DictIdOf(v)) + ", expected " +
                           std::to_string(expected));
    }
  }
  return Status::Ok();
}

EngineOptions OptionsFromSpec(const SnapshotQuerySpec& spec) {
  EngineOptions options;
  options.epsilon = spec.epsilon;
  options.mode = spec.mode == 0 ? EvalMode::kStatic : EvalMode::kDynamic;
  options.enable_rebalancing = spec.enable_rebalancing != 0;
  options.rebalance_mode =
      spec.rebalance_mode == 1 ? RebalanceMode::kIncremental : RebalanceMode::kAmortized;
  options.rebalance_budget = spec.rebalance_budget;
  return options;
}

}  // namespace

DurableCatalog::DurableCatalog(ShardedCatalogOptions catalog_options,
                               DurabilityOptions durability)
    : catalog_options_(catalog_options),
      durability_(durability),
      injector_(durability.injector != nullptr ? durability.injector : &FaultInjector::Global()),
      catalog_(std::make_unique<ShardedCatalog>(catalog_options)) {}

DurableCatalog::~DurableCatalog() {
  WaitForCheckpoint();
  if (wal_.is_open() && !injector_->crashed()) wal_.Sync();
  wal_.Close();
}

bool DurableCatalog::dead() const { return injector_->crashed(); }

// --- recovery -------------------------------------------------------------

std::unique_ptr<DurableCatalog> DurableCatalog::Open(const std::string& dir,
                                                     ShardedCatalogOptions catalog_options,
                                                     DurabilityOptions durability,
                                                     Status* status) {
  auto catalog =
      std::unique_ptr<DurableCatalog>(new DurableCatalog(catalog_options, durability));
  Status result = catalog->Recover(dir);
  if (status != nullptr) *status = result;
  if (!result.ok()) return nullptr;
  return catalog;
}

Status DurableCatalog::Recover(const std::string& dir) {
  Status status = EnsureDir(dir);
  if (!status.ok()) return status;

  // Newest valid snapshot wins; a snapshot that fails its CRC or cannot be
  // rebuilt (unparsable query, arity conflict) falls back to the one before
  // it — its WAL segments are still on disk, so no durable state is lost.
  std::vector<uint64_t> snapshot_lsns;
  status = ListSnapshots(dir, &snapshot_lsns);
  if (!status.ok()) return status;
  uint64_t snapshot_lsn = 0;
  Status snapshot_error;
  bool loaded = false;
  for (size_t i = snapshot_lsns.size(); i-- > 0 && !loaded;) {
    SnapshotData snapshot;
    status = ReadSnapshotFile(dir + "/" + SnapshotFileName(snapshot_lsns[i]), &snapshot);
    if (status.ok()) status = LoadSnapshot(snapshot);
    if (status.ok()) {
      snapshot_lsn = snapshot.lsn;
      loaded = true;
    } else {
      if (snapshot_error.ok()) snapshot_error = status;  // remember the newest defect
      catalog_ = std::make_unique<ShardedCatalog>(catalog_options_);
    }
  }
  if (!loaded && !snapshot_lsns.empty()) {
    return Status::Error("no usable snapshot in " + dir + ": " + snapshot_error.message());
  }
  checkpoint_lsn_ = snapshot_lsn;

  // Replay the WAL tail in LSN order through the normal apply paths.
  // Records at or below the snapshot LSN are already folded into it (their
  // segments survive when a checkpoint crashed before deleting them); the
  // first torn or corrupt frame ends the durable prefix — truncate it and
  // drop any later segment, which cannot be trusted past a tear.
  std::vector<std::pair<uint64_t, std::string>> segments;
  status = ListWalSegments(dir, &segments);
  if (!status.ok()) return status;
  uint64_t last_lsn = snapshot_lsn;
  for (size_t i = 0; i < segments.size(); ++i) {
    const std::string path = dir + "/" + segments[i].second;
    WalScanResult scan;
    status = ScanWalSegment(path, &scan);
    if (!status.ok()) return status;
    for (const WalRecord& record : scan.records) {
      if (record.lsn <= last_lsn) continue;
      status = ApplyWalRecord(record);
      if (!status.ok()) {
        return Status::Error("WAL replay failed at LSN " + std::to_string(record.lsn) + ": " +
                             status.message());
      }
      last_lsn = record.lsn;
      ++replayed_records_;
    }
    if (scan.torn) {
      recovered_torn_tail_ = true;
      status = TruncateWalSegment(path, scan.valid_bytes);
      if (!status.ok()) return status;
      for (size_t j = i + 1; j < segments.size(); ++j) {
        ::unlink((dir + "/" + segments[j].second).c_str());
      }
      break;
    }
  }

  next_lsn_ = last_lsn + 1;
  // Every id interned so far came from the snapshot or a replayed delta —
  // both still on disk — so only ids beyond this watermark need logging.
  synced_dict_size_ = catalog_->dictionary()->size();
  dir_ = dir;
  status = wal_.Open(dir_ + "/" + WalSegmentFileName(next_lsn_), durability_.fsync,
                     durability_.fsync_interval, injector_);
  if (!status.ok()) {
    dir_.clear();
    return status;
  }

  if (catalog_->num_queries() > 0 && catalog_->shard(0).preprocessed()) {
    std::string error;
    if (!catalog_->CheckInvariants(&error)) {
      return Status::Error("recovered state violates invariants: " + error);
    }
  }
  return Status::Ok();
}

Status DurableCatalog::LoadSnapshot(const SnapshotData& snapshot) {
  if (snapshot.num_shards == 0) return Status::Error("snapshot has zero shards");
  ShardedCatalogOptions options = catalog_options_;
  options.num_shards = static_cast<size_t>(snapshot.num_shards);
  auto catalog = std::make_unique<ShardedCatalog>(options);
  // Dictionary first: the relation loads below carry tagged ids, and the
  // write gate rejects any id that is not yet interned.
  Status interned = ReinternStrings(catalog->dictionary().get(), 0, snapshot.dictionary);
  if (!interned.ok()) return interned;
  for (const SnapshotQuerySpec& spec : snapshot.queries) {
    std::optional<ConjunctiveQuery> query = ConjunctiveQuery::Parse(spec.text);
    if (!query.has_value()) {
      return Status::Error("snapshot query " + spec.name + " does not parse: " + spec.text);
    }
    std::string why;
    if (!catalog->RegisterQuery(spec.name, *query, OptionsFromSpec(spec), &why)) {
      return Status::Error("snapshot query " + spec.name + " rejected: " + why);
    }
  }
  for (const SnapshotRelation& relation : snapshot.relations) {
    Status status = catalog->TryLoad(relation.name, relation.tuples);
    if (!status.ok()) {
      // A relation every reader of which was dropped before the snapshot
      // has no schema to rebuild against; its contents are dropped exactly
      // like the live Reshard path drops them.
      if (status.message().find("unknown relation") != std::string::npos) continue;
      return Status::Error("snapshot relation " + relation.name + ": " + status.message());
    }
  }
  if (snapshot.live) catalog->Preprocess();
  catalog_ = std::move(catalog);
  return Status::Ok();
}

Status DurableCatalog::ApplyWalRecord(const WalRecord& record) {
  switch (record.type) {
    case WalRecordType::kBatch: {
      if (!catalog_->shard(0).preprocessed()) {
        return Status::Error("batch record before the preprocess marker");
      }
      UpdateBatch batch;
      Status status = DecodeBatchPayload(record.payload, &batch);
      if (!status.ok()) return status;
      catalog_->ApplyBatch(batch);  // rejections are deterministic re-rejections
      return Status::Ok();
    }
    case WalRecordType::kLoad: {
      std::string relation;
      std::vector<std::pair<Tuple, Mult>> tuples;
      Status status = DecodeLoadPayload(record.payload, &relation, &tuples);
      if (!status.ok()) return status;
      return catalog_->TryLoad(relation, tuples);
    }
    case WalRecordType::kPreprocess: {
      if (catalog_->shard(0).preprocessed()) {
        return Status::Error("duplicate preprocess marker");
      }
      catalog_->Preprocess();
      return Status::Ok();
    }
    case WalRecordType::kRegisterQuery: {
      SnapshotQuerySpec spec;
      Status status = DecodeQuerySpecPayload(record.payload, &spec);
      if (!status.ok()) return status;
      std::optional<ConjunctiveQuery> query = ConjunctiveQuery::Parse(spec.text);
      if (!query.has_value()) {
        return Status::Error("register record for " + spec.name + " does not parse");
      }
      std::string why;
      if (!catalog_->RegisterQuery(spec.name, *query, OptionsFromSpec(spec), &why)) {
        return Status::Error("register record for " + spec.name + " rejected: " + why);
      }
      return Status::Ok();
    }
    case WalRecordType::kDropQuery: {
      ByteSource src(record.payload.data(), record.payload.size());
      std::string name;
      if (!src.GetString(&name) || src.remaining() != 0) {
        return Status::Error("drop record: malformed payload");
      }
      if (!catalog_->DropQuery(name)) {
        return Status::Error("drop record for unknown query " + name);
      }
      return Status::Ok();
    }
    case WalRecordType::kReshard: {
      ByteSource src(record.payload.data(), record.payload.size());
      uint64_t num_shards = 0;
      if (!src.GetU64(&num_shards) || src.remaining() != 0 || num_shards == 0) {
        return Status::Error("reshard record: malformed payload");
      }
      return RebuildAt(static_cast<size_t>(num_shards), nullptr);
    }
    case WalRecordType::kDictionary: {
      uint32_t first_id = 0;
      std::vector<std::string> strings;
      Status status = DecodeDictionaryPayload(record.payload, &first_id, &strings);
      if (!status.ok()) return status;
      return ReinternStrings(catalog_->dictionary().get(), first_id, strings);
    }
  }
  return Status::Error("unknown WAL record type " +
                       std::to_string(static_cast<int>(record.type)));
}

// --- attach / checkpoint --------------------------------------------------

Status DurableCatalog::AttachDir(const std::string& dir) {
  if (durable()) return Status::Error("catalog is already durable at " + dir_);
  if (dead()) return Status::Error("catalog crashed (injected fault)");
  Status status = EnsureDir(dir);
  if (!status.ok()) return status;
  std::vector<uint64_t> snapshots;
  std::vector<std::pair<uint64_t, std::string>> segments;
  status = ListSnapshots(dir, &snapshots);
  if (status.ok()) status = ListWalSegments(dir, &segments);
  if (!status.ok()) return status;
  if (!snapshots.empty() || !segments.empty()) {
    return Status::Error(dir + " already holds a durable catalog; use `open` to recover it");
  }
  status = wal_.Open(dir + "/" + WalSegmentFileName(next_lsn_), durability_.fsync,
                     durability_.fsync_interval, injector_);
  if (!status.ok()) return status;
  dir_ = dir;
  status = Checkpoint();
  if (!status.ok()) {
    // Leave the catalog usable in-memory; durability never engaged.
    wal_.Close();
    dir_.clear();
    return status;
  }
  return Status::Ok();
}

SnapshotData DurableCatalog::CaptureSnapshot() const {
  SnapshotData snapshot;
  snapshot.lsn = next_lsn_ - 1;
  snapshot.num_shards = catalog_->num_shards();
  snapshot.live = catalog_->shard(0).preprocessed();
  const StringDictionary& dict = *catalog_->dictionary();
  const size_t dict_size = dict.size();
  snapshot.dictionary.reserve(dict_size);
  for (size_t id = 0; id < dict_size; ++id) {
    snapshot.dictionary.push_back(dict.String(static_cast<uint32_t>(id)));
  }
  for (const std::string& name : catalog_->QueryNames()) {
    snapshot.queries.push_back(SpecFromQuery(*catalog_->FindQuery(name)));
  }
  const RelationStore& store = catalog_->shard(0).store();
  for (const std::string& relation : store.RelationNames()) {
    SnapshotRelation dump;
    dump.name = relation;
    dump.arity = static_cast<uint32_t>(store.Find(relation)->schema().size());
    dump.tuples = catalog_->DumpRelation(relation);
    snapshot.relations.push_back(std::move(dump));
  }
  return snapshot;
}

Status DurableCatalog::Checkpoint() {
  if (!durable()) return Status::Error("catalog has no directory; `save <dir>` first");
  if (dead()) return Status::Error("catalog crashed (injected fault)");
  Status status = WaitForCheckpoint();
  if (!status.ok()) return status;

  // Synchronous part: capture a consistent cut, make the WAL prefix it
  // covers durable, and rotate to a fresh segment so the old ones become
  // immutable inputs of the background job.
  SnapshotData snapshot = CaptureSnapshot();
  status = wal_.Sync();
  if (!status.ok()) return status;
  const std::string new_segment = WalSegmentFileName(next_lsn_);
  std::vector<std::pair<uint64_t, std::string>> segments;
  status = ListWalSegments(dir_, &segments);
  if (!status.ok()) return status;
  std::vector<std::string> obsolete;
  for (const auto& [start_lsn, name] : segments) {
    if (name != new_segment) obsolete.push_back(dir_ + "/" + name);
  }
  rotated_records_ += wal_.stats().records_appended;
  rotated_bytes_ += wal_.stats().bytes_appended;
  rotated_syncs_ += wal_.stats().syncs;
  wal_.Close();
  status = wal_.Open(dir_ + "/" + new_segment, durability_.fsync, durability_.fsync_interval,
                     injector_);
  if (!status.ok()) return status;

  pending_checkpoint_lsn_ = snapshot.lsn;
  if (durability_.background_checkpoint) {
    checkpoint_thread_ = std::thread(
        [this, snapshot = std::move(snapshot), obsolete = std::move(obsolete)]() mutable {
          Status result = CheckpointFiles(dir_, snapshot, std::move(obsolete),
                                          durability_.retain_snapshots, injector_);
          const std::lock_guard<std::mutex> lock(checkpoint_mu_);
          checkpoint_status_ = result;
        });
    return Status::Ok();
  }
  status = CheckpointFiles(dir_, snapshot, std::move(obsolete), durability_.retain_snapshots,
                           injector_);
  if (!status.ok()) return status;
  ++checkpoints_taken_;
  checkpoint_lsn_ = pending_checkpoint_lsn_;
  return Status::Ok();
}

Status DurableCatalog::CheckpointFiles(const std::string& dir, const SnapshotData& snapshot,
                                       std::vector<std::string> obsolete_segments, size_t retain,
                                       FaultInjector* injector) {
  Status status = WriteSnapshotFile(dir, snapshot, injector);
  if (!status.ok()) return status;
  // The snapshot is durable; everything from here is cleanup that recovery
  // tolerates in any partial state (replay skips records ≤ snapshot LSN).
  if (injector->ShouldCrash("checkpoint:before_wal_delete")) {
    return Status::Error("injected crash at checkpoint:before_wal_delete");
  }
  bool first = true;
  for (const std::string& path : obsolete_segments) {
    ::unlink(path.c_str());
    if (first && injector->ShouldCrash("checkpoint:mid_wal_delete")) {
      return Status::Error("injected crash at checkpoint:mid_wal_delete");
    }
    first = false;
  }
  return RetainSnapshots(dir, retain < 1 ? 1 : retain, injector);
}

Status DurableCatalog::WaitForCheckpoint() {
  if (!checkpoint_thread_.joinable()) return Status::Ok();
  checkpoint_thread_.join();
  Status status;
  {
    const std::lock_guard<std::mutex> lock(checkpoint_mu_);
    status = checkpoint_status_;
  }
  if (status.ok()) {
    ++checkpoints_taken_;
    checkpoint_lsn_ = pending_checkpoint_lsn_;
  }
  return status;
}

// --- logged control plane -------------------------------------------------

Status DurableCatalog::AppendRecord(WalRecordType type, const std::string& payload) {
  WalRecord record;
  record.lsn = next_lsn_;
  record.type = type;
  record.payload = payload;
  Status status = wal_.Append(record);
  if (!status.ok()) return status;
  ++next_lsn_;
  return Status::Ok();
}

Status DurableCatalog::SyncDictionary() {
  const StringDictionary& dict = *catalog_->dictionary();
  const uint64_t size = dict.size();
  if (size <= synced_dict_size_) return Status::Ok();
  const Status status = AppendRecord(
      WalRecordType::kDictionary, EncodeDictionaryPayload(dict, synced_dict_size_, size));
  if (!status.ok()) return status;
  synced_dict_size_ = size;
  return Status::Ok();
}

bool DurableCatalog::RegisterQuery(const std::string& name, const ConjunctiveQuery& q,
                                   EngineOptions options, std::string* why) {
  if (dead()) {
    if (why != nullptr) *why = "catalog crashed (injected fault)";
    return false;
  }
  // Apply first, log on success: the inner registration is the validator,
  // and a crash between the two loses only this not-yet-acknowledged DDL.
  if (!catalog_->RegisterQuery(name, q, options, why)) return false;
  if (durable()) {
    SnapshotQuerySpec spec = SpecFromQuery(*catalog_->FindQuery(name));
    const Status status = AppendRecord(WalRecordType::kRegisterQuery,
                                       EncodeQuerySpecPayload(spec));
    IVME_CHECK_MSG(status.ok() || injector_->crashed(), status.message());
  }
  return true;
}

bool DurableCatalog::DropQuery(const std::string& name) {
  if (dead()) return false;
  if (!catalog_->DropQuery(name)) return false;
  if (durable()) {
    ByteSink sink;
    sink.PutString(name);
    const Status status = AppendRecord(WalRecordType::kDropQuery, sink.TakeBytes());
    IVME_CHECK_MSG(status.ok() || injector_->crashed(), status.message());
  }
  return true;
}

Status DurableCatalog::Reshard(size_t num_shards, std::vector<std::string>* dropped) {
  if (num_shards == 0) return Status::Error("shard count must be positive");
  if (dead()) return Status::Error("catalog crashed (injected fault)");
  Status status = WaitForCheckpoint();
  if (!status.ok()) return status;
  if (num_shards == catalog_->num_shards()) return Status::Ok();
  status = RebuildAt(num_shards, dropped);
  if (!status.ok()) return status;
  if (durable()) {
    ByteSink sink;
    sink.PutU64(num_shards);
    status = AppendRecord(WalRecordType::kReshard, sink.TakeBytes());
    if (!status.ok() && !injector_->crashed()) return status;
  }
  return Status::Ok();
}

Status DurableCatalog::RebuildAt(size_t num_shards, std::vector<std::string>* dropped) {
  // Same dump/rebuild/reload protocol as the shell's `shards N`: the
  // logical state is K-independent, so the rebuilt catalog re-registers
  // every query (registration order preserves routing agreement) and
  // re-loads every relation that still has a reader.
  std::vector<SnapshotQuerySpec> specs;
  std::vector<ConjunctiveQuery> queries;
  for (const std::string& name : catalog_->QueryNames()) {
    const MaintainedQuery* query = catalog_->FindQuery(name);
    specs.push_back(SpecFromQuery(*query));
    queries.push_back(query->query());
  }
  const bool live = catalog_->num_queries() > 0 && catalog_->shard(0).preprocessed();

  ShardedCatalogOptions options = catalog_options_;
  options.num_shards = num_shards;
  auto rebuilt = std::make_unique<ShardedCatalog>(options);
  // The dumped tuples carry the old catalog's dictionary ids; the rebuilt
  // catalog must resolve them identically.
  rebuilt->AdoptDictionary(catalog_->dictionary());
  for (size_t i = 0; i < specs.size(); ++i) {
    std::string why;
    if (!rebuilt->RegisterQuery(specs[i].name, queries[i], OptionsFromSpec(specs[i]), &why)) {
      return Status::Error("cannot reshard to " + std::to_string(num_shards) + " shards: query " +
                           specs[i].name + ": " + why);
    }
  }
  const RelationStore& store = catalog_->shard(0).store();
  for (const std::string& relation : store.RelationNames()) {
    std::vector<std::pair<Tuple, Mult>> tuples;
    Status status = catalog_->TryDumpRelation(relation, &tuples);
    if (!status.ok()) return status;
    status = rebuilt->TryLoad(relation, tuples);
    if (!status.ok()) {
      if (status.message().find("unknown relation") != std::string::npos) {
        if (dropped != nullptr) dropped->push_back(relation);
        continue;
      }
      return status;
    }
  }
  if (live) rebuilt->Preprocess();
  catalog_ = std::move(rebuilt);
  return Status::Ok();
}

// --- logged data plane ----------------------------------------------------

Status DurableCatalog::TryLoad(const std::string& relation,
                               const std::vector<std::pair<Tuple, Mult>>& tuples) {
  if (dead()) return Status::Error("catalog crashed (injected fault)");
  Status status = catalog_->TryLoad(relation, tuples);
  if (!status.ok()) return status;
  if (durable() && !tuples.empty()) {
    status = SyncDictionary();
    if (status.ok()) {
      status = AppendRecord(WalRecordType::kLoad, EncodeLoadPayload(relation, tuples));
    }
    if (!status.ok() && !injector_->crashed()) return status;
  }
  return Status::Ok();
}

Status DurableCatalog::TryLoadTuple(const std::string& relation, const Tuple& tuple, Mult mult) {
  return TryLoad(relation, {{tuple, mult}});
}

void DurableCatalog::Preprocess() {
  if (dead()) return;
  if (durable()) {
    // WAL-first: a crash after the append replays Preprocess on recovery,
    // so the durable history never shows updates before a live marker.
    const Status status = AppendRecord(WalRecordType::kPreprocess, std::string());
    if (!status.ok()) {
      IVME_CHECK_MSG(injector_->crashed(), status.message());
      return;
    }
    if (injector_->ShouldCrash("catalog:after_wal_append")) return;
  }
  catalog_->Preprocess();
}

bool DurableCatalog::ApplyUpdate(const std::string& relation, const Tuple& tuple, Mult mult) {
  const Status status = TryApplyUpdate(relation, tuple, mult);
  if (status.ok()) return true;
  if (injector_->crashed()) return false;
  IVME_CHECK_MSG(status.rejected(), status.message());
  return false;
}

Status DurableCatalog::TryApplyUpdate(const std::string& relation, const Tuple& tuple,
                                      Mult mult) {
  if (dead()) return Status::Error("catalog crashed (injected fault)");
  if (!durable()) return catalog_->TryApplyUpdate(relation, tuple, mult);
  // Gate before logging: a structural error or mutability rejection never
  // reaches the WAL. Only below-zero stays post-log (it depends on stored
  // multiplicities, which replay reconstructs deterministically).
  Status status = catalog_->CheckWritable(relation, tuple, mult);
  if (!status.ok()) return status;
  if (mult == 0) return Status::Ok();
  net_scratch_.clear();
  net_scratch_.push_back(Update{relation, tuple, mult});
  // New dictionary ids ride ahead of the data record that references them.
  status = SyncDictionary();
  if (status.ok()) {
    status = AppendRecord(WalRecordType::kBatch, EncodeBatchPayload(net_scratch_));
  }
  if (!status.ok()) {
    IVME_CHECK_MSG(injector_->crashed(), status.message());
    return Status::Error("catalog crashed (injected fault)");
  }
  if (injector_->ShouldCrash("catalog:after_wal_append")) {
    return Status::Error("catalog crashed (injected fault)");
  }
  status = catalog_->TryApplyUpdate(relation, tuple, mult);
  injector_->ShouldCrash("catalog:after_apply");
  return status;
}

BatchResult DurableCatalog::ApplyBatch(const UpdateBatch& updates) {
  return ApplyBatch(updates.data(), updates.size());
}

BatchResult DurableCatalog::ApplyBatch(const Update* updates, size_t count) {
  BatchResult result;
  const Status status = TryApplyBatch(updates, count, &result);
  if (status.ok()) return result;
  if (injector_->crashed()) return BatchResult{};
  IVME_CHECK_MSG(status.rejected(), status.message());
  result.applied = 0;
  result.rejected = count;
  return result;
}

Status DurableCatalog::TryApplyBatch(const UpdateBatch& updates, BatchResult* result) {
  return TryApplyBatch(updates.data(), updates.size(), result);
}

Status DurableCatalog::TryApplyBatch(const Update* updates, size_t count, BatchResult* result) {
  *result = BatchResult{};
  if (dead()) return Status::Error("catalog crashed (injected fault)");
  if (!durable()) return catalog_->TryApplyBatch(updates, count, result);
  // Gate before consolidation and logging: a structural error or a
  // whole-batch mutability rejection never reaches the WAL.
  Status status = catalog_->CheckBatchWritable(updates, count);
  if (!status.ok()) return status;
  if (count == 0) return Status::Ok();

  // Log the batch's consolidated net deltas, not its raw records: replaying
  // the net entries through ApplyBatch re-consolidates them as an identity
  // map and re-derives the same below-zero rejections, so recovery takes
  // exactly the live code path on exactly the live net work.
  consolidator_.Begin();
  for (size_t i = 0; i < count; ++i) {
    consolidator_.EnsureRelation(updates[i].relation);
    consolidator_.Add(updates[i]);
  }
  net_scratch_.clear();
  for (const size_t group : consolidator_.touched()) {
    const std::string& relation = consolidator_.relation(group);
    const TupleMap<Mult>& delta = consolidator_.delta(group);
    for (const auto* node = delta.First(); node != nullptr; node = node->next) {
      if (node->value != 0) net_scratch_.push_back(Update{relation, node->key, node->value});
    }
  }
  if (net_scratch_.empty()) return Status::Ok();  // fully cancelled: nothing to log or apply

  status = SyncDictionary();
  if (status.ok()) {
    status = AppendRecord(WalRecordType::kBatch, EncodeBatchPayload(net_scratch_));
  }
  if (!status.ok()) {
    IVME_CHECK_MSG(injector_->crashed(), status.message());
    return Status::Error("catalog crashed (injected fault)");
  }
  if (injector_->ShouldCrash("catalog:after_wal_append")) {
    return Status::Error("catalog crashed (injected fault)");
  }
  status = catalog_->TryApplyBatch(net_scratch_.data(), net_scratch_.size(), result);
  injector_->ShouldCrash("catalog:after_apply");
  return status;
}

DurabilityStats DurableCatalog::durability_stats() const {
  DurabilityStats stats;
  stats.durable = durable();
  stats.last_lsn = next_lsn_ - 1;
  stats.wal_records = rotated_records_ + wal_.stats().records_appended;
  stats.wal_bytes = rotated_bytes_ + wal_.stats().bytes_appended;
  stats.wal_syncs = rotated_syncs_ + wal_.stats().syncs;
  stats.checkpoints_taken = checkpoints_taken_;
  stats.checkpoint_lsn = checkpoint_lsn_;
  stats.replayed_records = replayed_records_;
  stats.recovered_torn_tail = recovered_torn_tail_;
  if (durable()) {
    std::vector<std::pair<uint64_t, std::string>> segments;
    if (ListWalSegments(dir_, &segments).ok()) stats.wal_segments = segments.size();
  }
  return stats;
}

}  // namespace ivme
