#include "src/core/catalog.h"

#include "src/common/check.h"
#include "src/core/delta.h"

namespace ivme {

QueryCatalog::QueryCatalog(std::shared_ptr<RelationStore> store)
    : store_(store != nullptr ? std::move(store) : std::make_shared<RelationStore>()) {}

MaintainedQuery* QueryCatalog::RegisterQuery(const std::string& name, ConjunctiveQuery q,
                                             EngineOptions options) {
  IVME_CHECK_MSG(FindQuery(name) == nullptr, "query " << name << " is already registered");
  queries_.push_back(std::make_unique<MaintainedQuery>(name, std::move(q), options, store_.get()));
  MaintainedQuery* query = queries_.back().get();
  for (const std::string& relation : query->query().RelationNames()) {
    consolidator_.EnsureRelation(relation);
  }
  // Late registration: the catalog is already serving, so the new query
  // preprocesses right away from the live store contents.
  if (live_) query->Preprocess();
  return query;
}

bool QueryCatalog::DropQuery(const std::string& name) {
  for (size_t i = 0; i < queries_.size(); ++i) {
    if (queries_[i]->name() != name) continue;
    // ~MaintainedQuery releases the store references; the relations and
    // their contents (and any indexes built for the query) stay live.
    queries_.erase(queries_.begin() + static_cast<long>(i));
    return true;
  }
  return false;
}

MaintainedQuery* QueryCatalog::FindQuery(const std::string& name) const {
  for (const auto& query : queries_) {
    if (query->name() == name) return query.get();
  }
  return nullptr;
}

std::vector<std::string> QueryCatalog::QueryNames() const {
  std::vector<std::string> names;
  names.reserve(queries_.size());
  for (const auto& query : queries_) names.push_back(query->name());
  return names;
}

void QueryCatalog::Load(const std::string& relation,
                        const std::vector<std::pair<Tuple, Mult>>& tuples) {
  for (const auto& [tuple, mult] : tuples) LoadTuple(relation, tuple, mult);
}

void QueryCatalog::LoadTuple(const std::string& relation, const Tuple& tuple, Mult mult) {
  const Status status = TryLoadTuple(relation, tuple, mult);
  IVME_CHECK_MSG(status.ok(), status.message());
}

Status QueryCatalog::TryLoad(const std::string& relation,
                             const std::vector<std::pair<Tuple, Mult>>& tuples) {
  for (const auto& [tuple, mult] : tuples) {
    Status status = TryLoadTuple(relation, tuple, mult);
    if (!status.ok()) return status;
  }
  return Status::Ok();
}

Status QueryCatalog::TryLoadTuple(const std::string& relation, const Tuple& tuple, Mult mult) {
  if (live_) {
    return Status::Error("Load must precede Preprocess; use ApplyUpdate afterwards");
  }
  const Relation* stored = store_->Find(relation);
  if (stored == nullptr) {
    return Status::Error("unknown relation " + relation + " (no registered query reads it)");
  }
  if (tuple.size() != stored->schema().size()) {
    return Status::Error("relation " + relation + " has arity " +
                         std::to_string(stored->schema().size()) + "; got a tuple of arity " +
                         std::to_string(tuple.size()));
  }
  if (mult <= 0) {
    return Status::Error("loaded tuples need positive multiplicities; " + relation + " got " +
                         std::to_string(mult) + " for " + tuple.ToString());
  }
  store_->Apply(relation, tuple, mult);
  return Status::Ok();
}

void QueryCatalog::Preprocess() {
  IVME_CHECK_MSG(!live_, "Preprocess called twice");
  live_ = true;
  for (auto& query : queries_) query->Preprocess();
}

Status QueryCatalog::CheckWritable(const std::string& relation, Mult mult) const {
  if (!live_) return Status::Error("Preprocess before updating");
  for (const auto& query : queries_) {
    if (query->mode() != EvalMode::kDynamic) {
      return Status::Error("query " + query->name() +
                           " uses static evaluation; updates need dynamic mode");
    }
  }
  if (store_->Find(relation) == nullptr) {
    return Status::Error("unknown relation " + relation);
  }
  const Mutability mutability = store_->MutabilityOf(relation);
  if (mutability == Mutability::kStatic) {
    return Status::Rejected("relation " + relation + " is declared static; writes are rejected");
  }
  if (mutability == Mutability::kInsertOnly && mult < 0) {
    return Status::Rejected("relation " + relation +
                            " is declared insert_only; deletes are rejected");
  }
  return Status::Ok();
}

Status QueryCatalog::CheckBatchWritable(const Update* updates, size_t count) const {
  if (!live_) return Status::Error("Preprocess before updating");
  for (const auto& query : queries_) {
    if (query->mode() != EvalMode::kDynamic) {
      return Status::Error("query " + query->name() +
                           " uses static evaluation; updates need dynamic mode");
    }
  }
  // Streams usually run many records into one relation: memoize the last
  // lookup instead of probing the store per record.
  const std::string* memo_relation = nullptr;
  const Relation* memo_stored = nullptr;
  Mutability memo_mutability = Mutability::kDynamic;
  for (size_t i = 0; i < count; ++i) {
    const Update& u = updates[i];
    if (memo_relation == nullptr || *memo_relation != u.relation) {
      memo_stored = store_->Find(u.relation);
      if (memo_stored == nullptr) {
        return Status::Error("unknown relation " + u.relation);
      }
      memo_mutability = store_->MutabilityOf(u.relation);
      memo_relation = &u.relation;
    }
    if (u.tuple.size() != memo_stored->schema().size()) {
      return Status::Error("relation " + u.relation + " has arity " +
                           std::to_string(memo_stored->schema().size()) +
                           "; got a tuple of arity " + std::to_string(u.tuple.size()));
    }
    if (memo_mutability == Mutability::kStatic) {
      return Status::Rejected("relation " + u.relation +
                              " is declared static; writes are rejected");
    }
    if (memo_mutability == Mutability::kInsertOnly && u.mult < 0) {
      return Status::Rejected("relation " + u.relation +
                              " is declared insert_only; deletes are rejected");
    }
  }
  return Status::Ok();
}

bool QueryCatalog::ApplyUpdate(const std::string& relation, const Tuple& tuple, Mult mult) {
  const Status status = TryApplyUpdate(relation, tuple, mult);
  if (status.ok()) return true;
  // Data-plane rejections keep the historical bool surface; structural
  // misuse stays fatal for the unchecked API.
  IVME_CHECK_MSG(status.rejected(), status.message());
  return false;
}

Status QueryCatalog::TryApplyUpdate(const std::string& relation, const Tuple& tuple,
                                    Mult mult) {
  const ScopedLatencyTimer timer(&update_latency_);
  Status writable = CheckWritable(relation, mult);
  if (!writable.ok()) return writable;
  if (mult == 0) return Status::Ok();
  Relation* stored = store_->Find(relation);
  if (tuple.size() != stored->schema().size()) {
    return Status::Error("relation " + relation + " has arity " +
                         std::to_string(stored->schema().size()) + "; got a tuple of arity " +
                         std::to_string(tuple.size()));
  }
  // Reject deletes below zero (Section 3) against the shared store — every
  // query sees the same base, so they can never disagree.
  if (mult < 0 && stored->Multiplicity(tuple) < -mult) {
    return Status::Rejected("delete below zero: " + relation + " holds " +
                            std::to_string(stored->Multiplicity(tuple)) + " of " +
                            tuple.ToString() + ", delta is " + std::to_string(mult));
  }
  const auto res = store_->Apply(relation, tuple, mult);
  const int support = SupportChange(res.before, res.after);
  for (auto& query : queries_) {
    if (query->UsesRelation(relation)) query->ApplySingle(relation, tuple, mult, support);
  }
  return Status::Ok();
}

BatchResult QueryCatalog::ApplyBatch(const UpdateBatch& updates) {
  return ApplyBatch(updates.data(), updates.size());
}

BatchResult QueryCatalog::ApplyBatch(const Update* updates, size_t count) {
  BatchResult result;
  const Status status = TryApplyBatch(updates, count, &result);
  if (status.ok()) return result;
  IVME_CHECK_MSG(status.rejected(), status.message());
  // Atomic whole-batch rejection: nothing applied, every record refused.
  result.applied = 0;
  result.rejected = count;
  return result;
}

Status QueryCatalog::TryApplyBatch(const UpdateBatch& updates, BatchResult* result) {
  return TryApplyBatch(updates.data(), updates.size(), result);
}

Status QueryCatalog::TryApplyBatch(const Update* updates, size_t count, BatchResult* result) {
  const ScopedLatencyTimer timer(&batch_latency_);
  *result = BatchResult{};
  // Whole-batch gate: structural errors and atomic rejections fire before
  // any base write, so a refused batch leaves the store untouched (the old
  // mid-batch unknown-relation abort could leave earlier groups applied).
  Status writable = CheckBatchWritable(updates, count);
  if (!writable.ok()) return writable;
  if (count == 0) return Status::Ok();

  // Phase 1: consolidate per relation (insert/delete cancellation, weighted
  // merge). Touch order is first-appearance order, so application stays
  // deterministic.
  consolidator_.Begin();
  for (size_t i = 0; i < count; ++i) consolidator_.Add(updates[i]);

  share_scratch_.assign(queries_.size(), QueryBatchShare{});
  for (const size_t group : consolidator_.touched()) {
    const std::string& relation = consolidator_.relation(group);
    TupleMap<Mult>& delta = consolidator_.delta(group);

    // Phase 2a: validate net deletes against the pre-batch store. Net
    // entries address distinct tuples, so the checks are independent.
    // Insert-only relations skip the per-entry store probe altogether:
    // every record was positive (gated above), so every net entry is too
    // (Abo Khamis et al. — consolidation drops below-zero validation).
    const Relation* stored = store_->Find(relation);
    if (store_->MutabilityOf(relation) == Mutability::kInsertOnly) {
      for (auto* node = delta.First(); node != nullptr; node = node->next) {
        if (node->value != 0) ++result->applied;
      }
    } else {
      for (auto* node = delta.First(); node != nullptr; node = node->next) {
        if (node->value < 0 && stored->Multiplicity(node->key) < -node->value) {
          node->value = 0;
          ++result->rejected;
        } else if (node->value != 0) {
          ++result->applied;
        }
      }
    }

    // Phase 2b: ONE base-storage write per surviving net entry, recording
    // the support changes every query's snapshots need.
    store_->ApplyDelta(relation, delta, &delta_scratch_);

    // Phase 3: fan the applied delta out to every query reading the
    // relation — one maintenance pass per query per relation, including the
    // deferred per-key minor-rebalance sweep.
    for (size_t qi = 0; qi < queries_.size(); ++qi) {
      if (!queries_[qi]->UsesRelation(relation)) continue;
      queries_[qi]->ApplyGroupDelta(relation, delta_scratch_);
      share_scratch_[qi].touched = true;
      share_scratch_[qi].records += consolidator_.records(group);
      share_scratch_[qi].net_entries += delta_scratch_.applied.size();
    }
  }

  // Phase 4: per-query batch end — the major-rebalance trigger runs once
  // per touched query, so a batch cannot thrash partitions.
  for (size_t qi = 0; qi < queries_.size(); ++qi) {
    if (!share_scratch_[qi].touched) continue;
    queries_[qi]->FinishBatch(share_scratch_[qi].records, share_scratch_[qi].net_entries);
  }
  return Status::Ok();
}

std::unique_ptr<ResultEnumerator> QueryCatalog::Enumerate(const std::string& name) const {
  const MaintainedQuery* query = FindQuery(name);
  IVME_CHECK_MSG(query != nullptr, "unknown query " << name);
  return query->Enumerate();
}

QueryResult QueryCatalog::EvaluateToMap(const std::string& name) const {
  const MaintainedQuery* query = FindQuery(name);
  IVME_CHECK_MSG(query != nullptr, "unknown query " << name);
  return query->EvaluateToMap();
}

std::unique_ptr<ResultEnumerator> QueryCatalog::EnumerateAt(const std::string& name,
                                                            Epoch epoch) const {
  const MaintainedQuery* query = FindQuery(name);
  IVME_CHECK_MSG(query != nullptr, "unknown query " << name);
  return query->EnumerateAt(epoch);
}

QueryResult QueryCatalog::EvaluateToMapAt(const std::string& name, Epoch epoch) const {
  const MaintainedQuery* query = FindQuery(name);
  IVME_CHECK_MSG(query != nullptr, "unknown query " << name);
  return query->EvaluateToMapAt(epoch);
}

void QueryCatalog::SetEpochContext(const EpochContext* ctx) {
  store_->SetEpochContext(ctx);
  for (auto& query : queries_) query->SetEpochContext(ctx);
}

std::vector<std::pair<Tuple, Mult>> QueryCatalog::DumpRelation(
    const std::string& relation) const {
  std::vector<std::pair<Tuple, Mult>> out;
  const Status status = TryDumpRelation(relation, &out);
  IVME_CHECK_MSG(status.ok(), status.message());
  return out;
}

Status QueryCatalog::TryDumpRelation(const std::string& relation,
                                     std::vector<std::pair<Tuple, Mult>>* out) const {
  out->clear();
  if (store_->Find(relation) == nullptr) {
    return Status::Error("unknown relation " + relation);
  }
  *out = store_->Dump(relation);
  return Status::Ok();
}

bool QueryCatalog::CheckInvariants(std::string* error) {
  for (auto& query : queries_) {
    std::string query_error;
    if (!query->CheckInvariants(&query_error)) {
      if (error != nullptr) *error = "query " + query->name() + ": " + query_error;
      return false;
    }
  }
  return true;
}

}  // namespace ivme
