// Classical first-order IVM baseline [16]: a single materialized result
// view maintained with delta queries δQ = π_F(δR ⋈ ⨝ others), computed by
// index-nested-loop joins. Constant-delay enumeration from the view;
// update cost grows with the delta size (up to O(N^{w−1}) per update) —
// the prior-work point the paper's Figure 2 compares against.
#ifndef IVME_BASELINES_FIRST_ORDER_IVM_H_
#define IVME_BASELINES_FIRST_ORDER_IVM_H_

#include <memory>
#include <string>
#include <vector>

#include "src/baselines/brute_force.h"
#include "src/query/query.h"
#include "src/storage/database.h"

namespace ivme {

class FirstOrderIvmEngine {
 public:
  explicit FirstOrderIvmEngine(ConjunctiveQuery q);

  /// Loads a base tuple; call Preprocess() once afterwards.
  void LoadTuple(const std::string& relation, const Tuple& tuple, Mult mult);

  /// Computes the initial result view.
  void Preprocess();

  /// Maintains base relations and the result view. Returns false when a
  /// delete exceeds the current multiplicity.
  bool ApplyUpdate(const std::string& relation, const Tuple& tuple, Mult mult);

  /// Constant-delay iteration over the materialized result.
  class Iterator {
   public:
    explicit Iterator(const Relation* result) : entry_(result->First()) {}
    bool Next(Tuple* out, Mult* mult) {
      if (entry_ == nullptr) return false;
      *out = entry_->key;
      *mult = entry_->value.mult;
      entry_ = entry_->next;
      return true;
    }

   private:
    const Relation::Entry* entry_;
  };

  Iterator Enumerate() const { return Iterator(result_.get()); }

  QueryResult EvaluateToMap() const;

  size_t result_size() const { return result_->size(); }
  size_t database_size() const { return db_.TotalSize(); }

 private:
  /// Adds π_F(δ-binding ⋈ remaining atoms) into the result, starting from
  /// atom occurrence `skip` bound to `tuple`.
  void ApplyDeltaForOccurrence(size_t skip, const Tuple& tuple, Mult mult);

  ConjunctiveQuery query_;
  Database db_;
  std::unique_ptr<Relation> result_;
  bool preprocessed_ = false;
};

}  // namespace ivme

#endif  // IVME_BASELINES_FIRST_ORDER_IVM_H_
