#include "src/baselines/naive_engine.h"

#include "src/common/check.h"

namespace ivme {

NaiveRecomputeEngine::NaiveRecomputeEngine(ConjunctiveQuery q) : query_(std::move(q)) {
  for (const auto& name : query_.RelationNames()) {
    // All atoms of one symbol share arity by construction of our queries.
    for (const auto& atom : query_.atoms()) {
      if (atom.relation == name) {
        db_.AddRelation(name, atom.schema);
        break;
      }
    }
  }
}

void NaiveRecomputeEngine::LoadTuple(const std::string& relation, const Tuple& tuple,
                                     Mult mult) {
  Relation* rel = db_.Find(relation);
  IVME_CHECK_MSG(rel != nullptr, "unknown relation " << relation);
  rel->Apply(tuple, mult);
  dirty_ = true;
}

bool NaiveRecomputeEngine::ApplyUpdate(const std::string& relation, const Tuple& tuple,
                                       Mult mult) {
  Relation* rel = db_.Find(relation);
  IVME_CHECK_MSG(rel != nullptr, "unknown relation " << relation);
  if (mult < 0 && rel->Multiplicity(tuple) < -mult) return false;
  rel->Apply(tuple, mult);
  dirty_ = true;
  return true;
}

void NaiveRecomputeEngine::Refresh() {
  if (!dirty_ && snapshot_ != nullptr) return;
  EngineOptions options;
  options.epsilon = 1.0;  // full materialization: O(1) delay after O(N^w)
  options.mode = EvalMode::kStatic;
  snapshot_ = std::make_unique<Engine>(query_, options);
  for (const auto& rel : db_.relations()) {
    for (const Relation::Entry* e = rel->First(); e != nullptr; e = e->next) {
      snapshot_->LoadTuple(rel->name(), e->key, e->value.mult);
    }
  }
  snapshot_->Preprocess();
  dirty_ = false;
}

std::unique_ptr<ResultEnumerator> NaiveRecomputeEngine::Enumerate() {
  Refresh();
  return snapshot_->Enumerate();
}

QueryResult NaiveRecomputeEngine::EvaluateToMap() {
  Refresh();
  return snapshot_->EvaluateToMap();
}

}  // namespace ivme
