// Naive recompute baseline: keeps only the base relations; on demand (first
// enumeration after a change) recomputes the full query result from scratch
// by running the static evaluator at ε = 1 (full materialization, O(N^w)
// recompute time, O(1) delay) — the classical "recompute then list"
// strategy the paper's dynamic approaches are measured against.
#ifndef IVME_BASELINES_NAIVE_ENGINE_H_
#define IVME_BASELINES_NAIVE_ENGINE_H_

#include <memory>
#include <string>

#include "src/core/engine.h"

namespace ivme {

class NaiveRecomputeEngine {
 public:
  explicit NaiveRecomputeEngine(ConjunctiveQuery q);

  /// Loads a tuple (positive multiplicities, before or after Prepare).
  void LoadTuple(const std::string& relation, const Tuple& tuple, Mult mult);

  /// Applies an update; O(1) — the recompute happens lazily.
  bool ApplyUpdate(const std::string& relation, const Tuple& tuple, Mult mult);

  /// Recomputes if needed and enumerates the full result.
  std::unique_ptr<ResultEnumerator> Enumerate();

  QueryResult EvaluateToMap();

  /// Forces the recompute (so benches can time it separately).
  void Refresh();

  size_t database_size() const { return db_.TotalSize(); }

 private:
  ConjunctiveQuery query_;
  Database db_;
  std::unique_ptr<Engine> snapshot_;
  bool dirty_ = true;
};

}  // namespace ivme

#endif  // IVME_BASELINES_NAIVE_ENGINE_H_
