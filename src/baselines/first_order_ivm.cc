#include "src/baselines/first_order_ivm.h"

#include <functional>

#include "src/common/check.h"

namespace ivme {

FirstOrderIvmEngine::FirstOrderIvmEngine(ConjunctiveQuery q) : query_(std::move(q)) {
  for (const auto& name : query_.RelationNames()) {
    for (const auto& atom : query_.atoms()) {
      if (atom.relation == name) {
        db_.AddRelation(name, atom.schema);
        break;
      }
    }
  }
  result_ = std::make_unique<Relation>(query_.free_vars(), query_.name() + "_result");
}

void FirstOrderIvmEngine::LoadTuple(const std::string& relation, const Tuple& tuple,
                                    Mult mult) {
  IVME_CHECK_MSG(!preprocessed_, "LoadTuple must precede Preprocess");
  Relation* rel = db_.Find(relation);
  IVME_CHECK_MSG(rel != nullptr, "unknown relation " << relation);
  rel->Apply(tuple, mult);
}

void FirstOrderIvmEngine::Preprocess() {
  IVME_CHECK(!preprocessed_);
  preprocessed_ = true;
  for (const auto& [tuple, mult] : BruteForceEvaluate(query_, db_)) {
    result_->Apply(tuple, mult);
  }
}

void FirstOrderIvmEngine::ApplyDeltaForOccurrence(size_t skip, const Tuple& tuple, Mult mult) {
  // Variable bindings seeded from the updated atom.
  std::vector<Value> binding(query_.num_vars(), 0);
  std::vector<bool> bound(query_.num_vars(), false);
  const Schema& skip_schema = query_.atom(skip).schema;
  for (size_t i = 0; i < skip_schema.size(); ++i) {
    binding[static_cast<size_t>(skip_schema[i])] = tuple[i];
    bound[static_cast<size_t>(skip_schema[i])] = true;
  }

  std::function<void(size_t, Mult)> recurse = [&](size_t atom_idx, Mult m) {
    if (atom_idx == query_.num_atoms()) {
      Tuple out;
      out.Reserve(query_.free_vars().size());
      for (VarId v : query_.free_vars()) out.PushBack(binding[static_cast<size_t>(v)]);
      result_->Apply(out, m);
      return;
    }
    if (atom_idx == skip) {
      recurse(atom_idx + 1, m);
      return;
    }
    const Atom& atom = query_.atom(atom_idx);
    Relation* rel = db_.Find(atom.relation);
    // Probe on the currently bound variables of the atom via a (lazily
    // created) index; unbound variables enumerate.
    std::vector<VarId> bound_vars;
    for (VarId v : atom.schema) {
      if (bound[static_cast<size_t>(v)]) bound_vars.push_back(v);
    }
    const Schema key_schema{std::vector<VarId>(bound_vars)};
    Tuple key;
    key.Reserve(bound_vars.size());
    for (VarId v : bound_vars) key.PushBack(binding[static_cast<size_t>(v)]);

    auto process_row = [&](const Tuple& row, Mult row_mult) {
      std::vector<VarId> newly;
      for (size_t i = 0; i < atom.schema.size(); ++i) {
        const VarId v = atom.schema[i];
        if (!bound[static_cast<size_t>(v)]) {
          bound[static_cast<size_t>(v)] = true;
          binding[static_cast<size_t>(v)] = row[i];
          newly.push_back(v);
        }
      }
      recurse(atom_idx + 1, m * row_mult);
      for (VarId v : newly) bound[static_cast<size_t>(v)] = false;
    };

    if (key_schema.size() == atom.schema.size()) {
      const Mult row_mult = rel->Multiplicity(key);
      if (row_mult != 0) recurse(atom_idx + 1, m * row_mult);
    } else if (key_schema.empty()) {
      for (const Relation::Entry* e = rel->First(); e != nullptr; e = e->next) {
        process_row(e->key, e->value.mult);
      }
    } else {
      const int index_id = rel->EnsureIndex(key_schema);
      for (const auto* link = rel->index(index_id).FirstForKey(key); link != nullptr;
           link = link->next) {
        process_row(link->entry->key, link->entry->value.mult);
      }
    }
  };
  recurse(0, mult);
}

bool FirstOrderIvmEngine::ApplyUpdate(const std::string& relation, const Tuple& tuple,
                                      Mult mult) {
  IVME_CHECK_MSG(preprocessed_, "Preprocess before updating");
  Relation* rel = db_.Find(relation);
  IVME_CHECK_MSG(rel != nullptr, "unknown relation " << relation);
  if (mult < 0 && rel->Multiplicity(tuple) < -mult) return false;

  // Per occurrence (repeated symbols): δ applied against the partially
  // updated database, matching δ(R1 ⋈ R2) = δR1 ⋈ R2 + R1' ⋈ δR2.
  bool applied_storage = false;
  for (size_t a = 0; a < query_.num_atoms(); ++a) {
    if (query_.atom(a).relation != relation) continue;
    if (!applied_storage) {
      // The delta for the first occurrence joins the *old* other relations;
      // since the delta join skips the occurrence itself, applying the
      // storage update first is safe for single-occurrence queries and
      // matches the leapfrog expansion for repeated ones.
      ApplyDeltaForOccurrence(a, tuple, mult);
      rel->Apply(tuple, mult);
      applied_storage = true;
    } else {
      ApplyDeltaForOccurrence(a, tuple, mult);
    }
  }
  return true;
}

QueryResult FirstOrderIvmEngine::EvaluateToMap() const {
  QueryResult out;
  for (const Relation::Entry* e = result_->First(); e != nullptr; e = e->next) {
    out[e->key] = e->value.mult;
  }
  return out;
}

}  // namespace ivme
