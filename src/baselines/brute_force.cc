#include "src/baselines/brute_force.h"

#include <vector>

#include "src/common/check.h"

namespace ivme {

namespace {

struct Binder {
  const ConjunctiveQuery& q;
  const Database& db;
  std::vector<Value> binding;       // per variable id
  std::vector<bool> bound;          // per variable id
  QueryResult result;

  Binder(const ConjunctiveQuery& query, const Database& database)
      : q(query), db(database), binding(query.num_vars(), 0), bound(query.num_vars(), false) {}

  void Recurse(size_t atom_idx, Mult mult) {
    if (atom_idx == q.num_atoms()) {
      Tuple out;
      out.Reserve(q.free_vars().size());
      for (VarId v : q.free_vars()) {
        IVME_CHECK(bound[static_cast<size_t>(v)]);
        out.PushBack(binding[static_cast<size_t>(v)]);
      }
      result[out] += mult;
      return;
    }
    const Atom& atom = q.atom(atom_idx);
    const Relation* rel = db.Find(atom.relation);
    IVME_CHECK_MSG(rel != nullptr, "missing relation " << atom.relation);
    IVME_CHECK(rel->schema().size() == atom.schema.size());
    for (const Relation::Entry* e = rel->First(); e != nullptr; e = e->next) {
      bool consistent = true;
      std::vector<VarId> newly_bound;
      for (size_t i = 0; i < atom.schema.size() && consistent; ++i) {
        const VarId v = atom.schema[i];
        const Value val = e->key[i];
        if (bound[static_cast<size_t>(v)]) {
          consistent = binding[static_cast<size_t>(v)] == val;
        } else {
          bound[static_cast<size_t>(v)] = true;
          binding[static_cast<size_t>(v)] = val;
          newly_bound.push_back(v);
        }
      }
      if (consistent) Recurse(atom_idx + 1, mult * e->value.mult);
      for (VarId v : newly_bound) bound[static_cast<size_t>(v)] = false;
    }
  }
};

}  // namespace

QueryResult BruteForceEvaluate(const ConjunctiveQuery& q, const Database& db) {
  Binder binder(q, db);
  binder.Recurse(0, 1);
  // Drop zero-multiplicity tuples (possible only with negative inputs).
  for (auto it = binder.result.begin(); it != binder.result.end();) {
    if (it->second == 0) {
      it = binder.result.erase(it);
    } else {
      ++it;
    }
  }
  return binder.result;
}

}  // namespace ivme
