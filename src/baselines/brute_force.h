// Brute-force conjunctive query evaluation by backtracking over atoms.
// Exponential in query size, linear passes over relations — used as ground
// truth in tests and as the recompute step of the naive baseline.
#ifndef IVME_BASELINES_BRUTE_FORCE_H_
#define IVME_BASELINES_BRUTE_FORCE_H_

#include <map>
#include <string>

#include "src/data/tuple.h"
#include "src/query/query.h"
#include "src/storage/database.h"

namespace ivme {

/// Result of evaluating a query: distinct free-variable tuples with their
/// multiplicities (sum over bound-variable valuations of the product of
/// atom multiplicities). Tuples are over free_vars() in head order.
using QueryResult = std::map<Tuple, Mult>;

/// Evaluates `q` over `db` by naive backtracking join. Every relation named
/// by the query must exist in `db` with a matching arity.
QueryResult BruteForceEvaluate(const ConjunctiveQuery& q, const Database& db);

}  // namespace ivme

#endif  // IVME_BASELINES_BRUTE_FORCE_H_
