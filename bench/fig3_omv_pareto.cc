// Figure 3 / Proposition 10: the update-delay Pareto frontier for
// δ1-hierarchical queries under OMv-style workloads. The reduction encodes
// an n×n Boolean matrix in R(A,B) and streams vectors into S(B); unless
// the OMv conjecture fails, no algorithm gets both amortized update time
// and delay to O(N^{1/2−γ}). IVM^ε traces the frontier: at ε the costs are
// O(N^ε) and O(N^{1−ε}) — with the matrix's √N-degree columns, the
// observable costs are (O(1), ~√N) for ε<1/2 and (~√N, O(1)) for ε>1/2, so
// max(update, delay) is minimized (≈√N, weakly Pareto optimal) at ε=1/2
// and never drops meaningfully below √N for any ε.
#include <algorithm>

#include "bench/bench_common.h"
#include "src/common/rng.h"

using namespace ivme;
using namespace ivme::bench;

namespace {

uint64_t g_seed = 314159;  // --seed

struct RoundCosts {
  double update_us = 0;  ///< amortized per vector-entry update
  double delay_us = 0;   ///< mean enumeration delay per output row
};

RoundCosts RunOmv(int n, double eps, int rounds) {
  const auto query = *ConjunctiveQuery::Parse("Q(A) = R(A, B), S(B)");
  EngineOptions opts;
  opts.epsilon = eps;
  opts.mode = EvalMode::kDynamic;
  Engine engine(query, opts);
  engine.Preprocess();

  Rng rng(g_seed);
  // Dense-ish matrix: every column has ~n/2 entries (degree √N in N=n²/2).
  for (Value i = 0; i < n; ++i) {
    for (Value j = 0; j < n; ++j) {
      if (rng.Chance(0.5)) engine.ApplyUpdate("R", Tuple{i, j}, 1);
    }
  }

  std::vector<bool> current(static_cast<size_t>(n), false);
  double update_seconds = 0;
  size_t updates = 0;
  double delay_seconds = 0;
  size_t outputs = 0;
  for (int round = 0; round < rounds; ++round) {
    for (Value j = 0; j < n; ++j) {
      const bool next = rng.Chance(0.5);
      const bool cur = current[static_cast<size_t>(j)];
      if (next == cur) continue;
      Timer timer;
      engine.ApplyUpdate("S", Tuple{j}, next ? 1 : -1);
      update_seconds += timer.Seconds();
      ++updates;
      current[static_cast<size_t>(j)] = next;
    }
    Timer timer;
    auto it = engine.Enumerate();
    Tuple t;
    Mult mult = 0;
    size_t count = 0;
    while (it->Next(&t, &mult)) ++count;
    delay_seconds += timer.Seconds();
    outputs += std::max<size_t>(count, 1);
  }
  RoundCosts costs;
  costs.update_us = update_seconds * 1e6 / static_cast<double>(std::max<size_t>(updates, 1));
  costs.delay_us = delay_seconds * 1e6 / static_cast<double>(outputs);
  return costs;
}

}  // namespace

int main(int argc, char** argv) {
  g_seed = SeedFromArgs(argc, argv, 314159);
  const int n = 300;  // N ≈ n²/2 matrix entries
  const int rounds = 12;
  std::printf("Figure 3: OMv Pareto frontier — Q(A)=R(A,B),S(B), %dx%d matrix, %d vector rounds\n",
              n, n, rounds);
  PrintRule();
  std::printf("%5s | %12s | %12s | %14s\n", "eps", "update(us)", "delay(us)",
              "max(update,delay)");
  PrintRule();
  std::vector<double> max_cost;
  std::vector<double> update_costs, delay_costs;
  for (const double eps : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const RoundCosts costs = RunOmv(n, eps, rounds);
    update_costs.push_back(costs.update_us);
    delay_costs.push_back(costs.delay_us);
    max_cost.push_back(std::max(costs.update_us, costs.delay_us));
    std::printf("%5.2f | %12.3f | %12.3f | %14.3f\n", eps, costs.update_us, costs.delay_us,
                max_cost.back());
  }
  PrintRule();
  // Shape checks mirroring the cuboid: both extremes pay ~√N somewhere, and
  // the balanced point does not beat the frontier by a large factor (that
  // would contradict the conditional lower bound).
  const double best = *std::min_element(max_cost.begin(), max_cost.end());
  const bool update_monotone = update_costs.front() <= update_costs.back();
  const bool delay_monotone = delay_costs.front() >= delay_costs.back();
  const bool no_free_lunch = best > 0.05 * max_cost[2];  // nothing far inside the cuboid
  std::printf("update grows / delay shrinks with eps: %s / %s\n", Verdict(update_monotone),
              Verdict(delay_monotone));
  std::printf("no eps beats the balanced point by >20x in max-cost: %s\n",
              Verdict(no_free_lunch));
  std::printf("(weak Pareto optimality at eps=1/2, Proposition 10)\n");
  return 0;
}
