// Shared helpers for the figure-reproduction benches: wall-clock timing,
// enumeration-delay measurement, log-log slope fitting, and table printing.
#ifndef IVME_BENCH_BENCH_COMMON_H_
#define IVME_BENCH_BENCH_COMMON_H_

#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/engine.h"

namespace ivme {
namespace bench {

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  void Reset() { start_ = std::chrono::steady_clock::now(); }
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

struct DelayStats {
  double open_us = 0;   ///< time to open the enumerator and grounding
  double mean_us = 0;   ///< mean time per Next() over the measured prefix
  double max_us = 0;    ///< worst single Next()
  size_t tuples = 0;    ///< tuples measured
};

/// Measures the enumeration delay over at most `max_tuples` result tuples.
inline DelayStats MeasureDelay(const Engine& engine, size_t max_tuples) {
  DelayStats stats;
  Timer open_timer;
  auto it = engine.Enumerate();
  Tuple t;
  Mult m = 0;
  // The first Next carries the grounding/opening costs.
  const bool has_first = it->Next(&t, &m);
  stats.open_us = open_timer.Seconds() * 1e6;
  if (!has_first) return stats;
  stats.tuples = 1;
  stats.max_us = stats.open_us;
  Timer total;
  while (stats.tuples < max_tuples) {
    Timer one;
    if (!it->Next(&t, &m)) break;
    const double us = one.Seconds() * 1e6;
    if (us > stats.max_us) stats.max_us = us;
    ++stats.tuples;
  }
  stats.mean_us = stats.tuples > 1
                      ? total.Seconds() * 1e6 / static_cast<double>(stats.tuples - 1)
                      : stats.open_us;
  return stats;
}

/// Least-squares slope of log(y) against log(x).
inline double FitLogLogSlope(const std::vector<std::pair<double, double>>& points) {
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  const double n = static_cast<double>(points.size());
  for (const auto& [x, y] : points) {
    const double lx = std::log(x), ly = std::log(y);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  const double denom = n * sxx - sx * sx;
  return denom != 0 ? (n * sxy - sx * sy) / denom : 0.0;
}

/// PASS/FAIL marker for shape checks.
inline const char* Verdict(bool ok) { return ok ? "PASS" : "FAIL"; }

inline void PrintRule(int width = 96) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace bench
}  // namespace ivme

#endif  // IVME_BENCH_BENCH_COMMON_H_
