// Shared helpers for the figure-reproduction benches: wall-clock timing,
// enumeration-delay measurement, log-log slope fitting, flag parsing
// (--smoke, --seed), and table printing.
#ifndef IVME_BENCH_BENCH_COMMON_H_
#define IVME_BENCH_BENCH_COMMON_H_

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "src/core/engine.h"

namespace ivme {
namespace bench {

/// True when `--smoke` appears in argv or IVME_SMOKE is set (CI shrinks the
/// workloads through this).
inline bool SmokeFromArgs(int argc, char** argv) {
  if (std::getenv("IVME_SMOKE") != nullptr) return true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return true;
  }
  return false;
}

/// True when `flag` (e.g. "--insert-only") appears in argv.
inline bool FlagFromArgs(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

/// The RNG seed shared by every bench: `--seed N` / `--seed=N` on the
/// command line (or the IVME_SEED environment variable) overrides
/// `fallback`, the bench's historical constant. Published BENCH_*.json runs
/// record the seed (JsonReporter::SetSeed), so a run is reproducible with
/// `<bench> --seed <recorded>`. A malformed or missing value is a hard
/// error — silently running a different workload than requested would
/// defeat the reproducibility contract.
inline uint64_t ParseSeedOrDie(const char* text) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') {
    std::fprintf(stderr, "invalid --seed value '%s' (expected a decimal integer)\n", text);
    std::exit(2);
  }
  return static_cast<uint64_t>(value);
}

/// Double-valued flag (`--zipf 1.2` / `--zipf=1.2`): the skew-sensitive
/// benches take their stream's Zipf exponent this way and record it in the
/// JSON rows. Same hard-error contract as --seed: a malformed value would
/// silently measure a different workload than requested.
inline double ParseDoubleOrDie(const char* flag, const char* text) {
  char* end = nullptr;
  const double value = std::strtod(text, &end);
  if (end == text || *end != '\0') {
    std::fprintf(stderr, "invalid %s value '%s' (expected a number)\n", flag, text);
    std::exit(2);
  }
  return value;
}

inline double DoubleFromArgs(int argc, char** argv, const char* flag, double fallback) {
  const size_t len = std::strlen(flag);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return ParseDoubleOrDie(flag, argv[i + 1]);
    }
    if (std::strncmp(argv[i], flag, len) == 0 && argv[i][len] == '=') {
      return ParseDoubleOrDie(flag, argv[i] + len + 1);
    }
  }
  return fallback;
}

inline uint64_t SeedFromArgs(int argc, char** argv, uint64_t fallback) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--seed needs a value\n");
        std::exit(2);
      }
      return ParseSeedOrDie(argv[i + 1]);
    }
    if (std::strncmp(argv[i], "--seed=", 7) == 0) return ParseSeedOrDie(argv[i] + 7);
  }
  const char* env = std::getenv("IVME_SEED");
  if (env != nullptr) return ParseSeedOrDie(env);
  return fallback;
}

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  void Reset() { start_ = std::chrono::steady_clock::now(); }
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

struct DelayStats {
  double open_us = 0;   ///< time to open the enumerator and grounding
  double mean_us = 0;   ///< mean time per Next() over the measured prefix
  double max_us = 0;    ///< worst single Next()
  size_t tuples = 0;    ///< tuples measured
};

/// Measures the enumeration delay over at most `max_tuples` result tuples.
inline DelayStats MeasureDelay(const Engine& engine, size_t max_tuples) {
  DelayStats stats;
  Timer open_timer;
  auto it = engine.Enumerate();
  Tuple t;
  Mult m = 0;
  // The first Next carries the grounding/opening costs.
  const bool has_first = it->Next(&t, &m);
  stats.open_us = open_timer.Seconds() * 1e6;
  if (!has_first) return stats;
  stats.tuples = 1;
  stats.max_us = stats.open_us;
  Timer total;
  while (stats.tuples < max_tuples) {
    Timer one;
    if (!it->Next(&t, &m)) break;
    const double us = one.Seconds() * 1e6;
    if (us > stats.max_us) stats.max_us = us;
    ++stats.tuples;
  }
  stats.mean_us = stats.tuples > 1
                      ? total.Seconds() * 1e6 / static_cast<double>(stats.tuples - 1)
                      : stats.open_us;
  return stats;
}

/// Least-squares slope of log(y) against log(x).
inline double FitLogLogSlope(const std::vector<std::pair<double, double>>& points) {
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  const double n = static_cast<double>(points.size());
  for (const auto& [x, y] : points) {
    const double lx = std::log(x), ly = std::log(y);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  const double denom = n * sxx - sx * sx;
  return denom != 0 ? (n * sxy - sx * sy) / denom : 0.0;
}

/// PASS/FAIL marker for shape checks.
inline const char* Verdict(bool ok) { return ok ? "PASS" : "FAIL"; }

/// Path for machine-readable results, from the IVME_BENCH_JSON environment
/// variable; empty when JSON output is disabled.
inline std::string JsonOutPath() {
  const char* path = std::getenv("IVME_BENCH_JSON");
  return path != nullptr ? std::string(path) : std::string();
}

/// Collects named rows of metric/value pairs and, when IVME_BENCH_JSON is
/// set, writes them as a JSON document on destruction:
///   {"bench": "<name>", "seed": <seed>, "rows": [{"name": ..., ...}]}
/// (the "seed" field appears once SetSeed was called — every bench records
/// the SeedFromArgs value so published runs are reproducible). Future PRs
/// record these as BENCH_*.json trajectory points.
class JsonReporter {
 public:
  explicit JsonReporter(std::string bench_name) : bench_name_(std::move(bench_name)) {}

  JsonReporter(const JsonReporter&) = delete;
  JsonReporter& operator=(const JsonReporter&) = delete;

  void SetSeed(uint64_t seed) {
    seed_ = seed;
    has_seed_ = true;
  }

  void Add(const std::string& row_name,
           std::vector<std::pair<std::string, double>> metrics) {
    rows_.emplace_back(row_name, std::move(metrics));
  }

  ~JsonReporter() {
    const std::string path = JsonOutPath();
    if (path.empty()) return;
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "JsonReporter: cannot open %s\n", path.c_str());
      return;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n", bench_name_.c_str());
    if (has_seed_) {
      std::fprintf(f, "  \"seed\": %llu,\n", static_cast<unsigned long long>(seed_));
    }
    std::fprintf(f, "  \"rows\": [\n");
    for (size_t i = 0; i < rows_.size(); ++i) {
      std::fprintf(f, "    {\"name\": \"%s\"", rows_[i].first.c_str());
      for (const auto& [metric, value] : rows_[i].second) {
        std::fprintf(f, ", \"%s\": %.6g", metric.c_str(), value);
      }
      std::fprintf(f, "}%s\n", i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("JSON results written to %s\n", path.c_str());
  }

 private:
  std::string bench_name_;
  uint64_t seed_ = 0;
  bool has_seed_ = false;
  std::vector<std::pair<std::string, std::vector<std::pair<std::string, double>>>> rows_;
};

inline void PrintRule(int width = 96) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace bench
}  // namespace ivme

#endif  // IVME_BENCH_BENCH_COMMON_H_
