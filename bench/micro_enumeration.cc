// Micro-benchmarks for the enumeration layer: constant-delay scans from
// covering views and the Union algorithm's delay as a function of the
// number of heavy groundings (it must scale linearly in the bucket count —
// that is exactly the O(N^{1−ε}) delay mechanism).
#include <benchmark/benchmark.h>

#include "src/core/engine.h"

namespace ivme {
namespace {

// Engine over all-heavy data with a controlled number of heavy B-keys.
std::unique_ptr<Engine> HeavyEngine(size_t buckets, size_t degree) {
  const auto query = *ConjunctiveQuery::Parse("Q(A, C) = R(A, B), S(B, C)");
  EngineOptions opts;
  opts.epsilon = 0.0;  // θ = 1: every key is heavy
  opts.mode = EvalMode::kStatic;
  auto engine = std::make_unique<Engine>(query, opts);
  Value partner = 1000000;
  for (size_t k = 0; k < buckets; ++k) {
    for (size_t d = 0; d < degree; ++d) {
      engine->LoadTuple("R", Tuple{partner++, static_cast<Value>(k)}, 1);
      engine->LoadTuple("S", Tuple{static_cast<Value>(k), partner++}, 1);
    }
  }
  engine->Preprocess();
  return engine;
}

void BM_UnionDelayPerBucketCount(benchmark::State& state) {
  const size_t buckets = static_cast<size_t>(state.range(0));
  auto engine = HeavyEngine(buckets, 4);
  Tuple t;
  Mult m = 0;
  size_t tuples = 0;
  for (auto _ : state) {
    auto it = engine->Enumerate();
    for (int i = 0; i < 32 && it->Next(&t, &m); ++i) ++tuples;
  }
  state.SetItemsProcessed(static_cast<int64_t>(tuples));
  state.counters["buckets"] = static_cast<double>(buckets);
}
BENCHMARK(BM_UnionDelayPerBucketCount)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_CoveringScan(benchmark::State& state) {
  // ε = 1 materializes the result: enumeration is a plain view scan.
  const auto query = *ConjunctiveQuery::Parse("Q(A, C) = R(A, B), S(B, C)");
  EngineOptions opts;
  opts.epsilon = 1.0;
  opts.mode = EvalMode::kStatic;
  Engine engine(query, opts);
  const size_t n = static_cast<size_t>(state.range(0));
  Value partner = 1000000;
  for (size_t i = 0; i < n; ++i) {
    engine.LoadTuple("R", Tuple{partner++, static_cast<Value>(i % 50)}, 1);
    engine.LoadTuple("S", Tuple{static_cast<Value>(i % 50), partner++}, 1);
  }
  engine.Preprocess();
  Tuple t;
  Mult m = 0;
  size_t tuples = 0;
  for (auto _ : state) {
    auto it = engine.Enumerate();
    for (int i = 0; i < 4096 && it->Next(&t, &m); ++i) ++tuples;
  }
  state.SetItemsProcessed(static_cast<int64_t>(tuples));
}
BENCHMARK(BM_CoveringScan)->Arg(2000)->Arg(8000);

void BM_LookupTreeProbe(benchmark::State& state) {
  auto engine = HeavyEngine(64, 8);
  const auto& plan = engine->plan();
  const ViewNode* heavy_root = nullptr;
  for (const auto& tree : plan.trees) {
    if (tree->root->indicator_child >= 0) heavy_root = tree->root.get();
  }
  Tuple probe{1000000, 1000001};  // (A, C) in tree emit order
  Mult sink = 0;
  for (auto _ : state) {
    sink += LookupTree(heavy_root, Tuple{}, probe);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LookupTreeProbe);

}  // namespace
}  // namespace ivme

BENCHMARK_MAIN();
