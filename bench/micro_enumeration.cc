// Micro-benchmarks for the enumeration layer: constant-delay scans from
// covering views, the Union algorithm's delay as a function of the number
// of heavy groundings (it must scale linearly in the bucket count — that
// is exactly the O(N^{1−ε}) delay mechanism), and raw LookupTree probes.
//
// Three measurement families:
//   1. union delay: all-heavy engine (ε = 0) with `buckets` heavy B-keys of
//      degree 4; each sample opens Enumerate() and drains a 32-row prefix.
//      Per-sample time is dominated by the union grounding over the bucket
//      list, so it grows linearly with `buckets`.
//   2. covering scan: ε = 1 materializes the result; enumeration is a plain
//      view scan, so per-tuple delay is flat in n.
//   3. LookupTree probe: single-tuple multiplicity lookups against the
//      heavy tree root (the delta-evaluation inner loop).
//
// Shape check (advisory under --smoke): the log-log slope of union
// delay-per-prefix against the bucket count is near 1 (linear, not
// quadratic): slope in [0.5, 1.35].
//
//   ./build/micro_enumeration [--smoke] [--seed N]
#include <cstdio>
#include <memory>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/engine.h"

using namespace ivme;

namespace {

// Engine over all-heavy data with a controlled number of heavy B-keys.
std::unique_ptr<Engine> HeavyEngine(size_t buckets, size_t degree) {
  const auto query = *ConjunctiveQuery::Parse("Q(A, C) = R(A, B), S(B, C)");
  EngineOptions opts;
  opts.epsilon = 0.0;  // θ = 1: every key is heavy
  opts.mode = EvalMode::kStatic;
  auto engine = std::make_unique<Engine>(query, opts);
  Value partner = 1000000;
  for (size_t k = 0; k < buckets; ++k) {
    for (size_t d = 0; d < degree; ++d) {
      engine->LoadTuple("R", Tuple{partner++, static_cast<Value>(k)}, 1);
      engine->LoadTuple("S", Tuple{static_cast<Value>(k), partner++}, 1);
    }
  }
  engine->Preprocess();
  return engine;
}

// Mean wall time of one Enumerate() open plus a `rows`-row prefix drain.
double PrefixDrainUs(Engine& engine, size_t rows, size_t iters, size_t* drained) {
  Tuple t;
  Mult m = 0;
  size_t tuples = 0;
  bench::Timer timer;
  for (size_t i = 0; i < iters; ++i) {
    auto it = engine.Enumerate();
    for (size_t r = 0; r < rows && it->Next(&t, &m); ++r) ++tuples;
  }
  const double us = timer.Seconds() * 1e6 / static_cast<double>(iters);
  if (drained != nullptr) *drained = tuples / iters;
  return us;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::SmokeFromArgs(argc, argv);
  const uint64_t seed = bench::SeedFromArgs(argc, argv, 1);
  (void)seed;  // workloads are deterministic; recorded for the JSON contract
  const size_t iters = smoke ? 30 : 400;

  bench::JsonReporter json("micro_enumeration");
  json.SetSeed(seed);

  // --- 1. Union delay vs heavy bucket count -------------------------------
  std::printf("union delay, Q(A,C) = R(A,B), S(B,C), eps=0 (all heavy), degree 4, "
              "32-row prefix per open, %zu opens per point\n",
              iters);
  bench::PrintRule();
  std::printf("%-10s %14s %16s %12s\n", "buckets", "prefix us", "us per tuple", "rows");
  bench::PrintRule();
  const std::vector<size_t> bucket_ladder =
      smoke ? std::vector<size_t>{16, 64, 256} : std::vector<size_t>{16, 64, 256, 1024};
  std::vector<std::pair<double, double>> delay_points;
  for (const size_t buckets : bucket_ladder) {
    auto engine = HeavyEngine(buckets, 4);
    size_t rows = 0;
    PrefixDrainUs(*engine, 32, 4, nullptr);  // warm-up
    const double us = PrefixDrainUs(*engine, 32, iters, &rows);
    std::printf("%-10zu %14.2f %16.4f %12zu\n", buckets, us,
                us / static_cast<double>(rows), rows);
    delay_points.push_back({static_cast<double>(buckets), us});
    json.Add("union_delay/" + std::to_string(buckets),
             {{"buckets", static_cast<double>(buckets)},
              {"prefix_rows", static_cast<double>(rows)},
              {"prefix_us", us},
              {"us_per_tuple", us / static_cast<double>(rows)}});
  }
  const double slope = bench::FitLogLogSlope(delay_points);
  bench::PrintRule();
  std::printf("union delay log-log slope vs buckets: %.3f\n\n", slope);

  // --- 2. Covering scan (eps = 1: plain view scan) ------------------------
  std::printf("covering scan, eps=1 (materialized result), 4096-row prefix per open\n");
  bench::PrintRule();
  std::printf("%-10s %14s %16s %12s\n", "n", "prefix us", "ns per tuple", "rows");
  bench::PrintRule();
  const std::vector<size_t> scan_sizes =
      smoke ? std::vector<size_t>{2000} : std::vector<size_t>{2000, 8000};
  for (const size_t n : scan_sizes) {
    const auto query = *ConjunctiveQuery::Parse("Q(A, C) = R(A, B), S(B, C)");
    EngineOptions opts;
    opts.epsilon = 1.0;
    opts.mode = EvalMode::kStatic;
    Engine engine(query, opts);
    Value partner = 1000000;
    for (size_t i = 0; i < n; ++i) {
      engine.LoadTuple("R", Tuple{partner++, static_cast<Value>(i % 50)}, 1);
      engine.LoadTuple("S", Tuple{static_cast<Value>(i % 50), partner++}, 1);
    }
    engine.Preprocess();
    const size_t scan_iters = smoke ? 10 : 100;
    size_t rows = 0;
    PrefixDrainUs(engine, 4096, 2, nullptr);  // warm-up
    const double us = PrefixDrainUs(engine, 4096, scan_iters, &rows);
    std::printf("%-10zu %14.2f %16.2f %12zu\n", n, us,
                us * 1e3 / static_cast<double>(rows), rows);
    json.Add("covering_scan/" + std::to_string(n),
             {{"n", static_cast<double>(n)},
              {"prefix_rows", static_cast<double>(rows)},
              {"prefix_us", us},
              {"ns_per_tuple", us * 1e3 / static_cast<double>(rows)}});
  }
  std::printf("\n");

  // --- 3. LookupTree probe ------------------------------------------------
  {
    auto engine = HeavyEngine(64, 8);
    const auto& plan = engine->plan();
    const ViewNode* heavy_root = nullptr;
    for (const auto& tree : plan.trees) {
      if (tree->root->indicator_child >= 0) heavy_root = tree->root.get();
    }
    IVME_CHECK(heavy_root != nullptr);
    const Tuple probe{1000000, 1000001};  // (A, C) in tree emit order
    const size_t probes = smoke ? 200000 : 2000000;
    Mult sink = 0;
    bench::Timer timer;
    for (size_t i = 0; i < probes; ++i) {
      sink += LookupTree(heavy_root, Tuple{}, probe);
    }
    const double ns = timer.Seconds() * 1e9 / static_cast<double>(probes);
    IVME_CHECK(sink > 0);  // keeps the loop live and the probe meaningful
    std::printf("LookupTree probe (heavy root, 64 buckets x degree 8): %.1f ns per probe "
                "(%zu probes)\n\n",
                ns, probes);
    json.Add("lookup_tree_probe", {{"ns_per_probe", ns},
                                   {"probes", static_cast<double>(probes)}});
  }

  // The union grounding is linear in the bucket count — a superlinear slope
  // means the Union enumerator rescans buckets per tuple.
  const bool slope_ok = slope >= 0.5 && slope <= 1.35;
  const char* qualifier = smoke ? " (advisory under --smoke)" : "";
  std::printf("shape check (union delay ~ linear in buckets, slope in [0.5, 1.35]): %s%s\n",
              bench::Verdict(slope_ok), qualifier);
  json.Add("shape", {{"union_delay_slope", slope},
                     {"slope_ok", slope_ok ? 1.0 : 0.0}});
  return (slope_ok || smoke) ? 0 : 1;
}
