// Durability microbench: what the WAL costs on the way in, and what the
// replay tail costs on the way back up.
//
// Experiment 1 — ingest throughput vs fsync policy. One join query
// Q(A, C) = R(A, B), S(B, C) at eps = 0.5, a fixed insert/delete stream
// applied at batch sizes b in {1, 64} against four configurations: an
// ephemeral catalog (no WAL at all), and durable catalogs with fsync off /
// every `fsync_interval` records / every record. Each batch appends one
// consolidated net-delta WAL record, so b = 1 pays the append (and under
// kAlways the fsync) per record while b = 64 amortizes both.
//
// Experiment 2 — recovery time vs WAL tail length. A snapshot is written
// at attach time, then T distinct single-tuple inserts extend the WAL
// tail; Open(dir) must load the snapshot and replay all T records through
// the normal apply path. Reported: wall-clock open time and the per-record
// replay cost.
//
// Shape checks (hard in full runs, advisory under --smoke):
//   - fsync counts order as kAlways > kBatch > kOff at b = 1;
//   - the ephemeral catalog ingests at least as fast as kAlways at b = 1;
//   - every WAL-tail record is replayed (replayed == T), and opening the
//     longest tail costs more than opening the bare snapshot.
//
//   ./build/micro_recovery [--smoke] [--seed N]
#include <dirent.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/rng.h"
#include "src/core/durable_catalog.h"

using namespace ivme;

namespace {

struct Config {
  size_t base_tuples = 4000;     // per relation, loaded before preprocessing
  size_t stream_length = 8000;   // records applied per ingest measurement
  std::vector<size_t> tails = {0, 1000, 10000, 50000};
};

/// mkdtemp scratch directory, removed (one level deep) on destruction.
class ScratchDir {
 public:
  ScratchDir() {
    char buf[] = "/tmp/ivme_bench_XXXXXX";
    char* created = ::mkdtemp(buf);
    path_ = created != nullptr ? created : "";
    IVME_CHECK_MSG(!path_.empty(), "mkdtemp failed");
  }
  ~ScratchDir() {
    DIR* dir = ::opendir(path_.c_str());
    if (dir != nullptr) {
      while (struct dirent* entry = ::readdir(dir)) {
        if (std::strcmp(entry->d_name, ".") == 0 || std::strcmp(entry->d_name, "..") == 0) {
          continue;
        }
        ::unlink((path_ + "/" + entry->d_name).c_str());
      }
      ::closedir(dir);
    }
    ::rmdir(path_.c_str());
  }
  ScratchDir(const ScratchDir&) = delete;
  ScratchDir& operator=(const ScratchDir&) = delete;

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

constexpr Value kJoinDomain = 1000;  // B values; mean S-degree stays small

/// Fresh catalog with the join query registered, both relations loaded,
/// and preprocessing done — the state every measurement starts from.
std::unique_ptr<DurableCatalog> MakeLoadedCatalog(const Config& config, uint64_t seed,
                                                  const DurabilityOptions& durability) {
  auto catalog =
      std::make_unique<DurableCatalog>(ShardedCatalogOptions(), durability);
  auto query = ConjunctiveQuery::Parse("Q(A, C) = R(A, B), S(B, C)");
  IVME_CHECK_MSG(query.has_value(), "bench query must parse");
  EngineOptions options;
  options.epsilon = 0.5;
  options.mode = EvalMode::kDynamic;
  std::string why;
  IVME_CHECK_MSG(catalog->RegisterQuery("Q", *query, options, &why), why);
  Rng rng(seed);
  for (size_t i = 0; i < config.base_tuples; ++i) {
    const Value b = static_cast<Value>(rng.Below(kJoinDomain));
    IVME_CHECK_MSG(
        catalog->TryLoadTuple("R", Tuple({static_cast<Value>(rng.Below(1 << 20)), b}), 1).ok(),
        "load R");
    IVME_CHECK_MSG(
        catalog->TryLoadTuple("S", Tuple({b, static_cast<Value>(rng.Below(1 << 20))}), 1).ok(),
        "load S");
  }
  catalog->Preprocess();
  return catalog;
}

/// The shared ingest stream: mixed inserts/deletes against R and S.
UpdateBatch MakeStream(const Config& config, uint64_t seed) {
  Rng rng(seed ^ 0x57e4);
  UpdateBatch stream;
  stream.reserve(config.stream_length);
  for (size_t i = 0; i < config.stream_length; ++i) {
    const Value b = static_cast<Value>(rng.Below(kJoinDomain));
    const bool into_r = rng.Chance(0.5);
    stream.push_back(Update{into_r ? "R" : "S",
                            into_r ? Tuple({static_cast<Value>(rng.Below(1 << 20)), b})
                                   : Tuple({b, static_cast<Value>(rng.Below(1 << 20))}),
                            rng.Chance(0.3) ? -1 : 1});
  }
  return stream;
}

struct IngestResult {
  double records_per_sec = 0;
  DurabilityStats stats;
};

/// Applies the stream at batch size `b`; `policy` < 0 means ephemeral.
IngestResult RunIngest(const Config& config, uint64_t seed, int policy, size_t batch_size) {
  DurabilityOptions durability;
  durability.background_checkpoint = false;
  if (policy >= 0) {
    durability.fsync = static_cast<FsyncPolicy>(policy);
    durability.fsync_interval = 64;
  }
  auto catalog = MakeLoadedCatalog(config, seed, durability);
  std::unique_ptr<ScratchDir> dir;
  if (policy >= 0) {
    dir = std::make_unique<ScratchDir>();
    IVME_CHECK_MSG(catalog->AttachDir(dir->path()).ok(), "attach");
  }
  const UpdateBatch stream = MakeStream(config, seed);

  bench::Timer timer;
  UpdateBatch batch;
  for (size_t i = 0; i < stream.size(); ++i) {
    batch.push_back(stream[i]);
    if (batch.size() == batch_size || i + 1 == stream.size()) {
      catalog->ApplyBatch(batch);
      batch.clear();
    }
  }
  IngestResult out;
  out.records_per_sec = static_cast<double>(stream.size()) / timer.Seconds();
  out.stats = catalog->durability_stats();
  return out;
}

struct RecoveryResult {
  double open_ms = 0;
  size_t replayed = 0;
  bool torn = false;
};

/// Snapshot at attach, `tail` distinct inserts into the WAL, close, Open.
RecoveryResult RunRecovery(const Config& config, uint64_t seed, size_t tail) {
  ScratchDir dir;
  DurabilityOptions durability;
  durability.fsync = FsyncPolicy::kOff;  // building the tail is not measured
  durability.background_checkpoint = false;
  {
    auto catalog = MakeLoadedCatalog(config, seed, durability);
    IVME_CHECK_MSG(catalog->AttachDir(dir.path()).ok(), "attach");
    for (size_t i = 0; i < tail; ++i) {
      // Distinct inserts: every update is a nonzero net delta, so the WAL
      // gains exactly one record per operation.
      const Tuple t({static_cast<Value>((1 << 20) + i), static_cast<Value>(i % kJoinDomain)});
      IVME_CHECK_MSG(catalog->ApplyUpdate("R", t, 1), "tail insert");
    }
  }

  bench::Timer timer;
  Status status;
  auto recovered = DurableCatalog::Open(dir.path(), ShardedCatalogOptions(), durability, &status);
  RecoveryResult out;
  out.open_ms = timer.Seconds() * 1e3;
  IVME_CHECK_MSG(recovered != nullptr, status.message());
  out.replayed = recovered->durability_stats().replayed_records;
  out.torn = recovered->durability_stats().recovered_torn_tail;
  std::string error;
  IVME_CHECK_MSG(recovered->catalog().CheckInvariants(&error), error);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Config config;
  const bool smoke = bench::SmokeFromArgs(argc, argv);
  const uint64_t seed = bench::SeedFromArgs(argc, argv, 7);
  if (smoke) {
    config.base_tuples = 500;
    config.stream_length = 1200;
    config.tails = {0, 100, 400};
  }

  bench::JsonReporter json("micro_recovery");
  json.SetSeed(seed);
  std::printf("durability: ingest throughput vs fsync policy, recovery time vs WAL tail\n"
              "Q(A, C) = R(A, B), S(B, C), eps=0.5, N0=%zu per relation, %zu stream records\n",
              config.base_tuples, config.stream_length);
  bench::PrintRule();
  std::printf("%-18s %4s %14s %12s %12s %10s\n", "policy", "b", "records/s", "wal bytes",
              "wal records", "fsyncs");
  bench::PrintRule();

  struct PolicyRow {
    const char* name;
    int policy;  // -1 = ephemeral
  };
  const PolicyRow policies[] = {
      {"ephemeral", -1},
      {"fsync=off", static_cast<int>(FsyncPolicy::kOff)},
      {"fsync=batch/64", static_cast<int>(FsyncPolicy::kBatch)},
      {"fsync=always", static_cast<int>(FsyncPolicy::kAlways)},
  };
  double ephemeral_b1 = 0, always_b1 = 0;
  uint64_t syncs_off = 0, syncs_batch = 0, syncs_always = 0;
  for (const size_t b : {size_t{1}, size_t{64}}) {
    for (const PolicyRow& row : policies) {
      const IngestResult result = RunIngest(config, seed, row.policy, b);
      std::printf("%-18s %4zu %14.0f %12llu %12llu %10llu\n", row.name, b,
                  result.records_per_sec,
                  static_cast<unsigned long long>(result.stats.wal_bytes),
                  static_cast<unsigned long long>(result.stats.wal_records),
                  static_cast<unsigned long long>(result.stats.wal_syncs));
      json.Add(std::string(row.name) + "/b" + std::to_string(b),
               {{"batch_size", static_cast<double>(b)},
                {"records_per_sec", result.records_per_sec},
                {"wal_bytes", static_cast<double>(result.stats.wal_bytes)},
                {"wal_records", static_cast<double>(result.stats.wal_records)},
                {"wal_syncs", static_cast<double>(result.stats.wal_syncs)}});
      if (b == 1 && row.policy < 0) ephemeral_b1 = result.records_per_sec;
      if (b == 1 && row.policy == static_cast<int>(FsyncPolicy::kAlways)) {
        always_b1 = result.records_per_sec;
        syncs_always = result.stats.wal_syncs;
      }
      if (b == 1 && row.policy == static_cast<int>(FsyncPolicy::kBatch)) {
        syncs_batch = result.stats.wal_syncs;
      }
      if (b == 1 && row.policy == static_cast<int>(FsyncPolicy::kOff)) {
        syncs_off = result.stats.wal_syncs;
      }
    }
  }
  bench::PrintRule();

  std::printf("%-12s %12s %12s %14s %6s\n", "tail", "open ms", "replayed", "us/replayed", "torn");
  bench::PrintRule();
  bool replay_complete = true;
  double open_ms_first = 0, open_ms_last = 0;
  for (const size_t tail : config.tails) {
    const RecoveryResult result = RunRecovery(config, seed, tail);
    replay_complete = replay_complete && result.replayed == tail && !result.torn;
    if (tail == config.tails.front()) open_ms_first = result.open_ms;
    if (tail == config.tails.back()) open_ms_last = result.open_ms;
    std::printf("%-12zu %12.2f %12zu %14.2f %6s\n", tail, result.open_ms, result.replayed,
                tail > 0 ? result.open_ms * 1e3 / static_cast<double>(tail) : 0.0,
                result.torn ? "yes" : "no");
    json.Add("recover/tail" + std::to_string(tail),
             {{"tail_records", static_cast<double>(tail)},
              {"open_ms", result.open_ms},
              {"replayed_records", static_cast<double>(result.replayed)}});
  }
  bench::PrintRule();

  const bool syncs_ordered = syncs_always > syncs_batch && syncs_batch > syncs_off;
  const bool ephemeral_fastest = ephemeral_b1 >= always_b1;
  const bool replay_grows = open_ms_last > open_ms_first;
  std::printf("shape check (fsync counts always > batch > off at b=1): %s\n",
              bench::Verdict(syncs_ordered));
  std::printf("shape check (ephemeral >= fsync=always at b=1): %s%s\n",
              bench::Verdict(ephemeral_fastest), smoke ? " (advisory under --smoke)" : "");
  std::printf("shape check (full replay, longest tail slower than bare snapshot): %s%s\n",
              bench::Verdict(replay_complete && replay_grows),
              smoke ? " (advisory under --smoke)" : "");
  json.Add("shape", {{"syncs_ordered", syncs_ordered ? 1.0 : 0.0},
                     {"ephemeral_over_always_b1", ephemeral_b1 / always_b1},
                     {"replay_complete", replay_complete ? 1.0 : 0.0},
                     {"open_ms_longest_over_bare", open_ms_last / open_ms_first}});
  // Timing-based checks are advisory under --smoke; the fsync-count
  // ordering is deterministic and enforced everywhere.
  const bool ok = syncs_ordered && (smoke || (ephemeral_fastest && replay_complete && replay_grows));
  return ok ? 0 : 1;
}
