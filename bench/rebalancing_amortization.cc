// Proposition 27 (and 25/26): the amortization of minor/major rebalancing.
// A long insert-then-mixed-then-delete stream is bucketed; per bucket we
// report mean and worst single-update cost plus the cumulative rebalance
// counters. The shape to see: worst-case spikes (major rebalancing
// recomputes in O(N^{1+(w−1)ε})) while the running mean stays flat —
// amortized O(N^{δε}).
#include <algorithm>

#include "bench/bench_common.h"
#include "src/common/rng.h"
#include "src/workload/generator.h"
#include "src/workload/update_stream.h"

using namespace ivme;
using namespace ivme::bench;

int main(int argc, char** argv) {
  const uint64_t seed = SeedFromArgs(argc, argv, 99);
  const auto query = *ConjunctiveQuery::Parse("Q(A, C) = R(A, B), S(B, C)");
  EngineOptions opts;
  opts.epsilon = 0.5;
  opts.mode = EvalMode::kDynamic;
  Engine engine(query, opts);
  engine.Preprocess();  // start empty: the stream builds the database

  // Phase 1: grow to 30k tuples (Zipf keys). Phase 2: delete most of them.
  Rng rng(seed);
  std::vector<workload::Update> stream;
  std::vector<Tuple> live_r, live_s;
  for (int i = 0; i < 30000; ++i) {
    const Value key = static_cast<Value>(rng.Below(400));
    if (rng.Chance(0.5)) {
      Tuple t{rng.Range(1000000, 9000000), key};
      live_r.push_back(t);
      stream.push_back({"R", std::move(t), 1});
    } else {
      Tuple t{key, rng.Range(1000000, 9000000)};
      live_s.push_back(t);
      stream.push_back({"S", std::move(t), 1});
    }
  }
  // Phase 2: pump a single key's degree far across the light/heavy bands
  // and back (minor rebalancing), keeping N well inside [M/4, M).
  for (Value j = 0; j < 3000; ++j) {
    stream.push_back({"R", Tuple{20000000 + j, 7}, 1});
  }
  for (Value j = 0; j < 3000; ++j) {
    stream.push_back({"R", Tuple{20000000 + j, 7}, -1});
  }
  // Phase 3: shrink the database (major rebalancing on the way down).
  for (size_t i = live_r.size(); i-- > live_r.size() / 8;) {
    stream.push_back({"R", live_r[i], -1});
  }
  for (size_t i = live_s.size(); i-- > live_s.size() / 8;) {
    stream.push_back({"S", live_s[i], -1});
  }

  std::printf("Rebalancing amortization — Q(A,C)=R(A,B),S(B,C), eps=0.5, %zu updates\n",
              stream.size());
  PrintRule();
  std::printf("%9s | %10s | %10s | %12s | %7s %7s | %8s\n", "updates", "mean(us)", "max(us)",
              "running(us)", "minor", "major", "N");
  PrintRule();

  const size_t bucket = 4000;
  double total_seconds = 0;
  size_t applied = 0;
  double worst_bucket_mean = 0;
  for (size_t start = 0; start < stream.size(); start += bucket) {
    const size_t end = std::min(stream.size(), start + bucket);
    double bucket_seconds = 0, bucket_max = 0;
    for (size_t i = start; i < end; ++i) {
      Timer timer;
      engine.ApplyUpdate(stream[i].relation, stream[i].tuple, stream[i].mult);
      const double s = timer.Seconds();
      bucket_seconds += s;
      bucket_max = std::max(bucket_max, s);
    }
    total_seconds += bucket_seconds;
    applied = end;
    const auto stats = engine.GetStats();
    const double bucket_mean = bucket_seconds * 1e6 / static_cast<double>(end - start);
    worst_bucket_mean = std::max(worst_bucket_mean, bucket_mean);
    std::printf("%9zu | %10.2f | %10.1f | %12.2f | %7zu %7zu | %8zu\n", applied, bucket_mean,
                bucket_max * 1e6, total_seconds * 1e6 / static_cast<double>(applied),
                stats.minor_rebalances, stats.major_rebalances, engine.database_size());
  }
  PrintRule();
  const double overall_mean = total_seconds * 1e6 / static_cast<double>(applied);
  const auto stats = engine.GetStats();
  std::printf("overall amortized: %.2f us/update; %zu minor, %zu major rebalances\n",
              overall_mean, stats.minor_rebalances, stats.major_rebalances);
  // Amortization verdict: no bucket's mean exceeds the overall mean by a
  // huge factor even though single updates spike (majors recompute).
  std::printf("bucket means stay within 8x of the overall mean: %s (worst %.2f us)\n",
              Verdict(worst_bucket_mean < 8 * overall_mean), worst_bucket_mean);
  return 0;
}
