// Micro-benchmarks for the Section-3 computational model: the dictionary
// and index operations the paper's constant-time claims rest on. All ops
// should be O(1): the reported ns/op must stay roughly flat as relations
// grow (modulo cache effects).
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/rng.h"
#include "src/storage/relation.h"

namespace ivme {
namespace {

uint64_t g_seed = 1;  // --seed N (stripped before Google Benchmark sees argv)

void BM_RelationInsert(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(g_seed);
  for (auto _ : state) {
    state.PauseTiming();
    Relation r(Schema({0, 1}), "R");
    state.ResumeTiming();
    for (size_t i = 0; i < n; ++i) {
      r.Apply(Tuple{static_cast<Value>(i), static_cast<Value>(i % 97)}, 1);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
}
BENCHMARK(BM_RelationInsert)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_RelationLookup(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Relation r(Schema({0, 1}), "R");
  for (size_t i = 0; i < n; ++i) {
    r.Apply(Tuple{static_cast<Value>(i), static_cast<Value>(i % 97)}, 1);
  }
  Rng rng(g_seed + 1);
  Mult sink = 0;
  for (auto _ : state) {
    const Value key = static_cast<Value>(rng.Below(n));
    sink += r.Multiplicity(Tuple{key, key % 97});
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RelationLookup)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_IndexedInsertDelete(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Relation r(Schema({0, 1}), "R");
  r.EnsureIndex(Schema({1}));
  for (size_t i = 0; i < n; ++i) {
    r.Apply(Tuple{static_cast<Value>(i), static_cast<Value>(i % 97)}, 1);
  }
  Value next = static_cast<Value>(n);
  for (auto _ : state) {
    r.Apply(Tuple{next, next % 97}, 1);
    r.Apply(Tuple{next, next % 97}, -1);
    ++next;
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_IndexedInsertDelete)->Arg(1000)->Arg(100000);

void BM_IndexCountForKey(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Relation r(Schema({0, 1}), "R");
  const int idx = r.EnsureIndex(Schema({1}));
  for (size_t i = 0; i < n; ++i) {
    r.Apply(Tuple{static_cast<Value>(i), static_cast<Value>(i % 97)}, 1);
  }
  Rng rng(g_seed + 2);
  size_t sink = 0;
  for (auto _ : state) {
    sink += r.index(idx).CountForKey(Tuple{static_cast<Value>(rng.Below(97))});
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IndexCountForKey)->Arg(1000)->Arg(100000);

void BM_IndexScanPerTuple(benchmark::State& state) {
  // Constant-delay σ_{S=t}R enumeration: ns per scanned tuple must not
  // depend on |R|.
  const size_t n = static_cast<size_t>(state.range(0));
  Relation r(Schema({0, 1}), "R");
  const int idx = r.EnsureIndex(Schema({1}));
  for (size_t i = 0; i < n; ++i) {
    r.Apply(Tuple{static_cast<Value>(i), static_cast<Value>(i % 97)}, 1);
  }
  size_t sink = 0, scanned = 0;
  Rng rng(g_seed + 3);
  for (auto _ : state) {
    const Tuple key{static_cast<Value>(rng.Below(97))};
    for (const auto* link = r.index(idx).FirstForKey(key); link != nullptr;
         link = link->next) {
      sink += static_cast<size_t>(link->entry->key[0]);
      ++scanned;
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<int64_t>(scanned));
}
BENCHMARK(BM_IndexScanPerTuple)->Arg(9700)->Arg(97000);

}  // namespace
}  // namespace ivme

// Custom main: with IVME_BENCH_JSON=<path> in the environment, results are
// additionally written to <path> in Google Benchmark's JSON format. (The
// figure benches use bench_common.h's JsonReporter, which has its own
// schema and honors the same variable — point each run at its own file.)
int main(int argc, char** argv) {
  ivme::g_seed = ivme::bench::SeedFromArgs(argc, argv, 1);
  // Strip --seed so Google Benchmark does not reject it as unrecognized.
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      ++i;
      continue;
    }
    if (std::strncmp(argv[i], "--seed=", 7) == 0) continue;
    args.push_back(argv[i]);
  }
  std::string out_flag, format_flag;
  const char* json_path = std::getenv("IVME_BENCH_JSON");
  if (json_path != nullptr && *json_path != '\0') {
    out_flag = std::string("--benchmark_out=") + json_path;
    format_flag = "--benchmark_out_format=json";
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int arg_count = static_cast<int>(args.size());
  benchmark::Initialize(&arg_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(arg_count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
