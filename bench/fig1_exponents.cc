// Figure 1 (left) / Theorems 2 and 4: the three cost exponents of IVM^ε as
// functions of ε, fitted as log-log slopes over an N-ladder on worst-case
// data for Q(A, C) = R(A, B), S(B, C) (w = 2, δ = 1):
//
//   preprocessing time  O(N^{1+(w−1)ε}) = O(N^{1+ε})
//   amortized update    O(N^{δε})       = O(N^{ε})
//   enumeration delay   O(N^{1−ε})
//
// Data: per ε, (a) an all-light instance whose join-key degrees sit just
// below θ (tight for preprocessing and updates), and (b) an all-heavy
// instance with degrees above the heavy threshold (tight for delay).
//
// Slopes are fitted on the engine's operation counters (machine-independent;
// wall-clock slopes drift with the cache regime and are reported for
// reference only).
#include <algorithm>

#include "bench/bench_common.h"
#include "src/common/counters.h"
#include "src/common/rng.h"
#include "src/workload/generator.h"

using namespace ivme;
using namespace ivme::bench;

namespace {

const char* kQuery = "Q(A, C) = R(A, B), S(B, C)";

uint64_t g_seed = 17;  // --seed (the update-key RNG; data is deterministic)

// Builds R and S with `keys` join keys of degree `degree` each (distinct
// partner values).
void LoadDegreeData(Engine* engine, size_t keys, size_t degree) {
  std::vector<std::pair<Tuple, Mult>> r, s;
  Value partner = 1000000;
  for (size_t k = 0; k < keys; ++k) {
    for (size_t d = 0; d < degree; ++d) {
      r.push_back({Tuple{partner++, static_cast<Value>(k)}, 1});
      s.push_back({Tuple{static_cast<Value>(k), partner++}, 1});
    }
  }
  engine->Load("R", r);
  engine->Load("S", s);
}

struct Metric {
  double ops_slope = 0;
  double wall_slope = 0;
};

struct EpsResult {
  Metric preproc, update, delay;
};

EpsResult MeasureEps(double eps) {
  const auto query = *ConjunctiveQuery::Parse(kQuery);
  // Smaller ladders for larger ε (the worst-case light-view row count is
  // n·degree ≈ N^{1+ε} and genuinely blows up).
  std::vector<size_t> ladder;  // tuples per relation
  if (eps <= 0.5) {
    ladder = {8000, 16000, 32000};
  } else if (eps <= 0.75) {
    ladder = {2000, 4000, 8000};
  } else {
    ladder = {1000, 2000, 4000};
  }

  std::vector<std::pair<double, double>> preproc_ops, preproc_wall, update_ops, update_wall,
      delay_ops, delay_wall;
  for (const size_t n : ladder) {
    const double x = static_cast<double>(2 * n);
    // Degrees target the θ computed from the ACTUAL loaded size (key·degree
    // truncation shrinks N, so aim with a 0.8·(3n)^ε margin to stay
    // strictly below θ on the light side).
    const double theta_floor = std::pow(3.0 * static_cast<double>(n), eps);

    // ---- all-light instance: degrees just below θ ----
    const size_t light_degree =
        std::max<size_t>(1, std::min(static_cast<size_t>(0.8 * theta_floor), n / 4));
    const size_t light_keys = n / light_degree;
    {
      EngineOptions opts;
      opts.epsilon = eps;
      opts.mode = EvalMode::kDynamic;
      Engine engine(query, opts);
      LoadDegreeData(&engine, light_keys, light_degree);
      ResetCounters();
      Timer timer;
      engine.Preprocess();
      preproc_wall.push_back({x, timer.Seconds() + 1e-9});
      preproc_ops.push_back({x, static_cast<double>(AggregateCounters().materialize_steps) + 1});

      // Updates: insert/delete round trips on random light keys. Each pair
      // touches a key whose sibling degree is ≈ θ.
      const size_t pairs = 500;
      Rng rng(g_seed);
      ResetCounters();
      Timer utimer;
      for (size_t i = 0; i < pairs; ++i) {
        const Value key = static_cast<Value>(rng.Below(light_keys));
        const Tuple t{static_cast<Value>(5000000 + i), key};
        engine.ApplyUpdate("R", t, 1);
        engine.ApplyUpdate("R", t, -1);
      }
      update_wall.push_back({x, utimer.Seconds() / (2.0 * pairs) + 1e-12});
      update_ops.push_back(
          {x, static_cast<double>(AggregateCounters().delta_steps +
                                  AggregateCounters().materialize_steps) /
                      (2.0 * pairs) +
                  1});
    }

    // ---- all-heavy instance: degrees comfortably above θ ----
    const size_t heavy_degree =
        std::max<size_t>(2, std::min(static_cast<size_t>(2.5 * theta_floor) + 1, n / 2));
    const size_t heavy_keys = std::max<size_t>(1, n / heavy_degree);
    {
      EngineOptions opts;
      opts.epsilon = eps;
      opts.mode = EvalMode::kStatic;
      Engine engine(query, opts);
      LoadDegreeData(&engine, heavy_keys, heavy_degree);
      engine.Preprocess();
      ResetCounters();
      const DelayStats delay = MeasureDelay(engine, 200);
      delay_wall.push_back({x, delay.mean_us + 1e-3});
      delay_ops.push_back({x, static_cast<double>(AggregateCounters().enum_steps) /
                                  static_cast<double>(std::max<size_t>(delay.tuples, 1)) +
                              1});
    }
  }

  EpsResult result;
  result.preproc = {FitLogLogSlope(preproc_ops), FitLogLogSlope(preproc_wall)};
  result.update = {FitLogLogSlope(update_ops), FitLogLogSlope(update_wall)};
  result.delay = {FitLogLogSlope(delay_ops), FitLogLogSlope(delay_wall)};
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  g_seed = SeedFromArgs(argc, argv, 17);
  std::printf("Figure 1 (left): cost exponents vs eps — %s (w=2, delta=1)\n", kQuery);
  std::printf("slopes fitted on operation counters over a 3-size N-ladder; [wall] for "
              "reference\n");
  PrintRule(104);
  std::printf("%5s | %7s %7s %5s %5s | %7s %7s %5s %5s | %7s %7s %5s %5s\n", "eps", "prep",
              "[wall]", "pred", "ok", "upd", "[wall]", "pred", "ok", "delay", "[wall]", "pred",
              "ok");
  PrintRule(104);
  bool all_ok = true;
  for (const double eps : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const EpsResult r = MeasureEps(eps);
    const double pred_preproc = 1.0 + eps;
    const double pred_update = eps;
    const double pred_delay = 1.0 - eps;
    // Tolerances: counters remove machine noise but boundary effects
    // (capped degrees at tiny N, constant offsets) remain.
    const bool ok_p = r.preproc.ops_slope < pred_preproc + 0.15 &&
                      r.preproc.ops_slope > pred_preproc - 0.3;
    const bool ok_u =
        r.update.ops_slope < pred_update + 0.15 && r.update.ops_slope > pred_update - 0.3;
    const bool ok_d =
        r.delay.ops_slope < pred_delay + 0.15 && r.delay.ops_slope > pred_delay - 0.3;
    all_ok = all_ok && ok_p && ok_u && ok_d;
    std::printf("%5.2f | %7.2f %7.2f %5.2f %5s | %7.2f %7.2f %5.2f %5s | %7.2f %7.2f %5.2f %5s\n",
                eps, r.preproc.ops_slope, r.preproc.wall_slope, pred_preproc, Verdict(ok_p),
                r.update.ops_slope, r.update.wall_slope, pred_update, Verdict(ok_u),
                r.delay.ops_slope, r.delay.wall_slope, pred_delay, Verdict(ok_d));
  }
  PrintRule(104);
  std::printf("shape verdict: %s — measured exponents track 1+(w-1)eps / delta*eps / 1-eps\n",
              Verdict(all_ok));
  return all_ok ? 0 : 1;
}
