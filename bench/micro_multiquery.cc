// Multi-query serving cost: amortized per-record update cost as the number
// of registered queries Q grows, for one shared-store QueryCatalog (each
// record's base-storage write and batch consolidation happen once; base
// indexes are shared across queries) versus Q independent engines (every
// engine duplicates storage, indexes, and consolidation). Per-query view
// maintenance is inherently per query, so the catalog's cost still grows
// with Q — but sub-linearly, while the independent engines grow
// near-linearly.
//
// Q ∈ {1, 2, 4, 8} distinct queries (full scans, projections, joins,
// semijoins over shared R, S, T), ε = 0.5, batched mixed insert/delete
// stream at b = 64. Cost counters report the base-storage writes of each
// side (catalog: one per net entry; engines: one per net entry per engine
// reading the relation).
//
// Shape check: growth of amortized cost from Q=1 to Q=8 must be at least
// 1.3× steeper for the independent engines than for the catalog.
//
//   ./build/micro_multiquery [--smoke]
//
// --smoke (or IVME_SMOKE=1) shrinks the workload for CI.
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/counters.h"
#include "src/core/catalog.h"
#include "src/workload/driver.h"
#include "src/workload/generator.h"
#include "src/workload/update_stream.h"

using namespace ivme;

namespace {

struct Config {
  size_t base_tuples = 16000;    // per binary relation, before preprocessing
  size_t stream_length = 16000;  // records applied per measurement
  size_t batch_size = 64;
};

struct NamedQuery {
  const char* name;
  const char* text;
};

// Eight distinct registered queries over the shared relations R(A, B),
// S(B, C), T(B): full/projection/join/semijoin shapes.
const NamedQuery kFamily[] = {
    {"full_r", "Q(A, B) = R(A, B)"},
    {"join", "Q(A, C) = R(A, B), S(B, C)"},
    {"proj_a", "Q(A) = R(A, B)"},
    {"semi", "Q(B) = R(A, B), T(B)"},
    {"full_s", "Q(B, C) = S(B, C)"},
    {"join_b", "Q(B) = R(A, B), S(B, C)"},
    {"proj_c", "Q(C) = S(B, C)"},
    {"semi_s", "Q(B, C) = S(B, C), T(B)"},
};

ConjunctiveQuery Parse(const char* text) {
  auto q = ConjunctiveQuery::Parse(text);
  IVME_CHECK(q.has_value());
  return *q;
}

struct Measurement {
  double us_per_record = 0;
  uint64_t base_writes = 0;
  size_t applied = 0;
};

struct Workload {
  std::vector<Tuple> r, s, t;
  std::vector<workload::Batch> batches;
  size_t records = 0;
};

Workload MakeWorkload(const Config& config, uint64_t seed) {
  Workload w;
  // Zipf-skewed join key B engages the heavy/light machinery.
  w.r = workload::ZipfTuples(config.base_tuples, 2, 1, 1500, 1.1, 3000000, seed);
  w.s = workload::ZipfTuples(config.base_tuples, 2, 0, 1500, 1.1, 3000000, seed + 1);
  for (Value b = 0; b < 750; ++b) w.t.push_back(Tuple{b * 2});

  // Hot-set skewed mixed stream alternating R and S records.
  Rng hot_rng(seed + 6);
  std::vector<Tuple> hot_r, hot_s;
  for (int i = 0; i < 16; ++i) {
    hot_r.push_back(Tuple{hot_rng.Range(0, 3000000), hot_rng.Range(0, 1500)});
    hot_s.push_back(Tuple{hot_rng.Range(0, 1500), hot_rng.Range(0, 3000000)});
  }
  const auto fresh_r = [&hot_r](Rng& rng) {
    if (rng.Chance(0.85)) return hot_r[rng.Below(hot_r.size())];
    return Tuple{rng.Range(0, 3000000), rng.Range(0, 1500)};
  };
  const auto fresh_s = [&hot_s](Rng& rng) {
    if (rng.Chance(0.85)) return hot_s[rng.Below(hot_s.size())];
    return Tuple{rng.Range(0, 1500), rng.Range(0, 3000000)};
  };
  const auto stream_r =
      workload::MixedStream("R", w.r, config.stream_length / 2, 0.35, fresh_r, seed + 10);
  const auto stream_s =
      workload::MixedStream("S", w.s, config.stream_length / 2, 0.35, fresh_s, seed + 11);
  std::vector<workload::Update> merged;
  for (size_t i = 0; i < stream_r.size() || i < stream_s.size(); ++i) {
    if (i < stream_r.size()) merged.push_back(stream_r[i]);
    if (i < stream_s.size()) merged.push_back(stream_s[i]);
  }
  w.batches = workload::ChunkStream(merged, config.batch_size);
  w.records = merged.size();
  return w;
}

bool UsesRelation(const ConjunctiveQuery& q, const std::string& relation) {
  for (const auto& atom : q.atoms()) {
    if (atom.relation == relation) return true;
  }
  return false;
}

void LoadFor(const ConjunctiveQuery& q, const Workload& w,
             const std::function<void(const std::string&, const std::vector<Tuple>&)>& load) {
  if (UsesRelation(q, "R")) load("R", w.r);
  if (UsesRelation(q, "S")) load("S", w.s);
  if (UsesRelation(q, "T")) load("T", w.t);
}

/// Shared-store catalog with the first `num_queries` family members.
Measurement RunCatalog(const Config& config, const Workload& w, size_t num_queries) {
  QueryCatalog catalog;
  EngineOptions options;
  options.epsilon = 0.5;
  std::vector<ConjunctiveQuery> queries;
  for (size_t i = 0; i < num_queries; ++i) {
    queries.push_back(Parse(kFamily[i].text));
    catalog.RegisterQuery(kFamily[i].name, queries.back(), options);
  }
  for (const char* relation : {"R", "S", "T"}) {
    if (catalog.store().Find(relation) == nullptr) continue;
    const auto& tuples = relation == std::string("R") ? w.r
                         : relation == std::string("S") ? w.s
                                                        : w.t;
    for (const Tuple& tuple : tuples) catalog.LoadTuple(relation, tuple, 1);
  }
  catalog.Preprocess();
  (void)config;

  // Restrict the stream to relations some registered query reads (with
  // Q = 1 only R is attached); the independent-engine side filters the
  // same way, and both sides normalize by the full stream length.
  std::vector<workload::Batch> batches;
  for (const auto& batch : w.batches) {
    workload::Batch filtered;
    for (const auto& u : batch) {
      if (catalog.store().Find(u.relation) != nullptr) filtered.push_back(u);
    }
    if (!filtered.empty()) batches.push_back(std::move(filtered));
  }

  ResetCounters();
  const auto stats = workload::DriveBatches(catalog, batches);
  Measurement out;
  out.us_per_record = stats.seconds * 1e6 / static_cast<double>(w.records);
  out.base_writes = AggregateCounters().base_writes;
  out.applied = stats.applied;
  std::string error;
  IVME_CHECK_MSG(catalog.CheckInvariants(&error), "catalog invariants: " << error);
  return out;
}

/// The duplicated baseline: one private engine per query, each fed the full
/// stream (restricted to its own relations).
Measurement RunIndependentEngines(const Config& config, const Workload& w,
                                  size_t num_queries) {
  EngineOptions options;
  options.epsilon = 0.5;
  std::vector<std::unique_ptr<Engine>> engines;
  std::vector<std::vector<workload::Batch>> streams;
  for (size_t i = 0; i < num_queries; ++i) {
    const auto q = Parse(kFamily[i].text);
    engines.push_back(std::make_unique<Engine>(q, options));
    LoadFor(q, w, [&](const std::string& relation, const std::vector<Tuple>& tuples) {
      for (const Tuple& tuple : tuples) engines.back()->LoadTuple(relation, tuple, 1);
    });
    engines.back()->Preprocess();
    // Pre-filter the stream to the engine's relations (outside the timed
    // region: routing records is the serving layer's job either way).
    std::vector<workload::Batch> mine;
    for (const auto& batch : w.batches) {
      workload::Batch filtered;
      for (const auto& u : batch) {
        if (UsesRelation(q, u.relation)) filtered.push_back(u);
      }
      if (!filtered.empty()) mine.push_back(std::move(filtered));
    }
    streams.push_back(std::move(mine));
  }

  ResetCounters();
  Measurement out;
  double seconds = 0;
  for (size_t i = 0; i < engines.size(); ++i) {
    const auto stats = workload::DriveBatches(*engines[i], streams[i]);
    seconds += stats.seconds;
    out.applied += stats.applied;
  }
  out.us_per_record = seconds * 1e6 / static_cast<double>(w.records);
  out.base_writes = AggregateCounters().base_writes;
  (void)config;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Config config;
  const bool smoke = bench::SmokeFromArgs(argc, argv);
  const uint64_t seed = bench::SeedFromArgs(argc, argv, 1);
  if (smoke) {
    config.base_tuples = 1500;
    config.stream_length = 2400;
  }

  const Workload w = MakeWorkload(config, seed);
  const std::vector<size_t> query_counts = {1, 2, 4, 8};

  bench::JsonReporter json("micro_multiquery");
  json.SetSeed(seed);
  std::printf("multi-query serving: shared-store catalog vs Q independent engines\n"
              "family: full/proj/join/semijoin over R(A,B), S(B,C), T(B); eps=0.5 b=%zu; "
              "N0=%zu per binary relation, %zu records\n",
              config.batch_size, config.base_tuples, w.records);
  bench::PrintRule();
  std::printf("%-4s %16s %16s %10s %14s %14s\n", "Q", "catalog us/rec", "engines us/rec",
              "engines/x", "writes(cat)", "writes(eng)");
  bench::PrintRule();

  double catalog_q1 = 0, engines_q1 = 0, catalog_q8 = 0, engines_q8 = 0;
  for (const size_t q : query_counts) {
    const Measurement catalog = RunCatalog(config, w, q);
    const Measurement engines = RunIndependentEngines(config, w, q);
    if (q == 1) {
      catalog_q1 = catalog.us_per_record;
      engines_q1 = engines.us_per_record;
    }
    if (q == 8) {
      catalog_q8 = catalog.us_per_record;
      engines_q8 = engines.us_per_record;
    }
    std::printf("%-4zu %16.3f %16.3f %9.2fx %14llu %14llu\n", q, catalog.us_per_record,
                engines.us_per_record, engines.us_per_record / catalog.us_per_record,
                static_cast<unsigned long long>(catalog.base_writes),
                static_cast<unsigned long long>(engines.base_writes));
    json.Add("eps0.5/Q" + std::to_string(q),
             {{"queries", static_cast<double>(q)},
              {"epsilon", 0.5},
              {"batch_size", static_cast<double>(config.batch_size)},
              {"us_per_record_catalog", catalog.us_per_record},
              {"us_per_record_engines", engines.us_per_record},
              {"engines_over_catalog", engines.us_per_record / catalog.us_per_record},
              {"base_writes_catalog", static_cast<double>(catalog.base_writes)},
              {"base_writes_engines", static_cast<double>(engines.base_writes)},
              {"net_entries_catalog", static_cast<double>(catalog.applied)}});
  }
  bench::PrintRule();

  // Sub-linearity shape: cost growth from Q=1 to Q=8 must be markedly
  // steeper for the duplicated engines than for the shared-store catalog.
  const double catalog_growth = catalog_q8 / catalog_q1;
  const double engines_growth = engines_q8 / engines_q1;
  const bool shape_ok = engines_growth >= 1.3 * catalog_growth;
  std::printf("growth Q=1 -> Q=8: catalog %.2fx, engines %.2fx (ratio %.2f)\n", catalog_growth,
              engines_growth, engines_growth / catalog_growth);
  std::printf("shape check (engine growth >= 1.3x catalog growth): %s%s\n",
              bench::Verdict(shape_ok), smoke ? " (advisory under --smoke)" : "");
  json.Add("shape", {{"catalog_growth_q8_over_q1", catalog_growth},
                     {"engines_growth_q8_over_q1", engines_growth},
                     {"growth_ratio", engines_growth / catalog_growth}});
  // The smoke workload is small enough for scheduler noise to flip the
  // ratio; only the full-size run treats the shape check as a failure.
  return (shape_ok || smoke) ? 0 : 1;
}
