// Sharded vs unsharded batch-update throughput: the same skewed batched
// update stream applied through a plain Engine (the PR 2 unsharded
// baseline) and through ShardedEngine at K ∈ {1, 2, 4, 8} shards, across
// ε ∈ {0, 0.5, 1}, at batch size 64.
//
// What sharding buys on the maintenance path, even on one core: each shard
// sizes its threshold from its own slice (M_k ≈ M/K, θ_k = M_k^ε), so at
// ε > 0 the per-update work bound shrinks by ~K^ε — light parts are
// smaller, minor rebalances move fewer tuples, and keys whose degree sits
// between the per-shard and global thresholds flip to heavy, trading their
// O(degree) maintenance for enumeration-time work (the Theorem 2/4
// trade-off applied per slice). On multi-core hosts the K shard deltas of
// each batch additionally apply concurrently on the engine's thread pool.
// At ε = 0 the threshold effect vanishes (θ = 1 everywhere) and sharding
// is pure routing overhead — reported for honesty.
//
// Shape checks (ε = 0.5, batch 64):
//   1. ShardedEngine at K=1 stays within 10% of the plain-Engine baseline
//      (the facade adds no measurable overhead), and
//   2. K=4 gives ≥ 2× the aggregate throughput of K=1.
//
//   ./build/micro_sharded_update [--smoke] [--zipf S]
//
// --smoke (or IVME_SMOKE=1) shrinks the workload for CI. --zipf S sets the
// Zipf exponent of the base data's join-key distribution (default 1.1;
// higher = more skew concentrated on fewer keys) and is recorded in the
// JSON rows.
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/sharded_engine.h"
#include "src/workload/driver.h"
#include "src/workload/generator.h"
#include "src/workload/update_stream.h"

using namespace ivme;

namespace {

struct Config {
  size_t base_tuples = 20000;    // per relation, before preprocessing
  size_t stream_length = 24000;  // updates applied per measurement
  size_t batch_size = 64;
};

struct Measurement {
  workload::DriveStats drive;
  Engine::Stats stats;
  size_t threads = 0;
};

// shards == 0: plain Engine (the unsharded PR 2 baseline code path).
Measurement Run(double eps, size_t shards, const Config& config, const std::vector<Tuple>& r,
                const std::vector<Tuple>& s, const std::vector<workload::Batch>& batches) {
  auto query = ConjunctiveQuery::Parse("Q(A, C) = R(A, B), S(B, C)");
  IVME_CHECK(query.has_value());
  Measurement out;
  if (shards == 0) {
    EngineOptions options;
    options.epsilon = eps;
    options.mode = EvalMode::kDynamic;
    Engine engine(*query, options);
    for (const Tuple& t : r) engine.LoadTuple("R", t, 1);
    for (const Tuple& t : s) engine.LoadTuple("S", t, 1);
    engine.Preprocess();
    out.drive = workload::DriveBatches(engine, batches);
    out.stats = engine.GetStats();
    std::string error;
    IVME_CHECK_MSG(engine.CheckInvariants(&error), "invariants after stream: " << error);
    return out;
  }
  ShardedEngineOptions options;
  options.engine.epsilon = eps;
  options.engine.mode = EvalMode::kDynamic;
  options.num_shards = shards;
  ShardedEngine engine(*query, options);
  for (const Tuple& t : r) engine.LoadTuple("R", t, 1);
  for (const Tuple& t : s) engine.LoadTuple("S", t, 1);
  engine.Preprocess();
  out.drive = workload::DriveBatches(engine, batches);
  out.stats = engine.GetStats();
  out.threads = engine.num_threads();
  std::string error;
  IVME_CHECK_MSG(engine.CheckInvariants(&error), "invariants after stream: " << error);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Config config;
  const bool smoke = bench::SmokeFromArgs(argc, argv);
  const uint64_t seed = bench::SeedFromArgs(argc, argv, 1);
  const double zipf = bench::DoubleFromArgs(argc, argv, "--zipf", 1.1);
  if (smoke) {
    config.base_tuples = 2000;
    config.stream_length = 3000;
  }

  // Zipf-skewed base data (same family as micro_batch_update): a few heavy
  // join keys plus a long light tail, on the shared key B.
  const auto r = workload::ZipfTuples(config.base_tuples, 2, 1, 2000, zipf, 4000000, seed);
  const auto s = workload::ZipfTuples(config.base_tuples, 2, 0, 2000, zipf, 4000000, seed + 1);

  // Ingestion stream on R: a small hot set takes a share of the inserts
  // (repeated records consolidate), the rest draw a fresh A against a
  // degree-weighted B (live join keys keep receiving traffic, so updates
  // land on keys with real light parts); 40% of steps delete a live tuple.
  // The handful of whale keys (Zipf ranks 0-7) are excluded from the fresh
  // draw: they are heavy under every shard count, so all engines handle
  // them on the O(1) heavy path and they only dilute the comparison.
  std::vector<Tuple> hot;
  {
    Rng hot_rng(seed + 6);
    for (int i = 0; i < 16; ++i) {
      hot.push_back(Tuple{hot_rng.Range(0, 4000000), hot_rng.Range(8, 2000)});
    }
  }
  const auto fresh = [&hot, &r](Rng& rng) {
    if (rng.Chance(0.3)) return hot[rng.Below(hot.size())];
    // Degree-weighted join key: the B of a random base tuple.
    Value b = 0;
    do {
      b = r[rng.Below(r.size())][1];
    } while (b < 8);
    return Tuple{rng.Range(0, 4000000), b};
  };
  const auto stream =
      workload::MixedStream("R", r, config.stream_length, 0.4, fresh, seed + 10);
  const auto batches = workload::ChunkStream(stream, config.batch_size);

  const std::vector<double> epsilons = {0.0, 0.5, 1.0};
  const std::vector<size_t> shard_counts = {0, 1, 2, 4, 8};  // 0 = plain Engine

  bench::JsonReporter json("micro_sharded_update");
  json.SetSeed(seed);
  std::printf("sharded vs unsharded batched maintenance, Q(A,C) = R(A,B), S(B,C); "
              "N0=%zu per relation, %zu updates, batch %zu, zipf=%.2f\n",
              config.base_tuples, config.stream_length, config.batch_size, zipf);
  bench::PrintRule();
  std::printf("%-8s %-10s %12s %14s %12s %8s %8s %8s\n", "eps", "engine", "us/update",
              "updates/s", "net entries", "minor", "major", "threads");
  bench::PrintRule();

  bool k1_ok = true, k4_ok = true;
  for (const double eps : epsilons) {
    double unsharded_tput = 0, k1_tput = 0;
    for (const size_t shards : shard_counts) {
      const Measurement m = Run(eps, shards, config, r, s, batches);
      const double tput = m.drive.Throughput();
      const double us_per_update = 1e6 / tput;
      if (shards == 0) unsharded_tput = tput;
      if (shards == 1) k1_tput = tput;
      const std::string label = shards == 0 ? "unsharded" : "K=" + std::to_string(shards);
      std::printf("%-8.2f %-10s %12.3f %14.0f %12zu %8zu %8zu %8zu", eps, label.c_str(),
                  us_per_update, tput, m.drive.applied, m.stats.minor_rebalances,
                  m.stats.major_rebalances, m.threads);
      if (shards == 1) std::printf("  (%.2fx vs unsharded)", tput / unsharded_tput);
      if (shards > 1) std::printf("  (%.2fx vs K=1)", tput / k1_tput);
      std::printf("\n");
      if (eps == 0.5 && shards == 1 && tput < 0.9 * unsharded_tput) k1_ok = false;
      if (eps == 0.5 && shards == 4 && tput < 2.0 * k1_tput) k4_ok = false;
      json.Add("eps" + std::to_string(eps).substr(0, 3) + "/" + label,
               {{"epsilon", eps},
                {"zipf", zipf},
                {"shards", static_cast<double>(shards)},
                {"threads", static_cast<double>(m.threads)},
                {"batch_size", static_cast<double>(config.batch_size)},
                {"us_per_update", us_per_update},
                {"updates_per_sec", tput},
                {"net_entries", static_cast<double>(m.drive.applied)},
                {"speedup_vs_k1", shards >= 1 ? tput / k1_tput : 0.0},
                {"minor_rebalances", static_cast<double>(m.stats.minor_rebalances)},
                {"major_rebalances", static_cast<double>(m.stats.major_rebalances)}});
    }
    bench::PrintRule();
  }
  std::printf("shape check (K=1 within 10%% of unsharded at eps=0.5): %s%s\n",
              bench::Verdict(k1_ok), smoke ? " (advisory under --smoke)" : "");
  std::printf("shape check (K=4 >= 2x K=1 at eps=0.5): %s%s\n", bench::Verdict(k4_ok),
              smoke ? " (advisory under --smoke)" : "");
  // The smoke workload is small enough for scheduler noise to flip the
  // ratios; only the full-size run treats the shape checks as failures.
  return ((k1_ok && k4_ok) || smoke) ? 0 : 1;
}
