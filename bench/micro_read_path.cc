// Read-path micro-benchmark: quiescent fast lanes vs the always-versioned
// snapshot path, and parallel snapshot enumeration across shard counts
// (ARCHITECTURE.md §11).
//
// Part 1 — lanes (K = 1, free-root Q(A,B,C) = R(A,B), S(B,C)):
//   direct     serving disabled; Enumerate() resolves ReadMode::kDirect and
//              reads live heads with no visibility checks at all.
//   fast_pin   serving enabled, catalog quiescent (no pins below the
//              published epoch, all retire logs empty): a pin at the
//              published epoch resolves ReadMode::kFastPin.
//   versioned  a stalled pin holds epoch P while delete/reinsert churn runs
//              on top, leaving real zombies and version records; the drain
//              at P resolves ReadMode::kVersioned and pays per-entry
//              visibility checks. Content at P equals the quiescent content
//              (the churn is net-zero), so all three rows drain the same
//              logical result — the delta is pure lane overhead.
//   fast_pin and versioned samples interleave round-by-round in one binary
//   so drift cannot masquerade as a lane effect; read-lane counters verify
//   each sample took the lane it claims to measure.
//
// Part 2 — parallel drains (K ∈ {1, 2, 4}, num_threads = K): full drains of
// the same data via DrainMode::kLazy vs DrainMode::kParallel.
//
// Shape checks:
//   1. fast_pin throughput ≥ 1.2× versioned (enforced without --smoke), and
//   2. parallel K=4 throughput ≥ 1.5× K=1 (enforced only on ≥ 4 hardware
//      threads — a single-core host timeshares the shard drains).
//
//   ./build/micro_read_path [--smoke] [--seed N]
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/counters.h"
#include "src/common/rng.h"
#include "src/core/sharded_catalog.h"

using namespace ivme;

namespace {

struct Config {
  size_t base_tuples = 20000;  // per relation
  /// Delete/reinsert targets per churn cycle. Defaults to the whole of R:
  /// at the pinned epoch every entry then carries a version chain and every
  /// reinserted generation is a zombie the versioned lane must skip — the
  /// workload the lane split exists for.
  size_t churn_tuples = 20000;
  size_t churn_cycles = 5;        // zombie generations under the stalled pin
  size_t rounds = 6;              // interleaved fast/versioned sample pairs
  size_t drains_per_sample = 4;   // consecutive drains per lane sample
  size_t drain_iters = 3;         // full drains per parallel sample
};

/// Sparse join (join-key degree ~ 1): the result has about one row per
/// stored entry, so per-entry visibility work is per-row and the lane
/// split is what the drain actually measures. A high-degree join would
/// amortize the per-entry checks over many output rows and hide the lanes
/// behind tuple materialization.
void LoadBase(ShardedCatalog* catalog, const Config& config, uint64_t seed,
              std::vector<Tuple>* churn_targets) {
  Rng rng(seed);
  const size_t domain = config.base_tuples;
  for (size_t i = 0; i < config.base_tuples; ++i) {
    const Tuple r{rng.Range(0, 4000000), static_cast<Value>(rng.Below(domain))};
    catalog->LoadTuple("R", r, 1);
    catalog->LoadTuple("S", Tuple{static_cast<Value>(rng.Below(domain)), rng.Range(0, 4000000)},
                       1);
    if (churn_targets != nullptr && churn_targets->size() < config.churn_tuples) {
      churn_targets->push_back(r);
    }
  }
}

void RegisterJoin(ShardedCatalog* catalog) {
  EngineOptions engine;
  engine.epsilon = 0.5;
  engine.mode = EvalMode::kDynamic;
  engine.rebalance_mode = RebalanceMode::kIncremental;
  std::string why;
  const auto q = ConjunctiveQuery::Parse("Q(A, B, C) = R(A, B), S(B, C)");
  IVME_CHECK(q.has_value());
  IVME_CHECK_MSG(catalog->RegisterQuery("join", *q, engine, &why), why);
}

size_t Drain(MergedEnumerator* it) {
  RowBuffer rows;
  size_t total = 0;
  for (;;) {
    rows.Clear();
    const size_t got = it->FillBatch(&rows, 1024);
    total += got;
    if (got < 1024) break;
  }
  return total;
}

struct LaneSample {
  double seconds = 0;
  size_t rows = 0;
  size_t drains = 0;
  double RowsPerSec() const { return static_cast<double>(rows) / seconds; }
};

}  // namespace

int main(int argc, char** argv) {
  Config config;
  const bool smoke = bench::SmokeFromArgs(argc, argv);
  const uint64_t seed = bench::SeedFromArgs(argc, argv, 7);
  if (smoke) {
    config.base_tuples = 2000;
    config.churn_tuples = 2000;
    config.rounds = 2;
    config.drains_per_sample = 2;
    config.drain_iters = 2;
  }
  const unsigned cores = std::thread::hardware_concurrency();

  bench::JsonReporter json("micro_read_path");
  json.SetSeed(seed);
  std::printf("read path, Q(A,B,C) = R(A,B), S(B,C); N0=%zu per relation, churn %zu x %zu, "
              "%zu rounds, %u hardware threads\n",
              config.base_tuples, config.churn_tuples, config.churn_cycles, config.rounds,
              cores);
  bench::PrintRule();

  // --- Part 1: read lanes, K = 1 ------------------------------------------
  LaneSample direct, fast_pin, versioned;
  {
    ShardedCatalogOptions options;
    options.num_shards = 1;
    ShardedCatalog catalog(options);
    RegisterJoin(&catalog);
    std::vector<Tuple> churn;
    LoadBase(&catalog, config, seed, &churn);
    catalog.Preprocess();

    // Serving disabled: ReadMode::kDirect.
    ResetCounters();
    for (size_t i = 0; i < config.rounds * config.drains_per_sample; ++i) {
      bench::Timer one;
      auto it = catalog.Enumerate("join");
      direct.rows += Drain(it.get());
      direct.seconds += one.Seconds();
      ++direct.drains;
    }
    IVME_CHECK_MSG(AggregateCounters().read_fast_lane == config.rounds * config.drains_per_sample,
                   "direct drains did not take the fast lane");

    catalog.EnableServing();
    // Two idle boundaries converge fast_epoch to the published epoch
    // (retires move pending → limbo → free across two boundaries).
    catalog.ApplyBatch(UpdateBatch{});
    catalog.ApplyBatch(UpdateBatch{});

    const size_t baseline_rows = direct.rows / direct.drains;
    for (size_t round = 0; round < config.rounds; ++round) {
      // Fast lane: pin the published epoch of a quiescent catalog.
      ResetCounters();
      {
        ReadSnapshot snapshot = catalog.AcquireSnapshot();
        for (size_t d = 0; d < config.drains_per_sample; ++d) {
          bench::Timer one;
          auto it = catalog.EnumerateAt("join", snapshot.epoch());
          const size_t rows = Drain(it.get());
          fast_pin.seconds += one.Seconds();
          fast_pin.rows += rows;
          ++fast_pin.drains;
          IVME_CHECK_MSG(rows == baseline_rows, "fast-lane drain lost rows");
        }
      }
      IVME_CHECK_MSG(AggregateCounters().read_fast_lane == config.drains_per_sample,
                     "quiescent pinned drain did not take the fast lane");

      // Versioned lane: stall a pin at P, churn net-zero delete/reinsert
      // cycles on top (real zombies + version records), then drain at P.
      ReadSnapshot stalled = catalog.AcquireSnapshot();
      const Epoch pinned = stalled.epoch();
      for (size_t cycle = 0; cycle < config.churn_cycles; ++cycle) {
        UpdateBatch deletes, reinserts;
        for (const Tuple& t : churn) deletes.push_back(Update{"R", t, -1});
        for (const Tuple& t : churn) reinserts.push_back(Update{"R", t, 1});
        catalog.ApplyBatch(deletes);
        catalog.ApplyBatch(reinserts);
      }
      ResetCounters();
      for (size_t d = 0; d < config.drains_per_sample; ++d) {
        bench::Timer one;
        auto it = catalog.EnumerateAt("join", pinned);
        const size_t rows = Drain(it.get());
        versioned.seconds += one.Seconds();
        versioned.rows += rows;
        ++versioned.drains;
        IVME_CHECK_MSG(rows == baseline_rows, "versioned drain at the pinned epoch lost rows");
      }
      IVME_CHECK_MSG(AggregateCounters().read_versioned == config.drains_per_sample,
                     "churned pinned drain did not take the versioned lane");
      stalled.Release();
      catalog.ApplyBatch(UpdateBatch{});
      catalog.ApplyBatch(UpdateBatch{});  // flatten: next round is fast again
    }
    IVME_CHECK_MSG(catalog.RetiredObjects() == 0, "retired objects leaked");
  }

  std::printf("%-12s %10s %14s %14s %12s\n", "lane", "drains", "rows/drain", "ms/drain",
              "rows/s");
  bench::PrintRule();
  const double fast_vs_versioned = fast_pin.RowsPerSec() / versioned.RowsPerSec();
  const std::pair<const char*, const LaneSample*> lanes[] = {
      {"direct", &direct}, {"fast_pin", &fast_pin}, {"versioned", &versioned}};
  for (const auto& [name, sample] : lanes) {
    std::printf("%-12s %10zu %14zu %14.2f %12.0f\n", name, sample->drains,
                sample->rows / sample->drains,
                sample->seconds * 1e3 / static_cast<double>(sample->drains),
                sample->RowsPerSec());
    json.Add(std::string("lane/") + name,
             {{"hardware_threads", static_cast<double>(cores)},
              {"drains", static_cast<double>(sample->drains)},
              {"rows_per_drain", static_cast<double>(sample->rows / sample->drains)},
              {"rows_per_sec", sample->RowsPerSec()}});
  }
  bench::PrintRule();
  std::printf("fast_pin vs versioned: %.2fx\n\n", fast_vs_versioned);

  // --- Part 2: parallel drains, K in {1, 2, 4} -----------------------------
  std::printf("%-6s %-10s %10s %14s %12s\n", "K", "mode", "drains", "ms/drain", "rows/s");
  bench::PrintRule();
  double k1_parallel = 0, k4_parallel = 0;
  size_t reference_rows = 0;
  for (const size_t shards : {size_t{1}, size_t{2}, size_t{4}}) {
    ShardedCatalogOptions options;
    options.num_shards = shards;
    options.num_threads = shards;  // force a pool even on a single-core host
    ShardedCatalog catalog(options);
    RegisterJoin(&catalog);
    LoadBase(&catalog, config, seed, nullptr);
    catalog.Preprocess();
    for (const DrainMode mode : {DrainMode::kLazy, DrainMode::kParallel}) {
      const char* mode_name = mode == DrainMode::kLazy ? "lazy" : "parallel";
      size_t rows = 0;
      Drain(catalog.Enumerate("join", mode).get());  // warm-up
      bench::Timer timer;
      for (size_t i = 0; i < config.drain_iters; ++i) {
        rows += Drain(catalog.Enumerate("join", mode).get());
      }
      const double seconds = timer.Seconds();
      const double rate = static_cast<double>(rows) / seconds;
      if (reference_rows == 0) reference_rows = rows / config.drain_iters;
      IVME_CHECK_MSG(rows / config.drain_iters == reference_rows,
                     "shard count changed the drained row count");
      if (mode == DrainMode::kParallel) {
        if (shards == 1) k1_parallel = rate;
        if (shards == 4) k4_parallel = rate;
      }
      std::printf("%-6zu %-10s %10zu %14.2f %12.0f\n", shards, mode_name, config.drain_iters,
                  seconds * 1e3 / static_cast<double>(config.drain_iters), rate);
      json.Add("parallel/K" + std::to_string(shards) + "/" + mode_name,
               {{"shards", static_cast<double>(shards)},
                {"hardware_threads", static_cast<double>(cores)},
                {"rows_per_drain", static_cast<double>(rows / config.drain_iters)},
                {"rows_per_sec", rate}});
    }
  }
  bench::PrintRule();

  const bool fast_ok = fast_vs_versioned >= 1.2;
  const bool parallel_ok = k4_parallel >= 1.5 * k1_parallel;
  const bool enforce_parallel = !smoke && cores >= 4;
  const char* fast_qualifier = smoke ? " (advisory under --smoke)" : "";
  const char* parallel_qualifier =
      smoke ? " (advisory under --smoke)" : (cores < 4 ? " (advisory: < 4 cores)" : "");
  std::printf("shape check (fast_pin >= 1.2x versioned): %s%s\n", bench::Verdict(fast_ok),
              fast_qualifier);
  std::printf("shape check (parallel K=4 >= 1.5x K=1): %s%s\n", bench::Verdict(parallel_ok),
              parallel_qualifier);
  json.Add("shape", {{"fast_vs_versioned", fast_vs_versioned},
                     {"parallel_k4_vs_k1", k4_parallel / k1_parallel},
                     {"hardware_threads", static_cast<double>(cores)},
                     {"fast_ok", fast_ok ? 1.0 : 0.0},
                     {"parallel_ok", parallel_ok ? 1.0 : 0.0}});
  const bool pass = (fast_ok || smoke) && (parallel_ok || !enforce_parallel);
  return pass ? 0 : 1;
}
