// Ablation for Proposition 21's materialization strategy: the InsideOut
// pre-aggregation step (aggregate each child onto output ∪ join-key
// variables before joining) versus plain nested-loop joins over the raw
// children. On data with wide bound-variable fanout the naive plan
// enumerates every combination of aggregated-away values and loses the
// complexity guarantee.
#include "bench/bench_common.h"
#include "src/common/counters.h"
#include "src/common/rng.h"
#include "src/core/materialize.h"

using namespace ivme;
using namespace ivme::bench;

namespace {

double MeasurePreprocess(const ConjunctiveQuery& q,
                         const std::vector<std::pair<std::string, std::vector<Tuple>>>& data,
                         bool inside_out, uint64_t* ops) {
  SetMaterializeInsideOut(inside_out);
  EngineOptions opts;
  opts.epsilon = 0.5;
  opts.mode = EvalMode::kStatic;
  Engine engine(q, opts);
  for (const auto& [name, tuples] : data) {
    for (const auto& t : tuples) engine.LoadTuple(name, t, 1);
  }
  ResetCounters();
  Timer timer;
  engine.Preprocess();
  *ops = AggregateCounters().materialize_steps;
  const double seconds = timer.Seconds();
  SetMaterializeInsideOut(true);
  return seconds;
}

}  // namespace

int main(int argc, char** argv) {
  // Example 19's query; R and S have wide D/E-fanout per (A,B), T and U
  // wide F/G-fanout per (A,C): exactly the variables InsideOut aggregates
  // away before the indicator/All-view joins.
  const auto q =
      *ConjunctiveQuery::Parse("Q(C, D, E, F) = R(A, B, D), S(A, B, E), T(A, C, F), U(A, C, G)");
  Rng rng(SeedFromArgs(argc, argv, 5));
  const Value groups = 20, fanout = 400;
  std::vector<std::pair<std::string, std::vector<Tuple>>> data(4);
  data[0].first = "R";
  data[1].first = "S";
  data[2].first = "T";
  data[3].first = "U";
  for (Value g = 0; g < groups; ++g) {
    const Value a = g % 4, b = g, c = g;
    for (Value f = 0; f < fanout; ++f) {
      data[0].second.push_back(Tuple{a, b, f});
      data[1].second.push_back(Tuple{a, b, 100000 + f});
      data[2].second.push_back(Tuple{a, c, 200000 + f});
      data[3].second.push_back(Tuple{a, c, 300000 + f});
    }
  }
  size_t n = 0;
  for (const auto& [name, tuples] : data) n += tuples.size();

  std::printf("Materialization ablation — Example 19 query, N=%zu, fanout=%lld per join key\n",
              n, static_cast<long long>(fanout));
  PrintRule();
  uint64_t ops_with = 0, ops_without = 0;
  const double with_s = MeasurePreprocess(q, data, /*inside_out=*/true, &ops_with);
  const double without_s = MeasurePreprocess(q, data, /*inside_out=*/false, &ops_without);
  std::printf("%-34s | %12s | %14s\n", "strategy", "time(s)", "materialize ops");
  PrintRule();
  std::printf("%-34s | %12.3f | %14llu\n", "InsideOut aggregation (paper)", with_s,
              static_cast<unsigned long long>(ops_with));
  std::printf("%-34s | %12.3f | %14llu\n", "naive nested-loop (ablated)", without_s,
              static_cast<unsigned long long>(ops_without));
  PrintRule();
  const double speedup = without_s / std::max(with_s, 1e-9);
  const double ops_ratio =
      static_cast<double>(ops_without) / static_cast<double>(std::max<uint64_t>(ops_with, 1));
  std::printf("speedup %.1fx wall, %.1fx operations — InsideOut pays off: %s\n", speedup,
              ops_ratio, Verdict(ops_ratio > 3.0));
  return 0;
}
