// Corollary 9: for a δi-hierarchical query the amortized update time is
// O(N^{iε}) — the exponent grows with the delta rank. Measured on the
// paper's witness family Q(Y0..Yi) = R0(X,Y0), ..., Ri(X,Yi) with all
// X-keys light at degree ≈ θ (worst case: an update to R0 joins the ≈θ
// matching tuples of every other relation). Slopes fitted on operation
// counters at ε = 0.25 over an N-ladder.
#include <string>

#include "bench/bench_common.h"
#include "src/common/counters.h"
#include "src/common/rng.h"

using namespace ivme;
using namespace ivme::bench;

namespace {

uint64_t g_seed = 23;  // --seed

std::string StarQueryText(int i) {
  std::string head = "Q(";
  std::string body;
  for (int j = 0; j <= i; ++j) {
    if (j > 0) {
      head += ", ";
      body += ", ";
    }
    head += "Y" + std::to_string(j);
    body += "R" + std::to_string(j) + "(X, Y" + std::to_string(j) + ")";
  }
  return head + ") = " + body;
}

double MeasureUpdateSlope(int i, double eps) {
  const auto query = *ConjunctiveQuery::Parse(StarQueryText(i));
  std::vector<std::pair<double, double>> points;
  for (const size_t t : {2000ul, 4000ul, 8000ul}) {  // tuples per relation
    const double n_est = static_cast<double>((static_cast<size_t>(i) + 1) * t);
    const size_t degree = std::max<size_t>(
        1, static_cast<size_t>(0.8 * std::pow(1.5 * n_est, eps)));
    const size_t keys = t / degree;

    EngineOptions opts;
    opts.epsilon = eps;
    opts.mode = EvalMode::kDynamic;
    Engine engine(query, opts);
    Value partner = 1000000;
    for (int j = 0; j <= i; ++j) {
      std::vector<std::pair<Tuple, Mult>> tuples;
      for (size_t k = 0; k < keys; ++k) {
        for (size_t d = 0; d < degree; ++d) {
          tuples.push_back({Tuple{static_cast<Value>(k), partner++}, 1});
        }
      }
      engine.Load("R" + std::to_string(j), tuples);
    }
    engine.Preprocess();

    Rng rng(g_seed);
    ResetCounters();
    const size_t pairs = 200;
    for (size_t p = 0; p < pairs; ++p) {
      const Value key = static_cast<Value>(rng.Below(keys));
      const Tuple tup{key, static_cast<Value>(9000000 + p)};
      engine.ApplyUpdate("R0", tup, 1);
      engine.ApplyUpdate("R0", tup, -1);
    }
    const double ops = static_cast<double>(AggregateCounters().delta_steps +
                                           AggregateCounters().materialize_steps) /
                       (2.0 * pairs);
    points.push_back({static_cast<double>((static_cast<size_t>(i) + 1) * keys * degree),
                      ops + 1.0});
  }
  return FitLogLogSlope(points);
}

}  // namespace

int main(int argc, char** argv) {
  g_seed = SeedFromArgs(argc, argv, 23);
  const double eps = 0.25;
  std::printf("Corollary 9: update exponent vs delta rank — star family "
              "Q(Y0..Yi)=R0(X,Y0),...,Ri(X,Yi), eps=%.2f\n", eps);
  PrintRule();
  std::printf("%3s | %12s | %12s | %6s\n", "i", "update slope", "pred (i*eps)", "ok");
  PrintRule();
  bool all_ok = true;
  for (int i = 1; i <= 3; ++i) {
    const double slope = MeasureUpdateSlope(i, eps);
    const double pred = i * eps;
    const bool ok = slope < pred + 0.15 && slope > pred - 0.3;
    all_ok = all_ok && ok;
    std::printf("%3d | %12.2f | %12.2f | %6s\n", i, slope, pred, Verdict(ok));
  }
  PrintRule();
  std::printf("update cost exponent grows linearly with the delta rank: %s\n",
              Verdict(all_ok));
  return all_ok ? 0 : 1;
}
