// Batched vs single-tuple update throughput: the same skewed update stream
// applied through Engine::ApplyUpdate (batch size 1) and Engine::ApplyBatch
// at batch sizes {8, 64, 512}, across ε ∈ {0, 0.5, 1}.
//
// The stream models production-style ingestion: a hot set of tuples
// receives most inserts (repeated records merge into weighted net deltas),
// deletes target live tuples (in-batch insert/delete pairs cancel), and the
// base data is Zipf-skewed so the heavy/light machinery is engaged. The
// batch path wins by (a) net-delta consolidation — fewer view-tree passes —
// and (b) deferred rebalancing — one threshold sweep per relation per batch
// and one major-rebalance decision per batch.
//
// Shape check: batch size 64 must give ≥ 1.5× the amortized per-update
// throughput of batch size 1 at ε = 0.5.
//
//   ./build/micro_batch_update [--smoke] [--insert-only]
//
// --smoke (or IVME_SMOKE=1) shrinks the workload for CI. --insert-only
// switches the stream to pure inserts and declares both relations
// insert_only, exercising the monotone maintenance fast paths (no
// below-zero validation, no M-halving, monotone indicators); the JSON rows
// record the mode in their "insert_only" field.
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/workload/generator.h"
#include "src/workload/update_stream.h"

using namespace ivme;

namespace {

struct Config {
  size_t base_tuples = 20000;    // per relation, before preprocessing
  size_t stream_length = 24000;  // updates applied per measurement
};

struct Measurement {
  double seconds = 0;
  size_t net_entries = 0;  // consolidated entries that reached the views
  Engine::Stats stats;
};

Measurement Run(double eps, const std::vector<Tuple>& r, const std::vector<Tuple>& s,
                const std::vector<workload::Update>& stream, size_t batch_size,
                bool insert_only) {
  auto query = ConjunctiveQuery::Parse(
      insert_only ? "Q(A, C) = insert_only R(A, B), insert_only S(B, C)"
                  : "Q(A, C) = R(A, B), S(B, C)");
  IVME_CHECK(query.has_value());
  EngineOptions options;
  options.epsilon = eps;
  options.mode = EvalMode::kDynamic;
  Engine engine(*query, options);
  for (const Tuple& t : r) engine.LoadTuple("R", t, 1);
  for (const Tuple& t : s) engine.LoadTuple("S", t, 1);
  engine.Preprocess();
  Measurement out;
  bench::Timer timer;
  if (batch_size <= 1) {
    for (const auto& u : stream) engine.ApplyUpdate(u.relation, u.tuple, u.mult);
    out.seconds = timer.Seconds();
    out.net_entries = stream.size();
  } else {
    const auto batches = workload::ChunkStream(stream, batch_size);
    timer.Reset();
    for (const auto& batch : batches) {
      const auto result = engine.ApplyBatch(batch);
      out.net_entries += result.applied;
    }
    out.seconds = timer.Seconds();
  }
  out.stats = engine.GetStats();
  std::string error;
  IVME_CHECK_MSG(engine.CheckInvariants(&error), "invariants after stream: " << error);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Config config;
  const bool smoke = bench::SmokeFromArgs(argc, argv);
  const bool insert_only = bench::FlagFromArgs(argc, argv, "--insert-only");
  const uint64_t seed = bench::SeedFromArgs(argc, argv, 1);
  if (smoke) {
    config.base_tuples = 2000;
    config.stream_length = 3000;
  }

  // Zipf-skewed base data: a few heavy join keys plus a long light tail.
  const auto r = workload::ZipfTuples(config.base_tuples, 2, 1, 2000, 1.1, 4000000, seed);
  const auto s = workload::ZipfTuples(config.base_tuples, 2, 0, 2000, 1.1, 4000000, seed + 1);

  // Hot-set skewed stream on R: 90% of inserts hit 16 hot tuples (so
  // repeated records merge), the rest draw fresh uniform tuples; 40% of
  // steps delete a live tuple.
  std::vector<Tuple> hot;
  {
    Rng hot_rng(seed + 6);
    for (int i = 0; i < 16; ++i) {
      hot.push_back(Tuple{hot_rng.Range(0, 4000000), hot_rng.Range(0, 2000)});
    }
  }
  const auto fresh = [&hot](Rng& rng) {
    if (rng.Chance(0.9)) return hot[rng.Below(hot.size())];
    return Tuple{rng.Range(0, 4000000), rng.Range(0, 2000)};
  };
  // --insert-only drops the delete fraction to zero: every step inserts, so
  // the stream is valid against insert_only-declared relations.
  const auto stream = workload::MixedStream("R", r, config.stream_length,
                                            insert_only ? 0.0 : 0.4, fresh, seed + 10);

  const std::vector<double> epsilons = {0.0, 0.5, 1.0};
  const std::vector<size_t> batch_sizes = {1, 8, 64, 512};

  bench::JsonReporter json("micro_batch_update");
  json.SetSeed(seed);
  std::printf("batched vs single-tuple maintenance, Q(A,C) = R(A,B), S(B,C); "
              "N0=%zu per relation, %zu updates%s\n",
              config.base_tuples, config.stream_length,
              insert_only ? " (insert-only: pure inserts, relations declared insert_only)"
                          : "");
  bench::PrintRule();
  std::printf("%-8s %-6s %12s %14s %14s %10s %8s %8s\n", "eps", "batch", "us/update",
              "updates/s", "net entries", "consolid.", "minor", "major");
  bench::PrintRule();

  bool shape_ok = true;
  for (const double eps : epsilons) {
    double base_updates_per_sec = 0;
    for (const size_t batch_size : batch_sizes) {
      const Measurement m = Run(eps, r, s, stream, batch_size, insert_only);
      const double us_per_update =
          m.seconds * 1e6 / static_cast<double>(config.stream_length);
      const double updates_per_sec = static_cast<double>(config.stream_length) / m.seconds;
      if (batch_size == 1) base_updates_per_sec = updates_per_sec;
      const double speedup = updates_per_sec / base_updates_per_sec;
      const double consolidation =
          static_cast<double>(config.stream_length) / static_cast<double>(m.net_entries);
      std::printf("%-8.2f %-6zu %12.3f %14.0f %14zu %9.2fx %8zu %8zu", eps, batch_size,
                  us_per_update, updates_per_sec, m.net_entries, consolidation,
                  m.stats.minor_rebalances, m.stats.major_rebalances);
      if (batch_size > 1) std::printf("  (%.2fx vs b=1)", speedup);
      std::printf("\n");
      if (eps == 0.5 && batch_size == 64 && speedup < 1.5) shape_ok = false;
      json.Add("eps" + std::to_string(eps).substr(0, 3) + "/b" + std::to_string(batch_size),
               {{"epsilon", eps},
                {"insert_only", insert_only ? 1.0 : 0.0},
                {"batch_size", static_cast<double>(batch_size)},
                {"us_per_update", us_per_update},
                {"updates_per_sec", updates_per_sec},
                {"net_entries", static_cast<double>(m.net_entries)},
                {"consolidation", consolidation},
                {"speedup_vs_b1", speedup},
                {"minor_rebalances", static_cast<double>(m.stats.minor_rebalances)},
                {"major_rebalances", static_cast<double>(m.stats.major_rebalances)}});
    }
    bench::PrintRule();
  }
  std::printf("shape check (batch 64 >= 1.5x batch 1 at eps=0.5): %s%s\n",
              bench::Verdict(shape_ok), smoke ? " (advisory under --smoke)" : "");
  // The smoke workload is small enough for scheduler noise to flip the
  // ratio; only the full-size run treats the shape check as a failure.
  return (shape_ok || smoke) ? 0 : 1;
}
