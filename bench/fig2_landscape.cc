// Figure 2: the static+dynamic landscape across query classes. For each
// class the paper places prior work at one point; IVM^ε covers the whole
// line. We measure preprocessing, amortized update, and delay at two
// database sizes (N and 4N) and report the growth ratio per metric — the
// empirical analogue of the complexity entries (ratio ≈ 4^exponent):
//
//   q-hierarchical:   O(N)/O(1)/O(1)        (recovers [10, 25])
//   free-connex δ1:   O(N)/O(N^ε)/O(N^{1−ε})
//   hierarchical w=2: O(N^{1+ε})/O(N^ε)/O(N^{1−ε})
//   + baselines: first-order IVM [16] (O(1) delay, up-to-O(N) updates) and
//     naive recompute (O(N^w) refresh, O(1) delay).
#include "bench/bench_common.h"
#include "src/baselines/first_order_ivm.h"
#include "src/baselines/naive_engine.h"
#include "src/common/rng.h"
#include <memory>
#include <set>

#include "src/workload/generator.h"
#include "src/workload/update_stream.h"

using namespace ivme;
using namespace ivme::bench;

namespace {

struct Measurement {
  double preprocess_s = 0;
  double update_us = 0;
  double delay_us = 0;
};

struct DataSet {
  std::vector<std::string> relations;
  std::vector<std::vector<std::pair<Tuple, Mult>>> tuples;
  std::vector<workload::Update> stream;
};

// Data for an arbitrary catalog query: join variables (those shared by two
// or more atoms) draw from a small key domain (≈ √n / 2 values, so join
// keys develop substantial degrees), the remaining variables from a wide
// domain. Relations over a single join variable are capped at half the key
// domain (they cannot hold more distinct tuples).
DataSet MakeData(const ConjunctiveQuery& q, size_t per_relation, uint64_t seed) {
  DataSet data;
  Rng rng(seed);
  const Value key_domain =
      std::max<Value>(8, static_cast<Value>(std::sqrt(static_cast<double>(per_relation)) / 2));
  constexpr Value kWide = 100000000;
  auto domain_of = [&](VarId v) {
    return q.AtomsOf(v).size() >= 2 ? key_domain : kWide;
  };
  auto draw = [&](const Schema& schema) {
    Tuple t;
    for (VarId v : schema) t.PushBack(rng.Below(static_cast<uint64_t>(domain_of(v))));
    return t;
  };
  for (const auto& name : q.RelationNames()) {
    const Schema* schema = nullptr;
    for (const auto& atom : q.atoms()) {
      if (atom.relation == name) schema = &atom.schema;
    }
    // Cap by the number of distinct tuples the schema supports.
    double capacity = 1;
    for (VarId v : *schema) capacity *= static_cast<double>(domain_of(v));
    const size_t target =
        std::min(per_relation, static_cast<size_t>(std::max(1.0, capacity / 2)));
    std::vector<std::pair<Tuple, Mult>> tuples;
    std::set<Tuple> seen;
    while (tuples.size() < target) {
      Tuple t = draw(*schema);
      if (seen.insert(t).second) tuples.push_back({t, 1});
    }
    data.relations.push_back(name);
    data.tuples.push_back(std::move(tuples));
  }
  // Update stream against the first relation: fresh-ish inserts + deletes.
  const Schema stream_schema = q.atom(0).schema;
  std::vector<Tuple> initial;
  for (const auto& [t, m] : data.tuples[0]) initial.push_back(t);
  auto domains = std::make_shared<std::vector<Value>>();
  for (VarId v : stream_schema) domains->push_back(domain_of(v));
  data.stream = workload::MixedStream(
      data.relations[0], initial, 4000, 0.45,
      [domains](Rng& r) {
        Tuple t;
        for (Value d : *domains) t.PushBack(r.Below(static_cast<uint64_t>(d)));
        return t;
      },
      seed + 1);
  return data;
}

Measurement MeasureEngine(const ConjunctiveQuery& q, const DataSet& data, double eps) {
  EngineOptions opts;
  opts.epsilon = eps;
  opts.mode = EvalMode::kDynamic;
  Engine engine(q, opts);
  for (size_t i = 0; i < data.relations.size(); ++i) {
    engine.Load(data.relations[i], data.tuples[i]);
  }
  Measurement m;
  Timer timer;
  engine.Preprocess();
  m.preprocess_s = timer.Seconds();
  Timer utimer;
  for (const auto& update : data.stream) {
    engine.ApplyUpdate(update.relation, update.tuple, update.mult);
  }
  m.update_us = utimer.Seconds() * 1e6 / static_cast<double>(data.stream.size());
  m.delay_us = MeasureDelay(engine, 1500).mean_us;
  return m;
}

Measurement MeasureFirstOrderIvm(const ConjunctiveQuery& q, const DataSet& data) {
  FirstOrderIvmEngine engine(q);
  for (size_t i = 0; i < data.relations.size(); ++i) {
    for (const auto& [t, mult] : data.tuples[i]) engine.LoadTuple(data.relations[i], t, mult);
  }
  Measurement m;
  Timer timer;
  engine.Preprocess();
  m.preprocess_s = timer.Seconds();
  Timer utimer;
  for (const auto& update : data.stream) {
    engine.ApplyUpdate(update.relation, update.tuple, update.mult);
  }
  m.update_us = utimer.Seconds() * 1e6 / static_cast<double>(data.stream.size());
  // Constant-delay scan of the materialized result.
  Timer dtimer;
  auto it = engine.Enumerate();
  Tuple t;
  Mult mult = 0;
  size_t count = 0;
  while (count < 1500 && it.Next(&t, &mult)) ++count;
  m.delay_us = count > 0 ? dtimer.Seconds() * 1e6 / static_cast<double>(count) : 0;
  return m;
}

Measurement MeasureNaive(const ConjunctiveQuery& q, const DataSet& data) {
  NaiveRecomputeEngine engine(q);
  for (size_t i = 0; i < data.relations.size(); ++i) {
    for (const auto& [t, mult] : data.tuples[i]) engine.LoadTuple(data.relations[i], t, mult);
  }
  Measurement m;
  Timer timer;
  engine.Refresh();
  m.preprocess_s = timer.Seconds();
  // One update = one O(1) base change + a full refresh on read. Use a
  // small stream: recompute cost dominates.
  const size_t updates = 2;
  Timer utimer;
  for (size_t i = 0; i < updates && i < data.stream.size(); ++i) {
    const auto& update = data.stream[i];
    engine.ApplyUpdate(update.relation, update.tuple, update.mult);
    engine.Refresh();  // the recompute IS the update cost
  }
  m.update_us = utimer.Seconds() * 1e6 / static_cast<double>(updates);
  Timer dtimer;
  auto it = engine.Enumerate();
  Tuple t;
  Mult mult = 0;
  size_t count = 0;
  while (count < 1500 && it->Next(&t, &mult)) ++count;
  m.delay_us = count > 0 ? dtimer.Seconds() * 1e6 / static_cast<double>(count) : 0;
  return m;
}

void Report(const char* row_label, const Measurement& small, const Measurement& big) {
  std::printf("%-34s | %9.3f x%5.1f | %9.2f x%5.1f | %9.2f x%5.1f\n", row_label,
              big.preprocess_s, big.preprocess_s / std::max(small.preprocess_s, 1e-9),
              big.update_us, big.update_us / std::max(small.update_us, 1e-9), big.delay_us,
              big.delay_us / std::max(small.delay_us, 1e-9));
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t seed = SeedFromArgs(argc, argv, 11);
  struct Row {
    const char* label;
    const char* text;
    double eps;
  };
  const std::vector<Row> rows = {
      {"q-hierarchical (w=1,d=0) e=0.5", "Q(A, B) = R(A, B), S(A)", 0.5},
      {"free-connex d1 (w=1) e=0.0", "Q(A) = R(A, B), S(B)", 0.0},
      {"free-connex d1 (w=1) e=0.5", "Q(A) = R(A, B), S(B)", 0.5},
      {"free-connex d1 (w=1) e=1.0", "Q(A) = R(A, B), S(B)", 1.0},
      {"hierarchical (w=2,d=1) e=0.0", "Q(A, C) = R(A, B), S(B, C)", 0.0},
      {"hierarchical (w=2,d=1) e=0.5", "Q(A, C) = R(A, B), S(B, C)", 0.5},
      {"hierarchical (w=2,d=1) e=1.0", "Q(A, C) = R(A, B), S(B, C)", 1.0},
      {"Ex19 (w=3,d=3) e=0.33", "Q(C, D, E, F) = R(A, B, D), S(A, B, E), T(A, C, F), U(A, C, G)",
       0.33},
  };

  const size_t n_small = 10000, n_big = 40000;
  std::printf("Figure 2 landscape: growth ratios from N=%zu to N=%zu tuples/relation\n",
              n_small, n_big);
  std::printf("(ratio ~ 4^exponent: flat ~1, linear ~4; columns: preprocess, update, delay)\n");
  PrintRule(100);
  std::printf("%-34s | %16s | %16s | %16s\n", "strategy", "preprocess(s)", "update(us)",
              "delay(us)");
  PrintRule(100);

  for (const auto& row : rows) {
    const auto q = *ConjunctiveQuery::Parse(row.text);
    const auto small = MeasureEngine(q, MakeData(q, n_small, seed), row.eps);
    const auto big = MeasureEngine(q, MakeData(q, n_big, seed), row.eps);
    Report(row.label, small, big);
  }
  {
    const auto q = *ConjunctiveQuery::Parse("Q(A, C) = R(A, B), S(B, C)");
    const auto small = MeasureFirstOrderIvm(q, MakeData(q, n_small, seed));
    const auto big = MeasureFirstOrderIvm(q, MakeData(q, n_big, seed));
    Report("baseline FO-IVM (w=2 query)", small, big);
    const auto nsmall = MeasureNaive(q, MakeData(q, n_small, seed));
    const auto nbig = MeasureNaive(q, MakeData(q, n_big, seed));
    Report("baseline naive recompute", nsmall, nbig);
  }
  PrintRule(100);
  std::printf("expected shapes: q-hierarchical rows stay ~flat in update/delay; FO-IVM has\n"
              "flat delay but growing updates; naive has flat delay but recompute-scale\n"
              "updates; IVM^eps interpolates with eps.\n");
  return 0;
}
