// Mutability declarations vs the all-dynamic default: the maintenance cost
// a relation pays for update generality it never uses.
//
// Two fig1-style scenarios over Q(A,C) = R(A,B), S(B,C), each run twice
// with identical data, stream, seed, and ε — once all-dynamic, once with
// the matching declaration — so the delta is purely the specialization:
//
//  - static-mix: S is 4× larger than R and never updated. Declaring it
//    `static` freezes its partition at the preprocessing θ (Definition 11
//    bands hold forever over frozen contents), so every major rebalance
//    skips S's strict repartition and the recompute of views that depend
//    only on S's light parts; S also stays out of indicator upkeep and the
//    incremental-rebalance queue. The stream grows R across doubling
//    thresholds and deletes back across the ⌊M/4⌋ floor, so majors fire in
//    both directions.
//  - insert-only: both relations only ever grow (the append-only setting of
//    the insert-only/insert-delete trade-off literature). Declaring them
//    `insert_only` drops below-zero validation, the M-halving check (N is
//    monotone), the heavy→light minor-rebalance direction, and — for keys
//    already light — the ∄L indicator recompute, which is monotone under
//    inserts.
//
// Shape check: the declared run must beat its all-dynamic twin's amortized
// per-update cost in both scenarios at some ε (the static mix by ≥10%).
// Both runs of a pair must enumerate identical result cardinalities.
//
//   ./build/micro_static_dynamic [--smoke] [--seed N]
//
// --smoke (or IVME_SMOKE=1) shrinks the workload for CI.
#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/rng.h"
#include "src/workload/generator.h"

using namespace ivme;
using namespace ivme::bench;

namespace {

struct Workload {
  std::vector<Tuple> r, s;
  std::vector<ivme::Update> stream;
};

// Static-mix scenario: Zipf base with |S| = 4·|R|, then a single-tuple
// stream that only touches R — growth across the doubling threshold, FIFO
// deletes back, and a prefix of the base deleted so N falls through ⌊M/4⌋.
Workload BuildStaticMix(size_t n0_r, size_t grow, uint64_t seed) {
  Workload w;
  const Value num_keys = static_cast<Value>(n0_r / 8 + 16);
  w.r = workload::ZipfTuples(n0_r, 2, 1, num_keys, 1.1, 4000000, seed);
  w.s = workload::ZipfTuples(4 * n0_r, 2, 0, num_keys, 1.1, 4000000, seed + 1);
  Rng rng(seed + 2);
  std::vector<ivme::Update> inserted;
  for (size_t i = 0; i < grow; ++i) {
    const Value key = static_cast<Value>(rng.Below(96));
    w.stream.push_back({"R", Tuple{static_cast<Value>(5000000 + i), key}, 1});
    inserted.push_back(w.stream.back());
  }
  for (const auto& u : inserted) w.stream.push_back({u.relation, u.tuple, -1});
  for (size_t i = 0; i < w.r.size() / 2; ++i) w.stream.push_back({"R", w.r[i], -1});
  return w;
}

// Insert-only scenario: both relations grow monotonically across doubling
// thresholds, no deletes anywhere in the stream. The inserts spread over a
// wide key domain so most join keys stay light — the regime where the
// monotone-∄L shortcut (a key that already has light tuples keeps having
// them under inserts) removes the per-update indicator recompute.
Workload BuildInsertOnly(size_t n0, size_t grow, uint64_t seed) {
  Workload w;
  const Value num_keys = static_cast<Value>(grow / 25 + 16);
  w.r = workload::ZipfTuples(n0, 2, 1, num_keys, 1.1, 4000000, seed);
  w.s = workload::ZipfTuples(n0, 2, 0, num_keys, 1.1, 4000000, seed + 1);
  Rng rng(seed + 2);
  for (size_t i = 0; i < grow; ++i) {
    const Value key = static_cast<Value>(rng.Below(static_cast<uint64_t>(num_keys)));
    if (rng.Chance(0.5)) {
      w.stream.push_back({"R", Tuple{static_cast<Value>(5000000 + i), key}, 1});
    } else {
      w.stream.push_back({"S", Tuple{key, static_cast<Value>(5000000 + i)}, 1});
    }
  }
  return w;
}

struct RunResult {
  double amort_us = 0;
  size_t result_tuples = 0;  ///< distinct result tuples after the stream
  Engine::Stats stats;
};

// One engine build + full stream replay; returns the amortized per-update
// cost. When `result` is non-null the run also checks invariants and
// enumerates the result into it (outside the timed region).
double RunOnce(const Workload& w, const std::string& query_text, double eps,
               RunResult* result) {
  const auto query = ConjunctiveQuery::Parse(query_text);
  IVME_CHECK_MSG(query.has_value(), "bad query " << query_text);
  EngineOptions opts;
  opts.epsilon = eps;
  opts.mode = EvalMode::kDynamic;
  Engine engine(*query, opts);
  for (const auto& t : w.r) engine.LoadTuple("R", t, 1);
  for (const auto& t : w.s) engine.LoadTuple("S", t, 1);
  engine.Preprocess();

  Timer timer;
  for (const auto& u : w.stream) {
    engine.ApplyUpdate(u.relation, u.tuple, u.mult);
  }
  const double amort_us = timer.Seconds() * 1e6 / static_cast<double>(w.stream.size());

  if (result != nullptr) {
    std::string error;
    IVME_CHECK_MSG(engine.CheckInvariants(&error),
                   "invariants after stream (" << query_text << "): " << error);
    auto it = engine.Enumerate();
    Tuple t;
    Mult m = 0;
    while (it->Next(&t, &m)) ++result->result_tuples;
    result->stats = engine.GetStats();
  }
  return amort_us;
}

// Min-of-`reps` amortized cost for a baseline/declared pair, with the two
// configurations INTERLEAVED within each repetition. The specialization
// effect (a few hash probes per update) sits near the noise floor of
// machine-wide drift (frequency scaling, competing load), which moves
// slowly — back-to-back runs see the same conditions, so alternating the
// twins cancels the drift that block ordering (all baseline reps, then all
// declared reps) would bake into the ratio. Invariants and enumeration run
// once per configuration, on the last repetition.
void RunPair(const Workload& w, const char* baseline_query, const char* declared_query,
             double eps, size_t reps, RunResult* baseline, RunResult* declared) {
  for (size_t rep = 0; rep < reps; ++rep) {
    const bool last = rep + 1 == reps;
    const double b = RunOnce(w, baseline_query, eps, last ? baseline : nullptr);
    if (rep == 0 || b < baseline->amort_us) baseline->amort_us = b;
    const double d = RunOnce(w, declared_query, eps, last ? declared : nullptr);
    if (rep == 0 || d < declared->amort_us) declared->amort_us = d;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = SmokeFromArgs(argc, argv);
  const uint64_t seed = SeedFromArgs(argc, argv, 47);
  const size_t n0_r = smoke ? 600 : 4000;          // static mix: |R|; |S| = 4×
  const size_t grow_mix = smoke ? 4200 : 65000;  // must cross M = 2·N0+1
  const size_t n0_io = smoke ? 800 : 5000;         // insert-only: per relation
  const size_t grow_io = smoke ? 3500 : 50000;

  const Workload mix = BuildStaticMix(n0_r, grow_mix, seed);
  const Workload mono = BuildInsertOnly(n0_io, grow_io, seed + 100);

  std::printf("Per-relation mutability declarations vs all-dynamic, "
              "Q(A,C)=R(A,B),S(B,C), seed=%llu\n",
              static_cast<unsigned long long>(seed));
  std::printf("  static-mix:  |R|=%zu |S|=%zu, %zu-update stream on R only\n", n0_r, 4 * n0_r,
              mix.stream.size());
  std::printf("  insert-only: |R|=|S|=%zu, %zu inserts, no deletes\n", n0_io,
              mono.stream.size());
  PrintRule();
  std::printf("%5s %-22s | %10s %9s | %6s %6s | %10s\n", "eps", "configuration", "amort(us)",
              "result", "minor", "major", "speedup");
  PrintRule();

  struct Pair {
    const char* scenario;
    const Workload* w;
    const char* baseline_query;
    const char* declared_query;
    const char* declared_label;
  };
  const std::vector<Pair> pairs = {
      {"static-mix", &mix, "Q(A, C) = R(A, B), S(B, C)",
       "Q(A, C) = R(A, B), static S(B, C)", "static S"},
      {"insert-only", &mono, "Q(A, C) = R(A, B), S(B, C)",
       "Q(A, C) = insert_only R(A, B), insert_only S(B, C)", "insert_only R,S"},
  };

  JsonReporter json("micro_static_dynamic");
  json.SetSeed(seed);
  double best_static_speedup = 0, best_insert_speedup = 0;
  for (const double eps : {0.5, 1.0}) {
    for (const Pair& pair : pairs) {
      const size_t reps = smoke ? 1 : 3;
      RunResult baseline, declared;
      RunPair(*pair.w, pair.baseline_query, pair.declared_query, eps, reps, &baseline,
              &declared);
      IVME_CHECK_MSG(baseline.result_tuples == declared.result_tuples,
                     pair.scenario << " eps=" << eps << ": declared run enumerates "
                                   << declared.result_tuples << " tuples, all-dynamic "
                                   << baseline.result_tuples);
      const double speedup = baseline.amort_us / std::max(declared.amort_us, 1e-9);
      const std::string scenario(pair.scenario);
      if (scenario == "static-mix") {
        best_static_speedup = std::max(best_static_speedup, speedup);
      } else {
        best_insert_speedup = std::max(best_insert_speedup, speedup);
      }
      const struct {
        const char* label;
        const RunResult* r;
      } rows[] = {{"all-dynamic", &baseline}, {pair.declared_label, &declared}};
      for (const auto& row : rows) {
        std::printf("%5.2f %-11s %-10s | %10.3f %9zu | %6zu %6zu |", eps, pair.scenario,
                    row.label, row.r->amort_us, row.r->result_tuples,
                    row.r->stats.minor_rebalances, row.r->stats.major_rebalances);
        if (row.r == &declared) std::printf("   %6.2fx", speedup);
        std::printf("\n");
        json.Add(scenario + "/eps=" + std::to_string(eps).substr(0, 3) + "/" + row.label,
                 {{"epsilon", eps},
                  {"amort_update_us", row.r->amort_us},
                  {"result_tuples", static_cast<double>(row.r->result_tuples)},
                  {"minor_rebalances", static_cast<double>(row.r->stats.minor_rebalances)},
                  {"major_rebalances", static_cast<double>(row.r->stats.major_rebalances)},
                  {"speedup_vs_dynamic", row.r == &declared ? speedup : 1.0}});
      }
    }
    PrintRule();
  }

  // Acceptance: each declaration must pay for itself on its home workload —
  // the 4×-static mix by ≥10% at some ε, the insert-only declaration
  // measurably (≥3%) at some ε.
  const bool static_ok = best_static_speedup >= 1.10;
  const bool insert_ok = best_insert_speedup >= 1.03;
  json.Add("verdict", {{"best_static_speedup", best_static_speedup},
                       {"best_insert_speedup", best_insert_speedup}});
  std::printf("static-mix best speedup x%.2f (>=1.10: %s) | insert-only best speedup x%.2f "
              "(>=1.03: %s)\n",
              best_static_speedup, Verdict(static_ok), best_insert_speedup,
              Verdict(insert_ok));
  std::printf("mutability declarations pay off: %s%s\n", Verdict(static_ok && insert_ok),
              smoke ? " (advisory under --smoke)" : "");
  // The smoke workload is small enough for scheduler noise to flip the
  // verdicts; CI treats them as advisory there.
  return (static_ok && insert_ok) || smoke ? 0 : 1;
}
