// Concurrent serving: reader p99 latency vs ingest throughput while
// ApplyBatch runs live, across X writer shards × Y reader threads on a
// serving ShardedCatalog (epoch snapshots, ARCHITECTURE.md §9).
//
// Each configuration runs one writer loop (batches of 64 mixed
// insert/delete updates against Q(A,C) = R(A,B), S(B,C)) for a fixed
// wall-clock window while Y reader threads independently pin a snapshot,
// drain a bounded prefix of the merged result, and release. Readers never
// block the writer (they pin an already-published epoch); the writer never
// blocks readers (retired nodes are reclaimed, not reused, while pinned).
//
// Reported per (X, Y): ingest throughput (updates/s), aggregate reader
// throughput (reads/s), and reader latency p50/p99. Y=0 rows are the
// no-reader ingest baselines.
//
// Shape checks (enforced only on ≥ 4 hardware threads and without --smoke;
// single-core hosts timeshare everything, so scaling cannot show):
//   1. at X=1, Y=4 readers deliver ≥ 2× the aggregate read throughput of
//      Y=1 (readers scale — they share nothing but the epoch pin), and
//   2. at X=1, ingest with Y=4 readers stays within 15% of the Y=0
//      baseline (reads do not stall the maintenance path).
//
//   ./build/micro_concurrent_serve [--smoke] [--seed N]
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/rng.h"
#include "src/core/sharded_catalog.h"

using namespace ivme;

namespace {

struct Config {
  size_t base_tuples = 20000;  // per relation
  size_t batch_size = 64;
  double window_seconds = 1.0;  // measured window per configuration
  size_t read_limit = 256;      // tuples drained per read operation
};

struct Measurement {
  double ingest_per_sec = 0;
  double reads_per_sec = 0;
  double read_p50_us = 0;
  double read_p99_us = 0;
  size_t batches = 0;
  size_t reads = 0;
};

double Percentile(std::vector<double>& sorted_us, double p) {
  if (sorted_us.empty()) return 0;
  const size_t idx = static_cast<size_t>(p * static_cast<double>(sorted_us.size() - 1));
  return sorted_us[idx];
}

Measurement Run(size_t shards, size_t readers, const Config& config, uint64_t seed) {
  ShardedCatalogOptions options;
  options.num_shards = shards;
  ShardedCatalog catalog(options);
  EngineOptions engine;
  engine.epsilon = 0.5;
  engine.mode = EvalMode::kDynamic;
  engine.rebalance_mode = RebalanceMode::kIncremental;
  std::string why;
  const auto q = ConjunctiveQuery::Parse("Q(A, C) = R(A, B), S(B, C)");
  IVME_CHECK(q.has_value());
  IVME_CHECK_MSG(catalog.RegisterQuery("join", *q, engine, &why), why);

  // Skewed base data on the shared key B: a few heavy join keys plus a
  // light tail (same family as micro_sharded_update).
  Rng base_rng(seed);
  for (size_t i = 0; i < config.base_tuples; ++i) {
    const Value b = static_cast<Value>(base_rng.Below(base_rng.Chance(0.2) ? 8 : 2000));
    catalog.LoadTuple("R", Tuple{base_rng.Range(0, 4000000), b}, 1);
    catalog.LoadTuple("S", Tuple{static_cast<Value>(base_rng.Below(2000)),
                                 base_rng.Range(0, 4000000)},
                      1);
  }
  catalog.Preprocess();
  catalog.EnableServing();

  std::atomic<bool> stop{false};
  std::vector<std::vector<double>> latencies(readers);
  std::vector<std::thread> threads;
  threads.reserve(readers);
  for (size_t r = 0; r < readers; ++r) {
    latencies[r].reserve(1 << 16);
    threads.emplace_back([&catalog, &stop, &latencies, &config, r] {
      RowBuffer rows;  // slot reuse: steady-state reads allocate nothing
      constexpr size_t kChunk = 64;
      while (!stop.load(std::memory_order_relaxed)) {
        bench::Timer one;
        ReadSnapshot snapshot = catalog.AcquireSnapshot();
        auto it = catalog.EnumerateAt("join", snapshot.epoch());
        size_t drained = 0;
        while (drained < config.read_limit) {
          rows.Clear();
          const size_t want = std::min(kChunk, config.read_limit - drained);
          const size_t got = it->FillBatch(&rows, want);
          drained += got;
          if (got < want) break;
        }
        it.reset();
        snapshot.Release();
        latencies[r].push_back(one.Seconds() * 1e6);
      }
    });
  }

  // Writer: batches of mixed inserts and live-set deletes, 35% deletes.
  Rng rng(seed + 1);
  std::deque<Update> live;
  size_t updates = 0, batches = 0;
  bench::Timer window;
  while (window.Seconds() < config.window_seconds) {
    UpdateBatch batch;
    batch.reserve(config.batch_size);
    for (size_t i = 0; i < config.batch_size; ++i) {
      if (!live.empty() && rng.Chance(0.35)) {
        Update victim = live.front();
        live.pop_front();
        victim.mult = -1;
        batch.push_back(std::move(victim));
      } else {
        const bool on_r = rng.Chance(0.5);
        const Value b = static_cast<Value>(rng.Below(rng.Chance(0.2) ? 8 : 2000));
        Update u{on_r ? "R" : "S",
                 on_r ? Tuple{rng.Range(0, 4000000), b} : Tuple{b, rng.Range(0, 4000000)}, 1};
        live.push_back(u);
        batch.push_back(std::move(u));
      }
    }
    updates += catalog.ApplyBatch(batch).applied;
    ++batches;
  }
  const double elapsed = window.Seconds();
  stop.store(true, std::memory_order_relaxed);
  for (auto& thread : threads) thread.join();

  // With every reader gone, two idle publishes reclaim all retired memory.
  catalog.ApplyBatch(UpdateBatch{});
  catalog.ApplyBatch(UpdateBatch{});
  IVME_CHECK_MSG(catalog.RetiredObjects() == 0,
                 "retired objects leaked: " << catalog.RetiredObjects());
  std::string error;
  IVME_CHECK_MSG(catalog.CheckInvariants(&error), "invariants after serving: " << error);

  Measurement out;
  out.batches = batches;
  out.ingest_per_sec = static_cast<double>(updates) / elapsed;
  std::vector<double> all;
  for (const auto& lane : latencies) all.insert(all.end(), lane.begin(), lane.end());
  out.reads = all.size();
  out.reads_per_sec = static_cast<double>(all.size()) / elapsed;
  std::sort(all.begin(), all.end());
  out.read_p50_us = Percentile(all, 0.50);
  out.read_p99_us = Percentile(all, 0.99);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Config config;
  const bool smoke = bench::SmokeFromArgs(argc, argv);
  const uint64_t seed = bench::SeedFromArgs(argc, argv, 1);
  if (smoke) {
    config.base_tuples = 2000;
    config.window_seconds = 0.15;
  }
  const unsigned cores = std::thread::hardware_concurrency();
  const bool enforce = !smoke && cores >= 4;

  const std::vector<size_t> shard_counts = {1, 2, 4};
  const std::vector<size_t> reader_counts = {0, 1, 2, 4};

  bench::JsonReporter json("micro_concurrent_serve");
  json.SetSeed(seed);
  std::printf("concurrent serving, Q(A,C) = R(A,B), S(B,C); N0=%zu per relation, batch %zu, "
              "%.2fs window, read limit %zu tuples, %u hardware threads\n",
              config.base_tuples, config.batch_size, config.window_seconds, config.read_limit,
              cores);
  bench::PrintRule();
  std::printf("%-6s %-8s %14s %12s %10s %10s %12s\n", "X", "readers", "ingest/s", "reads/s",
              "p50 us", "p99 us", "vs Y=0");
  bench::PrintRule();

  bool scale_ok = true, ingest_ok = true;
  for (const size_t shards : shard_counts) {
    double baseline_ingest = 0, y1_reads = 0;
    for (const size_t readers : reader_counts) {
      const Measurement m = Run(shards, readers, config, seed + 100 * shards + readers);
      if (readers == 0) baseline_ingest = m.ingest_per_sec;
      if (readers == 1) y1_reads = m.reads_per_sec;
      const double vs_baseline = m.ingest_per_sec / baseline_ingest;
      std::printf("%-6zu %-8zu %14.0f %12.0f %10.1f %10.1f %11.2fx", shards, readers,
                  m.ingest_per_sec, m.reads_per_sec, m.read_p50_us, m.read_p99_us, vs_baseline);
      if (readers > 1) std::printf("  (reads %.2fx vs Y=1)", m.reads_per_sec / y1_reads);
      std::printf("\n");
      if (shards == 1 && readers == 4) {
        if (m.reads_per_sec < 2.0 * y1_reads) scale_ok = false;
        if (m.ingest_per_sec < 0.85 * baseline_ingest) ingest_ok = false;
      }
      json.Add("X" + std::to_string(shards) + "/Y" + std::to_string(readers),
               {{"shards", static_cast<double>(shards)},
                {"readers", static_cast<double>(readers)},
                {"hardware_threads", static_cast<double>(cores)},
                {"batch_size", static_cast<double>(config.batch_size)},
                {"ingest_updates_per_sec", m.ingest_per_sec},
                {"reads_per_sec", m.reads_per_sec},
                {"read_p50_us", m.read_p50_us},
                {"read_p99_us", m.read_p99_us},
                {"ingest_vs_no_reader", vs_baseline},
                {"batches", static_cast<double>(m.batches)},
                {"reads", static_cast<double>(m.reads)}});
    }
    bench::PrintRule();
  }
  const char* qualifier =
      smoke ? " (advisory under --smoke)" : (cores < 4 ? " (advisory: < 4 cores)" : "");
  std::printf("shape check (X=1: Y=4 reads >= 2x Y=1): %s%s\n", bench::Verdict(scale_ok),
              qualifier);
  std::printf("shape check (X=1: ingest with Y=4 within 15%% of Y=0): %s%s\n",
              bench::Verdict(ingest_ok), qualifier);
  return ((scale_ok && ingest_ok) || !enforce) ? 0 : 1;
}
