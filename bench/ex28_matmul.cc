// Example 28 end-to-end: n×n Boolean matrix multiplication through
// Q(A,C) = R(A,B), S(B,C) with N = Θ(n²). The paper's special case: with
// ε = 1/2, O(N^{3/2}) = O(n³) preprocessing and O(N^{1/2}) = O(n) delay per
// output cell — the trade-off endpoints recover "recompute everything"
// (ε=1) and "answer from the factors" (ε=0).
#include "bench/bench_common.h"
#include "src/common/rng.h"
#include "src/workload/generator.h"

using namespace ivme;
using namespace ivme::bench;

int main(int argc, char** argv) {
  const uint64_t seed = SeedFromArgs(argc, argv, 1);
  const Value n = 240;
  const auto query = *ConjunctiveQuery::Parse("Q(A, C) = R(A, B), S(B, C)");
  const auto r = workload::MatrixTuples(n, 0.5, seed);
  const auto s = workload::MatrixTuples(n, 0.5, seed + 1);
  std::printf("Example 28: %lldx%lld matrix product, |R|=%zu |S|=%zu (N=%zu)\n",
              static_cast<long long>(n), static_cast<long long>(n), r.size(), s.size(),
              r.size() + s.size());
  PrintRule();
  std::printf("%5s | %14s | %16s | %14s | %12s\n", "eps", "preprocess(s)",
              "full product(s)", "mean delay(us)", "cells");
  PrintRule();

  // Matrix data has uniform column degree n/2 = Θ(√N): all keys flip from
  // heavy to light together at the crossover ε* where θ = M^ε reaches the
  // degree — Example 28's ε = 1/2 balance point sits exactly on this
  // boundary (θ = N^{1/2} = n = degree for dense matrices).
  const size_t total = r.size() + s.size();
  const double crossover =
      std::log(static_cast<double>(n) / 2) / std::log(2.0 * static_cast<double>(total) + 1);
  std::printf("phase transition at eps* = %.2f (theta = column degree)\n", crossover);
  double total_eps_half = 0, total_eps_one = 0;
  for (const double eps : {0.0, crossover - 0.03, crossover + 0.03, 1.0}) {
    EngineOptions opts;
    opts.epsilon = eps;
    opts.mode = EvalMode::kStatic;
    Engine engine(query, opts);
    for (const auto& t : r) engine.LoadTuple("R", t, 1);
    for (const auto& t : s) engine.LoadTuple("S", t, 1);
    Timer preprocess_timer;
    engine.Preprocess();
    const double preprocess_s = preprocess_timer.Seconds();

    Timer enum_timer;
    auto it = engine.Enumerate();
    Tuple t;
    Mult mult = 0;
    size_t cells = 0;
    while (it->Next(&t, &mult)) ++cells;
    const double enum_s = enum_timer.Seconds();
    std::printf("%5.2f | %14.3f | %16.3f | %14.3f | %12zu\n", eps, preprocess_s,
                preprocess_s + enum_s, enum_s * 1e6 / static_cast<double>(cells), cells);
    if (eps > crossover && total_eps_half == 0) total_eps_half = preprocess_s + enum_s;
    if (eps == 1.0) total_eps_one = preprocess_s + enum_s;
  }
  PrintRule();
  std::printf("below eps*: O(N) preprocessing, O(n)-delay on-the-fly products;\n");
  std::printf("above eps*: O(N^{3/2}) = O(n^3) one-pass materialization (%.2fs vs %.2fs at "
              "eps=1), O(1) delay.\n", total_eps_half, total_eps_one);
  return 0;
}
