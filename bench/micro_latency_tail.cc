// Update-latency tail: amortized vs deamortized major rebalancing.
//
// The paper's O(N^ε) update bound (Theorem 4) is amortized — the update
// that breaks the size invariant pays for a stop-the-world strict
// repartition plus a full recompute of every threshold-dependent view, an
// O(N)-latency spike at p99.9/max. EngineOptions::rebalance_mode ==
// kIncremental retargets M/θ immediately and spreads the repartition over
// the following updates in bounded-work slices (RebalanceTask), turning
// the bound into a worst-case one.
//
// This bench drives the same fig1-style workload — Zipf-loaded
// Q(A,C) = R(A,B), S(B,C), then a single-tuple stream that grows N across
// a doubling threshold and deletes back across the M/4 floor — through
// both modes at ε ∈ {0.5, 1} and reports the engine-recorded
// LatencyHistogram percentiles (p50/p99/p99.9/max) plus amortized
// throughput. The shape to see: max latency collapses by an order of
// magnitude in incremental mode while p50 and aggregate throughput stay
// flat.
//
//   ./build/micro_latency_tail [--smoke] [--seed N] [--insert-only] [--zipf S]
//
// --smoke (or IVME_SMOKE=1) shrinks the workload for CI. --insert-only
// keeps only the grow phase (no deletes) and declares both relations
// insert_only — the monotone setting where only upward majors exist; the
// JSON rows record the mode in their "insert_only" field. --zipf S sets
// the base data's join-key Zipf exponent (default 1.1) — higher skew
// piles more weight into the light parts the rebuilds move — and is
// recorded in the JSON rows.
#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/rng.h"
#include "src/workload/generator.h"

using namespace ivme;
using namespace ivme::bench;

namespace {

struct ModeResult {
  std::string label;
  double p50_us = 0;
  double p99_us = 0;
  double p999_us = 0;
  double max_us = 0;
  double amort_us = 0;
  Engine::Stats stats;
};

struct Workload {
  std::vector<Tuple> r, s;
  std::vector<ivme::Update> stream;
};

Workload BuildWorkload(size_t n0, size_t grow, uint64_t seed, bool insert_only, double zipf) {
  // Fig1-style base: Zipf join keys, so the views and light parts carry
  // real weight into every rebuild.
  Workload w;
  const Value num_keys = static_cast<Value>(n0 / 8 + 16);
  w.r = workload::ZipfTuples(n0, 2, 1, num_keys, zipf, 4000000, seed);
  w.s = workload::ZipfTuples(n0, 2, 0, num_keys, zipf, 4000000, seed + 1);

  // Grow phase: fresh single-tuple inserts (frequently-updated keys grow
  // heavy) until N crosses the doubling threshold M = 2·(2·n0)+1 and keeps
  // going; delete phase: remove them FIFO plus part of the base until N
  // falls back across the M/4 floor — both major-rebalance directions fire.
  Rng rng(seed + 2);
  std::vector<ivme::Update> inserted;
  for (size_t i = 0; i < grow; ++i) {
    const Value key = static_cast<Value>(rng.Below(96));
    if (rng.Chance(0.5)) {
      w.stream.push_back({"R", Tuple{static_cast<Value>(5000000 + i), key}, 1});
    } else {
      w.stream.push_back({"S", Tuple{key, static_cast<Value>(5000000 + i)}, 1});
    }
    inserted.push_back(w.stream.back());
  }
  if (insert_only) return w;  // monotone growth only: no delete phase
  for (const auto& u : inserted) {
    w.stream.push_back({u.relation, u.tuple, -1});
  }
  // Shrink below the floor: delete a prefix of the base load too.
  for (size_t i = 0; i < w.r.size() / 2; ++i) {
    w.stream.push_back({"R", w.r[i], -1});
  }
  for (size_t i = 0; i < w.s.size() / 2; ++i) {
    w.stream.push_back({"S", w.s[i], -1});
  }
  return w;
}

ModeResult RunMode(const Workload& w, double eps, RebalanceMode mode, bool insert_only) {
  const auto query = *ConjunctiveQuery::Parse(
      insert_only ? "Q(A, C) = insert_only R(A, B), insert_only S(B, C)"
                  : "Q(A, C) = R(A, B), S(B, C)");
  EngineOptions opts;
  opts.epsilon = eps;
  opts.mode = EvalMode::kDynamic;
  opts.rebalance_mode = mode;
  Engine engine(query, opts);
  for (const auto& t : w.r) engine.LoadTuple("R", t, 1);
  for (const auto& t : w.s) engine.LoadTuple("S", t, 1);
  engine.Preprocess();
  engine.ResetLatency();

  Timer timer;
  for (const auto& u : w.stream) {
    engine.ApplyUpdate(u.relation, u.tuple, u.mult);
  }
  const double total_s = timer.Seconds();

  std::string error;
  if (!engine.CheckInvariants(&error)) {
    std::fprintf(stderr, "INVARIANT VIOLATION (%s): %s\n",
                 mode == RebalanceMode::kIncremental ? "incremental" : "amortized",
                 error.c_str());
    std::exit(1);
  }

  const LatencyHistogram& lat = engine.update_latency();
  ModeResult result;
  result.label = mode == RebalanceMode::kIncremental ? "incremental" : "amortized";
  result.p50_us = lat.PercentileSeconds(0.5) * 1e6;
  result.p99_us = lat.PercentileSeconds(0.99) * 1e6;
  result.p999_us = lat.PercentileSeconds(0.999) * 1e6;
  result.max_us = lat.MaxSeconds() * 1e6;
  result.amort_us = total_s * 1e6 / static_cast<double>(w.stream.size());
  result.stats = engine.GetStats();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = SmokeFromArgs(argc, argv);
  const bool insert_only = FlagFromArgs(argc, argv, "--insert-only");
  const uint64_t seed = SeedFromArgs(argc, argv, 41);
  const double zipf = DoubleFromArgs(argc, argv, "--zipf", 1.1);
  const size_t n0 = smoke ? 1500 : 8000;
  const size_t grow = smoke ? 5000 : 29000;
  const Workload w = BuildWorkload(n0, grow, seed, insert_only, zipf);

  std::printf(
      "Update-latency tail — Q(A,C)=R(A,B),S(B,C), N0=%zu, %zu-update stream, seed=%llu, "
      "zipf=%.2f%s\n",
      2 * n0, w.stream.size(), static_cast<unsigned long long>(seed), zipf,
      insert_only ? " (insert-only: grow phase only, relations declared insert_only)" : "");
  PrintRule();
  std::printf("%5s %-12s | %9s %9s %9s %10s | %10s | %6s %7s %9s\n", "eps", "mode", "p50(us)",
              "p99(us)", "p99.9(us)", "max(us)", "amort(us)", "major", "slices", "migrated");
  PrintRule();

  JsonReporter json("micro_latency_tail");
  json.SetSeed(seed);
  bool tail_ok = true, throughput_ok = true;
  std::vector<std::string> verdict_lines;
  for (const double eps : {0.5, 1.0}) {
    const ModeResult amortized = RunMode(w, eps, RebalanceMode::kAmortized, insert_only);
    const ModeResult incremental = RunMode(w, eps, RebalanceMode::kIncremental, insert_only);
    for (const ModeResult* m : {&amortized, &incremental}) {
      std::printf("%5.2f %-12s | %9.2f %9.2f %9.1f %10.1f | %10.3f | %6zu %7zu %9zu\n", eps,
                  m->label.c_str(), m->p50_us, m->p99_us, m->p999_us, m->max_us, m->amort_us,
                  m->stats.major_rebalances, m->stats.rebalance_slices, m->stats.migrated_keys);
      json.Add("eps=" + std::to_string(eps) + "/" + m->label,
               {{"insert_only", insert_only ? 1.0 : 0.0},
                {"zipf", zipf},
                {"p50_us", m->p50_us},
                {"p99_us", m->p99_us},
                {"p999_us", m->p999_us},
                {"max_us", m->max_us},
                {"amort_update_us", m->amort_us},
                {"updates", static_cast<double>(m->stats.updates)},
                {"major_rebalances", static_cast<double>(m->stats.major_rebalances)},
                {"rebalance_slices", static_cast<double>(m->stats.rebalance_slices)},
                {"migrated_keys", static_cast<double>(m->stats.migrated_keys)},
                {"rebalance_pending", static_cast<double>(m->stats.rebalance_pending)}});
    }
    const double collapse = amortized.max_us / std::max(incremental.max_us, 1e-9);
    const double throughput_ratio = amortized.amort_us / std::max(incremental.amort_us, 1e-9);
    // Acceptance: ≥5× max-latency collapse with amortized throughput
    // within 15% (ratio ≥ 0.85 means incremental is at most 15% slower
    // per update on aggregate).
    const bool this_tail_ok = collapse >= 5.0;
    const bool this_throughput_ok = throughput_ratio >= 0.85;
    tail_ok = tail_ok && this_tail_ok;
    throughput_ok = throughput_ok && this_throughput_ok;
    char line[160];
    std::snprintf(line, sizeof(line),
                  "eps=%.2f: max collapse x%.1f (>=5: %s), amortized throughput ratio %.2f "
                  "(>=0.85: %s)",
                  eps, collapse, Verdict(this_tail_ok), throughput_ratio,
                  Verdict(this_throughput_ok));
    verdict_lines.push_back(line);
    json.Add("verdict/eps=" + std::to_string(eps),
             {{"max_collapse", collapse}, {"throughput_ratio", throughput_ratio}});
  }
  PrintRule();
  for (const auto& line : verdict_lines) std::printf("%s\n", line.c_str());
  std::printf("deamortization holds: %s%s\n", Verdict(tail_ok && throughput_ok),
              smoke ? " (advisory under --smoke)" : "");
  // The smoke workload is small enough for scheduler noise to flip the
  // verdicts; CI treats them as advisory there.
  return (tail_ok && throughput_ok) || smoke ? 0 : 1;
}
