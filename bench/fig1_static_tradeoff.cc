// Figure 1 (middle): the static preprocessing/delay trade-off. For a fixed
// database, sweeping ε must move along the blue line: preprocessing time
// non-decreasing, enumeration delay non-increasing, with the endpoints
// recovering prior work (ε=0: O(N)/O(N) as for α-acyclic queries [8];
// ε=1: O(N^w)/O(1) as for conjunctive queries [45]).
#include "bench/bench_common.h"
#include "src/workload/generator.h"

using namespace ivme;
using namespace ivme::bench;

int main(int argc, char** argv) {
  const uint64_t seed = SeedFromArgs(argc, argv, 1);
  const auto query = *ConjunctiveQuery::Parse("Q(A, C) = R(A, B), S(B, C)");
  const size_t n = 15000;  // tuples per relation
  // Zipf-skewed join keys: every θ threshold splits the keys nontrivially.
  const auto r = workload::ZipfTuples(n, 2, 1, 2000, 1.1, 4000000, seed);
  const auto s = workload::ZipfTuples(n, 2, 0, 2000, 1.1, 4000000, seed + 1);

  std::printf(
      "Figure 1 (middle): static trade-off — Q(A,C)=R(A,B),S(B,C), N=%zu, Zipf(1.1), "
      "seed=%llu\n",
      2 * n, static_cast<unsigned long long>(seed));
  PrintRule();
  std::printf("%5s | %14s | %14s | %14s | %12s\n", "eps", "preprocess(s)", "open(us)",
              "mean delay(us)", "view tuples");
  PrintRule();

  std::vector<double> preproc, delay;
  for (const double eps : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    EngineOptions opts;
    opts.epsilon = eps;
    opts.mode = EvalMode::kStatic;
    Engine engine(query, opts);
    for (const auto& t : r) engine.LoadTuple("R", t, 1);
    for (const auto& t : s) engine.LoadTuple("S", t, 1);
    Timer timer;
    engine.Preprocess();
    const double preprocess_s = timer.Seconds();
    const DelayStats stats = MeasureDelay(engine, 2000);
    preproc.push_back(preprocess_s);
    delay.push_back(stats.mean_us);
    std::printf("%5.2f | %14.3f | %14.1f | %14.3f | %12zu\n", eps, preprocess_s, stats.open_us,
                stats.mean_us, engine.GetStats().view_tuples);
  }
  PrintRule();

  // Shape: monotone trade-off between the endpoints (small timing wobbles
  // between adjacent ε are tolerated; the endpoints must be well separated).
  const bool preproc_grows = preproc.back() > 2.0 * preproc.front();
  const bool delay_shrinks = delay.front() > 2.0 * delay.back();
  bool roughly_monotone = true;
  for (size_t i = 1; i < preproc.size(); ++i) {
    if (preproc[i] < preproc[i - 1] / 1.5) roughly_monotone = false;
    if (delay[i] > delay[i - 1] * 1.5) roughly_monotone = false;
  }
  std::printf("preprocessing grows with eps:  %s (x%.1f from eps=0 to eps=1)\n",
              Verdict(preproc_grows), preproc.back() / std::max(preproc.front(), 1e-9));
  std::printf("delay shrinks with eps:        %s (x%.1f from eps=1 to eps=0)\n",
              Verdict(delay_shrinks), delay.front() / std::max(delay.back(), 1e-9));
  std::printf("monotone along the trade-off:  %s\n", Verdict(roughly_monotone));
  return 0;
}
