// Figure 1 (right): the dynamic trade-off — preprocessing, amortized
// update time, and enumeration delay as ε sweeps, all on one database.
// ε=1 recovers eager view maintenance (O(N^δ) updates, O(1) delay); ε=0
// recovers lazy evaluation (O(1)-ish updates, O(N) delay).
#include "bench/bench_common.h"
#include "src/common/rng.h"
#include "src/workload/generator.h"
#include "src/workload/update_stream.h"

using namespace ivme;
using namespace ivme::bench;

int main(int argc, char** argv) {
  const uint64_t seed = SeedFromArgs(argc, argv, 1);
  const auto query = *ConjunctiveQuery::Parse("Q(A, C) = R(A, B), S(B, C)");
  const size_t n = 15000;
  const auto r = workload::ZipfTuples(n, 2, 1, 2000, 1.1, 4000000, seed);
  const auto s = workload::ZipfTuples(n, 2, 0, 2000, 1.1, 4000000, seed + 1);
  // A mixed stream against R: inserts drawn from the same Zipf key
  // distribution, deletes of live tuples.
  const auto stream = workload::MixedStream(
      "R", r, 8000, 0.45,
      [](Rng& rng) {
        const Value key = static_cast<Value>(rng.Below(64));  // frequently heavy keys
        return Tuple{rng.Range(5000000, 9000000), key};
      },
      seed + 6);

  std::printf(
      "Figure 1 (right): dynamic trade-off — Q(A,C)=R(A,B),S(B,C), N=%zu, 8k-update stream\n",
      2 * n);
  PrintRule();
  std::printf("%5s | %13s | %15s | %14s | %7s %7s\n", "eps", "preprocess(s)",
              "amort update(us)", "mean delay(us)", "minor", "major");
  PrintRule();

  JsonReporter json("fig1_dynamic_tradeoff");
  json.SetSeed(seed);
  std::vector<double> update_us, delay_us;
  for (const double eps : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    EngineOptions opts;
    opts.epsilon = eps;
    opts.mode = EvalMode::kDynamic;
    Engine engine(query, opts);
    for (const auto& t : r) engine.LoadTuple("R", t, 1);
    for (const auto& t : s) engine.LoadTuple("S", t, 1);
    Timer timer;
    engine.Preprocess();
    const double preprocess_s = timer.Seconds();

    Timer utimer;
    for (const auto& update : stream) {
      engine.ApplyUpdate(update.relation, update.tuple, update.mult);
    }
    const double per_update_us = utimer.Seconds() * 1e6 / static_cast<double>(stream.size());
    const DelayStats stats = MeasureDelay(engine, 2000);
    update_us.push_back(per_update_us);
    delay_us.push_back(stats.mean_us);
    json.Add("eps=" + std::to_string(eps), {{"preprocess_s", preprocess_s},
                                            {"amort_update_us", per_update_us},
                                            {"mean_delay_us", stats.mean_us}});
    const auto engine_stats = engine.GetStats();
    std::printf("%5.2f | %13.3f | %15.3f | %14.3f | %7zu %7zu\n", eps, preprocess_s,
                per_update_us, stats.mean_us, engine_stats.minor_rebalances,
                engine_stats.major_rebalances);
  }
  PrintRule();

  const bool update_grows = update_us.back() > 1.5 * update_us.front();
  const bool delay_shrinks = delay_us.front() > 2.0 * delay_us.back();
  std::printf("update cost grows with eps:   %s (x%.1f from eps=0 to eps=1)\n",
              Verdict(update_grows), update_us.back() / std::max(update_us.front(), 1e-9));
  std::printf("delay shrinks with eps:       %s (x%.1f from eps=1 to eps=0)\n",
              Verdict(delay_shrinks), delay_us.front() / std::max(delay_us.back(), 1e-9));
  return 0;
}
