// Skew-resilient routing on the geo-join FK workload: the dictionary-encoded
// star query Q(CI,CN,C,S,N,CU,UN) = geo, city, customer driven by a
// customer-insert stream whose per-city degrees follow Zipf(s). Pure hash
// routing sends every tuple of a hot city to one shard, so the max/mean
// shard-load imbalance grows with s; the two-level router (SpaceSaving
// sketch + overflow table) spreads the hot cities' customer tuples by their
// non-root hash and replicates the small geo/city rows, bounding the
// imbalance while the MergedEnumerator keeps the result byte-identical.
//
// Sweep: s ∈ {0, 0.5, 1.0, 1.2} × K ∈ {1, 2, 4}, each K > 1 run twice
// (hash-only vs overflow routing). Reported per cell: max/mean imbalance
// over routed tuples, amortized update cost, reader p99 (snapshot
// enumerations interleaved with the stream), promoted keys.
//
// Shape checks (full run; advisory under --smoke):
//   1. results are identical across K=1 / hash / overflow at every cell;
//   2. at s >= 1.0, K=4, overflow imbalance < hash imbalance.
//
//   ./build/micro_skew [--smoke] [--seed N]
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/sharded_catalog.h"
#include "src/workload/geo_join.h"

using namespace ivme;

namespace {

struct Config {
  size_t customers = 24000;
  size_t batch_size = 64;
  size_t read_every = 16;    ///< one timed snapshot read per this many batches
  size_t read_rows = 2000;   ///< rows drained per timed read
};

struct CellResult {
  LoadImbalance imbalance;
  double us_per_update = 0;
  double reader_p99_us = 0;
  size_t overflow_keys = 0;
  QueryResult result;
};

CellResult RunCell(double skew_s, size_t shards, bool overflow_routing, const Config& config,
                   const workload::GeoJoinData& data,
                   const std::shared_ptr<StringDictionary>& dict) {
  ShardedCatalogOptions options;
  options.num_shards = shards;
  options.skew.enabled = overflow_routing;
  options.skew.min_total = 512;
  ShardedCatalog catalog(options);
  catalog.AdoptDictionary(dict);

  auto query = ConjunctiveQuery::Parse(workload::GeoJoinQueryText());
  IVME_CHECK(query.has_value());
  std::string why;
  IVME_CHECK_MSG(catalog.RegisterQuery("geo", *query, EngineOptions{}, &why), why);

  // Load the (balanced, small) hierarchy; the skewed customer stream is
  // what the routing comparison measures.
  catalog.Load("geo", data.geo);
  catalog.Load("city", data.city);
  catalog.Preprocess();
  catalog.EnableServing();
  catalog.ResetLoadStats();

  CellResult out;
  std::vector<double> read_us;
  bench::Timer stream_timer;
  double read_seconds = 0;
  UpdateBatch batch;
  size_t batches_applied = 0;
  for (size_t i = 0; i < data.customer.size(); ++i) {
    batch.push_back(Update{"customer", data.customer[i].first, data.customer[i].second});
    if (batch.size() < config.batch_size && i + 1 < data.customer.size()) continue;
    catalog.ApplyBatch(batch);
    batch.clear();
    if (++batches_applied % config.read_every == 0) {
      bench::Timer read_timer;
      ReadSnapshot snap = catalog.AcquireSnapshot();
      auto it = catalog.EnumerateAt("geo", snap.epoch());
      Tuple t;
      Mult m = 0;
      for (size_t row = 0; row < config.read_rows && it->Next(&t, &m); ++row) {
      }
      const double us = read_timer.Seconds() * 1e6;
      read_us.push_back(us);
      read_seconds += read_timer.Seconds();
    }
  }
  // Amortized update cost excludes the interleaved read time.
  out.us_per_update = (stream_timer.Seconds() - read_seconds) * 1e6 /
                      static_cast<double>(data.customer.size());
  if (!read_us.empty()) {
    std::sort(read_us.begin(), read_us.end());
    out.reader_p99_us = read_us[(read_us.size() * 99) / 100 >= read_us.size()
                                    ? read_us.size() - 1
                                    : (read_us.size() * 99) / 100];
  }
  out.imbalance = catalog.ComputeImbalance();
  out.overflow_keys = catalog.OverflowEntries().size();
  out.result = catalog.EvaluateToMap("geo");
  std::string error;
  IVME_CHECK_MSG(catalog.CheckInvariants(&error),
                 "invariants after stream (s=" << skew_s << ", K=" << shards << "): " << error);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Config config;
  const bool smoke = bench::SmokeFromArgs(argc, argv);
  const uint64_t seed = bench::SeedFromArgs(argc, argv, 7);
  if (smoke) {
    config.customers = 4000;
    config.read_every = 8;
    config.read_rows = 500;
  }

  const std::vector<double> skews = {0.0, 0.5, 1.0, 1.2};
  const std::vector<size_t> shard_counts = {1, 2, 4};

  bench::JsonReporter json("micro_skew");
  json.SetSeed(seed);
  std::printf("skew-aware routing on the geo-join workload; %zu customers, batch %zu\n",
              config.customers, config.batch_size);
  bench::PrintRule(104);
  std::printf("%-6s %-4s %-10s %12s %12s %12s %12s %10s %10s\n", "s", "K", "router",
              "max/mean", "max load", "us/update", "reader p99", "overflow", "results");
  bench::PrintRule(104);

  bool results_ok = true;
  bool imbalance_ok = true;
  for (const double s : skews) {
    workload::GeoJoinConfig gen;
    gen.customers = config.customers;
    gen.zipf_skew = s;
    gen.seed = seed;
    auto dict = std::make_shared<StringDictionary>();
    const workload::GeoJoinData data = workload::GenerateGeoJoin(gen, dict.get());

    QueryResult reference;
    for (const size_t shards : shard_counts) {
      double hash_imbalance = 0;
      for (const bool overflow_routing : {false, true}) {
        if (shards == 1 && overflow_routing) continue;  // K=1 has one router
        const CellResult cell = RunCell(s, shards, overflow_routing, config, data, dict);
        if (shards == 1) {
          reference = cell.result;
        } else if (cell.result != reference) {
          results_ok = false;
        }
        if (!overflow_routing) hash_imbalance = cell.imbalance.max_mean;
        if (overflow_routing && s >= 1.0 && shards == 4 &&
            cell.imbalance.max_mean >= hash_imbalance) {
          imbalance_ok = false;
        }
        const char* router = shards == 1 ? "-" : (overflow_routing ? "overflow" : "hash");
        const bool match = shards == 1 || cell.result == reference;
        std::printf("%-6.1f %-4zu %-10s %12.3f %12llu %12.3f %12.1f %10zu %10s\n", s, shards,
                    router, cell.imbalance.max_mean,
                    static_cast<unsigned long long>(cell.imbalance.max_tuples),
                    cell.us_per_update, cell.reader_p99_us, cell.overflow_keys,
                    match ? "match" : "DIFFER");
        json.Add("s" + std::to_string(s).substr(0, 3) + "/K" + std::to_string(shards) + "/" +
                     router,
                 {{"skew", s},
                  {"shards", static_cast<double>(shards)},
                  {"overflow_routing", overflow_routing ? 1.0 : 0.0},
                  {"imbalance_max_mean", cell.imbalance.max_mean},
                  {"max_shard_tuples", static_cast<double>(cell.imbalance.max_tuples)},
                  {"mean_shard_tuples", cell.imbalance.mean_tuples},
                  {"us_per_update", cell.us_per_update},
                  {"reader_p99_us", cell.reader_p99_us},
                  {"overflow_keys", static_cast<double>(cell.overflow_keys)},
                  {"results_match", match ? 1.0 : 0.0}});
      }
    }
    bench::PrintRule(104);
  }
  std::printf("shape check (identical results across K and routers): %s%s\n",
              bench::Verdict(results_ok), smoke ? " (advisory under --smoke)" : "");
  std::printf("shape check (overflow < hash imbalance at s>=1, K=4): %s%s\n",
              bench::Verdict(imbalance_ok), smoke ? " (advisory under --smoke)" : "");
  return ((results_ok && imbalance_ok) || smoke) ? 0 : 1;
}
