// Tests for the baselines (naive recompute, classical first-order IVM):
// they must agree with brute force and with the IVM^ε engine.
#include <gtest/gtest.h>

#include "src/baselines/first_order_ivm.h"
#include "src/baselines/naive_engine.h"
#include "src/common/rng.h"
#include "tests/support/mirror.h"

namespace ivme {
namespace {

using testing::MustParse;

TEST(NaiveEngineTest, MatchesBruteForceUnderUpdates) {
  const auto q = MustParse("Q(A, C) = R(A, B), S(B, C)");
  NaiveRecomputeEngine naive(q);
  Database mirror;
  mirror.AddRelation("R", q.atom(0).schema);
  mirror.AddRelation("S", q.atom(1).schema);
  Rng rng(3);
  for (int step = 0; step < 150; ++step) {
    const std::string name = rng.Chance(0.5) ? "R" : "S";
    const Tuple t{rng.Range(0, 6), rng.Range(0, 6)};
    const Mult mult = rng.Chance(0.3) ? -1 : 1;
    if (naive.ApplyUpdate(name, t, mult)) mirror.Find(name)->Apply(t, mult);
    if (step % 30 == 29) {
      EXPECT_EQ(naive.EvaluateToMap(), BruteForceEvaluate(q, mirror)) << "step " << step;
    }
  }
}

TEST(NaiveEngineTest, RefreshIsLazy) {
  const auto q = MustParse("Q(A) = R(A, B), S(B)");
  NaiveRecomputeEngine naive(q);
  naive.LoadTuple("R", Tuple{1, 2}, 1);
  naive.LoadTuple("S", Tuple{2}, 1);
  EXPECT_EQ(naive.EvaluateToMap().size(), 1u);
  // A second evaluation without updates reuses the snapshot.
  EXPECT_EQ(naive.EvaluateToMap().size(), 1u);
  naive.ApplyUpdate("S", Tuple{2}, -1);
  EXPECT_TRUE(naive.EvaluateToMap().empty());
}

TEST(FirstOrderIvmTest, MaintainsResultUnderUpdates) {
  const auto q = MustParse("Q(A, C) = R(A, B), S(B, C)");
  FirstOrderIvmEngine ivm(q);
  Database mirror;
  mirror.AddRelation("R", q.atom(0).schema);
  mirror.AddRelation("S", q.atom(1).schema);
  Rng rng(4);
  for (int i = 0; i < 30; ++i) {
    const Tuple t{rng.Range(0, 5), rng.Range(0, 5)};
    ivm.LoadTuple("R", t, 1);
    mirror.Find("R")->Apply(t, 1);
  }
  ivm.Preprocess();
  EXPECT_EQ(ivm.EvaluateToMap(), BruteForceEvaluate(q, mirror));
  for (int step = 0; step < 200; ++step) {
    const std::string name = rng.Chance(0.5) ? "R" : "S";
    const Tuple t{rng.Range(0, 5), rng.Range(0, 5)};
    const Mult mult = rng.Chance(0.35) ? -1 : 1;
    if (ivm.ApplyUpdate(name, t, mult)) mirror.Find(name)->Apply(t, mult);
    if (step % 40 == 39) {
      EXPECT_EQ(ivm.EvaluateToMap(), BruteForceEvaluate(q, mirror)) << "step " << step;
    }
  }
}

TEST(FirstOrderIvmTest, HandlesRepeatedSymbols) {
  const auto q = MustParse("Q(B, C) = R(A, B), R(A, C)");
  FirstOrderIvmEngine ivm(q);
  Database mirror;
  mirror.AddRelation("R", q.atom(0).schema);
  ivm.Preprocess();
  Rng rng(5);
  for (int step = 0; step < 150; ++step) {
    const Tuple t{rng.Range(0, 4), rng.Range(0, 4)};
    const Mult mult = rng.Chance(0.3) ? -1 : 1;
    if (ivm.ApplyUpdate("R", t, mult)) mirror.Find("R")->Apply(t, mult);
    if (step % 25 == 24) {
      EXPECT_EQ(ivm.EvaluateToMap(), BruteForceEvaluate(q, mirror)) << "step " << step;
    }
  }
}

TEST(FirstOrderIvmTest, QHierarchicalQuery) {
  const auto q = MustParse("Q(A, B) = R(A, B), S(A)");
  FirstOrderIvmEngine ivm(q);
  Database mirror;
  mirror.AddRelation("R", q.atom(0).schema);
  mirror.AddRelation("S", q.atom(1).schema);
  ivm.Preprocess();
  Rng rng(6);
  for (int step = 0; step < 120; ++step) {
    if (rng.Chance(0.5)) {
      const Tuple t{rng.Range(0, 5), rng.Range(0, 5)};
      if (ivm.ApplyUpdate("R", t, 1)) mirror.Find("R")->Apply(t, 1);
    } else {
      const Tuple t{rng.Range(0, 5)};
      if (ivm.ApplyUpdate("S", t, 1)) mirror.Find("S")->Apply(t, 1);
    }
  }
  EXPECT_EQ(ivm.EvaluateToMap(), BruteForceEvaluate(q, mirror));
}

TEST(BaselineAgreementTest, AllEnginesAgree) {
  // The engine (several ε), the naive baseline, and first-order IVM must
  // produce identical results on a shared update stream.
  const std::string text = "Q(A, C) = R(A, B), S(B, C)";
  const auto q = MustParse(text);
  NaiveRecomputeEngine naive(q);
  FirstOrderIvmEngine ivm(q);
  ivm.Preprocess();
  EngineOptions opts;
  opts.mode = EvalMode::kDynamic;
  opts.epsilon = 0.5;
  testing::MirroredEngine m(text, opts);
  m.Preprocess();

  Rng rng(7);
  for (int step = 0; step < 250; ++step) {
    const std::string name = rng.Chance(0.5) ? "R" : "S";
    const Tuple t{rng.Range(0, 6), rng.Range(0, 6)};
    const Mult mult = rng.Chance(0.3) ? -1 : 1;
    const bool accepted = m.Update(name, t, mult);
    const bool naive_accepted = naive.ApplyUpdate(name, t, mult);
    const bool ivm_accepted = ivm.ApplyUpdate(name, t, mult);
    EXPECT_EQ(accepted, naive_accepted);
    // First-order IVM applies the delta before detecting emptiness, so it
    // accepts exactly the same updates by construction.
    EXPECT_EQ(accepted, ivm_accepted);
    if (step % 50 == 49) {
      const auto expected = m.engine().EvaluateToMap();
      EXPECT_EQ(naive.EvaluateToMap(), expected) << "step " << step;
      EXPECT_EQ(ivm.EvaluateToMap(), expected) << "step " << step;
    }
  }
}

}  // namespace
}  // namespace ivme
