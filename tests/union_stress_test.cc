// Stress tests targeting the Union algorithm's replacement invariant
// (Figure 15 / Durand–Strozecki): buckets of wildly different sizes, heavy
// overlap, buckets that exhaust at different times, and prefix tuples
// arriving after a bucket already emitted them.
#include <gtest/gtest.h>

#include <set>

#include "src/common/rng.h"
#include "tests/support/mirror.h"

namespace ivme {
namespace {

using testing::MirroredEngine;

EngineOptions AllHeavy() {
  EngineOptions o;
  o.epsilon = 0.0;  // θ = 1: every join key is heavy → one bucket per key
  o.mode = EvalMode::kDynamic;
  return o;
}

// Helper: load Q(A,C)=R(A,B),S(B,C) so that bucket for key b produces the
// (a,c) pairs as->cs (cross product).
void FillBucket(MirroredEngine* m, Value b, const std::vector<Value>& as,
                const std::vector<Value>& cs) {
  for (Value a : as) m->Update("R", Tuple{a, b}, 1);
  for (Value c : cs) m->Update("S", Tuple{b, c}, 1);
}

TEST(UnionStressTest, IdenticalBuckets) {
  // Every bucket yields exactly the same tuples: maximal replacement load.
  MirroredEngine m("Q(A, C) = R(A, B), S(B, C)", AllHeavy());
  m.Preprocess();
  for (Value b = 0; b < 20; ++b) FillBucket(&m, b, {1, 2, 3}, {7, 8});
  auto result = m.engine().EvaluateToMap();
  EXPECT_EQ(result.size(), 6u);
  for (const auto& [tuple, mult] : result) EXPECT_EQ(mult, 20);
  EXPECT_EQ(m.FullCheck(), "");
}

TEST(UnionStressTest, NestedSubsetBuckets) {
  // Bucket i's output strictly contains bucket i+1's.
  MirroredEngine m("Q(A, C) = R(A, B), S(B, C)", AllHeavy());
  m.Preprocess();
  for (Value b = 0; b < 8; ++b) {
    std::vector<Value> as;
    for (Value a = 0; a <= b; ++a) as.push_back(a);
    FillBucket(&m, b, as, {100});
  }
  EXPECT_EQ(m.FullCheck(), "");
  const auto result = m.engine().EvaluateToMap();
  EXPECT_EQ(result.size(), 8u);
  EXPECT_EQ(result.at(Tuple{0, 100}), 8);  // in every bucket
  EXPECT_EQ(result.at(Tuple{7, 100}), 1);  // only in the last
}

TEST(UnionStressTest, DisjointBucketsOfVaryingSizes) {
  MirroredEngine m("Q(A, C) = R(A, B), S(B, C)", AllHeavy());
  m.Preprocess();
  Value next_a = 0;
  for (Value b = 0; b < 10; ++b) {
    std::vector<Value> as;
    for (Value k = 0; k < (b % 4) * 5 + 1; ++k) as.push_back(next_a++);
    FillBucket(&m, b, as, {500 + b});
  }
  EXPECT_EQ(m.FullCheck(), "");
}

TEST(UnionStressTest, EmptySidesLeaveBucketsUngrounded) {
  // Keys present in R but not in S: no grounding for them (V(h)=0).
  MirroredEngine m("Q(A, C) = R(A, B), S(B, C)", AllHeavy());
  m.Preprocess();
  for (Value b = 0; b < 5; ++b) {
    m.Update("R", Tuple{b, b}, 1);  // no matching S side for odd keys
    if (b % 2 == 0) m.Update("S", Tuple{b, 50 + b}, 1);
  }
  EXPECT_EQ(m.FullCheck(), "");
  EXPECT_EQ(m.engine().EvaluateToMap().size(), 3u);
}

TEST(UnionStressTest, RandomOverlapsAgainstBruteForce) {
  Rng rng(2718);
  for (int trial = 0; trial < 10; ++trial) {
    MirroredEngine m("Q(A, C) = R(A, B), S(B, C)", AllHeavy());
    m.Preprocess();
    // Small domains force many shared (a,c) pairs across buckets.
    for (int i = 0; i < 120; ++i) {
      m.Update("R", Tuple{rng.Range(0, 4), rng.Range(0, 9)}, 1);
      m.Update("S", Tuple{rng.Range(0, 9), rng.Range(0, 4)}, 1);
    }
    ASSERT_EQ(m.FullCheck(), "") << "trial " << trial;
  }
}

TEST(UnionStressTest, NestedUnionsUnderProductExample19) {
  // ε=0 on Example 19: unions at A nest unions at (A,B) inside product
  // branches; all values collide on a tiny domain.
  MirroredEngine m("Q(C, D, E, F) = R(A, B, D), S(A, B, E), T(A, C, F), U(A, C, G)", AllHeavy());
  m.Preprocess();
  Rng rng(31415);
  for (int i = 0; i < 200; ++i) {
    const std::string rel = std::vector<std::string>{"R", "S", "T", "U"}[rng.Below(4)];
    m.Update(rel, Tuple{rng.Range(0, 2), rng.Range(0, 2), rng.Range(0, 2)}, 1);
  }
  EXPECT_EQ(m.FullCheck(), "");
}

TEST(UnionStressTest, TopLevelUnionAcrossTreesWithSharedTuples) {
  // ε=0.5 with a mix of heavy and light keys contributing the same output
  // tuples: exercises the across-trees union (light tree + heavy tree).
  EngineOptions opts;
  opts.epsilon = 0.5;
  opts.mode = EvalMode::kDynamic;
  MirroredEngine m("Q(A, C) = R(A, B), S(B, C)", opts);
  for (Value i = 0; i < 300; ++i) m.Load("R", Tuple{1000 + i, 2000 + i}, 1);
  m.Preprocess();  // θ ≈ 24.5
  // Heavy key 0 (degree 40) and light keys 1..5 (degree 2) produce
  // overlapping (a, c) pairs.
  for (Value a = 0; a < 40; ++a) m.Update("R", Tuple{a % 6, 0}, 1);
  m.Update("S", Tuple{0, 9}, 1);
  for (Value b = 1; b <= 5; ++b) {
    m.Update("R", Tuple{b % 6, b}, 1);
    m.Update("R", Tuple{(b + 1) % 6, b}, 1);
    m.Update("S", Tuple{b, 9}, 1);
  }
  EXPECT_EQ(m.FullCheck(), "");
}

}  // namespace
}  // namespace ivme
