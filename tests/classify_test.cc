// Tests for hierarchical / q-hierarchical / δi classification.
#include <gtest/gtest.h>

#include "src/query/classify.h"
#include "tests/support/catalog.h"

namespace ivme {
namespace {

TEST(HierarchicalTest, PaperDefinitionExamples) {
  // From Definition 1's discussion: R(A,B), S(B,C) is hierarchical;
  // R(A,B), S(B,C), T(C) is not.
  EXPECT_TRUE(IsHierarchical(testing::MustParse("Q(A) = R(A, B), S(B, C)")));
  EXPECT_FALSE(IsHierarchical(testing::MustParse("Q(A) = R(A, B), S(B, C), T(C)")));
}

TEST(HierarchicalTest, CatalogAgreesWithExpectations) {
  for (const auto& entry : testing::PaperQueryCatalog()) {
    const auto q = testing::MustParse(entry.text);
    EXPECT_EQ(IsHierarchical(q), entry.hierarchical) << entry.label;
  }
}

TEST(QHierarchicalTest, Example12IsHierarchicalButNotQHierarchical) {
  // Bound B and E dominate free C and F (Example 12).
  const auto q = testing::MustParse("Q(A, C, F) = R(A, B, C), S(A, B, D), T(A, E, F), U(A, E, G)");
  EXPECT_TRUE(IsHierarchical(q));
  EXPECT_FALSE(IsQHierarchical(q));
}

TEST(QHierarchicalTest, CatalogAgreesWithExpectations) {
  for (const auto& entry : testing::PaperQueryCatalog()) {
    if (!entry.hierarchical) continue;
    const auto q = testing::MustParse(entry.text);
    EXPECT_EQ(IsQHierarchical(q), entry.q_hierarchical) << entry.label;
  }
}

TEST(QHierarchicalTest, FullHierarchicalQueriesAreQHierarchical) {
  EXPECT_TRUE(IsQHierarchical(testing::MustParse("Q(A, B, C) = R(A, B), S(A, B, C)")));
  EXPECT_TRUE(IsQHierarchical(testing::MustParse("Q(X, Y0, Y1) = R0(X, Y0), R1(X, Y1)")));
}

TEST(MinAtomCoverTest, SingleAtomCoversItsVariables) {
  std::vector<Schema> atoms = {Schema({0, 1, 2})};
  EXPECT_EQ(MinAtomCover(atoms, Schema({0, 2})), 1);
  EXPECT_EQ(MinAtomCover(atoms, Schema()), 0);
}

TEST(MinAtomCoverTest, StarQueryNeedsOneAtomPerLeaf) {
  // R0(X,Y0), R1(X,Y1), R2(X,Y2): X=0, Yi=i+1.
  std::vector<Schema> atoms = {Schema({0, 1}), Schema({0, 2}), Schema({0, 3})};
  EXPECT_EQ(MinAtomCover(atoms, Schema({1, 2, 3})), 3);
  EXPECT_EQ(MinAtomCover(atoms, Schema({0, 1, 2, 3})), 3);
  EXPECT_EQ(MinAtomCover(atoms, Schema({0})), 1);
  EXPECT_EQ(MinAtomCover(atoms, Schema({0, 1})), 1);
}

TEST(MinAtomCoverTest, ChainSharesCover) {
  // R(A,B), S(A,B,C): covering {A,C} needs only S.
  std::vector<Schema> atoms = {Schema({0, 1}), Schema({0, 1, 2})};
  EXPECT_EQ(MinAtomCover(atoms, Schema({0, 2})), 1);
  EXPECT_EQ(MinAtomCover(atoms, Schema({0})), 1);
}

TEST(MinAtomCoverTest, VariablesWithEqualAtomSetsCountOnce) {
  std::vector<Schema> atoms = {Schema({0, 1, 2})};
  EXPECT_EQ(MinAtomCover(atoms, Schema({0, 1, 2})), 1);
}

TEST(MinAtomCoverTest, DisjointComponentsAdd) {
  std::vector<Schema> atoms = {Schema({0, 1}), Schema({2, 3})};
  EXPECT_EQ(MinAtomCover(atoms, Schema({0, 2})), 2);
}

TEST(DeltaRankTest, PaperFamilyHasRankI) {
  // Q(Y0..Yi) = R0(X,Y0), ..., Ri(X,Yi) is δi-hierarchical (Definition 5).
  EXPECT_EQ(DeltaRank(testing::MustParse("Q(Y0) = R0(X, Y0)")), 0);
  EXPECT_EQ(DeltaRank(testing::MustParse("Q(Y0, Y1) = R0(X, Y0), R1(X, Y1)")), 1);
  EXPECT_EQ(DeltaRank(testing::MustParse("Q(Y0, Y1, Y2) = R0(X, Y0), R1(X, Y1), R2(X, Y2)")), 2);
  EXPECT_EQ(DeltaRank(testing::MustParse(
                "Q(Y0, Y1, Y2, Y3) = R0(X, Y0), R1(X, Y1), R2(X, Y2), R3(X, Y3)")),
            3);
}

TEST(DeltaRankTest, Proposition6RankZeroIffQHierarchical) {
  for (const auto& entry : testing::PaperQueryCatalog()) {
    if (!entry.hierarchical) continue;
    const auto q = testing::MustParse(entry.text);
    EXPECT_EQ(DeltaRank(q) == 0, IsQHierarchical(q)) << entry.label;
  }
}

TEST(DeltaRankTest, Proposition7FreeConnexIsDelta0Or1) {
  for (const auto& entry : testing::PaperQueryCatalog()) {
    if (!entry.hierarchical || !entry.free_connex) continue;
    const auto q = testing::MustParse(entry.text);
    EXPECT_LE(DeltaRank(q), 1) << entry.label;
  }
}

TEST(DeltaRankTest, CatalogMatchesDynamicWidth) {
  // Proposition 8: δi-hierarchical iff dynamic width i; the catalog stores
  // the expected dynamic widths.
  for (const auto& entry : testing::PaperQueryCatalog()) {
    if (!entry.hierarchical) continue;
    const auto q = testing::MustParse(entry.text);
    EXPECT_EQ(DeltaRank(q), entry.dynamic_width) << entry.label;
  }
}

TEST(FreeVarsOfAtomsOfTest, CollectsFreeVariablesOfVariableAtoms) {
  const auto q = testing::MustParse("Q(A, D, E) = R(A, B, C), S(A, B, D), T(A, E)");
  std::vector<Schema> atoms;
  for (const auto& atom : q.atoms()) atoms.push_back(atom.schema);
  const VarId b = q.FindVar("B");
  const Schema free_of_b = FreeVarsOfAtomsOf(atoms, q.free_vars(), b);
  // atoms(B) = {R, S}; their free variables are A and D.
  EXPECT_TRUE(free_of_b.SameSet(Schema({q.FindVar("A"), q.FindVar("D")})));
}

}  // namespace
}  // namespace ivme
