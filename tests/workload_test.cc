// Tests for the synthetic workload generators.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/workload/generator.h"
#include "src/workload/update_stream.h"

namespace ivme {
namespace {

TEST(GeneratorTest, UniformTuplesAreDistinctWithRequestedShape) {
  const auto tuples = workload::UniformTuples(500, 3, 100, 1);
  EXPECT_EQ(tuples.size(), 500u);
  std::set<Tuple> seen(tuples.begin(), tuples.end());
  EXPECT_EQ(seen.size(), 500u);
  for (const auto& t : tuples) {
    ASSERT_EQ(t.size(), 3u);
    for (Value v : t) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, 100);
    }
  }
}

TEST(GeneratorTest, UniformTuplesAreDeterministicPerSeed) {
  EXPECT_EQ(workload::UniformTuples(50, 2, 40, 9), workload::UniformTuples(50, 2, 40, 9));
  EXPECT_NE(workload::UniformTuples(50, 2, 40, 9), workload::UniformTuples(50, 2, 40, 10));
}

TEST(GeneratorTest, ZipfTuplesSkewTheKeyColumn) {
  const auto tuples = workload::ZipfTuples(4000, 2, 0, 100, 1.3, 100000, 2);
  std::map<Value, size_t> degree;
  for (const auto& t : tuples) degree[t[0]]++;
  // Rank 1 must dominate rank ~20 by a wide margin.
  EXPECT_GT(degree[0], 10 * std::max<size_t>(degree[20], 1));
  // All keys within range.
  for (const auto& [key, count] : degree) {
    EXPECT_GE(key, 0);
    EXPECT_LT(key, 100);
  }
}

TEST(GeneratorTest, MatrixTuplesRespectDensity) {
  const auto tuples = workload::MatrixTuples(50, 0.3, 3);
  const double density = static_cast<double>(tuples.size()) / (50.0 * 50.0);
  EXPECT_NEAR(density, 0.3, 0.05);
  std::set<Tuple> seen(tuples.begin(), tuples.end());
  EXPECT_EQ(seen.size(), tuples.size());
}

TEST(GeneratorTest, HeavyLightPairsDegrees) {
  const auto tuples = workload::HeavyLightPairs(4, 10, 25, /*key_first=*/true, 0);
  EXPECT_EQ(tuples.size(), 4 * 10 + 25u);
  std::map<Value, size_t> degree;
  for (const auto& t : tuples) degree[t[0]]++;
  for (Value k = 0; k < 4; ++k) EXPECT_EQ(degree[k], 10u);
  for (Value k = 4; k < 29; ++k) EXPECT_EQ(degree[k], 1u);
  // Partner values are globally distinct: the key_first=false variant joins
  // bijectively against them.
  std::set<Value> partners;
  for (const auto& t : tuples) partners.insert(t[1]);
  EXPECT_EQ(partners.size(), tuples.size());
}

TEST(UpdateStreamTest, MixedStreamKeepsDeletesValid) {
  auto fresh = [](Rng& rng) { return Tuple{rng.Range(0, 1000000), rng.Range(0, 1000000)}; };
  const auto stream = workload::MixedStream("R", {}, 500, 0.4, fresh, 11);
  EXPECT_EQ(stream.size(), 500u);
  std::map<Tuple, int> live;
  size_t deletes = 0;
  for (const auto& update : stream) {
    EXPECT_EQ(update.relation, "R");
    if (update.mult < 0) {
      ++deletes;
      ASSERT_GT(live[update.tuple], 0) << "delete of a dead tuple";
    }
    live[update.tuple] += static_cast<int>(update.mult);
  }
  EXPECT_GT(deletes, 100u);
}

TEST(UpdateStreamTest, RoundTripEndsEmpty) {
  const auto tuples = workload::UniformTuples(100, 2, 1000, 4);
  const auto stream = workload::InsertDeleteRoundTrip("R", tuples, 5);
  EXPECT_EQ(stream.size(), 200u);
  std::map<Tuple, int> live;
  for (const auto& update : stream) live[update.tuple] += static_cast<int>(update.mult);
  for (const auto& [tuple, count] : live) EXPECT_EQ(count, 0) << tuple.ToString();
}

}  // namespace
}  // namespace ivme
