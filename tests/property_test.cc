// Property-style randomized sweeps: for every hierarchical catalog query,
// every ε, and several data profiles, run long interleaved update/enumerate
// sessions and check (a) results equal brute force, (b) every engine
// invariant holds (partition bands, size invariant, view consistency,
// indicator consistency), (c) enumeration never emits duplicates.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "src/common/rng.h"
#include "tests/support/mirror.h"

namespace ivme {
namespace {

using testing::MirroredEngine;

enum class Profile { kUniform, kSkewed, kAdversarial };

std::string ProfileName(Profile p) {
  switch (p) {
    case Profile::kUniform:
      return "uniform";
    case Profile::kSkewed:
      return "skewed";
    case Profile::kAdversarial:
      return "adversarial";
  }
  return "?";
}

// Draws a tuple for `relation` under the given profile.
Tuple DrawTuple(Rng& rng, Profile profile, size_t arity) {
  Tuple t;
  t.Reserve(arity);
  switch (profile) {
    case Profile::kUniform:
      for (size_t j = 0; j < arity; ++j) t.PushBack(rng.Range(0, 9));
      break;
    case Profile::kSkewed:
      for (size_t j = 0; j < arity; ++j) {
        t.PushBack(rng.Chance(0.5) ? 0 : rng.Range(1, 12));
      }
      break;
    case Profile::kAdversarial:
      // Collapse most columns to a single value: maximal degrees on every
      // partition key, constant churn across the heavy/light boundary.
      for (size_t j = 0; j < arity; ++j) {
        t.PushBack(rng.Chance(0.8) ? 0 : rng.Range(0, 3));
      }
      break;
  }
  return t;
}

class PropertySweepTest
    : public ::testing::TestWithParam<std::tuple<int, double, int>> {};

TEST_P(PropertySweepTest, LongInterleavedSession) {
  const auto [query_idx, eps, profile_idx] = GetParam();
  const auto entry = testing::HierarchicalCatalog()[static_cast<size_t>(query_idx)];
  const Profile profile = static_cast<Profile>(profile_idx);

  EngineOptions opts;
  opts.mode = EvalMode::kDynamic;
  opts.epsilon = eps;
  MirroredEngine m(entry.text, opts);
  Rng rng(0xABCDEFull + static_cast<uint64_t>(query_idx * 31 + profile_idx * 7) +
          static_cast<uint64_t>(eps * 100));

  const auto names = m.query().RelationNames();
  auto arity_of = [&](const std::string& name) {
    for (const auto& atom : m.query().atoms()) {
      if (atom.relation == name) return atom.schema.size();
    }
    return size_t{0};
  };

  // Initial load.
  for (const auto& name : names) {
    for (int i = 0; i < 20; ++i) {
      m.Load(name, DrawTuple(rng, profile, arity_of(name)), 1);
    }
  }
  m.Preprocess();
  ASSERT_EQ(m.FullCheck(), "") << entry.label << " after preprocess";

  // 240 updates with periodic full checks; deletion rate drifts up and down
  // so the database both grows and shrinks (both rebalancing directions).
  for (int step = 0; step < 240; ++step) {
    const double delete_ratio = (step / 60) % 2 == 0 ? 0.25 : 0.65;
    const auto& name = names[rng.Below(names.size())];
    const Tuple t = DrawTuple(rng, profile, arity_of(name));
    m.Update(name, t, rng.Chance(delete_ratio) ? -1 : 1);
    if (step % 60 == 59) {
      ASSERT_EQ(m.FullCheck(), "")
          << entry.label << " eps=" << eps << " " << ProfileName(profile) << " step=" << step;
    }
  }
  EXPECT_EQ(m.FullCheck(), "") << entry.label;
}

INSTANTIATE_TEST_SUITE_P(
    Catalog, PropertySweepTest,
    ::testing::Combine(::testing::Range(0, static_cast<int>(testing::HierarchicalCatalog().size())),
                       ::testing::Values(0.0, 0.3, 0.5, 1.0), ::testing::Values(0, 1, 2)),
    [](const ::testing::TestParamInfo<std::tuple<int, double, int>>& info) {
      const auto entry =
          testing::HierarchicalCatalog()[static_cast<size_t>(std::get<0>(info.param))];
      return entry.label + "_eps" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 100)) + "_" +
             ProfileName(static_cast<Profile>(std::get<2>(info.param)));
    });

}  // namespace
}  // namespace ivme
