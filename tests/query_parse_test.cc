// Tests for conjunctive query parsing and accessors.
#include <gtest/gtest.h>

#include "src/query/query.h"
#include "tests/support/catalog.h"

namespace ivme {
namespace {

TEST(QueryParseTest, ParsesTwoAtomQuery) {
  auto q = ConjunctiveQuery::Parse("Q(A, C) = R(A, B), S(B, C)");
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->name(), "Q");
  EXPECT_EQ(q->num_atoms(), 2u);
  EXPECT_EQ(q->num_vars(), 3u);
  EXPECT_EQ(q->atom(0).relation, "R");
  EXPECT_EQ(q->atom(1).relation, "S");
  EXPECT_EQ(q->free_vars().size(), 2u);
  EXPECT_EQ(q->var_name(q->free_vars()[0]), "A");
  EXPECT_EQ(q->var_name(q->free_vars()[1]), "C");
}

TEST(QueryParseTest, VariableIdsFollowBodyFirstOccurrence) {
  auto q = ConjunctiveQuery::Parse("Q(C) = R(A, B), S(B, C)");
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->FindVar("A"), 0);
  EXPECT_EQ(q->FindVar("B"), 1);
  EXPECT_EQ(q->FindVar("C"), 2);
  EXPECT_EQ(q->FindVar("Z"), kInvalidVar);
}

TEST(QueryParseTest, BooleanHead) {
  auto q = ConjunctiveQuery::Parse("Q() = R(A, B)");
  ASSERT_TRUE(q.has_value());
  EXPECT_TRUE(q->free_vars().empty());
  EXPECT_FALSE(q->IsFull());
}

TEST(QueryParseTest, FullQuery) {
  auto q = ConjunctiveQuery::Parse("Q(A, B) = R(A, B)");
  ASSERT_TRUE(q.has_value());
  EXPECT_TRUE(q->IsFull());
}

TEST(QueryParseTest, WhitespaceTolerant) {
  auto q = ConjunctiveQuery::Parse("  Q ( A ,C )=R( A,B ) , S(B , C)  ");
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->num_atoms(), 2u);
}

TEST(QueryParseTest, RejectsMalformedInput) {
  EXPECT_FALSE(ConjunctiveQuery::Parse("").has_value());
  EXPECT_FALSE(ConjunctiveQuery::Parse("Q(A)").has_value());
  EXPECT_FALSE(ConjunctiveQuery::Parse("Q(A) = ").has_value());
  EXPECT_FALSE(ConjunctiveQuery::Parse("Q(A = R(A)").has_value());
  EXPECT_FALSE(ConjunctiveQuery::Parse("Q(A) = R(A,)").has_value());
  EXPECT_FALSE(ConjunctiveQuery::Parse("Q(A) = R(A) extra").has_value());
}

TEST(QueryParseTest, RejectsHeadVariableNotInBody) {
  EXPECT_FALSE(ConjunctiveQuery::Parse("Q(Z) = R(A, B)").has_value());
}

TEST(QueryParseTest, RejectsNullaryAtom) {
  EXPECT_FALSE(ConjunctiveQuery::Parse("Q() = R()").has_value());
}

TEST(QueryParseTest, RejectsDuplicateVariableInAtomOrHead) {
  EXPECT_FALSE(ConjunctiveQuery::Parse("Q(A) = R(A, A)").has_value());
  EXPECT_FALSE(ConjunctiveQuery::Parse("Q(A, A) = R(A, B)").has_value());
}

TEST(QueryParseTest, RepeatedRelationSymbols) {
  auto q = ConjunctiveQuery::Parse("Q(B, C) = R(A, B), R(A, C)");
  ASSERT_TRUE(q.has_value());
  EXPECT_TRUE(q->HasRepeatedSymbol("R"));
  EXPECT_EQ(q->RelationNames(), (std::vector<std::string>{"R"}));
}

TEST(QueryParseTest, AtomsOf) {
  auto q = ConjunctiveQuery::Parse("Q(A) = R(A, B), S(B)");
  ASSERT_TRUE(q.has_value());
  const VarId a = q->FindVar("A");
  const VarId b = q->FindVar("B");
  EXPECT_EQ(q->AtomsOf(a), (std::vector<int>{0}));
  EXPECT_EQ(q->AtomsOf(b), (std::vector<int>{0, 1}));
  EXPECT_TRUE(q->IsFree(a));
  EXPECT_TRUE(q->IsBound(b));
}

TEST(QueryParseTest, ToStringRoundTripParses) {
  for (const auto& entry : testing::PaperQueryCatalog()) {
    const auto q = testing::MustParse(entry.text);
    const auto round = ConjunctiveQuery::Parse(q.ToString());
    ASSERT_TRUE(round.has_value()) << q.ToString();
    EXPECT_EQ(round->ToString(), q.ToString());
  }
}

TEST(QueryParseTest, WholeCatalogParses) {
  for (const auto& entry : testing::PaperQueryCatalog()) {
    EXPECT_TRUE(ConjunctiveQuery::Parse(entry.text).has_value()) << entry.label;
  }
}

}  // namespace
}  // namespace ivme
