// LatencyHistogram: bucket placement, percentile estimation, merge
// semantics, and the summary rendering used by the shell and benches.
#include "src/common/latency_histogram.h"

#include <gtest/gtest.h>

namespace ivme {
namespace {

TEST(LatencyHistogramTest, EmptyHistogram) {
  LatencyHistogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.MaxSeconds(), 0.0);
  EXPECT_EQ(h.MinSeconds(), 0.0);
  EXPECT_EQ(h.MeanSeconds(), 0.0);
  EXPECT_EQ(h.PercentileSeconds(0.5), 0.0);
  EXPECT_EQ(h.Summary(), "count=0");
}

TEST(LatencyHistogramTest, ExactExtremaAndMean) {
  LatencyHistogram h;
  h.RecordNanos(1000);    // 1us
  h.RecordNanos(3000);    // 3us
  h.RecordNanos(500000);  // 0.5ms
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.MinSeconds(), 1e-6);
  EXPECT_DOUBLE_EQ(h.MaxSeconds(), 5e-4);
  EXPECT_DOUBLE_EQ(h.MeanSeconds(), (1000 + 3000 + 500000) * 1e-9 / 3.0);
  EXPECT_DOUBLE_EQ(h.TotalSeconds(), 504000 * 1e-9);
}

TEST(LatencyHistogramTest, PercentilesBracketTheDistribution) {
  LatencyHistogram h;
  // 99 fast recordings around 1µs, one enormous outlier at 1s.
  for (int i = 0; i < 99; ++i) h.RecordNanos(1000 + static_cast<uint64_t>(i));
  h.RecordNanos(1000000000);
  // p50 stays in the fast bucket (2^10 ≤ ns < 2^11).
  const double p50 = h.PercentileSeconds(0.5);
  EXPECT_GE(p50, 1.0e-6);
  EXPECT_LT(p50, 2.1e-6);
  // The max (and p100) is the exact outlier, not a bucket boundary.
  EXPECT_DOUBLE_EQ(h.PercentileSeconds(1.0), 1.0);
  EXPECT_DOUBLE_EQ(h.MaxSeconds(), 1.0);
  // p99.9 of 100 samples lands on the outlier's bucket but is clamped to
  // the exact max.
  EXPECT_LE(h.PercentileSeconds(0.999), 1.0);
  EXPECT_GT(h.PercentileSeconds(0.999), 0.5);
}

TEST(LatencyHistogramTest, PercentileIsMonotoneInQ) {
  LatencyHistogram h;
  for (uint64_t ns = 1; ns < 4000000; ns = ns * 3 + 7) h.RecordNanos(ns);
  double prev = -1;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const double v = h.PercentileSeconds(q);
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }
}

TEST(LatencyHistogramTest, MergeMatchesCombinedRecording) {
  LatencyHistogram a, b, combined;
  for (uint64_t ns : {100u, 900u, 70000u}) {
    a.RecordNanos(ns);
    combined.RecordNanos(ns);
  }
  for (uint64_t ns : {40u, 2000000u}) {
    b.RecordNanos(ns);
    combined.RecordNanos(ns);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_DOUBLE_EQ(a.MaxSeconds(), combined.MaxSeconds());
  EXPECT_DOUBLE_EQ(a.MinSeconds(), combined.MinSeconds());
  EXPECT_DOUBLE_EQ(a.MeanSeconds(), combined.MeanSeconds());
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(a.PercentileSeconds(q), combined.PercentileSeconds(q)) << q;
  }
}

TEST(LatencyHistogramTest, ZeroAndSubNanosecondDurationsLandInBucketZero) {
  LatencyHistogram h;
  h.RecordNanos(0);
  h.RecordSeconds(0.0);
  h.RecordSeconds(-1.0);  // clamped
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.MaxSeconds(), 0.0);
  EXPECT_EQ(h.PercentileSeconds(0.5), 0.0);
}

TEST(LatencyHistogramTest, ResetClears) {
  LatencyHistogram h;
  h.RecordNanos(12345);
  h.Reset();
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.Summary(), "count=0");
}

TEST(LatencyHistogramTest, SummaryPicksUnits) {
  LatencyHistogram h;
  for (int i = 0; i < 100; ++i) h.RecordNanos(1500);  // 1.5us
  const std::string summary = h.Summary();
  EXPECT_NE(summary.find("count=100"), std::string::npos) << summary;
  EXPECT_NE(summary.find("p50="), std::string::npos) << summary;
  EXPECT_NE(summary.find("us"), std::string::npos) << summary;
}

TEST(LatencyHistogramTest, ScopedTimerRecords) {
  LatencyHistogram h;
  {
    ScopedLatencyTimer timer(&h);
    volatile int sink = 0;
    for (int i = 0; i < 1000; ++i) sink = sink + i;
  }
  EXPECT_EQ(h.count(), 1u);
}

}  // namespace
}  // namespace ivme
