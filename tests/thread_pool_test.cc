#include "src/common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

namespace ivme {
namespace {

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::vector<int> hits(100, 0);
  std::atomic<int> total{0};
  std::vector<std::function<void()>> tasks;
  for (size_t i = 0; i < hits.size(); ++i) {
    tasks.push_back([&hits, &total, i] {
      ++hits[i];  // distinct slot per task: no synchronization needed
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  pool.Run(tasks);
  EXPECT_EQ(total.load(), 100);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, InlineModeHasNoWorkers) {
  for (size_t n : {size_t{0}, size_t{1}}) {
    ThreadPool pool(n);
    EXPECT_EQ(pool.num_threads(), 0u);
    int count = 0;
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 10; ++i) tasks.push_back([&count] { ++count; });
    pool.Run(tasks);  // runs on this thread: plain int is safe
    EXPECT_EQ(count, 10);
  }
}

TEST(ThreadPoolTest, ReusableAcrossRuns) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  for (int round = 0; round < 50; ++round) {
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 8; ++i) {
      tasks.push_back([&total] { total.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.Run(tasks);
  }
  EXPECT_EQ(total.load(), 50 * 8);
}

TEST(ThreadPoolTest, SkipsEmptyTasks) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  std::vector<std::function<void()>> tasks;
  tasks.emplace_back();  // default-constructed: skipped
  tasks.push_back([&total] { total.fetch_add(1); });
  tasks.emplace_back();
  pool.Run(tasks);
  EXPECT_EQ(total.load(), 1);
  pool.Run({});  // empty list is a no-op
}

TEST(ThreadPoolTest, RunIsABarrier) {
  // After Run returns, every task's writes are visible without further
  // synchronization (the completion handshake orders them).
  ThreadPool pool(3);
  std::vector<size_t> out(64, 0);
  std::vector<std::function<void()>> tasks;
  for (size_t i = 0; i < out.size(); ++i) {
    tasks.push_back([&out, i] { out[i] = i * i; });
  }
  pool.Run(tasks);
  for (size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPoolTest, TaskExceptionRethrownAtBarrier) {
  // A throwing task must not escape its worker thread (std::terminate);
  // the first exception surfaces from Run() on the calling thread, and
  // every other task still runs to the barrier.
  ThreadPool pool(3);
  std::atomic<int> ran{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 16; ++i) {
    if (i == 5) {
      tasks.push_back([&ran] {
        ran.fetch_add(1, std::memory_order_relaxed);
        throw std::runtime_error("shard 5 failed");
      });
    } else {
      tasks.push_back([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
  }
  EXPECT_THROW(pool.Run(tasks), std::runtime_error);
  EXPECT_EQ(ran.load(), 16);

  try {
    pool.Run(tasks);
    FAIL() << "expected a rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "shard 5 failed");
  }
}

TEST(ThreadPoolTest, FirstOfManyExceptionsWinsAndPoolStaysUsable) {
  ThreadPool pool(4);
  std::vector<std::function<void()>> throwing;
  for (int i = 0; i < 8; ++i) {
    throwing.push_back([] { throw std::runtime_error("boom"); });
  }
  EXPECT_THROW(pool.Run(throwing), std::runtime_error);

  // The error does not stick: a later clean Run succeeds.
  std::atomic<int> total{0};
  std::vector<std::function<void()>> clean;
  for (int i = 0; i < 8; ++i) {
    clean.push_back([&total] { total.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Run(clean);
  EXPECT_EQ(total.load(), 8);
}

TEST(ThreadPoolTest, InlineModePropagatesExceptions) {
  ThreadPool pool(0);
  int ran = 0;
  std::vector<std::function<void()>> tasks;
  tasks.push_back([&ran] { ++ran; });
  tasks.push_back([] { throw std::runtime_error("inline"); });
  tasks.push_back([&ran] { ++ran; });  // not reached in inline mode
  EXPECT_THROW(pool.Run(tasks), std::runtime_error);
  EXPECT_EQ(ran, 1);
}

TEST(ThreadPoolTest, ConcurrentRunsFromMultipleThreadsShareTheWorkers) {
  // Parallel readers drain shard streams on the same pool the writer fans
  // batches out on — Run() must interleave safely across calling threads.
  ThreadPool pool(2);
  static constexpr int kCallers = 4;
  static constexpr int kRoundsPerCaller = 16;
  static constexpr int kTasksPerRun = 8;
  std::atomic<int> total{0};
  std::vector<std::thread> callers;
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&pool, &total] {
      for (int round = 0; round < kRoundsPerCaller; ++round) {
        std::atomic<int> mine{0};
        std::vector<std::function<void()>> tasks;
        for (int i = 0; i < kTasksPerRun; ++i) {
          tasks.push_back([&mine] { mine.fetch_add(1, std::memory_order_relaxed); });
        }
        pool.Run(tasks);
        // The barrier covers exactly this caller's batch.
        EXPECT_EQ(mine.load(), kTasksPerRun);
        total.fetch_add(mine.load(), std::memory_order_relaxed);
      }
    });
  }
  for (auto& caller : callers) caller.join();
  EXPECT_EQ(total.load(), kCallers * kRoundsPerCaller * kTasksPerRun);
}

TEST(ThreadPoolTest, ReentrantRunFromInsideATaskDoesNotDeadlock) {
  // More outer tasks than workers, and every outer task starts a nested
  // Run: caller participation must guarantee progress even when every
  // worker is itself blocked inside an outer task's nested barrier.
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  std::vector<std::function<void()>> outer;
  for (int i = 0; i < 6; ++i) {
    outer.push_back([&pool, &inner_total] {
      std::vector<std::function<void()>> inner;
      for (int j = 0; j < 8; ++j) {
        inner.push_back([&inner_total] { inner_total.fetch_add(1, std::memory_order_relaxed); });
      }
      pool.Run(inner);
    });
  }
  pool.Run(outer);
  EXPECT_EQ(inner_total.load(), 6 * 8);
}

TEST(ThreadPoolTest, ConcurrentBatchExceptionsStayWithTheirCaller) {
  ThreadPool pool(2);
  std::atomic<int> clean_total{0};
  std::thread thrower([&pool] {
    for (int round = 0; round < 8; ++round) {
      std::vector<std::function<void()>> tasks;
      tasks.push_back([] { throw std::runtime_error("mine"); });
      EXPECT_THROW(pool.Run(tasks), std::runtime_error);
    }
  });
  for (int round = 0; round < 8; ++round) {
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 8; ++i) {
      tasks.push_back([&clean_total] { clean_total.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.Run(tasks);  // must never observe the other caller's exception
  }
  thrower.join();
  EXPECT_EQ(clean_total.load(), 64);
}

TEST(ThreadPoolTest, DefaultThreadsIsBoundedByShardsAndCores) {
  EXPECT_EQ(ThreadPool::DefaultThreads(1), 0u);
  const size_t hw = std::thread::hardware_concurrency();
  const size_t for_8 = ThreadPool::DefaultThreads(8);
  EXPECT_LE(for_8, size_t{8});
  EXPECT_LE(for_8, hw);
}

}  // namespace
}  // namespace ivme
