// Edge cases: same relation symbol across connected components, extreme ε,
// contract violations (death tests), huge multiplicities, and single-atom
// queries through the full engine.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "tests/support/mirror.h"

namespace ivme {
namespace {

using testing::MirroredEngine;

EngineOptions DynOpts(double eps) {
  EngineOptions o;
  o.epsilon = eps;
  o.mode = EvalMode::kDynamic;
  return o;
}

TEST(EdgeCaseTest, SameSymbolInDifferentComponents) {
  // R appears in both components of a Cartesian product: one logical
  // relation, two occurrence slots, updated in sequence.
  MirroredEngine m("Q(A, B) = R(A), R(B)", DynOpts(0.5));
  m.Preprocess();
  m.Update("R", Tuple{1}, 1);
  m.Update("R", Tuple{2}, 2);
  const auto result = m.engine().EvaluateToMap();
  ASSERT_EQ(result.size(), 4u);
  EXPECT_EQ(result.at(Tuple{1, 1}), 1);
  EXPECT_EQ(result.at(Tuple{1, 2}), 2);
  EXPECT_EQ(result.at(Tuple{2, 2}), 4);
  EXPECT_EQ(m.FullCheck(), "");
  m.Update("R", Tuple{1}, -1);
  EXPECT_EQ(m.FullCheck(), "");
}

TEST(EdgeCaseTest, TripleSelfJoin) {
  MirroredEngine m("Q(B, C, D) = R(A, B), R(A, C), R(A, D)", DynOpts(0.5));
  m.Preprocess();
  Rng rng(8);
  for (int step = 0; step < 60; ++step) {
    m.Update("R", Tuple{rng.Range(0, 3), rng.Range(0, 3)}, rng.Chance(0.3) ? -1 : 1);
    if (step % 15 == 14) {
      ASSERT_EQ(m.FullCheck(), "") << "step " << step;
    }
  }
}

TEST(EdgeCaseTest, SingleAtomQueriesThroughEngine) {
  for (const char* text : {"Q(A, B) = R(A, B)", "Q(A) = R(A, B)", "Q() = R(A, B)"}) {
    MirroredEngine m(text, DynOpts(0.5));
    m.Preprocess();
    Rng rng(4);
    for (int step = 0; step < 80; ++step) {
      m.Update("R", Tuple{rng.Range(0, 4), rng.Range(0, 4)}, rng.Chance(0.4) ? -1 : 1);
    }
    EXPECT_EQ(m.FullCheck(), "") << text;
  }
}

TEST(EdgeCaseTest, LargeMultiplicities) {
  MirroredEngine m("Q(A) = R(A, B), S(B)", DynOpts(0.5));
  m.Preprocess();
  m.Update("R", Tuple{1, 2}, 1000000);
  m.Update("S", Tuple{2}, 1000000);
  const auto result = m.engine().EvaluateToMap();
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result.at(Tuple{1}), 1000000LL * 1000000LL);
  EXPECT_EQ(m.FullCheck(), "");
}

TEST(EdgeCaseTest, ValuesSpanFullRange) {
  MirroredEngine m("Q(A, C) = R(A, B), S(B, C)", DynOpts(0.5));
  m.Preprocess();
  const Value big = 1LL << 60;
  m.Update("R", Tuple{-big, big}, 1);
  m.Update("S", Tuple{big, -1}, 1);
  const auto result = m.engine().EvaluateToMap();
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result.begin()->first, (Tuple{-big, -1}));
  EXPECT_EQ(m.FullCheck(), "");
}

TEST(EdgeCaseDeathTest, NonHierarchicalQueryRejected) {
  const auto q = testing::MustParse("Q(A, C) = R(A, B), S(B, C), T(C)");
  EngineOptions opts;
  EXPECT_DEATH({ Engine engine(q, opts); }, "hierarchical");
}

TEST(EdgeCaseDeathTest, UpdateBeforePreprocessRejected) {
  const auto q = testing::MustParse("Q(A) = R(A, B), S(B)");
  Engine engine(q, EngineOptions{});
  EXPECT_DEATH(engine.ApplyUpdate("R", Tuple{1, 2}, 1), "Preprocess");
}

TEST(EdgeCaseDeathTest, StaticModeRejectsUpdates) {
  const auto q = testing::MustParse("Q(A) = R(A, B), S(B)");
  EngineOptions opts;
  opts.mode = EvalMode::kStatic;
  Engine engine(q, opts);
  engine.Preprocess();
  EXPECT_DEATH(engine.ApplyUpdate("R", Tuple{1, 2}, 1), "dynamic");
}

TEST(EdgeCaseDeathTest, UnknownRelationRejected) {
  const auto q = testing::MustParse("Q(A) = R(A, B), S(B)");
  Engine engine(q, EngineOptions{});
  EXPECT_DEATH(engine.LoadTuple("T", Tuple{1}, 1), "unknown relation");
}

TEST(EdgeCaseDeathTest, WrongArityRejected) {
  const auto q = testing::MustParse("Q(A) = R(A, B), S(B)");
  Engine engine(q, EngineOptions{});
  EXPECT_DEATH(engine.LoadTuple("R", Tuple{1}, 1), "arity");
}

TEST(EdgeCaseDeathTest, InvalidEpsilonRejected) {
  const auto q = testing::MustParse("Q(A) = R(A, B), S(B)");
  EngineOptions opts;
  opts.epsilon = 1.5;
  EXPECT_DEATH({ Engine engine(q, opts); }, "epsilon");
}

}  // namespace
}  // namespace ivme
