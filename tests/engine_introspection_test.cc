// Tests for engine introspection (stats, debug rendering, counters) and the
// δi-hierarchical star family end to end.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "src/common/counters.h"
#include "src/common/rng.h"
#include "src/query/width.h"
#include "tests/support/mirror.h"

namespace ivme {
namespace {

using testing::MirroredEngine;

EngineOptions DynOpts(double eps) {
  EngineOptions o;
  o.epsilon = eps;
  o.mode = EvalMode::kDynamic;
  return o;
}

TEST(IntrospectionTest, DebugStringRendersTreesAndIndicators) {
  MirroredEngine m("Q(A, C) = R(A, B), S(B, C)", DynOpts(0.5));
  m.Preprocess();
  const std::string debug = m.engine().DebugString();
  EXPECT_NE(debug.find("tree (component 0)"), std::string::npos);
  EXPECT_NE(debug.find("indicator H_B"), std::string::npos);
  EXPECT_NE(debug.find("R(A, B)"), std::string::npos);
  EXPECT_NE(debug.find("∃H_B"), std::string::npos);
}

TEST(IntrospectionTest, StatsTrackUpdatesAndViewTuples) {
  MirroredEngine m("Q(A) = R(A, B), S(B)", DynOpts(0.5));
  m.Preprocess();
  EXPECT_EQ(m.engine().GetStats().updates, 0u);
  m.Update("R", Tuple{1, 2}, 1);
  m.Update("S", Tuple{2}, 1);
  const auto stats = m.engine().GetStats();
  EXPECT_EQ(stats.updates, 2u);
  EXPECT_GT(stats.view_tuples, 0u);
  EXPECT_EQ(stats.num_trees, 2u);
  EXPECT_EQ(stats.num_triples, 1u);
}

TEST(IntrospectionTest, ThetaFollowsEpsilon) {
  for (double eps : {0.0, 0.5, 1.0}) {
    MirroredEngine m("Q(A) = R(A, B), S(B)", DynOpts(eps));
    for (Value i = 0; i < 100; ++i) m.Load("R", Tuple{i, i}, 1);
    m.Preprocess();
    const double expected = std::pow(static_cast<double>(m.engine().threshold_base()), eps);
    EXPECT_DOUBLE_EQ(m.engine().theta(), expected);
  }
  // θ at the endpoints: 1 and M.
  MirroredEngine m0("Q(A) = R(A, B), S(B)", DynOpts(0.0));
  m0.Preprocess();
  EXPECT_DOUBLE_EQ(m0.engine().theta(), 1.0);
}

TEST(IntrospectionTest, CountersAdvanceWithWork) {
  MirroredEngine m("Q(A, C) = R(A, B), S(B, C)", DynOpts(0.5));
  for (Value i = 0; i < 50; ++i) {
    m.Load("R", Tuple{i, i % 5}, 1);
    m.Load("S", Tuple{i % 5, i}, 1);
  }
  ResetCounters();
  m.Preprocess();
  EXPECT_GT(AggregateCounters().materialize_steps, 0u);

  ResetCounters();
  m.Update("R", Tuple{1000, 0}, 1);
  EXPECT_GT(AggregateCounters().delta_steps, 0u);

  ResetCounters();
  (void)m.engine().EvaluateToMap();
  EXPECT_GT(AggregateCounters().enum_steps, 0u);
}

class StarFamilyTest : public ::testing::TestWithParam<int> {};

TEST_P(StarFamilyTest, EndToEndAtSeveralEps) {
  // Q(Y0..Yi) = R0(X,Y0), ..., Ri(X,Yi): δi-hierarchical with w = i+1.
  const int i = GetParam();
  std::string head = "Q(";
  std::string body;
  for (int j = 0; j <= i; ++j) {
    if (j > 0) {
      head += ", ";
      body += ", ";
    }
    head += "Y" + std::to_string(j);
    body += "R" + std::to_string(j) + "(X, Y" + std::to_string(j) + ")";
  }
  const std::string text = head + ") = " + body;
  const auto q = testing::MustParse(text);
  EXPECT_EQ(DynamicWidth(q), i);
  EXPECT_EQ(StaticWidth(q), i == 0 ? 1 : i + 1);

  for (double eps : {0.0, 0.5, 1.0}) {
    MirroredEngine m(text, DynOpts(eps));
    m.Preprocess();
    Rng rng(static_cast<uint64_t>(100 + i));
    for (int step = 0; step < 150; ++step) {
      const std::string rel = "R" + std::to_string(rng.Below(static_cast<uint64_t>(i) + 1));
      m.Update(rel, Tuple{rng.Range(0, 2), rng.Range(0, 3)}, rng.Chance(0.3) ? -1 : 1);
    }
    ASSERT_EQ(m.FullCheck(), "") << text << " eps=" << eps;
  }
}

INSTANTIATE_TEST_SUITE_P(DeltaRanks, StarFamilyTest, ::testing::Values(0, 1, 2, 3, 4),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "delta" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace ivme
