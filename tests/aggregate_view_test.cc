// Tests for the group-by aggregate extension (paper conclusion): COUNT(*)
// and SUM(measure) per group, maintained under updates, against reference
// aggregates computed from a mirror.
#include <gtest/gtest.h>

#include <map>

#include "src/common/rng.h"
#include "src/core/aggregate_view.h"
#include "tests/support/catalog.h"

namespace ivme {
namespace {

EngineOptions Opts(double eps) {
  EngineOptions o;
  o.epsilon = eps;
  o.mode = EvalMode::kDynamic;
  return o;
}

TEST(AggregateViewTest, CountAndSumBasics) {
  // Orders(Customer, Item) with quantities; Stock(Item).
  const auto q = testing::MustParse("Q(C) = Orders(C, I), Stock(I)");
  GroupedAggregateEngine agg(q, "Orders", Opts(0.5));
  agg.Preprocess();

  // Customer 1 orders 3 of item 10 (one order line), 2 of item 11.
  ASSERT_TRUE(agg.ApplyUpdate("Orders", Tuple{1, 10}, 1, 3));
  ASSERT_TRUE(agg.ApplyUpdate("Orders", Tuple{1, 11}, 1, 2));
  ASSERT_TRUE(agg.ApplyUpdate("Orders", Tuple{2, 10}, 1, 7));
  ASSERT_TRUE(agg.ApplyUpdate("Stock", Tuple{10}, 1, 0));

  auto it = agg.Enumerate();
  Tuple group;
  GroupedAggregateEngine::Aggregates a;
  std::map<Tuple, std::pair<Mult, Mult>> rows;
  while (it.Next(&group, &a)) rows[group] = {a.count, a.sum};
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows.at(Tuple{1}), (std::pair<Mult, Mult>{1, 3}));  // one stocked line, qty 3
  EXPECT_EQ(rows.at(Tuple{2}), (std::pair<Mult, Mult>{1, 7}));

  // Stocking item 11 brings customer 1's second line in.
  ASSERT_TRUE(agg.ApplyUpdate("Stock", Tuple{11}, 1, 0));
  rows.clear();
  it = agg.Enumerate();
  while (it.Next(&group, &a)) rows[group] = {a.count, a.sum};
  EXPECT_EQ(rows.at(Tuple{1}), (std::pair<Mult, Mult>{2, 5}));
}

TEST(AggregateViewTest, RejectionIsAtomic) {
  const auto q = testing::MustParse("Q(C) = Orders(C, I), Stock(I)");
  GroupedAggregateEngine agg(q, "Orders", Opts(0.5));
  agg.Preprocess();
  ASSERT_TRUE(agg.ApplyUpdate("Orders", Tuple{1, 10}, 1, 5));
  // Deleting 2 lines (only 1 exists): both engines must stay unchanged.
  EXPECT_FALSE(agg.ApplyUpdate("Orders", Tuple{1, 10}, -2, -10));
  // Count valid but measure would go negative: rolled back atomically.
  EXPECT_FALSE(agg.ApplyUpdate("Orders", Tuple{1, 10}, -1, -9));
  EXPECT_EQ(agg.count_engine().database_size(), agg.sum_engine().database_size());
  ASSERT_TRUE(agg.ApplyUpdate("Stock", Tuple{10}, 1, 0));
  auto it = agg.Enumerate();
  Tuple group;
  GroupedAggregateEngine::Aggregates a;
  ASSERT_TRUE(it.Next(&group, &a));
  EXPECT_EQ(a.count, 1);
  EXPECT_EQ(a.sum, 5);
}

TEST(AggregateViewTest, RandomStreamMatchesReferenceAcrossEps) {
  for (double eps : {0.0, 0.5, 1.0}) {
    const auto q = testing::MustParse("Q(C) = Orders(C, I), Stock(I)");
    GroupedAggregateEngine agg(q, "Orders", Opts(eps));
    agg.Preprocess();
    Rng rng(555);
    std::map<std::pair<Value, Value>, std::pair<Mult, Mult>> orders;  // (count, qty)
    std::map<Value, Mult> stock;
    for (int step = 0; step < 300; ++step) {
      if (rng.Chance(0.6)) {
        const Value c = rng.Range(0, 5), i = rng.Range(0, 8);
        auto& [count, qty] = orders[{c, i}];
        if (count > 0 && rng.Chance(0.35)) {
          // Retract one line at its average quantity share.
          const Mult dq = qty / count;
          ASSERT_TRUE(agg.ApplyUpdate("Orders", Tuple{c, i}, -1, -dq));
          count -= 1;
          qty -= dq;
        } else {
          const Mult dq = rng.Range(1, 9);
          ASSERT_TRUE(agg.ApplyUpdate("Orders", Tuple{c, i}, 1, dq));
          count += 1;
          qty += dq;
        }
      } else {
        const Value i = rng.Range(0, 8);
        if (stock[i] > 0 && rng.Chance(0.4)) {
          ASSERT_TRUE(agg.ApplyUpdate("Stock", Tuple{i}, -1, 0));
          stock[i] -= 1;
        } else {
          ASSERT_TRUE(agg.ApplyUpdate("Stock", Tuple{i}, 1, 0));
          stock[i] += 1;
        }
      }
      if (step % 60 != 59) continue;
      // Reference aggregates.
      std::map<Value, std::pair<Mult, Mult>> expected;
      for (const auto& [key, cq] : orders) {
        const auto& [count, qty] = cq;
        const Mult s = stock[key.second];
        if (count > 0 && s > 0) {
          expected[key.first].first += count * s;
          expected[key.first].second += qty * s;
        }
      }
      std::map<Value, std::pair<Mult, Mult>> actual;
      auto it = agg.Enumerate();
      Tuple group;
      GroupedAggregateEngine::Aggregates a;
      while (it.Next(&group, &a)) actual[group[0]] = {a.count, a.sum};
      ASSERT_EQ(actual, expected) << "eps=" << eps << " step=" << step;
    }
  }
}

TEST(AggregateViewTest, LoadThenPreprocess) {
  const auto q = testing::MustParse("Q(C) = Orders(C, I), Stock(I)");
  GroupedAggregateEngine agg(q, "Orders", Opts(0.5));
  agg.LoadTuple("Orders", Tuple{3, 4}, 2, 11);
  agg.LoadTuple("Stock", Tuple{4}, 3, 0);
  agg.Preprocess();
  auto it = agg.Enumerate();
  Tuple group;
  GroupedAggregateEngine::Aggregates a;
  ASSERT_TRUE(it.Next(&group, &a));
  EXPECT_EQ(group, Tuple{3});
  EXPECT_EQ(a.count, 6);   // 2 lines × stock 3
  EXPECT_EQ(a.sum, 33);    // qty 11 × stock 3
  EXPECT_FALSE(it.Next(&group, &a));
}

}  // namespace
}  // namespace ivme
