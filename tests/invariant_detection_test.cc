// Failure injection: deliberately corrupt each maintained structure and
// verify CheckInvariants detects it. These are meta-tests — they guard the
// guard, so a regression cannot silently turn the invariant checker into a
// no-op.
#include <gtest/gtest.h>

#include <functional>

#include "tests/support/mirror.h"

namespace ivme {
namespace {

using testing::MirroredEngine;

EngineOptions DynOpts() {
  EngineOptions o;
  o.epsilon = 0.5;
  o.mode = EvalMode::kDynamic;
  return o;
}

// A freshly preprocessed engine over a small database with both heavy keys
// (0 and 1, degree 30 > θ ≈ 15.5) and light data in the partitions.
std::unique_ptr<MirroredEngine> MakeEngine() {
  auto m = std::make_unique<MirroredEngine>("Q(A, C) = R(A, B), S(B, C)", DynOpts());
  for (Value i = 0; i < 60; ++i) {
    m->Load("R", Tuple{i, i % 2}, 1);
    m->Load("S", Tuple{i % 5 + 10, i}, 1);  // keys 10..14: light in S
  }
  m->Preprocess();
  return m;
}

// First view node satisfying the predicate, searching all trees.
ViewNode* FindNode(Engine& engine, const std::function<bool(ViewNode*)>& pred) {
  std::function<ViewNode*(ViewNode*)> scan = [&](ViewNode* node) -> ViewNode* {
    if (pred(node)) return node;
    for (auto& child : node->children) {
      if (ViewNode* hit = scan(child.get())) return hit;
    }
    return nullptr;
  };
  for (const auto& tree : engine.plan().trees) {
    if (ViewNode* hit = scan(tree->root.get())) return hit;
  }
  return nullptr;
}

TEST(InvariantDetectionTest, CleanEnginePasses) {
  auto m = MakeEngine();
  std::string error;
  EXPECT_TRUE(m->engine().CheckInvariants(&error)) << error;
}

TEST(InvariantDetectionTest, DetectsSpuriousViewTuple) {
  auto m = MakeEngine();
  ViewNode* view = FindNode(m->engine(), [](ViewNode* n) { return n->kind == NodeKind::kView; });
  ASSERT_NE(view, nullptr);
  Tuple bogus;
  for (size_t i = 0; i < view->schema.size(); ++i) bogus.PushBack(987654);
  view->storage->Apply(bogus, 7);
  std::string error;
  EXPECT_FALSE(m->engine().CheckInvariants(&error));
  EXPECT_NE(error.find("diverged"), std::string::npos) << error;
}

TEST(InvariantDetectionTest, DetectsWrongViewMultiplicity) {
  auto m = MakeEngine();
  ViewNode* view = FindNode(m->engine(), [](ViewNode* n) {
    return n->kind == NodeKind::kView && n->storage->size() > 0;
  });
  ASSERT_NE(view, nullptr);
  view->storage->Apply(view->storage->First()->key, 3);  // inflate one tuple
  std::string error;
  EXPECT_FALSE(m->engine().CheckInvariants(&error));
}

TEST(InvariantDetectionTest, DetectsLightPartMissingTuple) {
  auto m = MakeEngine();
  ViewNode* light_leaf = FindNode(m->engine(), [](ViewNode* n) {
    return n->IsLeaf() && n->partition != nullptr && n->storage->size() > 0;
  });
  ASSERT_NE(light_leaf, nullptr);
  const Tuple victim = light_leaf->storage->First()->key;
  const Mult mult = light_leaf->storage->First()->value.mult;
  light_leaf->partition->light()->Apply(victim, -mult);
  std::string error;
  EXPECT_FALSE(m->engine().CheckInvariants(&error));
}

TEST(InvariantDetectionTest, DetectsLightPartOverfullKey) {
  auto m = MakeEngine();
  ViewNode* light_leaf = FindNode(m->engine(), [](ViewNode* n) {
    return n->IsLeaf() && n->partition != nullptr;
  });
  ASSERT_NE(light_leaf, nullptr);
  // Insert tuples into the light part that the base relation lacks.
  Relation* light = light_leaf->partition->light();
  Tuple bogus;
  for (size_t i = 0; i < light->schema().size(); ++i) bogus.PushBack(555000 + static_cast<Value>(i));
  light->Apply(bogus, 1);
  std::string error;
  EXPECT_FALSE(m->engine().CheckInvariants(&error));
}

TEST(InvariantDetectionTest, DetectsCorruptedHeavyIndicator) {
  auto m = MakeEngine();
  ASSERT_FALSE(m->engine().plan().triples.empty());
  IndicatorTriple* triple = m->engine().plan().triples[0].get();
  Tuple bogus;
  for (size_t i = 0; i < triple->keys.size(); ++i) bogus.PushBack(31337);
  // A heavy key that exists in neither All nor L. The H-vs-All size check
  // must flag it.
  triple->h->Apply(bogus, 1);
  std::string error;
  EXPECT_FALSE(m->engine().CheckInvariants(&error));

  // Repair and corrupt the other direction: drop a real heavy key.
  triple->h->Apply(bogus, -1);
  ASSERT_TRUE(m->engine().CheckInvariants(&error)) << error;
  if (triple->h->size() > 0) {
    const Tuple real_key = triple->h->First()->key;
    const Mult mult = triple->h->First()->value.mult;
    triple->h->Apply(real_key, -mult);
    EXPECT_FALSE(m->engine().CheckInvariants(&error));
  }
}

TEST(InvariantDetectionTest, RepairableByRecompute) {
  // After corruption, re-running the materialization restores consistency
  // (CheckInvariants re-materializes as it compares).
  auto m = MakeEngine();
  ViewNode* view = FindNode(m->engine(), [](ViewNode* n) { return n->kind == NodeKind::kView; });
  Tuple bogus;
  for (size_t i = 0; i < view->schema.size(); ++i) bogus.PushBack(424242);
  view->storage->Apply(bogus, 1);
  std::string error;
  EXPECT_FALSE(m->engine().CheckInvariants(&error));
  // The checker recomputed the view in place; a second check passes and
  // results match brute force again.
  EXPECT_TRUE(m->engine().CheckInvariants(&error)) << error;
  EXPECT_EQ(m->Diff(), "");
}

}  // namespace
}  // namespace ivme
