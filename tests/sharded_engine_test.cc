// ShardedEngine: root-value routing, shard-count invariance (the result
// and every shard's invariants must be independent of K), merged
// enumeration for free and bound roots, and parallel batch application.
#include "src/core/sharded_engine.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/baselines/brute_force.h"
#include "src/common/counters.h"
#include "src/query/classify.h"
#include "src/storage/database.h"
#include "tests/support/catalog.h"
#include "tests/support/random_queries.h"

namespace ivme {
namespace {

using testing::MustParse;
using testing::RandomHierarchicalQuery;
using testing::RandomQueryOptions;

ShardedEngineOptions Opts(double eps, size_t shards, size_t threads = 0) {
  ShardedEngineOptions options;
  options.engine.epsilon = eps;
  options.engine.mode = EvalMode::kDynamic;
  options.num_shards = shards;
  options.num_threads = threads;
  return options;
}

// --- router ---

TEST(ShardedRouterTest, EqualRootValuesOfDifferentRelationsShareAShard) {
  // Root of the canonical order is B (it occurs in both atoms): R reads it
  // from column 1, S from column 0. Routing must agree.
  const auto q = MustParse("Q(A, B, C) = R(A, B), S(B, C)");
  for (size_t k : {2u, 3u, 8u}) {
    ShardedEngine engine(q, Opts(0.5, k));
    for (Value b = 0; b < 200; ++b) {
      const size_t expected = engine.ShardOf("R", Tuple{7, b});
      EXPECT_EQ(engine.ShardOf("R", Tuple{b + 13, b}), expected) << "b=" << b << " k=" << k;
      EXPECT_EQ(engine.ShardOf("S", Tuple{b, 42}), expected) << "b=" << b << " k=" << k;
      EXPECT_LT(expected, k);
    }
  }
}

TEST(ShardedRouterTest, UnaryRelationUsesTheCachedTupleHash) {
  // Root A; T(A) is unary, so the router reuses the tuple's own cached
  // hash. It must agree with the root-column hash used for R.
  const auto q = MustParse("Q(A, B) = R(A, B), T(A)");
  ShardedEngine engine(q, Opts(0.5, 8));
  for (Value a = 0; a < 200; ++a) {
    Tuple unary{a};
    (void)unary.Hash();  // warm the cache; routing must not be perturbed
    EXPECT_EQ(engine.ShardOf("T", unary), engine.ShardOf("R", Tuple{a, a + 1})) << "a=" << a;
  }
}

TEST(ShardedRouterTest, CanShardClassification) {
  std::string why;
  EXPECT_TRUE(ShardedEngine::CanShard(MustParse("Q(A, B, C) = R(A, B), S(B, C)"), &why));
  EXPECT_TRUE(ShardedEngine::CanShard(MustParse("Q(A, C) = R(A, B), S(B, C)"), &why))
      << "bound roots shard too (merged enumeration dedups): " << why;
  EXPECT_TRUE(ShardedEngine::CanShard(MustParse("Q() = R(A, B), S(B)"), &why)) << why;

  EXPECT_FALSE(ShardedEngine::CanShard(MustParse("Q(A, B) = R(A), S(B)"), &why));
  EXPECT_NE(why.find("disconnected"), std::string::npos) << why;
  EXPECT_FALSE(ShardedEngine::CanShard(MustParse("Q(A, B) = R(A, B), R(B, A)"), &why));
  EXPECT_NE(why.find("different columns"), std::string::npos) << why;
}

// --- shard-count invariance ---

// Reference (1 shard) and K-sharded engines fed the same randomly-chunked
// valid stream must enumerate identical results, and every shard must pass
// its invariant checks, after every chunk.
class ShardInvarianceFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ShardInvarianceFuzz, RandomQueryRandomlyChunkedStream) {
  Rng rng(0x5AAD0000ull + static_cast<uint64_t>(GetParam()));
  RandomQueryOptions qopts;
  qopts.max_components = 1;  // sharding requires a connected query
  const auto q = RandomHierarchicalQuery(rng, qopts);
  ASSERT_TRUE(IsHierarchical(q)) << q.ToString();
  std::string why;
  ASSERT_TRUE(ShardedEngine::CanShard(q, &why)) << q.ToString() << ": " << why;

  const double eps = std::vector<double>{0.0, 0.3, 0.5, 1.0}[rng.Below(4)];
  const std::vector<size_t> shard_counts = {1, 2, 3, 8};
  std::vector<std::unique_ptr<ShardedEngine>> engines;
  for (size_t k : shard_counts) {
    engines.push_back(std::make_unique<ShardedEngine>(q, Opts(eps, k)));
  }
  Database mirror;
  for (const auto& name : q.RelationNames()) {
    for (const auto& atom : q.atoms()) {
      if (atom.relation == name) {
        mirror.AddRelation(name, atom.schema);
        break;
      }
    }
  }

  auto arity_of = [&](const std::string& name) {
    for (const auto& atom : q.atoms()) {
      if (atom.relation == name) return atom.schema.size();
    }
    return size_t{0};
  };
  const auto names = q.RelationNames();
  const Value domain = static_cast<Value>(2 + rng.Below(4));

  std::vector<std::vector<Tuple>> live(names.size());
  for (size_t r = 0; r < names.size(); ++r) {
    const int count = static_cast<int>(rng.Below(25));
    for (int i = 0; i < count; ++i) {
      Tuple t;
      for (size_t j = 0; j < arity_of(names[r]); ++j) t.PushBack(rng.Range(0, domain));
      for (auto& engine : engines) engine->LoadTuple(names[r], t, 1);
      mirror.Find(names[r])->Apply(t, 1);
      live[r].push_back(std::move(t));
    }
  }
  for (auto& engine : engines) engine->Preprocess();

  auto check_all = [&](const std::string& when) {
    const QueryResult expected = BruteForceEvaluate(q, mirror);
    for (size_t e = 0; e < engines.size(); ++e) {
      std::string error;
      ASSERT_TRUE(engines[e]->CheckInvariants(&error))
          << q.ToString() << " eps=" << eps << " K=" << shard_counts[e] << " " << when << ": "
          << error;
      const QueryResult actual = engines[e]->EvaluateToMap();
      ASSERT_EQ(actual, expected)
          << q.ToString() << " eps=" << eps << " K=" << shard_counts[e] << " " << when;
    }
  };
  check_all("preprocess");

  // Valid stream (deletes target the live multiset) in random-size chunks,
  // applied identically to every engine.
  for (int step = 0; step < 10; ++step) {
    UpdateBatch batch;
    const size_t batch_size = 1 + rng.Below(40);
    while (batch.size() < batch_size) {
      const size_t r = rng.Below(names.size());
      if (!live[r].empty() && rng.Chance(0.45)) {
        const size_t pick = rng.Below(live[r].size());
        batch.push_back(Update{names[r], live[r][pick], -1});
        live[r][pick] = live[r].back();
        live[r].pop_back();
      } else {
        Tuple t;
        for (size_t j = 0; j < arity_of(names[r]); ++j) t.PushBack(rng.Range(0, domain));
        live[r].push_back(t);
        batch.push_back(Update{names[r], std::move(t), 1});
      }
    }
    for (auto& engine : engines) {
      const auto result = engine->ApplyBatch(batch);
      ASSERT_EQ(result.rejected, 0u) << q.ToString() << " step=" << step;
    }
    for (const auto& u : batch) mirror.Find(u.relation)->Apply(u.tuple, u.mult);
    check_all("step " + std::to_string(step));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardInvarianceFuzz, ::testing::Range(0, 25));

// --- merged enumeration ---

TEST(ShardedEnumerationTest, BoundRootSumsMultiplicitiesAcrossShards) {
  // Q(A, C) projects away the root B: the same (a, c) arises via several
  // b's that live in different shards, so the merged enumerator must dedup
  // and sum. Multiplicities are checked against brute force via the K=1
  // engine (already differentially tested above).
  const auto q = MustParse("Q(A, C) = R(A, B), S(B, C)");
  ShardedEngine one(q, Opts(0.5, 1));
  ShardedEngine many(q, Opts(0.5, 8));
  for (Value b = 0; b < 32; ++b) {
    // Every b joins A=1 to C=2 — 32 derivations of the tuple (1, 2).
    for (auto* engine : {&one, &many}) {
      engine->LoadTuple("R", Tuple{1, b}, 1);
      engine->LoadTuple("S", Tuple{b, 2}, 1);
    }
  }
  one.Preprocess();
  many.Preprocess();
  const QueryResult expected = one.EvaluateToMap();
  ASSERT_EQ(expected.size(), 1u);
  ASSERT_EQ(expected.begin()->second, 32);
  EXPECT_EQ(many.EvaluateToMap(), expected);

  // Under updates too: drop half the b's, add new ones.
  UpdateBatch batch;
  for (Value b = 0; b < 16; ++b) batch.push_back(Update{"R", Tuple{1, b}, -1});
  for (Value b = 100; b < 104; ++b) {
    batch.push_back(Update{"R", Tuple{1, b}, 1});
    batch.push_back(Update{"S", Tuple{b, 2}, 1});
  }
  for (auto* engine : {&one, &many}) {
    const auto result = engine->ApplyBatch(batch);
    EXPECT_EQ(result.rejected, 0u);
  }
  EXPECT_EQ(many.EvaluateToMap(), one.EvaluateToMap());
}

TEST(ShardedEnumerationTest, FreeRootConcatenatesDisjointShardStreams) {
  const auto q = MustParse("Q(A, B, C) = R(A, B), S(B, C)");
  ShardedEngine one(q, Opts(0.5, 1));
  ShardedEngine many(q, Opts(0.5, 4));
  Rng rng(99);
  for (int i = 0; i < 300; ++i) {
    const Tuple r{rng.Range(0, 40), rng.Range(0, 12)};
    const Tuple s{rng.Range(0, 12), rng.Range(0, 40)};
    for (auto* engine : {&one, &many}) {
      engine->LoadTuple("R", r, 1);
      engine->LoadTuple("S", s, 1);
    }
  }
  one.Preprocess();
  many.Preprocess();
  EXPECT_EQ(many.EvaluateToMap(), one.EvaluateToMap());
}

// --- parallel application ---

TEST(ShardedParallelTest, ConcurrentBatchesMatchSequentialReference) {
  // Explicit worker threads: shard deltas apply concurrently even on a
  // single-core host. This is the TSan target for the maintenance path
  // (per-thread cost counters, pooled node allocations, rebalancing).
  const auto q = MustParse("Q(A, B, C) = R(A, B), S(B, C)");
  ShardedEngine reference(q, Opts(0.5, 1));
  ShardedEngine sharded(q, Opts(0.5, 4, /*threads=*/4));
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    const Tuple r{rng.Range(0, 1000), rng.Range(0, 50)};
    const Tuple s{rng.Range(0, 50), rng.Range(0, 1000)};
    for (auto* engine : {&reference, &sharded}) {
      engine->LoadTuple("R", r, 1);
      engine->LoadTuple("S", s, 1);
    }
  }
  reference.Preprocess();
  sharded.Preprocess();  // parallel preprocessing
  EXPECT_EQ(sharded.num_threads(), 4u);

  std::vector<Tuple> live_r;
  for (int step = 0; step < 40; ++step) {
    UpdateBatch batch;
    for (int i = 0; i < 64; ++i) {
      if (!live_r.empty() && rng.Chance(0.4)) {
        const size_t pick = rng.Below(live_r.size());
        batch.push_back(Update{"R", live_r[pick], -1});
        live_r[pick] = live_r.back();
        live_r.pop_back();
      } else {
        Tuple t{rng.Range(0, 1000), rng.Range(0, 50)};
        live_r.push_back(t);
        batch.push_back(Update{"R", std::move(t), 1});
      }
    }
    for (auto* engine : {&reference, &sharded}) {
      const auto result = engine->ApplyBatch(batch);
      EXPECT_EQ(result.rejected, 0u);
    }
    if (step % 10 == 9) {
      std::string error;
      ASSERT_TRUE(sharded.CheckInvariants(&error)) << "step " << step << ": " << error;
      ASSERT_EQ(sharded.EvaluateToMap(), reference.EvaluateToMap()) << "step " << step;
    }
  }
}

// --- stats and counters ---

TEST(ShardedStatsTest, AggregateSumsShardsAndCountersFlowToAggregate) {
  const auto q = MustParse("Q(A, B, C) = R(A, B), S(B, C)");
  ShardedEngine engine(q, Opts(0.5, 4, /*threads=*/2));
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    engine.LoadTuple("R", Tuple{rng.Range(0, 100), rng.Range(0, 10)}, 1);
    engine.LoadTuple("S", Tuple{rng.Range(0, 10), rng.Range(0, 100)}, 1);
  }
  ResetCounters();
  engine.Preprocess();
  // Materialization ran on pool threads; the aggregate must see it.
  EXPECT_GT(AggregateCounters().materialize_steps, 0u);

  UpdateBatch batch;
  for (int i = 0; i < 64; ++i) {
    batch.push_back(Update{"R", Tuple{rng.Range(0, 100), rng.Range(0, 10)}, 1});
  }
  const auto result = engine.ApplyBatch(batch);
  EXPECT_GT(AggregateCounters().delta_steps, 0u);

  const auto stats = engine.GetStats();
  EXPECT_EQ(stats.updates, 64u);
  EXPECT_EQ(stats.batch_net_entries, result.applied);
  size_t updates = 0, view_tuples = 0;
  for (size_t s = 0; s < engine.num_shards(); ++s) {
    updates += engine.shard(s).GetStats().updates;
    view_tuples += engine.shard(s).GetStats().view_tuples;
  }
  EXPECT_EQ(stats.updates, updates);
  EXPECT_EQ(stats.view_tuples, view_tuples);

  // Per-shard thresholds are independent: every shard satisfies its own
  // size invariant (checked by CheckInvariants) with its own M.
  std::string error;
  EXPECT_TRUE(engine.CheckInvariants(&error)) << error;
}

}  // namespace
}  // namespace ivme
