// Dictionary-encoding tests: intern/lookup round-trips, the tagged-Value
// scheme's disjointness from raw integers, forged-id rejection at the
// catalog's write gates, a regression mixing int-keyed and string-keyed
// relations in one query (differential vs brute force), concurrent intern
// and lookup, and a durable save/open round-trip where every string key
// must survive snapshot + WAL-delta replay with its id intact.
#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/baselines/brute_force.h"
#include "src/core/durable_catalog.h"
#include "src/core/sharded_catalog.h"
#include "src/data/dictionary.h"
#include "src/data/value.h"
#include "src/storage/database.h"
#include "tests/support/catalog.h"
#include "tests/support/durability.h"

namespace ivme {
namespace {

using testing::DiffLogicalState;
using testing::MustParse;
using testing::SortedDump;
using testing::TempDir;

// --- tag scheme -----------------------------------------------------------

TEST(DictValueTest, TagBitsPartitionTheValueSpace) {
  // Raw integers outside [2^62, 2^63) are never dictionary values.
  EXPECT_FALSE(IsDictValue(0));
  EXPECT_FALSE(IsDictValue(1));
  EXPECT_FALSE(IsDictValue(-1));
  EXPECT_FALSE(IsDictValue(int64_t{1} << 61));
  EXPECT_FALSE(IsDictValue(std::numeric_limits<int64_t>::min()));
  // The whole upper quarter [2^62, 2^63) of the positives is reserved.
  EXPECT_TRUE(IsDictValue(std::numeric_limits<int64_t>::max()));
  EXPECT_FALSE(IsDictValue(std::numeric_limits<int64_t>::max() >> 1));

  // Every id maps into the reserved range and round-trips.
  for (const uint32_t id : {0u, 1u, 4095u, 4096u, 0xffffffffu}) {
    const Value v = MakeDictValue(id);
    EXPECT_TRUE(IsDictValue(v));
    EXPECT_EQ(DictIdOf(v), id);
    EXPECT_NE(v, static_cast<Value>(id)) << "tagged id must differ from the raw integer";
  }
}

// --- intern / lookup ------------------------------------------------------

TEST(DictionaryTest, InternIsIdempotentAndDense) {
  StringDictionary dict;
  EXPECT_EQ(dict.size(), 0u);
  const Value a = dict.Intern("alpha");
  const Value b = dict.Intern("beta");
  EXPECT_TRUE(IsDictValue(a));
  EXPECT_TRUE(IsDictValue(b));
  EXPECT_EQ(DictIdOf(a), 0u);
  EXPECT_EQ(DictIdOf(b), 1u);
  EXPECT_EQ(dict.Intern("alpha"), a);
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_EQ(*dict.Lookup(a), "alpha");
  EXPECT_EQ(*dict.Lookup(b), "beta");
  EXPECT_EQ(dict.String(0), "alpha");
  EXPECT_EQ(dict.String(1), "beta");
}

TEST(DictionaryTest, FindAbsentReturnsZero) {
  StringDictionary dict;
  EXPECT_EQ(dict.Find("missing"), 0);
  dict.Intern("present");
  EXPECT_EQ(dict.Find("missing"), 0);
  EXPECT_EQ(dict.Find("present"), MakeDictValue(0));
}

TEST(DictionaryTest, LookupRejectsNonLiveValues) {
  StringDictionary dict;
  dict.Intern("only");
  EXPECT_EQ(dict.Lookup(42), nullptr);                  // raw integer
  EXPECT_EQ(dict.Lookup(MakeDictValue(1)), nullptr);    // id beyond size
  EXPECT_EQ(dict.Lookup(MakeDictValue(999)), nullptr);  // far beyond size
  EXPECT_NE(dict.Lookup(MakeDictValue(0)), nullptr);
}

TEST(DictionaryTest, InternAcrossChunkBoundary) {
  // kChunkSize strings fill chunk 0; the next Intern must allocate chunk 1
  // and all earlier ids must still resolve.
  StringDictionary dict;
  const size_t n = StringDictionary::kChunkSize + 3;
  for (size_t i = 0; i < n; ++i) {
    const Value v = dict.Intern("s" + std::to_string(i));
    EXPECT_EQ(DictIdOf(v), static_cast<uint32_t>(i));
  }
  EXPECT_EQ(dict.size(), n);
  EXPECT_EQ(dict.String(0), "s0");
  EXPECT_EQ(dict.String(static_cast<uint32_t>(StringDictionary::kChunkSize)),
            "s" + std::to_string(StringDictionary::kChunkSize));
}

TEST(DictionaryTest, FormatValueQuotesLiveIdsOnly) {
  StringDictionary dict;
  const Value v = dict.Intern("berlin");
  EXPECT_EQ(dict.FormatValue(v), "\"berlin\"");
  EXPECT_EQ(dict.FormatValue(7), "7");
  EXPECT_EQ(dict.FormatValue(-3), "-3");
}

TEST(DictionaryTest, ValidateDictValuesFlagsForgedIds) {
  StringDictionary dict;
  const Value live = dict.Intern("live");
  Value bad = 0;
  EXPECT_TRUE(ValidateDictValues(Tuple{live, 17, -4}, dict, &bad));
  const Value forged = MakeDictValue(12345);
  EXPECT_FALSE(ValidateDictValues(Tuple{live, forged}, dict, &bad));
  EXPECT_EQ(bad, forged);
}

TEST(DictionaryTest, ConcurrentInternAndLookup) {
  // Writers intern disjoint namespaces while readers resolve every id the
  // published size admits; under TSan this validates the publish order
  // (string before size).
  StringDictionary dict;
  constexpr size_t kWriters = 3;
  constexpr size_t kPerWriter = 2000;
  std::vector<std::thread> threads;
  for (size_t w = 0; w < kWriters; ++w) {
    threads.emplace_back([&dict, w] {
      for (size_t i = 0; i < kPerWriter; ++i) {
        const Value v = dict.Intern("w" + std::to_string(w) + "-" + std::to_string(i));
        ASSERT_NE(dict.Lookup(v), nullptr);
      }
    });
  }
  std::atomic<bool> stop{false};
  std::thread reader([&dict, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      const size_t n = dict.size();
      for (uint32_t id = 0; id < n; ++id) {
        const std::string* s = dict.Lookup(MakeDictValue(id));
        ASSERT_NE(s, nullptr);
        ASSERT_FALSE(s->empty());
      }
    }
  });
  for (auto& t : threads) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_EQ(dict.size(), kWriters * kPerWriter);
}

// --- catalog write gates --------------------------------------------------

TEST(DictionaryCatalogTest, WriteGatesRejectForgedReservedRangeValues) {
  ShardedCatalogOptions options;
  options.num_shards = 2;
  ShardedCatalog catalog(options);
  std::string why;
  ASSERT_TRUE(catalog.RegisterQuery("q", MustParse("Q(A, B) = R(A, B), S(A)"), EngineOptions{},
                                    &why))
      << why;

  const Value live = catalog.dictionary()->Intern("live");
  const Value forged = MakeDictValue(77);  // not a live id
  EXPECT_TRUE(catalog.TryLoadTuple("R", Tuple{live, 1}, 1).ok());
  EXPECT_FALSE(catalog.TryLoadTuple("R", Tuple{forged, 1}, 1).ok());
  EXPECT_FALSE(catalog.TryLoad("S", {{Tuple{forged}, 1}}).ok());
  catalog.Preprocess();

  EXPECT_TRUE(catalog.TryApplyUpdate("S", Tuple{live}, 1).ok());
  EXPECT_FALSE(catalog.TryApplyUpdate("S", Tuple{forged}, 1).ok());
  // A reserved-range value that is not even a representable id.
  const Value junk = static_cast<Value>(kDictTag | (uint64_t{1} << 40));
  EXPECT_FALSE(catalog.TryApplyUpdate("R", Tuple{junk, 2}, 1).ok());

  // Batch gate: one forged entry refuses the whole batch atomically.
  BatchResult result;
  UpdateBatch batch = {Update{"S", Tuple{live}, 1}, Update{"R", Tuple{forged, 3}, 1}};
  EXPECT_FALSE(catalog.TryApplyBatch(batch, &result).ok());
  const QueryResult before = catalog.EvaluateToMap("q");
  EXPECT_EQ(before.count(Tuple{live, 1}), 1u);
}

// --- mixed int / string keys (regression) ---------------------------------

TEST(DictionaryCatalogTest, MixedIntAndStringKeysInOneQuery) {
  // One query joining a string-keyed relation against an int-payload one:
  // the tag bits must keep interned ids and raw integers from ever
  // colliding in the join maps. Differential vs brute force at K=1 and K=2.
  const ConjunctiveQuery q = MustParse("Q(A, B, C) = R(A, B), S(A, C)");
  for (const size_t shards : {size_t{1}, size_t{2}}) {
    ShardedCatalogOptions options;
    options.num_shards = shards;
    ShardedCatalog catalog(options);
    std::string why;
    ASSERT_TRUE(catalog.RegisterQuery("q", q, EngineOptions{}, &why)) << why;
    StringDictionary& dict = *catalog.dictionary();

    Database mirror;
    for (const auto& atom : q.atoms()) {
      if (mirror.Find(atom.relation) == nullptr) mirror.AddRelation(atom.relation, atom.schema);
    }
    auto load = [&](const std::string& rel, const Tuple& t) {
      ASSERT_TRUE(catalog.TryLoadTuple(rel, t, 1).ok());
      mirror.Find(rel)->Apply(t, 1);
    };

    const Value berlin = dict.Intern("berlin");
    const Value tokyo = dict.Intern("tokyo");
    const Value lima = dict.Intern("lima");
    // The raw integers deliberately collide with the ids' low bits: without
    // the tag, R(0, ...) and R("berlin", ...) would join incorrectly.
    load("R", Tuple{berlin, 10});
    load("R", Tuple{tokyo, 20});
    load("R", Tuple{0, 30});
    load("R", Tuple{1, 40});
    load("S", Tuple{berlin, dict.Intern("bear")});
    load("S", Tuple{0, 99});
    load("S", Tuple{lima, 7});
    catalog.Preprocess();

    auto check = [&](const char* when) {
      const QueryResult expected = BruteForceEvaluate(q, mirror);
      EXPECT_EQ(catalog.EvaluateToMap("q"), expected) << when << " K=" << shards;
      std::string error;
      EXPECT_TRUE(catalog.CheckInvariants(&error)) << error;
    };
    check("after load");

    auto update = [&](const std::string& rel, const Tuple& t, Mult m) {
      ASSERT_TRUE(catalog.TryApplyUpdate(rel, t, m).ok());
      mirror.Find(rel)->Apply(t, m);
    };
    update("S", Tuple{tokyo, 5}, 1);
    update("R", Tuple{lima, 50}, 1);
    update("R", Tuple{0, 30}, -1);
    update("S", Tuple{berlin, dict.Intern("ber")}, 2);
    check("after updates");

    // The string root must appear in results as its tagged id.
    const QueryResult result = catalog.EvaluateToMap("q");
    EXPECT_EQ(result.count(Tuple{tokyo, 20, 5}), 1u);
    EXPECT_EQ(result.count(Tuple{berlin, 10, dict.Find("bear")}), 1u);
    EXPECT_EQ(result.count(Tuple{0, 30, 99}), 0u) << "deleted int-keyed row resurfaced";
  }
}

// --- durability -----------------------------------------------------------

TEST(DictionaryDurabilityTest, SaveOpenRoundTripWithStringKeys) {
  // Strings interned before the snapshot ride in the snapshot's dictionary
  // section; strings interned after it ride as kDictionary WAL deltas. Both
  // must replay to the same ids.
  TempDir dir;
  ShardedCatalogOptions catalog_options;
  catalog_options.num_shards = 2;
  DurabilityOptions durability;
  durability.fsync = FsyncPolicy::kAlways;
  durability.background_checkpoint = false;

  Status status;
  auto durable = DurableCatalog::Open(dir.path(), catalog_options, durability, &status);
  ASSERT_NE(durable, nullptr) << status.message();
  std::string why;
  ASSERT_TRUE(durable->RegisterQuery("q", MustParse("Q(A, B, C) = R(A, B), S(A, C)"),
                                     EngineOptions{}, &why))
      << why;
  StringDictionary& dict = *durable->catalog().dictionary();

  ASSERT_TRUE(durable->TryLoad("R", {{Tuple{dict.Intern("oslo"), 1}, 1},
                                     {Tuple{dict.Intern("cairo"), 2}, 1}})
                  .ok());
  ASSERT_TRUE(durable->TryLoad("S", {{Tuple{dict.Intern("oslo"), dict.Intern("fjord")}, 1}}).ok());
  durable->Preprocess();
  ASSERT_TRUE(durable->Checkpoint().ok());  // dictionary → snapshot section

  // Post-checkpoint strings reach disk only through kDictionary deltas.
  BatchResult result;
  UpdateBatch batch = {Update{"R", Tuple{dict.Intern("quito"), 3}, 1},
                       Update{"S", Tuple{dict.Intern("quito"), dict.Intern("andes")}, 1},
                       Update{"S", Tuple{dict.Find("cairo"), 11}, 1}};
  ASSERT_TRUE(durable->TryApplyBatch(batch, &result).ok());
  const QueryResult expected = durable->catalog().EvaluateToMap("q");
  const auto expected_r = SortedDump(durable->catalog(), "R");
  const size_t dict_size = dict.size();
  std::map<std::string, Value> ids;
  for (const char* s : {"oslo", "cairo", "fjord", "quito", "andes"}) ids[s] = dict.Find(s);
  durable.reset();

  auto reopened = DurableCatalog::Open(dir.path(), ShardedCatalogOptions{}, durability, &status);
  ASSERT_NE(reopened, nullptr) << status.message();
  const StringDictionary& redict = *reopened->catalog().dictionary();
  ASSERT_EQ(redict.size(), dict_size);
  for (const auto& [s, id] : ids) {
    EXPECT_EQ(redict.Find(s), id) << "id of " << s << " changed across recovery";
  }
  EXPECT_EQ(reopened->catalog().EvaluateToMap("q"), expected);
  EXPECT_EQ(SortedDump(reopened->catalog(), "R"), expected_r);

  // The recovered dictionary keeps interning (fresh ids append cleanly).
  ASSERT_TRUE(
      reopened->TryApplyUpdate("S", Tuple{redict.Find("oslo"),
                                          reopened->catalog().dictionary()->Intern("new")},
                               1)
          .ok());
  std::string error;
  EXPECT_TRUE(reopened->catalog().CheckInvariants(&error)) << error;
}

TEST(DictionaryDurabilityTest, AttachDirSnapshotsTheDictionary) {
  // AttachDir writes a full snapshot of an ephemeral catalog — including
  // ids interned before durability began.
  TempDir dir;
  DurabilityOptions durability;
  durability.background_checkpoint = false;  // AttachDir's snapshot lands before Open
  auto durable = std::make_unique<DurableCatalog>(ShardedCatalogOptions{}, durability);
  std::string why;
  ASSERT_TRUE(durable->RegisterQuery("q", MustParse("Q(A) = R(A, B)"), EngineOptions{}, &why))
      << why;
  StringDictionary& dict = *durable->catalog().dictionary();
  ASSERT_TRUE(durable->TryLoadTuple("R", Tuple{dict.Intern("pre-attach"), 1}, 1).ok());
  durable->Preprocess();
  ASSERT_TRUE(durable->AttachDir(dir.path()).ok());
  ASSERT_TRUE(durable->TryApplyUpdate("R", Tuple{dict.Intern("post-attach"), 2}, 1).ok());
  const QueryResult expected = durable->catalog().EvaluateToMap("q");
  const Value pre = dict.Find("pre-attach");
  const Value post = dict.Find("post-attach");
  durable.reset();

  Status status;
  auto reopened = DurableCatalog::Open(dir.path(), ShardedCatalogOptions{}, DurabilityOptions{},
                                       &status);
  ASSERT_NE(reopened, nullptr) << status.message();
  EXPECT_EQ(reopened->catalog().dictionary()->Find("pre-attach"), pre);
  EXPECT_EQ(reopened->catalog().dictionary()->Find("post-attach"), post);
  EXPECT_EQ(reopened->catalog().EvaluateToMap("q"), expected);
}

}  // namespace
}  // namespace ivme
