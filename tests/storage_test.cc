// Tests for the Section-3 storage substrate: TupleMap, Relation, secondary
// indexes, and heavy/light partitions.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "src/common/rng.h"
#include "src/storage/partition.h"
#include "src/storage/relation.h"
#include "src/storage/tuple_map.h"

namespace ivme {
namespace {

TEST(TupleMapTest, EmplaceFindErase) {
  TupleMap<int> map;
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.Find(Tuple{1, 2}), nullptr);

  auto [node, inserted] = map.Emplace(Tuple{1, 2});
  EXPECT_TRUE(inserted);
  node->value = 42;
  EXPECT_EQ(map.size(), 1u);

  auto [again, inserted2] = map.Emplace(Tuple{1, 2});
  EXPECT_FALSE(inserted2);
  EXPECT_EQ(again, node);
  EXPECT_EQ(again->value, 42);

  EXPECT_NE(map.Find(Tuple{1, 2}), nullptr);
  map.Erase(node);
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.Find(Tuple{1, 2}), nullptr);
}

TEST(TupleMapTest, EnumerationFollowsInsertionOrder) {
  TupleMap<int> map;
  for (int i = 0; i < 100; ++i) map.Emplace(Tuple{i}).first->value = i;
  int expected = 0;
  for (auto* n = map.First(); n != nullptr; n = n->next) {
    EXPECT_EQ(n->value, expected);
    ++expected;
  }
  EXPECT_EQ(expected, 100);
}

TEST(TupleMapTest, EnumerationSkipsErasedNodes) {
  TupleMap<int> map;
  std::vector<TupleMap<int>::Node*> nodes;
  for (int i = 0; i < 10; ++i) nodes.push_back(map.Emplace(Tuple{i}).first);
  map.Erase(nodes[0]);
  map.Erase(nodes[5]);
  map.Erase(nodes[9]);
  std::set<Value> seen;
  for (auto* n = map.First(); n != nullptr; n = n->next) seen.insert(n->key[0]);
  EXPECT_EQ(seen, (std::set<Value>{1, 2, 3, 4, 6, 7, 8}));
}

TEST(TupleMapTest, SurvivesRehashing) {
  TupleMap<int> map;
  const int n = 10000;
  std::vector<TupleMap<int>::Node*> nodes;
  for (int i = 0; i < n; ++i) {
    nodes.push_back(map.Emplace(Tuple{i * 7, i * 13}).first);
    nodes.back()->value = i;
  }
  EXPECT_EQ(map.size(), static_cast<size_t>(n));
  // Node pointers are stable across growth.
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(map.Find(Tuple{i * 7, i * 13}), nodes[static_cast<size_t>(i)]);
  }
}

// Growth is deamortized: the old bucket array drains a constant number of
// buckets per mutation instead of relinking every node on one insert. This
// pins the observable contract — Find/Erase stay correct while a rehash is
// in flight, and the migration always completes well before the next
// growth trigger (so at most two bucket arrays ever coexist).
TEST(TupleMapTest, IncrementalRehashKeepsLookupsCorrectMidMigration) {
  TupleMap<int> map;
  std::map<Tuple, int> model;
  Rng rng(77);
  bool saw_migration = false;
  int next = 0;
  for (int round = 0; round < 20000; ++round) {
    if (!model.empty() && rng.Chance(0.3)) {
      // Delete a pseudo-random live key (mid-migration erases must find
      // nodes still chained in the old table).
      auto it = model.begin();
      std::advance(it, static_cast<long>(rng.Below(model.size())));
      auto* node = map.Find(it->first);
      ASSERT_NE(node, nullptr);
      ASSERT_EQ(node->value, it->second);
      map.Erase(node);
      model.erase(it);
    } else {
      const Tuple key{static_cast<Value>(next * 11), static_cast<Value>(next % 31)};
      ++next;
      auto [node, inserted] = map.Emplace(key);
      ASSERT_TRUE(inserted);
      node->value = next;
      model[key] = next;
    }
    saw_migration = saw_migration || map.rehash_in_progress();
    ASSERT_EQ(map.size(), model.size());
    if (map.rehash_in_progress() && round % 37 == 0) {
      // Every model key is findable with the right value, whichever table
      // currently chains it.
      for (const auto& [key, value] : model) {
        auto* node = map.Find(key);
        ASSERT_NE(node, nullptr) << key.ToString();
        ASSERT_EQ(node->value, value);
      }
    }
  }
  EXPECT_TRUE(saw_migration) << "the stress run never exercised an in-flight rehash";
  // Enumeration (insertion order list) still covers exactly the live keys.
  size_t seen = 0;
  for (const auto* n = map.First(); n != nullptr; n = n->next) {
    ASSERT_EQ(model.at(n->key), n->value);
    ++seen;
  }
  EXPECT_EQ(seen, model.size());
}

// Pool-allocator guard: interleaved Emplace/Erase/Clear across growth
// boundaries, checked against a plain std::map model. Verifies size,
// enumeration order (insertion order of the currently-live nodes), and
// node-pointer stability for every surviving node.
TEST(TupleMapTest, StressInterleavedEmplaceEraseClear) {
  TupleMap<int> map;
  std::map<Tuple, TupleMap<int>::Node*> model;   // key -> node (stability)
  std::vector<Tuple> insertion_order;            // live keys, oldest first
  Rng rng(1234);
  int next_payload = 0;

  const auto verify = [&] {
    ASSERT_EQ(map.size(), model.size());
    size_t pos = 0;
    for (auto* n = map.First(); n != nullptr; n = n->next, ++pos) {
      ASSERT_LT(pos, insertion_order.size());
      ASSERT_EQ(n->key, insertion_order[pos]);
      auto it = model.find(n->key);
      ASSERT_NE(it, model.end());
      ASSERT_EQ(it->second, n) << "node pointer moved for " << n->key.ToString();
    }
    ASSERT_EQ(pos, insertion_order.size());
  };

  for (int round = 0; round < 6; ++round) {
    // Growth phase: push the map well past several bucket doublings; the
    // pool serves from fresh slabs and the recycled free list alike.
    for (int i = 0; i < 600; ++i) {
      const Tuple key{static_cast<Value>(rng.Below(500)), static_cast<Value>(round)};
      auto [node, inserted] = map.Emplace(key);
      if (inserted) {
        node->value = next_payload++;
        model[key] = node;
        insertion_order.push_back(key);
      } else {
        ASSERT_EQ(model.at(key), node);
      }
    }
    verify();
    // Churn phase: erase about half of the live keys, re-insert some.
    for (int i = 0; i < 400; ++i) {
      const Tuple key{static_cast<Value>(rng.Below(500)), static_cast<Value>(round)};
      auto it = model.find(key);
      if (it != model.end()) {
        map.Erase(it->second);
        model.erase(it);
        insertion_order.erase(
            std::find(insertion_order.begin(), insertion_order.end(), key));
      } else if (rng.Below(2) == 0) {
        auto [node, inserted] = map.Emplace(key);
        ASSERT_TRUE(inserted);
        node->value = next_payload++;
        model[key] = node;
        insertion_order.push_back(key);
      }
    }
    verify();
    // Every other round: full Clear, then immediate reuse of pooled nodes.
    if (round % 2 == 1) {
      map.Clear();
      model.clear();
      insertion_order.clear();
      ASSERT_EQ(map.size(), 0u);
      ASSERT_EQ(map.First(), nullptr);
      verify();
    }
  }
  // Drain what is left one node at a time through Erase.
  while (!insertion_order.empty()) {
    const Tuple key = insertion_order.back();
    insertion_order.pop_back();
    map.Erase(model.at(key));
    model.erase(key);
  }
  verify();
  EXPECT_TRUE(map.empty());
}

TEST(TupleMapTest, DistinguishesTuplesOfDifferentArity) {
  TupleMap<int> map;
  map.Emplace(Tuple{1}).first->value = 1;
  map.Emplace(Tuple{1, 1}).first->value = 2;
  map.Emplace(Tuple{}).first->value = 3;
  EXPECT_EQ(map.size(), 3u);
  EXPECT_EQ(map.Find(Tuple{1})->value, 1);
  EXPECT_EQ(map.Find(Tuple{1, 1})->value, 2);
  EXPECT_EQ(map.Find(Tuple{})->value, 3);
}

TEST(RelationTest, ApplyInsertsAndDeletes) {
  Relation r(Schema({0, 1}), "R");
  EXPECT_EQ(r.size(), 0u);

  auto res = r.Apply(Tuple{1, 2}, 3);
  EXPECT_EQ(res.before, 0);
  EXPECT_EQ(res.after, 3);
  EXPECT_EQ(r.size(), 1u);
  EXPECT_EQ(r.Multiplicity(Tuple{1, 2}), 3);

  res = r.Apply(Tuple{1, 2}, -1);
  EXPECT_EQ(res.before, 3);
  EXPECT_EQ(res.after, 2);
  EXPECT_EQ(r.size(), 1u);

  res = r.Apply(Tuple{1, 2}, -2);
  EXPECT_EQ(res.after, 0);
  EXPECT_EQ(r.size(), 0u);
  EXPECT_EQ(r.Multiplicity(Tuple{1, 2}), 0);
}

TEST(RelationTest, ZeroDeltaIsNoOp) {
  Relation r(Schema({0}), "R");
  auto res = r.Apply(Tuple{5}, 0);
  EXPECT_EQ(res.before, 0);
  EXPECT_EQ(res.after, 0);
  EXPECT_EQ(r.size(), 0u);
}

TEST(RelationTest, IndexCountsAndMembership) {
  Relation r(Schema({0, 1}), "R");  // R(A, B)
  const int idx = r.EnsureIndex(Schema({0}));
  for (Value b = 0; b < 5; ++b) r.Apply(Tuple{1, b}, 1);
  r.Apply(Tuple{2, 0}, 1);

  EXPECT_EQ(r.index(idx).CountForKey(Tuple{1}), 5u);
  EXPECT_EQ(r.index(idx).CountForKey(Tuple{2}), 1u);
  EXPECT_EQ(r.index(idx).CountForKey(Tuple{3}), 0u);
  EXPECT_TRUE(r.index(idx).ContainsKey(Tuple{1}));
  EXPECT_FALSE(r.index(idx).ContainsKey(Tuple{3}));
  EXPECT_EQ(r.index(idx).DistinctKeys(), 2u);

  // Deleting one tuple decrements the count; deleting the last removes the
  // key.
  r.Apply(Tuple{2, 0}, -1);
  EXPECT_FALSE(r.index(idx).ContainsKey(Tuple{2}));
  EXPECT_EQ(r.index(idx).DistinctKeys(), 1u);
}

TEST(RelationTest, IndexScanEnumeratesExactlyMatchingTuples) {
  Relation r(Schema({0, 1}), "R");
  const int idx = r.EnsureIndex(Schema({1}));  // on B
  for (Value a = 0; a < 10; ++a) r.Apply(Tuple{a, a % 3}, a + 1);

  std::set<Value> as;
  Mult total = 0;
  for (const auto* link = r.index(idx).FirstForKey(Tuple{1}); link != nullptr;
       link = link->next) {
    as.insert(link->entry->key[0]);
    total += link->entry->value.mult;
  }
  EXPECT_EQ(as, (std::set<Value>{1, 4, 7}));
  EXPECT_EQ(total, 2 + 5 + 8);
}

TEST(RelationTest, EnsureIndexBackfillsExistingTuples) {
  Relation r(Schema({0, 1}), "R");
  for (Value a = 0; a < 4; ++a) r.Apply(Tuple{a, 7}, 1);
  const int idx = r.EnsureIndex(Schema({1}));
  EXPECT_EQ(r.index(idx).CountForKey(Tuple{7}), 4u);
  // New tuples keep both pre- and post-created indexes consistent.
  const int idx0 = r.EnsureIndex(Schema({0}));
  r.Apply(Tuple{9, 7}, 1);
  EXPECT_EQ(r.index(idx).CountForKey(Tuple{7}), 5u);
  EXPECT_EQ(r.index(idx0).CountForKey(Tuple{9}), 1u);
}

TEST(RelationTest, EnsureIndexIsIdempotent) {
  Relation r(Schema({0, 1}), "R");
  const int a = r.EnsureIndex(Schema({1}));
  const int b = r.EnsureIndex(Schema({1}));
  EXPECT_EQ(a, b);
  EXPECT_EQ(r.num_indexes(), 1u);
}

TEST(RelationTest, IndexOnFullSchemaAndEmptySchema) {
  Relation r(Schema({0, 1}), "R");
  const int full = r.EnsureIndex(Schema({0, 1}));
  const int empty = r.EnsureIndex(Schema());
  r.Apply(Tuple{1, 2}, 1);
  r.Apply(Tuple{3, 4}, 1);
  EXPECT_EQ(r.index(full).CountForKey(Tuple{1, 2}), 1u);
  EXPECT_EQ(r.index(empty).CountForKey(Tuple{}), 2u);
}

TEST(RelationTest, ClearEmptiesRelationAndIndexes) {
  Relation r(Schema({0, 1}), "R");
  const int idx = r.EnsureIndex(Schema({0}));
  for (Value a = 0; a < 10; ++a) r.Apply(Tuple{a, 0}, 1);
  r.Clear();
  EXPECT_EQ(r.size(), 0u);
  EXPECT_EQ(r.index(idx).DistinctKeys(), 0u);
  // Usable after clearing.
  r.Apply(Tuple{1, 1}, 1);
  EXPECT_EQ(r.index(idx).CountForKey(Tuple{1}), 1u);
}

TEST(RelationTest, RandomizedAgainstReferenceCounts) {
  Rng rng(77);
  Relation r(Schema({0, 1}), "R");
  const int idx = r.EnsureIndex(Schema({0}));
  std::map<std::pair<Value, Value>, Mult> reference;
  for (int step = 0; step < 20000; ++step) {
    const Value a = rng.Range(0, 20);
    const Value b = rng.Range(0, 20);
    Mult delta = rng.Chance(0.5) ? 1 : -1;
    auto key = std::make_pair(a, b);
    if (reference[key] + delta < 0) delta = 1;  // keep multiplicities valid
    reference[key] += delta;
    if (reference[key] == 0) reference.erase(key);
    r.Apply(Tuple{a, b}, delta);
  }
  size_t expected_size = reference.size();
  EXPECT_EQ(r.size(), expected_size);
  std::map<Value, size_t> per_key;
  for (const auto& [key, mult] : reference) {
    EXPECT_EQ(r.Multiplicity(Tuple{key.first, key.second}), mult);
    per_key[key.first] += 1;
  }
  for (const auto& [a, count] : per_key) {
    EXPECT_EQ(r.index(idx).CountForKey(Tuple{a}), count);
  }
}

TEST(PartitionTest, StrictRepartitionSplitsByDegree) {
  Relation r(Schema({0, 1}), "R");  // R(A, B), partition on A
  // Key 1 has degree 5, key 2 degree 2, key 3 degree 1.
  for (Value b = 0; b < 5; ++b) r.Apply(Tuple{1, b}, 1);
  for (Value b = 0; b < 2; ++b) r.Apply(Tuple{2, b}, 1);
  r.Apply(Tuple{3, 0}, 1);

  RelationPartition part(&r, Schema({0}), "R^A");
  part.StrictRepartition(/*theta=*/3);  // light iff degree < 3

  EXPECT_FALSE(part.KeyInLight(Tuple{1}));
  EXPECT_TRUE(part.KeyInLight(Tuple{2}));
  EXPECT_TRUE(part.KeyInLight(Tuple{3}));
  EXPECT_EQ(part.light()->size(), 3u);
  EXPECT_EQ(part.BaseCountForKey(Tuple{1}), 5u);
  EXPECT_EQ(part.LightCountForKey(Tuple{2}), 2u);

  // Thresholds 1 and huge: all-heavy and all-light.
  part.StrictRepartition(1);
  EXPECT_EQ(part.light()->size(), 0u);
  part.StrictRepartition(100);
  EXPECT_EQ(part.light()->size(), 8u);
}

TEST(PartitionTest, LightPartPreservesMultiplicities) {
  Relation r(Schema({0, 1}), "R");
  r.Apply(Tuple{1, 1}, 4);
  r.Apply(Tuple{1, 2}, 2);
  RelationPartition part(&r, Schema({0}), "R^A");
  part.StrictRepartition(10);
  EXPECT_EQ(part.light()->Multiplicity(Tuple{1, 1}), 4);
  EXPECT_EQ(part.light()->Multiplicity(Tuple{1, 2}), 2);
}

TEST(PartitionTest, PartitionOnFullSchema) {
  Relation r(Schema({0, 1}), "R");
  r.Apply(Tuple{1, 1}, 1);
  r.Apply(Tuple{1, 2}, 1);
  RelationPartition part(&r, Schema({0, 1}), "R^AB");
  part.StrictRepartition(2);  // every (a,b) key has degree 1 < 2: all light
  EXPECT_EQ(part.light()->size(), 2u);
  part.StrictRepartition(1);
  EXPECT_EQ(part.light()->size(), 0u);
}

}  // namespace
}  // namespace ivme
