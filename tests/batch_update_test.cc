// Batched ingestion (Engine::ApplyBatch): equivalence with the
// single-tuple path under arbitrary chunking and permutation, net-delta
// consolidation (cancellation, multiplicity merging, rejection), and
// deferred rebalancing across both major-rebalance directions.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/rng.h"
#include "src/workload/generator.h"
#include "src/workload/update_stream.h"
#include "tests/support/catalog.h"
#include "tests/support/mirror.h"

namespace ivme {
namespace {

using testing::MirroredEngine;
using testing::MustParse;

size_t ArityOf(const ConjunctiveQuery& q, const std::string& relation) {
  for (const auto& atom : q.atoms()) {
    if (atom.relation == relation) return atom.schema.size();
  }
  ADD_FAILURE() << "unknown relation " << relation;
  return 0;
}

/// A valid multi-relation stream: inserts draw uniformly from a small
/// domain (dense joins, duplicate tuples that consolidate); deletes target
/// live tuples only, so no single-tuple update is ever rejected and any
/// chunking reaches the same final state.
struct StreamFixture {
  std::vector<std::pair<std::string, Tuple>> initial;  // pre-Preprocess load
  std::vector<Update> stream;
};

StreamFixture MakeFixture(const ConjunctiveQuery& q, size_t initial_per_relation,
                          size_t stream_length, double delete_ratio, Value domain,
                          uint64_t seed) {
  Rng rng(seed);
  StreamFixture fx;
  const auto names = q.RelationNames();
  std::vector<std::vector<Tuple>> live(names.size());
  for (size_t r = 0; r < names.size(); ++r) {
    for (size_t i = 0; i < initial_per_relation; ++i) {
      Tuple t;
      for (size_t j = 0; j < ArityOf(q, names[r]); ++j) t.PushBack(rng.Range(0, domain));
      fx.initial.emplace_back(names[r], t);
      live[r].push_back(std::move(t));
    }
  }
  while (fx.stream.size() < stream_length) {
    const size_t r = rng.Below(names.size());
    if (!live[r].empty() && rng.Chance(delete_ratio)) {
      const size_t pick = rng.Below(live[r].size());
      fx.stream.push_back(Update{names[r], live[r][pick], -1});
      live[r][pick] = live[r].back();
      live[r].pop_back();
    } else {
      Tuple t;
      for (size_t j = 0; j < ArityOf(q, names[r]); ++j) t.PushBack(rng.Range(0, domain));
      live[r].push_back(t);
      fx.stream.push_back(Update{names[r], std::move(t), 1});
    }
  }
  return fx;
}

EngineOptions Dynamic(double eps) {
  EngineOptions options;
  options.epsilon = eps;
  options.mode = EvalMode::kDynamic;
  return options;
}

/// Runs `fx` through ApplyUpdate one tuple at a time; returns the result.
QueryResult RunSingle(const std::string& query_text, double eps, const StreamFixture& fx) {
  Engine engine(MustParse(query_text), Dynamic(eps));
  for (const auto& [rel, t] : fx.initial) engine.LoadTuple(rel, t, 1);
  engine.Preprocess();
  for (const auto& u : fx.stream) {
    EXPECT_TRUE(engine.ApplyUpdate(u.relation, u.tuple, u.mult));
  }
  std::string error;
  EXPECT_TRUE(engine.CheckInvariants(&error)) << error;
  return engine.EvaluateToMap();
}

/// Runs `fx` through ApplyBatch in chunks of `batch_size`, mirrored against
/// brute force; returns the result.
QueryResult RunBatched(const std::string& query_text, double eps, const StreamFixture& fx,
                       size_t batch_size) {
  MirroredEngine m(query_text, Dynamic(eps));
  for (const auto& [rel, t] : fx.initial) m.Load(rel, t, 1);
  m.Preprocess();
  for (const auto& batch : workload::ChunkStream(fx.stream, batch_size)) {
    const auto result = m.UpdateBatch(batch);
    EXPECT_EQ(result.rejected, 0u);
  }
  EXPECT_EQ(m.FullCheck(), "") << query_text << " eps=" << eps << " batch=" << batch_size;
  return m.engine().EvaluateToMap();
}

bool SameResult(const QueryResult& a, const QueryResult& b) {
  if (a.size() != b.size()) return false;
  for (const auto& [tuple, mult] : a) {
    auto it = b.find(tuple);
    if (it == b.end() || it->second != mult) return false;
  }
  return true;
}

TEST(BatchUpdateTest, MatchesSingleTupleSequenceAcrossChunkings) {
  const std::vector<std::string> queries = {
      "Q(A, B) = R(A, B), S(A)",                    // q-hierarchical
      "Q(A, C) = R(A, B), S(B, C)",                 // the matmul running example
      "Q(Y0, Y1, Y2) = R0(X, Y0), R1(X, Y1), R2(X, Y2)",  // star, δ=2
  };
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const auto& text = queries[qi];
    const auto q = MustParse(text);
    const auto fx = MakeFixture(q, 12, 300, 0.35, 5, 0xBA7C4 + qi);
    for (const double eps : {0.0, 0.5, 1.0}) {
      const QueryResult expected = RunSingle(text, eps, fx);
      for (const size_t batch_size : {1u, 7u, 64u, 300u}) {
        const QueryResult actual = RunBatched(text, eps, fx, batch_size);
        EXPECT_TRUE(SameResult(expected, actual))
            << text << " eps=" << eps << " batch=" << batch_size;
      }
    }
  }
}

TEST(BatchUpdateTest, RepeatedRelationSymbol) {
  // Self-join: both atoms share storage contents; slots update in sequence.
  const std::string text = "Q(A, B) = R(A, B), R(B, A)";
  const auto q = MustParse(text);
  const auto fx = MakeFixture(q, 10, 200, 0.3, 4, 0x5E1F);
  for (const double eps : {0.0, 0.5}) {
    const QueryResult expected = RunSingle(text, eps, fx);
    const QueryResult actual = RunBatched(text, eps, fx, 16);
    EXPECT_TRUE(SameResult(expected, actual)) << text << " eps=" << eps;
  }
}

TEST(BatchUpdateTest, PermutationInvariance) {
  // A batch is a net delta: applying any permutation of the same records as
  // one batch reaches the same state.
  const std::string text = "Q(A, C) = R(A, B), S(B, C)";
  const auto q = MustParse(text);
  const auto fx = MakeFixture(q, 15, 120, 0.4, 4, 0x9E12);

  QueryResult reference;
  for (int perm = 0; perm < 4; ++perm) {
    StreamFixture shuffled = fx;
    Rng rng(0x77AA + static_cast<uint64_t>(perm));
    for (size_t i = shuffled.stream.size(); i > 1; --i) {
      std::swap(shuffled.stream[i - 1], shuffled.stream[rng.Below(i)]);
    }
    MirroredEngine m(text, Dynamic(0.5));
    for (const auto& [rel, t] : shuffled.initial) m.Load(rel, t, 1);
    m.Preprocess();
    m.UpdateBatch(shuffled.stream);  // the whole stream as one batch
    ASSERT_EQ(m.FullCheck(), "") << "perm=" << perm;
    const QueryResult result = m.engine().EvaluateToMap();
    if (perm == 0) {
      reference = result;
    } else {
      EXPECT_TRUE(SameResult(reference, result)) << "perm=" << perm;
    }
  }
}

TEST(BatchUpdateTest, FullCancellationBatchIsANoOp) {
  Engine engine(MustParse("Q(A, C) = R(A, B), S(B, C)"), Dynamic(0.5));
  engine.LoadTuple("R", Tuple{1, 2}, 1);
  engine.LoadTuple("S", Tuple{2, 3}, 2);
  engine.Preprocess();
  const QueryResult before = engine.EvaluateToMap();
  const size_t n_before = engine.database_size();

  UpdateBatch batch;
  for (Value v = 0; v < 20; ++v) {
    batch.push_back(Update{"R", Tuple{v, v + 1}, 1});
    batch.push_back(Update{"S", Tuple{v + 1, v + 2}, 3});
  }
  for (Value v = 19; v >= 0; --v) {
    batch.push_back(Update{"S", Tuple{v + 1, v + 2}, -3});
    batch.push_back(Update{"R", Tuple{v, v + 1}, -1});
  }
  const auto result = engine.ApplyBatch(batch);
  EXPECT_EQ(result.applied, 0u);
  EXPECT_EQ(result.rejected, 0u);
  EXPECT_EQ(engine.database_size(), n_before);
  EXPECT_TRUE(SameResult(before, engine.EvaluateToMap()));
  std::string error;
  EXPECT_TRUE(engine.CheckInvariants(&error)) << error;
}

TEST(BatchUpdateTest, MultiplicityMerging) {
  Engine engine(MustParse("Q(A, C) = R(A, B), S(B, C)"), Dynamic(0.5));
  engine.LoadTuple("S", Tuple{7, 9}, 1);
  engine.Preprocess();

  // Five records, one distinct tuple: a single weighted net entry.
  UpdateBatch batch(5, Update{"R", Tuple{1, 7}, 2});
  const auto result = engine.ApplyBatch(batch);
  EXPECT_EQ(result.applied, 1u);
  const QueryResult out = engine.EvaluateToMap();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.begin()->second, 10);  // 5 records × mult 2 × S-mult 1
}

TEST(BatchUpdateTest, NetDeleteBelowZeroRejectsOnlyThatEntry) {
  Engine engine(MustParse("Q(A, B) = R(A, B), S(A)"), Dynamic(0.5));
  engine.LoadTuple("R", Tuple{1, 2}, 1);
  engine.LoadTuple("S", Tuple{1}, 1);
  engine.Preprocess();

  UpdateBatch batch;
  batch.push_back(Update{"R", Tuple{1, 2}, -3});  // only 1 stored: rejected
  batch.push_back(Update{"R", Tuple{5, 6}, 1});   // still applies
  batch.push_back(Update{"S", Tuple{5}, 1});
  const auto result = engine.ApplyBatch(batch);
  EXPECT_EQ(result.rejected, 1u);
  EXPECT_EQ(result.applied, 2u);

  const QueryResult out = engine.EvaluateToMap();
  EXPECT_EQ(out.size(), 2u);  // (1,2) survived, (5,6) joined in
  std::string error;
  EXPECT_TRUE(engine.CheckInvariants(&error)) << error;
}

TEST(BatchUpdateTest, InsertOnlyGrowthBatchCrossesSeveralDoublings) {
  // One batch that multiplies N far past the next power of two: the
  // deferred major-rebalance trigger must double M repeatedly and
  // repartition once at batch end.
  MirroredEngine m("Q(A, C) = R(A, B), S(B, C)", Dynamic(0.5));
  m.Load("R", Tuple{0, 0}, 1);
  m.Load("S", Tuple{0, 0}, 1);
  m.Preprocess();
  const size_t m_before = m.engine().threshold_base();

  workload::BatchStreamOptions options;
  options.batch_count = 1;
  options.batch_size = 600;
  options.delete_ratio = 0.0;  // insert-only mode
  options.seed = 42;
  Rng unused(0);
  const auto batches = workload::BatchedMixedStream(
      "R", {Tuple{0, 0}}, options,
      [](Rng& rng) { return Tuple{rng.Range(0, 40), rng.Range(0, 40)}; });
  ASSERT_EQ(batches.size(), 1u);
  m.UpdateBatch(batches[0]);
  EXPECT_EQ(m.FullCheck(), "");
  EXPECT_GT(m.engine().threshold_base(), 2 * m_before);
  EXPECT_GE(m.engine().GetStats().major_rebalances, 1u);
}

TEST(BatchUpdateTest, DeleteHeavyBatchCrossesShrinkThreshold) {
  // Load a database with hot join keys (heavy at ε=0.5), then delete ~90%
  // of it in one batch: N falls below ⌊M/4⌋ and previously-heavy keys cross
  // back under θ/2, forcing the deferred major shrink and minor sweeps.
  MirroredEngine m("Q(A, C) = R(A, B), S(B, C)", Dynamic(0.5));
  const auto r = workload::HeavyLightPairs(6, 40, 120, /*key_first=*/false, 3);
  const auto s = workload::HeavyLightPairs(6, 40, 120, /*key_first=*/true, 4);
  for (const auto& t : r) m.Load("R", t, 1);
  for (const auto& t : s) m.Load("S", t, 1);
  m.Preprocess();
  ASSERT_EQ(m.FullCheck(), "");

  UpdateBatch batch;
  for (size_t i = 0; i < r.size(); i += 10) {
    for (size_t j = i; j < std::min(i + 9, r.size()); ++j) {
      batch.push_back(Update{"R", r[j], -1});
    }
  }
  for (size_t i = 0; i < s.size(); i += 10) {
    for (size_t j = i; j < std::min(i + 9, s.size()); ++j) {
      batch.push_back(Update{"S", s[j], -1});
    }
  }
  const auto result = m.UpdateBatch(batch);
  EXPECT_EQ(result.rejected, 0u);
  EXPECT_EQ(m.FullCheck(), "");
  EXPECT_GE(m.engine().GetStats().major_rebalances, 1u);
}

TEST(BatchUpdateTest, EmptyAndZeroMultRecords) {
  Engine engine(MustParse("Q(A, B) = R(A, B), S(A)"), Dynamic(0.5));
  engine.LoadTuple("R", Tuple{1, 2}, 1);
  engine.LoadTuple("S", Tuple{1}, 1);
  engine.Preprocess();

  const auto empty = engine.ApplyBatch(UpdateBatch{});
  EXPECT_EQ(empty.applied, 0u);
  EXPECT_EQ(empty.rejected, 0u);

  UpdateBatch zeros(3, Update{"R", Tuple{1, 2}, 0});
  const auto result = engine.ApplyBatch(zeros);
  EXPECT_EQ(result.applied, 0u);
  EXPECT_EQ(engine.EvaluateToMap().size(), 1u);
}

TEST(BatchUpdateTest, StatsTrackBatches) {
  Engine engine(MustParse("Q(A, B) = R(A, B), S(A)"), Dynamic(0.5));
  engine.Preprocess();
  UpdateBatch batch;
  batch.push_back(Update{"R", Tuple{1, 2}, 1});
  batch.push_back(Update{"R", Tuple{1, 2}, 1});  // merges with the first
  batch.push_back(Update{"S", Tuple{1}, 1});
  engine.ApplyBatch(batch);
  const auto stats = engine.GetStats();
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.updates, 3u);
  EXPECT_EQ(stats.batch_net_entries, 2u);
}

}  // namespace
}  // namespace ivme
