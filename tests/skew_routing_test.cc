// Skew-aware routing tests: the SpaceSaving sketch's guarantees, the
// RegisterQuery gate that keeps every promotion sound, manual and automatic
// hot-key promotion (differential vs an unsharded catalog and brute force,
// including deletes of spread and replicated tuples after promotion), the
// routing invariant and DumpRelation dedup across promotions, shard-load
// accounting, and snapshot reads pinned across a promotion.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "src/baselines/brute_force.h"
#include "src/common/rng.h"
#include "src/core/heavy_hitters.h"
#include "src/core/sharded_catalog.h"
#include "src/storage/database.h"
#include "tests/support/catalog.h"

namespace ivme {
namespace {

using testing::MustParse;

// --- SpaceSaving sketch ---------------------------------------------------

TEST(SpaceSavingTest, ExactUnderCapacity) {
  SpaceSavingSketch sketch(8);
  for (int i = 0; i < 5; ++i) {
    for (int rep = 0; rep <= i; ++rep) sketch.Add(i);
  }
  EXPECT_EQ(sketch.total(), 15u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(sketch.GuaranteedCount(i), static_cast<uint64_t>(i + 1));
  }
  EXPECT_EQ(sketch.GuaranteedCount(99), 0u);
}

TEST(SpaceSavingTest, HeavyHitterSurvivesEviction) {
  // One value with frequency far above total/capacity must stay tracked
  // through a churn of singletons, with a positive guaranteed count.
  SpaceSavingSketch sketch(4);
  constexpr Value kHot = 1000;
  for (int round = 0; round < 200; ++round) {
    sketch.Add(kHot);
    sketch.Add(2000 + round);  // fresh singleton each round
  }
  EXPECT_EQ(sketch.total(), 400u);
  const uint64_t guaranteed = sketch.GuaranteedCount(kHot);
  EXPECT_GT(guaranteed, 0u);
  EXPECT_LE(guaranteed, 200u);
  bool tracked = false;
  for (const auto& e : sketch.entries()) {
    if (e.value == kHot) {
      tracked = true;
      EXPECT_GE(e.count, 200u) << "count must upper-bound the true frequency";
    }
  }
  EXPECT_TRUE(tracked);
}

TEST(SpaceSavingTest, WeightedAddAndClear) {
  SpaceSavingSketch sketch(4);
  sketch.Add(7, 50);
  sketch.Add(8, 3);
  EXPECT_EQ(sketch.total(), 53u);
  EXPECT_EQ(sketch.GuaranteedCount(7), 50u);
  sketch.Clear();
  EXPECT_EQ(sketch.total(), 0u);
  EXPECT_EQ(sketch.GuaranteedCount(7), 0u);
  EXPECT_TRUE(sketch.entries().empty());
}

// --- harness --------------------------------------------------------------

ShardedCatalogOptions SkewOptions(size_t shards, uint64_t min_total = 1u << 62) {
  ShardedCatalogOptions options;
  options.num_shards = shards;
  options.skew.enabled = true;
  options.skew.min_total = min_total;  // default: out of reach (manual promotion only)
  return options;
}

constexpr const char* kStarQuery = "Q(A, B, C) = R(A, B), S(A, C)";

/// A skew-routed catalog, an unsharded reference, and a brute-force mirror
/// fed identical writes.
class SkewHarness {
 public:
  explicit SkewHarness(ShardedCatalogOptions options, const std::string& text = kStarQuery)
      : query_(MustParse(text)), sharded_(options), reference_(ShardedCatalogOptions{}) {
    std::string why;
    EXPECT_TRUE(sharded_.RegisterQuery("q", query_, EngineOptions{}, &why)) << why;
    EXPECT_TRUE(reference_.RegisterQuery("q", query_, EngineOptions{}, &why)) << why;
    for (const auto& atom : query_.atoms()) {
      if (mirror_.Find(atom.relation) == nullptr) {
        mirror_.AddRelation(atom.relation, atom.schema);
      }
    }
  }

  ShardedCatalog& sharded() { return sharded_; }

  void Load(const std::string& rel, const Tuple& t, Mult m = 1) {
    ASSERT_TRUE(sharded_.TryLoadTuple(rel, t, m).ok());
    ASSERT_TRUE(reference_.TryLoadTuple(rel, t, m).ok());
    mirror_.Find(rel)->Apply(t, m);
  }

  void Preprocess() {
    sharded_.Preprocess();
    reference_.Preprocess();
  }

  void Batch(const UpdateBatch& batch) {
    BatchResult a, b;
    ASSERT_TRUE(sharded_.TryApplyBatch(batch, &a).ok());
    ASSERT_TRUE(reference_.TryApplyBatch(batch, &b).ok());
    ASSERT_EQ(a.applied, b.applied);
    ASSERT_EQ(a.rejected, b.rejected);
    for (const auto& u : batch) mirror_.Find(u.relation)->Apply(u.tuple, u.mult);
  }

  /// Result equality (sharded vs reference vs brute force), routing
  /// invariants, and DumpRelation dedup against the mirror.
  void FullCheck(const char* when) {
    const QueryResult expected = BruteForceEvaluate(query_, mirror_);
    EXPECT_EQ(reference_.EvaluateToMap("q"), expected) << when << " (reference)";
    EXPECT_EQ(sharded_.EvaluateToMap("q"), expected) << when << " (sharded)";
    std::string error;
    EXPECT_TRUE(sharded_.CheckInvariants(&error)) << when << ": " << error;
    for (const std::string& rel : query_.RelationNames()) {
      auto dump = sharded_.DumpRelation(rel);
      std::sort(dump.begin(), dump.end());
      auto want = reference_.DumpRelation(rel);
      std::sort(want.begin(), want.end());
      EXPECT_EQ(dump, want) << when << ": dump of " << rel
                            << " must count replicated copies once";
    }
  }

 private:
  ConjunctiveQuery query_;
  ShardedCatalog sharded_;
  ShardedCatalog reference_;
  Database mirror_;
};

// --- RegisterQuery gate ---------------------------------------------------

TEST(SkewRoutingTest, GateRejectsBoundRoot) {
  ShardedCatalog catalog(SkewOptions(2));
  std::string why;
  // Root A is projected away: concatenation-by-root is the merge the
  // overflow router relies on, so the registration must fail loudly.
  EXPECT_FALSE(catalog.RegisterQuery("q", MustParse("Q(B) = R(A, B), S(A)"), EngineOptions{},
                                     &why));
  EXPECT_NE(why.find("root"), std::string::npos) << why;
}

TEST(SkewRoutingTest, GateRejectsSelfJoin) {
  ShardedCatalog catalog(SkewOptions(2));
  std::string why;
  EXPECT_FALSE(catalog.RegisterQuery("q", MustParse("Q(A, B, C) = R(A, B), R(A, C)"),
                                     EngineOptions{}, &why));
  EXPECT_NE(why.find("self-join"), std::string::npos) << why;
}

TEST(SkewRoutingTest, GateRejectsNonDynamicRelations) {
  ShardedCatalog catalog(SkewOptions(2));
  std::string why;
  EngineOptions options;
  options.mutability.push_back({"S", Mutability::kStatic});
  EXPECT_FALSE(catalog.RegisterQuery("q", MustParse(kStarQuery), options, &why));
  EXPECT_NE(why.find("dynamic"), std::string::npos) << why;

  // The same query registers fine without skew routing.
  ShardedCatalogOptions plain;
  plain.num_shards = 2;
  ShardedCatalog hash_only(plain);
  EXPECT_TRUE(hash_only.RegisterQuery("q", MustParse(kStarQuery), options, &why)) << why;
}

// --- manual promotion -----------------------------------------------------

TEST(SkewRoutingTest, PromoteHotKeyPreconditions) {
  ShardedCatalog catalog(SkewOptions(4));
  std::string why;
  ASSERT_TRUE(catalog.RegisterQuery("q", MustParse(kStarQuery), EngineOptions{}, &why)) << why;
  catalog.Load("R", {{Tuple{1, 1}, 1}});
  catalog.Preprocess();

  EXPECT_FALSE(catalog.PromoteHotKey(1, "nope").ok()) << "unknown relation";
  ASSERT_TRUE(catalog.PromoteHotKey(1, "S").ok());
  EXPECT_FALSE(catalog.PromoteHotKey(1, "S").ok()) << "duplicate promotion";
  EXPECT_FALSE(catalog.PromoteHotKey(1, "R").ok()) << "duplicate under another spread";
  ASSERT_EQ(catalog.OverflowEntries().size(), 1u);
  EXPECT_EQ(catalog.OverflowEntries()[0].root, 1);
  EXPECT_EQ(catalog.OverflowEntries()[0].spread_relation, "S");

  // K=1 / disabled catalogs refuse promotion outright.
  ShardedCatalog single(SkewOptions(1));
  ASSERT_TRUE(single.RegisterQuery("q", MustParse(kStarQuery), EngineOptions{}, &why)) << why;
  single.Preprocess();
  EXPECT_FALSE(single.PromoteHotKey(1, "S").ok());
}

TEST(SkewRoutingTest, PromotionMigratesAndStaysCorrect) {
  SkewHarness h(SkewOptions(4));
  constexpr Value kHot = 42;
  // Hot root: many S partners and a handful of R rows; cold roots around it.
  for (Value b = 0; b < 4; ++b) h.Load("R", Tuple{kHot, 100 + b});
  for (Value c = 0; c < 64; ++c) h.Load("S", Tuple{kHot, 200 + c});
  for (Value a = 0; a < 20; ++a) {
    h.Load("R", Tuple{a, a + 1});
    h.Load("S", Tuple{a, a + 2});
  }
  h.Preprocess();
  h.FullCheck("before promotion");

  ASSERT_TRUE(h.sharded().PromoteHotKey(kHot, "S").ok());
  h.FullCheck("after promotion");

  // Post-promotion writes take the two-level route: spread tuples land by
  // non-root hash, replicated (R) tuples must reach every shard.
  UpdateBatch grow;
  for (Value c = 0; c < 32; ++c) grow.push_back(Update{"S", Tuple{kHot, 500 + c}, 1});
  grow.push_back(Update{"R", Tuple{kHot, 900}, 1});
  grow.push_back(Update{"R", Tuple{7, 901}, 1});
  h.Batch(grow);
  h.FullCheck("after post-promotion inserts");

  // Deletes of both kinds: spread S rows (pre- and post-promotion ones) and
  // a replicated R row, which must vanish from every shard's copy.
  UpdateBatch shrink;
  shrink.push_back(Update{"S", Tuple{kHot, 200}, -1});
  shrink.push_back(Update{"S", Tuple{kHot, 500}, -1});
  shrink.push_back(Update{"R", Tuple{kHot, 100}, -1});
  shrink.push_back(Update{"S", Tuple{3, 5}, -1});
  h.Batch(shrink);
  h.FullCheck("after deletes");

  // Deleting every replicated R row of the hot root empties its join
  // results without disturbing the cold roots.
  UpdateBatch wipe;
  for (Value b = 1; b < 4; ++b) wipe.push_back(Update{"R", Tuple{kHot, 100 + b}, -1});
  wipe.push_back(Update{"R", Tuple{kHot, 900}, -1});
  h.Batch(wipe);
  h.FullCheck("after wiping the hot root's R rows");
}

TEST(SkewRoutingTest, PromotionOnReplicatedOnlyQueryKeepsPrimary) {
  // A second query that does NOT read the spread relation: its merge must
  // keep the primary shard's rows only (every shard holds a full replica of
  // the hot root's non-spread tuples).
  SkewHarness h(SkewOptions(4));
  std::string why;
  ASSERT_TRUE(h.sharded().RegisterQuery("r_only", MustParse("Q(A, B) = R(A, B)"),
                                        EngineOptions{}, &why))
      << why;
  constexpr Value kHot = 5;
  for (Value b = 0; b < 6; ++b) h.Load("R", Tuple{kHot, 10 + b});
  for (Value c = 0; c < 48; ++c) h.Load("S", Tuple{kHot, 100 + c});
  h.Load("R", Tuple{6, 1});
  h.Preprocess();
  ASSERT_TRUE(h.sharded().PromoteHotKey(kHot, "S").ok());

  QueryResult want;
  for (Value b = 0; b < 6; ++b) want[Tuple{kHot, 10 + b}] = 1;
  want[Tuple{6, 1}] = 1;
  EXPECT_EQ(h.sharded().EvaluateToMap("r_only"), want)
      << "replicated copies must not inflate multiplicities";
  h.FullCheck("r_only coexists");
}

// --- automatic promotion --------------------------------------------------

TEST(SkewRoutingTest, SkewedStreamTriggersAutoPromotion) {
  ShardedCatalogOptions options = SkewOptions(4, /*min_total=*/128);
  SkewHarness h(options);
  constexpr Value kHot = 77;
  for (Value a = 0; a < 16; ++a) h.Load("R", Tuple{a % 8, a});
  h.Load("R", Tuple{kHot, 1});
  h.Preprocess();

  // ~70% of the stream hits the hot root: its guaranteed count crosses
  // promote_ratio × total/K long before the cold tail does.
  Rng rng(99);
  UpdateBatch batch;
  for (int i = 0; i < 1200; ++i) {
    const bool hot = rng.NextDouble() < 0.7;
    const Value root = hot ? kHot : static_cast<Value>(rng.Below(8));
    batch.push_back(Update{"S", Tuple{root, static_cast<Value>(i)}, 1});
    if (batch.size() == 64) {
      h.Batch(batch);
      batch.clear();
    }
  }
  if (!batch.empty()) h.Batch(batch);

  const auto entries = h.sharded().OverflowEntries();
  ASSERT_FALSE(entries.empty()) << "the hot root never auto-promoted";
  EXPECT_EQ(entries[0].root, kHot);
  EXPECT_EQ(entries[0].spread_relation, "S");
  h.FullCheck("after auto-promotion");
}

// --- load accounting ------------------------------------------------------

TEST(SkewRoutingTest, ShardLoadCountsRoutedEntries) {
  ShardedCatalog catalog(SkewOptions(2));
  std::string why;
  ASSERT_TRUE(catalog.RegisterQuery("q", MustParse(kStarQuery), EngineOptions{}, &why)) << why;
  catalog.Load("R", {{Tuple{1, 1}, 1}, {Tuple{2, 2}, 1}, {Tuple{3, 3}, 1}});
  catalog.Preprocess();
  uint64_t loaded = 0;
  for (size_t s = 0; s < 2; ++s) loaded += catalog.ShardLoad(s).routed_tuples;
  EXPECT_EQ(loaded, 3u);

  catalog.ResetLoadStats();
  for (size_t s = 0; s < 2; ++s) {
    EXPECT_EQ(catalog.ShardLoad(s).routed_tuples, 0u);
    EXPECT_EQ(catalog.ShardLoad(s).net_entries, 0u);
  }

  UpdateBatch batch;
  for (Value a = 0; a < 10; ++a) batch.push_back(Update{"S", Tuple{a, a}, 1});
  batch.push_back(Update{"S", Tuple{0, 0}, -1});  // consolidates away with a 0-net pair
  batch.push_back(Update{"S", Tuple{0, 0}, 1});
  BatchResult result;
  ASSERT_TRUE(catalog.TryApplyBatch(batch, &result).ok());
  uint64_t routed = 0, net = 0;
  for (size_t s = 0; s < 2; ++s) {
    routed += catalog.ShardLoad(s).routed_tuples;
    net += catalog.ShardLoad(s).net_entries;
  }
  EXPECT_EQ(net, 10u) << "only surviving net entries are routed";
  EXPECT_EQ(routed, 10u);

  const LoadImbalance imbalance = catalog.ComputeImbalance();
  EXPECT_GE(imbalance.max_mean, 1.0);
  EXPECT_EQ(imbalance.mean_tuples, 5.0);
}

// --- snapshot reads across promotion --------------------------------------

TEST(SkewRoutingTest, PinnedSnapshotSurvivesPromotion) {
  SkewHarness h(SkewOptions(4));
  constexpr Value kHot = 9;
  for (Value c = 0; c < 40; ++c) h.Load("S", Tuple{kHot, c});
  h.Load("R", Tuple{kHot, 1});
  h.Load("R", Tuple{2, 2});
  h.Load("S", Tuple{2, 3});
  h.Preprocess();
  h.sharded().EnableServing();

  const QueryResult before = h.sharded().EvaluateToMap("q");
  {
    ReadSnapshot pinned = h.sharded().AcquireSnapshot();

    // Promotion migrates the hot root's rows and post-promotion writes
    // change the live result; the pinned epoch must keep answering the old
    // one.
    ASSERT_TRUE(h.sharded().PromoteHotKey(kHot, "S").ok());
    UpdateBatch batch = {Update{"S", Tuple{kHot, 100}, 1}, Update{"R", Tuple{kHot, 5}, 1}};
    h.Batch(batch);

    EXPECT_EQ(h.sharded().EvaluateToMapAt("q", pinned.epoch()), before);
    ReadSnapshot fresh = h.sharded().AcquireSnapshot();
    EXPECT_EQ(h.sharded().EvaluateToMapAt("q", fresh.epoch()),
              h.sharded().EvaluateToMap("q"));
    // Pins release here: DisableServing waits out every active reader.
  }
  h.FullCheck("after promotion under a pinned reader");
  h.sharded().DisableServing();
}

}  // namespace
}  // namespace ivme
