// Shared seed plumbing for the randomized suites (recovery fuzzing, the
// concurrent-read torture tests, epoch-reclamation stress): every suite
// derives its scenario seeds from one base that IVME_SEED overrides, and
// every failure message includes the exact seed, so
//   IVME_SEED=<printed value> ./the_test --gtest_filter=<the case>
// reproduces a CI failure locally bit-for-bit.
#ifndef IVME_TESTS_SUPPORT_SEED_H_
#define IVME_TESTS_SUPPORT_SEED_H_

#include <cstdint>
#include <cstdlib>

namespace ivme {
namespace testing {

/// Base seed of a randomized suite: the value of IVME_SEED (any strtoull
/// format, e.g. decimal or 0x-hex) when set and non-empty, otherwise
/// `default_base`. Suites mix the base into each scenario's seed.
inline uint64_t SeedBase(uint64_t default_base) {
  const char* env = std::getenv("IVME_SEED");
  if (env != nullptr && *env != '\0') return std::strtoull(env, nullptr, 0);
  return default_base;
}

}  // namespace testing
}  // namespace ivme

#endif  // IVME_TESTS_SUPPORT_SEED_H_
